(* Tests for speedup-lint (tools/lint), driven through the built
   executable: each rule R1–R6 on a good and a bad fixture with exact
   (rule, line) diagnostics, scope boundaries, the three suppression
   forms, the baseline mechanism, and the CLI exit codes.  Fixtures
   for the syntactic backend live under test/lint_fixtures/ and only
   need to parse; the typed backend's fixtures (r7_*/ subdirectories)
   are compiled to .cmt at test time with ocamlc -bin-annot.

   The linter links compiler-libs, whose cmi directory shadows module
   names like [Closure]; driving the executable keeps the test binary
   free of that include path. *)

(* Anchor on the test binary so the paths work from any cwd (both
   `dune runtest` and `dune exec test/main.exe`). *)
let test_dir = Filename.dirname Sys.executable_name
let exe = Filename.concat test_dir "../tools/lint/main.exe"

(* Runs the linter and returns (exit code, stdout lines). *)
let run_lint args =
  let cmd =
    String.concat " " (Filename.quote exe :: List.map Filename.quote args)
  in
  let ic = Unix.open_process_in cmd in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  let status = Unix.close_process_in ic in
  let code =
    match status with
    | Unix.WEXITED n -> n
    | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> -1
  in
  (code, List.rev !lines)

(* Under `dune runtest` the fixtures are materialized next to the test
   binary; under `dune exec` only the binary is built, so fall back to
   the source tree (_build/default/test → three levels up). *)
let fixtures_dir =
  let candidates =
    [
      Filename.concat test_dir "lint_fixtures";
      Filename.concat test_dir "../../../test/lint_fixtures";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> List.hd candidates

let fixture name = Filename.concat fixtures_dir name

(* [dir] is the logical repository directory the fixture pretends to
   live in; it drives the per-directory rule scoping. *)
let lint ?(args = []) ~dir name =
  run_lint (args @ [ "--prefix"; dir; fixture name ])

(* Parses "file:line:col: [RULE] message" diagnostic lines, skipping
   the informational "speedup-lint:" ones. *)
let rule_lines lines =
  List.filter_map
    (fun line ->
      match String.split_on_char ':' line with
      | _file :: lnum :: _rest when not (String.length line = 0) -> (
          match (int_of_string_opt lnum, String.index_opt line '[') with
          | Some n, Some i -> (
              match String.index_opt line ']' with
              | Some j when j > i ->
                  Some (String.sub line (i + 1) (j - i - 1), n)
              | _ -> None)
          | _ -> None)
      | _ -> None)
    lines

let check_run label ~expected_code expected (code, lines) =
  Alcotest.(check int) (label ^ ": exit code") expected_code code;
  Alcotest.(check (list (pair string int))) label expected (rule_lines lines)

let test_r1 () =
  check_run "bad: top-level Hashtbl in pool-reachable lib" ~expected_code:1
    [ ("R1", 1) ]
    (lint ~dir:"lib/models/" "r1_bad.ml");
  check_run "good: Atomic + function-local ref" ~expected_code:0 []
    (lint ~dir:"lib/models/" "r1_good.ml");
  (* Reachability inference put every lib/ directory in the
     pool-reachable set (the whole library tree feeds Pool callbacks
     through Solvability.decide / Adversary.check_task), so the R1
     scope boundary is now lib/ vs bench/bin/tools. *)
  check_run "out of scope: same code in bench" ~expected_code:0 []
    (lint ~dir:"bench/" "r1_bad.ml");
  (* Domain.DLS keys are per-domain caches by construction: no data
     race, but a coherence hazard unless deliberately designed — each
     one needs a reasoned [@lint.allow], like the pool's memo and
     intern front caches carry. *)
  check_run "bad: bare DLS key in pool-reachable lib" ~expected_code:1
    [ ("R1", 1) ]
    (lint ~dir:"lib/closure/" "r1_dls.ml");
  check_run "pool itself is pool-reachable" ~expected_code:1
    [ ("R1", 1) ]
    (lint ~dir:"lib/parallel/" "r1_dls.ml")

let test_r2 () =
  check_run "bad: unsorted Hashtbl.fold into a list" ~expected_code:1
    [ ("R2", 1) ]
    (lint ~dir:"lib/runtime/" "r2_bad.ml");
  check_run "good: sorted fold + commutative fold" ~expected_code:0 []
    (lint ~dir:"lib/runtime/" "r2_good.ml")

let test_r3 () =
  check_run "bad: Mutex.lock without Fun.protect" ~expected_code:1
    [ ("R3", 4) ]
    (lint ~dir:"lib/parallel/" "r3_bad.ml");
  check_run "good: Fun.protect and Mutex.protect" ~expected_code:0 []
    (lint ~dir:"lib/parallel/" "r3_good.ml")

let test_r4 () =
  check_run "bad: poly comparator lambda + bare compare" ~expected_code:1
    [ ("R4", 2); ("R4", 4) ]
    (lint ~dir:"lib/topology/" "r4_bad.ml");
  check_run "good: Int.compare keys, Simplex.compare projection"
    ~expected_code:0 []
    (lint ~dir:"lib/topology/" "r4_good.ml");
  (* The bare-comparator limb only applies in the dedicated layer. *)
  check_run "out of scope: bare compare outside topology/frac"
    ~expected_code:0 []
    (lint ~dir:"lib/core/" "r4_bad.ml")

let test_r5 () =
  check_run "bad: ambient Random + wall clock" ~expected_code:1
    [ ("R5", 1); ("R5", 2) ]
    (lint ~dir:"lib/solver/" "r5_bad.ml");
  check_run "good: caller-seeded Random.State" ~expected_code:0 []
    (lint ~dir:"lib/solver/" "r5_good.ml");
  check_run "exempt: same code in bench/" ~expected_code:0 []
    (lint ~dir:"bench/" "r5_bad.ml");
  (* lib/server: the config-level allowlist (lint_config.r5_allowlist,
     documented in docs/LINT.md) admits exactly the wall-clock read the
     deadline logic needs; every other banned ident still fires. *)
  check_run "server scope: allowlisted clock passes, Random fires"
    ~expected_code:1
    [ ("R5", 1) ]
    (lint ~dir:"lib/server/" "r5_bad.ml");
  check_run "server scope: Sys.time is not allowlisted" ~expected_code:1
    [ ("R5", 2) ]
    (lint ~dir:"lib/server/" "r5_server.ml");
  check_run "solver scope: the allowlist does not leak" ~expected_code:1
    [ ("R5", 1); ("R5", 2) ]
    (lint ~dir:"lib/solver/" "r5_server.ml")

let test_r6 () =
  check_run "bad: structural ops on interned Value" ~expected_code:1
    [ ("R6", 1); ("R6", 2); ("R6", 3) ]
    (lint ~dir:"lib/models/" "r6_bad.ml");
  check_run "good: Value.equal/hash/compare + scalar projections"
    ~expected_code:0 []
    (lint ~dir:"lib/models/" "r6_good.ml");
  (* Inside lib/topology the structural walk is the implementation. *)
  check_run "out of scope: same code in lib/topology" ~expected_code:0 []
    (lint ~dir:"lib/topology/" "r6_bad.ml");
  (* bench/bin/tools build interned values too; R6 follows them. *)
  check_run "bench is in scope for R6" ~expected_code:1
    [ ("R6", 1); ("R6", 2); ("R6", 3) ]
    (lint ~dir:"bench/" "r6_bad.ml")

(* The algebra sub-library: its own entry in [parallel_reachable]
   (nested-directory classification) and [interned_modules]. *)
let test_algebra_scope () =
  check_run "R1 applies inside lib/models/algebra" ~expected_code:1
    [ ("R1", 1) ]
    (lint ~dir:"lib/models/algebra/" "r1_bad.ml");
  (* An unlisted nested directory inherits the parent tree's scope. *)
  check_run "unlisted nested dir inherits lib/models scope" ~expected_code:1
    [ ("R1", 1) ]
    (lint ~dir:"lib/models/viz/" "r1_bad.ml");
  check_run "bad: structural ops on interned Algebra terms" ~expected_code:1
    [ ("R6", 1); ("R6", 2); ("R6", 3) ]
    (lint ~dir:"lib/closure/" "r6_algebra_bad.ml");
  check_run "good: Algebra.equal/compare + scalar projections"
    ~expected_code:0 []
    (lint ~dir:"lib/closure/" "r6_algebra_good.ml");
  check_run "out of scope: structural Algebra ops in lib/topology"
    ~expected_code:0 []
    (lint ~dir:"lib/topology/" "r6_algebra_bad.ml")

let test_suppressions () =
  check_run "binding and expression [@lint.allow]" ~expected_code:0 []
    (lint ~dir:"lib/models/" "suppress_inline.ml");
  check_run "floating [@@@lint.allow] silences the file" ~expected_code:0 []
    (lint ~dir:"lib/solver/" "suppress_file.ml")

let contains_substring needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let check_mentions label needle lines =
  Alcotest.(check bool) label true
    (List.exists (contains_substring needle) lines)

let test_baseline () =
  (* A matching baseline entry absorbs the finding: exit goes green. *)
  let code, lines =
    lint ~args:[ "--baseline"; fixture "baseline_r2.json" ] ~dir:"lib/runtime/"
      "r2_bad.ml"
  in
  check_run "baselined finding is not live" ~expected_code:0 [] (code, lines);
  check_mentions "baselined count reported"
    "1 finding(s) covered by the baseline" lines;
  (* A basename entry matches a path-qualified diagnostic ('/'-boundary
     suffix), so per-directory and whole-tree runs agree. *)
  let code, lines =
    lint
      ~args:[ "--baseline"; fixture "baseline_short.json" ]
      ~dir:"lib/runtime/" "r2_bad.ml"
  in
  check_run "suffix path match" ~expected_code:0 [] (code, lines);
  check_mentions "suffix match reported" "covered by the baseline" lines;
  (* Entries that no longer match anything are reported stale. *)
  let code, lines =
    lint ~args:[ "--baseline"; fixture "baseline_r2.json" ] ~dir:"lib/runtime/"
      "r2_good.ml"
  in
  Alcotest.(check int) "stale-only run stays green" 0 code;
  check_mentions "stale entry reported" "stale baseline entry R2" lines;
  (* Baselines never mask a different line. *)
  let code, lines =
    lint
      ~args:[ "--baseline"; fixture "baseline_wrong.json" ]
      ~dir:"lib/runtime/" "r2_bad.ml"
  in
  check_run "wrong line stays live" ~expected_code:1 [ ("R2", 1) ] (code, lines)

let test_emit_and_json () =
  let code, lines =
    lint ~args:[ "--emit-baseline" ] ~dir:"lib/runtime/" "r2_bad.ml"
  in
  Alcotest.(check int) "--emit-baseline exits 0" 0 code;
  check_mentions "emitted entry names the rule" {|"rule": "R2"|} lines;
  check_mentions "emitted entry names the file" "r2_bad.ml" lines;
  let code, lines =
    lint ~args:[ "--format"; "json" ] ~dir:"lib/solver/" "r5_bad.ml"
  in
  Alcotest.(check int) "--format json still exits 1" 1 code;
  check_mentions "json output names the rule" {|"rule": "R5"|} lines;
  check_mentions "json output carries the line" {|"line": 1|} lines

let test_rules_filter () =
  (* r5_bad has two findings; restricting to R1 silences both. *)
  check_run "--rules filters findings" ~expected_code:0 []
    (lint ~args:[ "--rules"; "R1" ] ~dir:"lib/solver/" "r5_bad.ml")

let test_parse_error () =
  let code, lines = lint ~dir:"lib/core/" "broken.ml" in
  Alcotest.(check int) "syntax error fails the run" 1 code;
  check_mentions "syntax error is reported" "[parse] syntax error" lines

(* ---- typed backend (--cmt): R7 locksets and reachability ---- *)

(* The typed backend reads .cmt trees, so fixtures are compiled first:
   copy them into a scratch directory and run ocamlc -bin-annot there
   (Mutex and Domain are stdlib modules, plain ocamlc suffices), then
   point --cmt at the directory.  Compilation order follows the list,
   so dependent files go last. *)
let compile_fixtures sub names =
  let dir = Filename.temp_file "lint_cmt" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  List.iter
    (fun name ->
      let ic = open_in_bin (fixture (Filename.concat sub name)) in
      let src = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let oc = open_out_bin (Filename.concat dir name) in
      output_string oc src;
      close_out oc)
    names;
  let cmd =
    Printf.sprintf "cd %s && ocamlc -bin-annot -c %s 2>&1"
      (Filename.quote dir)
      (String.concat " " (List.map Filename.quote names))
  in
  let ic = Unix.open_process_in cmd in
  let out = ref [] in
  (try
     while true do
       out := input_line ic :: !out
     done
   with End_of_file -> ());
  (match Unix.close_process_in ic with
  | Unix.WEXITED 0 -> ()
  | _ ->
      Alcotest.failf "fixture compilation failed:\n%s"
        (String.concat "\n" (List.rev !out)));
  dir

let test_r7_typed () =
  (* Consistent locksets — Mutex.protect, a lock alias, and
     Mutex.lock + Fun.protect all resolve to the same mutex. *)
  let dir = compile_fixtures "r7_good" [ "good.ml" ] in
  check_run "good: consistent locksets (incl. alias)" ~expected_code:0 []
    (run_lint [ "--cmt"; "--as"; "lib/closure/"; "--rules"; "R7"; dir ]);
  (* Seeded violations: empty lockset on [unguarded] (line 11) and a
     lock_a/lock_b split on [split], reported at the access that
     breaks the running intersection (line 13). *)
  let dir = compile_fixtures "r7_bad" [ "bad.ml" ] in
  let code, lines =
    run_lint [ "--cmt"; "--as"; "lib/closure/"; "--rules"; "R7"; dir ]
  in
  check_run "bad: empty and inconsistent locksets" ~expected_code:1
    [ ("R7", 11); ("R7", 13) ]
    (code, lines);
  check_mentions "empty lockset names the cell" "'Bad.unguarded'" lines;
  check_mentions "inconsistency names both locks" "{Bad.lock_b}" lines;
  check_mentions "inconsistency names the other site" "{Bad.lock_a}" lines

let test_reachability_cross_module () =
  (* work → R7_cross_a.dispatch → Pool.map: the function and its
     directory are inferred pool-reachable across the module
     boundary. *)
  let dir =
    compile_fixtures "r7_cross_module" [ "r7_cross_a.ml"; "r7_cross_b.ml" ]
  in
  let code, lines =
    run_lint [ "--cmt"; "--as"; "lib/closure/"; "--reachability"; dir ]
  in
  Alcotest.(check int) "--reachability exits 0" 0 code;
  check_mentions "receiver-forwarding function is reachable"
    "R7_cross_a.dispatch" lines;
  check_mentions "cross-module callback is reachable" "R7_cross_b.work" lines;
  check_mentions "directory projection includes the fixture dir"
    {|"closure"|} lines

(* Nested directories inherit their parent's scope from every scoping
   table, not just parallel_reachable (lint_config.classify consults
   them all). *)
let test_nested_scope () =
  check_run "nested dir under the dedicated layer keeps strict R4"
    ~expected_code:1
    [ ("R4", 2); ("R4", 4) ]
    (lint ~dir:"lib/topology/render/" "r4_bad.ml");
  check_run "nested dir under lib/server inherits the R5 allowlist"
    ~expected_code:1
    [ ("R5", 1) ]
    (lint ~dir:"lib/server/inner/" "r5_bad.ml")

let test_emit_prune () =
  (* --emit-baseline --baseline prunes: entries that still fire are
     kept, entries that no longer fire disappear, and new findings are
     never absorbed. *)
  let code, lines =
    lint
      ~args:[ "--emit-baseline"; "--baseline"; fixture "baseline_r2.json" ]
      ~dir:"lib/runtime/" "r2_bad.ml"
  in
  Alcotest.(check int) "prune keeps a live entry: exit 0" 0 code;
  check_mentions "live entry survives the prune" {|"rule": "R2"|} lines;
  let code, lines =
    lint
      ~args:[ "--emit-baseline"; "--baseline"; fixture "baseline_r2.json" ]
      ~dir:"lib/runtime/" "r2_good.ml"
  in
  Alcotest.(check int) "prune drops a stale entry: exit 0" 0 code;
  Alcotest.(check (list string)) "pruned baseline is empty" [ "[]" ] lines

let suite =
  ( "lint",
    [
      Alcotest.test_case "R1 shared mutable state" `Quick test_r1;
      Alcotest.test_case "R2 hash-order determinism" `Quick test_r2;
      Alcotest.test_case "R3 lock discipline" `Quick test_r3;
      Alcotest.test_case "R4 polymorphic compare" `Quick test_r4;
      Alcotest.test_case "R5 banned nondeterminism" `Quick test_r5;
      Alcotest.test_case "R6 structural ops on interned types" `Quick test_r6;
      Alcotest.test_case "algebra sub-library scoping" `Quick
        test_algebra_scope;
      Alcotest.test_case "inline suppressions" `Quick test_suppressions;
      Alcotest.test_case "baseline load/apply" `Quick test_baseline;
      Alcotest.test_case "emit-baseline and json output" `Quick test_emit_and_json;
      Alcotest.test_case "rules filter" `Quick test_rules_filter;
      Alcotest.test_case "parse failure is reported" `Quick test_parse_error;
      Alcotest.test_case "R7 locksets (typed backend)" `Quick test_r7_typed;
      Alcotest.test_case "cross-module reachability inference" `Quick
        test_reachability_cross_module;
      Alcotest.test_case "nested directory scoping" `Quick test_nested_scope;
      Alcotest.test_case "emit-baseline pruning" `Quick test_emit_prune;
    ] )
