let table : (int, int) Hashtbl.t = Hashtbl.create 8
[@@lint.allow "R1: test fixture"]

let keys tbl =
  (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
  [@lint.allow "R2: test fixture"])
