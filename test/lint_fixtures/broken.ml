let x = (
