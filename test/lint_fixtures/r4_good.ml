let sort_by_card simplices =
  List.sort (fun a b -> Int.compare (Simplex.card b) (Simplex.card a)) simplices

let dedup xs = List.sort_uniq Int.compare xs
let ordered s t = Simplex.compare s t <= 0
