let same a = a = Algebra.iis
let bucket ts = Hashtbl.hash (Algebra.inter ts)
let order a b = Stdlib.compare (Algebra.parse a) (Algebra.parse b)
