let m = Mutex.create ()

let bad f =
  Mutex.lock m;
  let r = f () in
  Mutex.unlock m;
  r
