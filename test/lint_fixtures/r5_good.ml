let shuffle seed l =
  let rng = Random.State.make [| seed |] in
  List.map (fun x -> (Random.State.bits rng, x)) l
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  |> List.map snd
