(* R7 fixture: every access of the shared cell holds the same mutex,
   through three idioms — Mutex.protect, a top-level alias of the lock,
   and Mutex.lock + Fun.protect.  The local Pool stub is recognized by
   the same dot-boundary suffix match as the real lib/parallel pool. *)
module Pool = struct
  let map f l = List.map f l
end

let lock = Mutex.create ()
let lock_alias = lock
let counter = ref 0
let protected_incr () = Mutex.protect lock (fun () -> incr counter)
let aliased_read () = Mutex.protect lock_alias (fun () -> !counter)

let locked_add n =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () -> counter := !counter + n)

let run xs = Pool.map (fun x -> protected_incr (); x + aliased_read ()) xs
let total () = locked_add 1
