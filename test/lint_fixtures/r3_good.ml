let m = Mutex.create ()

let good f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f ())

let also_good f = Mutex.protect m f
