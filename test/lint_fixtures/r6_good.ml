let is_solo v = Value.equal v (Value.view [ (1, Value.Int 0) ])
let bucket v = Value.hash (Value.pair v (Value.Int 0))
let distinct vs = List.sort_uniq Value.compare vs
let arity v = List.length (Value.view_ids v) = 1
let named v = Value.to_string v = "()"
