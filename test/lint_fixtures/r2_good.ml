let keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int.compare

let total tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0
