let sort_by_card simplices =
  List.sort (fun a b -> Stdlib.compare (Simplex.card b) (Simplex.card a)) simplices

let dedup xs = List.sort_uniq compare xs
