let jitter () = Random.float 1.0
let stamp () = Unix.gettimeofday ()
