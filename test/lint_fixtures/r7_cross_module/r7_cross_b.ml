(* Reachability fixture, file 2: [work] never touches the pool
   directly; it is reachable only through the cross-module flow
   work → R7_cross_a.dispatch → Pool.map. *)
let work x = x + 1
let run xs = R7_cross_a.dispatch work xs
