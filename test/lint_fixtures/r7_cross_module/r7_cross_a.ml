(* Reachability fixture, file 1: [dispatch] hands its function
   argument to a Pool receiver, so it becomes pool-reachable itself
   (rule 3) and so does anything passed to it from another module. *)
module Pool = struct
  let map f l = List.map f l
end

let dispatch f xs = Pool.map f xs
