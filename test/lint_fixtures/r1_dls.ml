let cache_key = Domain.DLS.new_key (fun () -> Hashtbl.create 16)
let lookup k = Hashtbl.find_opt (Domain.DLS.get cache_key) k

let allowed_key = Domain.DLS.new_key (fun () -> Hashtbl.create 16)
[@@lint.allow "R1: per-domain cache, reconciled at flush boundaries"]

let lookup_allowed k = Hashtbl.find_opt (Domain.DLS.get allowed_key) k
