let same a = Algebra.equal a Algebra.iis
let distinct ts = List.sort_uniq Algebra.compare ts
let named t = Algebra.to_string t = "iis"
let solo t sigma = Algebra.allows_solo t sigma && Algebra.interned_nodes () > 0
