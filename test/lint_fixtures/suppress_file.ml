[@@@lint.allow "R5: whole-file test fixture"]

let jitter () = Random.float 1.0
