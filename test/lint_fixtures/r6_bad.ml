let is_solo v = v = Value.view [ (1, Value.Int 0) ]
let bucket v = Hashtbl.hash (Value.pair v (Value.Int 0))
let order a b = Stdlib.compare (Value.view a) b
