let count = Atomic.make 0
let bump () = Atomic.incr count

let local_sum l =
  let acc = ref 0 in
  List.iter (fun x -> acc := !acc + x) l;
  !acc
