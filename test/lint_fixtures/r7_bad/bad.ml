(* R7 fixture: two seeded violations — a cell accessed with no lock at
   all, and a cell guarded by a different mutex on each path. *)
module Pool = struct
  let map f l = List.map f l
end

let lock_a = Mutex.create ()
let lock_b = Mutex.create ()
let unguarded = ref 0
let split = ref 0
let bump () = incr unguarded
let under_a () = Mutex.protect lock_a (fun () -> incr split)
let under_b () = Mutex.protect lock_b (fun () -> split := !split + 1)
let run xs = Pool.map (fun x -> bump (); under_a (); under_b (); x) xs
