let cache : (string, int) Hashtbl.t = Hashtbl.create 16
let lookup k = Hashtbl.find_opt cache k
