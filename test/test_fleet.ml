(* Tests for lib/fleet: the consistent-hash ring (pure, deterministic
   routing with rendezvous failover), peer-spec parsing, and two
   end-to-end scenarios against real daemon subprocesses — a 3-node
   fleet with push/pull store replication behind an in-process router
   (byte-identical replies, re-routing around a killed peer, zero
   failed queries), and atlas-warmed serving with zero enumerations. *)

let mk_temp_dir () =
  let path = Filename.temp_file "speedup-fleet-test" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let run_process cmd =
  let ic = Unix.open_process_in cmd in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with Unix.WEXITED n -> n | _ -> -1
  in
  (code, List.rev !lines)

let contains_substring needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

(* ---- peer specs ---- *)

let test_peer_parse () =
  (match Peer.parse "unix:/tmp/x.sock" with
  | Ok p -> (
      Alcotest.(check string) "name is the spec" "unix:/tmp/x.sock"
        (Peer.to_string p);
      match p.Peer.addr with
      | Server.Unix_path path ->
          Alcotest.(check string) "unix path" "/tmp/x.sock" path
      | Server.Tcp _ -> Alcotest.fail "expected a unix address")
  | Error e -> Alcotest.fail e);
  (match Peer.parse "127.0.0.1:7400" with
  | Ok p -> (
      match p.Peer.addr with
      | Server.Tcp (host, port) ->
          Alcotest.(check string) "tcp host" "127.0.0.1" host;
          Alcotest.(check int) "tcp port" 7400 port
      | Server.Unix_path _ -> Alcotest.fail "expected a tcp address")
  | Error e -> Alcotest.fail e);
  (match Peer.parse "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "spec without a colon accepted");
  match Peer.parse_list [ "unix:/a"; "nonsense" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "list with a bad spec accepted"

(* ---- ring ---- *)

let keys = List.init 200 (fun i -> Printf.sprintf "key-%d" i)

let test_ring_deterministic () =
  let r1 = Ring.make [ "a"; "b"; "c" ] in
  let r2 = Ring.make [ "a"; "b"; "c" ] in
  List.iter
    (fun k ->
      let owner = Ring.route r1 k in
      Alcotest.(check string) "same owner on both rings" owner
        (Ring.route r2 k);
      Alcotest.(check bool) "owner is a member" true
        (List.mem owner (Ring.members r1)))
    keys

let test_ring_route_order () =
  let r = Ring.make [ "a"; "b"; "c"; "d" ] in
  let members = List.sort compare (Ring.members r) in
  List.iter
    (fun k ->
      match Ring.route_order r k with
      | owner :: _ as order ->
          Alcotest.(check string) "head is the owner" (Ring.route r k) owner;
          Alcotest.(check (list string))
            "failover order is a permutation of the members" members
            (List.sort compare order)
      | [] -> Alcotest.fail "empty route order")
    keys

let test_ring_distribution () =
  let names = [ "a"; "b"; "c" ] in
  let r = Ring.make names in
  let total = 3000 in
  let counts = Hashtbl.create 7 in
  for i = 0 to total - 1 do
    let owner = Ring.route r (Printf.sprintf "dist-%d" i) in
    Hashtbl.replace counts owner
      (1 + Option.value ~default:0 (Hashtbl.find_opt counts owner))
  done;
  List.iter
    (fun name ->
      let share = Option.value ~default:0 (Hashtbl.find_opt counts name) in
      Alcotest.(check bool)
        (Printf.sprintf "peer %s owns a fair share (%d/%d)" name share total)
        true
        (share > total / 10))
    names

(* A dead owner's keys must spread over all survivors, not dog-pile
   onto one neighbour: every (owner, first-failover) pair occurs. *)
let test_ring_failover_spread () =
  let r = Ring.make [ "a"; "b"; "c" ] in
  let pairs = Hashtbl.create 16 in
  for i = 0 to 1999 do
    match Ring.route_order r (Printf.sprintf "spread-%d" i) with
    | owner :: second :: _ -> Hashtbl.replace pairs (owner, second) ()
    | _ -> Alcotest.fail "route order shorter than two"
  done;
  List.iter
    (fun owner ->
      List.iter
        (fun alt ->
          if alt <> owner then
            Alcotest.(check bool)
              (Printf.sprintf "some key of %s fails over to %s" owner alt)
              true
              (Hashtbl.mem pairs (owner, alt)))
        (Ring.members r))
    (Ring.members r)

(* ---- end-to-end: daemon subprocesses ---- *)

let here () = Filename.dirname Sys.executable_name
let daemon_bin () = Filename.concat (here ()) "../bin/main.exe"

let mk_sock () =
  let path = Filename.temp_file "speedup-fleet" ".sock" in
  Sys.remove path;
  path

(* Each daemon gets its own store root and a small domain budget; the
   parent's CERT_CACHE_DIR (the CI fixture store) must not leak in. *)
let daemon_env ~dir =
  let keep e =
    not
      (List.exists
         (fun p -> String.starts_with ~prefix:p e)
         [ "CERT_CACHE_DIR="; "SPEEDUP_STATS="; "SPEEDUP_JOBS=" ])
  in
  Array.append
    (Array.of_list (List.filter keep (Array.to_list (Unix.environment ()))))
    [| "CERT_CACHE_DIR=" ^ dir; "SPEEDUP_JOBS=2" |]

let spawn_daemon ~dir ~sock ~peers =
  let bin = daemon_bin () in
  let args =
    [ bin; "serve"; "--socket"; sock ]
    @ (match peers with [] -> [] | ps -> [ "--peers"; String.concat "," ps ])
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Fun.protect
    ~finally:(fun () -> Unix.close devnull)
    (fun () ->
      Unix.create_process_env bin (Array.of_list args) (daemon_env ~dir)
        Unix.stdin devnull devnull)

let wait_ready sock =
  match
    Client.connect_retry ~attempts:40 ~delay:0.02 ~max_delay:0.25
      (Server.Unix_path sock)
  with
  | Error e -> Alcotest.fail ("daemon did not come up: " ^ e)
  | Ok c -> (
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      match Client.rpc c ~id:Jsonl.Null ~meth:"ping" ~params:[] with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("daemon did not answer ping: " ^ e))

let shutdown_quietly sock =
  match Client.connect_retry ~attempts:3 ~delay:0.05 (Server.Unix_path sock) with
  | Error _ -> ()
  | Ok c ->
      ignore (Client.rpc c ~id:Jsonl.Null ~meth:"shutdown" ~params:[]);
      Client.close c

let reap pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> ()

(* The scripted query mix: compute methods only (loop-level methods
   are answered by the front itself, not routed). *)
let mix =
  [
    ("closure", [ ("task", Jsonl.String "consensus"); ("n", Jsonl.Int 2) ]);
    ( "solvable",
      [
        ("task", Jsonl.String "consensus");
        ("n", Jsonl.Int 2);
        ("rounds", Jsonl.Int 1);
      ] );
    ( "closure",
      [
        ("task", Jsonl.String "aa");
        ("n", Jsonl.Int 2);
        ("m", Jsonl.Int 3);
        ("eps", Jsonl.String "1/3");
      ] );
    ( "complex-stats",
      [ ("task", Jsonl.String "aa"); ("n", Jsonl.Int 2); ("m", Jsonl.Int 4) ] );
  ]

let run_mix sock =
  match Client.connect_retry ~attempts:5 ~delay:0.05 (Server.Unix_path sock) with
  | Error e -> Alcotest.fail e
  | Ok c ->
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      List.mapi
        (fun i (meth, params) ->
          match Client.request c ~id:(Jsonl.Int i) ~meth ~params with
          | Ok line -> line
          | Error e -> Alcotest.fail (meth ^ ": " ^ e))
        mix

let member path v =
  List.fold_left
    (fun acc name ->
      match Option.bind acc (Jsonl.member name) with
      | Some _ as v -> v
      | None -> Alcotest.fail ("stats reply lacks " ^ String.concat "." path))
    (Some v) path

let member_int path v =
  match Option.bind (member path v) Jsonl.to_int with
  | Some n -> n
  | None -> Alcotest.fail ("non-integer " ^ String.concat "." path)

let daemon_stats sock =
  match Client.connect_retry ~attempts:5 ~delay:0.05 (Server.Unix_path sock) with
  | Error e -> Alcotest.fail e
  | Ok c -> (
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      match Client.rpc c ~id:Jsonl.Null ~meth:"stats" ~params:[] with
      | Ok v -> v
      | Error e -> Alcotest.fail ("stats: " ^ e))

(* The 3-node fleet: d1 is seeded by serving the mix first (it has no
   peers, so nothing is pushed); d2 and d3 start cold with peer lists
   pointing at the others.  d2 must answer the same mix byte-for-byte
   by pulling every certificate from d1 on miss (zero enumerations),
   the in-process router must relay byte-identical replies, and after
   d3 is killed every routed query must still succeed. *)
let test_fleet_three_nodes () =
  let d1 = mk_temp_dir () and d2 = mk_temp_dir () and d3 = mk_temp_dir () in
  let s1 = mk_sock () and s2 = mk_sock () and s3 = mk_sock () in
  let rsock = mk_sock () in
  let spec s = "unix:" ^ s in
  let pids = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter reap !pids;
      List.iter rm_rf [ d1; d2; d3 ];
      List.iter
        (fun s -> try Sys.remove s with Sys_error _ -> ())
        [ s1; s2; s3; rsock ])
    (fun () ->
      let p1 = spawn_daemon ~dir:d1 ~sock:s1 ~peers:[] in
      let p2 = spawn_daemon ~dir:d2 ~sock:s2 ~peers:[ spec s1; spec s3 ] in
      let p3 = spawn_daemon ~dir:d3 ~sock:s3 ~peers:[ spec s1; spec s2 ] in
      pids := [ p1; p2; p3 ];
      List.iter wait_ready [ s1; s2; s3 ];
      (* Seed d1 through the production path. *)
      let direct = run_mix s1 in
      (* d2 answers identically by pulling everything from d1. *)
      let via_d2 = run_mix s2 in
      Alcotest.(check (list string))
        "d2 replies byte-identical to d1" direct via_d2;
      let stats2 = daemon_stats s2 in
      Alcotest.(check bool) "d2 pulled on miss" true
        (member_int [ "replication"; "pulls" ] stats2 >= 1);
      Alcotest.(check bool) "d2 installed re-verified entries" true
        (member_int [ "replication"; "installs" ] stats2 >= 1);
      Alcotest.(check int) "d2 rejected nothing" 0
        (member_int [ "replication"; "rejects" ] stats2);
      Alcotest.(check int) "d2 recomputed nothing" 0
        (member_int [ "memo"; "enumerations" ] stats2);
      (* Router over all three, in-process. *)
      let peers =
        match Peer.parse_list [ spec s1; spec s2; spec s3 ] with
        | Ok ps -> ps
        | Error e -> Alcotest.fail e
      in
      let proxy = Proxy.create peers in
      let cfg =
        {
          Server.addr = Server.Unix_path rsock;
          workers = 2;
          queue_limit = 64;
          default_deadline_ms = None;
          access_log = None;
          handler = Some (Proxy.handler proxy);
        }
      in
      let srv = Domain.spawn (fun () -> Server.run cfg) in
      Fun.protect
        ~finally:(fun () -> shutdown_quietly rsock)
        (fun () ->
          wait_ready rsock;
          let routed = run_mix rsock in
          Alcotest.(check (list string))
            "routed replies byte-identical to direct" direct routed;
          (* Kill one backend outright: every subsequent routed query
             must re-route along the rendezvous order and succeed. *)
          reap p3;
          pids := [ p1; p2 ];
          for round = 1 to 3 do
            let again = run_mix rsock in
            Alcotest.(check (list string))
              (Printf.sprintf
                 "round %d after peer death: replies identical, none failed"
                 round)
              direct again
          done);
      let summary = Domain.join srv in
      Alcotest.(check bool) "router drained" true summary.Server.drained;
      (* The replicated store re-validates from scratch. *)
      List.iter shutdown_quietly [ s1; s2 ];
      List.iter
        (fun p ->
          match Unix.waitpid [] p with
          | _, Unix.WEXITED 0 -> ()
          | _ -> Alcotest.fail "daemon exited non-zero")
        [ p1; p2 ];
      pids := [];
      let code, lines =
        run_process
          (String.concat " "
             [
               Filename.quote (daemon_bin ());
               "cert"; "verify-store"; "--dir"; Filename.quote d2;
             ])
      in
      Alcotest.(check int) "verify-store on the replica exits 0" 0 code;
      Alcotest.(check bool) "replicated entries all re-verify" true
        (List.exists (contains_substring "0 failed") lines))

(* Atlas-warmed serving: build a small atlas via the CLI (twice — the
   second run must find every cell present), audit it, then serve
   covered queries from the warm store with zero enumerations. *)
let test_atlas_warm_serving () =
  let dir = mk_temp_dir () in
  let sock = mk_sock () in
  let pid = ref None in
  Fun.protect
    ~finally:(fun () ->
      Option.iter reap !pid;
      rm_rf dir;
      try Sys.remove sock with Sys_error _ -> ())
    (fun () ->
      let bin = daemon_bin () in
      let atlas sub =
        run_process
          (String.concat " "
             [
               Filename.quote bin; "atlas"; sub; "--dir"; Filename.quote dir;
               "--name"; "warm"; "--max-n"; "2";
             ])
      in
      let code, lines = atlas "build" in
      Alcotest.(check int) "atlas build exits 0" 0 code;
      Alcotest.(check bool) "first build enumerates cells" true
        (List.exists (contains_substring "cell(s)") lines);
      let code, lines = atlas "build" in
      Alcotest.(check int) "atlas rebuild exits 0" 0 code;
      Alcotest.(check bool) "rebuild is a no-op (resumable)" true
        (List.exists (contains_substring "(0 built") lines);
      let code, _ =
        run_process
          (String.concat " "
             [
               Filename.quote bin; "atlas"; "verify"; "--dir";
               Filename.quote dir; "--name"; "warm";
             ])
      in
      Alcotest.(check int) "atlas verify exits 0" 0 code;
      pid := Some (spawn_daemon ~dir ~sock ~peers:[]);
      wait_ready sock;
      (match
         Client.connect_retry ~attempts:5 ~delay:0.05 (Server.Unix_path sock)
       with
      | Error e -> Alcotest.fail e
      | Ok c ->
          Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
          List.iteri
            (fun i (meth, params) ->
              match Client.rpc c ~id:(Jsonl.Int i) ~meth ~params with
              | Ok _ -> ()
              | Error e -> Alcotest.fail (meth ^ ": " ^ e))
            [
              ( "closure",
                [ ("task", Jsonl.String "consensus"); ("n", Jsonl.Int 2) ] );
              ( "closure",
                [
                  ("task", Jsonl.String "aa");
                  ("n", Jsonl.Int 2);
                  ("m", Jsonl.Int 4);
                  ("eps", Jsonl.String "1/4");
                ] );
            ]);
      let stats = daemon_stats sock in
      Alcotest.(check int) "warm atlas: zero enumerations" 0
        (member_int [ "memo"; "enumerations" ] stats);
      Alcotest.(check bool) "warm atlas: store hits" true
        (member_int [ "store"; "hits" ] stats >= 1);
      shutdown_quietly sock;
      Option.iter
        (fun p ->
          match Unix.waitpid [] p with
          | _, Unix.WEXITED 0 -> pid := None
          | _ -> Alcotest.fail "daemon exited non-zero")
        !pid)

let suite =
  ( "fleet",
    [
      Alcotest.test_case "peer specs parse" `Quick test_peer_parse;
      Alcotest.test_case "ring: deterministic routing" `Quick
        test_ring_deterministic;
      Alcotest.test_case "ring: failover order is a permutation" `Quick
        test_ring_route_order;
      Alcotest.test_case "ring: keys spread over peers" `Quick
        test_ring_distribution;
      Alcotest.test_case "ring: failover spreads over survivors" `Quick
        test_ring_failover_spread;
      Alcotest.test_case "3-node fleet: replicate, route, survive" `Quick
        test_fleet_three_nodes;
      Alcotest.test_case "atlas-warmed daemon serves without enumerating"
        `Quick test_atlas_warm_serving;
    ] )
