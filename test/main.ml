(* Test entry point: one Alcotest run covering every library. *)

let () =
  Alcotest.run "speedup-reproduction"
    [
      Test_frac.suite;
      Test_value.suite;
      Test_simplex.suite;
      Test_complex.suite;
      Test_connectivity.suite;
      Test_dot.suite;
      Test_geometry.suite;
      Test_ordered_partition.suite;
      Test_collect_matrix.suite;
      Test_model.suite;
      Test_augmented.suite;
      Test_affine.suite;
      Test_homology.suite;
      Test_sperner.suite;
      Test_tasks.suite;
      Test_carrier_map.suite;
      Test_renaming.suite;
      Test_task_algebra.suite;
      Test_simplicial_map.suite;
      Test_csp.suite;
      Test_solvability.suite;
      Test_brute.suite;
      Test_classical.suite;
      Test_closure.suite;
      Test_cert.suite;
      Test_parallel.suite;
      Test_speedup.suite;
      Test_random_tasks.suite;
      Test_schedule.suite;
      Test_protocol.suite;
      Test_sim_object.suite;
      Test_executor.suite;
      Test_state_protocol.suite;
      Test_adversary.suite;
      Test_non_iterated.suite;
      Test_synthesis.suite;
      Test_algorithms.suite;
      Test_cross_check.suite;
      Test_core.suite;
      Test_golden.suite;
      Test_experiments.suite;
      Test_lint.suite;
    ]
