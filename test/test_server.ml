(* End-to-end tests for the query daemon (lib/server): every scenario
   drives a real Unix-domain-socket server running in a spawned
   domain, through the blocking [Client].  Covered: the loop-level and
   compute methods, byte-deterministic replies across SPEEDUP_JOBS=1
   and =4 under concurrent clients, backpressure past the queue
   high-water mark, per-request deadlines with cooperative
   cancellation, SIGINT drain, and cert-store memoization across
   connections. *)

let mk_temp_dir () =
  let path = Filename.temp_file "speedup-server-test" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* A scratch store plus a cold memo: the compute-path tests must not
   inherit cache entries from earlier suites (CI runs the whole binary
   with CERT_CACHE_DIR set). *)
let with_fresh_store f =
  let dir = mk_temp_dir () in
  Cert_store.set_dir (Some dir);
  Cert_store.reset_stats ();
  Closure.reset_memo ();
  Fun.protect
    ~finally:(fun () ->
      Cert_store.unset_dir ();
      rm_rf dir)
    (fun () -> f dir)

(* Runs [f addr] against a live server, then drains it (via [shutdown]
   unless [f] already stopped it) and returns [f]'s result with the
   server summary. *)
let with_server ?(workers = 2) ?(queue_limit = 64) ?default_deadline_ms f =
  let sock = Filename.temp_file "speedup-server" ".sock" in
  Sys.remove sock;
  let addr = Server.Unix_path sock in
  let cfg =
    {
      Server.addr;
      workers;
      queue_limit;
      default_deadline_ms;
      access_log = None;
      handler = None;
    }
  in
  let srv = Domain.spawn (fun () -> Server.run cfg) in
  let drain () =
    match Client.connect_retry ~attempts:3 ~delay:0.05 addr with
    | Ok c ->
        ignore (Client.rpc c ~id:Jsonl.Null ~meth:"shutdown" ~params:[]);
        Client.close c
    | Error _ -> ()
  in
  match f addr with
  | v ->
      drain ();
      (v, Domain.join srv)
  | exception e ->
      drain ();
      (try ignore (Domain.join srv) with _ -> ());
      raise e

let rpc_ok c ~id ~meth ~params =
  match Client.rpc c ~id ~meth ~params with
  | Ok v -> v
  | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" meth e)

let member_int name v =
  match Option.bind (Jsonl.member name v) Jsonl.to_int with
  | Some n -> n
  | None -> Alcotest.fail (Printf.sprintf "reply lacks integer %S" name)

let test_basic_methods () =
  with_fresh_store @@ fun _dir ->
  let (), summary =
    with_server (fun addr ->
        match Client.connect_retry addr with
        | Error e -> Alcotest.fail e
        | Ok c ->
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            (match rpc_ok c ~id:(Jsonl.Int 1) ~meth:"ping" ~params:[] with
            | Jsonl.String s -> Alcotest.(check string) "ping" "pong" s
            | _ -> Alcotest.fail "ping: non-string result");
            let v =
              rpc_ok c ~id:(Jsonl.Int 2) ~meth:"solvable"
                ~params:
                  [
                    ("task", Jsonl.String "consensus");
                    ("n", Jsonl.Int 2);
                    ("rounds", Jsonl.Int 1);
                  ]
            in
            Alcotest.(check (option string))
              "consensus n=2 after one round" (Some "unsolvable")
              (Option.bind (Jsonl.member "verdict" v) Jsonl.to_str);
            let v =
              rpc_ok c ~id:(Jsonl.String "c") ~meth:"closure"
                ~params:[ ("task", Jsonl.String "consensus"); ("n", Jsonl.Int 2) ]
            in
            Alcotest.(check (option bool))
              "consensus closure is a fixed point" (Some true)
              (Option.bind (Jsonl.member "fixed_point" v) Jsonl.to_bool);
            let stats = rpc_ok c ~id:(Jsonl.Int 3) ~meth:"stats" ~params:[] in
            Alcotest.(check bool) "stats counts requests" true
              (member_int "requests" stats >= 3);
            (match
               Client.rpc c ~id:(Jsonl.Int 4) ~meth:"no-such-method" ~params:[]
             with
            | Error e ->
                Alcotest.(check bool) "unknown method is bad_request" true
                  (String.length e >= 11 && String.sub e 0 11 = "bad_request")
            | Ok _ -> Alcotest.fail "unknown method accepted"))
  in
  Alcotest.(check bool) "drained" true summary.Server.drained;
  Alcotest.(check bool) "requests counted" true (summary.Server.requests >= 5)

(* The determinism acceptance check: the same scripted queries, issued
   by concurrent clients, produce byte-identical reply lines at
   SPEEDUP_JOBS=1 and =4.  Each pass starts from a cold memo and an
   empty store so both do the full computation. *)

let script client_id =
  let base =
    [
      ("ping", []);
      ("closure", [ ("task", Jsonl.String "consensus"); ("n", Jsonl.Int 2) ]);
      ( "closure",
        [
          ("task", Jsonl.String "aa");
          ("n", Jsonl.Int 2);
          ("m", Jsonl.Int 3);
          ("eps", Jsonl.String "1/3");
        ] );
      ( "solvable",
        [
          ("task", Jsonl.String "consensus");
          ("n", Jsonl.Int 2);
          ("rounds", Jsonl.Int 1);
        ] );
      ( "complex-stats",
        [ ("task", Jsonl.String "aa"); ("n", Jsonl.Int 2); ("m", Jsonl.Int 4) ]
      );
    ]
  in
  (* Stagger the start so clients hit different methods at once. *)
  let rec rotate n l =
    if n = 0 then l
    else match l with [] -> [] | x :: tl -> rotate (n - 1) (tl @ [ x ])
  in
  rotate (client_id mod List.length base) base

let run_client_script addr ~client_id =
  match Client.connect_retry addr with
  | Error e -> failwith e
  | Ok c ->
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      List.mapi
        (fun i (meth, params) ->
          match Client.request c ~id:(Jsonl.Int i) ~meth ~params with
          | Ok line -> line
          | Error e -> failwith (meth ^ ": " ^ e))
        (script client_id)

let determinism_pass jobs =
  Pool.set_jobs (Some jobs);
  Fun.protect ~finally:(fun () -> Pool.set_jobs None) @@ fun () ->
  with_fresh_store @@ fun _dir ->
  let replies, summary =
    with_server (fun addr ->
        List.init 3 (fun cid ->
            Domain.spawn (fun () -> run_client_script addr ~client_id:cid))
        |> List.map Domain.join)
  in
  Alcotest.(check bool) "no rejects" true (summary.Server.rejected = 0);
  replies

let test_deterministic_across_jobs () =
  let seq = determinism_pass 1 in
  let par = determinism_pass 4 in
  Alcotest.(check (list (list string)))
    "reply bytes identical at jobs=1 and jobs=4" seq par

(* Backpressure: workers=1, queue_limit=1, and a burst of slow queries
   pipelined on one connection — the worker holds the first, the queue
   holds one more, and the rest must come back [overloaded] while the
   early ones still complete. *)
let test_overload_burst () =
  with_fresh_store @@ fun _dir ->
  let outcomes, summary =
    with_server ~workers:1 ~queue_limit:1 (fun addr ->
        match Client.connect_retry addr with
        | Error e -> Alcotest.fail e
        | Ok c ->
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            let burst = 8 in
            let params =
              [
                ("task", Jsonl.String "liberal-aa");
                ("n", Jsonl.Int 3);
                ("m", Jsonl.Int 4);
              ]
            in
            let line i =
              Jsonl.to_string
                (Jsonl.Obj
                   [
                     ("id", Jsonl.Int i);
                     ("method", Jsonl.String "closure");
                     ("params", Jsonl.Obj params);
                   ])
            in
            for i = 0 to burst - 1 do
              match Client.send_line c (line i) with
              | Ok () -> ()
              | Error e -> Alcotest.fail e
            done;
            List.init burst (fun _ ->
                match Client.recv_line c with
                | Error e -> Alcotest.fail e
                | Ok reply -> (
                    match Jsonl.of_string reply with
                    | Error e -> Alcotest.fail e
                    | Ok v -> (
                        ( member_int "id" v,
                          match Jsonl.member "ok" v with
                          | Some (Jsonl.Bool true) -> "ok"
                          | _ -> (
                              match
                                Option.bind (Jsonl.member "error" v)
                                  (fun e ->
                                    Option.bind (Jsonl.member "code" e)
                                      Jsonl.to_str)
                              with
                              | Some code -> code
                              | None -> "unparseable") )))))
  in
  let count want = List.length (List.filter (fun (_, o) -> o = want) outcomes) in
  Alcotest.(check int) "every request answered" 8 (List.length outcomes);
  Alcotest.(check bool) "first request completes" true
    (List.assoc 0 outcomes = "ok");
  Alcotest.(check bool) "burst rejected past the high-water mark" true
    (count "overloaded" >= 1);
  Alcotest.(check int) "only ok/overloaded outcomes" 8
    (count "ok" + count "overloaded");
  Alcotest.(check int) "summary agrees on rejects" (count "overloaded")
    summary.Server.rejected;
  Alcotest.(check bool) "drained" true summary.Server.drained

(* Deadlines: a tiny budget on a heavy query times out via the
   cooperative cancellation hook, and the server keeps serving. *)
let test_deadline_timeout () =
  with_fresh_store @@ fun _dir ->
  let (), summary =
    with_server (fun addr ->
        match Client.connect_retry addr with
        | Error e -> Alcotest.fail e
        | Ok c ->
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            (match
               Client.rpc c ~deadline_ms:1 ~id:(Jsonl.Int 0) ~meth:"closure"
                 ~params:
                   [
                     ("task", Jsonl.String "liberal-aa");
                     ("n", Jsonl.Int 3);
                     ("m", Jsonl.Int 4);
                   ]
             with
            | Error e ->
                Alcotest.(check bool) "timeout error code" true
                  (String.length e >= 7 && String.sub e 0 7 = "timeout")
            | Ok _ -> Alcotest.fail "1ms deadline did not time out");
            match rpc_ok c ~id:(Jsonl.Int 1) ~meth:"ping" ~params:[] with
            | Jsonl.String s ->
                Alcotest.(check string) "server alive after timeout" "pong" s
            | _ -> Alcotest.fail "ping: non-string result")
  in
  Alcotest.(check bool) "drained" true summary.Server.drained

(* SIGINT: the in-process handler must stop accepting, finish
   in-flight work, and return a drained summary. *)
let test_sigint_drain () =
  with_fresh_store @@ fun _dir ->
  let (), summary =
    with_server (fun addr ->
        (match Client.connect_retry addr with
        | Error e -> Alcotest.fail e
        | Ok c ->
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            ignore (rpc_ok c ~id:(Jsonl.Int 0) ~meth:"ping" ~params:[]));
        Unix.kill (Unix.getpid ()) Sys.sigint)
  in
  Alcotest.(check bool) "SIGINT drains cleanly" true summary.Server.drained;
  Alcotest.(check bool) "requests served before the signal" true
    (summary.Server.requests >= 1)

(* Memoization across connections: the second client's identical query
   is served from the shared memo/store without a new enumeration. *)
let test_cross_connection_memoization () =
  with_fresh_store @@ fun _dir ->
  let (), _summary =
    with_server (fun addr ->
        let params =
          [ ("task", Jsonl.String "consensus"); ("n", Jsonl.Int 2) ]
        in
        let query_and_stats id =
          match Client.connect_retry addr with
          | Error e -> Alcotest.fail e
          | Ok c ->
              Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
              let reply = rpc_ok c ~id:(Jsonl.Int id) ~meth:"closure" ~params in
              let stats =
                rpc_ok c ~id:(Jsonl.Int (id + 1)) ~meth:"stats" ~params:[]
              in
              let memo =
                match Jsonl.member "memo" stats with
                | Some m -> m
                | None -> Alcotest.fail "stats lacks memo section"
              in
              (Jsonl.to_string reply, member_int "enumerations" memo)
        in
        let first, enums_cold = query_and_stats 0 in
        let second, enums_warm = query_and_stats 10 in
        Alcotest.(check bool) "cold query enumerates" true (enums_cold > 0);
        Alcotest.(check int) "warm query adds no enumerations" enums_cold
          enums_warm;
        Alcotest.(check string) "replies identical across connections" first
          second)
  in
  ()

let suite =
  ( "server",
    [
      Alcotest.test_case "basic methods end-to-end" `Quick test_basic_methods;
      Alcotest.test_case "byte-deterministic at jobs=1 and jobs=4" `Quick
        test_deterministic_across_jobs;
      Alcotest.test_case "overload burst gets backpressure" `Quick
        test_overload_burst;
      Alcotest.test_case "tiny deadline times out, server survives" `Quick
        test_deadline_timeout;
      Alcotest.test_case "SIGINT drains cleanly" `Quick test_sigint_drain;
      Alcotest.test_case "memoization across connections" `Quick
        test_cross_connection_memoization;
    ] )
