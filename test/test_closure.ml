(* Tests for the closure operator (Definitions 1-2) and its fixed
   points — the paper's central construction. *)

let op = Round_op.plain Model.Immediate

let test_delta_contains_delta () =
  (* Remark after Definition 2: Δ(σ) ⊆ Δ'(σ), for several tasks. *)
  let check task sigma =
    Alcotest.(check bool)
      (Printf.sprintf "Δ ⊆ Δ' for %s" task.Task.name)
      true
      (Complex.subcomplex (Task.delta task sigma) (Closure.delta ~op task sigma))
  in
  check (Consensus.binary ~n:2)
    (Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ]);
  check
    (Approx_agreement.task ~n:2 ~m:3 ~eps:(Frac.make 1 3))
    (Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 1) ]);
  check
    (Set_agreement.task ~n:3 ~k:2 ~values:[ Value.Int 0; Value.Int 1 ])
    (Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1); (3, Value.Int 0) ])

let test_consensus_fixed_point () =
  let t = Consensus.binary ~n:2 in
  Alcotest.(check bool) "fixed point" true
    (Closure.fixed_point_on ~op t (Task.input_simplices t))

let test_tau_member_consistent () =
  (* tau_member agrees with membership in the computed Δ'. *)
  let t = Approx_agreement.task ~n:2 ~m:3 ~eps:(Frac.make 1 3) in
  let sigma = Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 1) ] in
  let d' = Closure.delta ~op t sigma in
  List.iter
    (fun tau ->
      Alcotest.(check bool)
        (Printf.sprintf "membership of %s" (Simplex.to_string tau))
        (Complex.mem tau d')
        (Closure.tau_member ~op t ~sigma ~tau))
    (Task.chromatic_output_sets t sigma)

let test_claim2_small () =
  let eps = Frac.make 1 9 in
  let t = Approx_agreement.task ~n:2 ~m:9 ~eps in
  let reference = Approx_agreement.task ~n:2 ~m:9 ~eps:(Frac.make 3 9) in
  let sigma = Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 1) ] in
  Alcotest.(check bool) "CL(eps-AA) = 3eps-AA on the 0-1 edge" true
    (Closure.equal_on ~op t ~reference (Simplex.faces sigma))

let test_claim3_small () =
  let eps = Frac.make 1 2 in
  let t = Approx_agreement.liberal ~n:3 ~m:2 ~eps in
  let reference = Approx_agreement.liberal ~n:3 ~m:2 ~eps:Frac.one in
  let sigma =
    Simplex.of_list
      [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ]
  in
  Alcotest.(check bool) "CL(liberal eps) = liberal 2eps" true
    (Closure.equal_on ~op t ~reference (Simplex.faces sigma))

let test_closure_task_structure () =
  let t = Consensus.binary ~n:2 in
  let cl = Closure.task ~op t in
  Alcotest.(check int) "same arity" 2 cl.Task.arity;
  Alcotest.(check bool) "same inputs" true
    (Complex.equal (Task.inputs cl) (Task.inputs t));
  (* For a fixed point the closure's Δ agrees with the original. *)
  Alcotest.(check bool) "delta agrees" true
    (Task.delta_equal_on cl t (Task.input_simplices t))

let test_iterate_zero () =
  let t = Consensus.binary ~n:2 in
  Alcotest.(check string) "0 iterations is the task" t.Task.name
    (Closure.iterate ~op 0 t).Task.name

let test_augmented_closure_differs () =
  (* With test&set the closure of consensus-like behaviour changes: a
     disagreeing τ becomes legal for 2 participants (Figure 4). *)
  let t = Consensus.binary ~n:2 in
  let sigma = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ] in
  let tau = sigma in
  Alcotest.(check bool) "disagreement illegal in plain closure" false
    (Closure.tau_member ~op t ~sigma ~tau);
  Alcotest.(check bool) "legal with test&set" true
    (Closure.tau_member ~op:Round_op.test_and_set t ~sigma ~tau)

let test_beta_closure () =
  (* With all processes proposing the same β bit, the binary consensus
     box degenerates and the closure matches the plain one. *)
  let t = Approx_agreement.liberal ~n:3 ~m:2 ~eps:Frac.half in
  let sigma =
    Simplex.of_list
      [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ]
  in
  let plain = Closure.delta ~op t sigma in
  let beta = Closure.delta ~op:(Round_op.bin_consensus_beta (fun _ -> false)) t sigma in
  Alcotest.(check bool) "degenerate β closure = plain closure" true
    (Complex.equal plain beta)

let test_witness () =
  (* The Figure-2 style witness: extract the one-round local-task map
     for a closure member and re-validate it by hand. *)
  let eps = Frac.make 1 3 in
  let t = Approx_agreement.task ~n:2 ~m:3 ~eps in
  let sigma = Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 1) ] in
  let tau = Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 1) ] in
  (match Closure.witness ~op t ~sigma ~tau with
  | None -> Alcotest.fail "tau at spread 3eps must be a closure member"
  | Some f ->
      Alcotest.(check bool) "chromatic" true (Simplicial_map.is_chromatic f);
      (* Solo vertices pinned to τ. *)
      List.iter
        (fun i ->
          let solo = Vertex.make i (Model.solo_view i (Simplex.value i tau)) in
          Alcotest.(check bool) "solo pinned" true
            (Vertex.equal (Simplicial_map.apply f solo)
               (Simplex.find i tau)))
        [ 1; 2 ];
      (* Every facet of P^1(τ) lands inside Δ(σ). *)
      List.iter
        (fun facet ->
          Alcotest.(check bool) "image in Δ(σ)" true
            (Complex.mem (Simplicial_map.apply_simplex f facet) (Task.delta t sigma)))
        (Model.one_round_facets Model.Immediate tau));
  (* A non-member yields no witness. *)
  let t9 = Approx_agreement.task ~n:2 ~m:9 ~eps:(Frac.make 1 9) in
  let far = Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 1) ] in
  Alcotest.(check bool) "no witness beyond 3eps" true
    (Closure.witness ~op t9 ~sigma ~tau:far = None)

let test_delta_any () =
  (* The union-over-β closure contains each single-β closure and is
     memoized consistently. *)
  let t = Approx_agreement.liberal ~n:3 ~m:2 ~eps:Frac.half in
  let sigma =
    Simplex.of_list
      [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ]
  in
  let ops = Closure.bin_consensus_ops [ 1; 2; 3 ] in
  Alcotest.(check int) "8 betas" 8 (List.length ops);
  let d_any = Closure.delta_any ~ops ~name:"test-any" t sigma in
  List.iter
    (fun op ->
      Alcotest.(check bool) "single β contained" true
        (Complex.subcomplex (Closure.delta ~op t sigma) d_any))
    ops;
  let again = Closure.delta_any ~ops ~name:"test-any" t sigma in
  Alcotest.(check bool) "memoized result stable" true (Complex.equal d_any again)

let test_beta_closures_not_conflated () =
  (* Regression: different β operators must not share memo entries.
     On (0, 1/2, 1) the constant-β closure is the 2ε task (65 facets)
     while a mixed β — which lets disjoint sides exploit the box — is
     strictly larger (95 facets). *)
  let m = 4 in
  let laa = Approx_agreement.liberal ~n:3 ~m ~eps:(Frac.make 1 m) in
  let sigma =
    Simplex.of_list
      [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ]
  in
  let d beta = Closure.delta ~op:(Round_op.bin_consensus_beta beta) laa sigma in
  let d_const = d (fun _ -> false) in
  let d_mixed = d (fun i -> i = 1) in
  Alcotest.(check int) "constant β = 2eps closure" 65 (Complex.facet_count d_const);
  Alcotest.(check int) "mixed β strictly larger" 95 (Complex.facet_count d_mixed);
  Alcotest.(check bool) "not conflated" false (Complex.equal d_const d_mixed)

let test_round_op_accessors () =
  Alcotest.(check string) "plain name" "immediate"
    (Round_op.name (Round_op.plain Model.Immediate));
  Alcotest.(check string) "tas name" "immediate+test&set"
    (Round_op.name Round_op.test_and_set);
  let sigma = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ] in
  Alcotest.(check int) "complex facets" 3
    (Complex.facet_count (Round_op.complex (Round_op.plain Model.Immediate) sigma));
  (* Solo vertices: plain vs boxed shapes. *)
  let plain_solo = Round_op.solo_vertex (Round_op.plain Model.Immediate) sigma 1 in
  Alcotest.(check bool) "plain solo is a view" true
    (match Vertex.value plain_solo with Value.View _ -> true | _ -> false);
  let tas_solo = Round_op.solo_vertex Round_op.test_and_set sigma 1 in
  Alcotest.(check bool) "tas solo wins" true
    (match Vertex.value tas_solo with
    | Value.Pair { fst = Value.Bool true; _ } -> true
    | _ -> false)

(* ---- batched memo publication ---- *)

let test_batched_publication_parity () =
  (* Under the work-stealing pool every domain buffers memo writes and
     publishes them at chunk boundaries; nothing may be lost on the
     way: after the same workload the shared table must hold exactly
     the entries of the sequential run, and a warm pass must be served
     entirely from it.  Random tasks are unregistered, so the cert
     store never engages. *)
  let t = Test_random_tasks.random_task 1234 in
  let sigmas = Task.input_simplices t in
  let with_jobs n f =
    Pool.set_jobs (Some n);
    Fun.protect ~finally:(fun () -> Pool.set_jobs None) f
  in
  let workload () =
    List.iter (fun sigma -> ignore (Closure.delta ~op t sigma)) sigmas
  in
  let run jobs =
    with_jobs jobs (fun () ->
        Closure.reset_memo ();
        workload ();
        Closure.memo_stats ())
  in
  let seq = run 1 in
  let par = run 4 in
  Alcotest.(check int) "published entries match sequential"
    seq.Closure.entries par.Closure.entries;
  Alcotest.(check int) "enumerations match sequential"
    seq.Closure.enumerations par.Closure.enumerations;
  (* Warm pass at jobs=4: every σ served from the published table. *)
  with_jobs 4 (fun () -> workload ());
  let warm = Closure.memo_stats () in
  Alcotest.(check int) "warm pass adds no entries" par.Closure.entries
    warm.Closure.entries;
  Alcotest.(check int) "warm pass re-enumerates nothing"
    par.Closure.enumerations warm.Closure.enumerations;
  (* Two submitter domains race the same workload: their batches
     serialize on the pool, their flushes interleave, and the table
     still converges to the sequential entry set (a σ may be
     enumerated by both, but publication is keyed, not appended). *)
  with_jobs 4 (fun () ->
      Closure.reset_memo ();
      let d1 = Domain.spawn workload and d2 = Domain.spawn workload in
      Domain.join d1;
      Domain.join d2;
      Alcotest.(check int) "racing submitters converge on the same entries"
        seq.Closure.entries (Closure.memo_stats ()).Closure.entries)

let suite =
  ( "closure",
    [
      Alcotest.test_case "Δ ⊆ Δ'" `Quick test_delta_contains_delta;
      Alcotest.test_case "consensus fixed point" `Quick test_consensus_fixed_point;
      Alcotest.test_case "tau_member consistency" `Quick test_tau_member_consistent;
      Alcotest.test_case "Claim 2 (small)" `Quick test_claim2_small;
      Alcotest.test_case "Claim 3 (small)" `Quick test_claim3_small;
      Alcotest.test_case "closure task structure" `Quick test_closure_task_structure;
      Alcotest.test_case "iterate 0" `Quick test_iterate_zero;
      Alcotest.test_case "augmented closure differs" `Quick test_augmented_closure_differs;
      Alcotest.test_case "β closure degenerates" `Quick test_beta_closure;
      Alcotest.test_case "delta_any (union over β)" `Quick test_delta_any;
      Alcotest.test_case "closure witness (Figure 2)" `Quick test_witness;
      Alcotest.test_case "β closures not conflated" `Quick test_beta_closures_not_conflated;
      Alcotest.test_case "round-op accessors" `Quick test_round_op_accessors;
      Alcotest.test_case "batched memo publication parity" `Quick
        test_batched_publication_parity;
    ] )
