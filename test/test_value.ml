(* Tests for the universal vertex-value type. *)

let value = Alcotest.testable Value.pp Value.equal

let test_view_construction () =
  let v = Value.view [ (3, Value.Int 3); (1, Value.Int 1); (2, Value.Int 2) ] in
  Alcotest.(check (list int)) "ids sorted" [ 1; 2; 3 ] (Value.view_ids v);
  Alcotest.(check (option value)) "find present" (Some (Value.Int 2))
    (Value.view_find 2 v);
  Alcotest.(check (option value)) "find absent" None (Value.view_find 9 v);
  Alcotest.check_raises "repeated color rejected"
    (Invalid_argument "Value.view: repeated color") (fun () ->
      ignore (Value.view [ (1, Value.Int 0); (1, Value.Int 1) ]))

let test_view_order_irrelevant () =
  let a = Value.view [ (1, Value.Int 1); (2, Value.Int 2) ] in
  let b = Value.view [ (2, Value.Int 2); (1, Value.Int 1) ] in
  Alcotest.(check value) "views equal regardless of insertion order" a b;
  Alcotest.(check int) "hash equal" (Value.hash a) (Value.hash b)

let test_compare_constructors () =
  (* The order is total and discriminates constructors. *)
  let samples =
    [ Value.Unit; Value.Bool false; Value.Int 0; Value.frac 1 2; Value.Str "x";
      Value.pair Value.Unit Value.Unit; Value.view [ (1, Value.Unit) ] ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c = Value.compare a b in
          Alcotest.(check int) "antisymmetry" (-c) (Value.compare b a))
        samples)
    samples

let test_frac_values () =
  Alcotest.(check value) "frac normalizes" (Value.frac 1 2) (Value.frac 2 4);
  Alcotest.(check bool) "as_frac" true
    (Frac.equal (Value.as_frac (Value.frac 3 4)) (Frac.make 3 4));
  Alcotest.check_raises "as_frac on Int" (Invalid_argument "Value.as_frac")
    (fun () -> ignore (Value.as_frac (Value.Int 1)));
  Alcotest.(check bool) "as_bool" true (Value.as_bool (Value.Bool true));
  Alcotest.check_raises "as_bool on Unit" (Invalid_argument "Value.as_bool")
    (fun () -> ignore (Value.as_bool Value.Unit))

let test_nested_views () =
  (* Views of views, the shape of iterated full-information protocols. *)
  let inner = Value.view [ (1, Value.Int 0); (2, Value.Int 1) ] in
  let outer = Value.view [ (1, inner); (2, Value.view [ (2, Value.Int 1) ]) ] in
  Alcotest.(check (option value)) "nested find" (Some inner)
    (Value.view_find 1 outer);
  Alcotest.(check string) "pp stable" "{1:{1:0 2:1} 2:{2:1}}"
    (Value.to_string outer)

let test_pair_values () =
  let p = Value.pair (Value.Bool true) (Value.view [ (1, Value.Int 0) ]) in
  Alcotest.(check string) "pp pair" "(true,{1:0})" (Value.to_string p)

let prop_compare_reflexive =
  QCheck2.Test.make ~name:"compare reflexive" ~count:300 Gen.value (fun v ->
      Value.compare v v = 0 && Value.equal v v)

let prop_equal_implies_hash =
  QCheck2.Test.make ~name:"equal values hash equally" ~count:300
    QCheck2.Gen.(pair Gen.value Gen.value)
    (fun (a, b) -> (not (Value.equal a b)) || Value.hash a = Value.hash b)

let suite =
  ( "value",
    [
      Alcotest.test_case "view construction" `Quick test_view_construction;
      Alcotest.test_case "view order-insensitive" `Quick test_view_order_irrelevant;
      Alcotest.test_case "compare across constructors" `Quick test_compare_constructors;
      Alcotest.test_case "fraction values" `Quick test_frac_values;
      Alcotest.test_case "nested views" `Quick test_nested_views;
      Alcotest.test_case "pair values" `Quick test_pair_values;
      QCheck_alcotest.to_alcotest prop_compare_reflexive;
      QCheck_alcotest.to_alcotest prop_equal_implies_hash;
    ] )
