(* Helper process for the cross-process certificate-store race tests
   (test_cert.ml).

   Writer mode — two instances run concurrently against the same store
   root: each first drives the real production path (a closure
   enumeration that persists membership/enumeration certificates),
   then re-saves every entry [iters] times so the tmp-file + atomic
   rename sequence races on the same keys across processes.  The
   parent asserts the surviving entries are valid and re-verifiable.

   Pull mode — simulates a fleet replication puller: every entry of a
   source store is repeatedly installed into the destination store
   through [Cert_sync.install], i.e. the wire trust boundary
   (re-derived content address + full re-verification + canonical
   re-encode), racing the writers and any concurrent [cert gc].

   Usage: store_writer.exe DIR ITERS
          store_writer.exe --pull DST SRC ITERS *)

let read_file path =
  In_channel.with_open_bin path In_channel.input_all

let writer dir iters =
  Cert_store.set_dir (Some dir);
  let task = Consensus.binary ~n:2 in
  let op = Round_op.plain Model.Immediate in
  (* The production path: both processes start on an empty (or
     freshly-populated) store, so the initial saves already race. *)
  List.iter
    (fun sigma -> ignore (Closure.delta ~memo:false ~op task sigma))
    (Task.input_simplices task);
  (* Then hammer the same keys directly. *)
  let entries = Cert_store.entries () in
  for _ = 1 to iters do
    List.iter
      (fun (key, _path) ->
        match Cert_store.load key with
        | Some sexp -> Cert_store.save ~key sexp
        | None -> ())
      entries
  done;
  print_string "ok"

let puller dst src iters =
  (* Snapshot the source entries as wire text, then replay them into
     the destination through the replication install path. *)
  Cert_store.set_dir (Some src);
  let payload =
    List.map (fun (key, path) -> (key, read_file path)) (Cert_store.entries ())
  in
  Cert_store.set_dir (Some dst);
  let installed = ref 0 in
  for _ = 1 to iters do
    List.iter
      (fun (key, text) ->
        match Cert_sync.install ~key text with
        | Ok _ -> incr installed
        | Error msg ->
            Printf.eprintf "pull install %s: %s\n" key msg;
            exit 1)
      payload
  done;
  Printf.printf "ok %d" !installed

let () =
  match Sys.argv with
  | [| _; dir; iters |] -> writer dir (int_of_string iters)
  | [| _; "--pull"; dst; src; iters |] -> puller dst src (int_of_string iters)
  | _ ->
      prerr_endline
        "usage: store_writer.exe DIR ITERS | store_writer.exe --pull DST SRC \
         ITERS";
      exit 2
