(* Helper process for the cross-process certificate-store race test
   (test_cert.ml).  Two instances run concurrently against the same
   store root: each first drives the real production path (a closure
   enumeration that persists membership/enumeration certificates),
   then re-saves every entry [iters] times so the tmp-file + atomic
   rename sequence races on the same keys across processes.  The
   parent asserts the surviving entries are valid and re-verifiable.

   Usage: store_writer.exe DIR ITERS *)

let () =
  if Array.length Sys.argv <> 3 then (
    prerr_endline "usage: store_writer.exe DIR ITERS";
    exit 2);
  let dir = Sys.argv.(1) in
  let iters = int_of_string Sys.argv.(2) in
  Cert_store.set_dir (Some dir);
  let task = Consensus.binary ~n:2 in
  let op = Round_op.plain Model.Immediate in
  (* The production path: both processes start on an empty (or
     freshly-populated) store, so the initial saves already race. *)
  List.iter
    (fun sigma -> ignore (Closure.delta ~memo:false ~op task sigma))
    (Task.input_simplices task);
  (* Then hammer the same keys directly. *)
  let entries = Cert_store.entries () in
  for _ = 1 to iters do
    List.iter
      (fun (key, _path) ->
        match Cert_store.load key with
        | Some sexp -> Cert_store.save ~key sexp
        | None -> ())
      entries
  done;
  print_string "ok"
