(* Tests for the operational simulator. *)

let value = Alcotest.testable Value.pp Value.equal

let inputs2 = [ (1, Value.Int 10); (2, Value.Int 20) ]

let view l = Value.view l

let test_solo_first_views () =
  let protocol = Protocol.full_information ~rounds:1 in
  let result =
    Executor.run protocol ~inputs:inputs2
      ~schedule:[ Schedule.Is_round [ [ 1 ]; [ 2 ] ] ]
  in
  Alcotest.(check (list (pair int value)))
    "process 1 solo, process 2 sees both"
    [
      (1, view [ (1, Value.Int 10) ]);
      (2, view [ (1, Value.Int 10); (2, Value.Int 20) ]);
    ]
    result.Executor.outputs

let test_concurrent_block () =
  let protocol = Protocol.full_information ~rounds:1 in
  let result =
    Executor.run protocol ~inputs:inputs2
      ~schedule:[ Schedule.Is_round [ [ 1; 2 ] ] ]
  in
  let both = view [ (1, Value.Int 10); (2, Value.Int 20) ] in
  Alcotest.(check (list (pair int value))) "both see both"
    [ (1, both); (2, both) ] result.Executor.outputs

let test_collect_round () =
  (* Process 2 writes last and reads everything; process 1 reads before
     2's write and misses it. *)
  let protocol = Protocol.full_information ~rounds:1 in
  let round =
    Schedule.Step_round
      [ Schedule.Write 1; Schedule.Read (1, 1); Schedule.Read (1, 2);
        Schedule.Write 2; Schedule.Read (2, 1); Schedule.Read (2, 2) ]
  in
  let result = Executor.run protocol ~inputs:inputs2 ~schedule:[ round ] in
  Alcotest.(check (list (pair int value)))
    "asymmetric views"
    [
      (1, view [ (1, Value.Int 10) ]);
      (2, view [ (1, Value.Int 10); (2, Value.Int 20) ]);
    ]
    result.Executor.outputs

let test_two_rounds_nesting () =
  let protocol = Protocol.full_information ~rounds:2 in
  let schedule =
    [ Schedule.Is_round [ [ 1; 2 ] ]; Schedule.Is_round [ [ 2 ]; [ 1 ] ] ]
  in
  let result = Executor.run protocol ~inputs:inputs2 ~schedule in
  let r1 = view [ (1, Value.Int 10); (2, Value.Int 20) ] in
  Alcotest.(check (list (pair int value)))
    "round-2 views nest round-1 views"
    [ (1, view [ (1, r1); (2, r1) ]); (2, view [ (2, r1) ]) ]
    result.Executor.outputs;
  Alcotest.(check int) "two view profiles recorded" 2
    (List.length result.Executor.round_views)

let test_crash_mid_round () =
  (* Process 1 writes but never collects: it decides nothing, but its
     write is visible to process 2. *)
  let protocol = Protocol.full_information ~rounds:1 in
  let round =
    Schedule.Step_round
      [ Schedule.Write 1; Schedule.Write 2; Schedule.Read (2, 1);
        Schedule.Read (2, 2) ]
  in
  let result = Executor.run protocol ~inputs:inputs2 ~schedule:[ round ] in
  Alcotest.(check (list (pair int value)))
    "only process 2 decides, having seen 1"
    [ (2, view [ (1, Value.Int 10); (2, Value.Int 20) ]) ]
    result.Executor.outputs

let test_crash_round_boundary () =
  let protocol = Protocol.full_information ~rounds:2 in
  let schedule =
    [ Schedule.Is_round [ [ 1; 2 ] ]; Schedule.Is_round [ [ 2 ] ] ]
  in
  let result = Executor.run protocol ~inputs:inputs2 ~schedule in
  Alcotest.(check int) "one decider" 1 (List.length result.Executor.outputs);
  Alcotest.(check bool) "process 2 decided" true
    (List.mem_assoc 2 result.Executor.outputs)

let test_boxed_round () =
  let protocol =
    Protocol.make ~name:"tas-echo" ~rounds:1
      ~alpha:(fun ~round:_ _ _ -> Value.Unit)
      ~decide:(fun _ v -> v)
      ()
  in
  let result =
    Executor.run ~box:Sim_object.test_and_set protocol ~inputs:inputs2
      ~schedule:[ Schedule.Is_round [ [ 2 ]; [ 1 ] ] ]
  in
  (* First-scheduled process 2 wins the object. *)
  let won i =
    match List.assoc i result.Executor.outputs with
    | Value.Pair { fst = Value.Bool b; _ } -> b
    | _ -> Alcotest.fail "expected boxed view"
  in
  Alcotest.(check bool) "2 wins" true (won 2);
  Alcotest.(check bool) "1 loses" false (won 1)

let test_zero_round_protocol () =
  let protocol =
    Protocol.make ~name:"echo-input" ~rounds:0 ~decide:(fun _ v -> v) ()
  in
  let result = Executor.run protocol ~inputs:inputs2 ~schedule:[] in
  Alcotest.(check (list (pair int value))) "outputs = inputs" inputs2
    result.Executor.outputs

let test_schedule_too_short () =
  let protocol = Protocol.full_information ~rounds:2 in
  Alcotest.check_raises "short schedule rejected"
    (Invalid_argument "Executor.run: schedule shorter than the protocol")
    (fun () ->
      ignore
        (Executor.run protocol ~inputs:inputs2
           ~schedule:[ Schedule.Is_round [ [ 1; 2 ] ] ]))

let test_simplex_extraction () =
  let protocol = Protocol.full_information ~rounds:1 in
  let result =
    Executor.run protocol ~inputs:inputs2
      ~schedule:[ Schedule.Is_round [ [ 1; 2 ] ] ]
  in
  Alcotest.(check (list int)) "outputs simplex ids" [ 1; 2 ]
    (Simplex.ids (Executor.outputs_simplex result));
  Alcotest.(check (list int)) "final views simplex ids" [ 1; 2 ]
    (Simplex.ids (Executor.final_view_simplex result))

let suite =
  ( "executor",
    [
      Alcotest.test_case "solo-first IS round" `Quick test_solo_first_views;
      Alcotest.test_case "concurrent block" `Quick test_concurrent_block;
      Alcotest.test_case "collect interleaving" `Quick test_collect_round;
      Alcotest.test_case "view nesting over rounds" `Quick test_two_rounds_nesting;
      Alcotest.test_case "mid-round crash" `Quick test_crash_mid_round;
      Alcotest.test_case "round-boundary crash" `Quick test_crash_round_boundary;
      Alcotest.test_case "boxed round" `Quick test_boxed_round;
      Alcotest.test_case "zero-round protocol" `Quick test_zero_round_protocol;
      Alcotest.test_case "schedule length check" `Quick test_schedule_too_short;
      Alcotest.test_case "simplex extraction" `Quick test_simplex_extraction;
    ] )
