(* Tests for black boxes and the augmented one-round complexes
   (Section 4, Figures 5 and 7). *)

let sigma3 =
  Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1); (3, Value.Int 1) ]

let sigma2 = Simplex.proj [ 1; 2 ] sigma3
let unit_alpha = Augmented.alpha_const Value.Unit

let tas_facets s =
  Augmented.one_round_facets ~box:Black_box.test_and_set ~alpha:unit_alpha
    ~round:1 s

let test_tas_box_semantics () =
  let outcomes =
    Black_box.test_and_set.Black_box.outcomes ~part:[ [ 2 ]; [ 1; 3 ] ]
      ~inputs:[ (1, Value.Unit); (2, Value.Unit); (3, Value.Unit) ]
  in
  (* Only the first-block member can win. *)
  Alcotest.(check int) "one outcome" 1 (List.length outcomes);
  Alcotest.(check bool) "2 wins" true
    (List.for_all
       (fun assignment ->
         List.assoc 2 assignment = Value.Bool true
         && List.assoc 1 assignment = Value.Bool false
         && List.assoc 3 assignment = Value.Bool false)
       outcomes);
  let multi =
    Black_box.test_and_set.Black_box.outcomes ~part:[ [ 1; 3 ]; [ 2 ] ]
      ~inputs:[ (1, Value.Unit); (2, Value.Unit); (3, Value.Unit) ]
  in
  Alcotest.(check int) "two possible winners" 2 (List.length multi)

let test_tas_solo_output () =
  Alcotest.(check bool) "solo wins" true
    (Value.equal
       (Black_box.solo_output Black_box.test_and_set 1 Value.Unit)
       (Value.Bool true))

let test_bin_consensus_semantics () =
  let inputs = [ (1, Value.Bool false); (2, Value.Bool true); (3, Value.Bool true) ] in
  let one_decision =
    Black_box.bin_consensus.Black_box.outcomes ~part:[ [ 2; 3 ]; [ 1 ] ] ~inputs
  in
  (* Both first-block members propose true: single decision. *)
  Alcotest.(check int) "one decision" 1 (List.length one_decision);
  let two_decisions =
    Black_box.bin_consensus.Black_box.outcomes ~part:[ [ 1; 2 ]; [ 3 ] ] ~inputs
  in
  Alcotest.(check int) "two decisions" 2 (List.length two_decisions);
  List.iter
    (fun assignment ->
      let values = List.map snd assignment in
      Alcotest.(check bool) "everyone gets the same value" true
        (List.for_all (Value.equal (List.hd values)) values))
    two_decisions

let test_figure5_shape () =
  let c = Complex.of_facets (tas_facets sigma3) in
  Alcotest.(check int) "18 facets" 18 (Complex.facet_count c);
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "7 vertices of color %d" i)
        7
        (List.length (Complex.vertices_of_color i c)))
    [ 1; 2; 3 ];
  (* The solo vertex with outcome 0 does not exist. *)
  let bad_solo =
    Vertex.make 1 (Value.pair (Value.Bool false) (Model.solo_view 1 (Value.Int 0)))
  in
  Alcotest.(check bool) "no losing solo vertex" false (Complex.mem_vertex bad_solo c);
  Alcotest.(check bool) "winning solo vertex present" true
    (Complex.mem_vertex
       (Augmented.solo_vertex ~box:Black_box.test_and_set ~alpha:unit_alpha
          ~round:1 sigma3 1)
       c)

let test_exactly_one_winner_per_facet () =
  List.iter
    (fun facet ->
      let winners =
        List.filter
          (fun v ->
            match Vertex.value v with
            | Value.Pair { fst = Value.Bool b; _ } -> b
            | _ -> false)
          (Simplex.vertices facet)
      in
      Alcotest.(check int) "exactly one winner" 1 (List.length winners))
    (tas_facets sigma3)

let test_figure7_shape () =
  (* Black (process 1) proposes 0, the other two propose 1. *)
  let beta i = i > 1 in
  let facets =
    Augmented.one_round_facets ~box:Black_box.bin_consensus
      ~alpha:(Augmented.alpha_of_beta beta) ~round:1 sigma3
  in
  let c = Complex.of_facets facets in
  Alcotest.(check int) "16 facets" 16 (Complex.facet_count c);
  Alcotest.(check int) "19 vertices" 19 (Complex.vertex_count c);
  (* Process 1 running solo must decide its own proposal 0: the
     "solo-decides-1" vertex is removed. *)
  let removed =
    Vertex.make 1 (Value.pair (Value.Bool true) (Model.solo_view 1 (Value.Int 0)))
  in
  Alcotest.(check bool) "removed solo vertex" false (Complex.mem_vertex removed c);
  (* Executions among processes 2 and 3 only always decide 1. *)
  let facets23 =
    Augmented.one_round_facets ~box:Black_box.bin_consensus
      ~alpha:(Augmented.alpha_of_beta beta) ~round:1 (Simplex.proj [ 2; 3 ] sigma3)
  in
  Alcotest.(check bool) "2-3 executions all decide true" true
    (List.for_all
       (fun f ->
         List.for_all
           (fun v ->
             match Vertex.value v with
             | Value.Pair { fst = b; _ } -> Value.equal b (Value.Bool true)
             | _ -> false)
           (Simplex.vertices f))
       facets23)

let test_strip_box () =
  let stripped =
    List.sort_uniq Simplex.compare
      (List.map
         (fun f ->
           Simplex.of_vertices (List.map Augmented.strip_box (Simplex.vertices f)))
         (tas_facets sigma3))
  in
  let plain =
    List.sort_uniq Simplex.compare (Model.one_round_facets Model.Immediate sigma3)
  in
  Alcotest.(check int) "strip recovers the 13 IS facets" 13 (List.length stripped);
  Alcotest.(check bool) "equal as sets" true (List.for_all2 Simplex.equal stripped plain);
  Alcotest.check_raises "strip of non-augmented vertex"
    (Invalid_argument "Augmented.strip_box: not an augmented vertex") (fun () ->
      ignore (Augmented.strip_box (Vertex.make 1 (Value.Int 0))))

let test_two_process_tas_complex () =
  (* Figure 4's complex: 4 facets (3 partitions, the concurrent one
     duplicated by winner choice), 6 vertices. *)
  let c = Complex.of_facets (tas_facets sigma2) in
  Alcotest.(check int) "4 facets" 4 (Complex.facet_count c);
  Alcotest.(check int) "6 vertices" 6 (Complex.vertex_count c)

let test_iterated_augmented () =
  let p2 =
    Augmented.protocol_complex ~box:Black_box.test_and_set ~alpha:unit_alpha
      sigma2 2
  in
  Alcotest.(check int) "P^2 facets = 4^2" 16 (Complex.facet_count p2);
  Alcotest.check_raises "negative rounds"
    (Invalid_argument "Augmented.protocol_complex: negative round count")
    (fun () ->
      ignore
        (Augmented.protocol_complex ~box:Black_box.test_and_set
           ~alpha:unit_alpha sigma2 (-1)))

let suite =
  ( "augmented",
    [
      Alcotest.test_case "test&set semantics" `Quick test_tas_box_semantics;
      Alcotest.test_case "test&set solo output" `Quick test_tas_solo_output;
      Alcotest.test_case "bin-consensus semantics" `Quick test_bin_consensus_semantics;
      Alcotest.test_case "Figure 5 shape" `Quick test_figure5_shape;
      Alcotest.test_case "one winner per facet" `Quick test_exactly_one_winner_per_facet;
      Alcotest.test_case "Figure 7 shape" `Quick test_figure7_shape;
      Alcotest.test_case "strip_box" `Quick test_strip_box;
      Alcotest.test_case "2-process complex (Figure 4)" `Quick test_two_process_tas_complex;
      Alcotest.test_case "iterated augmented complex" `Quick test_iterated_augmented;
    ] )
