(* Tests for the hash-consed topology core (lib/topology/intern.ml):
   physical-equality round-trips through every constructor,
   compare-vs-structural-compare oracle agreement, merge-walk
   subset/proj against their naive definitions, id-independence of
   rendered output across job counts, a multi-domain arena hammer, and
   compatibility with a seed-era (pre-interning) certificate store. *)

(* ---- deep value generator (pairs and views, unlike Gen.value) ---- *)

let rec deep_value n : Value.t QCheck2.Gen.t =
  if n = 0 then Gen.value
  else
    QCheck2.Gen.oneof
      [
        Gen.value;
        QCheck2.Gen.map2 Value.pair (deep_value (n - 1)) (deep_value (n - 1));
        QCheck2.Gen.(
          int_range 1 3 >>= fun k ->
          let colors = List.filteri (fun i _ -> i < k) [ 1; 2; 3 ] in
          flatten_l
            (List.map (fun c -> map (fun v -> (c, v)) (deep_value (n - 1))) colors)
          >|= Value.view);
      ]

(* Rebuild a value bottom-up through the smart constructors: interning
   must hand back the very same physical nodes. *)
let rec rebuild = function
  | Value.Pair { fst; snd; _ } -> Value.pair (rebuild fst) (rebuild snd)
  | Value.View { assoc; _ } ->
      Value.view (List.map (fun (i, v) -> (i, rebuild v)) assoc)
  | (Value.Unit | Value.Bool _ | Value.Int _ | Value.Frac _ | Value.Str _) as
    leaf ->
      leaf

let prop_value_roundtrip_physical =
  QCheck2.Test.make ~name:"rebuilt values are physically equal" ~count:300
    (deep_value 4) (fun v ->
      match rebuild v with
      | Value.Pair _ | Value.View _ -> rebuild v == v
      | _ -> Value.equal (rebuild v) v)

let prop_compare_agrees_with_structural =
  QCheck2.Test.make ~name:"compare = structural_compare (oracle)" ~count:500
    QCheck2.Gen.(pair (deep_value 4) (deep_value 4))
    (fun (a, b) ->
      Value.compare a b = Value.structural_compare a b
      && Value.equal a b = (Value.structural_compare a b = 0))

let prop_view_insertion_order_shares =
  QCheck2.Test.make ~name:"views share nodes regardless of insertion order"
    ~count:200
    QCheck2.Gen.(pair (deep_value 2) (deep_value 2))
    (fun (x, y) ->
      let a = Value.view [ (1, x); (2, y) ] in
      let b = Value.view [ (2, y); (1, x) ] in
      a == b && Value.hash a = Value.hash b)

(* ---- simplex round-trips ---- *)

let rebuild_vertex v = Vertex.make (Vertex.color v) (rebuild (Vertex.value v))

let prop_of_vertices_physical =
  QCheck2.Test.make ~name:"of_vertices re-interns to the same node" ~count:300
    (Gen.simplex ()) (fun s ->
      let s' = Simplex.of_vertices (List.rev_map rebuild_vertex (Simplex.vertices s)) in
      Simplex.equal s' s && s' == s)

let prop_faces_physical =
  QCheck2.Test.make ~name:"faces are shared across computations" ~count:200
    (Gen.simplex ()) (fun s ->
      List.for_all2 (fun a b -> a == b) (Simplex.faces s) (Simplex.faces s))

let prop_union_physical =
  QCheck2.Test.make ~name:"union of faces returns the interned whole" ~count:200
    (Gen.simplex ()) (fun s ->
      List.for_all
        (fun tau -> Simplex.union tau s == s && Simplex.union s tau == s)
        (Simplex.faces s))

(* ---- merge-walk subset/proj against their naive definitions ---- *)

let naive_subset tau sigma =
  List.for_all (fun v -> Simplex.mem v sigma) (Simplex.vertices tau)

let prop_subset_oracle =
  QCheck2.Test.make ~name:"subset = naive membership scan" ~count:300
    QCheck2.Gen.(pair (Gen.simplex ()) (Gen.simplex ()))
    (fun (a, b) ->
      Simplex.subset a b = naive_subset a b
      && List.for_all (fun f -> Simplex.subset f a) (Simplex.faces a))

let prop_proj_oracle =
  QCheck2.Test.make ~name:"proj = naive color filter" ~count:300
    QCheck2.Gen.(pair (Gen.simplex ()) (list_size (int_range 1 6) (int_range 1 6)))
    (fun (s, sel) ->
      let naive =
        List.filter (fun v -> List.mem (Vertex.color v) sel) (Simplex.vertices s)
      in
      match naive with
      | [] -> (
          match Simplex.proj sel s with
          | exception Invalid_argument _ -> true
          | _ -> false)
      | kept -> Simplex.proj sel s == Simplex.of_vertices kept)

(* ---- id-independence of rendered output across job counts ---- *)

let render_closure () =
  let task = Consensus.binary ~n:2 in
  let op = Round_op.plain Model.Immediate in
  String.concat "\n"
    (List.map
       (fun sigma ->
         Format.asprintf "%a" Complex.pp (Closure.delta ~op task sigma))
       (Task.input_simplices task))

let test_jobs_independence () =
  (* A fresh computation at each job count: different interleavings
     assign different intern ids, yet the rendering must not move a
     byte.  The memo and store are disabled so the second run really
     recomputes. *)
  Cert.Store.set_dir None;
  Fun.protect
    ~finally:(fun () ->
      Cert.Store.unset_dir ();
      Pool.set_jobs None)
    (fun () ->
      Pool.set_jobs (Some 1);
      Closure.reset_memo ();
      let seq = render_closure () in
      Pool.set_jobs (Some 4);
      Closure.reset_memo ();
      let par = render_closure () in
      Alcotest.(check string) "byte-identical rendering at jobs=1 and jobs=4"
        seq par)

(* ---- multi-domain intern-table hammer ---- *)

let hammer_build () =
  List.init 400 (fun i ->
      let leaf = Value.Int (i mod 23) in
      let v =
        Value.view
          [ (1, leaf); (2, Value.pair (Value.Bool (i mod 2 = 0)) leaf) ]
      in
      let w = Value.pair v (Value.view [ (3, v) ]) in
      Simplex.of_list [ (1, v); (2, w); (3, Value.Int (i mod 7)) ])

let test_multi_domain_hammer () =
  (* Four domains race to intern the same 400 simplices (and all their
     vertices and values).  Every domain must end up holding the same
     physical nodes — one survivor per structure, no torn shards. *)
  let domains = List.init 4 (fun _ -> Domain.spawn hammer_build) in
  let results = List.map Domain.join domains in
  let first = List.hd results in
  List.iteri
    (fun d r ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d interned the same nodes" d)
        true
        (List.for_all2 (fun a b -> a == b) first r))
    results;
  Alcotest.(check bool) "arenas report live nodes" true
    (Value.interned_nodes () > 0
    && Vertex.interned_nodes () > 0
    && Simplex.interned_nodes () > 0)

(* ---- per-domain front caches ---- *)

let test_front_cache_hammer () =
  (* Each domain re-interns the same small node set 200 times: after
     the first pass every lookup is a front-cache hit served without
     touching a shard lock.  A hit must return the same physical node
     the shards hold — across iterations within a domain and across
     all four domains — or the "one live representative per structure"
     contract is broken exactly on the hot path the cache accelerates. *)
  let build () =
    List.init 40 (fun i ->
        let leaf = Value.Int (i mod 5) in
        Value.view [ (1, leaf); (2, Value.pair leaf (Value.Bool (i mod 3 = 0))) ])
  in
  let rounds () =
    let first = build () in
    for _ = 1 to 200 do
      if not (List.for_all2 ( == ) first (build ())) then
        failwith "front cache returned a non-canonical node"
    done;
    first
  in
  let domains = List.init 4 (fun _ -> Domain.spawn rounds) in
  let results = List.map Domain.join domains in
  let first = List.hd results in
  List.iteri
    (fun d r ->
      Alcotest.(check bool)
        (Printf.sprintf "domain %d converged on the canonical nodes" d)
        true
        (List.for_all2 ( == ) first r))
    results

(* ---- seed-era certificate store compatibility ---- *)

(* Same resolution idiom as test_lint: under `dune runtest` the store
   is materialized next to the binary; under `dune exec` fall back to
   the source tree. *)
let fixture_store =
  let test_dir = Filename.dirname Sys.executable_name in
  let candidates =
    [
      Filename.concat test_dir "cert_fixture_store";
      Filename.concat test_dir "../../../test/cert_fixture_store";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some d -> d
  | None -> List.hd candidates

let test_seed_store_compatible () =
  (* The fixture store was written by the pre-interning engine
     (`closure --task consensus -n 3`).  Content addresses are digests
     of the canonical structural sexp, which interning must not have
     moved by a byte: the warm run must verify all 26 certificates and
     never enumerate, miss, or write. *)
  Cert.Store.set_dir (Some fixture_store);
  Fun.protect
    ~finally:(fun () -> Cert.Store.unset_dir ())
    (fun () ->
      Closure.reset_memo ();
      Cert.Store.reset_stats ();
      let task = Consensus.binary ~n:3 in
      let op = Round_op.plain Model.Immediate in
      let inputs = Task.input_simplices task in
      List.iter
        (fun sigma ->
          Alcotest.(check bool) "still a fixed point" true
            (Complex.equal (Closure.delta ~op task sigma) (Task.delta task sigma)))
        inputs;
      let ms = Closure.memo_stats () in
      Alcotest.(check int) "zero enumerations: every answer cert-served" 0
        ms.Closure.enumerations;
      let st = Cert.Store.stats () in
      Alcotest.(check int) "all 26 seed-era certificates hit" 26
        st.Cert.Store.hits;
      Alcotest.(check int) "no misses" 0 st.Cert.Store.misses;
      Alcotest.(check int) "no writes" 0 st.Cert.Store.writes;
      Alcotest.(check int) "no corrupt entries" 0 st.Cert.Store.corrupt)

let suite =
  ( "intern",
    [
      QCheck_alcotest.to_alcotest prop_value_roundtrip_physical;
      QCheck_alcotest.to_alcotest prop_compare_agrees_with_structural;
      QCheck_alcotest.to_alcotest prop_view_insertion_order_shares;
      QCheck_alcotest.to_alcotest prop_of_vertices_physical;
      QCheck_alcotest.to_alcotest prop_faces_physical;
      QCheck_alcotest.to_alcotest prop_union_physical;
      QCheck_alcotest.to_alcotest prop_subset_oracle;
      QCheck_alcotest.to_alcotest prop_proj_oracle;
      Alcotest.test_case "rendering is id-independent (jobs=1 vs 4)" `Quick
        test_jobs_independence;
      Alcotest.test_case "multi-domain intern hammer" `Quick
        test_multi_domain_hammer;
      Alcotest.test_case "front-cache hammer (4 domains, hot hits)" `Quick
        test_front_cache_hammer;
      Alcotest.test_case "seed-era cert store still verifies" `Quick
        test_seed_store_compatible;
    ] )
