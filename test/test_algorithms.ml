(* Tests for the paper's upper-bound algorithms. *)

let exhaustive participants rounds boxed =
  Adversary.exhaustive_is ~boxed ~participants ~rounds

let no_violation ?box protocol task inputs schedules =
  Adversary.check_task ?box protocol task ~inputs ~schedules = []

let test_rounds_needed () =
  Alcotest.(check int) "halving 1/8" 3 (Aa_halving.rounds_needed ~eps:(Frac.make 1 8));
  Alcotest.(check int) "halving 1/5" 3 (Aa_halving.rounds_needed ~eps:(Frac.make 1 5));
  Alcotest.(check int) "thirds 1/9" 2 (Aa_thirds.rounds_needed ~eps:(Frac.make 1 9));
  Alcotest.(check int) "thirds 1/4" 2 (Aa_thirds.rounds_needed ~eps:(Frac.make 1 4));
  Alcotest.(check int) "bc rounds n=5" 3 (Bc_consensus.rounds_needed ~n:5);
  Alcotest.(check int) "bc rounds n=1" 0 (Bc_consensus.rounds_needed ~n:1);
  Alcotest.(check int) "bitwise 1/16" 4 (Bc_bitwise_aa.rounds_needed ~eps:(Frac.make 1 16))

let test_grid_divisibility_guards () =
  Alcotest.check_raises "halving needs 2^t | m"
    (Invalid_argument "Aa_halving.spec: 2^rounds must divide m") (fun () ->
      ignore (Aa_halving.spec ~m:6 ~rounds:2));
  Alcotest.check_raises "thirds needs 3^t | m"
    (Invalid_argument "Aa_thirds.spec: 3^rounds must divide m") (fun () ->
      ignore (Aa_thirds.spec ~m:6 ~rounds:2));
  Alcotest.check_raises "bitwise needs rounds <= k"
    (Invalid_argument "Bc_bitwise_aa.spec: rounds > k") (fun () ->
      ignore (Bc_bitwise_aa.spec ~k:2 ~rounds:3))

let test_halving_exhaustive () =
  let eps = Frac.make 1 4 in
  let task = Approx_agreement.task ~n:3 ~m:4 ~eps in
  Alcotest.(check bool) "no violations over all 2-round IS schedules" true
    (no_violation
       (Aa_halving.protocol ~m:4 ~eps)
       task
       [ (1, Value.frac 0 1); (2, Value.frac 1 4); (3, Value.frac 1 1) ]
       (exhaustive [ 1; 2; 3 ] 2 false))

let test_halving_stays_on_grid () =
  let eps = Frac.make 1 4 in
  let protocol = Aa_halving.protocol ~m:4 ~eps in
  List.iter
    (fun schedule ->
      let result =
        Executor.run protocol
          ~inputs:[ (1, Value.frac 0 1); (2, Value.frac 3 4); (3, Value.frac 1 1) ]
          ~schedule
      in
      List.iter
        (fun (_, v) ->
          Alcotest.(check bool) "grid point" true
            (Frac.is_multiple_of (Value.as_frac v) ~step:(Frac.make 1 4)))
        result.Executor.outputs)
    (exhaustive [ 1; 2; 3 ] 2 false)

let test_thirds_exhaustive () =
  let eps = Frac.make 1 9 in
  let task = Approx_agreement.task ~n:2 ~m:9 ~eps in
  Alcotest.(check bool) "thirds ok over all schedules" true
    (no_violation
       (Aa_thirds.protocol ~m:9 ~eps)
       task
       [ (1, Value.frac 2 9); (2, Value.frac 1 1) ]
       (exhaustive [ 1; 2 ] 2 false))

let test_thirds_rejects_three_processes () =
  let protocol = Aa_thirds.protocol ~m:3 ~eps:(Frac.make 1 3) in
  Alcotest.(check bool) "3-process run raises" true
    (match
       Executor.run protocol
         ~inputs:[ (1, Value.frac 0 1); (2, Value.frac 1 1); (3, Value.frac 1 1) ]
         ~schedule:[ Schedule.Is_round [ [ 1; 2; 3 ] ] ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_tas_consensus_all_schedules () =
  let task = Consensus.multi ~n:2 ~values:[ Value.Int 4; Value.Int 6 ] in
  Alcotest.(check bool) "consensus with T&S" true
    (no_violation ~box:Sim_object.test_and_set Tas_consensus2.protocol task
       [ (1, Value.Int 4); (2, Value.Int 6) ]
       (exhaustive [ 1; 2 ] 1 true))

let test_tas_decide_map () =
  (* The explicit decision map of Figure 4. *)
  let won = Value.pair (Value.Bool true) (Value.view [ (1, Value.Int 4) ]) in
  Alcotest.(check bool) "winner keeps input" true
    (Value.equal (Tas_consensus2.decide 1 won) (Value.Int 4));
  let lost =
    Value.pair (Value.Bool false)
      (Value.view [ (1, Value.Int 4); (2, Value.Int 6) ])
  in
  Alcotest.(check bool) "loser adopts" true
    (Value.equal (Tas_consensus2.decide 2 lost) (Value.Int 4))

let test_bc_consensus_exhaustive_small () =
  let task = Consensus.multi ~n:3 ~values:[ Value.Int 1; Value.Int 2; Value.Int 3 ] in
  Alcotest.(check bool) "n=3 over all boxed schedules" true
    (no_violation ~box:Sim_object.consensus (Bc_consensus.protocol ~n:3) task
       [ (1, Value.Int 1); (2, Value.Int 2); (3, Value.Int 3) ]
       (exhaustive [ 1; 2; 3 ] 2 true))

let test_bc_bitwise_exhaustive_small () =
  let eps = Frac.make 1 4 in
  let task = Approx_agreement.task ~n:3 ~m:4 ~eps in
  Alcotest.(check bool) "bitwise AA over all boxed schedules" true
    (no_violation ~box:Sim_object.consensus
       (Bc_bitwise_aa.protocol ~k:2 ~eps)
       task
       [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ]
       (exhaustive [ 1; 2; 3 ] 2 true))

let test_bitwise_handles_value_one () =
  (* The clamp trick: inputs 1 and 1-1/m must merge, not crash. *)
  let eps = Frac.make 1 4 in
  let task = Approx_agreement.task ~n:2 ~m:4 ~eps in
  Alcotest.(check bool) "clamped top value" true
    (no_violation ~box:Sim_object.consensus
       (Bc_bitwise_aa.protocol ~k:2 ~eps)
       task
       [ (1, Value.frac 3 4); (2, Value.frac 1 1) ]
       (exhaustive [ 1; 2 ] 2 true))

let prop_halving_spread_halves =
  (* One round of halving at round r on spreads <= 2^{1-r} yields
     spreads <= 2^{-r}: Equation (3) as a property over random inputs
     and schedules. *)
  QCheck2.Test.make ~name:"halving contracts the spread" ~count:150
    QCheck2.Gen.(pair (int_range 0 10000) (list_size (return 3) (int_range 0 8)))
    (fun (seed, nums) ->
      let m = 8 in
      let eps = Frac.make 1 8 in
      let inputs = List.mapi (fun i k -> (i + 1, Value.frac k m)) nums in
      let rng = Random.State.make [| seed |] in
      let schedule =
        Schedule.random_is ~participants:[ 1; 2; 3 ] ~rounds:3 rng
      in
      let result = Executor.run (Aa_halving.protocol ~m ~eps) ~inputs ~schedule in
      match result.Executor.outputs with
      | [] -> true
      | outs ->
          let vs = List.map (fun (_, v) -> Value.as_frac v) outs in
          let lo = List.fold_left Frac.min (List.hd vs) vs in
          let hi = List.fold_left Frac.max (List.hd vs) vs in
          Frac.(Frac.sub hi lo <= eps))

let suite =
  ( "algorithms",
    [
      Alcotest.test_case "rounds_needed" `Quick test_rounds_needed;
      Alcotest.test_case "grid guards" `Quick test_grid_divisibility_guards;
      Alcotest.test_case "halving exhaustive" `Quick test_halving_exhaustive;
      Alcotest.test_case "halving on grid" `Quick test_halving_stays_on_grid;
      Alcotest.test_case "thirds exhaustive" `Quick test_thirds_exhaustive;
      Alcotest.test_case "thirds arity guard" `Quick test_thirds_rejects_three_processes;
      Alcotest.test_case "tas consensus" `Quick test_tas_consensus_all_schedules;
      Alcotest.test_case "tas decide map" `Quick test_tas_decide_map;
      Alcotest.test_case "bc consensus n=3" `Quick test_bc_consensus_exhaustive_small;
      Alcotest.test_case "bc bitwise AA" `Quick test_bc_bitwise_exhaustive_small;
      Alcotest.test_case "bitwise clamp at 1" `Quick test_bitwise_handles_value_one;
      QCheck_alcotest.to_alcotest prop_halving_spread_halves;
    ] )
