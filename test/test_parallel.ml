(* Tests for the domain-pool runtime (lib/parallel): determinism,
   exception propagation, nesting, and the jobs=1 sequential
   equivalence that the byte-identical-tables guarantee rests on. *)

let with_jobs n f =
  Pool.set_jobs (Some n);
  Fun.protect ~finally:(fun () -> Pool.set_jobs None) f

let test_jobs_resolution () =
  with_jobs 3 (fun () -> Alcotest.(check int) "override wins" 3 (Pool.jobs ()));
  Alcotest.check_raises "set_jobs 0 rejected"
    (Invalid_argument "Pool.set_jobs: job count must be positive, got 0")
    (fun () -> Pool.set_jobs (Some 0));
  Alcotest.check_raises "set_jobs negative rejected"
    (Invalid_argument "Pool.set_jobs: job count must be positive, got -2")
    (fun () -> Pool.set_jobs (Some (-2)));
  Pool.set_jobs None;
  Alcotest.(check bool) "default is positive" true (Pool.jobs () >= 1)

(* SPEEDUP_JOBS must reject 0, negatives, and garbage loudly.  Since
   [Unix.putenv] cannot unset a variable, "" (treated as unset) is
   used to restore the environment afterwards. *)
let test_env_jobs_validation () =
  let with_env value f =
    let saved = Option.value (Sys.getenv_opt "SPEEDUP_JOBS") ~default:"" in
    Unix.putenv "SPEEDUP_JOBS" value;
    Fun.protect ~finally:(fun () -> Unix.putenv "SPEEDUP_JOBS" saved) f
  in
  Pool.set_jobs None;
  with_env "3" (fun () ->
      Alcotest.(check int) "env positive accepted" 3 (Pool.jobs ()));
  with_env " 2 " (fun () ->
      Alcotest.(check int) "env trimmed" 2 (Pool.jobs ()));
  with_env "" (fun () ->
      Alcotest.(check bool) "empty env means default" true (Pool.jobs () >= 1));
  with_env "0" (fun () ->
      Alcotest.check_raises "env zero rejected"
        (Invalid_argument "SPEEDUP_JOBS must be a positive integer, got 0")
        (fun () -> ignore (Pool.jobs ())));
  with_env "-4" (fun () ->
      Alcotest.check_raises "env negative rejected"
        (Invalid_argument "SPEEDUP_JOBS must be a positive integer, got -4")
        (fun () -> ignore (Pool.jobs ())));
  with_env "lots" (fun () ->
      Alcotest.check_raises "env garbage rejected"
        (Invalid_argument "SPEEDUP_JOBS must be a positive integer, got \"lots\"")
        (fun () -> ignore (Pool.jobs ())));
  (* An override shields resolution from a broken environment. *)
  with_env "bogus" (fun () ->
      with_jobs 2 (fun () ->
          Alcotest.(check int) "override bypasses env" 2 (Pool.jobs ())))

let test_order_preserved () =
  let l = List.init 257 (fun i -> i) in
  with_jobs 4 (fun () ->
      Alcotest.(check (list int))
        "map order" (List.map (fun x -> (x * 31) mod 97) l)
        (Pool.map (fun x -> (x * 31) mod 97) l);
      Alcotest.(check (list int))
        "filter_map order"
        (List.filter_map (fun x -> if x mod 3 = 0 then Some (x * 2) else None) l)
        (Pool.filter_map (fun x -> if x mod 3 = 0 then Some (x * 2) else None) l);
      Alcotest.(check (list int))
        "filter order"
        (List.filter (fun x -> x mod 7 <> 0) l)
        (Pool.filter (fun x -> x mod 7 <> 0) l))

let test_empty_and_singleton () =
  with_jobs 4 (fun () ->
      Alcotest.(check (list int)) "empty map" [] (Pool.map succ []);
      Alcotest.(check (list int)) "singleton map" [ 8 ] (Pool.map succ [ 7 ]);
      Alcotest.(check bool) "empty for_all" true (Pool.for_all (fun _ -> false) []))

let test_for_all () =
  let l = List.init 500 (fun i -> i) in
  with_jobs 4 (fun () ->
      Alcotest.(check bool) "all pass" true (Pool.for_all (fun x -> x >= 0) l);
      Alcotest.(check bool) "one fails" false
        (Pool.for_all (fun x -> x <> 311) l))

let test_exception_propagation () =
  with_jobs 4 (fun () ->
      Alcotest.check_raises "exception re-raised" (Failure "boom") (fun () ->
          ignore (Pool.map (fun x -> if x = 137 then failwith "boom" else x)
                    (List.init 400 (fun i -> i))));
      (* The pool survives an exceptional batch. *)
      Alcotest.(check (list int)) "pool reusable" [ 2; 3; 4 ]
        (Pool.map succ [ 1; 2; 3 ]))

let test_nested_no_deadlock () =
  (* Inner calls — from workers and from the participating submitter —
     must flatten to the sequential path instead of waiting on the
     pool.  A deadlock here would hang the suite, so keep it small. *)
  let l = List.init 60 (fun i -> i) in
  with_jobs 4 (fun () ->
      let sums =
        Pool.map
          (fun x ->
            List.fold_left ( + ) 0 (Pool.map (fun y -> x + y) (List.init 30 Fun.id)))
          l
      in
      Alcotest.(check int) "nested result" (List.length l) (List.length sums);
      Alcotest.(check bool) "caller not left flagged" false
        (Pool.in_parallel_region ()))

let test_jobs1_equals_sequential () =
  (* SPEEDUP_JOBS=1 must be the plain List path: identical results and
     identical (left-to-right) effect order. *)
  let l = List.init 100 (fun i -> i) in
  let trace_par = ref [] and trace_seq = ref [] in
  with_jobs 1 (fun () ->
      ignore (Pool.map (fun x -> trace_par := x :: !trace_par; x) l));
  ignore (List.map (fun x -> trace_seq := x :: !trace_seq; x) l);
  Alcotest.(check (list int)) "effect order" !trace_seq !trace_par;
  with_jobs 1 (fun () ->
      Alcotest.(check (list int)) "filter_map"
        (List.filter_map (fun x -> if x mod 2 = 0 then Some x else None) l)
        (Pool.filter_map (fun x -> if x mod 2 = 0 then Some x else None) l);
      Alcotest.(check bool) "for_all" true (Pool.for_all (fun x -> x < 100) l))

(* ---- work-stealing: determinism under uneven load ---- *)

(* Deterministic busy work — a pure spin, no clocks (the repo bans
   ambient time sources; a timed sleep would also make the test
   flaky).  Items at wildly uneven prices push the per-slot deques out
   of lock-step so thieves actually steal mid-batch. *)
let spin n x =
  let acc = ref x in
  for i = 1 to n do
    acc := ((!acc * 1103515245) + i) land 0xFFFFFF
  done;
  !acc

let prop_steal_schedule_invariant =
  QCheck2.Test.make
    ~name:"work stealing: results index-stable across jobs {1,2,4,8}"
    ~count:20
    QCheck2.Gen.(pair (int_range 0 400) (int_range 0 1000))
    (fun (len, salt) ->
      let l = List.init len (fun i -> i + salt) in
      (* Every 17th item costs ~400x the others: an injected stall that
         forces its owner's deque to back up and its neighbours to
         steal. *)
      let f x = spin (if x mod 17 = 0 then 20_000 else 50) x in
      let g x = if spin 10 x mod 3 = 0 then Some (x * 2) else None in
      let expect_map = List.map f l and expect_fm = List.filter_map g l in
      List.for_all
        (fun n ->
          with_jobs n (fun () ->
              Pool.map ~grain:1 f l = expect_map
              && Pool.filter_map ~grain:1 g l = expect_fm))
        [ 1; 2; 4; 8 ])

let test_grain_cutoff_inline () =
  (* A fan-out that does not fill two chunks runs inline on the
     caller: left-to-right effect order (the List path), and none of
     the domain-crossing counters move. *)
  let l = List.init 64 (fun i -> i) in
  Pool.reset_stats ();
  let trace = ref [] in
  with_jobs 4 (fun () ->
      ignore (Pool.map ~grain:64 (fun x -> trace := x :: !trace; x) l));
  Alcotest.(check (list int)) "inline effect order" (List.rev l) !trace;
  let s = Pool.stats () in
  Alcotest.(check int) "no batch for sub-grain fan-out" 0 s.Pool.batches;
  Alcotest.(check int) "no chunks for sub-grain fan-out" 0 s.Pool.chunks

let test_stats_accounting () =
  let l = List.init 300 (fun i -> i) in
  Pool.reset_stats ();
  with_jobs 4 (fun () -> ignore (Pool.map ~grain:1 (spin 100) l));
  let s = Pool.stats () in
  Alcotest.(check int) "one batch" 1 s.Pool.batches;
  Alcotest.(check int) "every item covered exactly once" (List.length l)
    s.Pool.items;
  Alcotest.(check bool) "chunks executed" true (s.Pool.chunks > 0);
  Alcotest.(check int) "per-slot tallies sum to the chunk total"
    s.Pool.chunks
    (List.fold_left (fun acc (_, c) -> acc + c) 0 s.Pool.domain_chunks);
  (* Flush rounds follow chunks 1:1 once any hook is registered (the
     closure memo registers one at module init). *)
  Alcotest.(check bool) "steal accounting consistent" true
    (s.Pool.stolen_chunks >= s.Pool.steals);
  Pool.reset_stats ();
  Alcotest.(check int) "reset zeroes" 0 (Pool.stats ()).Pool.batches

(* SPEEDUP_GRAIN is validated exactly like SPEEDUP_JOBS. *)
let test_env_grain_validation () =
  let with_env value f =
    let saved = Option.value (Sys.getenv_opt "SPEEDUP_GRAIN") ~default:"" in
    Unix.putenv "SPEEDUP_GRAIN" value;
    Fun.protect ~finally:(fun () -> Unix.putenv "SPEEDUP_GRAIN" saved) f
  in
  let l = List.init 32 (fun i -> i) in
  with_env "1000000" (fun () ->
      Pool.reset_stats ();
      with_jobs 4 (fun () ->
          Alcotest.(check (list int)) "huge grain floor forces inline"
            (List.map succ l) (Pool.map succ l));
      Alcotest.(check int) "no batch under env grain" 0
        (Pool.stats ()).Pool.batches);
  with_env "0" (fun () ->
      Alcotest.check_raises "env zero rejected"
        (Invalid_argument "SPEEDUP_GRAIN must be a positive integer, got 0")
        (fun () ->
          with_jobs 4 (fun () -> ignore (Pool.map succ l))));
  with_env "coarse" (fun () ->
      Alcotest.check_raises "env garbage rejected"
        (Invalid_argument
           "SPEEDUP_GRAIN must be a positive integer, got \"coarse\"")
        (fun () ->
          with_jobs 4 (fun () -> ignore (Pool.map succ l))))

(* ---- the determinism guarantee on the real hot path ---- *)

let op = Round_op.plain Model.Immediate

let delta_at_jobs n t sigma =
  with_jobs n (fun () -> Closure.delta ~memo:false ~op t sigma)

let prop_closure_jobs_invariant =
  QCheck2.Test.make
    ~name:"Closure.delta at jobs=4 equals jobs=1 (random tasks)" ~count:15
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let t = Test_random_tasks.random_task seed in
      List.for_all
        (fun sigma ->
          Complex.equal (delta_at_jobs 1 t sigma) (delta_at_jobs 4 t sigma))
        (Task.input_simplices t))

let test_closure_known_instance_jobs_invariant () =
  (* A named instance (liberal AA, the e7 facet) on top of the random
     family: closure and solvability agree across job counts. *)
  let t = Approx_agreement.liberal ~n:3 ~m:2 ~eps:Frac.half in
  let sigma =
    Simplex.of_list
      [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ]
  in
  Alcotest.(check bool) "Δ' identical across job counts" true
    (Complex.equal (delta_at_jobs 1 t sigma) (delta_at_jobs 4 t sigma));
  let solve n =
    with_jobs n (fun () ->
        Solvability.is_solvable
          (Solvability.task_in_model Model.Immediate t ~rounds:1))
  in
  Alcotest.(check bool) "solver verdict identical" (solve 1) (solve 4)

let test_adversary_jobs_invariant () =
  let eps = Frac.make 1 2 in
  let protocol = Aa_halving.protocol ~m:2 ~eps in
  let task = Approx_agreement.task ~n:3 ~m:2 ~eps in
  let inputs =
    [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ]
  in
  let schedules =
    Adversary.exhaustive_is ~boxed:false ~participants:[ 1; 2; 3 ] ~rounds:1
  in
  let run n =
    with_jobs n (fun () ->
        List.map
          (fun f -> f.Adversary.reason)
          (Adversary.check_task protocol task ~inputs ~schedules))
  in
  Alcotest.(check (list string)) "failure sweep identical" (run 1) (run 4)

let suite =
  ( "parallel",
    [
      Alcotest.test_case "jobs resolution" `Quick test_jobs_resolution;
      Alcotest.test_case "SPEEDUP_JOBS validation" `Quick
        test_env_jobs_validation;
      Alcotest.test_case "order preserved" `Quick test_order_preserved;
      Alcotest.test_case "empty / singleton" `Quick test_empty_and_singleton;
      Alcotest.test_case "for_all" `Quick test_for_all;
      Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
      Alcotest.test_case "nested map does not deadlock" `Quick test_nested_no_deadlock;
      Alcotest.test_case "jobs=1 = sequential path" `Quick test_jobs1_equals_sequential;
      QCheck_alcotest.to_alcotest prop_steal_schedule_invariant;
      Alcotest.test_case "grain cutoff runs inline" `Quick
        test_grain_cutoff_inline;
      Alcotest.test_case "pool stats accounting" `Quick test_stats_accounting;
      Alcotest.test_case "SPEEDUP_GRAIN validation" `Quick
        test_env_grain_validation;
      QCheck_alcotest.to_alcotest prop_closure_jobs_invariant;
      Alcotest.test_case "closure/solver jobs-invariant" `Quick
        test_closure_known_instance_jobs_invariant;
      Alcotest.test_case "adversary sweep jobs-invariant" `Quick
        test_adversary_jobs_invariant;
    ] )
