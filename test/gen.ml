(* QCheck generators shared across the property-based suites. *)

open QCheck2

let small_frac : Frac.t Gen.t =
  Gen.map2
    (fun n d -> Frac.make n d)
    (Gen.int_range (-24) 24)
    (Gen.int_range 1 12)

let grid_frac ~m : Frac.t Gen.t =
  Gen.map (fun k -> Frac.make k m) (Gen.int_range 0 m)

let value : Value.t Gen.t =
  Gen.oneof
    [
      Gen.return Value.Unit;
      Gen.map (fun b -> Value.Bool b) Gen.bool;
      Gen.map (fun n -> Value.Int n) (Gen.int_range (-50) 50);
      Gen.map (fun q -> Value.Frac q) small_frac;
    ]

let vertex ?(max_color = 5) () : Vertex.t Gen.t =
  Gen.map2 Vertex.make (Gen.int_range 1 max_color) value

(* A chromatic simplex over colors drawn from 1..max_color. *)
let simplex ?(max_color = 5) () : Simplex.t Gen.t =
  let open Gen in
  int_range 1 max_color >>= fun card ->
  let rec pick_colors acc k =
    if k = 0 then return acc
    else
      int_range 1 max_color >>= fun c ->
      if List.mem c acc then pick_colors acc k
      else pick_colors (c :: acc) (k - 1)
  in
  pick_colors [] (min card max_color) >>= fun colors ->
  flatten_l (List.map (fun c -> map (fun v -> (c, v)) value) colors)
  >|= Simplex.of_list

(* A small complex: a few facets over a bounded color set. *)
let complex ?(max_color = 4) ?(max_facets = 4) () : Complex.t Gen.t =
  let open Gen in
  int_range 1 max_facets >>= fun k ->
  list_size (return k) (simplex ~max_color ()) >|= Complex.of_facets

(* A vertex map with distinct domain vertices (one per color of a
   generated simplex); images are arbitrary. *)
let simplicial_map ?(max_color = 5) () : Simplicial_map.t Gen.t =
  let open Gen in
  simplex ~max_color () >>= fun dom ->
  flatten_l
    (List.map
       (fun v -> map (fun w -> (v, w)) (vertex ~max_color ()))
       (Simplex.vertices dom))
  >|= Simplicial_map.of_assoc

let ordered_partition ~ids : Ordered_partition.t Gen.t =
  let parts = Ordered_partition.enumerate ids in
  Gen.oneofl parts

let frac_print q = Frac.to_string q
let simplex_print s = Simplex.to_string s
