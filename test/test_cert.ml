(* Tests for the proof-certificate subsystem: canonical S-expressions,
   codec round-trips, independent verification (including rejection of
   tampered witnesses), and the persistent store. *)

module G = QCheck2.Gen

(* ---- canonical S-expressions ---- *)

let sexp_gen : Cert_sexp.t G.t =
  let atom =
    G.oneof
      [
        G.string_size ~gen:G.printable (G.int_range 0 8);
        G.oneofl
          [ ""; "plain"; "has space"; "(paren)"; "quo\"te"; "back\\slash";
            "new\nline"; "tab\there"; ";comment" ];
      ]
  in
  G.sized_size (G.int_range 0 3) (fun n ->
      G.fix
        (fun self n ->
          if n = 0 then G.map (fun a -> Cert_sexp.Atom a) atom
          else
            G.oneof
              [
                G.map (fun a -> Cert_sexp.Atom a) atom;
                G.map
                  (fun l -> Cert_sexp.List l)
                  (G.list_size (G.int_range 0 4) (self (n - 1)));
              ])
        n)

let prop_sexp_roundtrip =
  QCheck2.Test.make ~name:"sexp: of_string (to_string s) = s" ~count:500
    sexp_gen (fun s ->
      match Cert_sexp.of_string (Cert_sexp.to_string s) with
      | Ok s' -> Cert_sexp.equal s s'
      | Error _ -> false)

let test_sexp_rejects_garbage () =
  List.iter
    (fun text ->
      match Cert_sexp.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "parsed %S" text)
    [ ""; "("; ")"; "(a b"; "a)"; "a b"; "(a) b"; "\"unterminated" ]

(* ---- codec round-trips ---- *)

let prop_value_roundtrip =
  QCheck2.Test.make ~name:"codec: value round-trip" ~count:500 Gen.value
    (fun v -> Value.equal v (Cert_codec.value_of (Cert_codec.value v)))

let prop_vertex_roundtrip =
  QCheck2.Test.make ~name:"codec: vertex round-trip" ~count:500
    (Gen.vertex ()) (fun v ->
      Vertex.equal v (Cert_codec.vertex_of (Cert_codec.vertex v)))

let prop_simplex_roundtrip =
  QCheck2.Test.make ~name:"codec: simplex round-trip" ~count:300
    (Gen.simplex ()) (fun s ->
      Simplex.equal s (Cert_codec.simplex_of (Cert_codec.simplex s)))

let prop_complex_roundtrip =
  QCheck2.Test.make ~name:"codec: complex round-trip" ~count:200
    (Gen.complex ()) (fun c ->
      Complex.equal c (Cert_codec.complex_of (Cert_codec.complex c)))

let prop_map_roundtrip =
  QCheck2.Test.make ~name:"codec: simplicial map round-trip" ~count:200
    (Gen.simplicial_map ()) (fun f ->
      Simplicial_map.equal f
        (Cert_codec.simplicial_map_of (Cert_codec.simplicial_map f)))

let prop_simplex_digest_stable =
  QCheck2.Test.make ~name:"codec: equal simplices share a digest" ~count:200
    (Gen.simplex ()) (fun s ->
      let s' = Simplex.of_vertices (List.rev (Simplex.vertices s)) in
      Cert_codec.digest (Cert_codec.simplex s)
      = Cert_codec.digest (Cert_codec.simplex s'))

(* ---- certificate round-trips, one per kind ---- *)

let aa = Approx_agreement.task ~n:2 ~m:3 ~eps:(Frac.make 1 3)
let op = Round_op.plain Model.Immediate
let aa_sigma = Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 1) ]

(* A genuine one-round membership: a facet of Δ'(σ) \ Δ(σ) together
   with the decision map found by the solver. *)
let genuine_membership =
  lazy
    (let d' = Closure.delta ~op aa aa_sigma in
     let d = Task.delta aa aa_sigma in
     let tau =
       List.find
         (fun t -> Simplex.card t = 2 && not (Complex.mem t d))
         (Complex.facets d')
     in
     let witness = Closure.witness ~op aa ~sigma:aa_sigma ~tau in
     Alcotest.(check bool) "witness exists" true (witness <> None);
     Cert.
       {
         op_name = Round_op.name op;
         task_name = aa.Task.name;
         sigma = aa_sigma;
         tau;
         member = true;
         witness;
       })

(* The full Δ'(σ) with every member's witness — verifiable, unlike a
   partial list (the checker requires Δ(σ) ⊆ members). *)
let genuine_enumeration =
  lazy
    (let d' = Closure.delta ~op aa aa_sigma in
     Cert.Enumeration
       {
         op_name = Round_op.name op;
         task_name = aa.Task.name;
         sigma = aa_sigma;
         members =
           List.map
             (fun tau -> (tau, Closure.witness ~op aa ~sigma:aa_sigma ~tau))
             (Complex.facets d');
       })

let sample_certs () =
  let m = Lazy.force genuine_membership in
  let cons = Consensus.binary ~n:2 in
  let sigma = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ] in
  let square =
    Complex.of_facets
      [
        Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 0) ];
        Simplex.of_list [ (1, Value.Int 1); (2, Value.Int 1) ];
      ]
  in
  [
    Cert.Membership m;
    Cert.Membership { m with member = false; witness = None };
    Lazy.force genuine_enumeration;
    Cert.Solution
      {
        model_name = "immediate";
        task_name = cons.Task.name;
        rounds = 1;
        inputs = [ sigma ];
        verdict = false;
        map = None;
      };
    Cert.Fixed_point
      {
        op_name = m.Cert.op_name;
        task_name = cons.Task.name;
        per_sigma = [ (sigma, Complex.facets (Task.delta cons sigma)) ];
      };
    Cert.Unsolvable
      {
        task_name = cons.Task.name;
        rounds = 0;
        reason =
          Cert.Disconnected
            {
              complex = square;
              u = Vertex.make 1 (Value.Int 0);
              v = Vertex.make 1 (Value.Int 1);
            };
      };
  ]

let test_cert_roundtrip () =
  List.iter
    (fun cert ->
      match Cert.decode (Cert.encode cert) with
      | Ok cert' ->
          Alcotest.(check bool)
            (Printf.sprintf "round-trip %s" (Cert.kind_name cert))
            true (Cert.equal cert cert')
      | Error msg ->
          Alcotest.failf "decode (%s): %s" (Cert.kind_name cert) msg)
    (sample_certs ())

let test_key_is_query_addressed () =
  (* Same question, different answers: one key. *)
  let m = Lazy.force genuine_membership in
  let yes = Cert.Membership m in
  let no = Cert.Membership { m with member = false; witness = None } in
  Alcotest.(check string) "key ignores the answer" (Cert.key yes) (Cert.key no);
  Alcotest.(check bool)
    "distinct τ, distinct key" true
    (Cert.key yes
    <> Cert.key (Cert.Membership { m with tau = m.Cert.sigma }))

(* ---- verification ---- *)

let env = Cert_registry.env

let check_verify name expected cert =
  let got =
    match Cert.verify env cert with
    | Ok () -> `Ok
    | Error (Cert.Unsupported _) -> `Unsupported
    | Error (Cert.Invalid _) -> `Invalid
  in
  Alcotest.(check bool) name true (got = expected)

let test_verify_genuine () =
  let m = Lazy.force genuine_membership in
  check_verify "genuine membership verifies" `Ok (Cert.Membership m);
  check_verify "genuine enumeration verifies" `Ok
    (Lazy.force genuine_enumeration)

let test_verify_rejects_tampered_witness () =
  let m = Lazy.force genuine_membership in
  let f = Option.get m.Cert.witness in
  (* Redirect every image to an off-grid value: the map is still
     well-formed, but its facet images leave Δ of the local task. *)
  let tampered =
    Simplicial_map.of_assoc
      (List.map
         (fun (v, w) -> (v, Vertex.make (Vertex.color w) (Value.Int 999)))
         (Simplicial_map.graph f))
  in
  check_verify "tampered witness rejected" `Invalid
    (Cert.Membership { m with witness = Some tampered })

let test_verify_rejects_wrong_carrier () =
  let m = Lazy.force genuine_membership in
  (* σ shrunk to one vertex: τ is no longer a chromatic set over it. *)
  let small_sigma =
    Simplex.of_list [ (1, Value.frac 0 1) ]
  in
  check_verify "wrong carrier rejected" `Invalid
    (Cert.Membership { m with sigma = small_sigma })

let test_verify_rejects_forged_enumeration () =
  let m = Lazy.force genuine_membership in
  (* An enumeration claiming a τ without any grounds: the solver's map
     is missing and τ is not in Δ(σ). *)
  check_verify "forged enumeration member rejected" `Invalid
    (Cert.Enumeration
       {
         op_name = m.Cert.op_name;
         task_name = m.Cert.task_name;
         sigma = aa_sigma;
         members = [ (m.Cert.tau, None) ];
       })

let test_decode_rejects_stale_version () =
  let m = Lazy.force genuine_membership in
  let stale =
    match Cert.encode (Cert.Membership m) with
    | Cert_sexp.List (tag :: Cert_sexp.List [ v; Cert_sexp.Atom _ ] :: rest) ->
        Cert_sexp.List
          (tag :: Cert_sexp.List [ v; Cert_sexp.Atom "speedup-cert/0" ] :: rest)
    | _ -> Alcotest.fail "unexpected certificate layout"
  in
  match Cert.decode stale with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "stale engine version accepted"

let test_verify_disconnection () =
  let square =
    Complex.of_facets
      [
        Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 0) ];
        Simplex.of_list [ (1, Value.Int 1); (2, Value.Int 1) ];
      ]
  in
  let cert u v =
    Cert.Unsolvable
      {
        task_name = "binary-consensus(n=2)";
        rounds = 0;
        reason = Cert.Disconnected { complex = square; u; v };
      }
  in
  check_verify "true disconnection verifies" `Ok
    (cert (Vertex.make 1 (Value.Int 0)) (Vertex.make 1 (Value.Int 1)));
  check_verify "connected pair rejected" `Invalid
    (cert (Vertex.make 1 (Value.Int 0)) (Vertex.make 2 (Value.Int 0)))

(* ---- persistent store ---- *)

let mk_temp_dir () =
  let path = Filename.temp_file "speedup-cert-test" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_store f =
  let dir = mk_temp_dir () in
  Fun.protect
    ~finally:(fun () ->
      (* Back to CERT_CACHE_DIR (if any), not force-disabled: later
         suites should see the ambient store configuration. *)
      Cert_store.unset_dir ();
      rm_rf dir)
    (fun () ->
      Cert_store.set_dir (Some dir);
      Cert_store.reset_stats ();
      f dir)

let test_store_save_load () =
  with_store (fun _dir ->
      let cert = Cert.Membership (Lazy.force genuine_membership) in
      let key = Cert.key cert in
      Alcotest.(check bool) "miss before save" true (Cert_store.load key = None);
      Cert_store.save ~key (Cert.encode cert);
      (match Cert_store.load key with
      | None -> Alcotest.fail "entry missing after save"
      | Some sexp ->
          Alcotest.(check bool)
            "loaded = saved" true
            (Cert_sexp.equal sexp (Cert.encode cert)));
      Alcotest.(check (list string))
        "entries" [ key ]
        (List.map fst (Cert_store.entries ())))

let test_store_quarantines_corrupt () =
  with_store (fun _dir ->
      let cert = Cert.Membership (Lazy.force genuine_membership) in
      let key = Cert.key cert in
      Cert_store.save ~key (Cert.encode cert);
      let path = List.assoc key (Cert_store.entries ()) in
      let oc = open_out path in
      output_string oc "(cert torn";
      close_out oc;
      Alcotest.(check bool) "corrupt load misses" true (Cert_store.load key = None);
      Alcotest.(check bool)
        "corrupt counted" true
        ((Cert_store.stats ()).Cert_store.corrupt > 0);
      Alcotest.(check (list string)) "quarantined out of the index" []
        (List.map fst (Cert_store.entries ()));
      Alcotest.(check bool) "gc sweeps the quarantine" true
        (Cert_store.gc ~keep:(fun ~key:_ _ -> true) >= 1))

let test_store_gc_keep_predicate () =
  with_store (fun _dir ->
      List.iter
        (fun cert -> Cert_store.save ~key:(Cert.key cert) (Cert.encode cert))
        (sample_certs ());
      (* Note the two Membership samples answer the same query, hence
         share a key: the store holds one entry for them. *)
      let is_membership (key, _path) =
        match Option.map Cert.decode (Cert_store.load key) with
        | Some (Ok (Cert.Membership _)) -> true
        | _ -> false
      in
      let before = Cert_store.entries () in
      let memberships = List.length (List.filter is_membership before) in
      Alcotest.(check bool) "some membership entries" true (memberships > 0);
      let removed =
        Cert_store.gc ~keep:(fun ~key:_ sexp ->
            match Cert.decode sexp with
            | Ok (Cert.Membership _) -> true
            | Ok _ | Error _ -> false)
      in
      Alcotest.(check int) "non-membership entries removed"
        (List.length before - memberships)
        removed;
      Alcotest.(check int) "membership entries survive" memberships
        (List.length (Cert_store.entries ())))

let test_warm_store_skips_enumeration () =
  with_store (fun _dir ->
      let t = Consensus.binary ~n:2 in
      let sigma = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ] in
      Closure.reset_memo ();
      let cold = Closure.delta ~memo:false ~op t sigma in
      let st = Closure.memo_stats () in
      Alcotest.(check bool) "cold run enumerates" true (st.Closure.enumerations > 0);
      Closure.reset_memo ();
      let warm = Closure.delta ~memo:false ~op t sigma in
      let st = Closure.memo_stats () in
      Alcotest.(check int) "warm run: zero enumerations" 0 st.Closure.enumerations;
      Alcotest.(check bool) "warm = cold" true (Complex.equal cold warm);
      Alcotest.(check bool)
        "served by the store" true
        ((Cert_store.stats ()).Cert_store.hits > 0))

let test_tampered_store_entry_recovers () =
  with_store (fun _dir ->
      let t = Consensus.binary ~n:2 in
      let sigma = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ] in
      Closure.reset_memo ();
      let honest = Closure.delta ~memo:false ~op t sigma in
      (* Swap the entry for a verifiable-looking forgery claiming an
         extra member without a witness: verification must reject it
         and the computation must recompute the honest answer. *)
      let key =
        Cert.query_key
          (Cert.Q_delta
             { op_name = Round_op.name op; task_name = t.Task.name; sigma })
      in
      let forged =
        Cert.Enumeration
          {
            op_name = Round_op.name op;
            task_name = t.Task.name;
            sigma;
            members =
              [ (Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 0) ], None) ];
          }
      in
      Cert_store.save ~key (Cert.encode forged);
      Closure.reset_memo ();
      let recovered = Closure.delta ~memo:false ~op t sigma in
      Alcotest.(check bool) "forgery rejected, honest answer recomputed" true
        (Complex.equal honest recovered);
      Alcotest.(check bool) "recomputation enumerated" true
        ((Closure.memo_stats ()).Closure.enumerations > 0))

let test_unpersistent_ops_stay_out () =
  with_store (fun _dir ->
      let t = Approx_agreement.liberal ~n:2 ~m:2 ~eps:Frac.half in
      let sigma = Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 1) ] in
      let beta_op = Round_op.bin_consensus_beta (fun _ -> true) in
      Alcotest.(check bool) "β op is not persistent" false
        (Round_op.persistent beta_op);
      ignore (Closure.delta ~memo:false ~op:beta_op t sigma);
      Alcotest.(check (list string))
        "no certificates for session-local operators" []
        (List.map fst (Cert_store.entries ())))

(* Concurrent writers from separate *processes* (store_writer.exe):
   both drive the production path against the same root, then hammer
   re-saves of the same keys, so the tmp-file + atomic-rename sequence
   races cross-process.  Last rename wins; every surviving entry must
   be valid, re-verifiable, and serve a warm read-through — and the
   CLI [cert verify-store] must stay clean. *)

let run_process cmd =
  let ic = Unix.open_process_in cmd in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  let code =
    match Unix.close_process_in ic with Unix.WEXITED n -> n | _ -> -1
  in
  (code, List.rev !lines)

let contains_substring needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i =
    i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1))
  in
  go 0

let test_concurrent_process_writers () =
  with_store (fun dir ->
      let here = Filename.dirname Sys.executable_name in
      let writer = Filename.concat here "store_writer.exe" in
      let spawn () =
        Unix.create_process writer [| writer; dir; "40" |] Unix.stdin
          Unix.stdout Unix.stderr
      in
      let p1 = spawn () in
      let p2 = spawn () in
      List.iter
        (fun p ->
          match Unix.waitpid [] p with
          | _, Unix.WEXITED 0 -> ()
          | _, _ -> Alcotest.fail "store writer process failed")
        [ p1; p2 ];
      (* Every surviving entry parses and decodes; nothing was torn or
         quarantined by the racing renames. *)
      let entries = Cert_store.entries () in
      Alcotest.(check bool) "entries were written" true (entries <> []);
      List.iter
        (fun (key, path) ->
          Alcotest.(check bool) "no quarantined sibling" false
            (Sys.file_exists (path ^ ".quarantined"));
          match Option.map Cert.decode (Cert_store.load key) with
          | Some (Ok _) -> ()
          | Some (Error msg) ->
              Alcotest.fail (Printf.sprintf "stale entry %s: %s" key msg)
          | None -> Alcotest.fail (Printf.sprintf "unreadable entry %s" key))
        entries;
      Alcotest.(check int) "no corrupt loads" 0
        (Cert_store.stats ()).Cert_store.corrupt;
      (* Re-verifiable on the production path: a warm read-through run
         reproduces the storeless answer with zero enumerations. *)
      let t = Consensus.binary ~n:2 in
      let sigma = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ] in
      Closure.reset_memo ();
      let warm = Closure.delta ~memo:false ~op t sigma in
      Alcotest.(check int) "warm read-through: zero enumerations" 0
        (Closure.memo_stats ()).Closure.enumerations;
      Cert_store.unset_dir ();
      Closure.reset_memo ();
      let honest = Closure.delta ~memo:false ~op t sigma in
      Cert_store.set_dir (Some dir);
      Alcotest.(check bool) "warm answer matches storeless recompute" true
        (Complex.equal honest warm);
      (* And the whole store re-validates through the CLI. *)
      let bin = Filename.concat here "../bin/main.exe" in
      let code, lines =
        run_process
          (String.concat " "
             [
               Filename.quote bin; "cert"; "verify-store"; "--dir";
               Filename.quote dir;
             ])
      in
      Alcotest.(check int) "verify-store exits 0" 0 code;
      Alcotest.(check bool) "verify-store reports 0 failed" true
        (List.exists (contains_substring "0 failed") lines))

(* GC racing live writers and a replication puller: two writer
   processes hammer re-saves of one task's keys, a puller re-installs
   a second task's entries through [Cert_sync.install] (the fleet
   trust boundary), and the parent runs [cert gc] passes in the
   middle.  Atomic renames mean gc only ever sees complete entries
   (it may zap an in-flight [.tmp], which the writer's save path
   absorbs), so the store must come out clean and fully verifiable. *)
let test_gc_races_writers_and_puller () =
  with_store (fun dir ->
      (* Seed a source store with a different task's entries so the
         pull adds keys the writers never produce. *)
      let src = mk_temp_dir () in
      Fun.protect ~finally:(fun () -> rm_rf src) @@ fun () ->
      Cert_store.set_dir (Some src);
      let aa = Approx_agreement.task ~n:2 ~m:2 ~eps:Frac.half in
      let op = Round_op.plain Model.Immediate in
      List.iter
        (fun sigma -> ignore (Closure.delta ~memo:false ~op aa sigma))
        (Task.input_simplices aa);
      let src_keys = List.map fst (Cert_store.entries ()) in
      Alcotest.(check bool) "source store seeded" true (src_keys <> []);
      Cert_store.set_dir (Some dir);
      let here = Filename.dirname Sys.executable_name in
      let writer = Filename.concat here "store_writer.exe" in
      let bin = Filename.concat here "../bin/main.exe" in
      let spawn args =
        Unix.create_process writer (Array.append [| writer |] args) Unix.stdin
          Unix.stdout Unix.stderr
      in
      let pids =
        [
          spawn [| dir; "120" |];
          spawn [| dir; "120" |];
          spawn [| "--pull"; dir; src; "120" |];
        ]
      in
      (* Concurrent gc passes: each re-verifies every complete entry
         while saves and installs are still landing. *)
      for _ = 1 to 3 do
        let code, _ =
          run_process
            (String.concat " "
               [ Filename.quote bin; "cert"; "gc"; "--dir"; Filename.quote dir ])
        in
        Alcotest.(check int) "concurrent gc exits 0" 0 code
      done;
      List.iter
        (fun p ->
          match Unix.waitpid [] p with
          | _, Unix.WEXITED 0 -> ()
          | _, _ -> Alcotest.fail "store writer/puller process failed")
        pids;
      (* Replicated keys survived gc (valid entries are kept) ... *)
      Alcotest.(check bool) "pulled keys present after gc" true
        (List.for_all Cert_store.mem src_keys);
      (* ... and the whole store re-validates through the CLI. *)
      let code, lines =
        run_process
          (String.concat " "
             [
               Filename.quote bin; "cert"; "verify-store"; "--dir";
               Filename.quote dir;
             ])
      in
      Alcotest.(check int) "verify-store exits 0" 0 code;
      Alcotest.(check bool) "verify-store reports 0 failed" true
        (List.exists (contains_substring "0 failed") lines))

let suite =
  ( "cert",
    [
      QCheck_alcotest.to_alcotest prop_sexp_roundtrip;
      Alcotest.test_case "sexp parser rejects garbage" `Quick
        test_sexp_rejects_garbage;
      QCheck_alcotest.to_alcotest prop_value_roundtrip;
      QCheck_alcotest.to_alcotest prop_vertex_roundtrip;
      QCheck_alcotest.to_alcotest prop_simplex_roundtrip;
      QCheck_alcotest.to_alcotest prop_complex_roundtrip;
      QCheck_alcotest.to_alcotest prop_map_roundtrip;
      QCheck_alcotest.to_alcotest prop_simplex_digest_stable;
      Alcotest.test_case "certificate round-trip (all kinds)" `Quick
        test_cert_roundtrip;
      Alcotest.test_case "keys address the query" `Quick
        test_key_is_query_addressed;
      Alcotest.test_case "verify: genuine certificates" `Quick
        test_verify_genuine;
      Alcotest.test_case "verify: tampered witness" `Quick
        test_verify_rejects_tampered_witness;
      Alcotest.test_case "verify: wrong carrier" `Quick
        test_verify_rejects_wrong_carrier;
      Alcotest.test_case "verify: forged enumeration" `Quick
        test_verify_rejects_forged_enumeration;
      Alcotest.test_case "decode: stale version" `Quick
        test_decode_rejects_stale_version;
      Alcotest.test_case "verify: disconnection obstruction" `Quick
        test_verify_disconnection;
      Alcotest.test_case "store: save/load" `Quick test_store_save_load;
      Alcotest.test_case "store: corrupt entry quarantined" `Quick
        test_store_quarantines_corrupt;
      Alcotest.test_case "store: gc keep predicate" `Quick
        test_store_gc_keep_predicate;
      Alcotest.test_case "store: warm run skips enumeration" `Quick
        test_warm_store_skips_enumeration;
      Alcotest.test_case "store: tampered entry recovers" `Quick
        test_tampered_store_entry_recovers;
      Alcotest.test_case "store: session-local ops not persisted" `Quick
        test_unpersistent_ops_stay_out;
      Alcotest.test_case "store: concurrent process writers" `Quick
        test_concurrent_process_writers;
      Alcotest.test_case "store: gc races writers and replication pull" `Quick
        test_gc_races_writers_and_puller;
    ] )
