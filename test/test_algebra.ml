(* Laws of the model algebra: parser/printer round-trip, normalizer
   equations (via physical equality of hash-consed terms), resilience
   monotonicity, semantic agreement of each hard-coded model with its
   algebra reconstruction, and the Equivalence certificate round-trip. *)

open QCheck2

(* ---- generators ---- *)

(* A sized term generator: base terms at size 0, combinators recurse
   with a shrinking budget.  Fronts are over colors 1..3 to match the
   small simplices the semantic tests use. *)
let term : Algebra.t Gen.t =
  let open Gen in
  let base =
    oneof
      [
        return Algebra.iis;
        return Algebra.snapshot;
        return Algebra.collect;
        map Algebra.conc (int_range 1 3);
        map Algebra.solo (int_range 1 3);
      ]
  in
  let front = list_size (int_range 1 2) (int_range 1 3) in
  sized
  @@ fix (fun self size ->
         if size = 0 then base
         else
           let sub = self (size / 2) in
           oneof
             [
               base;
               map Algebra.inter (list_size (int_range 1 3) sub);
               map Algebra.union (list_size (int_range 1 3) sub);
               map2
                 (fun t fronts -> Algebra.adv t fronts)
                 sub
                 (list_size (int_range 1 2) front);
               map2 Algebra.resil sub (int_range 0 2);
               map2 Algebra.obf sub (int_range 1 3);
             ])

let term_print = Algebra.to_string

let sigma_n n = Simplex.of_list (List.init n (fun i -> (i + 1, Value.Int i)))

(* ---- parser/printer ---- *)

let prop_roundtrip =
  Test.make ~name:"parse (to_string t) is physically t" ~count:300
    ~print:term_print term (fun t ->
      match Algebra.parse (Algebra.to_string t) with
      | Ok t' -> Algebra.equal t t'
      | Error msg -> Test.fail_reportf "parse failed: %s" msg)

let test_parse_errors () =
  let bad s =
    match Algebra.parse s with
    | Error _ -> ()
    | Ok t ->
        Alcotest.failf "%S parsed to %s but should be rejected" s
          (Algebra.to_string t)
  in
  bad "";
  bad "(inter";
  bad "(inter)";
  bad "(conc 0)";
  bad "(solo x)";
  bad "(adv iis ())";
  bad "(resil iis -1)";
  bad "nonsense";
  bad "iis extra"

let test_parse_aliases () =
  let same a b =
    match (Algebra.parse a, Algebra.parse b) with
    | Ok x, Ok y ->
        Alcotest.(check bool)
          (a ^ " = " ^ b) true (Algebra.equal x y)
    | _ -> Alcotest.failf "alias %S / %S did not parse" a b
  in
  same "immediate" "iis";
  same "is" "iis";
  same "(solo 1)" "(solo 1)";
  (* Normalization is applied by [parse] too. *)
  same "(inter snapshot iis snapshot)" "(inter iis snapshot)"

(* ---- normalizer laws (physical equality = normalizer equality) ---- *)

let prop_comm =
  Test.make ~name:"inter/union commutative" ~count:300
    ~print:(Print.pair term_print term_print)
    (Gen.pair term term)
    (fun (a, b) ->
      Algebra.equal (Algebra.inter [ a; b ]) (Algebra.inter [ b; a ])
      && Algebra.equal (Algebra.union [ a; b ]) (Algebra.union [ b; a ]))

let prop_assoc =
  Test.make ~name:"inter/union associative (flattening)" ~count:300
    ~print:(Print.triple term_print term_print term_print)
    (Gen.triple term term term)
    (fun (a, b, c) ->
      Algebra.equal
        (Algebra.inter [ Algebra.inter [ a; b ]; c ])
        (Algebra.inter [ a; Algebra.inter [ b; c ] ])
      && Algebra.equal
           (Algebra.union [ Algebra.union [ a; b ]; c ])
           (Algebra.union [ a; Algebra.union [ b; c ] ]))

let prop_idem =
  Test.make ~name:"inter/union idempotent" ~count:300 ~print:term_print term
    (fun a ->
      Algebra.equal (Algebra.inter [ a; a ]) a
      && Algebra.equal (Algebra.union [ a; a ]) a)

let prop_absorb =
  Test.make ~name:"absorption x∩(x∪y) = x = x∪(x∩y)" ~count:300
    ~print:(Print.pair term_print term_print)
    (Gen.pair term term)
    (fun (a, b) ->
      Algebra.equal (Algebra.inter [ a; Algebra.union [ a; b ] ]) a
      && Algebra.equal (Algebra.union [ a; Algebra.inter [ a; b ] ]) a)

(* Regression: with x = (inter (union (adv iis ((1))) snapshot) iis)
   and y = snapshot, flattening x into x ∩ (x ∪ y) makes x's own
   operands and x ∪ y mutually redundant, and pruning in name order
   used to drop the wrong one — keeping the larger rendering and
   breaking absorption.  Pinned here because QCheck only finds the
   shape on some seeds. *)
let test_absorb_regression () =
  let a =
    Algebra.inter
      [ Algebra.union [ Algebra.adv Algebra.iis [ [ 1 ] ]; Algebra.snapshot ];
        Algebra.iis ]
  in
  let b = Algebra.snapshot in
  Alcotest.(check string)
    "x∩(x∪y) = x" (Algebra.to_string a)
    (Algebra.to_string (Algebra.inter [ a; Algebra.union [ a; b ] ]));
  Alcotest.(check string)
    "x∪(x∩y) = x" (Algebra.to_string a)
    (Algebra.to_string (Algebra.union [ a; Algebra.inter [ a; b ] ]))

(* ---- semantics ---- *)

let simplex_list_subset xs ys =
  List.for_all (fun x -> List.exists (Simplex.equal x) ys) xs

let prop_resil_monotone =
  Test.make ~name:"resil monotone in k (facet subset)" ~count:60
    ~print:(Print.pair term_print Print.int)
    (Gen.pair term (Gen.int_range 0 2))
    (fun (t, k) ->
      let sigma = sigma_n 3 in
      simplex_list_subset
        (Algebra.facets (Algebra.resil t k) sigma)
        (Algebra.facets (Algebra.resil t (k + 1)) sigma))

let prop_inter_subset =
  Test.make ~name:"inter ⊆ operands ⊆ union (facet sets)" ~count:60
    ~print:(Print.pair term_print term_print)
    (Gen.pair term term)
    (fun (a, b) ->
      let sigma = sigma_n 3 in
      let fa = Algebra.facets a sigma in
      let fi = Algebra.facets (Algebra.inter [ a; b ]) sigma in
      let fu = Algebra.facets (Algebra.union [ a; b ]) sigma in
      simplex_list_subset fi fa && simplex_list_subset fa fu)

let check_same_facets label lhs rhs =
  List.iter
    (fun n ->
      let sigma = sigma_n n in
      let show fs = String.concat " " (List.map Simplex.to_string fs) in
      Alcotest.(check string)
        (Printf.sprintf "%s (n=%d)" label n)
        (show (Model.one_round_facets lhs sigma))
        (show (Algebra.facets rhs sigma)))
    [ 1; 2; 3 ]

(* The built-in models and their algebra reconstructions produce the
   same one-round facet lists (a stronger fact than task-solvability
   equivalence; the CI job checks the latter through the full
   [Equiv.decide] pipeline). *)
let test_builtin_reconstructions () =
  check_same_facets "iis = (solo 1)" Model.Immediate (Algebra.solo 1);
  check_same_facets "iis = (inter iis snapshot)" Model.Immediate
    (Algebra.inter [ Algebra.iis; Algebra.snapshot ]);
  check_same_facets "snapshot = (inter snapshot collect)" Model.Snapshot
    (Algebra.inter [ Algebra.snapshot; Algebra.collect ]);
  check_same_facets "collect = (union collect snapshot)" Model.Collect
    (Algebra.union [ Algebra.collect; Algebra.snapshot ]);
  (* conc n on ≤ n processes places no constraint. *)
  check_same_facets "iis = (conc 3) for n ≤ 3" Model.Immediate (Algebra.conc 3)

let test_equiv_decide () =
  let t s =
    match Algebra.parse s with
    | Ok t -> t
    | Error msg -> Alcotest.failf "parse %S: %s" s msg
  in
  let outcome = Equiv.decide ~memo:false ~n:2 (t "iis") (t "(solo 1)") in
  Alcotest.(check bool) "iis ≡ (solo 1)" true outcome.Equiv.equivalent;
  Alcotest.(check (option string)) "no disagreement" None
    (Option.map
       (fun (p : Equiv.probe) -> p.Equiv.label)
       (Equiv.disagreement outcome));
  (* Self-equivalence short-circuits on canonical form. *)
  let self = Equiv.decide ~memo:false ~n:2 (t "iis") (t "immediate") in
  Alcotest.(check bool) "iis ≡ immediate syntactically" true
    (self.Equiv.equivalent
    && List.exists
         (fun (p : Equiv.probe) -> String.equal p.Equiv.label "canonical-form")
         self.Equiv.probes);
  (* The d-solo extension is strictly weaker: 1/2-AA separates it from
     IIS already at n = 2 (a concurrent solo pair keeps spread 1). *)
  let strict = Equiv.decide ~memo:false ~n:2 (t "iis") (t "(solo 2)") in
  Alcotest.(check bool) "iis ≢ (solo 2)" false strict.Equiv.equivalent;
  (match Equiv.disagreement strict with
  | Some _ -> ()
  | None -> Alcotest.fail "inequivalent outcome has no disagreeing probe");
  (* Orientation: the same verdict regardless of argument order. *)
  let flipped = Equiv.decide ~memo:false ~n:2 (t "(solo 2)") (t "iis") in
  Alcotest.(check bool) "orientation-independent" false
    flipped.Equiv.equivalent

let test_equivalence_cert_roundtrip () =
  let cert =
    Cert.Equivalence
      {
        lhs = "(solo 2)";
        rhs = "iis";
        n = 2;
        equivalent = false;
        probes = [ ("solvable-1round[1/2-AA(n=2,m=2)]", "unsolvable", "solvable") ];
      }
  in
  (match Cert.decode (Cert.encode cert) with
  | Ok (Cert.Equivalence e) ->
      Alcotest.(check string) "lhs" "(solo 2)" e.Cert.lhs;
      Alcotest.(check bool) "verdict" false e.Cert.equivalent;
      Alcotest.(check int) "probes" 1 (List.length e.Cert.probes)
  | Ok _ -> Alcotest.fail "decoded to a different certificate kind"
  | Error msg -> Alcotest.failf "decode failed: %s" msg);
  (match Cert.verify Cert_registry.env cert with
  | Ok () -> ()
  | Error e -> Alcotest.failf "verify failed: %s" (Cert.error_message e));
  (* Verification rejects a non-canonical or mis-ordered pair. *)
  let misordered =
    Cert.Equivalence
      { lhs = "snapshot"; rhs = "iis"; n = 2; equivalent = true;
        probes = [ ("p", "x", "x") ] }
  in
  (match Cert.verify Cert_registry.env misordered with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "mis-ordered pair should fail verification");
  let verdict_mismatch =
    Cert.Equivalence
      { lhs = "iis"; rhs = "snapshot"; n = 2; equivalent = true;
        probes = [ ("p", "x", "y") ] }
  in
  match Cert.verify Cert_registry.env verdict_mismatch with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "verdict/probe mismatch should fail verification"

let suite =
  ( "algebra",
    [
      QCheck_alcotest.to_alcotest prop_roundtrip;
      Alcotest.test_case "parse rejects malformed terms" `Quick
        test_parse_errors;
      Alcotest.test_case "parse aliases and normalization" `Quick
        test_parse_aliases;
      QCheck_alcotest.to_alcotest prop_comm;
      QCheck_alcotest.to_alcotest prop_assoc;
      QCheck_alcotest.to_alcotest prop_idem;
      QCheck_alcotest.to_alcotest prop_absorb;
      Alcotest.test_case "absorption regression (mutual redundancy)" `Quick
        test_absorb_regression;
      QCheck_alcotest.to_alcotest prop_resil_monotone;
      QCheck_alcotest.to_alcotest prop_inter_subset;
      Alcotest.test_case "built-ins equal their reconstructions" `Quick
        test_builtin_reconstructions;
      Alcotest.test_case "Equiv.decide on known facts" `Quick test_equiv_decide;
      Alcotest.test_case "Equivalence certificate round-trip" `Quick
        test_equivalence_cert_roundtrip;
    ] )
