(* Consistent-hash ring with a rendezvous-hash fallback order.

   Pure and deterministic: positions are MD5 digests of "name#vnode"
   strings, so every front configured with the same peer list computes
   the same owner for every key with no coordination.  [route_order]
   appends the remaining peers in highest-random-weight order, which
   is what makes peer death cheap: when the owner is down, each key
   falls through to its own (deterministic, key-dependent) second
   choice instead of all of the dead peer's keys dog-piling onto one
   neighbour. *)

type t = {
  names : string list;  (* as given, duplicates removed *)
  points : (string * string) array;  (* (position digest, name), sorted *)
}

let digest s = Digest.to_hex (Digest.string s)

let make ?(vnodes = 64) names =
  if vnodes < 1 then invalid_arg "Ring.make: vnodes must be positive";
  let names =
    List.fold_left
      (fun acc n -> if List.mem n acc then acc else n :: acc)
      [] names
    |> List.rev
  in
  if names = [] then invalid_arg "Ring.make: empty peer list";
  let points =
    List.concat_map
      (fun name ->
        List.init vnodes (fun i ->
            (digest (Printf.sprintf "%s#%d" name i), name)))
      names
    |> Array.of_list
  in
  Array.sort (fun (a, _) (b, _) -> String.compare a b) points;
  { names; points }

let members t = t.names

(* First ring point clockwise of the key's digest (wrapping). *)
let route t key =
  let h = digest key in
  let n = Array.length t.points in
  (* Binary search: smallest index with position >= h. *)
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      let pos, _ = t.points.(mid) in
      if String.compare pos h < 0 then search (mid + 1) hi else search lo mid
  in
  let i = search 0 n in
  snd t.points.(if i = n then 0 else i)

(* Owner first, then every other peer by descending rendezvous weight
   digest("name|key") — the per-key failover order. *)
let route_order t key =
  let owner = route t key in
  let rest =
    t.names
    |> List.filter (fun n -> not (String.equal n owner))
    |> List.map (fun n -> (digest (Printf.sprintf "%s|%s" n key), n))
    |> List.sort (fun (a, _) (b, _) -> String.compare b a)
    |> List.map snd
  in
  owner :: rest
