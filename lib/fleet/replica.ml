(* Store replication (docs/FLEET.md).

   Push-on-write: [Cert_store.save] fires the on-save hook, which
   enqueues the rendered entry on a bounded queue; a dedicated pusher
   domain drains it, delivering [cert-push] to every live peer.  The
   queue bounds memory under a write burst — overflow drops the entry
   (counted as a push failure per peer) rather than blocking the
   enumeration that produced it; pull-on-miss repairs any gap later.

   Pull-on-miss: [Cert_store.load] fires the on-miss hook, which asks
   peers for the digest in rendezvous order (the likely owner first)
   and installs the first copy that passes [Cert_sync.install]'s
   re-verification.  Concurrent misses of one key are single-flighted:
   one leader fetches, followers wait and re-read locally.

   All state lives in the [t] record (R1: no top-level mutables). *)

let log_src = Logs.Src.create "speedup.fleet.replica" ~doc:"Store replication"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  peers : (Peer.t * Health.t) list;
  queue_limit : int;
  qlock : Mutex.t;
  qcond : Condition.t;
  queue : (string * string) Queue.t;  (* key, rendered entry *)
  mutable stopping : bool;  (* guarded by qlock *)
  flock : Mutex.t;  (* single-flight table *)
  fcond : Condition.t;
  inflight : (string, unit) Hashtbl.t;
  mutable pusher : unit Domain.t option;
}

(* One short-lived connection per operation: peers are few and
   entries small, so connection reuse is not worth a pool; connect
   itself retries with backoff (Client.connect_retry). *)
let rpc_peer (p : Peer.t) h ~meth ~params =
  match
    Client.connect_retry ~attempts:3 ~delay:0.05 ~max_delay:0.2 p.Peer.addr
  with
  | Error msg ->
      let window = Health.fail h in
      Log.info (fun m ->
          m "peer %s down for %.2fs: %s" (Peer.to_string p) window msg);
      Error msg
  | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          match
            Client.rpc ~deadline_ms:5000 c ~id:(Jsonl.Int 0) ~meth ~params
          with
          | Ok v ->
              Health.ok h;
              Ok v
          | Error msg ->
              ignore (Health.fail h);
              Error msg)

let push_entry t key text =
  List.iter
    (fun ((p : Peer.t), h) ->
      if not (Health.available h) then Cert_store.note_push_failure ()
      else
        match
          rpc_peer p h ~meth:"cert-push"
            ~params:[ ("key", Jsonl.String key); ("cert", Jsonl.String text) ]
        with
        | Ok reply when Jsonl.member "installed" reply = Some (Jsonl.Bool true)
          ->
            Cert_store.note_push ()
        | Ok reply ->
            let reason =
              match Jsonl.member "reason" reply with
              | Some (Jsonl.String r) -> r
              | _ -> "peer rejected entry"
            in
            Log.warn (fun m ->
                m "push of %s to %s rejected: %s" key (Peer.to_string p) reason);
            Cert_store.note_push_failure ()
        | Error msg ->
            Log.warn (fun m ->
                m "push of %s to %s failed: %s" key (Peer.to_string p) msg);
            Cert_store.note_push_failure ())
    t.peers

let pusher_loop t () =
  let rec go () =
    let item =
      Mutex.lock t.qlock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.qlock)
        (fun () ->
          while Queue.is_empty t.queue && not t.stopping do
            Condition.wait t.qcond t.qlock
          done;
          if Queue.is_empty t.queue then None else Some (Queue.pop t.queue))
    in
    match item with
    | None -> ()
    | Some (key, text) ->
        (try push_entry t key text
         with exn ->
           Log.warn (fun m -> m "pusher survived %s" (Printexc.to_string exn)));
        go ()
  in
  go ()

let on_save t key sexp =
  let dropped =
    Mutex.protect t.qlock (fun () ->
        if t.stopping || Queue.length t.queue >= t.queue_limit then true
        else begin
          Queue.push (key, Cert_sexp.to_string sexp) t.queue;
          Condition.signal t.qcond;
          false
        end)
  in
  if dropped then
    (* One failure per peer that will now miss the entry. *)
    List.iter (fun _ -> Cert_store.note_push_failure ()) t.peers

let pull_from_peers t key =
  (* Rendezvous order: the peer most likely to own the key first. *)
  let order =
    t.peers
    |> List.map (fun ((p : Peer.t), h) ->
           (Digest.to_hex (Digest.string (p.Peer.name ^ "|" ^ key)), (p, h)))
    |> List.sort (fun (a, _) (b, _) -> String.compare b a)
    |> List.map snd
  in
  let fetch ((p : Peer.t), h) =
    if not (Health.available h) then None
    else
      match
        rpc_peer p h ~meth:"cert-pull" ~params:[ ("key", Jsonl.String key) ]
      with
      | Ok reply when Jsonl.member "found" reply = Some (Jsonl.Bool true) -> (
          match Jsonl.member "cert" reply with
          | Some (Jsonl.String text) -> (
              match Cert_sync.install ~key text with
              | Ok cert -> Some cert
              | Error msg ->
                  Log.warn (fun m ->
                      m "pulled %s from %s but rejected it: %s" key
                        (Peer.to_string p) msg);
                  None)
          | Some _ | None -> None)
      | Ok _ | Error _ -> None
  in
  match List.find_map fetch order with
  | Some cert ->
      Cert_store.note_pull ();
      Some (Cert.encode cert)
  | None ->
      Cert_store.note_pull_miss ();
      None

let on_miss t key =
  let role =
    Mutex.lock t.flock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.flock)
      (fun () ->
        if Hashtbl.mem t.inflight key then begin
          while Hashtbl.mem t.inflight key do
            Condition.wait t.fcond t.flock
          done;
          `Follower
        end
        else begin
          Hashtbl.replace t.inflight key ();
          `Leader
        end)
  in
  match role with
  | `Follower ->
      (* The leader's install (if any) is on disk now. *)
      if Cert_store.mem key then Cert_store.load_local key else None
  | `Leader ->
      Fun.protect
        ~finally:(fun () ->
          Mutex.protect t.flock (fun () ->
              Hashtbl.remove t.inflight key;
              Condition.broadcast t.fcond))
        (fun () -> pull_from_peers t key)

let attach ?(queue_limit = 256) peers =
  let t =
    {
      peers = List.map (fun p -> (p, Health.create ())) peers;
      queue_limit;
      qlock = Mutex.create ();
      qcond = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      flock = Mutex.create ();
      fcond = Condition.create ();
      inflight = Hashtbl.create 16;
      pusher = None;
    }
  in
  t.pusher <- Some (Domain.spawn (pusher_loop t));
  Cert_store.set_on_save (Some (on_save t));
  Cert_store.set_on_miss (Some (on_miss t));
  t

let detach t =
  Cert_store.set_on_save None;
  Cert_store.set_on_miss None;
  Mutex.protect t.qlock (fun () ->
      t.stopping <- true;
      Condition.broadcast t.qcond);
  (match t.pusher with Some d -> Domain.join d | None -> ());
  t.pusher <- None
