(* Per-peer availability with capped exponential backoff: after [k]
   consecutive failures a peer is down for min(cap, base·2^(k-1))
   seconds, so a dead peer costs one failed connect per window instead
   of one per operation.  One success resets the window. *)

type t = {
  lock : Mutex.t;
  mutable down_until : float;
  mutable failures : int;
  base : float;
  cap : float;
}

(* Wall clock (config-level R5 exemption, see docs/LINT.md): feeds
   backoff windows only — never a reply body or a store entry. *)
let now () = Unix.gettimeofday ()

let create ?(base = 0.25) ?(cap = 5.0) () =
  { lock = Mutex.create (); down_until = 0.; failures = 0; base; cap }

let available t = Mutex.protect t.lock (fun () -> now () >= t.down_until)

let fail t =
  Mutex.protect t.lock (fun () ->
      t.failures <- t.failures + 1;
      let window =
        Float.min t.cap (t.base *. Float.of_int (1 lsl min (t.failures - 1) 8))
      in
      t.down_until <- now () +. window;
      window)

let ok t =
  Mutex.protect t.lock (fun () ->
      t.failures <- 0;
      t.down_until <- 0.)
