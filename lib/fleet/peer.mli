(** Fleet peer addresses.

    A peer is named by its address spec verbatim ([unix:PATH] or
    [HOST:PORT]), so every front configured with the same [--peers]
    list derives identical ring positions without any coordination. *)

type t = { name : string; addr : Server.addr }

val to_string : t -> string
(** The name (= the spec the peer was parsed from). *)

val parse : string -> (t, string) result
(** [unix:PATH] or [HOST:PORT]. *)

val parse_list : string list -> (t list, string) result
(** First parse error wins. *)
