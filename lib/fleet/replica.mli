(** Store replication: push-on-write and pull-on-miss between
    [Cert_store] instances over the daemon wire protocol
    (docs/FLEET.md).

    [attach] installs the two store hooks and spawns one pusher
    domain; from then on every [Cert_store.save] is pushed
    asynchronously to each peer ([cert-push]) and every local miss
    triggers a synchronous pull by digest ([cert-pull]) in rendezvous
    order, single-flighted per key.  Everything that arrives from a
    peer goes through [Cert_sync.install] — re-derived content
    address, full re-verification — before it touches the local
    store.

    Failed peers back off exponentially (capped) and pushes to an
    unavailable or overflowing target are dropped and counted
    ([Cert_store.repl_stats]) rather than blocking the computation
    that produced the entry; pull-on-miss repairs any resulting gap on
    first use. *)

type t

val attach : ?queue_limit:int -> Peer.t list -> t
(** Installs the hooks and starts the pusher (push queue bound:
    [queue_limit], default 256 entries). *)

val detach : t -> unit
(** Clears the hooks, stops and joins the pusher.  Entries still
    queued are dropped (counted as push failures). *)
