(** The fleet front: consistent-hash routing of daemon requests over a
    ring of [speedup serve] peers (docs/FLEET.md).

    [handler] plugs into [Server.config.handler], so the front {e is}
    a daemon — same wire protocol, same loop-level [ping]/[stats]/
    [shutdown] — whose workers forward instead of computing.  Each
    request is hashed by [Wire.canonical_digest] onto the ring; a
    down, overloaded, or draining owner fails over along the key's
    rendezvous order.  Replies are byte-identical to the backend's
    ([Jsonl] round-trips exactly); the remaining deadline budget is
    propagated as the backend's [deadline_ms] and [should_stop] is
    checked between failover attempts. *)

type t

val create : ?vnodes:int -> Peer.t list -> t
(** Builds the ring ([vnodes] per peer, default 64) and per-peer
    health state. *)

val peers : t -> (Peer.t * Health.t) list
(** Ring members with their health, in first-given order. *)

val handler : t -> Server.handler
