(* The closure atlas (docs/FLEET.md): batch-enumerate Δ'(σ) for every
   cell of a (operator × task) grid into the certificate store, then
   record a manifest certificate listing every cell's store keys so
   coverage is auditable offline.

   Resumable: a cell whose keys are all present is skipped, so a
   partially built atlas (crash, deadline, added cells) re-runs only
   the missing work.  Parallel over cells through the domain pool;
   each cell's enumeration persists its own certificates through the
   closure's ordinary write-through path, which also means a fleet
   peer building an atlas pushes the entries as it goes. *)

type spec = {
  atlas_name : string;
  ops : string list;  (* operator names, registry-resolvable *)
  tasks : string list;  (* canonical task names, registry-resolvable *)
}

type resolved_cell = {
  rop : Round_op.t;
  rtask : Task.t;
  keys : string list;
}

let cell_keys ~op_name ~task =
  List.map
    (fun sigma ->
      Cert.query_key
        (Cert.Q_delta { op_name; task_name = task.Task.name; sigma }))
    (Task.input_simplices task)

let resolve_op name =
  match Model.of_string name with
  | Some m -> Ok (Round_op.plain m)
  | None -> (
      match Algebra.parse name with
      | Ok term when String.equal (Algebra.to_string term) name ->
          Ok (Round_op.algebra term)
      | Ok _ ->
          Error
            (Printf.sprintf
               "atlas operator %S is not a canonical algebra rendering" name)
      | Error msg -> Error (Printf.sprintf "atlas operator %S: %s" name msg))

let resolve_cells spec =
  let ( let* ) = Result.bind in
  let* ops =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        let* op = resolve_op name in
        if not (Round_op.persistent op) then
          Error
            (Printf.sprintf "atlas operator %S is not persistent" name)
        else Ok (op :: acc))
      (Ok []) spec.ops
    |> Result.map List.rev
  in
  let* tasks =
    List.fold_left
      (fun acc name ->
        let* acc = acc in
        match Cert_registry.task_of_name name with
        | Some task when String.equal task.Task.name name -> Ok (task :: acc)
        | Some task ->
            Error
              (Printf.sprintf
                 "atlas task %S is not the canonical rendering %S" name
                 task.Task.name)
        | None -> Error (Printf.sprintf "unknown atlas task %S" name))
      (Ok []) spec.tasks
    |> Result.map List.rev
  in
  Ok
    (List.concat_map
       (fun rop ->
         List.map
           (fun rtask ->
             { rop; rtask; keys = cell_keys ~op_name:(Round_op.name rop) ~task:rtask })
           tasks)
       ops)

let manifest_of_cells spec cells =
  Cert.Atlas
    {
      Cert.atlas_name = spec.atlas_name;
      atlas_cells =
        List.map
          (fun c ->
            {
              Cert.cell_op = Round_op.name c.rop;
              cell_task = c.rtask.Task.name;
              cell_keys = c.keys;
            })
          cells;
    }

type build_report = {
  cells : int;
  built : int;  (* cells enumerated this run *)
  skipped : int;  (* cells whose keys were already stored *)
  manifest_key : string;
}

let build ?should_stop spec =
  let ( let* ) = Result.bind in
  let* () =
    if Cert_store.enabled () then Ok ()
    else Error "certificate store disabled (set CERT_CACHE_DIR or --dir)"
  in
  let* cells = resolve_cells spec in
  let* () = if cells = [] then Error "empty atlas spec" else Ok () in
  (* Resumability: a cell is done iff every per-σ entry exists. *)
  let todo, done_ =
    List.partition
      (fun c -> not (List.for_all Cert_store.mem c.keys))
      cells
  in
  let enumerate c =
    List.iter
      (fun sigma ->
        ignore (Closure.delta ?should_stop ~op:c.rop c.rtask sigma))
      (Task.input_simplices c.rtask)
  in
  let* () =
    (* Parallel over cells; the per-cell work inside the pool takes
       the sequential path (nested parallelism flattens), so cells are
       the unit of distribution. *)
    match Pool.map ~grain:1 enumerate todo with
    | (_ : unit list) -> Ok ()
    | exception Csp.Interrupted -> Error "atlas build interrupted"
  in
  let manifest = manifest_of_cells spec cells in
  let manifest_key = Cert.key manifest in
  Cert_store.save ~key:manifest_key (Cert.encode manifest);
  Ok
    {
      cells = List.length cells;
      built = List.length todo;
      skipped = List.length done_;
      manifest_key;
    }

type audit = {
  audited_cells : int;
  audited_keys : int;
}

(* Coverage audit: the manifest itself must verify (its keys are the
   recomputed content addresses of every cell, see Cert.verify), and
   every listed key must hold a present, decodable, verifying entry. *)
let verify name =
  let ( let* ) = Result.bind in
  let key = Cert.query_key (Cert.Q_atlas { atlas_name = name }) in
  let* sexp =
    match Cert_store.load_local key with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "no atlas manifest %S in store" name)
  in
  let* cert = Cert.decode sexp in
  let* () =
    Result.map_error Cert.error_message (Cert.verify Cert_registry.env cert)
  in
  let* cells =
    match cert with
    | Cert.Atlas a -> Ok a.Cert.atlas_cells
    | _ -> Error (Printf.sprintf "entry %s is not an atlas manifest" key)
  in
  let audit_key cell k =
    let* entry =
      match Cert_store.load_local k with
      | Some s -> Ok s
      | None ->
          Error
            (Printf.sprintf "atlas cell (%s, %s): missing entry %s"
               cell.Cert.cell_op cell.Cert.cell_task k)
    in
    let* c = Cert.decode entry in
    Result.map_error
      (fun e ->
        Printf.sprintf "atlas cell (%s, %s) entry %s: %s" cell.Cert.cell_op
          cell.Cert.cell_task k
          (Cert.error_message e))
      (Cert.verify Cert_registry.env c)
  in
  let* audited_keys =
    List.fold_left
      (fun acc cell ->
        let* n = acc in
        let* () =
          List.fold_left
            (fun acc k ->
              let* () = acc in
              audit_key cell k)
            (Ok ()) cell.Cert.cell_keys
        in
        Ok (n + List.length cell.Cert.cell_keys))
      (Ok 0) cells
  in
  Ok { audited_cells = List.length cells; audited_keys }

(* The stock spec: plain models and one canonical algebra term crossed
   with the registry task families at small n — consensus variants,
   2-set agreement, adaptive renaming, and an ε-grid of approximate
   agreement.  Task names come from the constructors themselves, so
   they are canonical by construction. *)
let default_spec ?(max_n = 3) ~name () =
  let ns = List.init (max 0 (max_n - 1)) (fun i -> i + 2) in
  let tname t = t.Task.name in
  let consensus =
    List.concat_map
      (fun n ->
        [
          tname (Consensus.binary ~n);
          tname (Consensus.relaxed ~n ~values:[ Value.Int 0; Value.Int 1 ]);
        ])
      ns
  in
  let set_agreement =
    ns
    |> List.filter (fun n -> n >= 3)
    |> List.map (fun n ->
           tname
             (Set_agreement.task ~n ~k:2
                ~values:[ Value.Int 0; Value.Int 1; Value.Int 2 ]))
  in
  let renaming =
    ns
    |> List.filter (fun n -> n <= 3)
    |> List.map (fun n -> tname (Renaming.task ~n))
  in
  let aa =
    (* ε-grid at m = 4 (the grid must refine ε: ε ∈ ℕ/m). *)
    List.concat_map
      (fun n ->
        List.map
          (fun eps -> tname (Approx_agreement.task ~n ~m:4 ~eps))
          [ Frac.make 1 2; Frac.make 1 4 ])
      ns
  in
  {
    atlas_name = name;
    ops = [ "immediate"; "snapshot" ];
    tasks = consensus @ set_agreement @ renaming @ aa;
  }
