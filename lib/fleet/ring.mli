(** Consistent-hash ring with rendezvous failover (docs/FLEET.md).

    Pure and deterministic: positions are MD5 digests, so every front
    configured with the same peer list computes the same owner for
    every key without coordination. *)

type t

val make : ?vnodes:int -> string list -> t
(** [vnodes] positions per peer (default 64).  Duplicate names are
    dropped.
    @raise Invalid_argument on an empty list or [vnodes < 1]. *)

val members : t -> string list
(** The distinct peer names, in the order first given. *)

val route : t -> string -> string
(** The owner of a key: the first ring position clockwise of the
    key's digest. *)

val route_order : t -> string -> string list
(** The owner followed by every other peer in descending
    rendezvous-hash order for this key — the failover sequence.  A
    dead owner's keys spread over the survivors instead of dog-piling
    onto one neighbour. *)
