(* The fleet front (docs/FLEET.md): a [Server.handler] that hashes
   each request's canonical digest onto the ring and forwards it to
   the owning daemon, falling through the rendezvous order when a peer
   is down or draining.

   Byte-identity: the backend's [result] is parsed into [Jsonl.t] and
   re-rendered by the front's own [Wire.ok_reply].  [Jsonl] round-trips
   objects field-order- and escaping-exactly, so a routed reply is
   byte-identical to the daemon's own reply for the same request —
   the property the fleet end-to-end test pins.

   Deadline propagation: the front forwards the {e remaining} budget
   (its own queue wait already subtracted) as the backend's
   [deadline_ms], and checks [should_stop] between failover attempts,
   so client cancellation passes through cooperatively. *)

let log_src = Logs.Src.create "speedup.fleet.proxy" ~doc:"Fleet router"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  ring : Ring.t;
  by_name : (string, Peer.t * Health.t) Hashtbl.t;
}

(* Wall clock (config-level R5 exemption, see docs/LINT.md): remaining
   deadline-budget arithmetic only. *)
let now () = Unix.gettimeofday ()

let create ?vnodes peers =
  let by_name = Hashtbl.create 8 in
  List.iter
    (fun (p : Peer.t) ->
      if not (Hashtbl.mem by_name p.Peer.name) then
        Hashtbl.add by_name p.Peer.name (p, Health.create ()))
    peers;
  { ring = Ring.make ?vnodes (List.map Peer.to_string peers); by_name }

let peers t = Ring.members t.ring |> List.map (Hashtbl.find t.by_name)

(* Forward one request to one peer.  [`Next] = try the failover order
   (transport trouble, or the peer is overloaded/draining); [`Reply r]
   = definitive, return it (including backend errors like bad_request:
   the peer answered, failing over would just repeat it). *)
let forward (p : Peer.t) h ~deadline_ms (req : Wire.request) =
  match Client.connect p.Peer.addr with
  | Error msg ->
      let window = Health.fail h in
      Log.info (fun m ->
          m "peer %s down for %.2fs: %s" (Peer.to_string p) window msg);
      `Next
  | Ok c -> (
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let params =
            match req.Wire.params with Jsonl.Obj fields -> fields | _ -> []
          in
          match
            Client.request ?deadline_ms c ~id:req.Wire.id ~meth:req.Wire.meth
              ~params
          with
          | Error msg ->
              ignore (Health.fail h);
              Log.info (fun m ->
                  m "peer %s transport failure: %s" (Peer.to_string p) msg);
              `Next
          | Ok line -> (
              match Jsonl.of_string line with
              | Error msg ->
                  ignore (Health.fail h);
                  Log.warn (fun m ->
                      m "peer %s sent unparseable reply: %s" (Peer.to_string p)
                        msg);
                  `Next
              | Ok reply -> (
                  Health.ok h;
                  match Jsonl.member "ok" reply with
                  | Some (Jsonl.Bool true) ->
                      `Reply
                        (Ok
                           (Option.value
                              (Jsonl.member "result" reply)
                              ~default:Jsonl.Null))
                  | _ -> (
                      let get k =
                        Option.bind (Jsonl.member "error" reply)
                          (Jsonl.member k)
                      in
                      let code =
                        match get "code" with
                        | Some (Jsonl.String s) -> Wire.code_of_string s
                        | _ -> None
                      in
                      let message =
                        match get "message" with
                        | Some (Jsonl.String s) -> s
                        | _ -> line
                      in
                      match code with
                      | Some (Wire.Overloaded | Wire.Shutting_down) -> `Next
                      | Some code -> `Reply (Error (code, message))
                      | None -> `Reply (Error (Wire.Internal, message)))))))

let handler t ~should_stop ~deadline (req : Wire.request) =
  let key = Wire.canonical_digest ~meth:req.Wire.meth req.Wire.params in
  let order =
    Ring.route_order t.ring key |> List.map (Hashtbl.find t.by_name)
  in
  (* Two passes: live peers in ring order, then — only if every peer
     is inside a backoff window — everyone again, so a fully-down
     fleet still probes rather than failing from stale health. *)
  let attempts =
    let live, down = List.partition (fun (_, h) -> Health.available h) order in
    live @ down
  in
  let rec go = function
    | [] ->
        Error
          ( Wire.Internal,
            Printf.sprintf "no fleet peer reachable for key %s" key )
    | (p, h) :: rest ->
        if should_stop () then Error (Wire.Timeout, "deadline exceeded")
        else
          let deadline_ms =
            match deadline with
            | None -> None
            | Some d ->
                (* Remaining budget; ≥ 1ms so the backend still sees a
                   deadline rather than none. *)
                Some (max 1 (int_of_float ((d -. now ()) *. 1000.)))
          in
          (match forward p h ~deadline_ms req with
          | `Reply r -> r
          | `Next -> go rest)
  in
  go attempts
