(** The closure atlas: offline batch-certification of Δ' enumerations
    into the store, with an auditable coverage manifest
    (docs/FLEET.md).

    A spec crosses registry-resolvable operator names with canonical
    task names; [build] enumerates every missing cell in parallel over
    the domain pool (persisting certificates through the closure's
    ordinary write-through path) and saves an [Atlas] manifest
    certificate listing every cell's store keys.  [verify] audits the
    manifest and every listed entry without enumerating anything — a
    warm atlas turns the fleet's hot queries into cert-backed O(1)
    lookups. *)

type spec = {
  atlas_name : string;
  ops : string list;  (** operator names, registry-resolvable, persistent *)
  tasks : string list;  (** canonical task names, registry-resolvable *)
}

val default_spec : ?max_n:int -> name:string -> unit -> spec
(** Plain models × consensus variants, 2-set agreement, adaptive
    renaming, and an ε-grid of approximate agreement, for
    [2 ≤ n ≤ max_n] (default 3). *)

type build_report = {
  cells : int;
  built : int;  (** cells enumerated this run *)
  skipped : int;  (** cells already fully present (resumability) *)
  manifest_key : string;
}

val build : ?should_stop:(unit -> bool) -> spec -> (build_report, string) result
(** Requires the store to be enabled.  Skips complete cells, so an
    interrupted build resumes where it stopped; a rerun over a warm
    store only rewrites the manifest. *)

type audit = { audited_cells : int; audited_keys : int }

val verify : string -> (audit, string) result
(** [verify name] loads the manifest saved under [Q_atlas name],
    re-verifies it, and checks that every listed key holds a present,
    decodable, verifying certificate. *)
