(** Per-peer availability with capped exponential backoff.

    Thread-safe; shared by the replicator and the router so both stop
    hammering a dead peer after the first failed connect of each
    backoff window. *)

type t

val create : ?base:float -> ?cap:float -> unit -> t
(** Backoff window after the [k]-th consecutive failure:
    [min cap (base * 2^(k-1))] seconds (defaults 0.25s, 5s). *)

val available : t -> bool
val fail : t -> float
(** Marks a failure and returns the backoff window just applied. *)

val ok : t -> unit
(** Resets the failure count. *)
