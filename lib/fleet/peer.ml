type t = { name : string; addr : Server.addr }

let to_string p = p.name

(* "unix:PATH" or "HOST:PORT"; the rendering doubles as the peer's
   ring name, so two fronts configured with the same peer list agree
   on every ring position. *)
let parse spec =
  let unix_prefix = "unix:" in
  let plen = String.length unix_prefix in
  if
    String.length spec > plen
    && String.equal (String.sub spec 0 plen) unix_prefix
  then
    Ok { name = spec; addr = Server.Unix_path (String.sub spec plen (String.length spec - plen)) }
  else
    match String.rindex_opt spec ':' with
    | None -> Error (Printf.sprintf "peer %S: expected unix:PATH or HOST:PORT" spec)
    | Some i -> (
        let host = String.sub spec 0 i in
        let port = String.sub spec (i + 1) (String.length spec - i - 1) in
        match int_of_string_opt port with
        | Some port when port > 0 && port < 65536 && host <> "" ->
            Ok { name = spec; addr = Server.Tcp (host, port) }
        | _ ->
            Error
              (Printf.sprintf "peer %S: expected unix:PATH or HOST:PORT" spec))

let parse_list specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | spec :: rest -> (
        match parse spec with
        | Ok p -> go (p :: acc) rest
        | Error _ as e -> e)
  in
  go [] specs
