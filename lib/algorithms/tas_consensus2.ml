let decide i view =
  match view with
  | Value.Pair
      { fst = Value.Bool won; snd = Value.View { assoc = entries; _ }; _ } -> (
      if won then
        match List.assoc_opt i entries with
        | Some x -> x
        | None -> invalid_arg "Tas_consensus2: own write missing from view"
      else
        match List.find_opt (fun (j, _) -> j <> i) entries with
        | Some (_, x) -> x
        | None ->
            (* A test&set loser always sees the winner's earlier write. *)
            invalid_arg "Tas_consensus2: lost test&set but saw nobody")
  | Value.Pair _ | Value.Unit | Value.Bool _ | Value.Int _ | Value.Frac _
  | Value.Str _ | Value.View _ ->
      invalid_arg "Tas_consensus2: malformed view"

let protocol =
  Protocol.make ~name:"tas-consensus-2" ~rounds:1
    ~alpha:(fun ~round:_ _i _view -> Value.Unit)
    ~decide ()
