let rounds_needed ~n =
  if n < 1 then invalid_arg "Bc_consensus: n < 1";
  Frac.ceil_log ~base:2 (Frac.of_int n)

(* The r-th bit, MSB first, of [id - 1] written with [k] bits. *)
let id_bit ~k ~r id = (id - 1) lsr (k - r) land 1

let state_candidate state =
  match state with
  | Value.Pair { fst = Value.Int id; snd = input; _ } -> (id, input)
  | Value.Pair _ | Value.Unit | Value.Bool _ | Value.Int _ | Value.Frac _
  | Value.Str _ | Value.View _ ->
      invalid_arg "Bc_consensus: malformed state"

let spec ~n =
  let k = rounds_needed ~n in
  {
    State_protocol.name = Printf.sprintf "bc-consensus(n=%d)" n;
    rounds = k;
    init = (fun i input -> Value.pair (Value.Int i) input);
    step =
      (fun ~round _i ~box states ->
        let decided =
          match box with
          | Some (Value.Bool b) -> if b then 1 else 0
          | Some _ | None -> invalid_arg "Bc_consensus: missing box output"
        in
        let matching =
          List.filter
            (fun (_, st) ->
              let id, _ = state_candidate st in
              id_bit ~k ~r:round id = decided)
            states
        in
        match matching with
        | (_, st) :: _ -> st
        | [] ->
            (* The box winner proposed [decided] and its write precedes
               every collect, so a match always exists. *)
            invalid_arg "Bc_consensus: no adoptable candidate")
    ;
    box_input =
      (fun ~round i state ->
        ignore i;
        let id, _ = state_candidate state in
        Value.Bool (id_bit ~k ~r:round id = 1));
    output =
      (fun _i state ->
        let _, input = state_candidate state in
        input);
  }

let protocol ~n = State_protocol.protocol (spec ~n)
