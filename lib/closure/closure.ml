let src = Logs.Src.create "speedup.closure" ~doc:"Closure computation"

module Log = (val Logs.src_log src : Logs.LOG)

(* Domain-safety & scaling: closure enumeration fans out across a
   domain pool (see lib/parallel), and a closure task's Δ' may itself
   be evaluated from pool workers (e.g. the solver's per-input pass),
   so the memo is built for concurrent access with a lock-free hot
   path.  The shared table is an immutable map published through an
   [Atomic.t] snapshot pointer: readers pay one atomic load and pure
   lookups, never a lock.  Writers stage entries in a per-domain
   (Domain.DLS) write-behind cache and publish in batches — once per
   pool chunk (via [Pool.register_flush]) inside a batch, immediately
   outside one — under [memo_lock], which therefore leaves the hot
   path entirely.  [reset_memo] bumps an epoch so per-domain caches
   from before the reset can neither serve nor resurrect entries. *)

module Key_map = Map.Make (struct
  type t = string * string

  let compare (a1, b1) (a2, b2) =
    let c = String.compare a1 a2 in
    if c <> 0 then c else String.compare b1 b2
end)

let memo : Complex.t Simplex.Map.t Key_map.t Atomic.t =
  Atomic.make Key_map.empty

(* Serializes publishers ([flush_local], [reset_memo]); readers never
   take it. *)
let memo_lock = Mutex.create ()
let memo_epoch = Atomic.make 0

(* ---- observability ---- *)

type memo_stats = { hits : int; misses : int; entries : int; enumerations : int }

(* Atomic so counts stay exact — not merely non-crashing — when bumped
   from concurrent domains.  Inside pool batches the hit/miss bumps
   are batched per domain and folded in at chunk boundaries, so the
   shared cache lines are touched once per chunk, not once per σ;
   [enumerations] stays a direct bump (it already sits on the slow
   path, and CI greps depend on it being exact mid-run). *)
let memo_hits = Atomic.make 0
let memo_misses = Atomic.make 0
let enumeration_count = Atomic.make 0

(* ---- the per-domain fast path ---- *)

type local = {
  mutable epoch : int;
  cache : (string * string, Complex.t Simplex.Tbl.t) Hashtbl.t;
      (* read-through copy of shared entries + own unpublished writes *)
  mutable pending : ((string * string) * Simplex.t * Complex.t) list;
  mutable pending_hits : int;
  mutable pending_misses : int;
}

let local_key =
  Domain.DLS.new_key (fun () ->
      {
        epoch = min_int;
        cache = Hashtbl.create 8;
        pending = [];
        pending_hits = 0;
        pending_misses = 0;
      })
[@@lint.allow
  "R1: deliberate per-domain read-through cache over the shared memo \
   snapshot; never shared across domains, and pending writes are \
   published at every chunk boundary (Pool.register_flush) or \
   immediately outside batches, so no entry outlives its batch \
   unpublished"]

let local () =
  let l = Domain.DLS.get local_key in
  let e = Atomic.get memo_epoch in
  if l.epoch <> e then begin
    Hashtbl.reset l.cache;
    l.pending <- [];
    l.pending_hits <- 0;
    l.pending_misses <- 0;
    l.epoch <- e
  end;
  l

(* Publish this domain's pending entries and counter deltas.  Cheap
   when there is nothing pending (one DLS read and two int checks) —
   it runs after every pool chunk.  The epoch is re-checked under
   [memo_lock] so entries staged before a concurrent [reset_memo] are
   dropped instead of resurrected. *)
let flush_local () =
  let l = Domain.DLS.get local_key in
  (match l.pending with
  | [] -> ()
  | pending ->
      Mutex.protect memo_lock (fun () ->
          if Atomic.get memo_epoch = l.epoch then
            Atomic.set memo
              (List.fold_left
                 (fun m (key, sigma, c) ->
                   let slot =
                     match Key_map.find_opt key m with
                     | Some s -> s
                     | None -> Simplex.Map.empty
                   in
                   Key_map.add key (Simplex.Map.add sigma c slot) m)
                 (Atomic.get memo) pending));
      l.pending <- []);
  if l.pending_hits <> 0 then begin
    ignore (Atomic.fetch_and_add memo_hits l.pending_hits);
    l.pending_hits <- 0
  end;
  if l.pending_misses <> 0 then begin
    ignore (Atomic.fetch_and_add memo_misses l.pending_misses);
    l.pending_misses <- 0
  end

let () = Pool.register_flush flush_local

let note_hit l =
  if Pool.in_parallel_region () then l.pending_hits <- l.pending_hits + 1
  else Atomic.incr memo_hits

let note_miss l =
  if Pool.in_parallel_region () then l.pending_misses <- l.pending_misses + 1
  else Atomic.incr memo_misses

let local_slot l key =
  match Hashtbl.find_opt l.cache key with
  | Some t -> t
  | None ->
      let t = Simplex.Tbl.create 16 in
      Hashtbl.add l.cache key t;
      t

(* Lock-free lookup: the per-domain cache first, then the shared
   snapshot (warming the per-domain cache on a hit there). *)
let memo_find l key sigma =
  let cached = Hashtbl.find_opt l.cache key in
  match cached with
  | Some t when Simplex.Tbl.mem t sigma -> Simplex.Tbl.find_opt t sigma
  | _ -> (
      match Key_map.find_opt key (Atomic.get memo) with
      | None -> None
      | Some slot -> (
          match Simplex.Map.find_opt sigma slot with
          | None -> None
          | Some c ->
              Simplex.Tbl.replace (local_slot l key) sigma c;
              Some c))

(* Stage an entry: visible to this domain immediately, published to
   the shared snapshot at the next chunk boundary (or right away when
   not inside a pool batch). *)
let memo_add l key sigma c =
  Simplex.Tbl.replace (local_slot l key) sigma c;
  l.pending <- (key, sigma, c) :: l.pending;
  if not (Pool.in_parallel_region ()) then flush_local ()

let memo_stats () =
  let entries =
    Key_map.fold
      (fun _ slot acc -> acc + Simplex.Map.cardinal slot)
      (Atomic.get memo) 0
  in
  {
    hits = Atomic.get memo_hits;
    misses = Atomic.get memo_misses;
    entries;
    enumerations = Atomic.get enumeration_count;
  }

let reset_memo () =
  Mutex.protect memo_lock (fun () ->
      Atomic.incr memo_epoch;
      Atomic.set memo Key_map.empty);
  Atomic.set memo_hits 0;
  Atomic.set memo_misses 0;
  Atomic.set enumeration_count 0

(* ---- the membership test (Definition 2) ---- *)

(* Raw membership with its witness map: the zero-round shortcut
   (simplices of Δ(σ) are always in Δ'(σ), Remark after Definition 2)
   needs no witness; a one-round membership carries the local-task
   decision map found by the solver. *)
let compute_member ?node_limit ?should_stop ~op task ~sigma ~tau =
  if Complex.mem tau (Task.delta task sigma) then (true, None)
  else
    match
      Solvability.local_task_solvable ?node_limit ?should_stop
        ~one_round:(Round_op.facets op) task ~sigma ~tau
    with
    | Solvability.Solvable f -> (true, Some f)
    | Solvability.Unsolvable -> (false, None)
    | Solvability.Undecided ->
        failwith "Closure: local task solvability undecided (node limit)"

(* ---- certificate store plumbing ---- *)

(* The environment for re-validating a store entry against the live
   task and operator: names must match exactly what we are about to
   compute, so no registry lookup is involved. *)
let live_env ~op_name ~facets task =
  {
    Cert.task_of_name =
      (fun n -> if n = task.Task.name then Some task else None);
    facets_of_op = (fun n -> if n = op_name then Some facets else None);
    protocol_of_model = (fun _ -> None);
  }

(* Persist only when both names identify their semantics across
   sessions — otherwise the next session's read would just fail
   verification and quarantine the entry (e.g. randomly synthesized
   tasks, fresh-named β operators). *)
let store_ready op task =
  Cert_store.enabled ()
  && Round_op.persistent op
  && Cert_registry.known_task task.Task.name

(* Read-through: a store entry is only accepted after [Cert.verify]
   re-validates every witness; anything else is quarantined and
   recomputed. *)
let load_verified ~key ~env ~select =
  match Cert_store.load key with
  | None -> None
  | Some sexp -> (
      match Cert.decode sexp with
      | Error msg ->
          Log.warn (fun m -> m "stale/corrupt certificate %s: %s" key msg);
          Cert_store.quarantine key;
          None
      | Ok cert -> (
          match select cert with
          | None ->
              Cert_store.quarantine key;
              None
          | Some v -> (
              match Cert.verify env cert with
              | Ok () -> Some v
              | Error e ->
                  Log.warn (fun m ->
                      m "certificate %s failed verification: %s" key
                        (Cert.error_message e));
                  Cert_store.quarantine key;
                  None)))

let tau_member ?node_limit ~op task ~sigma ~tau =
  Complex.mem tau (Task.delta task sigma)
  ||
  let compute () = fst (compute_member ?node_limit ~op task ~sigma ~tau) in
  if not (store_ready op task) then compute ()
  else
    let op_name = Round_op.name op in
    let key =
      Cert.query_key
        (Cert.Q_member { op_name; task_name = task.Task.name; sigma; tau })
    in
    let env = live_env ~op_name ~facets:(Round_op.facets op) task in
    let select = function
      | Cert.Membership m
        when m.Cert.op_name = op_name
             && m.Cert.task_name = task.Task.name
             && Simplex.equal m.Cert.sigma sigma
             && Simplex.equal m.Cert.tau tau ->
          Some m.Cert.member
      | _ -> None
    in
    match load_verified ~key ~env ~select with
    | Some member -> member
    | None ->
        let member, witness = compute_member ?node_limit ~op task ~sigma ~tau in
        Cert_store.save ~key
          (Cert.encode
             (Cert.Membership
                {
                  op_name;
                  task_name = task.Task.name;
                  sigma;
                  tau;
                  member;
                  witness;
                }));
        member

let witness ?node_limit ~op task ~sigma ~tau =
  let compute () =
    match
      Solvability.local_task_solvable ?node_limit
        ~one_round:(Round_op.facets op) task ~sigma ~tau
    with
    | Solvability.Solvable f -> Some f
    | Solvability.Undecided -> None
    | Solvability.Unsolvable ->
        (* The search may be vacuously unsolvable only because τ was not
           a legal chromatic set; tau_member's zero-round shortcut case
           (τ ∈ Δ(σ)) is always solvable, so reaching here with a Δ(σ)
           member cannot happen: the CSP covers that map too. *)
        None
  in
  if not (store_ready op task) then compute ()
  else
    let op_name = Round_op.name op in
    let key =
      Cert.query_key
        (Cert.Q_member { op_name; task_name = task.Task.name; sigma; tau })
    in
    let env = live_env ~op_name ~facets:(Round_op.facets op) task in
    let select = function
      | Cert.Membership m
        when m.Cert.op_name = op_name
             && m.Cert.task_name = task.Task.name
             && Simplex.equal m.Cert.sigma sigma
             && Simplex.equal m.Cert.tau tau ->
          Some (m.Cert.member, m.Cert.witness)
      | _ -> None
    in
    match load_verified ~key ~env ~select with
    | Some (true, (Some _ as w)) -> w
    | Some (false, _) -> None
    | Some (true, None) | None ->
        (* No usable stored witness (zero-round entries have none):
           compute, and persist the result when it is decisive. *)
        let result = compute () in
        (match result with
        | Some f ->
            Cert_store.save ~key
              (Cert.encode
                 (Cert.Membership
                    {
                      op_name;
                      task_name = task.Task.name;
                      sigma;
                      tau;
                      member = true;
                      witness = Some f;
                    }))
        | None -> ());
        result

(* ---- Δ' enumeration ---- *)

(* Enumerate the candidate chromatic sets and keep the members, with
   witnesses (free: the membership search already produces the map).
   The zero-round shortcut (τ ∈ Δ(σ), a memoized set lookup) is
   sub-millisecond, so it is decided inline on the calling domain;
   only the real CSP searches — each an independent solver run — fan
   out across the domain pool.  The order-preserving merge keeps the
   member list — and hence Δ' — identical at every job count. *)
let enumerate ?node_limit ?should_stop ~op task sigma =
  Atomic.incr enumeration_count;
  let taus = Task.chromatic_output_sets task sigma in
  let zero = Task.delta task sigma in
  let tagged = List.map (fun tau -> (tau, Complex.mem tau zero)) taus in
  let hard =
    List.filter_map (fun (tau, z) -> if z then None else Some tau) tagged
  in
  let searched =
    Pool.map
      (fun tau -> compute_member ?node_limit ?should_stop ~op task ~sigma ~tau)
      hard
  in
  (* Reassemble in candidate order: zero-round members carry no
     witness (exactly what [compute_member] returns for them), CSP
     verdicts are consumed in order. *)
  let rec merge tagged searched =
    match tagged with
    | [] -> []
    | (tau, true) :: rest -> (tau, None) :: merge rest searched
    | (tau, false) :: rest -> (
        match searched with
        | (true, w) :: s -> (tau, w) :: merge rest s
        | (false, _) :: s -> merge rest s
        | [] -> assert false)
  in
  let members = merge tagged searched in
  Log.debug (fun m ->
      m "Δ'[%s](%a): %d of %d candidate sets admitted" (Round_op.name op)
        Simplex.pp sigma (List.length members) (List.length taus));
  members

let delta ?node_limit ?should_stop ?(memo = true) ~op task sigma =
  let op_name = Round_op.name op in
  let key = (op_name, task.Task.name) in
  let l = if memo then Some (local ()) else None in
  let cached =
    match l with None -> None | Some l -> memo_find l key sigma
  in
  match cached with
  | Some c ->
      (match l with Some l -> note_hit l | None -> ());
      c
  | None ->
      (match l with Some l -> note_miss l | None -> ());
      let memoize c =
        (match l with
        | Some l -> memo_add l key sigma c
        | None -> ());
        c
      in
      if not (store_ready op task) then
        memoize
          (Complex.of_facets
             (List.map fst (enumerate ?node_limit ?should_stop ~op task sigma)))
      else
        let store_key =
          Cert.query_key
            (Cert.Q_delta { op_name; task_name = task.Task.name; sigma })
        in
        let env = live_env ~op_name ~facets:(Round_op.facets op) task in
        let select = function
          | Cert.Enumeration e
            when e.Cert.op_name = op_name
                 && e.Cert.task_name = task.Task.name
                 && Simplex.equal e.Cert.sigma sigma ->
              Some (Complex.of_facets (List.map fst e.Cert.members))
          | _ -> None
        in
        match load_verified ~key:store_key ~env ~select with
        | Some c -> memoize c
        | None ->
            let members = enumerate ?node_limit ?should_stop ~op task sigma in
            Cert_store.save ~key:store_key
              (Cert.encode
                 (Cert.Enumeration
                    { op_name; task_name = task.Task.name; sigma; members }));
            memoize (Complex.of_facets (List.map fst members))

let delta_any ?node_limit ?(memo = true) ~ops ~name task sigma =
  (* Not persisted: membership here is a union over operators whose β
     functions are session-local, so no single stored witness would be
     re-checkable against the recorded operator name. *)
  let key = (name, task.Task.name) in
  let l = if memo then Some (local ()) else None in
  let cached =
    match l with None -> None | Some l -> memo_find l key sigma
  in
  match cached with
  | Some c ->
      (match l with Some l -> note_hit l | None -> ());
      c
  | None ->
      (match l with Some l -> note_miss l | None -> ());
      Atomic.incr enumeration_count;
      (* Membership under *some* operator is one independent search per
         candidate τ — the widest fan-out in the repo (|ops| solver
         calls per τ), so it runs on the pool.  As in [enumerate], the
         zero-round members (τ ∈ Δ(σ), member under every operator via
         the shortcut in [tau_member]) are decided inline and only the
         real searches cross a domain boundary. *)
      let taus = Task.chromatic_output_sets task sigma in
      let zero = Task.delta task sigma in
      let tagged = List.map (fun tau -> (tau, Complex.mem tau zero)) taus in
      let hard =
        List.filter_map (fun (tau, z) -> if z then None else Some tau) tagged
      in
      let verdicts =
        Pool.map
          (fun tau ->
            List.exists
              (fun op -> tau_member ?node_limit ~op task ~sigma ~tau)
              ops)
          hard
      in
      let rec merge tagged verdicts =
        match tagged with
        | [] -> []
        | (tau, true) :: rest -> tau :: merge rest verdicts
        | (tau, false) :: rest -> (
            match verdicts with
            | true :: v -> tau :: merge rest v
            | false :: v -> merge rest v
            | [] -> assert false)
      in
      let c = Complex.of_facets (merge tagged verdicts) in
      (match l with
      | Some l -> memo_add l key sigma c
      | None -> ());
      c

let bin_consensus_ops ids =
  let rec betas = function
    | [] -> [ [] ]
    | i :: rest ->
        let tails = betas rest in
        List.concat_map
          (fun b -> List.map (fun tl -> (i, b) :: tl) tails)
          [ false; true ]
  in
  List.map
    (fun beta ->
      Round_op.bin_consensus_beta (fun i ->
          match List.assoc_opt i beta with Some b -> b | None -> false))
    (betas ids)

let task ?node_limit ?memo ~op t =
  let name = Printf.sprintf "CL[%s](%s)" (Round_op.name op) t.Task.name in
  let delta' = delta ?node_limit ?memo ~op t in
  Task.make ~name ~arity:t.Task.arity ~inputs:t.Task.inputs
    ~outputs:
      (lazy
        (List.fold_left
           (fun acc sigma -> Complex.union acc (delta' sigma))
           Complex.empty (Task.input_simplices t)))
    ~delta:delta'

let fixed_point_on ?node_limit ~op t simplices =
  let compute () =
    Pool.for_all
      (fun sigma ->
        Complex.equal (delta ?node_limit ~op t sigma) (Task.delta t sigma))
      simplices
  in
  if not (store_ready op t) then compute ()
  else
    let op_name = Round_op.name op in
    let key =
      Cert.query_key
        (Cert.Q_fixed_point
           { op_name; task_name = t.Task.name; sigmas = simplices })
    in
    let env = live_env ~op_name ~facets:(Round_op.facets op) t in
    let select = function
      | Cert.Fixed_point fp
        when fp.Cert.op_name = op_name
             && fp.Cert.task_name = t.Task.name
             && List.length fp.Cert.per_sigma = List.length simplices
             && List.for_all2
                  (fun (s, _) s' -> Simplex.equal s s')
                  fp.Cert.per_sigma simplices ->
          Some true
      | _ -> None
    in
    match load_verified ~key ~env ~select with
    | Some fixed -> fixed
    | None ->
        let fixed = compute () in
        (* Only a positive outcome is a certificate (the extensional
           Δ' = Δ data of Lemma 1); a refutation is re-derived from the
           per-σ enumeration certificates instead. *)
        if fixed then
          Cert_store.save ~key
            (Cert.encode
               (Cert.Fixed_point
                  {
                    op_name;
                    task_name = t.Task.name;
                    per_sigma =
                      List.map
                        (fun sigma ->
                          ( sigma,
                            Complex.facets (delta ?node_limit ~op t sigma) ))
                        simplices;
                  }));
        fixed

let iterate ?node_limit ~op k t =
  let rec go k acc = if k <= 0 then acc else go (k - 1) (task ?node_limit ~op acc) in
  go k t

let equal_on ?node_limit ~op t ~reference simplices =
  Pool.for_all
    (fun sigma ->
      Complex.equal (delta ?node_limit ~op t sigma) (Task.delta reference sigma))
    simplices
