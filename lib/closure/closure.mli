(** The closure of a task with respect to a model (Definition 2).

    [Δ'(σ)] consists of all chromatic sets [τ ⊆ V(Δ(σ))] with
    [ID(τ) = ID(σ)] whose local task [Π_{τ,σ}] is solvable in at most
    one round of the model; always [Δ(σ) ⊆ Δ'(σ)].

    Results are cached at two levels.  An in-memory memo table (per
    operator name, task name and σ) serves repeated queries within a
    session; it can be bypassed per call with [~memo:false].  When the
    certificate store is enabled ([Cert_store.set_dir] or the
    [CERT_CACHE_DIR] environment variable) and the operator is
    {!Round_op.persistent}, results are additionally persisted as
    proof-carrying certificates: a warm store answers enumeration and
    membership queries by {!Cert.verify}-ing the stored witnesses
    instead of re-running the solvability search, and entries that fail
    verification are quarantined and recomputed. *)

val delta :
  ?node_limit:int -> ?should_stop:(unit -> bool) -> ?memo:bool ->
  op:Round_op.t -> Task.t -> Simplex.t ->
  Complex.t
(** [Δ'(σ)], computed by enumerating candidate chromatic sets and
    running the local-task solvability test on each.  Memoized per
    (operator name, task name, σ) unless [~memo:false]: operator and
    task names must therefore identify their semantics — [Round_op]
    guarantees this by giving every augmented operator instance a
    unique name, and task constructors encode their parameters in the
    name.  Read/write-through the certificate store for persistent
    operators.

    [should_stop] is the cooperative cancellation hook, threaded down
    to every per-candidate {!Csp.solve}.  When it fires,
    [Csp.Interrupted] escapes {e before} anything is memoized or
    persisted, so an interrupted enumeration never poisons the caches.
    @raise Csp.Interrupted when [should_stop] returns [true].
    @raise Failure if some local-task instance is undecided. *)

val task : ?node_limit:int -> ?memo:bool -> op:Round_op.t -> Task.t -> Task.t
(** The closure task [CL_M(Π) = (I, O', Δ')].  Its [outputs] complex
    (the images of Δ' and their faces, over all input simplices) is
    lazy and rarely needed. *)

val tau_member :
  ?node_limit:int -> op:Round_op.t -> Task.t -> sigma:Simplex.t ->
  tau:Simplex.t -> bool
(** Membership [τ ∈ Δ'(σ)] without enumerating all of [Δ'(σ)]. *)

val witness :
  ?node_limit:int -> op:Round_op.t -> Task.t -> sigma:Simplex.t ->
  tau:Simplex.t -> Simplicial_map.t option
(** The one-round decision map solving the local task [Π_{τ,σ}] when
    [τ ∈ Δ'(σ)] — the simplicial map illustrated by Figure 2 (the
    subdivision of τ mapped into the dark subcomplex of Δ(σ)).
    [None] when τ is not in the closure.  Zero-round memberships
    (τ already a simplex of Δ(σ)) are witnessed by the map sending
    every view to its owner's τ-vertex. *)

val delta_any :
  ?node_limit:int -> ?memo:bool -> ops:Round_op.t list -> name:string ->
  Task.t -> Simplex.t -> Complex.t
(** Closure when the one-round local algorithm may pick its black-box
    inputs: [τ ∈ Δ'(σ)] iff the local task is solvable under {e some}
    operator of the list.  Used for the unrestricted binary-consensus
    model: in the Theorem 2 proof the box input of a process in the
    local algorithm is a constant, so quantifying over all per-process
    constant assignments [β] is exactly Definition 2 for that model.
    [name] keys the memo table.  Never persisted to the certificate
    store (the β operators are session-local). *)

val bin_consensus_ops : int list -> Round_op.t list
(** The [2^{|ids|}] operators "IIS + binary consensus with constant
    proposals β", one per [β : ids → {0,1}]. *)

val fixed_point_on :
  ?node_limit:int -> op:Round_op.t -> Task.t -> Simplex.t list -> bool
(** Whether [Δ'(σ) = Δ(σ)] on every listed input simplex — the
    fixed-point condition of Lemma 1, checked extensionally.  A
    positive answer is persisted as a {!Cert.Fixed_point} certificate
    when the store is enabled. *)

val iterate : ?node_limit:int -> op:Round_op.t -> int -> Task.t -> Task.t
(** [iterate op k task]: the [k]-fold closure
    [CL_M(CL_M(… CL_M(Π)))]. *)

val equal_on :
  ?node_limit:int -> op:Round_op.t -> Task.t -> reference:Task.t ->
  Simplex.t list -> bool
(** Whether the closure's Δ' agrees with the reference task's Δ on
    every listed simplex (e.g. Claim 2: closure of ε-AA vs 3ε-AA). *)

(** {2 Observability} *)

type memo_stats = {
  hits : int;  (** in-memory memo hits *)
  misses : int;  (** in-memory memo misses (memoizing calls only) *)
  entries : int;  (** simplices currently memoized, over all tables *)
  enumerations : int;
      (** full candidate-set enumerations actually performed — stays at
          0 on a run fully served by the memo and the certificate
          store *)
}

val memo_stats : unit -> memo_stats
(** The shared memo is an immutable snapshot read through an
    [Atomic.t] pointer (no lock on the hot path); writes are staged in
    per-domain caches and published in batches at pool chunk
    boundaries, so [entries] and the {!Atomic.t}-backed counters are
    exact whenever no pool batch is in flight — in particular after
    every [Pool.*] combinator has returned.  [enumerations] is
    incremented directly on the caller before the parallel fan-out, so
    a warm-store run still reports [enumerations=0] at any job
    count. *)

val reset_memo : unit -> unit
(** Clear the memo tables and zero the counters (store stats are
    tracked separately by {!Cert_store.stats}).  Resetting bumps an
    internal epoch: per-domain caches staged before the reset can
    neither serve stale entries nor resurrect them into the fresh
    table. *)
