(* Deciding task-solvability equivalence of algebra terms by running
   the closure/solver pipeline over both sides of a fixed task battery
   and comparing fingerprints.  See equiv.mli for the contract. *)

let src = Logs.Src.create "speedup.equiv" ~doc:"Model-algebra equivalence"

module Log = (val Logs.src_log src : Logs.LOG)

type probe = { label : string; lhs : string; rhs : string }

type outcome = {
  lhs : Algebra.t;
  rhs : Algebra.t;
  n : int;
  equivalent : bool;
  probes : probe list;
}

let disagreement outcome =
  List.find_opt
    (fun (p : probe) -> not (String.equal p.lhs p.rhs))
    outcome.probes

(* The probe battery: small, registry-resolvable tasks (their names
   reconstruct the task in any session, so the inner closure runs are
   store-persistent).  Consensus separates models by connectivity,
   approximate agreement by convergence speed (it is what tells IIS
   from its d-solo extensions), set agreement by higher connectivity
   at n = 3. *)
let battery ~n =
  List.concat_map
    (fun n ->
      List.map
        (fun task -> (n, task))
        ([
           Consensus.binary ~n;
           Approx_agreement.task ~n ~m:2 ~eps:(Frac.make 1 2);
         ]
        @
        if n >= 3 then
          [
            Set_agreement.task ~n ~k:2
              ~values:[ Value.Int 0; Value.Int 1; Value.Int 2 ];
          ]
        else []))
    (List.init n (fun i -> i + 1))

(* Canonical fingerprint of Δ'[op](σ) over every input simplex: facet
   renderings are structural (no interned ids leak) and sorted, so the
   digest is identical across sessions and job counts. *)
let closure_fingerprint ?node_limit ?should_stop ~op task =
  let per_sigma =
    List.map
      (fun sigma ->
        let dprime = Closure.delta ?node_limit ?should_stop ~op task sigma in
        let facets =
          List.sort String.compare
            (List.map Simplex.to_string (Complex.facets dprime))
        in
        Simplex.to_string sigma ^ " -> " ^ String.concat " " facets)
      (Task.input_simplices task)
  in
  Digest.to_hex (Digest.string (String.concat "\n" per_sigma))

let verdict_name = function
  | Solvability.Solvable _ -> "solvable"
  | Solvability.Unsolvable -> "unsolvable"
  | Solvability.Undecided -> "undecided"

let solvable_fingerprint ?node_limit ?should_stop ~term task =
  verdict_name
    (Solvability.decide ?node_limit ?should_stop
       ~inputs:(Task.input_simplices task)
       ~protocol:(fun sigma -> Complex.of_facets (Algebra.facets term sigma))
       ~delta:(Task.delta task) ())

(* Closure fingerprints are compared at every battery instance; the
   solver's exhaustive map search is run only on instances with at
   most two processes — it grows super-exponentially (74 s for 2-set
   agreement at n = 3 against milliseconds for every closure sweep),
   and the per-σ closure fingerprints are a strictly finer invariant
   at the larger sizes anyway. *)
let solvable_size_cap = 2

let compute_probes ?node_limit ?should_stop ~n a b =
  List.concat_map
    (fun (n', task) ->
      let name = task.Task.name in
      let closure_of term =
        closure_fingerprint ?node_limit ?should_stop
          ~op:(Round_op.algebra term) task
      in
      let solvable_of term =
        solvable_fingerprint ?node_limit ?should_stop ~term task
      in
      {
        label = Printf.sprintf "closure[%s]" name;
        lhs = closure_of a;
        rhs = closure_of b;
      }
      ::
      (if n' <= solvable_size_cap then
         [
           {
             label = Printf.sprintf "solvable-1round[%s]" name;
             lhs = solvable_of a;
             rhs = solvable_of b;
           };
         ]
       else []))
    (battery ~n)

(* In-process verdict memo, keyed on the canonically ordered pair.
   Hit from daemon worker domains, so accesses are mutex-guarded;
   verdicts are pure functions of their keys. *)
let memo_lock = Mutex.create ()

let memo_table : (string * string * int, bool * probe list) Hashtbl.t =
  Hashtbl.create 16
[@@lint.allow "R1: accesses guarded by memo_lock (see comment above)"]

(* Store read-through, mirroring Closure's: accept an entry only after
   [Cert.verify] (which for Equivalence replays the structural checks
   against the canonical grammar); anything else is quarantined and
   recomputed. *)
let load_verified ~key ~select =
  match Cert_store.load key with
  | None -> None
  | Some sexp -> (
      match Cert.decode sexp with
      | Error msg ->
          Log.warn (fun m -> m "stale/corrupt certificate %s: %s" key msg);
          Cert_store.quarantine key;
          None
      | Ok cert -> (
          match select cert with
          | None ->
              Cert_store.quarantine key;
              None
          | Some v -> (
              match Cert.verify Cert_registry.env cert with
              | Ok () -> Some v
              | Error e ->
                  Log.warn (fun m ->
                      m "certificate %s failed verification: %s" key
                        (Cert.error_message e));
                  Cert_store.quarantine key;
                  None)))

let probes_of_triples triples =
  List.map (fun (label, lhs, rhs) : probe -> { label; lhs; rhs }) triples

let triples_of_probes probes =
  List.map (fun (p : probe) -> (p.label, p.lhs, p.rhs)) probes

let decide ?node_limit ?should_stop ?(memo = true) ~n lhs rhs =
  if n < 1 then invalid_arg "Equiv.decide: n < 1";
  if Algebra.equal lhs rhs then
    let name = Algebra.to_string lhs in
    {
      lhs;
      rhs;
      n;
      equivalent = true;
      probes = [ { label = "canonical-form"; lhs = name; rhs = name } ];
    }
  else
    (* Canonical orientation: the memo and the store key on the sorted
       pair, so [decide t u] and [decide u t] share one entry. *)
    let swapped = Algebra.compare lhs rhs > 0 in
    let a, b = if swapped then (rhs, lhs) else (lhs, rhs) in
    let an = Algebra.to_string a and bn = Algebra.to_string b in
    let orient (equivalent, probes) =
      let probes =
        if swapped then
          List.map (fun (p : probe) -> { p with lhs = p.rhs; rhs = p.lhs }) probes
        else probes
      in
      { lhs; rhs; n; equivalent; probes }
    in
    let memo_key = (an, bn, n) in
    let memo_find () =
      if not memo then None
      else
        Mutex.protect memo_lock (fun () -> Hashtbl.find_opt memo_table memo_key)
    in
    match memo_find () with
    | Some cached -> orient cached
    | None ->
        let key = Cert.query_key (Cert.Q_equiv { lhs = an; rhs = bn; n }) in
        let select = function
          | Cert.Equivalence e
            when String.equal e.Cert.lhs an
                 && String.equal e.Cert.rhs bn
                 && e.Cert.n = n ->
              Some (e.Cert.equivalent, probes_of_triples e.Cert.probes)
          | _ -> None
        in
        let from_store =
          if not (Cert_store.enabled ()) then None
          else load_verified ~key ~select
        in
        let result =
          match from_store with
          | Some r -> r
          | None ->
              let probes = compute_probes ?node_limit ?should_stop ~n a b in
              let equivalent =
                List.for_all
                  (fun (p : probe) -> String.equal p.lhs p.rhs)
                  probes
              in
              if Cert_store.enabled () then
                Cert_store.save ~key
                  (Cert.encode
                     (Cert.Equivalence
                        {
                          lhs = an;
                          rhs = bn;
                          n;
                          equivalent;
                          probes = triples_of_probes probes;
                        }));
              (equivalent, probes)
        in
        if memo then
          Mutex.protect memo_lock (fun () ->
              if not (Hashtbl.mem memo_table memo_key) then
                Hashtbl.add memo_table memo_key result);
        orient result
