(** Task-solvability equivalence of model-algebra terms on small
    instances (docs/MODELS.md).

    Two one-round run sets are {e distinguishable} when some task is
    solvable under one but not the other, or when their closures
    disagree.  [decide] probes a fixed battery of registry-resolvable
    tasks at every instance size up to a bound [n] — binary consensus,
    1/2-approximate agreement on two registers, and (from three
    processes on) 2-set agreement — comparing,
    for each task, (1) a canonical fingerprint of the closure [Δ'] of
    every input simplex under each term, and (2) on instances with at
    most two processes, the one-round solvability verdict of the
    solver pipeline (the exhaustive map search grows
    super-exponentially with the instance, and the per-σ closure
    fingerprints are a strictly finer invariant at the larger sizes).
    The terms are equivalent (relative to the battery and bound) iff
    every probe agrees.

    Verdicts are memoized in-process and, when the certificate store
    is enabled, persisted as {!Cert.Equivalence} certificates keyed on
    the canonically-ordered pair of term renderings — a warm rerun
    answers from the store with zero enumerations.  The inner closure
    runs share the ordinary {!Closure.delta} memo and store entries,
    so probing [t ≡ u] warms the same caches any other pipeline use of
    [t] and [u] would. *)

type probe = {
  label : string;  (** e.g. ["closure[binary-consensus(n=2)]"] *)
  lhs : string;  (** fingerprint of the left term under this probe *)
  rhs : string;
}
(** A probe agrees iff the two fingerprints are equal.  Closure probes
    carry a digest of the canonical rendering of every [Δ'(σ)];
    solvability probes carry the verdict name. *)

type outcome = {
  lhs : Algebra.t;
  rhs : Algebra.t;
  n : int;
  equivalent : bool;
  probes : probe list;
}

val decide :
  ?node_limit:int ->
  ?should_stop:(unit -> bool) ->
  ?memo:bool ->
  n:int ->
  Algebra.t ->
  Algebra.t ->
  outcome
(** Decide equivalence at bound [n ≥ 1].  Physically equal terms are
    equivalent by canonical form, with a single syntactic probe and no
    store interaction.  [memo:false] bypasses the in-process verdict
    memo (the certificate store, when enabled, still applies).
    @raise Invalid_argument if [n < 1].
    @raise Csp.Interrupted when [should_stop] fires.
    @raise Failure if an inner closure instance is undecided. *)

val disagreement : outcome -> probe option
(** The first probe whose fingerprints differ, if any. *)
