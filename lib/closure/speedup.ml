type setting = {
  name : string;
  protocol_fn : Simplex.t -> int -> Complex.t;
  solo_extend : round:int -> Vertex.t -> Vertex.t;
  closure_op_fn : rounds:int -> Round_op.t;
}

let setting_name s = s.name
let protocol s = s.protocol_fn
let closure_op s ~rounds = s.closure_op_fn ~rounds

let of_model model =
  {
    name = Model.name model;
    protocol_fn = (fun sigma t -> Model.protocol_complex model sigma t);
    solo_extend =
      (fun ~round:_ v ->
        Vertex.make (Vertex.color v) (Model.solo_view (Vertex.color v) (Vertex.value v)));
    closure_op_fn = (fun ~rounds:_ -> Round_op.plain model);
  }

let of_box box alpha name =
  {
    name;
    protocol_fn = (fun sigma t -> Augmented.protocol_complex ~box ~alpha sigma t);
    solo_extend =
      (fun ~round v ->
        let i = Vertex.color v in
        let view = Vertex.value v in
        let b = Black_box.solo_output box i (alpha ~round i view) in
        Vertex.make i (Value.pair b (Model.solo_view i view)));
    closure_op_fn =
      (fun ~rounds -> Round_op.augmented ~box ~alpha ~round:rounds);
  }

let of_test_and_set =
  of_box Black_box.test_and_set
    (Augmented.alpha_const Value.Unit)
    "immediate+test&set"

let of_bin_consensus_beta beta =
  let alpha ~round i _view = Value.Bool (beta ~round i) in
  of_box Black_box.bin_consensus alpha "immediate+bin-consensus(beta_r)"

type report = {
  base : Solvability.verdict;
  construction_valid : bool;
  closure_direct : Solvability.verdict;
}

let speedup_holds r =
  match r.base with
  | Solvability.Unsolvable | Solvability.Undecided -> true
  | Solvability.Solvable _ ->
      r.construction_valid && Solvability.is_solvable r.closure_direct

let derive_map setting ~task ~rounds ~inputs ~f =
  ignore task;
  let vertices =
    List.fold_left
      (fun acc sigma ->
        List.fold_left
          (fun acc v -> Vertex.Set.add v acc)
          acc
          (Complex.vertices (setting.protocol_fn sigma (rounds - 1))))
      Vertex.Set.empty inputs
  in
  Simplicial_map.of_fun (Vertex.Set.elements vertices) (fun v ->
      Simplicial_map.apply f (setting.solo_extend ~round:rounds v))

let verify ?node_limit ?memo setting task ~rounds ~inputs =
  if rounds < 1 then invalid_arg "Speedup.verify: rounds must be >= 1";
  let base =
    Solvability.decide ?node_limit ~inputs
      ~protocol:(fun sigma -> setting.protocol_fn sigma rounds)
      ~delta:(Task.delta task) ()
  in
  let op = setting.closure_op_fn ~rounds in
  let closure_delta = Closure.delta ?node_limit ?memo ~op task in
  let closure_direct =
    match base with
    | Solvability.Unsolvable | Solvability.Undecided -> Solvability.Unsolvable
    | Solvability.Solvable _ ->
        Solvability.decide ?node_limit ~inputs
          ~protocol:(fun sigma -> setting.protocol_fn sigma (rounds - 1))
          ~delta:closure_delta ()
  in
  let construction_valid =
    match base with
    | Solvability.Unsolvable | Solvability.Undecided -> false
    | Solvability.Solvable f ->
        let f' = derive_map setting ~task ~rounds ~inputs ~f in
        List.for_all
          (fun sigma ->
            let p = setting.protocol_fn sigma (rounds - 1) in
            let d = closure_delta sigma in
            List.for_all
              (fun facet ->
                match Simplicial_map.apply_simplex f' facet with
                | image -> Complex.mem image d
                | exception (Not_found | Invalid_argument _) -> false)
              (Complex.facets p))
          inputs
  in
  { base; construction_valid; closure_direct }
