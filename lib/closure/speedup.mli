(** Mechanized asynchronous speedup theorem (Theorems 1 and 2).

    Given a [t]-round solution [f] of a task, the proofs construct the
    [(t-1)]-round map [f'(i, V_i) = f(i, {(i, V_i)})] (with the solo
    black-box output inserted in the augmented case) and show it solves
    the closure.  This module builds [f'] explicitly and checks, on
    concrete instances, that it is simplicial and agrees with the
    closure's Δ' — verifying the construction, not just the statement.

    The augmented settings cover the cases the paper applies Theorem 2
    to: boxes whose round-[t] input is independent of the view
    (test&set takes no input; Theorem 4 restricts binary consensus to
    ID-only inputs). *)

type setting
(** An iterated model together with its closure operator. *)

val of_model : Model.t -> setting
val of_test_and_set : setting
val of_bin_consensus_beta : (round:int -> int -> bool) -> setting
(** Binary consensus with per-round ID-only inputs [β_r(i)]; the
    closure after a [t]-round run is taken w.r.t. [β_t] (Claim 5). *)

val setting_name : setting -> string
val protocol : setting -> Simplex.t -> int -> Complex.t
val closure_op : setting -> rounds:int -> Round_op.t
(** The one-round operator used for the closure of a [rounds]-round
    algorithm (for β settings this is the round-[rounds] β). *)

type report = {
  base : Solvability.verdict;  (** Π solvable in [t] rounds? *)
  construction_valid : bool;
      (** [f'] derived from the [t]-round map is simplicial and agrees
          with Δ' of the closure ([false] when [base] is not
          solvable). *)
  closure_direct : Solvability.verdict;
      (** independent solver run: closure solvable in [t-1] rounds. *)
}

val speedup_holds : report -> bool
(** The theorem's guarantee on this instance: either the base task is
    unsolvable, or both the construction and the direct check
    succeed. *)

val verify :
  ?node_limit:int -> ?memo:bool -> setting -> Task.t -> rounds:int ->
  inputs:Simplex.t list -> report
(** Checks the speedup theorem for one task/round-count instance over
    the given input simplices.  [?memo] is forwarded to
    {!Closure.delta} (default [true]). *)

val derive_map :
  setting -> task:Task.t -> rounds:int -> inputs:Simplex.t list ->
  f:Simplicial_map.t -> Simplicial_map.t
(** The explicit [f'] of the proof of Theorem 1/2, defined on the
    vertices of [P^(t-1)(σ)] for the given inputs. *)
