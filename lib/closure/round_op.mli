(** One-round protocol operators, the model parameter of the closure.

    A round operator maps a simplex to the facets of its one-round
    protocol complex.  The closure of a task (Definition 2) and the
    speedup theorem are parameterized by such an operator, which lets
    the same code cover the plain iterated models (Theorem 1) and the
    augmented ones (Theorem 2, and the β-restricted boxes of
    Theorem 4 / Claim 5). *)

type t

val name : t -> string
val facets : t -> Simplex.t -> Simplex.t list
(** Facets of the one-round protocol complex [P^(1)(σ)]. *)

val plain : Model.t -> t
(** Write-collect, write-snapshot, or immediate snapshot. *)

val augmented : box:Black_box.t -> alpha:Augmented.alpha -> round:int -> t
(** IIS augmented with a black box, inputs given by [α(·, ·, round)]. *)

val test_and_set : t
(** IIS + test&set (the box takes no meaningful input). *)

val bin_consensus_beta : (int -> bool) -> t
(** IIS + binary consensus where process [i] always proposes [β(i)] —
    the ID-only restriction of Theorem 4. *)

val custom : name:string -> (Simplex.t -> Simplex.t list) -> t
(** Any view-valued one-round operator whose solo vertices have the
    plain [(i, {(i, x_i)})] shape (no black box). *)

val k_concurrency : int -> t
(** The affine [k]-concurrency model (Section 1.2; removes IS
    executions with blocks larger than [k]). *)

val d_solo : int -> t
(** The [d]-solo model (Section 1.2; adds executions where up to [d]
    processes run solo concurrently). *)

val algebra : Algebra.t -> t
(** A compiled model-algebra term (docs/MODELS.md), named by its
    canonical rendering: normalizer-equal terms share one operator
    name and therefore one set of memo and cert-store entries. *)

val persistent : t -> bool
(** Whether the operator's name identifies its semantics {e across}
    sessions, so closure results for it may be persisted in the
    certificate store.  Plain models, [test_and_set], and the affine
    variants qualify; operators with session-unique names (the
    [augmented] and [bin_consensus_beta] instances, whose α/β are
    arbitrary functions) do not — the same ["beta#1"] could denote
    different semantics in two different sessions. *)

val complex : t -> Simplex.t -> Complex.t
val solo_vertex : t -> Simplex.t -> int -> Vertex.t
(** The vertex of the one-round complex where process [i] runs solo.
    Well-defined for all operators used in this repository because
    their boxes are deterministic on solo executions. *)
