type kind =
  | Plain of Model.t
  | Boxed of Black_box.t * Augmented.alpha * int
  | Custom

type t = { name : string; kind : kind; facets : Simplex.t -> Simplex.t list }

let name op = op.name
let facets op = op.facets

let plain model =
  {
    name = Model.name model;
    kind = Plain model;
    facets = Model.one_round_facets model;
  }

(* Closure results are memoized by operator name (see Closure.delta);
   two operators with the same name but different semantics would
   poison the cache.  Plain models have a canonical 1:1 name, but an
   augmented operator's α is an arbitrary function, so every created
   instance gets a unique name; reuse the same instance to benefit
   from memoization. *)
let fresh_id =
  let counter = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add counter 1 + 1

let augmented ~box ~alpha ~round =
  {
    name = Printf.sprintf "immediate+%s#%d" box.Black_box.name (fresh_id ());
    kind = Boxed (box, alpha, round);
    facets = Augmented.one_round_facets ~box ~alpha ~round;
  }

let test_and_set =
  (* The single global instance: a stable name is safe and keeps its
     memo entries shared across the whole session. *)
  let op =
    augmented ~box:Black_box.test_and_set
      ~alpha:(Augmented.alpha_const Value.Unit)
      ~round:1
  in
  { op with name = "immediate+test&set" }

let bin_consensus_beta beta =
  let op =
    augmented ~box:Black_box.bin_consensus ~alpha:(Augmented.alpha_of_beta beta)
      ~round:1
  in
  { op with name = Printf.sprintf "immediate+bin-consensus(beta#%d)" (fresh_id ()) }

let persistent op = not (String.contains op.name '#')

let custom ~name facets = { name; kind = Custom; facets }
let k_concurrency k =
  custom ~name:(Printf.sprintf "%d-concurrency" k) (Affine.k_concurrency k)

let d_solo d = custom ~name:(Printf.sprintf "%d-solo" d) (Affine.d_solo d)

(* Canonical algebra renderings contain no '#', so these operators are
   persistent: the name re-parses to the same semantics in any
   session (Cert_registry resolves it through Algebra.parse). *)
let algebra term = custom ~name:(Algebra.to_string term) (Algebra.facets term)

let complex op sigma = Complex.of_facets (op.facets sigma)

let solo_vertex op sigma i =
  match op.kind with
  | Plain _ | Custom -> Model.solo_vertex sigma i
  | Boxed (box, alpha, round) -> Augmented.solo_vertex ~box ~alpha ~round sigma i
