type t = { fd : Unix.file_descr; rbuf : Buffer.t }

let connect addr =
  let sock_addr, domain =
    match addr with
    | Server.Unix_path path -> (Unix.ADDR_UNIX path, Unix.PF_UNIX)
    | Server.Tcp (host, port) ->
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        (Unix.ADDR_INET (inet, port), Unix.PF_INET)
  in
  let fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  match Unix.connect fd sock_addr with
  | () -> Ok { fd; rbuf = Buffer.create 256 }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)

(* drand48's LCG: deterministic jitter without the ambient [Random]
   generator (lint R5).  Seeded per call from the pid so concurrent
   clients hammering one binding server desynchronize, while any given
   process retries on a reproducible schedule. *)
let lcg s = ((s * 25214903917) + 11) land 0xFFFFFFFFFFFF

let connect_retry ?(attempts = 20) ?(delay = 0.1) ?(max_delay = 2.0) addr =
  let attempts = max 1 attempts in
  let rec go i seed =
    match connect addr with
    | Ok _ as ok -> ok
    | Error msg ->
        if i >= attempts - 1 then
          Error
            (Printf.sprintf "cannot connect after %d attempt(s): last error %s"
               attempts msg)
        else begin
          (* Exponential base capped at [max_delay], scaled into
             [0.5, 1.0] by the jitter so retries never synchronize. *)
          let base =
            Float.min max_delay (delay *. Float.of_int (1 lsl min i 16))
          in
          let jitter = 0.5 +. (Float.of_int (seed land 0xFFFF) /. 131072.0) in
          Unix.sleepf (base *. jitter);
          go (i + 1) (lcg seed)
        end
  in
  go 0 (lcg (Unix.getpid ()))

let send_line t line =
  let data = line ^ "\n" in
  let len = String.length data in
  let rec write_all off =
    if off >= len then Ok ()
    else
      match Unix.write_substring t.fd data off (len - off) with
      | n -> write_all (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all off
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  in
  write_all 0

let recv_line t =
  let buf = Bytes.create 4096 in
  let rec go () =
    let s = Buffer.contents t.rbuf in
    match String.index_opt s '\n' with
    | Some i ->
        let line = String.sub s 0 i in
        Buffer.clear t.rbuf;
        Buffer.add_string t.rbuf (String.sub s (i + 1) (String.length s - i - 1));
        Ok line
    | None -> (
        match Unix.read t.fd buf 0 (Bytes.length buf) with
        | 0 -> Error "connection closed by server"
        | n ->
            Buffer.add_subbytes t.rbuf buf 0 n;
            go ()
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
        | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e))
  in
  go ()

let request ?deadline_ms t ~id ~meth ~params =
  let fields =
    [ ("id", id); ("method", Jsonl.String meth) ]
    @ (match params with [] -> [] | p -> [ ("params", Jsonl.Obj p) ])
    @
    match deadline_ms with
    | None -> []
    | Some ms -> [ ("deadline_ms", Jsonl.Int ms) ]
  in
  match send_line t (Jsonl.to_string (Jsonl.Obj fields)) with
  | Error msg -> Error msg
  | Ok () -> recv_line t

let rpc ?deadline_ms t ~id ~meth ~params =
  match request ?deadline_ms t ~id ~meth ~params with
  | Error msg -> Error msg
  | Ok line -> (
      match Jsonl.of_string line with
      | Error msg -> Error ("unparseable reply: " ^ msg)
      | Ok reply -> (
          match Jsonl.member "ok" reply with
          | Some (Jsonl.Bool true) -> (
              match Jsonl.member "result" reply with
              | Some r -> Ok r
              | None -> Ok Jsonl.Null)
          | _ ->
              let err = Jsonl.member "error" reply in
              let get k =
                Option.bind err (Jsonl.member k)
                |> Option.map (fun v ->
                       match Jsonl.to_str v with
                       | Some s -> s
                       | None -> Jsonl.to_string v)
              in
              let code = Option.value (get "code") ~default:"unknown" in
              let msg = Option.value (get "message") ~default:line in
              Error (Printf.sprintf "%s: %s" code msg)))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
