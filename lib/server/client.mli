(** A minimal blocking client for the query daemon, used by
    [speedup query], the server test-suite, and the bench load
    generator. *)

type t

val connect : Server.addr -> (t, string) result
(** One connection attempt. *)

val connect_retry :
  ?attempts:int -> ?delay:float -> ?max_delay:float -> Server.addr ->
  (t, string) result
(** Retries [connect] up to [attempts] times (default 20) — for racing
    a server that is still binding its socket.  Sleeps follow capped
    exponential backoff: attempt [i] waits [delay * 2^i] (default base
    0.1s) capped at [max_delay] (default 2s), scaled by deterministic
    jitter from a pid-seeded LCG so concurrent clients desynchronize
    reproducibly.  The final [Error] includes the attempt count and the
    last errno's message. *)

val send_line : t -> string -> (unit, string) result
(** Writes one raw line (newline appended).  Exposed so tests can
    pipeline several requests in one burst and compare raw reply
    bytes. *)

val recv_line : t -> (string, string) result
(** Reads up to the next newline.  [Error] on EOF or socket error. *)

val request :
  ?deadline_ms:int -> t -> id:Jsonl.t -> meth:string -> params:(string * Jsonl.t) list ->
  (string, string) result
(** Sends one request and returns the raw reply line. *)

val rpc :
  ?deadline_ms:int -> t -> id:Jsonl.t -> meth:string -> params:(string * Jsonl.t) list ->
  (Jsonl.t, string) result
(** [request] plus reply parsing: [Ok result] on an [ok] reply,
    [Error message] on an error reply (message includes the code) or a
    transport failure. *)

val close : t -> unit
