(** The query daemon's wire protocol: line-delimited JSON.

    A request is one line
    [{"id": …, "method": "…", "params": {…}, "deadline_ms": …}]
    and a reply is one line
    [{"id": …, "ok": true, "result": …}] or
    [{"id": …, "ok": false, "error": {"code": "…", "message": "…"}}].

    [id] (integer, string, or absent) is echoed verbatim so clients can
    pipeline; [params] and [deadline_ms] are optional.  The grammar,
    the query vocabulary, and the error codes are documented in
    docs/SERVER.md.

    This module is transport-free: it decodes/validates requests,
    renders replies, and evaluates the compute methods ([solvable],
    [closure], [equiv], [experiment], [complex-stats]) and the
    replication methods ([cert-pull], [cert-push], docs/FLEET.md)
    against the engine.  Model fields accept built-in names or model-algebra terms
    (docs/MODELS.md); a malformed term yields a [bad_request] reply,
    never a dropped connection.  The
    loop-level methods ([ping], [stats], [shutdown]) and everything
    involving sockets, queues, and deadlines-as-clocks live in
    {!Server}. *)

type error_code = Bad_request | Overloaded | Timeout | Internal | Shutting_down

val code_string : error_code -> string
(** ["bad_request"], ["overloaded"], ["timeout"], ["internal"],
    ["shutting_down"]. *)

val code_of_string : string -> error_code option
(** Inverse of {!code_string} — the fleet router maps a backend's
    error code onto its own reply with it. *)

type request = {
  id : Jsonl.t;  (** [Int], [String], or [Null] (absent) *)
  meth : string;
  params : Jsonl.t;  (** always an [Obj] after decoding *)
  deadline_ms : int option;  (** per-request budget, milliseconds *)
}

val decode_request : string -> (request, Jsonl.t * string) result
(** Parses and validates one request line.  The error branch carries
    the request id when one could be recovered (so the [bad_request]
    reply can still echo it) and a human-readable message. *)

val ok_reply : id:Jsonl.t -> Jsonl.t -> string
val error_reply : id:Jsonl.t -> error_code -> string -> string
(** One reply line, without the trailing newline. *)

val params_digest : Jsonl.t -> string
(** Hex digest of the rendered params, for access-log correlation
    without logging full (possibly large) parameter objects. *)

val canonical_digest : meth:string -> Jsonl.t -> string
(** The fleet routing key: digest of the method name and the params
    with sorted top-level keys, so every front maps a semantically
    identical request to the same ring position regardless of client
    field order.  [id] and [deadline_ms] are excluded. *)

val compute : should_stop:(unit -> bool) -> request -> (Jsonl.t, error_code * string) result
(** Evaluates a compute method.  Unknown methods and invalid parameters
    come back as [Bad_request]; a [Csp.Interrupted] escape (the
    cooperative cancellation hook observing [should_stop]) becomes
    [Timeout]; engine failures become [Internal].  Results share the
    closure memo and certificate store with the rest of the process, so
    repeated queries are cache hits across connections. *)
