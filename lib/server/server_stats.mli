(** Cumulative request statistics of one server run.

    One value is created per {!Server.run}; worker domains and the I/O
    loop record into it concurrently (mutex-guarded), and the [stats]
    method renders a snapshot.  Latency percentiles are computed over a
    bounded reservoir of the most recent worker-computed requests, so a
    long-lived server stays O(1) in memory. *)

type t

val create : unit -> t

type outcome = Ok_reply | Bad_request | Overloaded | Timeout | Internal

val record : t -> outcome:outcome -> queue_s:float -> wall_s:float -> unit
(** Account one completed compute request: its outcome, time spent
    queued, and wall time from enqueue to reply. *)

val record_loop_reply : t -> outcome:outcome -> unit
(** Account one request answered directly by the I/O loop (ping,
    stats, backpressure rejects, malformed lines): counted in
    [requests] and the outcome tallies but not in the latency
    reservoir. *)

val observe_queue_depth : t -> int -> unit
(** Update the queue-depth high-water mark. *)

val snapshot : t -> Jsonl.t
(** The [stats] reply body: requests, completed, errors by code,
    p50/p95 latency (ms, worker-computed requests only), queue-depth
    high-water, and the {!Closure.memo_stats} / {!Cert_store.stats}
    passthrough. *)
