(* Minimal JSON values: a recursive-descent parser (originally the
   speedup-lint baseline reader) and a compact one-line printer.  The
   repo deliberately avoids external JSON dependencies. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- parsing ---- *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> error st (Printf.sprintf "expected '%c'" c)

let parse_literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then (
    st.pos <- st.pos + n;
    value)
  else error st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
        advance st;
        match peek st with
        | Some 'n' -> advance st; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance st; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance st; Buffer.add_char buf '\r'; go ()
        | Some (('"' | '\\' | '/') as c) -> advance st; Buffer.add_char buf c; go ()
        | Some 'u' ->
            advance st;
            if st.pos + 4 > String.length st.src then error st "bad \\u escape";
            let hex = String.sub st.src st.pos 4 in
            st.pos <- st.pos + 4;
            let code =
              try int_of_string ("0x" ^ hex)
              with Failure _ -> error st "bad \\u escape"
            in
            (* The consumers only carry ASCII payloads; clamp the rest. *)
            Buffer.add_char buf (if code < 128 then Char.chr code else '?');
            go ()
        | _ -> error st "bad escape")
    | Some c ->
        advance st;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while match peek st with Some c when is_num_char c -> true | _ -> false do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match int_of_string_opt s with
  | Some n -> Int n
  | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> error st "bad number")

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '"' -> String (parse_string st)
  | Some '{' ->
      advance st;
      skip_ws st;
      if peek st = Some '}' then (advance st; Obj [])
      else
        let rec fields acc =
          skip_ws st;
          let key = parse_string st in
          skip_ws st;
          expect st ':';
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; fields ((key, v) :: acc)
          | Some '}' -> advance st; Obj (List.rev ((key, v) :: acc))
          | _ -> error st "expected ',' or '}'"
        in
        fields []
  | Some '[' ->
      advance st;
      skip_ws st;
      if peek st = Some ']' then (advance st; List [])
      else
        let rec items acc =
          let v = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' -> advance st; items (v :: acc)
          | Some ']' -> advance st; List (List.rev (v :: acc))
          | _ -> error st "expected ',' or ']'"
        in
        items []
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  match
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length s then error st "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg

(* ---- printing ---- *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    (* "%.12g" may yield an int-looking "2" for 2.0 — still valid JSON. *)
    s

let rec add_to buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          add_to buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          add_to buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 128 in
  add_to buf v;
  Buffer.contents buf

(* ---- accessors ---- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_str = function String s -> Some s | _ -> None
let to_int = function Int n -> Some n | _ -> None
let to_bool = function Bool b -> Some b | _ -> None

let to_float = function
  | Int n -> Some (float_of_int n)
  | Float f -> Some f
  | _ -> None
