(* The query daemon.  See server.mli for the architecture overview and
   docs/SERVER.md for the wire protocol.

   Concurrency layout: the I/O loop (the domain calling [run]) owns
   the listener, the connection table, and every connection buffer —
   no lock needed on those.  Worker domains share only the bounded
   request queue (mutex + condition), the completion queue (mutex),
   the stats record (internally locked), the access log (mutex), and
   a handful of atomics.  Workers wake the loop through a self-pipe.

   Per R1, all of this state is created inside [run]; the module has
   no top-level mutable bindings, so two servers can in principle run
   in one process (they would share only the engine-level memo and
   certificate store, which are designed for that). *)

type addr = Unix_path of string | Tcp of string * int

type handler =
  should_stop:(unit -> bool) ->
  deadline:float option ->
  Wire.request ->
  (Jsonl.t, Wire.error_code * string) result

type config = {
  addr : addr;
  workers : int;
  queue_limit : int;
  default_deadline_ms : int option;
  access_log : out_channel option;
  handler : handler option;
}

let default_config addr =
  {
    addr;
    workers = 2;
    queue_limit = 64;
    default_deadline_ms = None;
    access_log = None;
    handler = None;
  }

type summary = {
  requests : int;
  completed : int;
  rejected : int;
  drained : bool;
}

(* Wall clock (config-level R5 exemption, see docs/LINT.md): feeds
   deadlines and latency accounting only — never a reply body. *)
let now () = Unix.gettimeofday ()

type conn = {
  cid : int;
  fd : Unix.file_descr;
  rbuf : Buffer.t;  (* bytes read, possibly ending mid-line *)
  out : Buffer.t;  (* reply bytes not yet written *)
  mutable closed : bool;
}

type job = {
  jconn : conn;
  jreq : Wire.request;
  enqueued_at : float;
  jdeadline : float option;  (* absolute, seconds *)
}

(* A worker's finished request, ready for the loop to deliver. *)
type completion = { cconn : conn; creply : string }

let outcome_of_code = function
  | Wire.Bad_request -> Server_stats.Bad_request
  | Wire.Overloaded -> Server_stats.Overloaded
  | Wire.Timeout -> Server_stats.Timeout
  | Wire.Internal -> Server_stats.Internal
  | Wire.Shutting_down -> Server_stats.Overloaded

let outcome_string = function
  | Ok _ -> "ok"
  | Error (code, _) -> Wire.code_string code

(* Read buffer chunk size; request lines are capped well above any
   legitimate query to bound memory per connection. *)
let chunk_size = 4096
let max_line = 1 lsl 20

let run ?on_ready config =
  (* ---- shared state (loop + workers) ---- *)
  let qlock = Mutex.create () in
  let qcond = Condition.create () in
  let pending : job Queue.t = Queue.create () in
  let stopping = ref false in
  (* workers stopped *)
  let clock = Mutex.create () in
  let completions : completion Queue.t = Queue.create () in
  let in_flight = Atomic.make 0 in
  let draining = Atomic.make false in
  let got_sigint = Atomic.make false in
  let stats = Server_stats.create () in
  let log_lock = Mutex.create () in
  let completed = Atomic.make 0 in
  let rejected = Atomic.make 0 in

  (* ---- self-pipe ---- *)
  let pipe_r, pipe_w = Unix.pipe () in
  let wake () = try ignore (Unix.write_substring pipe_w "w" 0 1) with _ -> () in

  (* ---- access log ---- *)
  let log_line ~req ~cid ~outcome ~queue_s ~wall_s ~memo_hit ~cert_hit =
    match config.access_log with
    | None -> ()
    | Some oc ->
        let line =
          Jsonl.to_string
            (Jsonl.Obj
               [
                 ("ts", Jsonl.Float (now ()));
                 ("id", req.Wire.id);
                 ("conn", Jsonl.Int cid);
                 ("method", Jsonl.String req.Wire.meth);
                 ("params", Jsonl.String (Wire.params_digest req.Wire.params));
                 ("outcome", Jsonl.String outcome);
                 ("queue_ms", Jsonl.Float (queue_s *. 1000.));
                 ("wall_ms", Jsonl.Float (wall_s *. 1000.));
                 ("memo_hit", Jsonl.Bool memo_hit);
                 ("cert_hit", Jsonl.Bool cert_hit);
               ])
        in
        Mutex.protect log_lock (fun () ->
            output_string oc line;
            output_char oc '\n';
            flush oc)
  in

  (* ---- worker domains ---- *)
  let process job =
    let started = now () in
    let queue_s = started -. job.enqueued_at in
    let should_stop =
      match job.jdeadline with
      | None -> fun () -> false
      | Some d -> fun () -> now () >= d
    in
    (* Memo/cert hit flags are deltas of the process-wide counters
       around this request — exact when requests are serialized,
       approximate under concurrent workers (documented in
       docs/SERVER.md). *)
    let m0 = Closure.memo_stats () in
    let s0 = Cert_store.stats () in
    let result =
      if should_stop () then Error (Wire.Timeout, "deadline exceeded in queue")
      else
        match config.handler with
        | Some h -> h ~should_stop ~deadline:job.jdeadline job.jreq
        | None -> Wire.compute ~should_stop job.jreq
    in
    let m1 = Closure.memo_stats () in
    let s1 = Cert_store.stats () in
    let wall_s = now () -. job.enqueued_at in
    let id = job.jreq.Wire.id in
    let reply =
      match result with
      | Ok v -> Wire.ok_reply ~id v
      | Error (code, msg) -> Wire.error_reply ~id code msg
    in
    let outcome =
      match result with
      | Ok _ -> Server_stats.Ok_reply
      | Error (code, _) -> outcome_of_code code
    in
    Server_stats.record stats ~outcome ~queue_s ~wall_s;
    Atomic.incr completed;
    log_line ~req:job.jreq ~cid:job.jconn.cid ~outcome:(outcome_string result)
      ~queue_s ~wall_s
      ~memo_hit:(m1.Closure.hits > m0.Closure.hits)
      ~cert_hit:(s1.Cert_store.hits > s0.Cert_store.hits);
    Mutex.protect clock (fun () ->
        Queue.push { cconn = job.jconn; creply = reply } completions);
    (* Decrement only after the completion is visible, so the loop's
       drain check (queue empty ∧ in_flight = 0 ∧ completions empty)
       never passes with a reply still in a worker's hands; the wake
       byte after the decrement covers both. *)
    Atomic.decr in_flight;
    wake ()
  in
  let rec worker_loop () =
    let job =
      Mutex.lock qlock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock qlock)
        (fun () ->
          while Queue.is_empty pending && not !stopping do
            Condition.wait qcond qlock
          done;
          if Queue.is_empty pending then None
          else begin
            Atomic.incr in_flight;
            Some (Queue.pop pending)
          end)
    in
    match job with
    | None -> ()
    | Some job ->
        (try process job
         with exn ->
           (* A worker must never die: report and keep serving. *)
           Mutex.protect clock (fun () ->
               Queue.push
                 {
                   cconn = job.jconn;
                   creply =
                     Wire.error_reply ~id:job.jreq.Wire.id Wire.Internal
                       (Printexc.to_string exn);
                 }
                 completions);
           Atomic.decr in_flight;
           wake ());
        worker_loop ()
  in
  let workers =
    List.init (max 1 config.workers) (fun _ -> Domain.spawn worker_loop)
  in

  (* ---- listener ---- *)
  let listener =
    match config.addr with
    | Unix_path path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        if Sys.file_exists path then Unix.unlink path;
        Unix.bind fd (Unix.ADDR_UNIX path);
        Unix.listen fd 64;
        fd
    | Tcp (host, port) ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt fd Unix.SO_REUSEADDR true;
        let inet =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        Unix.bind fd (Unix.ADDR_INET (inet, port));
        Unix.listen fd 64;
        fd
  in
  let bound_addr =
    match config.addr with
    | Unix_path _ as a -> a
    | Tcp (host, _) -> (
        match Unix.getsockname listener with
        | Unix.ADDR_INET (_, port) -> Tcp (host, port)
        | _ -> config.addr)
  in

  (* ---- signals ---- *)
  let old_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let old_sigint =
    Sys.signal Sys.sigint
      (Sys.Signal_handle
         (fun _ ->
           Atomic.set got_sigint true;
           wake ()))
  in

  (* ---- connection table (owned by the loop) ---- *)
  let conns : (int, conn) Hashtbl.t = Hashtbl.create 16 in
  let next_cid = ref 0 in
  let listening = ref true in
  let requests = ref 0 in

  let conn_list () =
    Hashtbl.fold (fun _ c acc -> c :: acc) conns []
    |> List.sort (fun a b -> Int.compare a.cid b.cid)
  in
  let close_conn c =
    if not c.closed then begin
      c.closed <- true;
      Hashtbl.remove conns c.cid;
      try Unix.close c.fd with Unix.Unix_error _ -> ()
    end
  in
  let stop_listening () =
    if !listening then begin
      listening := false;
      (try Unix.close listener with Unix.Unix_error _ -> ());
      match config.addr with
      | Unix_path path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
      | Tcp _ -> ()
    end
  in

  let send c line =
    if not c.closed then begin
      Buffer.add_string c.out line;
      Buffer.add_char c.out '\n'
    end
  in

  (* Loop-level reply (never queued): account, log, buffer. *)
  let loop_reply c (req : Wire.request option) ~meth ~id outcome_result =
    let outcome, reply =
      match outcome_result with
      | Ok v -> (Server_stats.Ok_reply, Wire.ok_reply ~id v)
      | Error (code, msg) -> (outcome_of_code code, Wire.error_reply ~id code msg)
    in
    Server_stats.record_loop_reply stats ~outcome;
    (match outcome_result with
    | Error ((Wire.Overloaded | Wire.Shutting_down), _) ->
        Atomic.incr rejected
    | _ -> ());
    let req =
      match req with
      | Some r -> r
      | None -> { Wire.id; meth; params = Jsonl.Obj []; deadline_ms = None }
    in
    log_line ~req ~cid:c.cid
      ~outcome:(outcome_string outcome_result)
      ~queue_s:0. ~wall_s:0. ~memo_hit:false ~cert_hit:false;
    send c reply
  in

  let start_drain () =
    if not (Atomic.get draining) then begin
      Atomic.set draining true;
      stop_listening ()
    end
  in

  let handle_line c line =
    incr requests;
    match Wire.decode_request line with
    | Error (id, msg) ->
        loop_reply c None ~meth:"?" ~id (Error (Wire.Bad_request, msg))
    | Ok req -> (
        let id = req.Wire.id in
        match req.Wire.meth with
        | "ping" ->
            loop_reply c (Some req) ~meth:req.Wire.meth ~id
              (Ok (Jsonl.String "pong"))
        | "stats" ->
            loop_reply c (Some req) ~meth:req.Wire.meth ~id
              (Ok (Server_stats.snapshot stats))
        | "shutdown" ->
            loop_reply c (Some req) ~meth:req.Wire.meth ~id
              (Ok (Jsonl.String "draining"));
            start_drain ()
        | _ when Atomic.get draining ->
            loop_reply c (Some req) ~meth:req.Wire.meth ~id
              (Error (Wire.Shutting_down, "server is draining"))
        | _ ->
            let depth =
              Mutex.protect qlock (fun () -> Queue.length pending)
            in
            if depth >= config.queue_limit then
              loop_reply c (Some req) ~meth:req.Wire.meth ~id
                (Error
                   ( Wire.Overloaded,
                     Printf.sprintf "queue full (%d pending)" depth ))
            else begin
              let enqueued_at = now () in
              let deadline_ms =
                match req.Wire.deadline_ms with
                | Some _ as d -> d
                | None -> config.default_deadline_ms
              in
              let jdeadline =
                Option.map
                  (fun ms -> enqueued_at +. (float_of_int ms /. 1000.))
                  deadline_ms
              in
              let depth' =
                Mutex.lock qlock;
                Fun.protect
                  ~finally:(fun () -> Mutex.unlock qlock)
                  (fun () ->
                    Queue.push { jconn = c; jreq = req; enqueued_at; jdeadline }
                      pending;
                    Condition.signal qcond;
                    Queue.length pending)
              in
              Server_stats.observe_queue_depth stats depth'
            end)
  in

  (* Consume complete lines from a connection's read buffer. *)
  let drain_rbuf c =
    let rec go () =
      let s = Buffer.contents c.rbuf in
      match String.index_opt s '\n' with
      | None ->
          if String.length s > max_line then begin
            send c
              (Wire.error_reply ~id:Jsonl.Null Wire.Bad_request
                 "request line too long");
            close_conn c
          end
      | Some i ->
          let line = String.sub s 0 i in
          let rest = String.sub s (i + 1) (String.length s - i - 1) in
          Buffer.clear c.rbuf;
          Buffer.add_string c.rbuf rest;
          let line =
            (* Tolerate CRLF clients. *)
            if line <> "" && line.[String.length line - 1] = '\r' then
              String.sub line 0 (String.length line - 1)
            else line
          in
          if String.trim line <> "" then handle_line c line;
          if not c.closed then go ()
    in
    go ()
  in

  let read_chunk c =
    let buf = Bytes.create chunk_size in
    match Unix.read c.fd buf 0 chunk_size with
    | 0 -> close_conn c
    | n ->
        Buffer.add_subbytes c.rbuf buf 0 n;
        drain_rbuf c
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        close_conn c
    | exception
        Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
      ->
        ()
  in

  let flush_out c =
    let s = Buffer.contents c.out in
    if s <> "" then
      match Unix.write_substring c.fd s 0 (String.length s) with
      | n ->
          Buffer.clear c.out;
          if n < String.length s then
            Buffer.add_string c.out (String.sub s n (String.length s - n))
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          close_conn c
      | exception
          Unix.Unix_error ((Unix.EINTR | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        ->
          ()
  in

  let deliver_completions () =
    let ready =
      Mutex.protect clock (fun () ->
          let rec pop acc =
            if Queue.is_empty completions then List.rev acc
            else pop (Queue.pop completions :: acc)
          in
          pop [])
    in
    List.iter (fun { cconn; creply } -> send cconn creply) ready
  in

  (match on_ready with Some f -> f bound_addr | None -> ());

  (* ---- the I/O loop ---- *)
  let finished = ref false in
  while not !finished do
    if Atomic.get got_sigint then start_drain ();
    deliver_completions ();
    let cs = conn_list () in
    List.iter flush_out cs;
    let cs = conn_list () in
    (* Drain completion: nothing queued, nothing in flight, nothing to
       deliver, every reply written out. *)
    let all_flushed =
      List.for_all (fun c -> Buffer.length c.out = 0) cs
    in
    let queue_empty = Mutex.protect qlock (fun () -> Queue.is_empty pending) in
    let completions_empty =
      Mutex.protect clock (fun () -> Queue.is_empty completions)
    in
    if
      Atomic.get draining && queue_empty
      && Atomic.get in_flight = 0
      && completions_empty && all_flushed
    then finished := true
    else begin
      let reads =
        (pipe_r :: (if !listening then [ listener ] else []))
        @ List.map (fun c -> c.fd) cs
      in
      let writes =
        List.filter_map
          (fun c -> if Buffer.length c.out > 0 then Some c.fd else None)
          cs
      in
      match Unix.select reads writes [] 0.2 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | readable, writable, _ ->
          if List.mem pipe_r readable then begin
            let buf = Bytes.create 64 in
            try ignore (Unix.read pipe_r buf 0 64)
            with Unix.Unix_error _ -> ()
          end;
          if !listening && List.mem listener readable then begin
            match Unix.accept listener with
            | fd, _ ->
                (* Non-blocking so a slow reader can never stall the
                   loop on a write; EAGAIN keeps bytes buffered. *)
                Unix.set_nonblock fd;
                incr next_cid;
                let c =
                  {
                    cid = !next_cid;
                    fd;
                    rbuf = Buffer.create 256;
                    out = Buffer.create 256;
                    closed = false;
                  }
                in
                Hashtbl.replace conns c.cid c
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
          end;
          List.iter
            (fun c ->
              if (not c.closed) && List.mem c.fd readable then read_chunk c)
            cs;
          List.iter
            (fun c ->
              if (not c.closed) && List.mem c.fd writable then flush_out c)
            cs
    end
  done;

  (* ---- teardown ---- *)
  Mutex.lock qlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock qlock)
    (fun () ->
      stopping := true;
      Condition.broadcast qcond);
  List.iter Domain.join workers;
  List.iter close_conn (conn_list ());
  stop_listening ();
  Sys.set_signal Sys.sigint old_sigint;
  Sys.set_signal Sys.sigpipe old_sigpipe;
  (try Unix.close pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close pipe_w with Unix.Unix_error _ -> ());
  {
    requests = !requests;
    completed = Atomic.get completed;
    rejected = Atomic.get rejected;
    drained = true;
  }
