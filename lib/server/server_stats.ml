type outcome = Ok_reply | Bad_request | Overloaded | Timeout | Internal

(* Bounded latency reservoir: past [reservoir_size] samples the window
   slides (ring buffer), keeping percentiles recent and memory O(1). *)
let reservoir_size = 4096

type t = {
  lock : Mutex.t;
  mutable requests : int;
  mutable completed : int;
  mutable ok : int;
  mutable bad_request : int;
  mutable overloaded : int;
  mutable timeout : int;
  mutable internal : int;
  mutable queue_high_water : int;
  latencies : float array;  (* seconds; ring buffer *)
  mutable latency_count : int;  (* total ever recorded *)
}

let create () =
  {
    lock = Mutex.create ();
    requests = 0;
    completed = 0;
    ok = 0;
    bad_request = 0;
    overloaded = 0;
    timeout = 0;
    internal = 0;
    queue_high_water = 0;
    latencies = Array.make reservoir_size 0.;
    latency_count = 0;
  }

let tally t outcome =
  match outcome with
  | Ok_reply -> t.ok <- t.ok + 1
  | Bad_request -> t.bad_request <- t.bad_request + 1
  | Overloaded -> t.overloaded <- t.overloaded + 1
  | Timeout -> t.timeout <- t.timeout + 1
  | Internal -> t.internal <- t.internal + 1

let record t ~outcome ~queue_s:_ ~wall_s =
  Mutex.protect t.lock (fun () ->
      t.requests <- t.requests + 1;
      t.completed <- t.completed + 1;
      tally t outcome;
      t.latencies.(t.latency_count mod reservoir_size) <- wall_s;
      t.latency_count <- t.latency_count + 1)

let record_loop_reply t ~outcome =
  Mutex.protect t.lock (fun () ->
      t.requests <- t.requests + 1;
      tally t outcome)

let observe_queue_depth t depth =
  Mutex.protect t.lock (fun () ->
      if depth > t.queue_high_water then t.queue_high_water <- depth)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let snapshot t =
  let ( requests,
        completed,
        ok,
        bad_request,
        overloaded,
        timeout,
        internal,
        queue_high_water,
        samples ) =
    Mutex.protect t.lock (fun () ->
        let n = min t.latency_count reservoir_size in
        ( t.requests,
          t.completed,
          t.ok,
          t.bad_request,
          t.overloaded,
          t.timeout,
          t.internal,
          t.queue_high_water,
          Array.sub t.latencies 0 n ))
  in
  Array.sort Float.compare samples;
  let ms s = Jsonl.Float (s *. 1000.) in
  let m = Closure.memo_stats () in
  let s = Cert_store.stats () in
  Jsonl.Obj
    [
      ("requests", Jsonl.Int requests);
      ("completed", Jsonl.Int completed);
      ("ok", Jsonl.Int ok);
      ( "errors",
        Jsonl.Obj
          [
            ("bad_request", Jsonl.Int bad_request);
            ("overloaded", Jsonl.Int overloaded);
            ("timeout", Jsonl.Int timeout);
            ("internal", Jsonl.Int internal);
          ] );
      ("latency_p50_ms", ms (percentile samples 0.50));
      ("latency_p95_ms", ms (percentile samples 0.95));
      ("queue_high_water", Jsonl.Int queue_high_water);
      ( "memo",
        Jsonl.Obj
          [
            ("hits", Jsonl.Int m.Closure.hits);
            ("misses", Jsonl.Int m.Closure.misses);
            ("entries", Jsonl.Int m.Closure.entries);
            ("enumerations", Jsonl.Int m.Closure.enumerations);
          ] );
      ( "store",
        Jsonl.Obj
          [
            ("enabled", Jsonl.Bool (Cert_store.enabled ()));
            ("hits", Jsonl.Int s.Cert_store.hits);
            ("misses", Jsonl.Int s.Cert_store.misses);
            ("writes", Jsonl.Int s.Cert_store.writes);
            ("corrupt", Jsonl.Int s.Cert_store.corrupt);
          ] );
      ( "replication",
        let r = Cert_store.repl_stats () in
        Jsonl.Obj
          [
            ("pushes", Jsonl.Int r.Cert_store.pushes);
            ("push_failures", Jsonl.Int r.Cert_store.push_failures);
            ("pulls", Jsonl.Int r.Cert_store.pulls);
            ("pull_misses", Jsonl.Int r.Cert_store.pull_misses);
            ("installs", Jsonl.Int r.Cert_store.installs);
            ("rejects", Jsonl.Int r.Cert_store.rejects);
          ] );
      ( "pool",
        let p = Pool.stats () in
        Jsonl.Obj
          [
            ("batches", Jsonl.Int p.Pool.batches);
            ("chunks", Jsonl.Int p.Pool.chunks);
            ("items", Jsonl.Int p.Pool.items);
            ("steals", Jsonl.Int p.Pool.steals);
            ("stolen_chunks", Jsonl.Int p.Pool.stolen_chunks);
            ("flushes", Jsonl.Int p.Pool.flushes);
            ( "domain_chunks",
              Jsonl.List
                (List.map
                   (fun (slot, n) ->
                     Jsonl.Obj
                       [ ("slot", Jsonl.Int slot); ("chunks", Jsonl.Int n) ])
                   p.Pool.domain_chunks) );
          ] );
    ]
