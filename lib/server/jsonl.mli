(** Minimal JSON values for line-delimited protocols.

    One self-contained module (no dependencies beyond the stdlib)
    shared by the query daemon's wire protocol ({!Wire}), the
    speedup-lint baseline/JSON output (tools/lint), and the bench load
    generator.  The printer is deliberately one-line — a value never
    contains a newline — so a printed value is exactly one frame of a
    line-delimited stream.

    Restrictions, acceptable for every consumer in this repository:
    numbers are OCaml [int]/[float] (no bignums); [\u] escapes outside
    ASCII are clamped to ['?'] on parse; object key order is preserved
    as written, and duplicate keys are not rejected ([member] returns
    the first). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val of_string : string -> (t, string) result
(** Parses one complete JSON value; trailing garbage (other than
    whitespace) is an error.  Errors carry a byte offset. *)

val to_string : t -> string
(** Compact one-line rendering with [": "] / [", "] separators (the
    historical speedup-lint format).  Non-finite floats print as
    [null]; integral floats print without an exponent where possible. *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslash, control chars). *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the first binding of [k]; [None] on
    non-objects and absent keys. *)

(** Shape accessors, [None] on a type mismatch. *)

val to_str : t -> string option
val to_int : t -> int option
val to_bool : t -> bool option

val to_float : t -> float option
(** Accepts both [Int] and [Float]. *)
