(** The query daemon: a line-delimited JSON server over a Unix-domain
    or TCP socket (stdlib [Unix] only).

    Architecture: one [Unix.select]-based I/O loop owns the listener
    and every connection; a fixed set of worker domains pops compute
    requests from a bounded queue, evaluates them via {!Wire.compute}
    (sharing the process-wide closure memo and certificate store, so
    repeated queries are cache hits across connections), and hands the
    rendered replies back to the loop through a completion queue and a
    self-pipe wakeup.

    Backpressure: when the queue holds [queue_limit] requests, further
    compute requests are rejected immediately with an [overloaded]
    error reply — the connection stays open and in-flight work is
    unaffected.  [ping], [stats], and [shutdown] are answered by the
    loop itself and never queue.

    Deadlines: a request's [deadline_ms] (or [default_deadline_ms])
    budgets queue wait plus compute; expiry yields a [timeout] error
    reply, cancelling an in-progress search cooperatively through the
    solver's [should_stop] hook.

    Drain: on SIGINT or a [shutdown] request the server stops
    accepting, answers queued and in-flight work, rejects new compute
    requests with [shutting_down], flushes every connection and the
    certificate store, and returns.  The wire protocol is specified in
    docs/SERVER.md. *)

type addr =
  | Unix_path of string  (** Unix-domain socket; the path is created on
                             bind and unlinked on drain. *)
  | Tcp of string * int  (** Host and port; port [0] picks a free one
                             (see [on_ready]). *)

type handler =
  should_stop:(unit -> bool) ->
  deadline:float option ->
  Wire.request ->
  (Jsonl.t, Wire.error_code * string) result
(** What a worker runs for one compute request.  [deadline] is the
    request's absolute expiry in seconds (queue wait already counted),
    so a proxying handler can forward the {e remaining} budget. *)

type config = {
  addr : addr;
  workers : int;  (** worker domains evaluating compute requests *)
  queue_limit : int;  (** backpressure high-water mark *)
  default_deadline_ms : int option;  (** applied when a request has none *)
  access_log : out_channel option;
      (** one JSON line per request: id, connection, method, params
          digest, outcome, queue/wall latency, memo/cert hit flags *)
  handler : handler option;
      (** replaces {!Wire.compute} when set — the fleet router serves
          its ring through this ([Fleet] lives above [Server], so the
          proxy logic cannot be baked in here).  [ping], [stats], and
          [shutdown] stay loop-level either way. *)
}

val default_config : addr -> config
(** 2 workers, queue limit 64, no default deadline, no access log,
    default [Wire.compute] handler. *)

type summary = {
  requests : int;  (** request lines handled, including rejects *)
  completed : int;  (** compute requests evaluated by workers *)
  rejected : int;  (** [overloaded] + [shutting_down] rejects *)
  drained : bool;  (** the server stopped via SIGINT/[shutdown], not
                       by an internal error *)
}

val run : ?on_ready:(addr -> unit) -> config -> summary
(** Binds, serves until drained, and returns.  Blocks the calling
    domain for the whole server lifetime (tests run it in a spawned
    domain).  [on_ready] is called once the listener is bound — with
    the resolved address, so a [Tcp (host, 0)] caller learns the
    port.  The caller's SIGINT and SIGPIPE handlers are saved and
    restored. *)
