(* Wire protocol of the query daemon: request decoding/validation,
   reply rendering, and the compute-method dispatch.  See wire.mli and
   docs/SERVER.md. *)

type error_code = Bad_request | Overloaded | Timeout | Internal | Shutting_down

let code_string = function
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Timeout -> "timeout"
  | Internal -> "internal"
  | Shutting_down -> "shutting_down"

(* Inverse of [code_string], for the fleet router mapping a backend's
   error reply onto its own. *)
let code_of_string = function
  | "bad_request" -> Some Bad_request
  | "overloaded" -> Some Overloaded
  | "timeout" -> Some Timeout
  | "internal" -> Some Internal
  | "shutting_down" -> Some Shutting_down
  | _ -> None

type request = {
  id : Jsonl.t;
  meth : string;
  params : Jsonl.t;
  deadline_ms : int option;
}

(* ---- decoding ---- *)

let decode_request line =
  match Jsonl.of_string line with
  | Error msg -> Error (Jsonl.Null, "invalid JSON: " ^ msg)
  | Ok json -> (
      let id =
        match Jsonl.member "id" json with
        | Some (Jsonl.Int _ as id) | Some (Jsonl.String _ as id) -> id
        | Some _ | None -> Jsonl.Null
      in
      match json with
      | Jsonl.Obj _ -> (
          match Jsonl.member "method" json with
          | Some (Jsonl.String meth) -> (
              let params =
                match Jsonl.member "params" json with
                | None | Some Jsonl.Null -> Ok (Jsonl.Obj [])
                | Some (Jsonl.Obj _ as p) -> Ok p
                | Some _ -> Error "\"params\" must be an object"
              in
              let deadline =
                match Jsonl.member "deadline_ms" json with
                | None | Some Jsonl.Null -> Ok None
                | Some (Jsonl.Int n) when n > 0 -> Ok (Some n)
                | Some _ -> Error "\"deadline_ms\" must be a positive integer"
              in
              match (params, deadline) with
              | Ok params, Ok deadline_ms -> Ok { id; meth; params; deadline_ms }
              | Error msg, _ | _, Error msg -> Error (id, msg))
          | Some _ -> Error (id, "\"method\" must be a string")
          | None -> Error (id, "missing \"method\""))
      | _ -> Error (Jsonl.Null, "request must be a JSON object"))

(* ---- replies ---- *)

let ok_reply ~id result =
  Jsonl.to_string
    (Jsonl.Obj [ ("id", id); ("ok", Jsonl.Bool true); ("result", result) ])

let error_reply ~id code message =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("id", id);
         ("ok", Jsonl.Bool false);
         ( "error",
           Jsonl.Obj
             [
               ("code", Jsonl.String (code_string code));
               ("message", Jsonl.String message);
             ] );
       ])

let params_digest params = Digest.to_hex (Digest.string (Jsonl.to_string params))

(* The fleet routing key: a digest every front computes identically
   for semantically identical requests, whatever the client's field
   order.  Top-level param keys are sorted before rendering; [id] and
   [deadline_ms] are deliberately excluded (they vary per call without
   changing what is computed). *)
let canonical_digest ~meth params =
  let params =
    match params with
    | Jsonl.Obj fields ->
        Jsonl.Obj
          (List.sort (fun (a, _) (b, _) -> String.compare a b) fields)
    | other -> other
  in
  Digest.to_hex (Digest.string (meth ^ "\n" ^ Jsonl.to_string params))

(* ---- parameter extraction ---- *)

let ( let* ) = Result.bind

let str_param ?default name p =
  match Jsonl.member name p with
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing parameter %S" name))
  | Some (Jsonl.String s) -> Ok s
  | Some _ -> Error (Printf.sprintf "parameter %S must be a string" name)

let int_param ~min ~max ~default name p =
  match Jsonl.member name p with
  | None -> Ok default
  | Some (Jsonl.Int n) when n >= min && n <= max -> Ok n
  | Some (Jsonl.Int n) ->
      Error
        (Printf.sprintf "parameter %S out of range: %d not in [%d, %d]" name n
           min max)
  | Some _ -> Error (Printf.sprintf "parameter %S must be an integer" name)

let bool_param ~default name p =
  match Jsonl.member name p with
  | None -> Ok default
  | Some (Jsonl.Bool b) -> Ok b
  | Some _ -> Error (Printf.sprintf "parameter %S must be a boolean" name)

(* Fractions arrive as "n/d" strings (matching the CLI's --eps) or as
   plain integers. *)
let frac_param ~default name p =
  let bad = Printf.sprintf "parameter %S must be an integer or \"n/d\"" name in
  match Jsonl.member name p with
  | None -> Ok default
  | Some (Jsonl.Int n) -> Ok (Frac.of_int n)
  | Some (Jsonl.String s) -> (
      match String.split_on_char '/' s with
      | [ n ] -> (
          match int_of_string_opt n with
          | Some n -> Ok (Frac.of_int n)
          | None -> Error bad)
      | [ n; d ] -> (
          match (int_of_string_opt n, int_of_string_opt d) with
          | Some n, Some d when d <> 0 -> Ok (Frac.make n d)
          | _ -> Error bad)
      | _ -> Error bad)
  | Some _ -> Error bad

(* The model field accepts a built-in name or a model-algebra term
   (docs/MODELS.md).  A malformed term is a [Bad_request] with the
   parser's message — the connection stays open. *)
type model_spec = Builtin of Model.t | Term of Algebra.t

let model_param p =
  let* name = str_param ~default:"immediate" "model" p in
  match Model.of_string name with
  | Some m -> Ok (Builtin m)
  | None -> (
      match Algebra.parse name with
      | Ok t -> Ok (Term t)
      | Error msg ->
          Error
            (Printf.sprintf
               "bad model %S: %s (built-ins: collect, snapshot, immediate; \
                algebra terms per docs/MODELS.md)"
               name msg))

let model_spec_name ~tas = function
  | _ when tas -> "iis+test&set"
  | Builtin m -> Model.name m
  | Term t -> Algebra.to_string t

(* Algebra terms in the model field of [equiv]'s lhs/rhs params. *)
let term_param name p =
  let* s = str_param name p in
  match Algebra.parse s with
  | Ok t -> Ok t
  | Error msg -> Error (Printf.sprintf "parameter %S: %s" name msg)

(* The CLI's task vocabulary (bin/main.ml task_of), with server-side
   sanity bounds: queries outside them are rejected as bad_request
   rather than occupying a worker for unbounded time. *)
let task_of_params p =
  let* name = str_param ~default:"consensus" "task" p in
  let* n = int_param ~min:1 ~max:4 ~default:3 "n" p in
  let* m = int_param ~min:1 ~max:16 ~default:4 "m" p in
  let* eps = frac_param ~default:(Frac.make 1 4) "eps" p in
  let* task =
    match name with
    | "consensus" -> Ok (Consensus.binary ~n)
    | "relaxed-consensus" ->
        Ok (Consensus.relaxed ~n ~values:[ Value.Int 0; Value.Int 1 ])
    | "aa" -> Ok (Approx_agreement.task ~n ~m ~eps)
    | "liberal-aa" -> Ok (Approx_agreement.liberal ~n ~m ~eps)
    | "2set" ->
        Ok
          (Set_agreement.task ~n ~k:2
             ~values:[ Value.Int 0; Value.Int 1; Value.Int 2 ])
    | other ->
        Error
          (Printf.sprintf
             "unknown task %S (try consensus, relaxed-consensus, aa, \
              liberal-aa, 2set)"
             other)
  in
  Ok (task, n)

(* ---- compute methods ---- *)

let solvable ~should_stop p =
  let* task, n = task_of_params p in
  let* rounds = int_param ~min:0 ~max:4 ~default:1 "rounds" p in
  let* tas = bool_param ~default:false "tas" p in
  let* binary_inputs = bool_param ~default:false "binary_inputs" p in
  let* model = model_param p in
  let inputs =
    if binary_inputs then
      Some (Complex.all_simplices (Approx_agreement.binary_input_complex ~n))
    else None
  in
  let verdict =
    if tas then
      Solvability.task_in_augmented ~should_stop ?inputs
        ~box:Black_box.test_and_set
        ~alpha:(Augmented.alpha_const Value.Unit)
        task ~rounds
    else
      match model with
      | Builtin m -> Solvability.task_in_model ~should_stop ?inputs m task ~rounds
      | Term t ->
          let inputs =
            match inputs with
            | Some i -> i
            | None -> Task.input_simplices task
          in
          Solvability.decide ~should_stop ~inputs
            ~protocol:(fun sigma -> Algebra.protocol_complex t sigma rounds)
            ~delta:(Task.delta task) ()
  in
  Ok
    (Jsonl.Obj
       [
         ("task", Jsonl.String task.Task.name);
         ("model", Jsonl.String (model_spec_name ~tas model));
         ("rounds", Jsonl.Int rounds);
         ( "verdict",
           Jsonl.String
             (match verdict with
             | Solvability.Solvable _ -> "solvable"
             | Solvability.Unsolvable -> "unsolvable"
             | Solvability.Undecided -> "undecided") );
       ])

let closure ~should_stop p =
  let* task, _n = task_of_params p in
  let* tas = bool_param ~default:false "tas" p in
  let* model = model_param p in
  let op =
    if tas then Round_op.test_and_set
    else
      match model with
      | Builtin m -> Round_op.plain m
      | Term t -> Round_op.algebra t
  in
  let inputs = Task.input_simplices task in
  let rows =
    List.map
      (fun sigma ->
        let d' = Closure.delta ~should_stop ~op task sigma in
        let d = Task.delta task sigma in
        let fixed = Complex.equal d' d in
        ( fixed,
          Jsonl.Obj
            [
              ("sigma", Jsonl.String (Format.asprintf "%a" Simplex.pp sigma));
              ("delta_facets", Jsonl.Int (Complex.facet_count d));
              ("closure_facets", Jsonl.Int (Complex.facet_count d'));
              ("fixed", Jsonl.Bool fixed);
            ] ))
      inputs
  in
  Ok
    (Jsonl.Obj
       [
         ("task", Jsonl.String task.Task.name);
         ("op", Jsonl.String (Round_op.name op));
         ("inputs", Jsonl.Int (List.length inputs));
         ("fixed_point", Jsonl.Bool (List.for_all fst rows));
         ("per_sigma", Jsonl.List (List.map snd rows));
       ])

let experiment p =
  let* id = str_param "id" p in
  match Suite.find id with
  | None -> Error (Printf.sprintf "unknown experiment %S (see 'speedup list')" id)
  | Some e ->
      let tables = e.Suite.run () in
      let rendered =
        String.concat "\n"
          (List.map (fun t -> Format.asprintf "%a" Report.pp t) tables)
      in
      Ok
        (Jsonl.Obj
           [
             ("id", Jsonl.String id);
             ("description", Jsonl.String e.Suite.description);
             ("tables", Jsonl.Int (List.length tables));
             ("all_ok", Jsonl.Bool (Suite.all_ok tables));
             ("rendered", Jsonl.String rendered);
           ])

let complex_stats p =
  let* model = model_param p in
  let* n = int_param ~min:1 ~max:4 ~default:3 "n" p in
  let* rounds = int_param ~min:0 ~max:3 ~default:1 "rounds" p in
  let* tas = bool_param ~default:false "tas" p in
  let sigma =
    Simplex.of_list (List.init n (fun i -> (i + 1, Value.Int (i + 1))))
  in
  let c =
    if tas then
      Augmented.protocol_complex ~box:Black_box.test_and_set
        ~alpha:(Augmented.alpha_const Value.Unit)
        sigma rounds
    else
      match model with
      | Builtin m -> Model.protocol_complex m sigma rounds
      | Term t -> Algebra.protocol_complex t sigma rounds
  in
  Ok
    (Jsonl.Obj
       [
         ("model", Jsonl.String (model_spec_name ~tas model));
         ("n", Jsonl.Int n);
         ("rounds", Jsonl.Int rounds);
         ("dim", Jsonl.Int (Complex.dim c));
         ("facets", Jsonl.Int (Complex.facet_count c));
         ("vertices", Jsonl.Int (Complex.vertex_count c));
         ("simplices", Jsonl.Int (Complex.simplex_count c));
       ])

let equiv ~should_stop p =
  let* lhs = term_param "lhs" p in
  let* rhs = term_param "rhs" p in
  let* n = int_param ~min:1 ~max:3 ~default:2 "n" p in
  let outcome = Equiv.decide ~should_stop ~n lhs rhs in
  Ok
    (Jsonl.Obj
       [
         ("lhs", Jsonl.String (Algebra.to_string lhs));
         ("rhs", Jsonl.String (Algebra.to_string rhs));
         ("n", Jsonl.Int n);
         ("equivalent", Jsonl.Bool outcome.Equiv.equivalent);
         ( "probes",
           Jsonl.List
             (List.map
                (fun (pr : Equiv.probe) ->
                  Jsonl.Obj
                    [
                      ("probe", Jsonl.String pr.Equiv.label);
                      ("lhs", Jsonl.String pr.Equiv.lhs);
                      ("rhs", Jsonl.String pr.Equiv.rhs);
                      ( "agree",
                        Jsonl.Bool (String.equal pr.Equiv.lhs pr.Equiv.rhs) );
                    ])
                outcome.Equiv.probes) );
       ])

(* ---- replication methods (docs/FLEET.md) ----

   [cert-pull] serves a store entry by digest; a miss is a normal
   [found=false] reply, never an error, so a pulling peer can fall
   through to enumeration.  [cert-push] installs a pushed entry through
   [Cert_sync.install] — re-derived content address, full re-verify —
   and reports a rejection in the reply body (the push was delivered;
   what this node thinks of the bytes is its own accounting). *)

let cert_pull p =
  let* key = str_param "key" p in
  match Cert_sync.export key with
  | Ok text ->
      Ok (Jsonl.Obj [ ("found", Jsonl.Bool true); ("cert", Jsonl.String text) ])
  | Error _ -> Ok (Jsonl.Obj [ ("found", Jsonl.Bool false) ])

let cert_push p =
  let* key = str_param "key" p in
  let* text = str_param "cert" p in
  if not (Cert_store.enabled ()) then
    Ok
      (Jsonl.Obj
         [
           ("installed", Jsonl.Bool false);
           ("reason", Jsonl.String "store disabled");
         ])
  else
    match Cert_sync.install ~key text with
    | Ok cert ->
        Ok
          (Jsonl.Obj
             [
               ("installed", Jsonl.Bool true);
               ("kind", Jsonl.String (Cert.kind_name cert));
             ])
    | Error msg ->
        Ok
          (Jsonl.Obj
             [ ("installed", Jsonl.Bool false); ("reason", Jsonl.String msg) ])

let compute ~should_stop req =
  let dispatch () =
    match req.meth with
    | "solvable" -> solvable ~should_stop req.params
    | "closure" -> closure ~should_stop req.params
    | "equiv" -> equiv ~should_stop req.params
    | "experiment" -> experiment req.params
    | "complex-stats" -> complex_stats req.params
    | "cert-pull" -> cert_pull req.params
    | "cert-push" -> cert_push req.params
    | other ->
        Error
          (Printf.sprintf
             "unknown method %S (try ping, stats, solvable, closure, equiv, \
              experiment, complex-stats, cert-pull, cert-push, shutdown)"
             other)
  in
  if should_stop () then Error (Timeout, "deadline exceeded before execution")
  else
    match dispatch () with
    | Ok v -> Ok v
    | Error msg -> Error (Bad_request, msg)
    | exception Csp.Interrupted -> Error (Timeout, "deadline exceeded")
    | exception Failure msg -> Error (Internal, msg)
    | exception Invalid_argument msg -> Error (Internal, msg)
