(** Deciding task solvability: "is there a chromatic simplicial map
    [f : P^(t) → O] agreeing with Δ?" (Section 2.2).

    An instance is built from a list of input simplices, a protocol
    operator [σ ↦ P^(t)(σ)], and the task's Δ.  Constraints: for every
    listed input simplex [σ] and every facet [ρ] of [P^(t)(σ)], the
    image [f(ρ)] must be a simplex of [Δ(σ)].  Restricting the input
    list to a subfamily yields a relaxation, so [Unsat] on a subfamily
    is already a proof of unsolvability. *)

type verdict = Solvable of Simplicial_map.t | Unsolvable | Undecided

val is_solvable : verdict -> bool
(** [true] only on [Solvable _]. *)

val decide :
  ?node_limit:int ->
  ?should_stop:(unit -> bool) ->
  inputs:Simplex.t list ->
  protocol:(Simplex.t -> Complex.t) ->
  delta:(Simplex.t -> Complex.t) ->
  unit ->
  verdict
(** Core entry point.  [Undecided] only when the node limit is hit.
    [should_stop] is forwarded to {!Csp.solve}; when it fires,
    [Csp.Interrupted] escapes before any verdict (or certificate) is
    produced. *)

val task_in_model :
  ?node_limit:int -> ?should_stop:(unit -> bool) -> ?inputs:Simplex.t list ->
  Model.t -> Task.t -> rounds:int ->
  verdict
(** Solvability of a task after [rounds] rounds of the given iterated
    model.  [inputs] defaults to every simplex of the task's input
    complex.

    When the certificate store is enabled ([CERT_CACHE_DIR] or
    [Cert.Store.set_dir]) and the task name is reconstructible
    ([Cert_registry.known_task]), verdicts are served from verified
    [Solution] certificates and decided instances are written back;
    certificates that fail verification are quarantined and the
    instance is re-decided. *)

val task_in_augmented :
  ?node_limit:int -> ?should_stop:(unit -> bool) -> ?inputs:Simplex.t list ->
  box:Black_box.t -> alpha:Augmented.alpha -> Task.t -> rounds:int ->
  verdict
(** Same in IIS augmented with a black box (Algorithm 2). *)

val min_rounds :
  ?node_limit:int -> ?inputs:Simplex.t list -> ?max_rounds:int ->
  Model.t -> Task.t -> int option
(** Smallest [t] such that the task is solvable in [t] rounds, scanning
    [t = 0, 1, …, max_rounds] (default 6).  [None] if none is found (or
    a scan step was undecided). *)

val local_task_solvable :
  ?node_limit:int ->
  ?should_stop:(unit -> bool) ->
  one_round:(Simplex.t -> Simplex.t list) ->
  Task.t -> sigma:Simplex.t -> tau:Simplex.t ->
  verdict
(** One-round solvability of the local task [Π_{τ,σ}] — the membership
    test of Definition 2.  [one_round] produces the facets of the
    one-round protocol complex of the model under consideration (plain
    or augmented). *)
