type constraint_ = { scope : int array; tuples : int array array }

type stats = { nodes : int; revisions : int }

type t = {
  num_vars : int;
  counts : int array;
  mutable cons_rev : constraint_ list;  (* accumulated in reverse *)
  domains : Bytes.t array;              (* '\001' = alive *)
  dom_size : int array;
  mutable stats : stats;
}

type result = Sat of int array | Unsat | Unknown

exception Inconsistent
exception Limit
exception Interrupted

let create ~num_vars ~candidate_counts =
  if Array.length candidate_counts <> num_vars then
    invalid_arg "Csp.create: counts length mismatch";
  {
    num_vars;
    counts = candidate_counts;
    cons_rev = [];
    domains = Array.map (fun c -> Bytes.make c '\001') candidate_counts;
    dom_size = Array.copy candidate_counts;
    stats = { nodes = 0; revisions = 0 };
  }

let last_stats t = t.stats

let add_table_constraint t ~scope ~tuples =
  Array.iter
    (fun tuple ->
      if Array.length tuple <> Array.length scope then
        invalid_arg "Csp.add_table_constraint: tuple arity mismatch")
    tuples;
  t.cons_rev <- { scope; tuples } :: t.cons_rev

let pin t ~var ~value =
  if value < 0 || value >= t.counts.(var) then invalid_arg "Csp.pin: bad value";
  let dom = t.domains.(var) in
  if Bytes.get dom value = '\000' then begin
    (* Conflicting pins: empty the domain; solve will report Unsat. *)
    Bytes.fill dom 0 (Bytes.length dom) '\000';
    t.dom_size.(var) <- 0
  end
  else begin
    Bytes.fill dom 0 (Bytes.length dom) '\000';
    Bytes.set dom value '\001';
    t.dom_size.(var) <- 1
  end

(* ----- search state ----- *)

type state = {
  p : t;
  cons : constraint_ array;
  var_cons : int list array;
  trail : (int * int) Stack.t;        (* (var, value) removals *)
  in_queue : Bytes.t;
  queue : int Queue.t;
  mutable nodes : int;
  mutable revisions : int;
  node_limit : int;
  should_stop : unit -> bool;
}

let alive st v k = Bytes.get st.p.domains.(v) k = '\001'

let remove st v k =
  if alive st v k then begin
    Bytes.set st.p.domains.(v) k '\000';
    st.p.dom_size.(v) <- st.p.dom_size.(v) - 1;
    Stack.push (v, k) st.trail;
    if st.p.dom_size.(v) = 0 then raise Inconsistent
  end

let enqueue st c =
  if Bytes.get st.in_queue c = '\000' then begin
    Bytes.set st.in_queue c '\001';
    Queue.add c st.queue
  end

let enqueue_var st v = List.iter (enqueue st) st.var_cons.(v)

let revise st ci =
  st.revisions <- st.revisions + 1;
  let c = st.cons.(ci) in
  let arity = Array.length c.scope in
  let supported = Array.map (fun v -> Bytes.make st.p.counts.(v) '\000') c.scope in
  let any_alive = ref false in
  Array.iter
    (fun tuple ->
      let ok = ref true in
      for pos = 0 to arity - 1 do
        if !ok && not (alive st c.scope.(pos) tuple.(pos)) then ok := false
      done;
      if !ok then begin
        any_alive := true;
        for pos = 0 to arity - 1 do
          Bytes.set supported.(pos) tuple.(pos) '\001'
        done
      end)
    c.tuples;
  if not !any_alive then raise Inconsistent;
  for pos = 0 to arity - 1 do
    let v = c.scope.(pos) in
    let changed = ref false in
    for k = 0 to st.p.counts.(v) - 1 do
      if alive st v k && Bytes.get supported.(pos) k = '\000' then begin
        remove st v k;
        changed := true
      end
    done;
    if !changed then enqueue_var st v
  done

let propagate st =
  while not (Queue.is_empty st.queue) do
    let ci = Queue.pop st.queue in
    Bytes.set st.in_queue ci '\000';
    revise st ci
  done

let enqueue_all st =
  Array.iteri (fun ci _ -> enqueue st ci) st.cons

let rollback st mark =
  while Stack.length st.trail > mark do
    let v, k = Stack.pop st.trail in
    Bytes.set st.p.domains.(v) k '\001';
    st.p.dom_size.(v) <- st.p.dom_size.(v) + 1
  done;
  Queue.clear st.queue;
  Bytes.fill st.in_queue 0 (Bytes.length st.in_queue) '\000'

let pick_var st =
  let best = ref (-1) and best_size = ref max_int in
  for v = 0 to st.p.num_vars - 1 do
    let s = st.p.dom_size.(v) in
    if s > 1 && s < !best_size then begin
      best := v;
      best_size := s
    end
  done;
  !best

let extract st =
  Array.init st.p.num_vars (fun v ->
      let rec first k =
        if k >= st.p.counts.(v) then
          invalid_arg "Csp.extract: empty domain in solution"
        else if alive st v k then k
        else first (k + 1)
      in
      first 0)

let rec search st =
  st.nodes <- st.nodes + 1;
  if st.nodes > st.node_limit then raise Limit;
  (* Cooperative cancellation: the polling cadence (every 256 nodes)
     keeps clock reads off the hot path while bounding the response
     latency to a few thousand table lookups. *)
  if st.nodes land 255 = 0 && st.should_stop () then raise Interrupted;
  let v = pick_var st in
  if v < 0 then Some (extract st)
  else
    let rec try_values k =
      if k >= st.p.counts.(v) then None
      else if not (alive st v k) then try_values (k + 1)
      else
        let mark = Stack.length st.trail in
        match
          (* Assign v := k by removing all other alive values. *)
          for k' = 0 to st.p.counts.(v) - 1 do
            if k' <> k && alive st v k' then remove st v k'
          done;
          enqueue_var st v;
          propagate st
        with
        | () -> (
            match search st with
            | Some _ as s -> s
            | None ->
                rollback st mark;
                try_values (k + 1))
        | exception Inconsistent ->
            rollback st mark;
            try_values (k + 1)
    in
    try_values 0

let solve ?(node_limit = 10_000_000) ?(should_stop = fun () -> false) t =
  if should_stop () then raise Interrupted;
  let cons = Array.of_list (List.rev t.cons_rev) in
  let var_cons = Array.make t.num_vars [] in
  Array.iteri
    (fun ci c ->
      Array.iter (fun v -> var_cons.(v) <- ci :: var_cons.(v)) c.scope)
    cons;
  (* Variables with an empty candidate set are unsatisfiable up front
     (they cannot be mapped anywhere). *)
  if Array.exists (fun s -> s = 0) t.dom_size then begin
    t.stats <- { nodes = 0; revisions = 0 };
    Unsat
  end
  else begin
    let st =
      {
        p = t;
        cons;
        var_cons;
        trail = Stack.create ();
        in_queue = Bytes.make (Array.length cons) '\000';
        queue = Queue.create ();
        nodes = 0;
        revisions = 0;
        node_limit;
        should_stop;
      }
    in
    let restore () =
      t.stats <- { nodes = st.nodes; revisions = st.revisions };
      rollback st 0
    in
    match
      enqueue_all st;
      propagate st;
      search st
    with
    | Some assignment ->
        restore ();
        Sat assignment
    | None ->
        restore ();
        Unsat
    | exception Inconsistent ->
        restore ();
        Unsat
    | exception Limit ->
        restore ();
        Unknown
    | exception Interrupted ->
        restore ();
        raise Interrupted
  end
