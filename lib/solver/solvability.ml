let src = Logs.Src.create "speedup.solver" ~doc:"Simplicial-map search"

module Log = (val Logs.src_log src : Logs.LOG)

type verdict = Solvable of Simplicial_map.t | Unsolvable | Undecided

let is_solvable = function
  | Solvable _ -> true
  | Unsolvable | Undecided -> false

(* Variable and candidate bookkeeping: protocol vertices become CSP
   variables; output vertices of the same color become candidates. *)

type tables = {
  var_of : int Vertex.Tbl.t;
  mutable vars : Vertex.t list;  (* reverse order of allocation *)
  mutable num_vars : int;
  cand_of : (int, int Vertex.Tbl.t) Hashtbl.t;  (* color -> vertex -> index *)
  cands : (int, Vertex.t list ref) Hashtbl.t;   (* color -> reverse list *)
}

let fresh_tables () =
  {
    var_of = Vertex.Tbl.create 256;
    vars = [];
    num_vars = 0;
    cand_of = Hashtbl.create 16;
    cands = Hashtbl.create 16;
  }

let var_id tb v =
  match Vertex.Tbl.find_opt tb.var_of v with
  | Some id -> id
  | None ->
      let id = tb.num_vars in
      Vertex.Tbl.add tb.var_of v id;
      tb.vars <- v :: tb.vars;
      tb.num_vars <- id + 1;
      id

let color_tables tb color =
  match Hashtbl.find_opt tb.cand_of color with
  | Some t -> (t, Hashtbl.find tb.cands color)
  | None ->
      let t = Vertex.Tbl.create 64 and l = ref [] in
      Hashtbl.add tb.cand_of color t;
      Hashtbl.add tb.cands color l;
      (t, l)

let cand_index tb v =
  let t, l = color_tables tb (Vertex.color v) in
  match Vertex.Tbl.find_opt t v with
  | Some k -> k
  | None ->
      let k = Vertex.Tbl.length t in
      Vertex.Tbl.add t v k;
      l := v :: !l;
      k

let decide ?node_limit ?should_stop ~inputs ~protocol ~delta () =
  let tb = fresh_tables () in
  (* Pass 1a: build the per-input protocol complexes and Δ images.
     These are independent and often the dominant cost (protocol
     complexes grow exponentially in rounds), so the pass fans out
     across the domain pool.  Registration stays sequential below, in
     input order, so variable and candidate numbering — and hence the
     whole CSP search — is identical at every job count. *)
  let pairs = Pool.map (fun sigma -> (protocol sigma, delta sigma)) inputs in
  (* Pass 1b: register candidates (all Δ vertices) and variables (all
     protocol vertices). *)
  let raw =
    List.map
      (fun (p, d) ->
        List.iter (fun v -> ignore (cand_index tb v)) (Complex.vertices d);
        List.iter (fun v -> ignore (var_id tb v)) (Complex.vertices p);
        (p, d))
      pairs
  in
  let counts = Array.make tb.num_vars 0 in
  List.iter
    (fun v ->
      let id = Vertex.Tbl.find tb.var_of v in
      let t, _ = color_tables tb (Vertex.color v) in
      counts.(id) <- Vertex.Tbl.length t)
    tb.vars;
  let csp = Csp.create ~num_vars:tb.num_vars ~candidate_counts:counts in
  List.iter
    (fun (p, d) ->
      List.iter
        (fun facet ->
          let scope_vertices = Simplex.vertices facet in
          let scope =
            Array.of_list (List.map (fun v -> Vertex.Tbl.find tb.var_of v) scope_vertices)
          in
          let allowed = Complex.simplices_with_ids (Simplex.ids facet) d in
          let tuples =
            Array.of_list
              (List.map
                 (fun s ->
                   Array.of_list
                     (List.map (fun w -> cand_index tb w) (Simplex.vertices s)))
                 allowed)
          in
          Csp.add_table_constraint csp ~scope ~tuples)
        (Complex.facets p))
    raw;
  let result = Csp.solve ?node_limit ?should_stop csp in
  Log.debug (fun m ->
      let stats = Csp.last_stats csp in
      m "instance: %d inputs, %d variables; search: %d nodes, %d revisions"
        (List.length inputs) tb.num_vars stats.Csp.nodes stats.Csp.revisions);
  match result with
  | Csp.Unsat -> Unsolvable
  | Csp.Unknown -> Undecided
  | Csp.Sat assignment ->
      (* Rebuild the vertex-level map from candidate indices. *)
      let cand_arrays = Hashtbl.create 16 in
      (Hashtbl.iter
         (fun color l ->
           let arr = Array.of_list (List.rev !l) in
           Hashtbl.add cand_arrays color arr)
         tb.cands
       [@lint.allow "R2: builds a key-indexed copy; iteration order is irrelevant"]);
      let pairs =
        List.map
          (fun v ->
            let id = Vertex.Tbl.find tb.var_of v in
            let arr = Hashtbl.find cand_arrays (Vertex.color v) in
            (v, arr.(assignment.(id))))
          tb.vars
      in
      Solvable (Simplicial_map.of_assoc pairs)

let task_in_model ?node_limit ?should_stop ?inputs model task ~rounds =
  let inputs =
    match inputs with Some l -> l | None -> Task.input_simplices task
  in
  let compute () =
    decide ?node_limit ?should_stop ~inputs
      ~protocol:(fun sigma -> Model.protocol_complex model sigma rounds)
      ~delta:(Task.delta task) ()
  in
  if not (Cert_store.enabled () && Cert_registry.known_task task.Task.name)
  then compute ()
  else
    let model_name = Model.name model in
    let key =
      Cert.query_key
        (Cert.Q_solve { model_name; task_name = task.Task.name; rounds; inputs })
    in
    let env =
      {
        Cert.task_of_name =
          (fun n -> if n = task.Task.name then Some task else None);
        facets_of_op = (fun _ -> None);
        protocol_of_model =
          (fun n ->
            if n = model_name then Some (Model.protocol_complex model) else None);
      }
    in
    let stored =
      match Cert_store.load key with
      | None -> None
      | Some sexp -> (
          match Cert.decode sexp with
          | Error msg ->
              Log.warn (fun m -> m "stale/corrupt certificate %s: %s" key msg);
              Cert_store.quarantine key;
              None
          | Ok (Cert.Solution s as cert)
            when s.Cert.model_name = model_name
                 && s.Cert.task_name = task.Task.name
                 && s.Cert.rounds = rounds
                 && List.length s.Cert.inputs = List.length inputs
                 && List.for_all2 Simplex.equal s.Cert.inputs inputs -> (
              match Cert.verify env cert with
              | Ok () ->
                  if s.Cert.verdict then
                    Option.map (fun f -> Solvable f) s.Cert.map
                  else Some Unsolvable
              | Error e ->
                  Log.warn (fun m ->
                      m "certificate %s failed verification: %s" key
                        (Cert.error_message e));
                  Cert_store.quarantine key;
                  None)
          | Ok _ ->
              Cert_store.quarantine key;
              None)
    in
    match stored with
    | Some verdict -> verdict
    | None ->
        let verdict = compute () in
        (match verdict with
        | Solvable f ->
            Cert_store.save ~key
              (Cert.encode
                 (Cert.Solution
                    {
                      model_name;
                      task_name = task.Task.name;
                      rounds;
                      inputs;
                      verdict = true;
                      map = Some f;
                    }))
        | Unsolvable ->
            Cert_store.save ~key
              (Cert.encode
                 (Cert.Solution
                    {
                      model_name;
                      task_name = task.Task.name;
                      rounds;
                      inputs;
                      verdict = false;
                      map = None;
                    }))
        | Undecided -> ());
        verdict

let task_in_augmented ?node_limit ?should_stop ?inputs ~box ~alpha task ~rounds =
  let inputs =
    match inputs with Some l -> l | None -> Task.input_simplices task
  in
  decide ?node_limit ?should_stop ~inputs
    ~protocol:(fun sigma -> Augmented.protocol_complex ~box ~alpha sigma rounds)
    ~delta:(Task.delta task) ()

let min_rounds ?node_limit ?inputs ?(max_rounds = 6) model task =
  let rec scan t =
    if t > max_rounds then None
    else
      match task_in_model ?node_limit ?inputs model task ~rounds:t with
      | Solvable _ -> Some t
      | Unsolvable -> scan (t + 1)
      | Undecided -> None
  in
  scan 0

let local_task_solvable ?node_limit ?should_stop ~one_round task ~sigma ~tau =
  let local = Local_task.make task ~sigma ~tau in
  decide ?node_limit ?should_stop
    ~inputs:(Simplex.faces tau)
    ~protocol:(fun tau' -> Complex.of_facets (one_round tau'))
    ~delta:(Task.delta local) ()
