(** A table-constraint CSP solver (generalized arc consistency +
    backtracking with trailing), tailored to simplicial-map search.

    Variables are the vertices of a protocol complex; the domain of a
    variable is a set of output vertices of the same color; every
    constraint is a table constraint "the tuple of images of this facet
    must be one of these simplices". *)

type t

type result = Sat of int array | Unsat | Unknown
(** [Sat a] maps each variable to the index of its chosen candidate;
    [Unknown] is returned only when a node limit is hit. *)

val create : num_vars:int -> candidate_counts:int array -> t
(** [candidate_counts.(v)] is the number of candidate values of
    variable [v]; initial domains are full. *)

val add_table_constraint : t -> scope:int array -> tuples:int array array -> unit
(** [scope] lists variables; each tuple gives one allowed combination
    of candidate indices, aligned with [scope].  An empty tuple list
    makes the problem unsatisfiable. *)

val pin : t -> var:int -> value:int -> unit
(** Restrict a variable's domain to a single candidate. *)

exception Interrupted
(** Raised by {!solve} when its [should_stop] callback returns [true]
    — the cooperative cancellation hook used by per-request deadlines
    in the query daemon.  The solver state is restored before the
    exception escapes, so the object remains reusable. *)

val solve : ?node_limit:int -> ?should_stop:(unit -> bool) -> t -> result
(** Runs propagation and search.  The solver object can be reused
    (domains are restored after solving).  [should_stop] (default
    [fun () -> false]) is polled once up front and then every 256
    search nodes; when it returns [true], {!Interrupted} is raised
    after restoring the solver state.  No result — not even a partial
    one — is produced on interruption. *)

type stats = { nodes : int; revisions : int }
(** Search nodes explored and constraint revisions performed by the
    most recent [solve] call. *)

val last_stats : t -> stats
(** All-zero before the first [solve]. *)
