let alpha = Augmented.alpha_const Value.Unit
let box = Black_box.test_and_set

(* The ρ_{i,j,k} simplex of the Corollary 2 proof: i solo-first and
   winning, then j, then k, with test&set outputs (1,0,0). *)
let rho sigma (i, j, k) =
  let value p = Simplex.value p sigma in
  let view ids = Value.view (List.map (fun q -> (q, value q)) ids) in
  Simplex.of_vertices
    [
      Vertex.make i (Value.pair (Value.Bool true) (view [ i ]));
      Vertex.make j (Value.pair (Value.Bool false) (view [ i; j ]));
      Vertex.make k (Value.pair (Value.Bool false) (view [ i; j; k ]));
    ]

let run () =
  let sigma =
    Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1); (3, Value.Int 0) ]
  in
  let one_round =
    Complex.of_facets (Augmented.one_round_facets ~box ~alpha ~round:1 sigma)
  in
  let per_color_ok =
    List.for_all
      (fun i -> List.length (Complex.vertices_of_color i one_round) = 7)
      [ 1; 2; 3 ]
  in
  let rho_present =
    List.for_all
      (fun ids -> Complex.mem (rho sigma ids) one_round)
      [ (1, 2, 3); (2, 1, 3); (1, 3, 2); (3, 1, 2); (2, 3, 1); (3, 2, 1) ]
  in
  let relaxed = Consensus.relaxed ~n:3 ~values:[ Value.Int 0; Value.Int 1 ] in
  let fixed_point =
    Closure.fixed_point_on ~op:Round_op.test_and_set relaxed
      (Task.input_simplices relaxed)
  in
  let consensus3 = Consensus.binary ~n:3 in
  let direct t =
    match Solvability.task_in_augmented ~box ~alpha consensus3 ~rounds:t with
    | Solvability.Unsolvable -> true
    | Solvability.Solvable _ | Solvability.Undecided -> false
  in
  let unsat1 = direct 1 and unsat2 = direct 2 in
  let rows =
    [
      [ "Fig 5: 7 vertices per color (n=3)"; Report.verdict per_color_ok ];
      [ Printf.sprintf "Fig 5: facets of P^1 = %d" (Complex.facet_count one_round);
        Report.verdict (Complex.facet_count one_round = 18) ];
      [ "Fig 6: all six ρ_{i,j,k} simplices present"; Report.verdict rho_present ];
      [ "Cor 2: relaxed consensus is a CL_{IIS+T&S} fixed point";
        Report.verdict fixed_point ];
      [ "ground truth: 3-proc consensus + T&S unsolvable, t=1"; Report.verdict unsat1 ];
      [ "ground truth: 3-proc consensus + T&S unsolvable, t=2"; Report.verdict unsat2 ];
    ]
  in
  let ok = per_color_ok && rho_present && fixed_point && unsat1 && unsat2 in
  [
    Report.table ~id:"e5"
      ~title:"Corollary 2 / Figures 5-6: consensus with test&set, n = 3"
      ~headers:[ "check"; "result" ] ~rows ~ok;
  ]
