let random_task ~n ~outputs seed =
  let rng = Random.State.make [| seed |] in
  let input_values = [ Value.Int 0; Value.Int 1 ] in
  let inputs = Combinatorics.full_input_complex n input_values in
  let table = Hashtbl.create 32 in
  List.iter
    (fun sigma ->
      let candidates = Combinatorics.assignments (Simplex.ids sigma) outputs in
      let chosen = List.filter (fun _ -> Random.State.bool rng) candidates in
      let chosen =
        match chosen with [] -> [ List.hd candidates ] | _ -> chosen
      in
      Hashtbl.replace table (Simplex.to_string sigma) (Complex.of_facets chosen))
    (Complex.all_simplices inputs);
  Task.make
    ~name:(Printf.sprintf "converse-%d-%d" n seed)
    ~arity:n ~inputs:(lazy inputs)
    ~outputs:(lazy (Combinatorics.full_input_complex n outputs))
    ~delta:(fun s -> Hashtbl.find table (Simplex.to_string s))

let search ~n ~outputs ~seeds =
  let op = Round_op.plain Model.Immediate in
  let hard = ref 0 and violations = ref 0 in
  for seed = 0 to seeds - 1 do
    let t = random_task ~n ~outputs seed in
    let solvable rounds task =
      Solvability.is_solvable
        (Solvability.task_in_model ~node_limit:2_000_000 Model.Immediate task
           ~rounds)
    in
    if not (solvable 1 t) then begin
      incr hard;
      if solvable 0 (Closure.task ~op t) then incr violations
    end
  done;
  (!hard, !violations)

let run () =
  let binary = [ Value.Int 0; Value.Int 1 ] in
  let ternary = binary @ [ Value.Int 2 ] in
  let cases =
    [ (2, binary, 800); (2, ternary, 800); (3, binary, 300) ]
  in
  let rows, ok =
    List.fold_left
      (fun (rows, ok) (n, outputs, seeds) ->
        let hard, violations = search ~n ~outputs ~seeds in
        let row =
          [
            string_of_int n;
            string_of_int (List.length outputs);
            string_of_int seeds;
            string_of_int hard;
            string_of_int violations;
            Report.verdict (violations = 0);
          ]
        in
        (row :: rows, ok && violations = 0))
      ([], true) cases
  in
  [
    Report.table ~id:"e20"
      ~title:
        "Converse speedup search: tasks with a 0-round-solvable closure but no 1-round solution (none found)"
      ~headers:
        [ "n"; "#output values"; "tasks sampled"; "1-round unsolvable";
          "converse violations"; "no iff-counterexample" ]
      ~rows:(List.rev rows) ~ok;
  ]
