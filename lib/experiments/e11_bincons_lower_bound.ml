let all_betas ids =
  let rec go = function
    | [] -> [ [] ]
    | i :: rest ->
        let tails = go rest in
        List.concat_map (fun b -> List.map (fun tl -> (i, b) :: tl) tails) [ false; true ]
  in
  go ids

let majority_side ids beta =
  let zeros = List.filter (fun i -> not (List.assoc i beta)) ids in
  let ones = List.filter (fun i -> List.assoc i beta) ids in
  if List.length zeros >= List.length ones then zeros else ones

(* On S' the box output is the same for everyone in every execution:
   stripping it must give exactly the plain IIS complex. *)
let degenerates_on beta sigma =
  let beta_fn i = List.assoc i beta in
  let op = Round_op.bin_consensus_beta beta_fn in
  let facets = Round_op.facets op sigma in
  let expected = Value.Bool (beta_fn (List.hd (Simplex.ids sigma))) in
  let constant_box =
    List.for_all
      (fun facet ->
        List.for_all
          (fun v ->
            match Vertex.value v with
            | Value.Pair { fst = b; _ } -> Value.equal b expected
            | _ -> false)
          (Simplex.vertices facet))
      facets
  in
  let stripped =
    List.sort_uniq Simplex.compare
      (List.map
         (fun f -> Simplex.of_vertices (List.map Augmented.strip_box (Simplex.vertices f)))
         facets)
  in
  let plain =
    List.sort_uniq Simplex.compare (Model.one_round_facets Model.Immediate sigma)
  in
  constant_box
  && List.length stripped = List.length plain
  && List.for_all2 Simplex.equal stripped plain

let claim6_rows () =
  let n = 5 in
  let ids = List.init n (fun i -> i + 1) in
  let m = 4 in
  let eps = Frac.make 1 m in
  let aa = Approx_agreement.liberal ~n ~m ~eps in
  let reference = Approx_agreement.liberal ~n ~m ~eps:(Frac.make 2 m) in
  let results =
    List.map
      (fun beta ->
        let s' = majority_side ids beta in
        let size_ok = List.length s' >= 3 in
        (* Representative input on the first three processes of S'. *)
        let chosen =
          match s' with a :: b :: c :: _ -> [ a; b; c ] | _ -> s'
        in
        let sigma =
          Simplex.of_list
            (List.mapi
               (fun idx i ->
                 (i, Value.frac (if idx = 0 then 0 else if idx = 1 then m / 2 else m) m))
               chosen)
        in
        let degen = degenerates_on beta sigma in
        let beta_fn i = List.assoc i beta in
        let equal =
          Closure.equal_on
            ~op:(Round_op.bin_consensus_beta beta_fn)
            aa ~reference (Simplex.faces sigma)
        in
        (beta, s', size_ok && degen && equal))
      (all_betas ids)
  in
  let all_good = List.for_all (fun (_, _, g) -> g) results in
  let beta_str beta =
    String.concat "" (List.map (fun (_, b) -> if b then "1" else "0") beta)
  in
  let sample_rows =
    List.filteri (fun k _ -> k mod 6 = 0)
      (List.map
         (fun (beta, s', good) ->
           [
             beta_str beta;
             Printf.sprintf "{%s}" (String.concat "," (List.map string_of_int s'));
             Report.verdict good;
           ])
         results)
  in
  (sample_rows
   @ [ [ "(all 32 β)"; ""; Report.verdict all_good ] ],
   all_good)

let bound_table_rows () =
  List.concat_map
    (fun n ->
      List.map
        (fun e ->
          let log_eps = e and log_n = Frac.ceil_log ~base:2 (Frac.of_int n) in
          let lower = min log_eps (log_n - 1) in
          let upper = min log_eps log_n in
          [
            string_of_int n;
            Printf.sprintf "1/%d" (1 lsl e);
            string_of_int lower;
            string_of_int upper;
            Report.verdict (upper - lower <= 1);
          ])
        [ 1; 2; 3; 4 ])
    [ 4; 8; 16 ]

let ground_truth_n3 () =
  let m = 4 in
  let task = Approx_agreement.task ~n:3 ~m ~eps:(Frac.make 1 m) in
  let inputs = Complex.all_simplices (Approx_agreement.binary_input_complex ~n:3) in
  List.for_all
    (fun beta ->
      let beta_fn i = List.assoc i beta in
      match
        Solvability.task_in_augmented ~inputs ~box:Black_box.bin_consensus
          ~alpha:(Augmented.alpha_of_beta beta_fn) task ~rounds:1
      with
      | Solvability.Unsolvable -> true
      | Solvability.Solvable _ | Solvability.Undecided -> false)
    (all_betas [ 1; 2; 3 ])

let run () =
  let c6_rows, c6_ok = claim6_rows () in
  let gt = ground_truth_n3 () in
  [
    Report.table ~id:"e11"
      ~title:
        "Claim 6 (n=5, eps=1/4): every β degenerates on its majority side S'; closure there = liberal 2eps-AA"
      ~headers:[ "β (1..5)"; "S'"; "degenerate+closure ok" ]
      ~rows:c6_rows ~ok:c6_ok;
    Report.table ~id:"e11"
      ~title:
        "Theorem 4: lower bound min{ceil(log2 1/eps), ceil(log2 n)-1} vs §5.3 upper bound"
      ~headers:[ "n"; "eps"; "lower"; "upper"; "gap<=1" ]
      ~rows:(bound_table_rows ())
      ~ok:true;
    Report.table ~id:"e11"
      ~title:"Ground truth (n=3, eps=1/4): no ID-only β solves eps-AA in 1 round"
      ~headers:[ "check"; "result" ]
      ~rows:[ [ "all 8 β unsolvable at t=1"; Report.verdict gt ] ]
      ~ok:gt;
  ]
