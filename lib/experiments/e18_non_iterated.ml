let halving_case ~n ~rounds =
  let m = 1 lsl rounds in
  let eps = Frac.make 1 m in
  let spec = Aa_halving.spec ~m ~rounds in
  let task = Approx_agreement.task ~n ~m ~eps in
  let participants = List.init n (fun i -> i + 1) in
  let inputs =
    List.mapi
      (fun idx i ->
        (i, Value.frac (if idx = n - 1 then m else idx * m / n) m))
      participants
  in
  let sigma = Simplex.of_list inputs in
  let schedules = Non_iterated.exhaustive ~participants ~rounds in
  let violations runner =
    List.length
      (List.filter
         (fun s ->
           match runner spec ~inputs ~schedule:s with
           | [] -> false
           | outs -> not (Complex.mem (Simplex.of_list outs) (Task.delta task sigma)))
         schedules)
  in
  (n, rounds, List.length schedules, violations Non_iterated.run,
   violations Non_iterated.run_emulated)

let lockstep_agrees ~n ~rounds =
  let m = 1 lsl rounds in
  let spec = Aa_halving.spec ~m ~rounds in
  let participants = List.init n (fun i -> i + 1) in
  let inputs =
    List.mapi (fun idx i -> (i, Value.frac (min idx 1 * m) m)) participants
  in
  let ni =
    Non_iterated.run spec ~inputs
      ~schedule:(Non_iterated.lockstep ~participants ~rounds)
  in
  let it =
    Executor.run (State_protocol.protocol spec) ~inputs
      ~schedule:(List.init rounds (fun _ -> Schedule.Is_round [ participants ]))
  in
  List.equal
    (fun (i, v) (j, w) -> Int.equal i j && Value.equal v w)
    ni it.Executor.outputs

let snapshot_facets_realized n =
  let inputs = List.init n (fun i -> (i + 1, Value.Int (i + 1))) in
  let sigma = Simplex.of_list inputs in
  let profiles =
    Non_iterated.one_round_profiles
      ~participants:(List.map fst inputs)
      ~inputs
  in
  let snap = Model.one_round_facets Model.Snapshot sigma in
  ( List.length profiles,
    List.length snap,
    Simplex.Set.equal (Simplex.Set.of_list profiles) (Simplex.Set.of_list snap) )

let run () =
  let cases = [ halving_case ~n:2 ~rounds:2; halving_case ~n:3 ~rounds:2 ] in
  let halving_rows =
    List.map
      (fun (n, t, scheds, raw, emu) ->
        [
          string_of_int n;
          string_of_int t;
          string_of_int scheds;
          string_of_int raw;
          string_of_int emu;
          Report.verdict (raw > 0 && emu = 0);
        ])
      cases
  in
  let halving_ok =
    List.for_all (fun (_, _, _, raw, emu) -> raw > 0 && emu = 0) cases
  in
  let lock2 = lockstep_agrees ~n:2 ~rounds:2
  and lock3 = lockstep_agrees ~n:3 ~rounds:3 in
  let p2, s2, eq2 = snapshot_facets_realized 2 in
  let p3, s3, eq3 = snapshot_facets_realized 3 in
  [
    Report.table ~id:"e18"
      ~title:
        "Non-iterated memory: raw register reuse breaks the halving algorithm; round-tagged emulation repairs it"
      ~headers:
        [ "n"; "rounds"; "#interleavings"; "raw violations";
          "emulated violations"; "raw breaks & emulation fixes" ]
      ~rows:halving_rows ~ok:halving_ok;
    Report.table ~id:"e18"
      ~title:"Structural transfer between the models"
      ~headers:[ "check"; "result" ]
      ~rows:
        [
          [ "lockstep raw reuse = iterated executor (n=2)"; Report.verdict lock2 ];
          [ "lockstep raw reuse = iterated executor (n=3)"; Report.verdict lock3 ];
          [ Printf.sprintf "one emulated round = snapshot facets (n=2): %d vs %d" p2 s2;
            Report.verdict eq2 ];
          [ Printf.sprintf "one emulated round = snapshot facets (n=3): %d vs %d" p3 s3;
            Report.verdict eq3 ];
        ]
      ~ok:(lock2 && lock3 && eq2 && eq3);
  ]
