type step =
  | Write of int
  | Read of int * int
  | Snapshot of int
  | Invoke of int

type round = Is_round of int list list | Step_round of step list
type t = round list

let same_set a b =
  List.sort_uniq Stdlib.compare a = List.sort_uniq Stdlib.compare b

let validate_is ~participants blocks =
  same_set (List.concat blocks) participants
  && List.for_all (fun b -> b <> []) blocks
  && List.length (List.concat blocks)
     = List.length (List.sort_uniq Stdlib.compare (List.concat blocks))

let validate_steps ~participants ~boxed steps =
  let ops i = List.filter (function
    | Write j | Snapshot j | Invoke j -> i = j
    | Read (j, _) -> i = j) steps
  in
  List.for_all
    (fun i ->
      match ops i with
      | Write j :: rest when j = i ->
          let invokes, reads =
            List.partition (function Invoke _ -> true | Write _ | Read _ | Snapshot _ -> false) rest
          in
          let invoke_ok =
            if boxed then
              match (invokes, rest) with
              | [ Invoke _ ], Invoke _ :: _ -> true (* box right after write *)
              | _ -> false
            else invokes = []
          in
          let read_targets =
            List.filter_map (function Read (_, q) -> Some q | Write _ | Snapshot _ | Invoke _ -> None) reads
          in
          invoke_ok
          && (same_set read_targets participants
             || reads = [ Snapshot i ])
      | _ -> false)
    participants

let validate_round ~participants ~boxed = function
  | Is_round blocks -> validate_is ~participants blocks
  | Step_round steps -> validate_steps ~participants ~boxed steps

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
      let tails = cartesian rest in
      List.concat_map (fun c -> List.map (fun tl -> c :: tl) tails) choices

let is_rounds ~participants ~rounds =
  let parts =
    List.map (fun p -> Is_round p) (Ordered_partition.enumerate participants)
  in
  cartesian (List.init rounds (fun _ -> parts))

let rec permutations = function
  | [] -> [ [] ]
  | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> y <> x) l in
          List.map (fun p -> x :: p) (permutations rest))
        l

let is_rounds_boxed ~participants ~rounds =
  let parts =
    List.concat_map
      (fun part ->
        match part with
        | [] -> []
        | first :: others ->
            List.map (fun p -> Is_round (p :: others)) (permutations first))
      (Ordered_partition.enumerate participants)
  in
  cartesian (List.init rounds (fun _ -> parts))

let solo_first ~participants ~rounds i =
  List.init rounds (fun _ ->
      Is_round (Ordered_partition.solo participants i))

(* All interleavings of the given sequences. *)
let rec interleavings seqs =
  let seqs = List.filter (fun s -> s <> []) seqs in
  if seqs = [] then [ [] ]
  else
    List.concat_map
      (fun chosen ->
        match chosen with
        | [] -> []
        | head :: tail ->
            let rest =
              List.map (fun s -> if s == chosen then tail else s) seqs
            in
            List.map (fun il -> head :: il) (interleavings rest))
      seqs

let collect_round_exhaustive ~participants =
  let proc_seqs i =
    List.map
      (fun read_order -> Write i :: List.map (fun q -> Read (i, q)) read_order)
      (permutations participants)
  in
  let per_proc = List.map proc_seqs participants in
  List.map
    (fun seqs -> List.map (fun s -> Step_round s) (interleavings seqs))
    (cartesian per_proc)
  |> List.concat
  |> List.sort_uniq Stdlib.compare

let snapshot_round_exhaustive ~participants =
  let seqs = List.map (fun i -> [ Write i; Snapshot i ]) participants in
  List.map (fun s -> Step_round s) (interleavings seqs)

let round_of_matrix matrix =
  let participants =
    List.concat_map (fun row -> row.Collect_matrix.group) matrix
    |> List.sort Stdlib.compare
  in
  (* Rows are ordered by decreasing knowledge (row 0 sees everyone), so
     write in reverse row order; a read of an unseen register happens
     right after the reader's write, a read of a seen one at the end. *)
  let rows_rev = List.rev matrix in
  let early =
    List.concat_map
      (fun row ->
        List.map (fun i -> Write i) row.Collect_matrix.group
        @ List.concat_map
            (fun i ->
              List.filter_map
                (fun q ->
                  if List.mem q row.Collect_matrix.sees then None
                  else Some (Read (i, q)))
                participants)
            row.Collect_matrix.group)
      rows_rev
  in
  let late =
    List.concat_map
      (fun row ->
        List.concat_map
          (fun i -> List.map (fun q -> Read (i, q)) row.Collect_matrix.sees)
          row.Collect_matrix.group)
      matrix
  in
  Step_round (early @ late)

let shuffle rng l =
  let arr = Array.of_list l in
  for k = Array.length arr - 1 downto 1 do
    let j = Random.State.int rng (k + 1) in
    let tmp = arr.(k) in
    arr.(k) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let random_partition rng participants =
  let order = shuffle rng participants in
  let rec cut = function
    | [] -> []
    | l ->
        let k = 1 + Random.State.int rng (List.length l) in
        let rec split acc n rest =
          if n = 0 then (List.rev acc, rest)
          else
            match rest with
            | [] -> (List.rev acc, [])
            | x :: r -> split (x :: acc) (n - 1) r
        in
        let block, rest = split [] k l in
        block :: cut rest
  in
  cut order

let random_is ?(boxed = false) ~participants ~rounds rng =
  List.init rounds (fun _ ->
      let part = random_partition rng participants in
      let part =
        if boxed then
          match part with [] -> [] | first :: others -> shuffle rng first :: others
        else List.map (List.sort Stdlib.compare) part
      in
      Is_round part)

let random_steps ~model ~participants ~rounds rng =
  let proc_ops i =
    match model with
    | Model.Snapshot -> [ Write i; Snapshot i ]
    | Model.Collect ->
        Write i :: List.map (fun q -> Read (i, q)) (shuffle rng participants)
    | Model.Immediate ->
        invalid_arg "Schedule.random_steps: use random_is for immediate snapshot"
  in
  List.init rounds (fun _ ->
      let pending = Hashtbl.create 8 in
      List.iter (fun i -> Hashtbl.replace pending i (proc_ops i)) participants;
      let steps = ref [] in
      let alive () =
        Hashtbl.fold (fun i ops acc -> if ops = [] then acc else i :: acc) pending []
        |> List.sort Int.compare
      in
      let rec drain () =
        match alive () with
        | [] -> ()
        | live ->
            let i = List.nth live (Random.State.int rng (List.length live)) in
            (match Hashtbl.find pending i with
            | [] -> ()
            | op :: rest ->
                steps := op :: !steps;
                Hashtbl.replace pending i rest);
            drain ()
      in
      drain ();
      Step_round (List.rev !steps))
