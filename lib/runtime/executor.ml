type result = {
  outputs : (int * Value.t) list;
  round_views : (int * Value.t) list list;
}

let sorted_assoc l = List.sort (fun (i, _) (j, _) -> Stdlib.compare i j) l

(* Processes taking part in a round, in the order they write. *)
let round_writers = function
  | Schedule.Is_round blocks -> List.concat blocks
  | Schedule.Step_round steps ->
      List.filter_map
        (function
          | Schedule.Write i -> Some i
          | Schedule.Read _ | Schedule.Snapshot _ | Schedule.Invoke _ -> None)
        steps

let run ?box (protocol : Protocol.t) ~inputs ~schedule =
  if List.length schedule < protocol.Protocol.rounds then
    invalid_arg "Executor.run: schedule shorter than the protocol";
  let views = Hashtbl.create 8 in
  List.iter (fun (i, x) -> Hashtbl.replace views i x) inputs;
  let alive = ref (List.map fst inputs) in
  let round_views = ref [] in
  let view_of i =
    match Hashtbl.find_opt views i with
    | Some v -> v
    | None -> invalid_arg "Executor.run: scheduled process has no input"
  in
  List.iteri
    (fun idx round ->
      let r = idx + 1 in
      if r <= protocol.Protocol.rounds then begin
        let participants =
          List.filter (fun i -> List.mem i !alive) (round_writers round)
        in
        alive := participants;
        let regs : (int, Value.t) Hashtbl.t = Hashtbl.create 8 in
        let box_obj = Option.map (fun mk -> mk ()) box in
        let box_out : (int, Value.t) Hashtbl.t = Hashtbl.create 8 in
        let collected : (int, (int * Value.t) list) Hashtbl.t = Hashtbl.create 8 in
        let invoke i =
          match box_obj with
          | None -> ()
          | Some obj ->
              let a = protocol.Protocol.alpha ~round:r i (view_of i) in
              Hashtbl.replace box_out i (Sim_object.invoke obj i a)
        in
        let snapshot i =
          Hashtbl.replace collected i
            (Hashtbl.fold (fun j v acc -> (j, v) :: acc) regs []
            |> List.sort (fun (a, _) (b, _) -> Int.compare a b))
        in
        (match round with
        | Schedule.Is_round blocks ->
            List.iter
              (fun block ->
                let block = List.filter (fun i -> List.mem i participants) block in
                List.iter (fun i -> Hashtbl.replace regs i (view_of i)) block;
                List.iter invoke block;
                List.iter snapshot block)
              blocks
        | Schedule.Step_round steps ->
            List.iter
              (fun step ->
                match step with
                | Schedule.Write i ->
                    if List.mem i participants then
                      Hashtbl.replace regs i (view_of i)
                | Schedule.Invoke i -> if List.mem i participants then invoke i
                | Schedule.Snapshot i ->
                    if List.mem i participants then snapshot i
                | Schedule.Read (i, q) ->
                    if List.mem i participants then (
                      match Hashtbl.find_opt regs q with
                      | None -> ()
                      | Some v ->
                          let seen =
                            Option.value ~default:[] (Hashtbl.find_opt collected i)
                          in
                          if not (List.mem_assoc q seen) then
                            Hashtbl.replace collected i ((q, v) :: seen)))
              steps);
        (* Close the round: build the new views of surviving processes. *)
        let survivors = List.filter (Hashtbl.mem collected) participants in
        alive := survivors;
        List.iter
          (fun i ->
            let c = Value.view (sorted_assoc (Hashtbl.find collected i)) in
            let v =
              match box_obj with
              | None -> c
              | Some _ -> Value.pair (Hashtbl.find box_out i) c
            in
            Hashtbl.replace views i v)
          survivors;
        round_views :=
          List.map (fun i -> (i, Hashtbl.find views i)) (List.sort Stdlib.compare survivors)
          :: !round_views
      end)
    schedule;
  let deciders = List.sort Stdlib.compare !alive in
  {
    outputs =
      List.map (fun i -> (i, protocol.Protocol.decide i (view_of i))) deciders;
    round_views = List.rev !round_views;
  }

let outputs_simplex r = Simplex.of_list r.outputs

let final_view_simplex r =
  match List.rev r.round_views with
  | last :: _ -> Simplex.of_list last
  | [] -> invalid_arg "Executor.final_view_simplex: zero rounds"
