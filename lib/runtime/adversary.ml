let exhaustive_is ~boxed ~participants ~rounds =
  if boxed then Schedule.is_rounds_boxed ~participants ~rounds
  else Schedule.is_rounds ~participants ~rounds

let random_suite ~model ~boxed ~participants ~rounds ~seed ~count =
  let rng = Random.State.make [| seed |] in
  List.init count (fun _ ->
      match model with
      | Model.Immediate -> Schedule.random_is ~boxed ~participants ~rounds rng
      | Model.Collect | Model.Snapshot ->
          Schedule.random_steps ~model ~participants ~rounds rng)

let with_crash schedule ~proc ~round =
  List.mapi
    (fun idx r ->
      let rnum = idx + 1 in
      if rnum < round then r
      else
        match r with
        | Schedule.Is_round blocks ->
            Schedule.Is_round
              (List.filter_map
                 (fun b ->
                   match List.filter (fun i -> i <> proc) b with
                   | [] -> None
                   | b' -> Some b')
                 blocks)
        | Schedule.Step_round steps ->
            Schedule.Step_round
              (List.filter
                 (fun step ->
                   match step with
                   | Schedule.Write i | Schedule.Invoke i ->
                       i <> proc || rnum = round
                   | Schedule.Read (i, _) | Schedule.Snapshot i -> i <> proc)
                 steps))
    schedule

type failure = {
  schedule : Schedule.t;
  outputs : Simplex.t option;
  reason : string;
}

(* Each schedule is one independent simulator run, so the sweep fans
   out across the domain pool (e9 alone checks 2197 schedules).  The
   executor allocates all its state per run and boxes are created
   fresh each round, so runs share nothing mutable; order-preserving
   collection keeps the failure list identical at every job count.
   One run costs tens of microseconds, so the grain keeps at least 16
   schedules per chunk: a sweep smaller than that never crosses a
   domain boundary, and larger sweeps amortize the chunk handoff. *)
let check_task ?box protocol task ~inputs ~schedules =
  let sigma = Simplex.of_list inputs in
  let legal = Task.delta task sigma in
  Pool.filter_map ~grain:16
    (fun schedule ->
      match Executor.run ?box protocol ~inputs ~schedule with
      | exception Invalid_argument msg ->
          Some { schedule; outputs = None; reason = "run failed: " ^ msg }
      | result -> (
          match result.Executor.outputs with
          | [] -> None (* everyone crashed; nothing to check *)
          | outputs ->
              let out = Simplex.of_list outputs in
              if Complex.mem out legal then None
              else
                Some
                  {
                    schedule;
                    outputs = Some out;
                    reason =
                      Format.asprintf "illegal decision %a for input %a"
                        Simplex.pp out Simplex.pp sigma;
                  }))
    schedules
