type step = Write of int | Snapshot of int
type t = step list

let program ~rounds i =
  List.concat (List.init rounds (fun _ -> [ Write i; Snapshot i ]))

let round_synchronized ~participants ~rounds parts =
  if List.length parts < rounds then
    invalid_arg "Non_iterated.round_synchronized: not enough partitions";
  ignore participants;
  List.concat
    (List.filteri (fun idx _ -> idx < rounds) parts
    |> List.map (fun part ->
           List.concat_map
             (fun block ->
               List.map (fun i -> Write i) block
               @ List.map (fun i -> Snapshot i) block)
             part))

let lockstep ~participants ~rounds =
  round_synchronized ~participants ~rounds
    (List.init rounds (fun _ -> [ participants ]))

let rec interleavings seqs =
  let seqs = List.filter (fun s -> s <> []) seqs in
  if seqs = [] then [ [] ]
  else
    List.concat_map
      (fun chosen ->
        match chosen with
        | [] -> []
        | head :: tail ->
            let rest = List.map (fun s -> if s == chosen then tail else s) seqs in
            List.map (fun il -> head :: il) (interleavings rest))
      seqs

let exhaustive ~participants ~rounds =
  interleavings (List.map (program ~rounds) participants)

let random ~participants ~rounds rng =
  let pending = Hashtbl.create 8 in
  List.iter (fun i -> Hashtbl.replace pending i (program ~rounds i)) participants;
  let out = ref [] in
  let alive () =
    Hashtbl.fold (fun i ops acc -> if ops = [] then acc else i :: acc) pending []
    |> List.sort Int.compare
  in
  let rec drain () =
    match alive () with
    | [] -> ()
    | live ->
        let i = List.nth live (Random.State.int rng (List.length live)) in
        (match Hashtbl.find pending i with
        | [] -> ()
        | op :: rest ->
            out := op :: !out;
            Hashtbl.replace pending i rest);
        drain ()
  in
  drain ();
  List.rev !out

let run spec ~inputs ~schedule =
  let rounds = spec.State_protocol.rounds in
  let state = Hashtbl.create 8 in
  let reg = Hashtbl.create 8 in
  let round = Hashtbl.create 8 in
  List.iter
    (fun (i, x) ->
      Hashtbl.replace state i (spec.State_protocol.init i x);
      Hashtbl.replace round i 0)
    inputs;
  List.iter
    (fun step ->
      match step with
      | Write i -> Hashtbl.replace reg i (Hashtbl.find state i)
      | Snapshot i ->
          let r = Hashtbl.find round i + 1 in
          if r <= rounds then begin
            let seen =
              Hashtbl.fold (fun j v acc -> (j, v) :: acc) reg []
              |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
            in
            Hashtbl.replace state i
              (spec.State_protocol.step ~round:r i ~box:None seen);
            Hashtbl.replace round i r
          end)
    schedule;
  List.filter_map
    (fun (i, _) ->
      if Hashtbl.find round i = rounds then
        Some (i, spec.State_protocol.output i (Hashtbl.find state i))
      else None)
    inputs

(* Round-tagged emulation: the register of a process holds its whole
   history as a view keyed by round number (s_{k} under key k+1); a
   reader at round r extracts exactly the key-r entries. *)
let run_emulated spec ~inputs ~schedule =
  let rounds = spec.State_protocol.rounds in
  let history = Hashtbl.create 8 in
  let reg = Hashtbl.create 8 in
  let round = Hashtbl.create 8 in
  List.iter
    (fun (i, x) ->
      Hashtbl.replace history i [ (1, spec.State_protocol.init i x) ];
      Hashtbl.replace round i 0)
    inputs;
  List.iter
    (fun step ->
      match step with
      | Write i -> Hashtbl.replace reg i (Value.view (Hashtbl.find history i))
      | Snapshot i ->
          let r = Hashtbl.find round i + 1 in
          if r <= rounds then begin
            let states =
              Hashtbl.fold
                (fun j h acc ->
                  match Value.view_find r h with
                  | Some s -> (j, s) :: acc
                  | None -> acc)
                reg []
              |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
            in
            let s = spec.State_protocol.step ~round:r i ~box:None states in
            Hashtbl.replace history i ((r + 1, s) :: Hashtbl.find history i);
            Hashtbl.replace round i r
          end)
    schedule;
  List.filter_map
    (fun (i, _) ->
      if Hashtbl.find round i = rounds then
        match List.assoc_opt (rounds + 1) (Hashtbl.find history i) with
        | Some s -> Some (i, spec.State_protocol.output i s)
        | None -> None
      else None)
    inputs

let full_information_spec rounds =
  {
    State_protocol.name = "emulated-full-information";
    rounds;
    init = (fun _i x -> x);
    step = (fun ~round:_ _i ~box:_ states -> Value.view states);
    box_input = (fun ~round:_ _i _ -> Value.Unit);
    output = (fun _i s -> s);
  }

let one_round_profiles ~participants ~inputs =
  let spec = full_information_spec 1 in
  List.fold_left
    (fun acc schedule ->
      match run_emulated spec ~inputs ~schedule with
      | [] -> acc
      | outs -> Simplex.Set.add (Simplex.of_list outs) acc)
    Simplex.Set.empty
    (exhaustive ~participants ~rounds:1)
  |> Simplex.Set.elements
