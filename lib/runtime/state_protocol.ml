type spec = {
  name : string;
  rounds : int;
  init : int -> Value.t -> Value.t;
  step :
    round:int -> int -> box:Value.t option -> (int * Value.t) list -> Value.t;
  box_input : round:int -> int -> Value.t -> Value.t;
  output : int -> Value.t -> Value.t;
}

let rec state_of_view spec ~round i view =
  if round = 0 then spec.init i view
  else
    let unfold box entries =
      let states =
        List.map (fun (j, v) -> (j, state_of_view spec ~round:(round - 1) j v)) entries
      in
      spec.step ~round i ~box states
    in
    match view with
    | Value.Pair { fst = b; snd = Value.View { assoc = entries; _ }; _ } ->
        unfold (Some b) entries
    | Value.View { assoc = entries; _ } -> unfold None entries
    | Value.Pair _ | Value.Unit | Value.Bool _ | Value.Int _ | Value.Frac _
    | Value.Str _ ->
        invalid_arg "State_protocol: malformed view"

let protocol spec =
  Protocol.make ~name:spec.name ~rounds:spec.rounds
    ~alpha:(fun ~round i view ->
      spec.box_input ~round i (state_of_view spec ~round:(round - 1) i view))
    ~decide:(fun i view ->
      spec.output i (state_of_view spec ~round:spec.rounds i view))
    ()
