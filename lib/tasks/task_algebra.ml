let project k sigma =
  Simplex.map_values
    (fun _ v ->
      match (k, v) with
      | 1, Value.Pair { fst = a; _ } -> a
      | 2, Value.Pair { snd = b; _ } -> b
      | _, Value.Pair _ -> invalid_arg "Task_algebra.project: component must be 1 or 2"
      | _ ->
          invalid_arg "Task_algebra.project: non-pair value")
    sigma

let pair_simplices a b =
  if Simplex.ids a <> Simplex.ids b then
    invalid_arg "Task_algebra.pair_simplices: color sets differ";
  Simplex.map_values (fun i va -> Value.pair va (Simplex.value i b)) a

let pair_complexes ca cb =
  (* All zips of an a-facet with a b-facet over the same color set. *)
  Complex.of_facets
    (List.concat_map
       (fun fa ->
         List.filter_map
           (fun fb ->
             if Simplex.ids fa = Simplex.ids fb then Some (pair_simplices fa fb)
             else None)
           (Complex.facets cb))
       (Complex.facets ca))

let product a b =
  if a.Task.arity <> b.Task.arity then
    invalid_arg "Task_algebra.product: arities differ";
  Task.make
    ~name:(Printf.sprintf "(%s)x(%s)" a.Task.name b.Task.name)
    ~arity:a.Task.arity
    ~inputs:(lazy (pair_complexes (Task.inputs a) (Task.inputs b)))
    ~outputs:(lazy (pair_complexes (Task.outputs a) (Task.outputs b)))
    ~delta:(fun sigma ->
      pair_complexes
        (Task.delta a (project 1 sigma))
        (Task.delta b (project 2 sigma)))

let relax task ~with_delta ~name =
  Task.make ~name ~arity:task.Task.arity ~inputs:task.Task.inputs
    ~outputs:task.Task.outputs ~delta:with_delta
