type t = {
  name : string;
  arity : int;
  inputs : Complex.t Lazy.t;
  outputs : Complex.t Lazy.t;
  delta : Simplex.t -> Complex.t;
}

(* Δ is a pure function of σ, and interned simplices make σ an O(1)
   hash key, so every task memoizes its Δ images: closure enumeration,
   local-task validation and the solver request the same handful of
   Δ(σ) complexes thousands of times per run.  The table is guarded by
   a per-task mutex with the compute outside the lock — Δ is pure, so
   a racing double-compute is benign and either insert wins.  The lock
   nesting is strictly task → sub-task (algebra compositions call the
   component tasks' deltas), never cyclic. *)
let make ~name ~arity ~inputs ~outputs ~delta =
  let lock = Mutex.create () in
  let cache = Simplex.Tbl.create 16 in
  let delta sigma =
    match Mutex.protect lock (fun () -> Simplex.Tbl.find_opt cache sigma) with
    | Some c -> c
    | None ->
        let c = delta sigma in
        Mutex.protect lock (fun () ->
            match Simplex.Tbl.find_opt cache sigma with
            | Some c -> c
            | None ->
                Simplex.Tbl.add cache sigma c;
                c)
  in
  { name; arity; inputs; outputs; delta }

let inputs t = Lazy.force t.inputs
let outputs t = Lazy.force t.outputs
let delta t sigma = t.delta sigma
let input_simplices t = Complex.all_simplices (inputs t)
let restrict_inputs t c = { t with inputs = lazy c }
let with_name name t = { t with name }

let delta_candidates t sigma color =
  Complex.vertices_of_color color (t.delta sigma)

let delta_equal_on a b simplices =
  List.for_all (fun s -> Complex.equal (a.delta s) (b.delta s)) simplices

let delta_subset_on a b simplices =
  List.for_all (fun s -> Complex.subcomplex (a.delta s) (b.delta s)) simplices

let carrier_map_on t simplices =
  let all =
    List.sort_uniq Simplex.compare (List.concat_map Simplex.faces simplices)
  in
  List.for_all
    (fun sigma ->
      List.for_all
        (fun sigma' -> Complex.subcomplex (t.delta sigma') (t.delta sigma))
        (Simplex.faces sigma))
    all

let chromatic_output_sets t sigma =
  let rec combos = function
    | [] -> [ [] ]
    | i :: rest ->
        let tails = combos rest in
        List.concat_map
          (fun v -> List.map (fun tl -> v :: tl) tails)
          (delta_candidates t sigma i)
  in
  List.map Simplex.of_vertices (combos (Simplex.ids sigma))
