let is_valid_tau task ~sigma ~tau =
  Simplex.ids tau = Simplex.ids sigma
  &&
  let d = Task.delta task sigma in
  List.for_all (fun v -> Complex.mem_vertex v d) (Simplex.vertices tau)

let make task ~sigma ~tau =
  if not (is_valid_tau task ~sigma ~tau) then
    invalid_arg "Local_task.make: tau is not a chromatic set of V(Delta(sigma))";
  let big_delta = Task.delta task sigma in
  let delta tau' =
    match Simplex.vertices tau' with
    | [ v ] -> Complex.of_simplex (Simplex.singleton v)
    | _ -> Complex.proj (Simplex.ids tau') big_delta
  in
  Task.make
    ~name:(Printf.sprintf "local(%s)" task.Task.name)
    ~arity:task.Task.arity
    ~inputs:(lazy (Complex.of_simplex tau))
    ~outputs:(lazy big_delta)
    ~delta
