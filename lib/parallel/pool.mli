(** A fixed-size domain pool with work-stealing scheduling for
    data-parallel fan-outs.

    The pool is dependency-free (OCaml 5 [Domain] + [Mutex] /
    [Condition] + [Atomic] only) and built for the repo's three hot
    fan-outs: closure enumeration over candidate chromatic sets,
    adversary sweeps over schedules, and the per-input protocol/Δ
    construction pass of the solver.

    {2 Determinism guarantee}

    Results are collected in input order, so for a pure (or
    commutatively-effectful) [f], [map f l] returns exactly
    [List.map f l] regardless of the job count.  Parallelism must
    never change a reproduced table: callers rely on this to keep
    experiment output byte-identical across [SPEEDUP_JOBS] settings.
    Work distribution is by pre-split index chunks dealt into
    per-participant deques (owners pop LIFO, thieves steal FIFO
    halves); every chunk writes its results to disjoint indices, so
    the steal schedule can never reorder or change an output.

    {2 Job count}

    The job count is resolved, in order of precedence, from
    {!set_jobs}, the [SPEEDUP_JOBS] environment variable, and
    [Domain.recommended_domain_count ()].  With one job every
    combinator takes the plain sequential [List] path — no domains are
    spawned, no arrays allocated — so [SPEEDUP_JOBS=1] is
    byte-for-byte the pre-parallel behaviour.

    [SPEEDUP_JOBS] must be a positive integer; [0], negatives, and
    garbage raise [Invalid_argument] at resolution time rather than
    silently picking some other job count.  An unset or
    empty/whitespace-only value means "use the default" (empty counts
    as unset because [Unix.putenv] cannot remove a variable).  The
    [speedup] CLI validates the variable once at startup so users get
    the error before any work starts.

    {2 Granularity}

    Every combinator takes an optional [?grain]: the minimum number of
    items per chunk.  A fan-out of [len <= grain] items runs on the
    calling domain (the sequential path) — sub-millisecond work items
    are cheaper to run inline than to hand to another domain, so call
    sites that know their per-item cost pass a grain and tiny sweeps
    never cross a domain boundary.  [SPEEDUP_GRAIN] (validated like
    [SPEEDUP_JOBS]) raises the floor globally; the effective grain is
    the max of the two.  Above the cutoff, chunk sizes adapt to the
    input: ~8 chunks per participant, never below the grain.

    {2 Nesting and re-entrancy}

    A function running inside a pool batch (worker domain or the
    submitting domain, which participates in its own batch) that calls
    back into [map]/[filter_map]/[for_all] gets the sequential path:
    nested parallelism is flattened rather than deadlocking on the
    pool.  Worker domains are spawned lazily on the first parallel
    batch and live for the rest of the session, idling on a condition
    variable between batches.

    {2 Resident processes}

    Because worker domains live for the rest of the process, a
    long-running server pays the spawn cost once.  The
    one-batch-at-a-time discipline ([submit_lock]) makes concurrent
    submitters (e.g. several query-daemon worker domains calling into
    {!Closure}) safe: their batches serialize, and a submitter that is
    itself a pool participant flattens to the sequential path instead
    of deadlocking.  See the server test-suite, which exercises the
    pool under a resident multi-domain process at several job
    counts. *)

val jobs : unit -> int
(** The effective job count (≥ 1): the {!set_jobs} override if any,
    else [SPEEDUP_JOBS] when set, else
    [Domain.recommended_domain_count ()].
    @raise Invalid_argument when [SPEEDUP_JOBS] is set (and non-empty)
    but is not a positive integer. *)

val set_jobs : int option -> unit
(** [set_jobs (Some n)] overrides the job count for subsequent
    batches; [set_jobs None] drops the override, returning to the
    environment.  Used by the bench harness to compare job counts
    within one process.
    @raise Invalid_argument when [n < 1]. *)

val in_parallel_region : unit -> bool
(** Whether the calling domain is currently executing pool work (a
    worker domain, or the submitter inside one of its own batches).
    Combinators consult this to flatten nested parallelism. *)

val register_flush : (unit -> unit) -> unit
(** Register a chunk-boundary hook.  Every batch participant runs all
    registered hooks after each chunk it executes, so a client with a
    per-domain write-behind cache (the {!Closure} memo) publishes its
    pending entries once per chunk — and, because the last chunk a
    participant runs is followed by a hook round before the batch's
    closing handshake, everything produced inside a batch is published
    before the submitting combinator returns.  Hooks must not raise
    and must be cheap when there is nothing to flush; they run on the
    participant's own domain.  Registration is append-only and
    process-wide. *)

(** {2 Observability}

    Cumulative counters over all batches since process start (or the
    last {!reset_stats}).  The sequential path — [jobs () = 1], nested
    calls, fan-outs at or below the grain — executes no chunks and is
    deliberately invisible here: the counters measure domain-crossing
    work only, which is what contention regressions show up in. *)

type stats = {
  batches : int;  (** parallel batches submitted *)
  chunks : int;  (** chunks executed across all participants *)
  items : int;  (** work items covered by those chunks *)
  steals : int;  (** successful steal operations *)
  stolen_chunks : int;  (** chunks moved by those steals *)
  flushes : int;  (** chunk-boundary flush-hook rounds that ran *)
  domain_chunks : (int * int) list;
      (** chunks executed per participant slot, sorted by slot; slot 0
          is the first participant through the batch gate (usually the
          submitter), not a fixed physical domain *)
}

val stats : unit -> stats
(** A consistent snapshot of the counters.  Exact once no batch is in
    flight (participants merge their tallies at batch exit). *)

val reset_stats : unit -> unit
(** Zero all counters.  Test/bench plumbing. *)

val map : ?grain:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map: [map f l = List.map f l] for pure
    [f].  Work is pre-split into index chunks (≈ 8 per job, ≥ [grain]
    items each) dealt into per-participant deques; idle participants
    steal, so unevenly-priced items load-balance without a shared
    cursor.  If one or more applications of [f] raise, the first
    exception observed cancels the remaining chunks and is re-raised
    on the caller (with its backtrace). *)

val filter_map : ?grain:int -> ('a -> 'b option) -> 'a list -> 'b list
(** Order-preserving parallel filter_map, with the same distribution,
    cancellation, and exception contract as {!map}. *)

val filter : ?grain:int -> ('a -> bool) -> 'a list -> 'a list
(** Order-preserving parallel filter. *)

val for_all : ?grain:int -> ('a -> bool) -> 'a list -> bool
(** Parallel universal quantifier.  A [false] result cancels the
    remaining chunks (early exit), so [p] may be applied to fewer
    elements than the sequential [List.for_all] — or to more, since
    chunks already in flight complete; [p] must therefore be pure or
    effect-tolerant.  The boolean result is deterministic. *)
