(** A fixed-size domain pool for data-parallel fan-outs.

    The pool is dependency-free (OCaml 5 [Domain] + [Mutex] /
    [Condition] + [Atomic] only) and built for the repo's three hot
    fan-outs: closure enumeration over candidate chromatic sets,
    adversary sweeps over schedules, and the per-input protocol/Δ
    construction pass of the solver.

    {2 Determinism guarantee}

    Results are collected in input order, so for a pure (or
    commutatively-effectful) [f], [map f l] returns exactly
    [List.map f l] regardless of the job count.  Parallelism must
    never change a reproduced table: callers rely on this to keep
    experiment output byte-identical across [SPEEDUP_JOBS] settings.

    {2 Job count}

    The job count is resolved, in order of precedence, from
    {!set_jobs}, the [SPEEDUP_JOBS] environment variable, and
    [Domain.recommended_domain_count ()].  With one job every
    combinator takes the plain sequential [List] path — no domains are
    spawned, no arrays allocated — so [SPEEDUP_JOBS=1] is
    byte-for-byte the pre-parallel behaviour.

    [SPEEDUP_JOBS] must be a positive integer; [0], negatives, and
    garbage raise [Invalid_argument] at resolution time rather than
    silently picking some other job count.  An unset or
    empty/whitespace-only value means "use the default" (empty counts
    as unset because [Unix.putenv] cannot remove a variable).  The
    [speedup] CLI validates the variable once at startup so users get
    the error before any work starts.

    {2 Nesting and re-entrancy}

    A function running inside a pool batch (worker domain or the
    submitting domain, which participates in its own batch) that calls
    back into [map]/[filter_map]/[for_all] gets the sequential path:
    nested parallelism is flattened rather than deadlocking on the
    pool.  Worker domains are spawned lazily on the first parallel
    batch and live for the rest of the session, idling on a condition
    variable between batches.

    {2 Resident processes}

    Because worker domains live for the rest of the process, a
    long-running server pays the spawn cost once.  The
    one-batch-at-a-time discipline ([submit_lock]) makes concurrent
    submitters (e.g. several query-daemon worker domains calling into
    {!Closure}) safe: their batches serialize, and a submitter that is
    itself a pool participant flattens to the sequential path instead
    of deadlocking.  See the server test-suite, which exercises the
    pool under a resident multi-domain process at several job
    counts. *)

val jobs : unit -> int
(** The effective job count (≥ 1): the {!set_jobs} override if any,
    else [SPEEDUP_JOBS] when set, else
    [Domain.recommended_domain_count ()].
    @raise Invalid_argument when [SPEEDUP_JOBS] is set (and non-empty)
    but is not a positive integer. *)

val set_jobs : int option -> unit
(** [set_jobs (Some n)] overrides the job count for subsequent
    batches; [set_jobs None] drops the override, returning to the
    environment.  Used by the bench harness to compare job counts
    within one process.
    @raise Invalid_argument when [n < 1]. *)

val in_parallel_region : unit -> bool
(** Whether the calling domain is currently executing pool work (a
    worker domain, or the submitter inside one of its own batches).
    Combinators consult this to flatten nested parallelism. *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map: [map f l = List.map f l] for pure
    [f].  Work is distributed in contiguous chunks (≈ 4 per job) via
    an atomic cursor, so unevenly-priced items load-balance.  If one
    or more applications of [f] raise, the first exception observed
    cancels the remaining chunks and is re-raised on the caller (with
    its backtrace). *)

val filter_map : ('a -> 'b option) -> 'a list -> 'b list
(** Order-preserving parallel filter_map, with the same distribution,
    cancellation, and exception contract as {!map}. *)

val filter : ('a -> bool) -> 'a list -> 'a list
(** Order-preserving parallel filter. *)

val for_all : ('a -> bool) -> 'a list -> bool
(** Parallel universal quantifier.  A [false] result cancels the
    remaining chunks (early exit), so [p] may be applied to fewer
    elements than the sequential [List.for_all] — or to more, since
    chunks already in flight complete; [p] must therefore be pure or
    effect-tolerant.  The boolean result is deterministic. *)
