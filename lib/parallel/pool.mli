(** A fixed-size domain pool for data-parallel fan-outs.

    The pool is dependency-free (OCaml 5 [Domain] + [Mutex] /
    [Condition] + [Atomic] only) and built for the repo's three hot
    fan-outs: closure enumeration over candidate chromatic sets,
    adversary sweeps over schedules, and the per-input protocol/Δ
    construction pass of the solver.

    {2 Determinism guarantee}

    Results are collected in input order, so for a pure (or
    commutatively-effectful) [f], [map f l] returns exactly
    [List.map f l] regardless of the job count.  Parallelism must
    never change a reproduced table: callers rely on this to keep
    experiment output byte-identical across [SPEEDUP_JOBS] settings.

    {2 Job count}

    The job count is resolved, in order of precedence, from
    {!set_jobs}, the [SPEEDUP_JOBS] environment variable, and
    [Domain.recommended_domain_count ()].  With one job every
    combinator takes the plain sequential [List] path — no domains are
    spawned, no arrays allocated — so [SPEEDUP_JOBS=1] is
    byte-for-byte the pre-parallel behaviour.

    {2 Nesting and re-entrancy}

    A function running inside a pool batch (worker domain or the
    submitting domain, which participates in its own batch) that calls
    back into [map]/[filter_map]/[for_all] gets the sequential path:
    nested parallelism is flattened rather than deadlocking on the
    pool.  Worker domains are spawned lazily on the first parallel
    batch and live for the rest of the session, idling on a condition
    variable between batches. *)

val jobs : unit -> int
(** The effective job count (≥ 1): the {!set_jobs} override if any,
    else [SPEEDUP_JOBS] when it parses as a positive integer, else
    [Domain.recommended_domain_count ()]. *)

val set_jobs : int option -> unit
(** [set_jobs (Some n)] overrides the job count for subsequent
    batches (clamped to ≥ 1); [set_jobs None] drops the override,
    returning to the environment.  Used by the bench harness to
    compare job counts within one process. *)

val in_parallel_region : unit -> bool
(** Whether the calling domain is currently executing pool work (a
    worker domain, or the submitter inside one of its own batches).
    Combinators consult this to flatten nested parallelism. *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map: [map f l = List.map f l] for pure
    [f].  Work is distributed in contiguous chunks (≈ 4 per job) via
    an atomic cursor, so unevenly-priced items load-balance.  If one
    or more applications of [f] raise, the first exception observed
    cancels the remaining chunks and is re-raised on the caller (with
    its backtrace). *)

val filter_map : ('a -> 'b option) -> 'a list -> 'b list
(** Order-preserving parallel filter_map, with the same distribution,
    cancellation, and exception contract as {!map}. *)

val filter : ('a -> bool) -> 'a list -> 'a list
(** Order-preserving parallel filter. *)

val for_all : ('a -> bool) -> 'a list -> bool
(** Parallel universal quantifier.  A [false] result cancels the
    remaining chunks (early exit), so [p] may be applied to fewer
    elements than the sequential [List.for_all] — or to more, since
    chunks already in flight complete; [p] must therefore be pure or
    effect-tolerant.  The boolean result is deterministic. *)
