(* Fixed-size domain pool.

   Design: one batch at a time (serialized by [submit_lock]).  The
   submitter publishes a batch under [mutex], broadcasts, runs the
   batch body itself, then waits until every spawned worker has
   acknowledged the batch generation.  Workers idle in
   [Condition.wait] between batches, so an idle pool costs nothing.

   The batch body is self-limiting: an atomic [joined] gate admits at
   most [jobs] participants (the submitter plus workers, first come
   first served); workers beyond the gate acknowledge immediately.
   Within the body, an atomic cursor hands out contiguous chunks of
   the input array, each participant writing results to disjoint
   indices.  The mutex handshake at the end of the batch establishes
   the happens-before edge that makes those plain array writes visible
   to the submitter. *)

(* ---- job count resolution ---- *)

let override : int option Atomic.t = Atomic.make None

(* An unset or empty/whitespace-only SPEEDUP_JOBS means "use the
   default".  (Empty counts as unset because [Unix.putenv] cannot
   remove a variable, so "" is the only way a test or wrapper script
   can restore the unset state.)  Anything else must parse as a
   positive integer: rejecting 0, negatives, and garbage loudly beats
   silently falling back to a job count the user did not ask for. *)
let env_jobs () =
  match Sys.getenv_opt "SPEEDUP_JOBS" with
  | None -> None
  | Some s -> (
      let s = String.trim s in
      if s = "" then None
      else
        match int_of_string_opt s with
        | Some n when n >= 1 -> Some n
        | Some n ->
            invalid_arg
              (Printf.sprintf
                 "SPEEDUP_JOBS must be a positive integer, got %d" n)
        | None ->
            invalid_arg
              (Printf.sprintf
                 "SPEEDUP_JOBS must be a positive integer, got %S" s))

let jobs () =
  match Atomic.get override with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())

let set_jobs n =
  (match n with
  | Some n when n < 1 ->
      invalid_arg
        (Printf.sprintf "Pool.set_jobs: job count must be positive, got %d" n)
  | Some _ | None -> ());
  Atomic.set override n

(* ---- pool state ---- *)

let submit_lock = Mutex.create ()

(* All of the following are read/written under [mutex] only, except
   [workers], which is additionally written under [submit_lock] before
   the publishing lock round (see [ensure_workers]). *)
let mutex = Mutex.create ()
let cond_work = Condition.create ()
let cond_done = Condition.create ()
let generation = ref 0
let acks = ref 0
let workers = ref 0
let batch : (unit -> unit) option ref = ref None

let region_key = Domain.DLS.new_key (fun () -> false)
let in_parallel_region () = Domain.DLS.get region_key

let rec worker_loop my_gen =
  Mutex.lock mutex;
  let gen, body =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mutex)
      (fun () ->
        while !generation = my_gen do
          Condition.wait cond_work mutex
        done;
        (!generation, !batch))
  in
  (match body with Some run -> (try run () with _ -> ()) | None -> ());
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      incr acks;
      if !acks = !workers then Condition.signal cond_done);
  worker_loop gen

(* Called with [submit_lock] held, so [generation] cannot move: the
   captured generation is necessarily older than the batch about to be
   published, and the new worker will ack it. *)
let ensure_workers n =
  while !workers < n do
    incr workers;
    let g = Mutex.protect mutex (fun () -> !generation) in
    ignore
      (Domain.spawn (fun () ->
           Domain.DLS.set region_key true;
           worker_loop g))
  done

let run_batch ~participants run =
  Mutex.lock submit_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock submit_lock)
    (fun () ->
      ensure_workers (participants - 1);
      let nworkers =
        Mutex.protect mutex (fun () ->
            batch := Some run;
            incr generation;
            acks := 0;
            Condition.broadcast cond_work;
            !workers)
      in
      let saved = Domain.DLS.get region_key in
      Domain.DLS.set region_key true;
      (try run () with _ -> ());
      Domain.DLS.set region_key saved;
      Mutex.lock mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock mutex)
        (fun () ->
          while !acks < nworkers do
            Condition.wait cond_done mutex
          done;
          batch := None))

(* ---- chunked execution over an array ---- *)

(* [process ~lo ~hi] handles indices [lo, hi); it is never called
   concurrently on overlapping ranges.  The first exception cancels
   the remaining chunks and is re-raised on the submitter. *)
let parallel_chunks ~jobs:n ~len process =
  let chunk = max 1 ((len + (n * 4) - 1) / (n * 4)) in
  let nchunks = (len + chunk - 1) / chunk in
  let cursor = Atomic.make 0 in
  let joined = Atomic.make 0 in
  let stop = Atomic.make false in
  let error : (exn * Printexc.raw_backtrace) option Atomic.t =
    Atomic.make None
  in
  run_batch ~participants:n (fun () ->
      if Atomic.fetch_and_add joined 1 < n then begin
        let continue = ref true in
        while !continue && not (Atomic.get stop) do
          let c = Atomic.fetch_and_add cursor 1 in
          if c >= nchunks then continue := false
          else begin
            let lo = c * chunk in
            let hi = min len (lo + chunk) in
            try process ~lo ~hi ~stop
            with exn ->
              let bt = Printexc.get_raw_backtrace () in
              if Atomic.compare_and_set error None (Some (exn, bt)) then
                Atomic.set stop true
          end
        done
      end);
  match Atomic.get error with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ()

let sequential () = jobs () <= 1 || in_parallel_region ()

(* ---- combinators ---- *)

let map f l =
  if sequential () then List.map f l
  else
    let arr = Array.of_list l in
    let len = Array.length arr in
    if len <= 1 then List.map f l
    else begin
      let out = Array.make len None in
      parallel_chunks ~jobs:(min (jobs ()) len) ~len
        (fun ~lo ~hi ~stop ->
          for i = lo to hi - 1 do
            if not (Atomic.get stop) then out.(i) <- Some (f arr.(i))
          done);
      List.init len (fun i ->
          match out.(i) with Some v -> v | None -> assert false)
    end

let filter_map f l =
  if sequential () then List.filter_map f l
  else
    let arr = Array.of_list l in
    let len = Array.length arr in
    if len <= 1 then List.filter_map f l
    else begin
      let out = Array.make len None in
      parallel_chunks ~jobs:(min (jobs ()) len) ~len
        (fun ~lo ~hi ~stop ->
          for i = lo to hi - 1 do
            if not (Atomic.get stop) then out.(i) <- Some (f arr.(i))
          done);
      let rec collect i acc =
        if i < 0 then acc
        else
          match out.(i) with
          | Some (Some v) -> collect (i - 1) (v :: acc)
          | Some None -> collect (i - 1) acc
          | None -> assert false
      in
      collect (len - 1) []
    end

let filter p l =
  if sequential () then List.filter p l
  else filter_map (fun x -> if p x then Some x else None) l

let for_all p l =
  if sequential () then List.for_all p l
  else
    let arr = Array.of_list l in
    let len = Array.length arr in
    if len <= 1 then List.for_all p l
    else begin
      let ok = Atomic.make true in
      parallel_chunks ~jobs:(min (jobs ()) len) ~len
        (fun ~lo ~hi ~stop ->
          for i = lo to hi - 1 do
            if (not (Atomic.get stop)) && not (p arr.(i)) then begin
              Atomic.set ok false;
              Atomic.set stop true
            end
          done);
      Atomic.get ok
    end
