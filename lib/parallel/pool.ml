(* Fixed-size domain pool with work-stealing chunk scheduling.

   Design: one batch at a time (serialized by [submit_lock]).  The
   submitter publishes a batch under [mutex], broadcasts, runs the
   batch body itself, then waits until every spawned worker has
   acknowledged the batch generation.  Workers idle in
   [Condition.wait] between batches, so an idle pool costs nothing.

   The batch body is self-limiting: an atomic [joined] gate admits at
   most [jobs] participants (the submitter plus workers, first come
   first served) and assigns each a dense slot; workers beyond the
   gate acknowledge immediately.  Within the body, the input array is
   pre-split into chunks and the chunk ids are dealt into one deque
   per slot.  A participant drains its own deque from the back (LIFO,
   cache-warm); a participant whose deque is empty steals the front
   half of a victim's deque (FIFO, the coldest work) and runs it.
   Each chunk writes results to disjoint indices, so the schedule —
   who ran which chunk, in what order — never changes the output.
   The mutex handshake at the end of the batch establishes the
   happens-before edge that makes those plain array writes visible to
   the submitter. *)

(* ---- job count resolution ---- *)

let override : int option Atomic.t = Atomic.make None

(* An unset or empty/whitespace-only SPEEDUP_JOBS means "use the
   default".  (Empty counts as unset because [Unix.putenv] cannot
   remove a variable, so "" is the only way a test or wrapper script
   can restore the unset state.)  Anything else must parse as a
   positive integer: rejecting 0, negatives, and garbage loudly beats
   silently falling back to a job count the user did not ask for. *)
let env_positive name =
  match Sys.getenv_opt name with
  | None -> None
  | Some s -> (
      let s = String.trim s in
      if s = "" then None
      else
        match int_of_string_opt s with
        | Some n when n >= 1 -> Some n
        | Some n ->
            invalid_arg
              (Printf.sprintf "%s must be a positive integer, got %d" name n)
        | None ->
            invalid_arg
              (Printf.sprintf "%s must be a positive integer, got %S" name s))

let env_jobs () = env_positive "SPEEDUP_JOBS"

let jobs () =
  match Atomic.get override with
  | Some n -> n
  | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> Domain.recommended_domain_count ())

let set_jobs n =
  (match n with
  | Some n when n < 1 ->
      invalid_arg
        (Printf.sprintf "Pool.set_jobs: job count must be positive, got %d" n)
  | Some _ | None -> ());
  Atomic.set override n

(* ---- granularity resolution ---- *)

(* The grain is the minimum number of items a chunk may hold.  A
   fan-out of [len <= grain] items never crosses a domain boundary:
   sub-millisecond work items (Δ-membership set lookups, tiny
   schedule sweeps) are cheaper to run inline than to hand to another
   domain.  Call sites pass [?grain] where they know the per-item
   cost; SPEEDUP_GRAIN raises the floor globally for tuning. *)
let env_grain () = env_positive "SPEEDUP_GRAIN"

let effective_grain site =
  let env = match env_grain () with Some g -> g | None -> 1 in
  max env (match site with Some g when g >= 1 -> g | Some _ | None -> 1)

(* ---- pool state ---- *)

let submit_lock = Mutex.create ()

(* All of the following are read/written under [mutex] only, except
   [workers], which is additionally written under [submit_lock] before
   the publishing lock round (see [ensure_workers]). *)
let mutex = Mutex.create ()
let cond_work = Condition.create ()
let cond_done = Condition.create ()

let generation = ref 0
[@@lint.allow "R1: batch handshake state; every access is under [mutex]"]

let acks = ref 0
[@@lint.allow "R1: batch handshake state; every access is under [mutex]"]

let workers = ref 0
[@@lint.allow
  "R1: batch handshake state; written under [submit_lock] + [mutex] (see \
   ensure_workers), read under [mutex]"]
[@@lint.allow
  "R7: intentionally split locksets, confirmed by the analysis — grown \
   only under [submit_lock] (ensure_workers, one submitter at a time) and \
   compared under [mutex] by the ack handshake; the counter is monotone, \
   so a stale read can only under-count and the handshake re-checks under \
   [mutex]"]

let batch : (unit -> unit) option ref = ref None
[@@lint.allow "R1: batch handshake state; every access is under [mutex]"]

let region_key = Domain.DLS.new_key (fun () -> false)
[@@lint.allow
  "R1: deliberate per-domain flag marking 'inside a pool batch'; never \
   shared across domains, reset on the submitter after each batch"]

let in_parallel_region () = Domain.DLS.get region_key

(* ---- observability ---- *)

type stats = {
  batches : int;
  chunks : int;
  items : int;
  steals : int;
  stolen_chunks : int;
  flushes : int;
  domain_chunks : (int * int) list;
}

let stats_lock = Mutex.create ()

let st_batches = ref 0
[@@lint.allow "R1: stats accumulator; every access is under [stats_lock]"]

let st_chunks = ref 0
[@@lint.allow "R1: stats accumulator; every access is under [stats_lock]"]

let st_items = ref 0
[@@lint.allow "R1: stats accumulator; every access is under [stats_lock]"]

let st_steals = ref 0
[@@lint.allow "R1: stats accumulator; every access is under [stats_lock]"]

let st_stolen = ref 0
[@@lint.allow "R1: stats accumulator; every access is under [stats_lock]"]

let st_flushes = ref 0
[@@lint.allow "R1: stats accumulator; every access is under [stats_lock]"]

let st_domain : (int, int) Hashtbl.t = Hashtbl.create 8
[@@lint.allow "R1: stats accumulator; every access is under [stats_lock]"]

let stats () =
  Mutex.protect stats_lock (fun () ->
      {
        batches = !st_batches;
        chunks = !st_chunks;
        items = !st_items;
        steals = !st_steals;
        stolen_chunks = !st_stolen;
        flushes = !st_flushes;
        domain_chunks =
          List.sort
            (fun (a, _) (b, _) -> Int.compare a b)
            (Hashtbl.fold (fun slot n acc -> (slot, n) :: acc) st_domain []);
      })

let reset_stats () =
  Mutex.protect stats_lock (fun () ->
      st_batches := 0;
      st_chunks := 0;
      st_items := 0;
      st_steals := 0;
      st_stolen := 0;
      st_flushes := 0;
      Hashtbl.reset st_domain)

let merge_stats ~slot ~chunks ~items ~steals ~stolen ~flushes =
  if chunks > 0 || steals > 0 || flushes > 0 then
    Mutex.protect stats_lock (fun () ->
        st_chunks := !st_chunks + chunks;
        st_items := !st_items + items;
        st_steals := !st_steals + steals;
        st_stolen := !st_stolen + stolen;
        st_flushes := !st_flushes + flushes;
        Hashtbl.replace st_domain slot
          (chunks
          + match Hashtbl.find_opt st_domain slot with Some n -> n | None -> 0))

(* ---- chunk-boundary flush hooks ---- *)

(* Clients with per-domain write-behind caches (the Closure memo)
   register a hook; every participant runs the hooks after each chunk
   it executes, so batched publication happens once per chunk rather
   than once per work item, and everything a participant produced is
   published before the batch's closing handshake. *)
let flush_hooks : (unit -> unit) list Atomic.t = Atomic.make []

let register_flush f =
  let rec add () =
    let hooks = Atomic.get flush_hooks in
    if not (Atomic.compare_and_set flush_hooks hooks (f :: hooks)) then add ()
  in
  add ()

let run_flush_hooks () =
  match Atomic.get flush_hooks with
  | [] -> false
  | hooks ->
      List.iter (fun f -> f ()) hooks;
      true

let rec worker_loop my_gen =
  Mutex.lock mutex;
  let gen, body =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock mutex)
      (fun () ->
        while !generation = my_gen do
          Condition.wait cond_work mutex
        done;
        (!generation, !batch))
  in
  (match body with Some run -> (try run () with _ -> ()) | None -> ());
  Mutex.lock mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock mutex)
    (fun () ->
      incr acks;
      if !acks = !workers then Condition.signal cond_done);
  worker_loop gen

(* Called with [submit_lock] held, so [generation] cannot move: the
   captured generation is necessarily older than the batch about to be
   published, and the new worker will ack it. *)
let ensure_workers n =
  while !workers < n do
    incr workers;
    let g = Mutex.protect mutex (fun () -> !generation) in
    ignore
      (Domain.spawn (fun () ->
           Domain.DLS.set region_key true;
           worker_loop g))
  done

let run_batch ~participants run =
  Mutex.lock submit_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock submit_lock)
    (fun () ->
      ensure_workers (participants - 1);
      Mutex.protect stats_lock (fun () -> incr st_batches);
      let nworkers =
        Mutex.protect mutex (fun () ->
            batch := Some run;
            incr generation;
            acks := 0;
            Condition.broadcast cond_work;
            !workers)
      in
      let saved = Domain.DLS.get region_key in
      Domain.DLS.set region_key true;
      (try run () with _ -> ());
      Domain.DLS.set region_key saved;
      Mutex.lock mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock mutex)
        (fun () ->
          while !acks < nworkers do
            Condition.wait cond_done mutex
          done;
          batch := None))

(* ---- work-stealing deques over a pre-split chunk range ---- *)

(* Each slot owns the contiguous chunk-id range [lo, hi), packed into
   one immediate int (31 bits each half, far beyond any real chunk
   count).  The owner pops from the back (LIFO); thieves take the
   front half (FIFO).  [lo] only ever grows and [hi] only ever
   shrinks, so a single CAS per transition is race-free: competing
   transitions on the same state differ in the packed value and all
   but one retry against the updated range. *)
let pack lo hi = (lo lsl 31) lor hi
let unpack s = (s lsr 31, s land 0x7FFFFFFF)

let rec pop_back d =
  let s = Atomic.get d in
  let lo, hi = unpack s in
  if lo >= hi then None
  else if Atomic.compare_and_set d s (pack lo (hi - 1)) then Some (hi - 1)
  else pop_back d

(* Steal the front half, rounded up so a one-chunk deque is stealable. *)
let rec steal_front d =
  let s = Atomic.get d in
  let lo, hi = unpack s in
  let avail = hi - lo in
  if avail <= 0 then None
  else
    let k = (avail + 1) / 2 in
    if Atomic.compare_and_set d s (pack (lo + k) hi) then Some (lo, lo + k)
    else steal_front d

(* ---- chunked execution over an array ---- *)

(* [process ~lo ~hi] handles indices [lo, hi); it is never called
   concurrently on overlapping ranges.  The first exception cancels
   the remaining chunks and is re-raised on the submitter.  [grain]
   is the pre-resolved minimum chunk size; a fan-out that does not
   fill at least two chunks runs inline on the caller. *)
let parallel_chunks ~grain ~jobs:n ~len process =
  (* Target ~8 chunks per participant so the steal half-lives leave
     slack for imbalance, bounded below by the grain floor. *)
  let chunk = max grain (max 1 ((len + (n * 8) - 1) / (n * 8))) in
  let nchunks = (len + chunk - 1) / chunk in
  if nchunks <= 1 || n <= 1 then begin
    (* Below the parallelism cutoff: run inline, no domain boundary
       crossed, no batch handshake paid. *)
    let stop = Atomic.make false in
    process ~lo:0 ~hi:len ~stop
  end
  else begin
    let per = (nchunks + n - 1) / n in
    let deques =
      Array.init n (fun p ->
          let lo = min nchunks (p * per) in
          let hi = min nchunks ((p + 1) * per) in
          Atomic.make (pack lo hi))
    in
    let joined = Atomic.make 0 in
    let stop = Atomic.make false in
    let error : (exn * Printexc.raw_backtrace) option Atomic.t =
      Atomic.make None
    in
    run_batch ~participants:n (fun () ->
        let slot = Atomic.fetch_and_add joined 1 in
        if slot < n then begin
          let my_chunks = ref 0
          and my_items = ref 0
          and my_steals = ref 0
          and my_stolen = ref 0
          and my_flushes = ref 0 in
          let run_chunk c =
            incr my_chunks;
            let lo = c * chunk in
            let hi = min len (lo + chunk) in
            my_items := !my_items + (hi - lo);
            (try process ~lo ~hi ~stop
             with exn ->
               let bt = Printexc.get_raw_backtrace () in
               if Atomic.compare_and_set error None (Some (exn, bt)) then
                 Atomic.set stop true);
            if run_flush_hooks () then incr my_flushes
          in
          (* Phase 1: drain the own deque back-to-front. *)
          let continue = ref true in
          while !continue && not (Atomic.get stop) do
            match pop_back deques.(slot) with
            | Some c -> run_chunk c
            | None -> continue := false
          done;
          (* Phase 2: steal front halves from the other deques until
             a full scan finds everything drained. *)
          let rec steal_loop () =
            if not (Atomic.get stop) then begin
              let found = ref false in
              for k = 1 to n - 1 do
                if (not !found) && not (Atomic.get stop) then
                  match steal_front deques.((slot + k) mod n) with
                  | Some (a, b) ->
                      found := true;
                      incr my_steals;
                      my_stolen := !my_stolen + (b - a);
                      let c = ref a in
                      while !c < b && not (Atomic.get stop) do
                        run_chunk !c;
                        incr c
                      done
                  | None -> ()
              done;
              if !found then steal_loop ()
            end
          in
          steal_loop ();
          merge_stats ~slot ~chunks:!my_chunks ~items:!my_items
            ~steals:!my_steals ~stolen:!my_stolen ~flushes:!my_flushes
        end);
    match Atomic.get error with
    | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ()
  end

let sequential () = jobs () <= 1 || in_parallel_region ()

(* ---- combinators ---- *)

let map ?grain f l =
  let grain = effective_grain grain in
  if sequential () then List.map f l
  else
    let arr = Array.of_list l in
    let len = Array.length arr in
    if len <= grain || len <= 1 then List.map f l
    else begin
      let out = Array.make len None in
      parallel_chunks ~grain ~jobs:(min (jobs ()) len) ~len
        (fun ~lo ~hi ~stop ->
          for i = lo to hi - 1 do
            if not (Atomic.get stop) then out.(i) <- Some (f arr.(i))
          done);
      List.init len (fun i ->
          match out.(i) with Some v -> v | None -> assert false)
    end

let filter_map ?grain f l =
  let grain = effective_grain grain in
  if sequential () then List.filter_map f l
  else
    let arr = Array.of_list l in
    let len = Array.length arr in
    if len <= grain || len <= 1 then List.filter_map f l
    else begin
      let out = Array.make len None in
      parallel_chunks ~grain ~jobs:(min (jobs ()) len) ~len
        (fun ~lo ~hi ~stop ->
          for i = lo to hi - 1 do
            if not (Atomic.get stop) then out.(i) <- Some (f arr.(i))
          done);
      let rec collect i acc =
        if i < 0 then acc
        else
          match out.(i) with
          | Some (Some v) -> collect (i - 1) (v :: acc)
          | Some None -> collect (i - 1) acc
          | None -> assert false
      in
      collect (len - 1) []
    end

let filter ?grain p l =
  if sequential () then List.filter p l
  else filter_map ?grain (fun x -> if p x then Some x else None) l

let for_all ?grain p l =
  let grain = effective_grain grain in
  if sequential () then List.for_all p l
  else
    let arr = Array.of_list l in
    let len = Array.length arr in
    if len <= grain || len <= 1 then List.for_all p l
    else begin
      let ok = Atomic.make true in
      parallel_chunks ~grain ~jobs:(min (jobs ()) len) ~len
        (fun ~lo ~hi ~stop ->
          for i = lo to hi - 1 do
            if (not (Atomic.get stop)) && not (p arr.(i)) then begin
              Atomic.set ok false;
              Atomic.set stop true
            end
          done);
      Atomic.get ok
    end
