type alpha = round:int -> int -> Value.t -> Value.t

let alpha_const v ~round:_ _i _view = v
let alpha_of_beta beta ~round:_ i _view = Value.Bool (beta i)

let one_round_facets ~box ~alpha ~round sigma =
  let ids = Simplex.ids sigma in
  let inputs =
    List.map (fun i -> (i, alpha ~round i (Simplex.value i sigma))) ids
  in
  let facets =
    List.fold_left
      (fun acc part ->
        let views = Ordered_partition.views part in
        List.fold_left
          (fun acc outcome ->
            let facet =
              Simplex.of_vertices
                (List.map
                   (fun (i, seen) ->
                     let view =
                       Value.view
                         (List.map (fun j -> (j, Simplex.value j sigma)) seen)
                     in
                     let b =
                       match List.assoc_opt i outcome with
                       | Some b -> b
                       | None -> invalid_arg "Augmented: outcome misses a process"
                     in
                     Vertex.make i (Value.pair b view))
                   views)
            in
            Simplex.Set.add facet acc)
          acc
          (box.Black_box.outcomes ~part ~inputs))
      Simplex.Set.empty
      (Ordered_partition.enumerate ids)
  in
  Simplex.Set.elements facets

let one_round ~box ~alpha ~round complex =
  Complex.of_facets
    (List.concat_map (one_round_facets ~box ~alpha ~round) (Complex.facets complex))

let protocol_complex ~box ~alpha sigma t =
  if t < 0 then invalid_arg "Augmented.protocol_complex: negative round count";
  let rec go r acc =
    if r > t then acc else go (r + 1) (one_round ~box ~alpha ~round:r acc)
  in
  go 1 (Complex.of_simplex sigma)

let solo_vertex ~box ~alpha ~round sigma i =
  let x = Simplex.value i sigma in
  let b = Black_box.solo_output box i (alpha ~round i x) in
  Vertex.make i (Value.pair b (Model.solo_view i x))

let strip_box v =
  match Vertex.value v with
  | Value.Pair { snd = view; _ } -> Vertex.make (Vertex.color v) view
  | Value.Unit | Value.Bool _ | Value.Int _ | Value.Frac _ | Value.Str _
  | Value.View _ ->
      invalid_arg "Augmented.strip_box: not an augmented vertex"
