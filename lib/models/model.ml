type t = Collect | Snapshot | Immediate

let name = function
  | Collect -> "collect"
  | Snapshot -> "snapshot"
  | Immediate -> "immediate"

let of_string = function
  | "collect" -> Some Collect
  | "snapshot" -> Some Snapshot
  | "immediate" | "iis" | "is" -> Some Immediate
  | _ -> None

let filter_of = function
  | Collect -> fun _ -> true
  | Snapshot -> Collect_matrix.is_snapshot
  | Immediate -> Collect_matrix.is_immediate

(* Both caches below are hit from domain-pool workers (closure
   enumeration calls [one_round_facets], the solver's per-input pass
   calls [protocol_complex]), so table accesses are mutex-guarded.
   Values are pure functions of their keys: when two domains race on a
   miss, both compute the same result and either insert wins. *)
let cache_lock = Mutex.create ()

(* Matrices depend only on the color set; memoize per (model, ids). *)
let matrix_cache : (string * int list, Collect_matrix.t list) Hashtbl.t =
  Hashtbl.create 32
[@@lint.allow "R1: accesses guarded by cache_lock (see comment above)"]

let matrices m ids =
  let ids = List.sort_uniq Stdlib.compare ids in
  let key = (name m, ids) in
  match Mutex.protect cache_lock (fun () -> Hashtbl.find_opt matrix_cache key) with
  | Some r -> r
  | None ->
      (* Enumerate outside the lock: misses are the expensive case. *)
      let all = Collect_matrix.enumerate ids in
      let r = List.filter (filter_of m) all in
      Mutex.protect cache_lock (fun () ->
          match Hashtbl.find_opt matrix_cache key with
          | Some r -> r
          | None ->
              Hashtbl.add matrix_cache key r;
              r)

let facet_of_views sigma views =
  Simplex.of_vertices
    (List.map
       (fun (i, seen) ->
         let view =
           Value.view (List.map (fun j -> (j, Simplex.value j sigma)) seen)
         in
         Vertex.make i view)
       views)

(* One-round facet lists, keyed by (model, σ).  The local-task solver
   asks for the same handful of faces for every candidate τ of an
   enumeration, and interned simplices make σ an O(1) key, so the
   rebuild (each facet re-interns every view and vertex) is paid once
   per σ. *)
let one_round_cache : (string, Simplex.t list Simplex.Map.t ref) Hashtbl.t =
  Hashtbl.create 8
[@@lint.allow "R1: accesses guarded by cache_lock; lock-free slot reads recompute pure values"]

let one_round_facets m sigma =
  let slot =
    Mutex.protect cache_lock (fun () ->
        match Hashtbl.find_opt one_round_cache (name m) with
        | Some r -> r
        | None ->
            let r = ref Simplex.Map.empty in
            Hashtbl.add one_round_cache (name m) r;
            r)
  in
  (* Lock-free slot read: a stale miss recomputes a pure value. *)
  match Simplex.Map.find_opt sigma !slot with
  | Some fs -> fs
  | None ->
      let ids = Simplex.ids sigma in
      let facets =
        List.fold_left
          (fun acc mat ->
            Simplex.Set.add (facet_of_views sigma (Collect_matrix.views mat)) acc)
          Simplex.Set.empty (matrices m ids)
      in
      let fs = Simplex.Set.elements facets in
      Mutex.protect cache_lock (fun () ->
          slot := Simplex.Map.add sigma fs !slot);
      fs

let one_round m complex =
  Complex.of_facets (List.concat_map (one_round_facets m) (Complex.facets complex))

(* P^(t)(σ) facet lists, keyed by (model, t, σ). *)
let protocol_cache : (string * int, Complex.t Simplex.Map.t ref) Hashtbl.t =
  Hashtbl.create 32
[@@lint.allow "R1: accesses guarded by cache_lock; lock-free slot reads recompute pure values"]

let rec protocol_complex m sigma t =
  if t < 0 then invalid_arg "Model.protocol_complex: negative round count";
  if t = 0 then Complex.of_simplex sigma
  else
    let key = (name m, t) in
    let slot =
      Mutex.protect cache_lock (fun () ->
          match Hashtbl.find_opt protocol_cache key with
          | Some r -> r
          | None ->
              let r = ref Simplex.Map.empty in
              Hashtbl.add protocol_cache key r;
              r)
    in
    (* Lock-free slot read: a stale miss recomputes a pure value. *)
    match Simplex.Map.find_opt sigma !slot with
    | Some c -> c
    | None ->
        (* Recurses, so the lock must not be held here. *)
        let prev = protocol_complex m sigma (t - 1) in
        let c = one_round m prev in
        Mutex.protect cache_lock (fun () ->
            slot := Simplex.Map.add sigma c !slot);
        c

let solo_view i x = Value.view [ (i, x) ]
let solo_vertex sigma i = Vertex.make i (solo_view i (Simplex.value i sigma))

let chi ~from_ ~to_ v =
  assert (Simplex.ids from_ = Simplex.ids to_);
  let rec relabel value =
    match value with
    | Value.View { assoc; _ } ->
        Value.view (List.map (fun (j, _) -> (j, Simplex.value j to_)) assoc)
    | Value.Pair { fst = a; snd = b; _ } -> Value.pair a (relabel b)
    | Value.Unit | Value.Bool _ | Value.Int _ | Value.Frac _ | Value.Str _ ->
        value
  in
  ignore from_;
  Vertex.make (Vertex.color v) (relabel (Vertex.value v))
