(* Hash-consed combinator terms over one-round run sets.  The
   canonical rendering produced by the smart constructors is the
   interning key: normalization (flattening, operand sorting,
   idempotence, absorption) happens at construction, so equality is
   physical and every downstream cache (facet memo, closure memo,
   cert store) keys on the canonical name. *)

type repr =
  | Iis
  | Snapshot
  | Collect
  | Conc of int
  | Solo of int
  | Inter of t list
  | Union of t list
  | Adv of t * int list list
  | Resil of t * int
  | Obf of t * int

and t = { id : int; name : string; repr : repr }

(* The intern table is hit from domain-pool workers (closure
   enumeration resolves algebra ops, the cert store re-parses term
   names during verification), so accesses are mutex-guarded.  Nodes
   are pure functions of their canonical name: when two domains race
   on a miss, either insert wins. *)
let intern_lock = Mutex.create ()

let table : (string, t) Hashtbl.t = Hashtbl.create 64
[@@lint.allow "R1: accesses guarded by intern_lock (see comment above)"]

let next_id = Atomic.make 0

let intern name repr =
  Mutex.protect intern_lock (fun () ->
      match Hashtbl.find_opt table name with
      | Some t -> t
      | None ->
          let t = { id = Atomic.fetch_and_add next_id 1; name; repr } in
          Hashtbl.add table name t;
          t)

let to_string t = t.name
let equal a b = a.id = b.id
let compare a b = String.compare a.name b.name
let pp fmt t = Format.pp_print_string fmt t.name
let interned_nodes () = Mutex.protect intern_lock (fun () -> Hashtbl.length table)

(* {1 Smart constructors} *)

let iis = intern "iis" Iis
let snapshot = intern "snapshot" Snapshot
let collect = intern "collect" Collect

let conc k =
  if k < 1 then invalid_arg "Algebra.conc: k < 1";
  intern (Printf.sprintf "(conc %d)" k) (Conc k)

let solo d =
  if d < 1 then invalid_arg "Algebra.solo: d < 1";
  intern (Printf.sprintf "(solo %d)" d) (Solo d)

(* Syntactic lattice entailment, Whitman-style: [le a b] soundly
   approximates "the run set of [a] is contained in the run set of [b]
   on every instance", using only the inter/union lattice structure —
   never the semantics of base terms (it does not know that the IIS
   runs are snapshot runs, for example).  Structurally recursive: each
   branch descends into an operand of one side. *)
let rec le a b =
  equal a b
  || (match a.repr with
     | Inter xs -> List.exists (fun x -> le x b) xs
     | Union xs -> List.for_all (fun x -> le x b) xs
     | _ -> false)
  || (match b.repr with
     | Union ys -> List.exists (fun y -> le a y) ys
     | Inter ys -> List.for_all (fun y -> le a y) ys
     | _ -> false)

(* [conj_le xs b]: the conjunction of [xs] entails [b] (∧xs ≤ b). *)
let rec conj_le xs b =
  List.exists (fun x -> le x b) xs
  || (match b.repr with
     | Union ys -> List.exists (fun y -> conj_le xs y) ys
     | Inter ys -> List.for_all (fun y -> conj_le xs y) ys
     | _ -> false)

(* [disj_ge xs a]: the disjunction of [xs] covers [a] (a ≤ ∨xs). *)
let rec disj_ge xs a =
  List.exists (fun x -> le a x) xs
  || (match a.repr with
     | Inter ys -> List.exists (fun y -> disj_ge xs y) ys
     | Union ys -> List.for_all (fun y -> disj_ge xs y) ys
     | _ -> false)

(* Normalization of a variadic lattice operation: flatten nested
   occurrences, sort operands by canonical name and drop duplicates
   (commutativity + associativity + idempotence), then drop operands
   entailed by the remaining ones (generalized absorption: for inter
   an operand implied by the conjunction of the others, for union one
   covered by the disjunction of the others — x ⊓ (x ⊔ y) = x and
   dually fall out for arbitrary x, including x the flattening has
   dissolved).  Pruning is sequential against the surviving set, so
   the list stays non-empty, and it processes the longest rendering
   first: two operands can be mutually redundant given the rest
   (flattening x into x ⊓ (x ⊔ y) makes x's own parts entail x ⊔ y
   and vice versa), and dropping in any other order can keep the
   larger operand, yielding a non-minimal normal form that breaks the
   absorption laws.  [redundant] is monotone in its hypothesis set, so
   an operand kept against the full list is kept against the final
   survivors too: the survivor set is a prune fixpoint and a pruned
   rendering re-normalizes to itself, which keeps [parse ∘ to_string]
   the identity. *)
let normalize_operands ~tag ~flatten ~redundant ~build ts =
  if ts = [] then invalid_arg (Printf.sprintf "Algebra.%s: empty operand list" tag);
  let ts = List.concat_map flatten ts in
  let ts = List.sort_uniq (fun a b -> String.compare a.name b.name) ts in
  let longest_first a b =
    match Int.compare (String.length b.name) (String.length a.name) with
    | 0 -> String.compare b.name a.name
    | c -> c
  in
  let rec prune kept = function
    | [] -> List.sort (fun a b -> String.compare a.name b.name) kept
    | u :: rest ->
        if redundant (List.rev_append kept rest) u then prune kept rest
        else prune (u :: kept) rest
  in
  match prune [] (List.sort longest_first ts) with
  | [ t ] -> t
  | ts ->
      intern
        (Printf.sprintf "(%s %s)" tag (String.concat " " (List.map to_string ts)))
        (build ts)

let inter ts =
  normalize_operands ~tag:"inter"
    ~flatten:(fun t -> match t.repr with Inter us -> us | _ -> [ t ])
    ~redundant:(fun others u -> conj_le others u)
    ~build:(fun ts -> Inter ts)
    ts

let union ts =
  normalize_operands ~tag:"union"
    ~flatten:(fun t -> match t.repr with Union us -> us | _ -> [ t ])
    ~redundant:(fun others u -> disj_ge others u)
    ~build:(fun ts -> Union ts)
    ts

let adv t fronts =
  if fronts = [] then invalid_arg "Algebra.adv: empty front list";
  let fronts = List.map (List.sort_uniq Int.compare) fronts in
  if List.exists (fun s -> s = []) fronts then
    invalid_arg "Algebra.adv: empty front";
  let fronts = List.sort_uniq Stdlib.compare fronts in
  let render s = "(" ^ String.concat " " (List.map string_of_int s) ^ ")" in
  intern
    (Printf.sprintf "(adv %s (%s))" t.name
       (String.concat " " (List.map render fronts)))
    (Adv (t, fronts))

let resil t k =
  if k < 0 then invalid_arg "Algebra.resil: k < 0";
  intern (Printf.sprintf "(resil %s %d)" t.name k) (Resil (t, k))

let obf t k =
  if k < 1 then invalid_arg "Algebra.obf: k < 1";
  intern (Printf.sprintf "(obf %s %d)" t.name k) (Obf (t, k))

(* {1 Parser}

   A minimal s-expression reader for the surface grammar; kept local
   so the library depends on nothing above lib/models (lib/cert parses
   term names during certificate verification and must be able to link
   against this). *)

type sexp = A of string | L of sexp list

let tokenize s =
  let n = String.length s in
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match s.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1) acc
      | '(' -> go (i + 1) (`Lp :: acc)
      | ')' -> go (i + 1) (`Rp :: acc)
      | _ ->
          let j = ref i in
          while
            !j < n
            && not
                 (match s.[!j] with
                 | ' ' | '\t' | '\n' | '\r' | '(' | ')' -> true
                 | _ -> false)
          do
            incr j
          done;
          go !j (`Atom (String.sub s i (!j - i)) :: acc)
  in
  go 0 []

let read_sexp tokens =
  let rec one = function
    | [] -> Error "unexpected end of input"
    | `Atom a :: rest -> Ok (A a, rest)
    | `Rp :: _ -> Error "unexpected ')'"
    | `Lp :: rest ->
        let rec items acc rest =
          match rest with
          | [] -> Error "unclosed '('"
          | `Rp :: rest -> Ok (L (List.rev acc), rest)
          | _ -> (
              match one rest with
              | Ok (s, rest) -> items (s :: acc) rest
              | Error _ as e -> e)
        in
        items [] rest
  in
  match one tokens with
  | Ok (s, []) -> Ok s
  | Ok (_, _ :: _) -> Error "trailing input after term"
  | Error _ as e -> e

let int_arg ctx = function
  | A a -> (
      match int_of_string_opt a with
      | Some k -> Ok k
      | None -> Error (Printf.sprintf "%s: expected an integer, got %S" ctx a))
  | L _ -> Error (Printf.sprintf "%s: expected an integer" ctx)

let rec term_of_sexp = function
  | A ("iis" | "immediate" | "is") -> Ok iis
  | A "snapshot" -> Ok snapshot
  | A "collect" -> Ok collect
  | A a ->
      Error
        (Printf.sprintf
           "unknown base model %S (expected iis, snapshot or collect)" a)
  | L [ A "conc"; k ] -> Result.map conc (int_arg "conc" k)
  | L [ A "solo"; d ] -> Result.map solo (int_arg "solo" d)
  | L (A "inter" :: args) -> Result.map inter (terms_of_sexps "inter" args)
  | L (A "union" :: args) -> Result.map union (terms_of_sexps "union" args)
  | L [ A "adv"; t; L fronts ] ->
      Result.bind (term_of_sexp t) (fun t ->
          Result.map (adv t) (fronts_of_sexps fronts))
  | L [ A "resil"; t; k ] ->
      Result.bind (term_of_sexp t) (fun t ->
          Result.map (resil t) (int_arg "resil" k))
  | L [ A "obf"; t; k ] ->
      Result.bind (term_of_sexp t) (fun t ->
          Result.map (obf t) (int_arg "obf" k))
  | L (A op :: _) ->
      Error
        (Printf.sprintf
           "malformed %S (expected (conc K), (solo D), (inter T ...), (union \
            T ...), (adv T ((I ...) ...)), (resil T K) or (obf T K))"
           op)
  | L _ -> Error "expected an operator symbol after '('"

and terms_of_sexps tag args =
  if args = [] then Error (Printf.sprintf "%s: needs at least one operand" tag)
  else
    List.fold_right
      (fun s acc ->
        Result.bind (term_of_sexp s) (fun t ->
            Result.map (fun ts -> t :: ts) acc))
      args (Ok [])

and fronts_of_sexps fronts =
  if fronts = [] then Error "adv: needs at least one front"
  else
    List.fold_right
      (fun s acc ->
        match s with
        | L ids ->
            Result.bind
              (List.fold_right
                 (fun s acc ->
                   Result.bind (int_arg "adv front" s) (fun i ->
                       Result.map (fun is -> i :: is) acc))
                 ids (Ok []))
              (fun ids ->
                if ids = [] then Error "adv: empty front"
                else Result.map (fun fs -> ids :: fs) acc)
        | A _ -> Error "adv: a front is a parenthesized list of process ids")
      fronts (Ok [])

let parse s =
  match read_sexp (tokenize s) with
  | Error e -> Error (Printf.sprintf "parse error in model term: %s" e)
  | Ok sexp -> (
      try term_of_sexp sexp
      with Invalid_argument msg -> Error msg)

(* {1 Semantics} *)

(* The front of a one-round facet: the processes whose view id-set is
   ⊆-minimal (no other view is a strict subset of theirs).  On IS runs
   this is exactly the first concurrency class. *)
let front f =
  let views =
    List.map
      (fun v -> (Vertex.color v, Value.view_ids (Vertex.value v)))
      (Simplex.vertices f)
  in
  let subset a b = List.for_all (fun x -> List.mem x b) a in
  List.filter_map
    (fun (i, seen) ->
      if
        List.exists
          (fun (_, seen') ->
            List.length seen' < List.length seen && subset seen' seen)
          views
      then None
      else Some i)
    views
  |> List.sort_uniq Int.compare

(* Facet lists keyed by (term, σ), mirroring Model.one_round_cache:
   the closure pipeline asks for the same σ across an enumeration, and
   interned terms and simplices make the key O(1). *)
let facet_cache : (string, Simplex.t list Simplex.Map.t ref) Hashtbl.t =
  Hashtbl.create 16
[@@lint.allow "R1: accesses guarded by intern_lock; lock-free slot reads recompute pure values"]

let rec facets t sigma =
  let slot =
    Mutex.protect intern_lock (fun () ->
        match Hashtbl.find_opt facet_cache t.name with
        | Some r -> r
        | None ->
            let r = ref Simplex.Map.empty in
            Hashtbl.add facet_cache t.name r;
            r)
  in
  (* Lock-free slot read: a stale miss recomputes a pure value. *)
  match Simplex.Map.find_opt sigma !slot with
  | Some fs -> fs
  | None ->
      (* Recurses through sub-terms, so the lock must not be held. *)
      let fs = List.sort_uniq Simplex.compare (compute t sigma) in
      Mutex.protect intern_lock (fun () -> slot := Simplex.Map.add sigma fs !slot);
      fs

and compute t sigma =
  match t.repr with
  | Iis -> Model.one_round_facets Model.Immediate sigma
  | Snapshot -> Model.one_round_facets Model.Snapshot sigma
  | Collect -> Model.one_round_facets Model.Collect sigma
  | Conc k -> Affine.k_concurrency k sigma
  | Solo d -> Affine.d_solo d sigma
  | Inter ts -> (
      match List.map (fun u -> Simplex.Set.of_list (facets u sigma)) ts with
      | [] -> assert false
      | s :: rest ->
          Simplex.Set.elements (List.fold_left Simplex.Set.inter s rest))
  | Union ts ->
      List.fold_left
        (fun acc u -> Simplex.Set.union acc (Simplex.Set.of_list (facets u sigma)))
        Simplex.Set.empty ts
      |> Simplex.Set.elements
  | Adv (u, fronts) ->
      List.filter (fun f -> List.mem (front f) fronts) (facets u sigma)
  | Resil (u, k) ->
      let n = Simplex.card sigma in
      List.filter
        (fun f ->
          List.for_all
            (fun v -> List.length (Value.view_ids (Vertex.value v)) >= n - k)
            (Simplex.vertices f))
        (facets u sigma)
  | Obf (u, k) ->
      List.filter (fun f -> List.length (front f) <= k) (facets u sigma)

let one_round t c =
  Complex.of_facets (List.concat_map (facets t) (Complex.facets c))

let rec protocol_complex t sigma r =
  if r < 0 then invalid_arg "Algebra.protocol_complex: negative round count";
  if r = 0 then Complex.of_simplex sigma
  else one_round t (protocol_complex t sigma (r - 1))

let allows_solo t sigma = Affine.allows_solo (facets t) sigma
