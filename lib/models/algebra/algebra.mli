(** A combinator algebra over one-round run sets (docs/MODELS.md).

    Following the model-as-run-subset view of the generalized
    asynchronous computability literature, a term of the algebra
    denotes, for each input simplex σ, a set of one-round facets — a
    subset of the write-collect runs over σ.  Base terms are the
    hard-coded models (write-collect, snapshot, IIS, affine
    k-concurrency, d-solo); combinators intersect, unite, and restrict
    run sets.  [facets] compiles any term down to the same
    [Model.one_round_facets] shape, so Closure, Solvability, Adversary
    and the speedup checks run over algebra terms unchanged.

    Terms are hash-consed on their canonical rendering: the smart
    constructors normalize (flattening, operand sorting, idempotence,
    absorption), so syntactically different but normalizer-equal terms
    are physically equal, print identically, and share memo-table and
    cert-store entries.  Canonical names never contain ['#'], so
    [Round_op.algebra] ops are persistent in the certificate store. *)

type t
(** A hash-consed algebra term in canonical form. *)

(** {1 Base models} *)

val iis : t
(** Immediate snapshot (the IIS one-round run set). *)

val snapshot : t
(** Atomic snapshot (regular collects). *)

val collect : t
(** Unconstrained write-collect. *)

val conc : int -> t
(** [conc k]: affine k-concurrency — IS runs whose blocks have size
    ≤ k ([Affine.k_concurrency]).
    @raise Invalid_argument if [k < 1]. *)

val solo : int -> t
(** [solo d]: the d-solo model — IIS runs plus executions where up to
    [d] processes run concurrently solo ([Affine.d_solo]); [solo 1] is
    IIS itself.
    @raise Invalid_argument if [d < 1]. *)

(** {1 Combinators} *)

val inter : t list -> t
(** Run-set intersection (facet-wise, per input simplex).
    @raise Invalid_argument on the empty list. *)

val union : t list -> t
(** Run-set union.
    @raise Invalid_argument on the empty list. *)

val adv : t -> int list list -> t
(** [adv t fronts] keeps the runs whose {e front} — the set of
    processes with ⊆-minimal views, i.e. the processes no one else is
    seen strictly less than — is one of [fronts].  This is adversary
    restriction by allowed first concurrency classes.
    @raise Invalid_argument on an empty front list or an empty front. *)

val resil : t -> int -> t
(** [resil t k]: t-resilience with [t = k] — keeps the runs of [t] in
    which every process sees at least [n − k] processes (at most [k]
    appear faulty to anyone), where [n] is the number of participating
    processes.  [resil t (n−1)] keeps every run (wait-freedom).
    Monotone in [k].
    @raise Invalid_argument if [k < 0]. *)

val obf : t -> int -> t
(** [obf t k]: k-obstruction-freedom — keeps the runs whose front has
    size ≤ [k] (at most [k] processes run concurrently ahead of
    everyone).
    @raise Invalid_argument if [k < 1]. *)

(** {1 Canonical form, parsing} *)

val to_string : t -> string
(** Canonical s-expression rendering; the hash-consing key.  Two terms
    are normalizer-equal iff their renderings are equal. *)

val parse : string -> (t, string) result
(** Parses the surface syntax of docs/MODELS.md:
    {v
      term  ::= iis | immediate | is | snapshot | collect
              | (conc K) | (solo D)
              | (inter term term ...) | (union term term ...)
              | (adv term ((I ...) ...))
              | (resil term K) | (obf term K)
    v}
    The result is normalized, so [parse] accepts non-canonical input
    and [to_string] of the result is canonical. *)

val equal : t -> t -> bool
(** O(1): terms are hash-consed on canonical form. *)

val compare : t -> t -> int
(** Total order by canonical rendering (deterministic across runs). *)

val pp : Format.formatter -> t -> unit

val interned_nodes : unit -> int
(** Number of distinct terms interned so far (diagnostic). *)

(** {1 Semantics} *)

val facets : t -> Simplex.t -> Simplex.t list
(** The run set of the term over σ, as one-round facets in the shape
    of [Model.one_round_facets] (sorted, duplicate-free; memoized per
    (term, σ)).  Every facet is chromatic on σ's color set. *)

val one_round : t -> Complex.t -> Complex.t
(** The one-round operator Ξ₁ of the term on a complex. *)

val protocol_complex : t -> Simplex.t -> int -> Complex.t
(** [protocol_complex t σ r] iterates [one_round] r times from σ. *)

val allows_solo : t -> Simplex.t -> bool
(** Whether every participating process has a solo run over σ — the
    hypothesis of the speedup theorem ([Affine.allows_solo]). *)
