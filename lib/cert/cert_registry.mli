(** Reconstructing tasks, one-round operators, and iterated models from
    the names certificates carry.

    Task constructors encode their parameters in the task name (the
    same convention the closure memo table relies on), so a standalone
    checker — [speedup cert verify], with nothing but a certificate
    file — can rebuild the named task and re-validate the witness.
    Names it cannot resolve (session-unique β operators, tasks whose
    value sets are not part of the name) yield [None], which [Cert.verify]
    reports as [Unsupported] rather than [Invalid]. *)

val task_of_name : string -> Task.t option
(** Resolves [binary-consensus(n=_)], [consensus(n=_)] (values
    [1..n]), [relaxed-consensus(n=_)] (values [{0,1}]),
    [<eps>-AA(n=_,m=_)], [liberal-<eps>-AA(n=_,m=_)],
    [<k>-set-agreement(n=_)] (values [0..k]), and
    [adaptive-renaming(n=_)] (p participants pick distinct names in
    [1..2p-1]). *)

val known_task : string -> bool
(** Whether {!task_of_name} resolves the name.  Producers use this as a
    persistence gate: only certificates whose task is reconstructible
    from its name are worth writing to the store — names outside the
    registry (randomly synthesized tasks, closure-of tasks) need not
    denote the same task in another session, so their entries would
    only be quarantined on the next read. *)

val facets_of_op : string -> (Simplex.t -> Simplex.t list) option
(** Resolves the plain models ([collect], [snapshot], [immediate]),
    [immediate+test&set], [<k>-concurrency], [<d>-solo], and any
    canonical model-algebra rendering (docs/MODELS.md) — the names
    [Round_op.algebra] operators carry. *)

val protocol_of_model : string -> (Simplex.t -> int -> Complex.t) option
(** Resolves the plain iterated models and canonical algebra terms to
    their [P^(t)]. *)

val env : Cert.env
(** The three resolvers bundled for [Cert.verify]. *)
