let log_src = Logs.Src.create "speedup.cert.store" ~doc:"Certificate store"

module Log = (val Logs.src_log log_src : Logs.LOG)

type stats = { hits : int; misses : int; writes : int; corrupt : int }

(* Atomic: load/save run from domain-pool workers during parallel
   closure enumeration, and the counts must stay exact. *)
let hits = Atomic.make 0
let misses = Atomic.make 0
let writes = Atomic.make 0
let corrupt = Atomic.make 0

let stats () =
  {
    hits = Atomic.get hits;
    misses = Atomic.get misses;
    writes = Atomic.get writes;
    corrupt = Atomic.get corrupt;
  }

let reset_stats () =
  Atomic.set hits 0;
  Atomic.set misses 0;
  Atomic.set writes 0;
  Atomic.set corrupt 0

(* ---- replication counters and hooks ----

   The store itself never opens a socket; lib/fleet installs the two
   hooks below.  The counters live here (not in lib/fleet) so the
   daemon's stats reply and the SPEEDUP_STATS line can report them
   without a server → fleet dependency. *)

type repl_stats = {
  pushes : int;  (* entries successfully pushed to a peer *)
  push_failures : int;  (* failed or dropped push attempts *)
  pulls : int;  (* entries fetched from a peer on a local miss *)
  pull_misses : int;  (* misses no peer could serve either *)
  installs : int;  (* peer entries that re-verified and were installed *)
  rejects : int;  (* peer entries that failed verification *)
}

let repl_pushes = Atomic.make 0
let repl_push_failures = Atomic.make 0
let repl_pulls = Atomic.make 0
let repl_pull_misses = Atomic.make 0
let repl_installs = Atomic.make 0
let repl_rejects = Atomic.make 0

let repl_stats () =
  {
    pushes = Atomic.get repl_pushes;
    push_failures = Atomic.get repl_push_failures;
    pulls = Atomic.get repl_pulls;
    pull_misses = Atomic.get repl_pull_misses;
    installs = Atomic.get repl_installs;
    rejects = Atomic.get repl_rejects;
  }

let reset_repl_stats () =
  List.iter
    (fun c -> Atomic.set c 0)
    [
      repl_pushes; repl_push_failures; repl_pulls; repl_pull_misses;
      repl_installs; repl_rejects;
    ]

let note_push () = Atomic.incr repl_pushes
let note_push_failure () = Atomic.incr repl_push_failures
let note_pull () = Atomic.incr repl_pulls
let note_pull_miss () = Atomic.incr repl_pull_misses
let note_install () = Atomic.incr repl_installs
let note_reject () = Atomic.incr repl_rejects

(* Atomic: the hooks are installed/cleared by the fleet layer while
   pool workers and server worker domains call [load]/[save]. *)
let on_save_hook : (string -> Cert_sexp.t -> unit) option Atomic.t =
  Atomic.make None

let on_miss_hook : (string -> Cert_sexp.t option) option Atomic.t =
  Atomic.make None

let set_on_save f = Atomic.set on_save_hook f
let set_on_miss f = Atomic.set on_miss_hook f

(* [None] = no override yet (consult the environment); [Some None] =
   explicitly disabled; [Some (Some d)] = explicit root.  Atomic: the
   override may be toggled while pool workers consult [dir]. *)
let override : string option option Atomic.t = Atomic.make None

let set_dir d = Atomic.set override (Some d)
let unset_dir () = Atomic.set override None

let dir () =
  match Atomic.get override with
  | Some d -> d
  | None -> (
      match Sys.getenv_opt "CERT_CACHE_DIR" with
      | Some d when String.length d > 0 -> Some d
      | Some _ | None -> None)

let enabled () = dir () <> None

let shard_of_key key = if String.length key >= 2 then String.sub key 0 2 else "00"

let path_of_key root key =
  Filename.concat (Filename.concat root (shard_of_key key)) (key ^ ".cert")

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Sys.mkdir p 0o755 with Sys_error _ -> ()
    end
  in
  go path

let read_file path =
  try
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  with Sys_error _ | End_of_file -> None

let quarantine_path path = path ^ ".quarantined"

let quarantine_file path =
  Atomic.incr corrupt;
  Log.warn (fun m -> m "quarantining corrupt store entry %s" path);
  try Sys.rename path (quarantine_path path) with Sys_error _ -> ()

let quarantine key =
  match dir () with
  | None -> ()
  | Some root ->
      let path = path_of_key root key in
      if Sys.file_exists path then quarantine_file path

(* [load_local] never consults the pull-on-miss hook: it is the read
   the hook's own fetch path (and the peer serving a [cert-pull]) uses,
   so a miss can never recurse into another pull. *)
let load_local key =
  match dir () with
  | None -> None
  | Some root -> (
      let path = path_of_key root key in
      if not (Sys.file_exists path) then begin
        Atomic.incr misses;
        None
      end
      else
        match read_file path with
        | None ->
            Atomic.incr misses;
            None
        | Some contents -> (
            match Cert_sexp.of_string contents with
            | Ok sexp ->
                Atomic.incr hits;
                Some sexp
            | Error msg ->
                Log.warn (fun m -> m "unparseable entry %s: %s" path msg);
                quarantine_file path;
                Atomic.incr misses;
                None))

let load key =
  match load_local key with
  | Some _ as hit -> hit
  | None -> (
      match Atomic.get on_miss_hook with
      | None -> None
      | Some pull -> if enabled () then pull key else None)

let mem key =
  match dir () with
  | None -> false
  | Some root -> Sys.file_exists (path_of_key root key)

(* Atomic: concurrent writers in one process must never share a
   temporary file name.  Across processes the pid disambiguates; the
   final [Sys.rename] is atomic either way, so concurrent writers of
   the same key race benignly — last rename wins with identical
   content. *)
let tmp_counter = Atomic.make 0

(* [install] is [save] without the push hook: replication installs go
   through it so a pulled entry's write can never push right back
   (push → install → push recursion). *)
let install ~key sexp =
  match dir () with
  | None -> ()
  | Some root -> (
      let path = path_of_key root key in
      let shard = Filename.dirname path in
      mkdir_p shard;
      let tmp =
        Filename.concat shard
          (Printf.sprintf ".tmp.%d.%d" (Unix.getpid ())
             (Atomic.fetch_and_add tmp_counter 1))
      in
      try
        let oc = open_out_bin tmp in
        Fun.protect
          ~finally:(fun () -> close_out_noerr oc)
          (fun () -> output_string oc (Cert_sexp.to_string sexp));
        Sys.rename tmp path;
        Atomic.incr writes
      with Sys_error msg ->
        Log.warn (fun m -> m "failed to store %s: %s" path msg);
        (try Sys.remove tmp with Sys_error _ -> ()))

let save ~key sexp =
  install ~key sexp;
  if enabled () then
    match Atomic.get on_save_hook with
    | None -> ()
    | Some push -> push key sexp

let entries () =
  match dir () with
  | None -> []
  | Some root ->
      if not (Sys.file_exists root && Sys.is_directory root) then []
      else
        Sys.readdir root |> Array.to_list
        |> List.concat_map (fun shard ->
               let shard_path = Filename.concat root shard in
               if not (Sys.is_directory shard_path) then []
               else
                 Sys.readdir shard_path |> Array.to_list
                 |> List.filter_map (fun file ->
                        if Filename.check_suffix file ".cert" then
                          Some
                            ( Filename.chop_suffix file ".cert",
                              Filename.concat shard_path file )
                        else None))
        |> List.sort compare

let gc ~keep =
  match dir () with
  | None -> 0
  | Some root ->
      let removed = ref 0 in
      let remove path =
        try
          Sys.remove path;
          incr removed
        with Sys_error _ -> ()
      in
      (* Quarantined and temporary leftovers first. *)
      (if Sys.file_exists root && Sys.is_directory root then
         Sys.readdir root |> Array.iter
         @@ fun shard ->
         let shard_path = Filename.concat root shard in
         if Sys.is_directory shard_path then
           Sys.readdir shard_path |> Array.iter
           @@ fun file ->
           if
             Filename.check_suffix file ".quarantined"
             || String.length file >= 4 && String.sub file 0 4 = ".tmp"
           then remove (Filename.concat shard_path file));
      List.iter
        (fun (key, path) ->
          match read_file path with
          | None -> remove path
          | Some contents -> (
              match Cert_sexp.of_string contents with
              | Error _ -> remove path
              | Ok sexp -> if not (keep ~key sexp) then remove path))
        (entries ());
      !removed
