(** Proof certificates: serializable, independently checkable evidence
    for the results the engine computes.

    Every expensive verdict — a closure membership τ ∈ Δ'(σ) with its
    one-round decision map (the Figure 2 witness), a full Δ'(σ)
    enumeration, a solver run, a fixed-point check (Lemma 1 /
    Corollary 1), an impossibility obstruction — can be packaged as a
    certificate, persisted in the content-addressed store
    ([Cert.Store]), shipped, and re-validated by [verify] in
    milliseconds without rerunning any search.

    What [verify] guarantees, by kind:
    - {b Membership} (member, with witness): the witness map is
      chromatic, total on the one-round complex of every face of τ,
      and sends each of its facets into the local task's Δ — exactly
      the solvability constraints of Definition 2, checked directly.
    - {b Membership} (member, zero-round): τ is a simplex of Δ(σ).
    - {b Enumeration}: each listed member passes the membership check,
      and Δ(σ) ⊆ the members (the closure always contains Δ).
    - {b Solution} (solvable): the decision map is chromatic and sends
      every facet of [P^(rounds)(σ)] into Δ(σ) for each recorded input.
    - {b Fixed_point}: the recorded Δ'(σ) facets form exactly Δ(σ) for
      every recorded σ.
    - {b Unsolvable}: the combinatorial obstruction is re-checked
      (disconnection re-searched, Sperner labelings re-sampled).

    - {b Equivalence}: both term names parse as canonical model-algebra
      terms, the pair is in canonical order, and the verdict equals the
      conjunction of the recorded probe agreements.
    - {b Atlas}: every cell's operator and task resolve in the
      registry, the task name is canonical, and the recorded keys are
      exactly the [Q_delta] content addresses of the task's input
      simplices — recomputed, without enumeration.  Whether the keyed
      entries are present and valid is the store-level audit
      ([speedup atlas verify]).

    Negative facts (a membership with [member = false], a solution with
    [verdict = false], the completeness of an enumeration, and the
    probe fingerprints of an equivalence verdict) are consequences of
    an exhausted search; they carry no compact witness and are only
    structurally validated — the store's versioned keys scope how far
    they are trusted.  See docs/CERTIFICATES.md. *)

module Sexp = Cert_sexp
module Codec = Cert_codec
module Store = Cert_store

val version : string
(** Engine version baked into every key and certificate.  Bump it
    whenever the semantics of any producer changes: old entries stop
    matching any key and [gc] collects them. *)

type membership = {
  op_name : string;  (** one-round operator (must identify semantics) *)
  task_name : string;
  sigma : Simplex.t;
  tau : Simplex.t;
  member : bool;
  witness : Simplicial_map.t option;
      (** the one-round decision map of the local task [Π_{τ,σ}];
          [None] for zero-round memberships (τ ∈ Δ(σ)) and
          non-members *)
}

type enumeration = {
  op_name : string;
  task_name : string;
  sigma : Simplex.t;
  members : (Simplex.t * Simplicial_map.t option) list;
      (** every τ ∈ Δ'(σ), with its witness when one round is needed *)
}

type solution = {
  model_name : string;
  task_name : string;
  rounds : int;
  inputs : Simplex.t list;
  verdict : bool;
  map : Simplicial_map.t option;  (** the decision map when solvable *)
}

type fixed_point = {
  op_name : string;
  task_name : string;
  per_sigma : (Simplex.t * Simplex.t list) list;
      (** σ ↦ facets of Δ'(σ); a fixed point iff each equals Δ(σ) *)
}

type obstruction =
  | Disconnected of { complex : Complex.t; u : Vertex.t; v : Vertex.t }
      (** [u] and [v] lie in distinct components of the 1-skeleton —
          the connectivity obstruction behind the Corollary 1 /
          FLP-style arguments *)
  | Sperner of { complex : Complex.t; seed : int; samples : int }
      (** sampled carrier-respecting labelings all have an odd rainbow
          count — the Sperner obstruction on which the closure
          technique has no grip (E14) *)

type unsolvable = {
  task_name : string;
  rounds : int;
  reason : obstruction;
}

type equivalence = {
  lhs : string;  (** canonical algebra rendering, [lhs < rhs] *)
  rhs : string;
  n : int;  (** instance bound of the battery (Equiv.decide) *)
  equivalent : bool;
  probes : (string * string * string) list;
      (** (probe label, lhs fingerprint, rhs fingerprint); equivalent
          iff every probe's fingerprints agree *)
}

type atlas_cell = {
  cell_op : string;  (** operator name, registry-resolvable *)
  cell_task : string;  (** canonical task name, registry-resolvable *)
  cell_keys : string list;
      (** the [Q_delta] store key of every input simplex of the task,
          in [Task.input_simplices] order *)
}

type atlas = {
  atlas_name : string;
  atlas_cells : atlas_cell list;
      (** the coverage manifest of a precomputed closure atlas
          ([speedup atlas build], docs/FLEET.md) *)
}

type t =
  | Membership of membership
  | Enumeration of enumeration
  | Solution of solution
  | Fixed_point of fixed_point
  | Unsolvable of unsolvable
  | Equivalence of equivalence
  | Atlas of atlas

val kind_name : t -> string
val subject : t -> string
(** Short human-readable description (task, operator, σ). *)

val encode : t -> Cert_sexp.t
val decode : Cert_sexp.t -> (t, string) result
(** Rejects unknown layouts and any version other than [version]. *)

val equal : t -> t -> bool

(** {1 Content-addressed keys}

    A certificate is stored under the digest of its {e query} — the
    question it answers, not the answer — so a consumer can compute the
    key before knowing the result.  The engine [version] is part of
    every key. *)

type query =
  | Q_delta of { op_name : string; task_name : string; sigma : Simplex.t }
  | Q_member of {
      op_name : string;
      task_name : string;
      sigma : Simplex.t;
      tau : Simplex.t;
    }
  | Q_solve of {
      model_name : string;
      task_name : string;
      rounds : int;
      inputs : Simplex.t list;
    }
  | Q_fixed_point of {
      op_name : string;
      task_name : string;
      sigmas : Simplex.t list;
    }
  | Q_unsolvable of { task_name : string; rounds : int }
  | Q_equiv of { lhs : string; rhs : string; n : int }
  | Q_atlas of { atlas_name : string }

val query_of : t -> query
val query_key : query -> string
val key : t -> string
(** [key c = query_key (query_of c)]. *)

(** {1 Verification} *)

type env = {
  task_of_name : string -> Task.t option;
  facets_of_op : string -> (Simplex.t -> Simplex.t list) option;
  protocol_of_model : string -> (Simplex.t -> int -> Complex.t) option;
}
(** How the checker resolves the names a certificate refers to.
    [Cert_registry.env] reconstructs the repository's standard tasks
    and operators from their names; a computation holding the live
    task/operator supplies them directly. *)

type error =
  | Unsupported of string
      (** the environment cannot resolve a name — not evidence of
          tampering *)
  | Invalid of string  (** the certificate fails its checks *)

val error_message : error -> string

val verify : env -> t -> (unit, error) result
(** Validates the certificate against the task/model it names,
    {e without} rerunning any search — only simplicial-map
    well-formedness, chromaticity, carrier containment, and
    Δ-membership checks. *)
