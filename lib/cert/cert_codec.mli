(** Canonical serialization of the topology types carried by
    certificates.

    Every encoder produces a canonical [Cert_sexp.t] (identical values
    encode to identical strings, so content addresses are stable), and
    every decoder revalidates the structural invariants on the way in:
    a decoded simplex goes through [Simplex.of_vertices] (distinct
    colors), a decoded view through [Value.view], a decoded map through
    [Simplicial_map.of_assoc].  Corrupt bytes therefore surface as
    [Decode_error], never as an ill-formed value. *)

exception Decode_error of string

val fail : ('a, unit, string, 'b) format4 -> 'a
(** Raises [Decode_error] with a formatted message. *)

val frac : Frac.t -> Cert_sexp.t
val frac_of : Cert_sexp.t -> Frac.t

val value : Value.t -> Cert_sexp.t
val value_of : Cert_sexp.t -> Value.t

val vertex : Vertex.t -> Cert_sexp.t
val vertex_of : Cert_sexp.t -> Vertex.t

val simplex : Simplex.t -> Cert_sexp.t
val simplex_of : Cert_sexp.t -> Simplex.t

val complex : Complex.t -> Cert_sexp.t
(** Encoded by its facet list. *)

val complex_of : Cert_sexp.t -> Complex.t

val simplicial_map : Simplicial_map.t -> Cert_sexp.t
(** Encoded by its graph. *)

val simplicial_map_of : Cert_sexp.t -> Simplicial_map.t

val int_of : Cert_sexp.t -> int
val bool_of : Cert_sexp.t -> bool
val string_of : Cert_sexp.t -> string

val digest : Cert_sexp.t -> string
(** Hex digest of the canonical rendering — the content address used
    for store keys. *)
