let try_scan name fmt k = try Some (Scanf.sscanf name fmt k) with
  | Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let first_some fs = List.find_map (fun f -> f ()) fs

let int_values k = List.init k (fun i -> Value.Int i)

let task_of_name name =
  first_some
    [
      (fun () ->
        try_scan name "binary-consensus(n=%d)" (fun n -> Consensus.binary ~n));
      (fun () ->
        try_scan name "relaxed-consensus(n=%d)" (fun n ->
            Consensus.relaxed ~n ~values:(int_values 2)));
      (fun () ->
        try_scan name "consensus(n=%d)" (fun n ->
            Consensus.multi ~n
              ~values:(List.init n (fun i -> Value.Int (i + 1)))));
      (fun () ->
        try_scan name "liberal-%d/%d-AA(n=%d,m=%d)" (fun a b n m ->
            Approx_agreement.liberal ~n ~m ~eps:(Frac.make a b)));
      (fun () ->
        try_scan name "liberal-%d-AA(n=%d,m=%d)" (fun a n m ->
            Approx_agreement.liberal ~n ~m ~eps:(Frac.of_int a)));
      (fun () ->
        try_scan name "%d/%d-AA(n=%d,m=%d)" (fun a b n m ->
            Approx_agreement.task ~n ~m ~eps:(Frac.make a b)));
      (fun () ->
        try_scan name "%d-AA(n=%d,m=%d)" (fun a n m ->
            Approx_agreement.task ~n ~m ~eps:(Frac.of_int a)));
      (fun () ->
        try_scan name "%d-set-agreement(n=%d)" (fun k n ->
            Set_agreement.task ~n ~k ~values:(int_values (k + 1))));
      (fun () ->
        try_scan name "adaptive-renaming(n=%d)" (fun n -> Renaming.task ~n));
    ]

let known_task name = task_of_name name <> None

(* A name resolves as an algebra term only when it is the canonical
   rendering: "iis" parses but canonically belongs to Model.of_string,
   and a non-canonical spelling (say "(inter snapshot iis)" for
   "(inter iis snapshot)") never appears as an operator name, so
   accepting it would let one store key denote two spellings. *)
let algebra_of_name name =
  match Algebra.parse name with
  | Ok term when String.equal (Algebra.to_string term) name -> Some term
  | Ok _ | Error _ -> None

let facets_of_op name =
  match Model.of_string name with
  | Some model -> Some (Model.one_round_facets model)
  | None ->
      first_some
        [
          (fun () ->
            if name = "immediate+test&set" then
              Some
                (Augmented.one_round_facets ~box:Black_box.test_and_set
                   ~alpha:(Augmented.alpha_const Value.Unit) ~round:1)
            else None);
          (fun () ->
            try_scan name "%d-concurrency" (fun k -> Affine.k_concurrency k));
          (fun () -> try_scan name "%d-solo" (fun d -> Affine.d_solo d));
          (fun () ->
            Option.map (fun term -> Algebra.facets term) (algebra_of_name name));
        ]

let protocol_of_model name =
  match Model.of_string name with
  | Some model -> Some (fun sigma rounds -> Model.protocol_complex model sigma rounds)
  | None ->
      Option.map
        (fun term sigma rounds -> Algebra.protocol_complex term sigma rounds)
        (algebra_of_name name)

let env = { Cert.task_of_name; facets_of_op; protocol_of_model }
