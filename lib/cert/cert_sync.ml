(* The trust boundary of replication: everything a peer sends goes
   through [install], which re-derives the content address and re-runs
   [Cert.verify] before anything touches the local store.  A peer can
   therefore at worst refuse to help — it can never plant an entry the
   local checker would not have produced itself. *)

let export key =
  match Cert_store.load_local key with
  | Some sexp -> Ok (Cert_sexp.to_string sexp)
  | None -> Error (Printf.sprintf "no entry for key %s" key)

let install ~key text =
  let ( let* ) = Result.bind in
  let reject msg =
    Cert_store.note_reject ();
    Error msg
  in
  match
    let* sexp = Cert_sexp.of_string text in
    let* cert = Cert.decode sexp in
    let actual = Cert.key cert in
    let* () =
      if String.equal actual key then Ok ()
      else
        Error
          (Printf.sprintf "content address mismatch: entry hashes to %s"
             actual)
    in
    (* Unsupported counts as a rejection here: replication only moves
       registry-resolvable entries, so a name this node cannot resolve
       is an entry it cannot vouch for. *)
    let* () =
      Result.map_error Cert.error_message (Cert.verify Cert_registry.env cert)
    in
    Ok cert
  with
  | Ok cert ->
      (* Canonical re-encode: the bytes installed are this node's
         rendering, never the peer's. *)
      Cert_store.install ~key (Cert.encode cert);
      Cert_store.note_install ();
      Ok cert
  | Error msg -> reject msg
