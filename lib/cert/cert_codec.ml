open Cert_sexp

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Decode_error msg)) fmt

let int_of = function
  | Atom s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None -> fail "bad integer %S" s)
  | List _ -> fail "expected integer atom"

let bool_of = function
  | Atom "true" -> true
  | Atom "false" -> false
  | Atom s -> fail "bad boolean %S" s
  | List _ -> fail "expected boolean atom"

let string_of = function
  | Atom s -> s
  | List _ -> fail "expected string atom"

let frac q = Atom (Frac.to_string q)

let frac_of = function
  | Atom s -> (
      match String.split_on_char '/' s with
      | [ n ] -> (
          match int_of_string_opt n with
          | Some n -> Frac.of_int n
          | None -> fail "bad fraction %S" s)
      | [ n; d ] -> (
          match (int_of_string_opt n, int_of_string_opt d) with
          | Some n, Some d when d <> 0 -> Frac.make n d
          | _ -> fail "bad fraction %S" s)
      | _ -> fail "bad fraction %S" s)
  | List _ -> fail "expected fraction atom"

let rec value = function
  | Value.Unit -> Atom "u"
  | Value.Bool b -> List [ Atom "b"; Atom (string_of_bool b) ]
  | Value.Int n -> List [ Atom "i"; Atom (string_of_int n) ]
  | Value.Frac q -> List [ Atom "q"; frac q ]
  | Value.Str s -> List [ Atom "s"; Atom s ]
  | Value.Pair { fst = a; snd = b; _ } -> List [ Atom "p"; value a; value b ]
  | Value.View { assoc; _ } ->
      List
        (Atom "w"
        :: List.map
             (fun (i, v) -> List [ Atom (string_of_int i); value v ])
             assoc)

let rec value_of = function
  | Atom "u" -> Value.Unit
  | List [ Atom "b"; b ] -> Value.Bool (bool_of b)
  | List [ Atom "i"; n ] -> Value.Int (int_of n)
  | List [ Atom "q"; q ] -> Value.Frac (frac_of q)
  | List [ Atom "s"; s ] -> Value.Str (string_of s)
  | List [ Atom "p"; a; b ] -> Value.pair (value_of a) (value_of b)
  | List (Atom "w" :: entries) ->
      Value.view
        (List.map
           (function
             | List [ i; v ] -> (int_of i, value_of v)
             | _ -> fail "bad view entry")
           entries)
  | s -> fail "bad value %s" (to_string s)

let vertex v =
  List
    [ Atom "v"; Atom (string_of_int (Vertex.color v)); value (Vertex.value v) ]

let vertex_of = function
  | List [ Atom "v"; color; v ] -> Vertex.make (int_of color) (value_of v)
  | s -> fail "bad vertex %s" (to_string s)

let simplex s = List (Atom "x" :: List.map vertex (Simplex.vertices s))

let simplex_of = function
  | List (Atom "x" :: vertices) ->
      Simplex.of_vertices (List.map vertex_of vertices)
  | s -> fail "bad simplex %s" (to_string s)

let complex c = List (Atom "c" :: List.map simplex (Complex.facets c))

let complex_of = function
  | List (Atom "c" :: facets) -> Complex.of_facets (List.map simplex_of facets)
  | s -> fail "bad complex %s" (to_string s)

let simplicial_map f =
  List
    (Atom "f"
    :: List.map
         (fun (v, w) -> List [ vertex v; vertex w ])
         (Simplicial_map.graph f))

let simplicial_map_of = function
  | List (Atom "f" :: pairs) ->
      Simplicial_map.of_assoc
        (List.map
           (function
             | List [ v; w ] -> (vertex_of v, vertex_of w)
             | _ -> fail "bad map entry")
           pairs)
  | s -> fail "bad simplicial map %s" (to_string s)

let digest sexp = Digest.to_hex (Digest.string (to_string sexp))
