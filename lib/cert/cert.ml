module Sexp = Cert_sexp
module Codec = Cert_codec
module Store = Cert_store
open Cert_sexp

let version = "speedup-cert/1"

type membership = {
  op_name : string;
  task_name : string;
  sigma : Simplex.t;
  tau : Simplex.t;
  member : bool;
  witness : Simplicial_map.t option;
}

type enumeration = {
  op_name : string;
  task_name : string;
  sigma : Simplex.t;
  members : (Simplex.t * Simplicial_map.t option) list;
}

type solution = {
  model_name : string;
  task_name : string;
  rounds : int;
  inputs : Simplex.t list;
  verdict : bool;
  map : Simplicial_map.t option;
}

type fixed_point = {
  op_name : string;
  task_name : string;
  per_sigma : (Simplex.t * Simplex.t list) list;
}

type obstruction =
  | Disconnected of { complex : Complex.t; u : Vertex.t; v : Vertex.t }
  | Sperner of { complex : Complex.t; seed : int; samples : int }

type unsolvable = { task_name : string; rounds : int; reason : obstruction }

type equivalence = {
  lhs : string;
  rhs : string;
  n : int;
  equivalent : bool;
  probes : (string * string * string) list;
}

type atlas_cell = {
  cell_op : string;
  cell_task : string;
  cell_keys : string list;
}

type atlas = { atlas_name : string; atlas_cells : atlas_cell list }

type t =
  | Membership of membership
  | Enumeration of enumeration
  | Solution of solution
  | Fixed_point of fixed_point
  | Unsolvable of unsolvable
  | Equivalence of equivalence
  | Atlas of atlas

let kind_name = function
  | Membership _ -> "membership"
  | Enumeration _ -> "enumeration"
  | Solution _ -> "solution"
  | Fixed_point _ -> "fixed-point"
  | Unsolvable _ -> "unsolvable"
  | Equivalence _ -> "equivalence"
  | Atlas _ -> "atlas"

let subject = function
  | Membership m ->
      Printf.sprintf "%s ⊢ %s ∈ Δ'[%s](%s): %b" m.task_name
        (Simplex.to_string m.tau) m.op_name (Simplex.to_string m.sigma)
        m.member
  | Enumeration e ->
      Printf.sprintf "%s ⊢ Δ'[%s](%s): %d members" e.task_name e.op_name
        (Simplex.to_string e.sigma) (List.length e.members)
  | Solution s ->
      Printf.sprintf "%s in %s, %d round(s): %s" s.task_name s.model_name
        s.rounds
        (if s.verdict then "solvable" else "unsolvable")
  | Fixed_point f ->
      Printf.sprintf "%s is a fixed point of CL[%s] on %d simplices"
        f.task_name f.op_name (List.length f.per_sigma)
  | Unsolvable u ->
      Printf.sprintf "%s unsolvable in %d round(s) (%s)" u.task_name u.rounds
        (match u.reason with
        | Disconnected _ -> "disconnection"
        | Sperner _ -> "Sperner")
  | Equivalence e ->
      Printf.sprintf "%s %s %s at n ≤ %d (%d probes)" e.lhs
        (if e.equivalent then "≡" else "≢")
        e.rhs e.n (List.length e.probes)
  | Atlas a ->
      Printf.sprintf "atlas %s: %d cell(s), %d closure key(s)" a.atlas_name
        (List.length a.atlas_cells)
        (List.fold_left
           (fun acc c -> acc + List.length c.cell_keys)
           0 a.atlas_cells)

(* ---- encoding ---- *)

let field name v = List [ Atom name; v ]
let field_list name vs = List (Atom name :: vs)

let opt_map = function
  | None -> Atom "none"
  | Some f -> Codec.simplicial_map f

let encode_obstruction = function
  | Disconnected { complex; u; v } ->
      List
        [
          Atom "disconnected"; Codec.complex complex; Codec.vertex u;
          Codec.vertex v;
        ]
  | Sperner { complex; seed; samples } ->
      List
        [
          Atom "sperner"; Codec.complex complex; Atom (string_of_int seed);
          Atom (string_of_int samples);
        ]

let encode_body = function
  | Membership m ->
      List
        [
          Atom "membership";
          field "op" (Atom m.op_name);
          field "task" (Atom m.task_name);
          field "sigma" (Codec.simplex m.sigma);
          field "tau" (Codec.simplex m.tau);
          field "member" (Atom (string_of_bool m.member));
          field "witness" (opt_map m.witness);
        ]
  | Enumeration e ->
      List
        [
          Atom "enumeration";
          field "op" (Atom e.op_name);
          field "task" (Atom e.task_name);
          field "sigma" (Codec.simplex e.sigma);
          field_list "members"
            (List.map
               (fun (tau, w) -> List [ Codec.simplex tau; opt_map w ])
               e.members);
        ]
  | Solution s ->
      List
        [
          Atom "solution";
          field "model" (Atom s.model_name);
          field "task" (Atom s.task_name);
          field "rounds" (Atom (string_of_int s.rounds));
          field_list "inputs" (List.map Codec.simplex s.inputs);
          field "verdict" (Atom (string_of_bool s.verdict));
          field "map" (opt_map s.map);
        ]
  | Fixed_point f ->
      List
        [
          Atom "fixed-point";
          field "op" (Atom f.op_name);
          field "task" (Atom f.task_name);
          field_list "entries"
            (List.map
               (fun (sigma, facets) ->
                 List [ Codec.simplex sigma; List (List.map Codec.simplex facets) ])
               f.per_sigma);
        ]
  | Unsolvable u ->
      List
        [
          Atom "unsolvable";
          field "task" (Atom u.task_name);
          field "rounds" (Atom (string_of_int u.rounds));
          field "obstruction" (encode_obstruction u.reason);
        ]
  | Equivalence e ->
      List
        [
          Atom "equivalence";
          field "lhs" (Atom e.lhs);
          field "rhs" (Atom e.rhs);
          field "n" (Atom (string_of_int e.n));
          field "equivalent" (Atom (string_of_bool e.equivalent));
          field_list "probes"
            (List.map
               (fun (label, l, r) -> List [ Atom label; Atom l; Atom r ])
               e.probes);
        ]
  | Atlas a ->
      List
        [
          Atom "atlas";
          field "name" (Atom a.atlas_name);
          field_list "cells"
            (List.map
               (fun c ->
                 List
                   [
                     Atom c.cell_op; Atom c.cell_task;
                     List (List.map (fun k -> Atom k) c.cell_keys);
                   ])
               a.atlas_cells);
        ]

let encode cert =
  List [ Atom "cert"; field "version" (Atom version); encode_body cert ]

(* ---- decoding ---- *)

let find_field name fields =
  let rec go = function
    | [] -> Codec.fail "missing field %s" name
    | List (Atom n :: rest) :: _ when n = name -> rest
    | _ :: tl -> go tl
  in
  go fields

let field1 name fields =
  match find_field name fields with
  | [ v ] -> v
  | _ -> Codec.fail "field %s expects one value" name

let opt_map_of = function
  | Atom "none" -> None
  | s -> Some (Codec.simplicial_map_of s)

let decode_obstruction = function
  | List [ Atom "disconnected"; c; u; v ] ->
      Disconnected
        {
          complex = Codec.complex_of c;
          u = Codec.vertex_of u;
          v = Codec.vertex_of v;
        }
  | List [ Atom "sperner"; c; seed; samples ] ->
      Sperner
        {
          complex = Codec.complex_of c;
          seed = Codec.int_of seed;
          samples = Codec.int_of samples;
        }
  | s -> Codec.fail "bad obstruction %s" (Cert_sexp.to_string s)

let decode_body = function
  | List (Atom "membership" :: fields) ->
      Membership
        {
          op_name = Codec.string_of (field1 "op" fields);
          task_name = Codec.string_of (field1 "task" fields);
          sigma = Codec.simplex_of (field1 "sigma" fields);
          tau = Codec.simplex_of (field1 "tau" fields);
          member = Codec.bool_of (field1 "member" fields);
          witness = opt_map_of (field1 "witness" fields);
        }
  | List (Atom "enumeration" :: fields) ->
      Enumeration
        {
          op_name = Codec.string_of (field1 "op" fields);
          task_name = Codec.string_of (field1 "task" fields);
          sigma = Codec.simplex_of (field1 "sigma" fields);
          members =
            List.map
              (function
                | List [ tau; w ] -> (Codec.simplex_of tau, opt_map_of w)
                | _ -> Codec.fail "bad enumeration member")
              (find_field "members" fields);
        }
  | List (Atom "solution" :: fields) ->
      Solution
        {
          model_name = Codec.string_of (field1 "model" fields);
          task_name = Codec.string_of (field1 "task" fields);
          rounds = Codec.int_of (field1 "rounds" fields);
          inputs = List.map Codec.simplex_of (find_field "inputs" fields);
          verdict = Codec.bool_of (field1 "verdict" fields);
          map = opt_map_of (field1 "map" fields);
        }
  | List (Atom "fixed-point" :: fields) ->
      Fixed_point
        {
          op_name = Codec.string_of (field1 "op" fields);
          task_name = Codec.string_of (field1 "task" fields);
          per_sigma =
            List.map
              (function
                | List [ sigma; List facets ] ->
                    (Codec.simplex_of sigma, List.map Codec.simplex_of facets)
                | _ -> Codec.fail "bad fixed-point entry")
              (find_field "entries" fields);
        }
  | List (Atom "unsolvable" :: fields) ->
      Unsolvable
        {
          task_name = Codec.string_of (field1 "task" fields);
          rounds = Codec.int_of (field1 "rounds" fields);
          reason = decode_obstruction (field1 "obstruction" fields);
        }
  | List (Atom "equivalence" :: fields) ->
      Equivalence
        {
          lhs = Codec.string_of (field1 "lhs" fields);
          rhs = Codec.string_of (field1 "rhs" fields);
          n = Codec.int_of (field1 "n" fields);
          equivalent = Codec.bool_of (field1 "equivalent" fields);
          probes =
            List.map
              (function
                | List [ label; l; r ] ->
                    ( Codec.string_of label,
                      Codec.string_of l,
                      Codec.string_of r )
                | _ -> Codec.fail "bad equivalence probe")
              (find_field "probes" fields);
        }
  | List (Atom "atlas" :: fields) ->
      Atlas
        {
          atlas_name = Codec.string_of (field1 "name" fields);
          atlas_cells =
            List.map
              (function
                | List [ Atom op; Atom task; List keys ] ->
                    {
                      cell_op = op;
                      cell_task = task;
                      cell_keys = List.map Codec.string_of keys;
                    }
                | _ -> Codec.fail "bad atlas cell")
              (find_field "cells" fields);
        }
  | s -> Codec.fail "unknown certificate kind %s" (Cert_sexp.to_string s)

let decode sexp =
  match sexp with
  | List [ Atom "cert"; List [ Atom "version"; Atom v ]; body ] -> (
      if v <> version then
        Error (Printf.sprintf "stale certificate version %S (engine: %S)" v version)
      else
        try Ok (decode_body body) with
        | Codec.Decode_error msg -> Error msg
        | Invalid_argument msg | Failure msg ->
            Error (Printf.sprintf "ill-formed certificate data: %s" msg))
  | _ -> Error "not a certificate"

let equal a b = Cert_sexp.equal (encode a) (encode b)

(* ---- content-addressed keys ---- *)

type query =
  | Q_delta of { op_name : string; task_name : string; sigma : Simplex.t }
  | Q_member of {
      op_name : string;
      task_name : string;
      sigma : Simplex.t;
      tau : Simplex.t;
    }
  | Q_solve of {
      model_name : string;
      task_name : string;
      rounds : int;
      inputs : Simplex.t list;
    }
  | Q_fixed_point of {
      op_name : string;
      task_name : string;
      sigmas : Simplex.t list;
    }
  | Q_unsolvable of { task_name : string; rounds : int }
  | Q_equiv of { lhs : string; rhs : string; n : int }
  | Q_atlas of { atlas_name : string }

let query_of = function
  | Membership m ->
      Q_member
        {
          op_name = m.op_name;
          task_name = m.task_name;
          sigma = m.sigma;
          tau = m.tau;
        }
  | Enumeration e ->
      Q_delta { op_name = e.op_name; task_name = e.task_name; sigma = e.sigma }
  | Solution s ->
      Q_solve
        {
          model_name = s.model_name;
          task_name = s.task_name;
          rounds = s.rounds;
          inputs = s.inputs;
        }
  | Fixed_point f ->
      Q_fixed_point
        {
          op_name = f.op_name;
          task_name = f.task_name;
          sigmas = List.map fst f.per_sigma;
        }
  | Unsolvable u -> Q_unsolvable { task_name = u.task_name; rounds = u.rounds }
  | Equivalence e -> Q_equiv { lhs = e.lhs; rhs = e.rhs; n = e.n }
  | Atlas a -> Q_atlas { atlas_name = a.atlas_name }

let query_sexp = function
  | Q_delta { op_name; task_name; sigma } ->
      List
        [ Atom "delta"; Atom op_name; Atom task_name; Codec.simplex sigma ]
  | Q_member { op_name; task_name; sigma; tau } ->
      List
        [
          Atom "member"; Atom op_name; Atom task_name; Codec.simplex sigma;
          Codec.simplex tau;
        ]
  | Q_solve { model_name; task_name; rounds; inputs } ->
      List
        [
          Atom "solve"; Atom model_name; Atom task_name;
          Atom (string_of_int rounds); List (List.map Codec.simplex inputs);
        ]
  | Q_fixed_point { op_name; task_name; sigmas } ->
      List
        [
          Atom "fixed-point"; Atom op_name; Atom task_name;
          List (List.map Codec.simplex sigmas);
        ]
  | Q_unsolvable { task_name; rounds } ->
      List [ Atom "unsolvable"; Atom task_name; Atom (string_of_int rounds) ]
  | Q_equiv { lhs; rhs; n } ->
      List [ Atom "equiv"; Atom lhs; Atom rhs; Atom (string_of_int n) ]
  | Q_atlas { atlas_name } -> List [ Atom "atlas"; Atom atlas_name ]

let query_key q =
  Codec.digest (List [ Atom "key"; Atom version; query_sexp q ])

let key c = query_key (query_of c)

(* ---- verification ---- *)

type env = {
  task_of_name : string -> Task.t option;
  facets_of_op : string -> (Simplex.t -> Simplex.t list) option;
  protocol_of_model : string -> (Simplex.t -> int -> Complex.t) option;
}

type error = Unsupported of string | Invalid of string

let error_message = function Unsupported m | Invalid m -> m

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let resolve what resolver name =
  match resolver name with
  | Some v -> Ok v
  | None -> Error (Unsupported (Printf.sprintf "unknown %s %S" what name))

let check cond fmt =
  Printf.ksprintf
    (fun msg -> if cond then Ok () else Error (Invalid msg))
    fmt

(* The membership check of Definition 2, replayed on the witness: the
   map must be chromatic and, for every face τ' of τ, send every facet
   of the one-round complex of τ' into Δ_{τ,σ}(τ') — without any
   search. *)
let verify_member env ~op_name ~task ~sigma ~tau ~member ~witness =
  let* () =
    check
      (Local_task.is_valid_tau task ~sigma ~tau)
      "τ = %s is not a chromatic subset of V(Δ(σ)) with ID(τ) = ID(σ)"
      (Simplex.to_string tau)
  in
  if not member then Ok ()
  else
    match witness with
    | None ->
        check
          (Complex.mem tau (Task.delta task sigma))
          "zero-round membership claimed but %s ∉ Δ(%s)"
          (Simplex.to_string tau) (Simplex.to_string sigma)
    | Some f ->
        let* facets = resolve "operator" env.facets_of_op op_name in
        let* () = check (Simplicial_map.is_chromatic f) "witness is not chromatic" in
        let local =
          try Ok (Local_task.make task ~sigma ~tau)
          with Invalid_argument msg -> Error (Invalid msg)
        in
        let* local = local in
        check
          (Simplicial_map.agrees_with f
             ~inputs:(Simplex.faces tau)
             ~protocol:(fun tau' -> Complex.of_facets (facets tau'))
             ~delta:(Task.delta local))
          "witness for %s does not solve the local task Π_{τ,σ} in one round"
          (Simplex.to_string tau)

let verify env cert =
  match cert with
  | Membership m ->
      let* task = resolve "task" env.task_of_name m.task_name in
      verify_member env ~op_name:m.op_name ~task ~sigma:m.sigma ~tau:m.tau
        ~member:m.member ~witness:m.witness
  | Enumeration e ->
      let* task = resolve "task" env.task_of_name e.task_name in
      let members = Complex.of_facets (List.map fst e.members) in
      let* () =
        check
          (Complex.subcomplex (Task.delta task e.sigma) members)
          "Δ(σ) ⊄ recorded Δ'(%s)" (Simplex.to_string e.sigma)
      in
      List.fold_left
        (fun acc (tau, witness) ->
          let* () = acc in
          verify_member env ~op_name:e.op_name ~task ~sigma:e.sigma ~tau
            ~member:true ~witness)
        (Ok ()) e.members
  | Solution s ->
      if not s.verdict then Ok ()
      else
        let* task = resolve "task" env.task_of_name s.task_name in
        let* protocol = resolve "model" env.protocol_of_model s.model_name in
        let* f =
          match s.map with
          | Some f -> Ok f
          | None -> Error (Invalid "solvable verdict without a decision map")
        in
        let* () = check (Simplicial_map.is_chromatic f) "decision map is not chromatic" in
        check
          (Simplicial_map.agrees_with f ~inputs:s.inputs
             ~protocol:(fun sigma -> protocol sigma s.rounds)
             ~delta:(Task.delta task))
          "decision map does not agree with Δ after %d round(s)" s.rounds
  | Fixed_point fp ->
      let* task = resolve "task" env.task_of_name fp.task_name in
      List.fold_left
        (fun acc (sigma, facets) ->
          let* () = acc in
          check
            (Complex.equal (Complex.of_facets facets) (Task.delta task sigma))
            "Δ'(%s) differs from Δ(%s)" (Simplex.to_string sigma)
            (Simplex.to_string sigma))
        (Ok ()) fp.per_sigma
  | Unsolvable u -> (
      match u.reason with
      | Disconnected { complex; u = a; v = b } ->
          let* () =
            check
              (Complex.mem_vertex a complex && Complex.mem_vertex b complex)
              "obstruction endpoints are not vertices of the complex"
          in
          check
            (Option.is_none (Connectivity.path complex a b))
            "claimed disconnection refuted: a path exists"
      | Sperner { complex; seed; samples } ->
          let* () = check (samples > 0) "no Sperner samples recorded" in
          check
            (Sperner.sampled_check ~seed ~samples complex)
            "Sperner obstruction refuted on resampling")
  | Equivalence e ->
      (* The probe verdicts are fingerprints of exhausted pipeline runs
         and, like negative facts, carry no compact witness; what is
         checked is internal consistency: both names are canonical
         algebra terms, the pair is stored in canonical order, and the
         verdict is exactly the conjunction of the probe agreements. *)
      let canonical side name =
        match Algebra.parse name with
        | Ok t ->
            check
              (String.equal (Algebra.to_string t) name)
              "%s term %S is not in canonical form" side name
        | Error msg -> Error (Invalid (Printf.sprintf "%s term: %s" side msg))
      in
      let* () = canonical "lhs" e.lhs in
      let* () = canonical "rhs" e.rhs in
      let* () =
        check (String.compare e.lhs e.rhs < 0)
          "equivalence pair is not in canonical order"
      in
      let* () = check (e.n >= 1) "bound n must be at least 1" in
      let* () = check (e.probes <> []) "no probes recorded" in
      check
        (e.equivalent
        = List.for_all (fun (_, l, r) -> String.equal l r) e.probes)
        "verdict does not match the recorded probes"
  | Atlas a ->
      (* The manifest's claim is purely structural: every recorded key
         is the content address of the Q_delta query its cell names.
         Recomputing the keys from the named operator and task takes no
         enumeration, so a tampered manifest (wrong key, renamed cell,
         missing σ) is caught in milliseconds; whether the keyed
         entries are present and valid is the store-level audit
         [speedup atlas verify] runs on top. *)
      let* () = check (a.atlas_cells <> []) "atlas records no cells" in
      List.fold_left
        (fun acc cell ->
          let* () = acc in
          let* task = resolve "task" env.task_of_name cell.cell_task in
          let* _facets = resolve "operator" env.facets_of_op cell.cell_op in
          let* () =
            check
              (String.equal task.Task.name cell.cell_task)
              "cell task name %S is not the canonical rendering %S"
              cell.cell_task task.Task.name
          in
          let expected =
            List.map
              (fun sigma ->
                query_key
                  (Q_delta
                     {
                       op_name = cell.cell_op;
                       task_name = cell.cell_task;
                       sigma;
                     }))
              (Task.input_simplices task)
          in
          check
            (List.length expected = List.length cell.cell_keys
            && List.for_all2 String.equal expected cell.cell_keys)
            "cell (%s, %s) records keys that do not match its input simplices"
            cell.cell_op cell.cell_task)
        (Ok ()) a.atlas_cells
