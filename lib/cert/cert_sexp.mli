(** Canonical S-expressions, the wire format of proof certificates.

    Certificates must hash identically across sessions, so the printer
    is canonical: one space between siblings, no layout choices, and an
    atom is quoted exactly when it is empty or contains a delimiter.
    [of_string (to_string s) = Ok s] for every [s]. *)

type t = Atom of string | List of t list

val atom : string -> t
val list : t list -> t

val to_string : t -> string
(** Canonical rendering; the content-address of a certificate is the
    digest of this string. *)

val of_string : string -> (t, string) result
(** Parses one S-expression (surrounding whitespace allowed).  Returns
    [Error] on malformed input, trailing garbage, or unbalanced
    parentheses — corrupt store entries must fail loudly, not
    half-parse. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
