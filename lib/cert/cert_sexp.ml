type t = Atom of string | List of t list

let atom s = Atom s
let list l = List l

let needs_quoting s =
  s = ""
  || String.exists
       (fun c ->
         match c with
         | ' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' | '\\' -> true
         | _ -> false)
       s

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_string sexp =
  let buf = Buffer.create 256 in
  let rec go = function
    | Atom s -> Buffer.add_string buf (if needs_quoting s then escape s else s)
    | List items ->
        Buffer.add_char buf '(';
        List.iteri
          (fun k item ->
            if k > 0 then Buffer.add_char buf ' ';
            go item)
          items;
        Buffer.add_char buf ')'
  in
  go sexp;
  Buffer.contents buf

exception Parse_error of string

let of_string input =
  let n = String.length input in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some input.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | Some _ | None -> ()
  in
  let quoted_atom () =
    advance ();
    (* opening quote *)
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | None -> fail "dangling escape"
          | Some c ->
              advance ();
              Buffer.add_char buf
                (match c with
                | 'n' -> '\n'
                | 't' -> '\t'
                | 'r' -> '\r'
                | c -> c);
              go ())
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Atom (Buffer.contents buf)
  in
  let bare_atom () =
    let start = !pos in
    let rec go () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r' | '(' | ')' | '"' | ';' | '\\') | None ->
          ()
      | Some _ ->
          advance ();
          go ()
    in
    go ();
    if !pos = start then fail "expected atom";
    Atom (String.sub input start (!pos - start))
  in
  let rec parse_one () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '(' ->
        advance ();
        let rec items acc =
          skip_ws ();
          match peek () with
          | None -> fail "unbalanced parenthesis"
          | Some ')' ->
              advance ();
              List (List.rev acc)
          | Some _ -> items (parse_one () :: acc)
        in
        items []
    | Some ')' -> fail "unexpected )"
    | Some '"' -> quoted_atom ()
    | Some _ -> bare_atom ()
  in
  match
    let s = parse_one () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    s
  with
  | s -> Ok s
  | exception Parse_error msg -> Error msg

let rec equal a b =
  match (a, b) with
  | Atom x, Atom y -> String.equal x y
  | List xs, List ys -> (
      try List.for_all2 equal xs ys with Invalid_argument _ -> false)
  | Atom _, List _ | List _, Atom _ -> false

let pp ppf s = Format.pp_print_string ppf (to_string s)
