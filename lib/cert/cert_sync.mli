(** Replication trust boundary: serializing store entries for the wire
    and re-verifying everything that comes back.

    The fleet protocol (docs/FLEET.md) moves certificates between
    stores as opaque text keyed by digest.  [export] renders a local
    entry; [install] is the only path by which a peer's bytes reach the
    local store, and it re-derives the content address and re-runs
    [Cert.verify] first — a malicious or corrupt peer can cause a
    rejection, never a bad entry. *)

val export : string -> (string, string) result
(** [export key] renders the local entry for the wire.  Reads via
    [Cert_store.load_local], so serving a pull can never trigger
    another pull. *)

val install : key:string -> string -> (Cert.t, string) result
(** [install ~key text] parses, decodes, checks that the certificate's
    recomputed content address equals [key], verifies it against the
    registry (an [Unsupported] name is rejected — this node only
    installs what it can vouch for), and writes the {e canonical
    re-encoding} through [Cert_store.install] (no push hook, so
    replication cannot echo).  Counts an install or a reject on the
    replication counters. *)
