(** Content-addressed persistent certificate store.

    Layout: a root directory (the [CERT_CACHE_DIR] environment
    variable, or [set_dir]) holding two-hex-character shard
    subdirectories, each entry a file [<key>.cert] containing one
    canonical S-expression.  Writes go through a temporary file in the
    same shard followed by an atomic [Sys.rename], so concurrent
    producers never expose a torn entry.  Entries that fail to parse
    are quarantined (renamed to [<key>.cert.quarantined]) rather than
    deleted, and never crash a computation: a corrupt store degrades to
    a cache miss.

    The store is deliberately dumb: it maps keys to S-expressions and
    leaves certificate semantics (decoding, verification, version
    checks) to its callers, which keeps the dependency graph acyclic
    ([Cert] aliases this module as [Cert.Store]). *)

type stats = { hits : int; misses : int; writes : int; corrupt : int }

val stats : unit -> stats
val reset_stats : unit -> unit

(** {1 Replication}

    The store never opens a socket itself.  The fleet layer
    ([lib/fleet], docs/FLEET.md) installs the two hooks: [on_save]
    pushes freshly produced entries to peer stores, [on_miss] pulls a
    missing entry by digest before [load] reports a miss.  The
    counters live here so the daemon's [stats] reply and the
    [SPEEDUP_STATS] line report replication traffic without a
    server → fleet dependency. *)

type repl_stats = {
  pushes : int;  (** entries successfully pushed to a peer *)
  push_failures : int;  (** failed or dropped push attempts *)
  pulls : int;  (** entries fetched from a peer on a local miss *)
  pull_misses : int;  (** misses no peer could serve either *)
  installs : int;  (** peer entries that re-verified and were installed *)
  rejects : int;  (** peer entries that failed verification *)
}

val repl_stats : unit -> repl_stats
val reset_repl_stats : unit -> unit

val note_push : unit -> unit
val note_push_failure : unit -> unit
val note_pull : unit -> unit
val note_pull_miss : unit -> unit
val note_install : unit -> unit
val note_reject : unit -> unit

val set_on_save : (string -> Cert_sexp.t -> unit) option -> unit
(** Hook fired after every successful {!save} (never after
    {!install}), with the key and the stored S-expression. *)

val set_on_miss : (string -> Cert_sexp.t option) option -> unit
(** Hook consulted when {!load} misses locally.  The hook is expected
    to fetch by digest, verify, {!install}, and return the installed
    S-expression ([None] when no peer has the entry). *)

val set_dir : string option -> unit
(** Overrides (or, with [None], disables) the store root for the rest
    of the session, taking precedence over [CERT_CACHE_DIR]. *)

val unset_dir : unit -> unit
(** Drops any [set_dir] override, returning to [CERT_CACHE_DIR]. *)

val dir : unit -> string option
(** The effective root: the [set_dir] override if any, otherwise
    [CERT_CACHE_DIR], otherwise [None] (store disabled). *)

val enabled : unit -> bool

val load : string -> Cert_sexp.t option
(** [load key] reads and parses the entry, counting a hit or a miss.
    Unparseable entries are quarantined and count as [corrupt].  On a
    local miss the pull-on-miss hook ({!set_on_miss}), when installed,
    gets one chance to produce the entry from a peer. *)

val load_local : string -> Cert_sexp.t option
(** {!load} without the pull-on-miss hook — the read used when
    serving a peer's pull request (a miss must not cascade into
    another pull). *)

val mem : string -> bool
(** Whether an entry file exists, without reading it (no counters).
    The atlas builder's resumability check. *)

val save : key:string -> Cert_sexp.t -> unit
(** Atomic write-through; a no-op when the store is disabled.  I/O
    failures are logged and swallowed — caching must never break the
    computation it caches.  Fires the push-on-write hook
    ({!set_on_save}) after a successful write. *)

val install : key:string -> Cert_sexp.t -> unit
(** {!save} without the push hook — the write used when installing an
    entry received {e from} a peer, so replication can never echo. *)

val quarantine : string -> unit
(** [quarantine key] sets a semantically invalid entry aside (caller
    detected tampering or a stale format that still parses). *)

val entries : unit -> (string * string) list
(** All [(key, path)] pairs currently stored, sorted by key. *)

val gc : keep:(key:string -> Cert_sexp.t -> bool) -> int
(** Removes quarantined files, unparseable entries, and entries the
    predicate rejects; returns the number of files removed. *)
