(** Content-addressed persistent certificate store.

    Layout: a root directory (the [CERT_CACHE_DIR] environment
    variable, or [set_dir]) holding two-hex-character shard
    subdirectories, each entry a file [<key>.cert] containing one
    canonical S-expression.  Writes go through a temporary file in the
    same shard followed by an atomic [Sys.rename], so concurrent
    producers never expose a torn entry.  Entries that fail to parse
    are quarantined (renamed to [<key>.cert.quarantined]) rather than
    deleted, and never crash a computation: a corrupt store degrades to
    a cache miss.

    The store is deliberately dumb: it maps keys to S-expressions and
    leaves certificate semantics (decoding, verification, version
    checks) to its callers, which keeps the dependency graph acyclic
    ([Cert] aliases this module as [Cert.Store]). *)

type stats = { hits : int; misses : int; writes : int; corrupt : int }

val stats : unit -> stats
val reset_stats : unit -> unit

val set_dir : string option -> unit
(** Overrides (or, with [None], disables) the store root for the rest
    of the session, taking precedence over [CERT_CACHE_DIR]. *)

val unset_dir : unit -> unit
(** Drops any [set_dir] override, returning to [CERT_CACHE_DIR]. *)

val dir : unit -> string option
(** The effective root: the [set_dir] override if any, otherwise
    [CERT_CACHE_DIR], otherwise [None] (store disabled). *)

val enabled : unit -> bool

val load : string -> Cert_sexp.t option
(** [load key] reads and parses the entry, counting a hit or a miss.
    Unparseable entries are quarantined and count as [corrupt]. *)

val save : key:string -> Cert_sexp.t -> unit
(** Atomic write-through; a no-op when the store is disabled.  I/O
    failures are logged and swallowed — caching must never break the
    computation it caches. *)

val quarantine : string -> unit
(** [quarantine key] sets a semantically invalid entry aside (caller
    detected tampering or a stale format that still parses). *)

val entries : unit -> (string * string) list
(** All [(key, path)] pairs currently stored, sorted by key. *)

val gc : keep:(key:string -> Cert_sexp.t -> bool) -> int
(** Removes quarantined files, unparseable entries, and entries the
    predicate rejects; returns the number of files removed. *)
