(** Hash-consing arenas for the topology core.

    An arena gives every structurally-distinct node of a type exactly
    one live physical representative, so structural equality of
    interned nodes collapses to physical equality and a per-node
    integer id supports O(1) hashing.  [Value], [Vertex] and [Simplex]
    each keep their nodes in an arena; everything downstream (closure
    memo keys, solver variable tables, facet sets, the server's
    cross-connection memo) inherits constant-time [equal]/[hash] from
    them.

    Design constraints (see docs/INTERNING.md):

    - {b Domain safety.}  Arenas are sharded hash sets, each shard
      guarded by its own mutex; [Pool] workers and [speedup serve]
      worker domains intern concurrently.  Critical sections are a
      single find-or-insert, and each domain keeps a small
      direct-mapped {e front cache} of canonical nodes in front of the
      shards, so the hot intern loops of a fan-out mostly never touch
      a lock at all.  A front hit is sound because the cached strong
      reference keeps the node alive, which keeps its weak-arena entry
      intact, so every other domain's find-or-insert converges on the
      same physical node.
    - {b Ids never leak.}  Interning order — and therefore id
      assignment — depends on scheduling, so ids must never reach any
      ordering, rendering, or serialization.  Canonical orders stay
      structural ([Value.compare] etc. short-circuit on physical
      equality but fall back to the structural walk), and the
      certificate codec never sees ids.  The lint's R6 rule enforces
      the complementary contract outside [lib/topology].
    - {b Bounded retention.}  Shards are weak sets ([Weak.Make]): an
      interned node is retained only while something else keeps it
      alive, so a long-running server does not leak the arena.  The
      per-domain front caches add at most a small fixed number of
      strong references per arena per domain (evicted by overwrite),
      so retention stays bounded.  A collected node's id is simply
      retired; ids are never reused (ids are drawn from a global
      atomic counter), so two live nodes never share an id. *)

val fresh_id : unit -> int
(** A process-unique nonnegative id.  Thread-safe: each domain draws
    ids in blocks from the global counter, so the shared cache line is
    touched once per block rather than once per node.  Ids handed to
    nodes that lose the interning race — and the unused tail of a
    domain's final block — are discarded; gaps are harmless because
    ids only ever serve as equality witnesses and hash keys. *)

module type Hashed = sig
  type t

  val equal : t -> t -> bool
  (** Shallow structural equality: children (already interned) are
      compared by physical identity or id, never recursively. *)

  val hash : t -> int
  (** Shallow hash consistent with [equal]; children contribute their
      ids.  Must not depend on the node's own id. *)
end

module Make (H : Hashed) : sig
  val intern : H.t -> H.t
  (** [intern n] is the canonical representative of [n]: the live node
      equal to [n] if one exists, otherwise [n] itself after
      registration.  Callers allocate a candidate (with a fresh id),
      intern it, and must use only the returned node. *)

  val count : unit -> int
  (** Number of live interned nodes (weak count; nodes the GC has
      collected are excluded).  Diagnostic only. *)
end
