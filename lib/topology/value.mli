(** Values carried by the vertices of chromatic complexes.

    A single recursive type covers everything the paper attaches to a
    process: task inputs and outputs (booleans, integers, rationals),
    full-information views accumulated by Algorithm 1 (a [View] is the
    set of pairs [(j, v_j)] collected from the other processes), and the
    pair [(b_i, C_i)] formed in Algorithm 2 when a black-box object is
    invoked ([Pair]).

    Views and pairs — the constructors that deepen geometrically with
    the round count — are hash-consed: [pair] and [view] return interned
    nodes ([Intern]), so structurally-equal trees share one physical
    node and [equal]/[hash] are O(1).  Leaves keep their plain
    constructors.  [Pair]/[View] payloads are private records, so
    pattern matching still works everywhere but construction must go
    through the smart constructors.  Interned ids are process-local and
    scheduling-dependent: they back [equal]/[hash] only and never reach
    [compare], [pp], or any serialization (the lint's R6 rule guards
    call sites outside [lib/topology]). *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Frac of Frac.t
  | Str of string
  | Pair of pair_node
  | View of view_node

and pair_node = private { pair_id : int; fst : t; snd : t }

and view_node = private { view_id : int; assoc : (int * t) list }
(** [assoc] is sorted by strictly increasing color; [view] enforces
    this. *)

val pair : t -> t -> t
(** [pair a b] is the interned pair [(a, b)]: structurally-equal calls
    return the same physical node. *)

val view : (int * t) list -> t
(** [view assoc] sorts [assoc] by color, checks colors are distinct,
    and interns the result.
    @raise Invalid_argument on a repeated color. *)

val interned_nodes : unit -> int
(** Live interned [Pair]/[View] nodes across both arenas (weak count).
    Diagnostic, for tests and stats only. *)

val view_ids : t -> int list
(** Colors present in a [View].
    @raise Invalid_argument on non-views. *)

val view_find : int -> t -> t option
(** [view_find i v] is the value associated to color [i] in view [v]. *)

val compare : t -> t -> int
(** Total structural order ([Frac] compared numerically, which
    coincides with structural equality since fractions are normalized).
    The order is identical to the pre-interning structural order — ids
    never influence it — but physically-equal shared subtrees
    short-circuit to 0 without being walked. *)

val structural_compare : t -> t -> int
(** The same order as [compare], computed by the full structural walk
    with no sharing short-circuits.  Oracle for tests and the bench's
    structural baseline; use [compare] everywhere else. *)

val equal : t -> t -> bool
(** O(1): leaves compare by immediate contents, interned [Pair]/[View]
    nodes by physical identity. *)

val hash : t -> int
(** O(1); interned nodes hash by id, so values are process-local hash
    keys only — never fold a [hash] into anything rendered or stored. *)

val frac : int -> int -> t
(** [frac n d] is [Frac (Frac.make n d)]. *)

val as_frac : t -> Frac.t
(** @raise Invalid_argument if the value is not a [Frac]. *)

val as_bool : t -> bool
(** @raise Invalid_argument if the value is not a [Bool]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
