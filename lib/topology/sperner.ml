let union_sorted ls = List.sort_uniq Int.compare (List.concat ls)

let rec carrier_of_value key value =
  match value with
  | Value.View { assoc = entries; _ } ->
      union_sorted (List.map (fun (j, inner) -> carrier_of_value j inner) entries)
  | Value.Pair { snd = Value.View _ as view; _ } -> carrier_of_value key view
  | Value.Unit | Value.Bool _ | Value.Int _ | Value.Frac _ | Value.Str _
  | Value.Pair _ ->
      [ key ]

let carrier_ids v = carrier_of_value (Vertex.color v) (Vertex.value v)

let count_rainbow complex ~labeling =
  List.length
    (List.filter
       (fun facet ->
         let labels = List.map labeling (Simplex.vertices facet) in
         List.length (List.sort_uniq Int.compare labels) = List.length labels
         && List.length labels >= Simplex.card facet)
       (Complex.facets complex))

(* Rainbow facets are those using all the original corners; for a
   subdivided (k-1)-simplex that is "k pairwise distinct labels". *)

let vertices_with_choices complex =
  List.map (fun v -> (v, carrier_ids v)) (Complex.vertices complex)

let odd n = n mod 2 = 1

(* List.assoc with Vertex.equal. *)
let assoc' v assignment =
  match List.find_opt (fun (u, _) -> Vertex.equal u v) assignment with
  | Some (_, l) -> l
  | None -> invalid_arg "Sperner: unlabeled vertex"

let exhaustive_check complex =
  let choices = vertices_with_choices complex in
  let table : (Vertex.t * int) list ref = ref [] in
  let rec go = function
    | [] ->
        let assignment = !table in
        let labeling v = assoc' v assignment in
        odd (count_rainbow complex ~labeling)
    | (v, labels) :: rest ->
        List.for_all
          (fun l ->
            table := (v, l) :: !table;
            let r = go rest in
            table := List.tl !table;
            r)
          labels
  in
  go choices

let sampled_check ?(seed = 19) ?(samples = 2000) complex =
  let rng = Random.State.make [| seed |] in
  let choices = vertices_with_choices complex in
  let ok = ref true in
  for _ = 1 to samples do
    let assignment =
      List.map
        (fun (v, labels) ->
          (v, List.nth labels (Random.State.int rng (List.length labels))))
        choices
    in
    let labeling v = assoc' v assignment in
    if not (odd (count_rainbow complex ~labeling)) then ok := false
  done;
  !ok
