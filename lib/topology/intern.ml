(* Sharded weak hash-consing arenas.  See intern.mli for the design
   contract (domain safety, id hygiene, bounded retention). *)

let id_counter = Atomic.make 0
let fresh_id () = Atomic.fetch_and_add id_counter 1

let shard_count = 64
(* Power of two so the shard pick is a mask, and comfortably more
   shards than worker domains so concurrent interns rarely collide on
   a lock. *)

module type Hashed = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Make (H : Hashed) = struct
  module W = Weak.Make (struct
    include H

    (* Client hashes mix child ids and may overflow negative; weak sets
       (like Hashtbl) expect a nonnegative hash. *)
    let hash x = H.hash x land max_int
  end)

  type shard = { lock : Mutex.t; tbl : W.t }

  (* One mutex per shard; the table itself is only touched under the
     shard lock, so the weak set needs no internal synchronisation. *)
  let shards =
    Array.init shard_count (fun _ ->
        { lock = Mutex.create (); tbl = W.create 256 })
  [@@lint.allow "R1: interning arena; every access is under the shard mutex"]

  let intern node =
    let s = shards.(H.hash node land (shard_count - 1)) in
    Mutex.protect s.lock (fun () -> W.merge s.tbl node)

  let count () =
    let n = ref 0 in
    Array.iter
      (fun s -> Mutex.protect s.lock (fun () -> n := !n + W.count s.tbl))
      shards;
    !n
end
