(* Sharded weak hash-consing arenas with per-domain front caches.
   See intern.mli for the design contract (domain safety, id hygiene,
   bounded retention). *)

(* Global id source.  Domains draw ids in blocks so the shared atomic
   cache line is touched once per [id_block] allocations instead of
   once per node — under a fan-out every domain hammering a single
   fetch-and-add is pure false-sharing-style contention.  Blocks make
   id assignment even more scheduling-dependent, which is fine: ids
   never reach orderings or serializations, and gaps (from discarded
   race losers and part-used blocks) are explicitly harmless. *)
let id_counter = Atomic.make 0
let id_block = 256

type id_alloc = { mutable next : int; mutable limit : int }

let id_key = Domain.DLS.new_key (fun () -> { next = 0; limit = 0 })
[@@lint.allow
  "R1: deliberate per-domain id-block allocator over the global atomic \
   counter; blocks are disjoint by construction so ids stay process-unique"]

let fresh_id () =
  let a = Domain.DLS.get id_key in
  if a.next >= a.limit then begin
    let base = Atomic.fetch_and_add id_counter id_block in
    a.next <- base;
    a.limit <- base + id_block
  end;
  let id = a.next in
  a.next <- id + 1;
  id

let shard_count = 64
(* Power of two so the shard pick is a mask, and comfortably more
   shards than worker domains so concurrent interns rarely collide on
   a lock. *)

let front_size = 512
(* Power of two, direct-mapped.  Small enough that the per-domain
   strong retention (≤ front_size nodes per arena per domain) is
   negligible, large enough that the tight intern loops of a closure
   enumeration mostly hit it. *)

module type Hashed = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Make (H : Hashed) = struct
  module W = Weak.Make (struct
    include H

    (* Client hashes mix child ids and may overflow negative; weak sets
       (like Hashtbl) expect a nonnegative hash. *)
    let hash x = H.hash x land max_int
  end)

  type shard = { lock : Mutex.t; tbl : W.t }

  (* One mutex per shard; the table itself is only touched under the
     shard lock, so the weak set needs no internal synchronisation. *)
  let shards =
    Array.init shard_count (fun _ ->
        { lock = Mutex.create (); tbl = W.create 256 })
  [@@lint.allow "R1: interning arena; every access is under the shard mutex"]
  [@@lint.allow
    "R7: the array itself is immutable after [Array.init] — indexing it to \
     pick a shard needs no lock; only each shard's table mutates, and that \
     happens under that shard's own [lock] (Mutex.protect in intern/count)"]

  (* Per-domain front cache: a direct-mapped open-addressing-style
     table over the candidate's shallow hash (children contribute
     their intern ids, so the probe is O(1)).  A hit returns the
     canonical node without touching any shard lock.  Safety: a front
     slot holds a *strong* reference, so as long as a cached node is
     served from any domain's front it is alive, its weak-arena entry
     is intact, and every other domain's find-or-insert converges on
     the same physical node — eviction (slot overwrite) merely drops
     one strong reference. *)
  let front_key =
    Domain.DLS.new_key (fun () -> Array.make front_size (None : H.t option))
  [@@lint.allow
    "R1: deliberate per-domain front cache in front of the mutex-guarded \
     shards; holds only canonical nodes, so a hit is the same physical \
     node every shard lookup would return"]

  let intern node =
    let h = H.hash node land max_int in
    let front = Domain.DLS.get front_key in
    let slot = h land (front_size - 1) in
    match front.(slot) with
    | Some canon when H.equal canon node -> canon
    | _ ->
        let s = shards.(h land (shard_count - 1)) in
        let canon = Mutex.protect s.lock (fun () -> W.merge s.tbl node) in
        front.(slot) <- Some canon;
        canon

  let count () =
    let n = ref 0 in
    Array.iter
      (fun s -> Mutex.protect s.lock (fun () -> n := !n + W.count s.tbl))
      shards;
    !n
end
