(** Chromatic simplices.

    A simplex is a non-empty set of vertices with pairwise distinct
    colors, kept sorted by color (Appendix A.1).  The dimension of a
    simplex with [k] vertices is [k - 1]. *)

type t
(** Immutable; ordered by color.  Hash-consed: every constructor
    returns an interned node, so structurally-equal simplices are one
    physical node, [equal] is O(1) physical identity and [hash] the
    O(1) interned id.  [compare] stays the structural color-then-value
    order (ids never leak into ordering or rendering). *)

val of_vertices : Vertex.t list -> t
(** @raise Invalid_argument on an empty list or a repeated color. *)

val of_list : (int * Value.t) list -> t
(** [of_list [(i, x_i); ...]] builds the simplex [{(i, x_i) : ...}]. *)

val singleton : Vertex.t -> t
val vertices : t -> Vertex.t list
(** In increasing color order. *)

val ids : t -> int list
(** [ID(σ)], sorted increasingly. *)

val dim : t -> int
val card : t -> int
val mem : Vertex.t -> t -> bool
val mem_color : int -> t -> bool

val find : int -> t -> Vertex.t
(** Vertex of the given color. @raise Not_found if absent. *)

val value : int -> t -> Value.t
(** Value of the vertex with the given color. @raise Not_found. *)

val values : t -> Value.t list

val proj : int list -> t -> t
(** [proj ids σ] is [proj_J(σ)] for [J = ids ∩ ID(σ)].
    @raise Invalid_argument if the intersection is empty. *)

val subset : t -> t -> bool
(** [subset τ σ] holds when [τ] is a face of [σ].  Single merge walk
    over the color-sorted vertex lists: O(card σ). *)

val faces : t -> t list
(** All non-empty faces, including [t] itself. *)

val proper_faces : t -> t list
(** All non-empty faces except [t] itself. *)

val boundary : t -> t list
(** Codimension-1 faces. *)

val union : t -> t -> t
(** Union of two simplices agreeing on shared colors.
    @raise Invalid_argument if they conflict on a color. *)

val map_values : (int -> Value.t -> Value.t) -> t -> t
(** Chromatic relabeling: applies the function to each [(color, value)]
    pair, keeping colors. *)

val as_view : t -> Value.t
(** [{(i, x_i)}] as the view value [View [(i, x_i); ...]]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
(** O(1) physical identity — sound because construction interns. *)

val hash : t -> int
(** O(1) interned id; process-local, never render or store it. *)

val interned_nodes : unit -> int
(** Live interned simplices (weak count).  Diagnostic only. *)

val is_chromatic_set : Vertex.t list -> bool
(** Whether a list of vertices has pairwise distinct colors — the
    "chromatic set" condition of Definition 1 (such a set need not be a
    simplex of any particular complex). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

(** Hash table keyed by interned identity: O(1) [equal]/[hash], so a
    [Tbl] lookup never walks the simplex. *)
module Tbl : Hashtbl.S with type key = t
