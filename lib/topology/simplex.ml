type t = { sid : int; verts : Vertex.t list }
(* Invariant on [verts]: non-empty, strictly increasing colors. *)

module Arena = Intern.Make (struct
  type nonrec t = t

  (* Shallow: vertices are interned, so this is O(card) id work. *)
  let equal a b = List.equal Vertex.equal a.verts b.verts
  let hash s = List.fold_left (fun acc v -> (31 * acc) + Vertex.hash v) 13 s.verts
end)

let intern verts = Arena.intern { sid = Intern.fresh_id (); verts }
let interned_nodes = Arena.count

let of_vertices vs =
  (match vs with [] -> invalid_arg "Simplex.of_vertices: empty" | _ -> ());
  let sorted = List.sort Vertex.compare vs in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if Vertex.color a = Vertex.color b then
          invalid_arg "Simplex.of_vertices: repeated color";
        check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  intern sorted

let of_list pairs = of_vertices (List.map (fun (i, x) -> Vertex.make i x) pairs)
let singleton v = intern [ v ]
let vertices s = s.verts
let ids s = List.map Vertex.color s.verts
let card s = List.length s.verts
let dim s = card s - 1
let mem v s = List.exists (Vertex.equal v) s.verts
let mem_color i s = List.exists (fun v -> Vertex.color v = i) s.verts
let find i s = List.find (fun v -> Vertex.color v = i) s.verts
let value i s = Vertex.value (find i s)
let values s = List.map Vertex.value s.verts

let proj sel s =
  (* Merge walk over the color-sorted vertex list against the sorted,
     deduplicated selection: O(card + |sel| log |sel|) instead of the
     old List.mem scan's O(card * |sel|). *)
  let sel = List.sort_uniq Int.compare sel in
  let rec keep sel vs =
    match (sel, vs) with
    | [], _ | _, [] -> []
    | c :: sel', v :: vs' ->
        let cv = Vertex.color v in
        if cv < c then keep sel vs'
        else if cv > c then keep sel' vs
        else v :: keep sel' vs'
  in
  match keep sel s.verts with
  | [] -> invalid_arg "Simplex.proj: empty projection"
  | kept -> intern kept

let subset tau sigma =
  (* Both vertex lists are color-sorted, so the face test is a single
     merge walk with O(1) vertex equality — O(card sigma) total,
     replacing the old O(card tau * card sigma) membership scan. *)
  let rec sub xs ys =
    match (xs, ys) with
    | [], _ -> true
    | _ :: _, [] -> false
    | x :: xs', y :: ys' ->
        let cx = Vertex.color x and cy = Vertex.color y in
        if cy < cx then sub xs ys'
        else if cy > cx then false
        else Vertex.equal x y && sub xs' ys'
  in
  tau == sigma || sub tau.verts sigma.verts

let faces s =
  let rec go = function
    | [] -> [ [] ]
    | v :: rest ->
        let subs = go rest in
        List.map (fun f -> v :: f) subs @ subs
  in
  List.filter_map (function [] -> None | f -> Some (intern f)) (go s.verts)

let equal (a : t) b = a == b
let proper_faces s = List.filter (fun f -> not (equal f s)) (faces s)

let boundary s =
  if dim s = 0 then []
  else
    List.map
      (fun v -> intern (List.filter (fun w -> not (Vertex.equal v w)) s.verts))
      s.verts

let union a b =
  let merged =
    List.sort_uniq Vertex.compare (List.rev_append a.verts b.verts)
  in
  let rec check = function
    | x :: (y :: _ as rest) ->
        if Vertex.color x = Vertex.color y then
          invalid_arg "Simplex.union: conflicting colors";
        check rest
    | [ _ ] | [] -> ()
  in
  check merged;
  intern merged

let map_values f s =
  intern
    (List.map
       (fun v -> Vertex.make (Vertex.color v) (f (Vertex.color v) (Vertex.value v)))
       s.verts)

let as_view s =
  Value.view (List.map (fun v -> (Vertex.color v, Vertex.value v)) s.verts)

let compare a b =
  if a == b then 0
  else
    let rec go xs ys =
      match (xs, ys) with
      | [], [] -> 0
      | [], _ :: _ -> -1
      | _ :: _, [] -> 1
      | x :: xs', y :: ys' ->
          let c = Vertex.compare x y in
          if c <> 0 then c else go xs' ys'
    in
    go a.verts b.verts

let hash s = s.sid

let is_chromatic_set vs =
  let colors = List.sort Int.compare (List.map Vertex.color vs) in
  let rec distinct = function
    | a :: (b :: _ as rest) -> a <> b && distinct rest
    | [ _ ] | [] -> true
  in
  distinct colors

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Vertex.pp)
    s.verts

let to_string s = Format.asprintf "%a" pp s

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ordered)
module Map = Map.Make (Ordered)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
