type t = Vertex.t list
(* Invariant: non-empty, strictly increasing colors. *)

let of_vertices vs =
  if vs = [] then invalid_arg "Simplex.of_vertices: empty";
  let sorted = List.sort Vertex.compare vs in
  let rec check = function
    | a :: (b :: _ as rest) ->
        if Vertex.color a = Vertex.color b then
          invalid_arg "Simplex.of_vertices: repeated color";
        check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  sorted

let of_list pairs = of_vertices (List.map (fun (i, x) -> Vertex.make i x) pairs)
let singleton v = [ v ]
let vertices s = s
let ids s = List.map Vertex.color s
let card = List.length
let dim s = card s - 1
let mem v s = List.exists (Vertex.equal v) s
let mem_color i s = List.exists (fun v -> Vertex.color v = i) s
let find i s = List.find (fun v -> Vertex.color v = i) s
let value i s = Vertex.value (find i s)
let values s = List.map Vertex.value s

let proj sel s =
  let kept = List.filter (fun v -> List.mem (Vertex.color v) sel) s in
  if kept = [] then invalid_arg "Simplex.proj: empty projection";
  kept

let subset tau sigma = List.for_all (fun v -> mem v sigma) tau

let faces s =
  let rec go = function
    | [] -> [ [] ]
    | v :: rest ->
        let subs = go rest in
        List.map (fun f -> v :: f) subs @ subs
  in
  List.filter (fun f -> f <> []) (go s)

let proper_faces s = List.filter (fun f -> f <> s) (faces s)

let boundary s =
  if dim s = 0 then []
  else List.map (fun v -> List.filter (fun w -> not (Vertex.equal v w)) s) s

let union a b =
  let merged =
    List.sort_uniq Vertex.compare (List.rev_append a b)
  in
  let rec check = function
    | x :: (y :: _ as rest) ->
        if Vertex.color x = Vertex.color y then
          invalid_arg "Simplex.union: conflicting colors";
        check rest
    | [ _ ] | [] -> ()
  in
  check merged;
  merged

let map_values f s =
  List.map (fun v -> Vertex.make (Vertex.color v) (f (Vertex.color v) (Vertex.value v))) s

let as_view s = Value.view (List.map (fun v -> (Vertex.color v, Vertex.value v)) s)

let rec compare a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: a', y :: b' ->
      let c = Vertex.compare x y in
      if c <> 0 then c else compare a' b'

let equal a b = compare a b = 0

let is_chromatic_set vs =
  let colors = List.sort Int.compare (List.map Vertex.color vs) in
  let rec distinct = function
    | a :: (b :: _ as rest) -> a <> b && distinct rest
    | [ _ ] | [] -> true
  in
  distinct colors

let pp ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Vertex.pp)
    s

let to_string s = Format.asprintf "%a" pp s

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ordered)
module Map = Map.Make (Ordered)
