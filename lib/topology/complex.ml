type t = { facets : Simplex.Set.t }
(* Invariant: no facet is a face of another. *)

let empty = { facets = Simplex.Set.empty }

let maximalize simplices =
  let sorted =
    List.sort (fun a b -> Int.compare (Simplex.card b) (Simplex.card a)) simplices
  in
  List.fold_left
    (fun acc s ->
      if Simplex.Set.exists (fun f -> Simplex.subset s f) acc then acc
      else Simplex.Set.add s acc)
    Simplex.Set.empty sorted

let of_facets l = { facets = maximalize l }
let of_simplex s = { facets = Simplex.Set.singleton s }
let facets c = Simplex.Set.elements c.facets
let facet_set c = c.facets
let is_empty c = Simplex.Set.is_empty c.facets
let mem s c = Simplex.Set.exists (fun f -> Simplex.subset s f) c.facets
let mem_vertex v c = mem (Simplex.singleton v) c

let vertices c =
  Simplex.Set.fold
    (fun f acc -> List.fold_left (fun acc v -> Vertex.Set.add v acc) acc (Simplex.vertices f))
    c.facets Vertex.Set.empty
  |> Vertex.Set.elements

(* Both sit inside the per-τ hot loop of closure enumeration (via
   [Task.delta_candidates] and the solver's candidate registration):
   fold straight into sets instead of materializing all vertices and
   rescanning, and skip the quadratic membership test on the
   accumulator.  Output order is unchanged (ascending set order). *)
let vertices_of_color i c =
  Simplex.Set.fold
    (fun f acc ->
      List.fold_left
        (fun acc v -> if Vertex.color v = i then Vertex.Set.add v acc else acc)
        acc (Simplex.vertices f))
    c.facets Vertex.Set.empty
  |> Vertex.Set.elements

module Int_set = Set.Make (Int)

let colors c =
  Simplex.Set.fold
    (fun f acc -> List.fold_left (fun acc i -> Int_set.add i acc) acc (Simplex.ids f))
    c.facets Int_set.empty
  |> Int_set.elements

let all_simplices c =
  Simplex.Set.fold
    (fun f acc ->
      List.fold_left (fun acc s -> Simplex.Set.add s acc) acc (Simplex.faces f))
    c.facets Simplex.Set.empty
  |> Simplex.Set.elements

let simplices_with_ids sel c =
  let sel = List.sort_uniq Int.compare sel in
  Simplex.Set.fold
    (fun f acc ->
      if List.for_all (fun i -> Simplex.mem_color i f) sel then
        Simplex.Set.add (Simplex.proj sel f) acc
      else acc)
    c.facets Simplex.Set.empty
  |> Simplex.Set.elements

let dim c =
  if is_empty c then invalid_arg "Complex.dim: empty complex";
  Simplex.Set.fold (fun f acc -> max acc (Simplex.dim f)) c.facets (-1)

let is_pure c =
  (not (is_empty c))
  &&
  let d = dim c in
  Simplex.Set.for_all (fun f -> Simplex.dim f = d) c.facets

let facet_count c = Simplex.Set.cardinal c.facets
let vertex_count c = List.length (vertices c)
let simplex_count c = List.length (all_simplices c)
let union a b = of_facets (Simplex.Set.elements a.facets @ Simplex.Set.elements b.facets)

let proj sel c =
  let restricted =
    Simplex.Set.fold
      (fun f acc ->
        let kept = List.filter (fun v -> List.mem (Vertex.color v) sel) (Simplex.vertices f) in
        match kept with [] -> acc | vs -> Simplex.of_vertices vs :: acc)
      c.facets []
  in
  of_facets restricted

let skeleton k c =
  let pieces =
    Simplex.Set.fold
      (fun f acc ->
        if Simplex.dim f <= k then f :: acc
        else List.filter (fun s -> Simplex.dim s <= k) (Simplex.faces f) @ acc)
      c.facets []
  in
  of_facets pieces

let map g c =
  let image =
    Simplex.Set.fold
      (fun f acc -> Simplex.of_vertices (List.map g (Simplex.vertices f)) :: acc)
      c.facets []
  in
  of_facets image

let equal a b = Simplex.Set.equal a.facets b.facets
let subcomplex a b = Simplex.Set.for_all (fun f -> mem f b) a.facets
let compare a b = Simplex.Set.compare a.facets b.facets

let pp ppf c =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Simplex.pp)
    (facets c)

let pp_stats ppf c =
  if is_empty c then Format.pp_print_string ppf "empty"
  else
    Format.fprintf ppf "%d vertices, %d facets, dim %d" (vertex_count c)
      (facet_count c) (dim c)
