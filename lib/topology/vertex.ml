type t = { vid : int; color : int; value : Value.t }

module Arena = Intern.Make (struct
  type nonrec t = t

  (* Shallow: the value is interned (or a leaf), so Value.equal/hash
     are O(1) here. *)
  let equal a b = Int.equal a.color b.color && Value.equal a.value b.value
  let hash v = (31 * v.color) + Value.hash v.value
end)

let make color value =
  if color <= 0 then invalid_arg "Vertex.make: color must be positive";
  Arena.intern { vid = Intern.fresh_id (); color; value }

let color v = v.color
let value v = v.value

let compare a b =
  if a == b then 0
  else
    let c = Int.compare a.color b.color in
    if c <> 0 then c else Value.compare a.value b.value

let equal (a : t) b = a == b
let hash v = v.vid
let interned_nodes = Arena.count
let pp ppf v = Format.fprintf ppf "(%d,%a)" v.color Value.pp v.value
let to_string v = Format.asprintf "%a" pp v

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ordered)
module Map = Map.Make (Ordered)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
