(** Colored vertices of chromatic complexes.

    A vertex is a pair [(color, value)] where the color is a process
    identity in [1..n] (Appendix A.1).

    Vertices are hash-consed: [make] interns, so structurally-equal
    vertices are one physical node and [equal]/[hash] are O(1) id
    operations.  The type is abstract — use [make]/[color]/[value].
    The interned id never reaches [compare], [pp], or serialization. *)

type t

val make : int -> Value.t -> t
(** Interned: structurally-equal calls return the same physical node.
    @raise Invalid_argument if the color is not positive. *)

val color : t -> int
val value : t -> Value.t

val compare : t -> t -> int
(** Colors compare first, then values; a chromatic simplex sorted with
    this order is sorted by color.  Structural (id-free) order, with a
    physical-equality short-circuit. *)

val equal : t -> t -> bool
(** O(1) physical identity — sound because [make] interns. *)

val hash : t -> int
(** O(1) interned id; process-local, never render or store it. *)

val interned_nodes : unit -> int
(** Live interned vertices (weak count).  Diagnostic only. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
