type point = { x : float; y : float }

(* Weight bias for the vertex's own corner: any value in (0, 1) keeps
   same-view vertices of different colors distinct while staying inside
   the carrier face. *)
let own_bias = 0.55

let corner colors i =
  let colors = List.sort_uniq Int.compare colors in
  if List.length colors > 3 then
    invalid_arg "Geometry.corner: at most three colors";
  let positions =
    match colors with
    | [ _ ] -> [ { x = 0.5; y = 0.5 } ]
    | [ _; _ ] -> [ { x = 0.05; y = 0.5 }; { x = 0.95; y = 0.5 } ]
    | [ _; _; _ ] ->
        [ { x = 0.05; y = 0.93 }; { x = 0.95; y = 0.93 }; { x = 0.5; y = 0.07 } ]
    | _ -> invalid_arg "Geometry.corner: empty color list"
  in
  let rec find cs ps =
    match (cs, ps) with
    | c :: _, p :: _ when c = i -> p
    | _ :: cs', _ :: ps' -> find cs' ps'
    | _ -> invalid_arg "Geometry.corner: color not listed"
  in
  find colors positions

let rec vertex_position ~corners v =
  let i = Vertex.color v in
  match Vertex.value v with
  | Value.Pair { snd = Value.View _ as view; _ } ->
      vertex_position ~corners (Vertex.make i view)
  | Value.View { assoc = entries; _ } ->
      let positions =
        List.map
          (fun (j, inner) ->
            let weight = if j = i then 1.0 +. own_bias else 1.0 in
            let p =
              match inner with
              | Value.View _ | Value.Pair { snd = Value.View _; _ } ->
                  vertex_position ~corners (Vertex.make j inner)
              | _ -> corners j
            in
            (weight, p))
          entries
      in
      let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 positions in
      {
        x = List.fold_left (fun acc (w, p) -> acc +. (w *. p.x)) 0.0 positions /. total;
        y = List.fold_left (fun acc (w, p) -> acc +. (w *. p.y)) 0.0 positions /. total;
      }
  | _ -> corners i

let layout sigma complex =
  let colors = Simplex.ids sigma in
  let corners = corner colors in
  List.map (fun v -> (v, vertex_position ~corners v)) (Complex.vertices complex)

let fill_colors = [| "#202020"; "#f5f5f5"; "#d04040" |]
[@@lint.allow "R1: constant color table, read-only after initialization"]
[@@lint.allow
  "R7: never written after the literal, so unlocked reads race with \
   nothing; a lockset cannot express read-only"]

let stroke_colors = [| "#000000"; "#707070"; "#a02020" |]
[@@lint.allow "R1: constant color table, read-only after initialization"]
[@@lint.allow
  "R7: never written after the literal, so unlocked reads race with \
   nothing; a lockset cannot express read-only"]

let svg ?(size = 640) sigma complex =
  let positions = layout sigma complex in
  let find v = List.assq v (List.map (fun (u, p) -> (u, p)) positions) in
  let find v =
    (* assq needs physical equality; use structural lookup instead. *)
    ignore find;
    snd (List.find (fun (u, _) -> Vertex.equal u v) positions)
  in
  let px p = p.x *. float_of_int size in
  let py p = p.y *. float_of_int size in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\">\n<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n"
       size size size size size size);
  (* Faces first, then edges, then vertices. *)
  List.iter
    (fun facet ->
      match Simplex.vertices facet with
      | [ a; b; c ] ->
          let pa = find a and pb = find b and pc = find c in
          Buffer.add_string buf
            (Printf.sprintf
               "<polygon points=\"%.1f,%.1f %.1f,%.1f %.1f,%.1f\" \
                fill=\"#9ecbe8\" fill-opacity=\"0.35\" stroke=\"none\"/>\n"
               (px pa) (py pa) (px pb) (py pb) (px pc) (py pc))
      | _ -> ())
    (Complex.facets complex);
  let edges = Hashtbl.create 64 in
  List.iter
    (fun facet ->
      let vs = Simplex.vertices facet in
      List.iter
        (fun a ->
          List.iter
            (fun b ->
              if Vertex.compare a b < 0 then
                Hashtbl.replace edges (Vertex.to_string a, Vertex.to_string b) (a, b))
            vs)
        vs)
    (Complex.facets complex);
  (* Deterministic edge order: hash order would leak into the SVG. *)
  let sorted_edges =
    Hashtbl.fold (fun key edge acc -> (key, edge) :: acc) edges []
    |> List.sort (fun ((a1, a2), _) ((b1, b2), _) ->
           match String.compare a1 b1 with
           | 0 -> String.compare a2 b2
           | c -> c)
  in
  List.iter
    (fun (_, (a, b)) ->
      let pa = find a and pb = find b in
      Buffer.add_string buf
        (Printf.sprintf
           "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" \
            stroke=\"#446688\" stroke-width=\"1.2\"/>\n"
           (px pa) (py pa) (px pb) (py pb)))
    sorted_edges;
  let color_index =
    let colors = Simplex.ids sigma in
    fun i ->
      let rec idx k = function
        | [] -> 0
        | c :: _ when c = i -> k
        | _ :: rest -> idx (k + 1) rest
      in
      idx 0 colors
  in
  List.iter
    (fun (v, p) ->
      let k = color_index (Vertex.color v) mod 3 in
      Buffer.add_string buf
        (Printf.sprintf
           "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"5\" fill=\"%s\" \
            stroke=\"%s\" stroke-width=\"1.5\"/>\n"
           (px p) (py p) fill_colors.(k) stroke_colors.(k)))
    positions;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write_svg ?size path sigma complex =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (svg ?size sigma complex))
