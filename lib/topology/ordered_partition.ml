type t = int list list

(* All ways to insert each element either into an existing block or as a
   new block at any position.  Recursive construction keeps the code
   short; sizes stay tiny (|I| <= 6 in this repository). *)
let enumerate ids =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        let smaller = go rest in
        List.concat_map
          (fun part ->
            let rec insertions prefix = function
              | [] -> [ List.rev ([ x ] :: prefix) ]
              | blk :: rest' ->
                  (List.rev_append prefix ((x :: blk) :: rest'))
                  :: (List.rev_append prefix ([ x ] :: blk :: rest'))
                  :: insertions (blk :: prefix) rest'
            in
            insertions [] part)
          smaller
  in
  go (List.sort_uniq Int.compare ids)
  |> List.map (List.map (List.sort Int.compare))

let count k =
  (* a(k) = sum_{j=1..k} C(k,j) a(k-j), a(0) = 1 (ordered Bell). *)
  let a = Array.make (k + 1) 0 in
  a.(0) <- 1;
  let binom = Array.make_matrix (k + 1) (k + 1) 0 in
  for i = 0 to k do
    binom.(i).(0) <- 1;
    for j = 1 to i do
      binom.(i).(j) <- binom.(i - 1).(j - 1) + (if j <= i - 1 then binom.(i - 1).(j) else 0)
    done
  done;
  for i = 1 to k do
    for j = 1 to i do
      a.(i) <- a.(i) + (binom.(i).(j) * a.(i - j))
    done
  done;
  a.(k)

let views part =
  let rec go seen = function
    | [] -> []
    | blk :: rest ->
        let seen = List.sort Int.compare (seen @ blk) in
        List.map (fun i -> (i, seen)) blk @ go seen rest
  in
  List.sort (fun (i, _) (j, _) -> Stdlib.compare i j) (go [] part)

let blocks p = p
let first_block = function [] -> [] | b :: _ -> b
let is_solo_first i = function [ j ] :: _ -> i = j | _ -> false

let solo ids i =
  let rest = List.filter (fun j -> j <> i) (List.sort_uniq Int.compare ids) in
  if rest = [] then [ [ i ] ] else [ [ i ]; rest ]

let pp ppf p =
  let pp_block ppf b =
    Format.fprintf ppf "{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      b
  in
  Format.fprintf ppf "%a"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "<") pp_block)
    p
