let palette =
  [| "black"; "white"; "red"; "deepskyblue"; "gold"; "palegreen"; "orchid"; "gray" |]
[@@lint.allow "R1: constant color table, read-only after initialization"]
[@@lint.allow
  "R7: never written after the literal, so unlocked reads race with \
   nothing; a lockset cannot express read-only"]

let vertex_id v = Printf.sprintf "\"%s\"" (String.escaped (Vertex.to_string v))

let of_complex ?(name = "complex") c =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [style=filled];\n" name);
  List.iter
    (fun v ->
      let fill = palette.((Vertex.color v - 1) mod Array.length palette) in
      let fontcolor = if fill = "black" then "white" else "black" in
      Buffer.add_string buf
        (Printf.sprintf "  %s [fillcolor=%s, fontcolor=%s];\n" (vertex_id v) fill fontcolor))
    (Complex.vertices c);
  let seen = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let vs = Simplex.vertices f in
      List.iter
        (fun v ->
          List.iter
            (fun w ->
              if Vertex.compare v w < 0 then begin
                let key = (Vertex.to_string v, Vertex.to_string w) in
                if not (Hashtbl.mem seen key) then begin
                  Hashtbl.add seen key ();
                  Buffer.add_string buf
                    (Printf.sprintf "  %s -- %s;\n" (vertex_id v) (vertex_id w))
                end
              end)
            vs)
        vs)
    (Complex.facets c);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path c =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (of_complex c))
