type t =
  | Unit
  | Bool of bool
  | Int of int
  | Frac of Frac.t
  | Str of string
  | Pair of pair_node
  | View of view_node

and pair_node = { pair_id : int; fst : t; snd : t }
and view_node = { view_id : int; assoc : (int * t) list }

(* O(1): leaves by immediate contents, interned nodes by physical
   identity (the arena guarantees one live node per structure). *)
let equal a b =
  a == b
  ||
  match (a, b) with
  | Unit, Unit -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Frac x, Frac y -> Frac.equal x y
  | Str x, Str y -> String.equal x y
  | Pair x, Pair y -> x == y
  | View x, View y -> x == y
  | (Unit | Bool _ | Int _ | Frac _ | Str _ | Pair _ | View _), _ -> false

let hash = function
  | Unit -> 17
  | Bool b -> if b then 3 else 5
  | Int n -> Hashtbl.hash n
  | Frac q -> Hashtbl.hash (Frac.num q, Frac.den q)
  | Str s -> Hashtbl.hash s
  | Pair p -> p.pair_id
  | View v -> v.view_id

(* The arenas intern the whole [Pair]/[View] variant block (not just
   the payload record), so the smart constructors return one canonical
   physical value per structure and [==] holds at the [t] level.
   Arena operations are shallow: children are already interned, so
   [equal]/[hash] above make find-or-insert O(1) per node. *)
module Pair_arena = Intern.Make (struct
  type nonrec t = t

  let equal a b =
    match (a, b) with
    | Pair x, Pair y -> equal x.fst y.fst && equal x.snd y.snd
    | _, _ -> a == b (* arena holds only [Pair]s *)

  let hash = function Pair x -> (31 * hash x.fst) + hash x.snd + 7 | v -> hash v
end)

module View_arena = Intern.Make (struct
  type nonrec t = t

  let equal a b =
    match (a, b) with
    | View x, View y ->
        List.equal
          (fun (i, v) (j, w) -> Int.equal i j && equal v w)
          x.assoc y.assoc
    | _, _ -> a == b (* arena holds only [View]s *)

  let hash = function
    | View x ->
        List.fold_left
          (fun acc (i, v) -> (31 * acc) + (17 * i) + hash v)
          11 x.assoc
    | v -> hash v
end)

let pair a b =
  Pair_arena.intern (Pair { pair_id = Intern.fresh_id (); fst = a; snd = b })

let view assoc =
  let sorted = List.sort (fun (i, _) (j, _) -> Int.compare i j) assoc in
  let rec check = function
    | (i, _) :: ((j, _) :: _ as rest) ->
        if i = j then invalid_arg "Value.view: repeated color";
        check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  View_arena.intern (View { view_id = Intern.fresh_id (); assoc = sorted })

let interned_nodes () = Pair_arena.count () + View_arena.count ()

let view_ids = function
  | View v -> List.map Stdlib.fst v.assoc
  | Unit | Bool _ | Int _ | Frac _ | Str _ | Pair _ ->
      invalid_arg "Value.view_ids: not a view"

let view_find i = function
  | View v -> List.assoc_opt i v.assoc
  | Unit | Bool _ | Int _ | Frac _ | Str _ | Pair _ ->
      invalid_arg "Value.view_find: not a view"

(* Constructor rank for the cross-constructor order. *)
let rank = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Frac _ -> 3
  | Str _ -> 4
  | Pair _ -> 5
  | View _ -> 6

(* The canonical order.  Identical to [structural_compare] below — ids
   never participate — but physically-equal shared subtrees return 0
   without being walked, which is what makes deep-view comparisons
   effectively constant once rounds share structure. *)
let rec compare a b =
  if a == b then 0
  else
    match (a, b) with
    | Unit, Unit -> 0
    | Bool x, Bool y -> Bool.compare x y
    | Int x, Int y -> Int.compare x y
    | Frac x, Frac y -> Frac.compare x y
    | Str x, Str y -> String.compare x y
    | Pair x, Pair y ->
        let c = compare x.fst y.fst in
        if c <> 0 then c else compare x.snd y.snd
    | View x, View y -> compare_assoc x.assoc y.assoc
    | (Unit | Bool _ | Int _ | Frac _ | Str _ | Pair _ | View _), _ ->
        Int.compare (rank a) (rank b)

and compare_assoc x y =
  match (x, y) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (i, v) :: x', (j, w) :: y' ->
      let c = Int.compare i j in
      if c <> 0 then c
      else
        let c = compare v w in
        if c <> 0 then c else compare_assoc x' y'

(* Full structural walk, no sharing short-circuits: the oracle that
   [compare] must agree with, and the bench's structural baseline. *)
let rec structural_compare a b =
  match (a, b) with
  | Unit, Unit -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Frac x, Frac y -> Frac.compare x y
  | Str x, Str y -> String.compare x y
  | Pair x, Pair y ->
      let c = structural_compare x.fst y.fst in
      if c <> 0 then c else structural_compare x.snd y.snd
  | View x, View y -> structural_compare_assoc x.assoc y.assoc
  | (Unit | Bool _ | Int _ | Frac _ | Str _ | Pair _ | View _), _ ->
      Int.compare (rank a) (rank b)

and structural_compare_assoc x y =
  match (x, y) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (i, v) :: x', (j, w) :: y' ->
      let c = Int.compare i j in
      if c <> 0 then c
      else
        let c = structural_compare v w in
        if c <> 0 then c else structural_compare_assoc x' y'

let frac n d = Frac (Frac.make n d)

let as_frac = function
  | Frac q -> q
  | Unit | Bool _ | Int _ | Str _ | Pair _ | View _ ->
      invalid_arg "Value.as_frac"

let as_bool = function
  | Bool b -> b
  | Unit | Int _ | Frac _ | Str _ | Pair _ | View _ ->
      invalid_arg "Value.as_bool"

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | Frac q -> Frac.pp ppf q
  | Str s -> Format.pp_print_string ppf s
  | Pair p -> Format.fprintf ppf "(%a,%a)" pp p.fst pp p.snd
  | View v ->
      let pp_entry ppf (i, x) = Format.fprintf ppf "%d:%a" i pp x in
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           pp_entry)
        v.assoc

let to_string v = Format.asprintf "%a" pp v
