examples/objects_power.mli:
