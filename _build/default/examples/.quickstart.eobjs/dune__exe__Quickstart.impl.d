examples/quickstart.ml: Frac List Printf Speedup_theory
