examples/approx_agreement_rounds.ml: Aa_halving Adversary Approx_agreement Executor Frac List Printf Schedule Speedup_theory State_protocol String Value
