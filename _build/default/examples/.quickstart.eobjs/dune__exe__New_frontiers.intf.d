examples/new_frontiers.mli:
