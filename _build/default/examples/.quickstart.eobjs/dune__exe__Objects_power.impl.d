examples/objects_power.ml: Adversary Approx_agreement Augmented Bc_bitwise_aa Bc_consensus Black_box Complex Consensus Frac List Model Printf Sim_object Solvability Value
