examples/consensus_impossibility.mli:
