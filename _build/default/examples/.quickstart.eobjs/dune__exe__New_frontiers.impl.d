examples/new_frontiers.ml: Aa_halving Approx_agreement Closure Complex Consensus Frac List Model Non_iterated Printf Renaming Round_op Simplex Solvability Task Value
