examples/approx_agreement_rounds.mli:
