examples/quickstart.mli:
