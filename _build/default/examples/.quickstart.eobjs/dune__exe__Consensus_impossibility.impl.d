examples/consensus_impossibility.ml: Augmented Black_box Closure Complex Connectivity Consensus Format List Model Printf Round_op Simplex Solvability Task Value Vertex
