(* How much do stronger objects help?  (Sections 4 and 5.)

   Run with:  dune exec examples/objects_power.exe

   test&set has consensus number 2, binary consensus has consensus
   number ∞ — yet for approximate agreement among n >= 3 processes,
   neither buys a single round (Theorems 3 and 4).  This example puts
   the three models side by side, then demonstrates the two §5.3
   algorithms that make the binary-consensus bound essentially tight. *)

let verdict = function
  | Solvability.Solvable _ -> "solvable"
  | Solvability.Unsolvable -> "unsolvable"
  | Solvability.Undecided -> "undecided"

let tas_alpha = Augmented.alpha_const Value.Unit

let () =
  Printf.printf "-- eps-AA round by round: plain IIS vs IIS+test&set --\n";
  let table n m k =
    let eps = Frac.make k m in
    let task = Approx_agreement.task ~n ~m ~eps in
    let inputs = Complex.all_simplices (Approx_agreement.binary_input_complex ~n) in
    Printf.printf "  n=%d, eps=%s:\n" n (Frac.to_string eps);
    List.iter
      (fun t ->
        let plain = Solvability.task_in_model ~inputs Model.Immediate task ~rounds:t in
        let tas =
          Solvability.task_in_augmented ~inputs ~box:Black_box.test_and_set
            ~alpha:tas_alpha task ~rounds:t
        in
        Printf.printf "    t=%d  plain: %-11s  +test&set: %s\n" t (verdict plain)
          (verdict tas))
      [ 0; 1; 2 ]
  in
  table 2 9 1;
  table 3 4 1;

  Printf.printf "\n-- Binary consensus with ID-only proposals (Theorem 4) --\n";
  let m = 4 in
  let task = Approx_agreement.task ~n:3 ~m ~eps:(Frac.make 1 m) in
  let inputs = Complex.all_simplices (Approx_agreement.binary_input_complex ~n:3) in
  List.iter
    (fun beta_desc ->
      let name, beta = beta_desc in
      let v =
        Solvability.task_in_augmented ~inputs ~box:Black_box.bin_consensus
          ~alpha:(Augmented.alpha_of_beta beta) task ~rounds:1
      in
      Printf.printf "  beta = %-10s : 1 round is %s\n" name (verdict v))
    [ ("000", fun _ -> false); ("111", fun _ -> true); ("011", fun i -> i > 1);
      ("101", fun i -> i <> 2) ];

  Printf.printf "\n-- ...but value-dependent proposals beat the ID-only bound --\n";
  let eps = Frac.make 1 4 in
  let rounds = Bc_bitwise_aa.rounds_needed ~eps in
  let schedules =
    Adversary.exhaustive_is ~boxed:true ~participants:[ 1; 2; 3 ] ~rounds
  in
  let failures =
    Adversary.check_task ~box:Sim_object.consensus
      (Bc_bitwise_aa.protocol ~k:2 ~eps)
      task
      ~inputs:[ (1, Value.frac 0 1); (2, Value.frac 3 4); (3, Value.frac 1 1) ]
      ~schedules
  in
  Printf.printf
    "  bitwise AA, eps=1/4: %d rounds, %d exhaustive schedules, %d violations\n"
    rounds (List.length schedules) (List.length failures);

  Printf.printf "\n-- Multi-valued consensus in ceil(log2 n) rounds --\n";
  List.iter
    (fun n ->
      let participants = List.init n (fun i -> i + 1) in
      let rounds = Bc_consensus.rounds_needed ~n in
      let values = List.map (fun i -> Value.Int (10 * i)) participants in
      let task = Consensus.multi ~n ~values in
      let schedules =
        Adversary.random_suite ~model:Model.Immediate ~boxed:true ~participants
          ~rounds ~seed:3 ~count:300
      in
      let failures =
        Adversary.check_task ~box:Sim_object.consensus (Bc_consensus.protocol ~n)
          task
          ~inputs:(List.map2 (fun i v -> (i, v)) participants values)
          ~schedules
      in
      Printf.printf "  n=%d: %d rounds, %d random schedules, %d violations\n" n
        rounds (List.length schedules) (List.length failures))
    [ 2; 4; 7 ]
