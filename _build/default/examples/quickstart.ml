(* Quickstart: the asynchronous speedup theorem in a dozen lines.

   Run with:  dune exec examples/quickstart.exe

   The paper's recipe for the FLP/Herlihy impossibility: binary
   consensus is a fixed point of the closure operator, and it is not
   solvable in zero rounds, so (Lemma 1) it is not wait-free solvable
   at all.  Both facts — plus an independent direct check — are
   machine-verified below. *)

let () =
  let consensus = Speedup_theory.consensus ~n:3 in

  (* 1. The closure of consensus is consensus itself (Corollary 1). *)
  let fixed = Speedup_theory.is_fixed_point consensus in
  Printf.printf "CL_IIS(consensus) = consensus?        %b\n" fixed;

  (* 2. Consensus is not solvable in zero rounds. *)
  let zero = Speedup_theory.solvable ~rounds:0 consensus in
  Printf.printf "consensus solvable in 0 rounds?       %b\n" zero;

  (* 3. Hence unsolvable in any number of rounds; cross-check a few. *)
  List.iter
    (fun t ->
      Printf.printf "consensus solvable in %d round(s)?     %b\n" t
        (Speedup_theory.solvable ~rounds:t consensus))
    [ 1; 2 ];

  (* 4. Approximate agreement, in contrast, is solvable — and the
        speedup theorem relates its round complexities. *)
  let aa = Speedup_theory.approximate_agreement ~n:3 ~m:4 ~eps:(Frac.make 1 4) in
  (match Speedup_theory.min_rounds ~binary_inputs:true aa with
  | Speedup_theory.Exact t ->
      Printf.printf "(1/4)-agreement needs exactly %d rounds (paper: ceil(log2 4) = 2)\n" t
  | Speedup_theory.At_least t ->
      Printf.printf "(1/4)-agreement needs at least %d rounds\n" t);
  Printf.printf "speedup theorem holds on this instance? %b\n"
    (Speedup_theory.check_speedup ~rounds:2
       (Speedup_theory.liberal_approximate_agreement ~n:3 ~m:4 ~eps:(Frac.make 1 4)));

  if not fixed || zero then exit 1
