(* Approximate agreement: lower bounds by closure-chaining, upper
   bounds by running the matching algorithms.

   Run with:  dune exec examples/approx_agreement_rounds.exe

   The paper's Section 5 story end to end, for concrete ε:
   - chain CL(ε-AA) = 2ε-AA (or 3ε for two processes) until the task
     trivializes: the chain length is a round lower bound;
   - measure the true round complexity with the direct solver;
   - run Eq-(2)/(3) algorithms under every immediate-snapshot schedule
     and watch the spread contract geometrically. *)

let () =
  Printf.printf "-- Lower bounds by iterating the closure (Cor 3) --\n";

  (* n = 2: the closure triples epsilon, so 1/9 needs 2 rounds. *)
  let pow b e =
    let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
    go 1 e
  in
  let reference2 k =
    Approx_agreement.task ~n:2 ~m:9 ~eps:(Frac.make (min 9 (pow 3 k)) 9)
  in
  let aa2 = Approx_agreement.task ~n:2 ~m:9 ~eps:(Frac.make 1 9) in
  let bound2 =
    Speedup_theory.lower_bound_by_closure aa2 ~reference:reference2 ~max:4
  in
  Printf.printf "  n=2, eps=1/9 : closure chain gives >= %d rounds (paper: %d)\n"
    bound2
    (Frac.ceil_log ~base:3 (Frac.of_int 9));

  (* n = 3 (liberal version): the closure doubles epsilon. *)
  let reference3 k =
    let num = min 4 (1 lsl k) in
    Approx_agreement.liberal ~n:3 ~m:4 ~eps:(Frac.make num 4)
  in
  let aa3 = Approx_agreement.liberal ~n:3 ~m:4 ~eps:(Frac.make 1 4) in
  let bound3 =
    Speedup_theory.lower_bound_by_closure aa3 ~reference:reference3 ~max:4
  in
  Printf.printf "  n=3, eps=1/4 : closure chain gives >= %d rounds (paper: %d)\n"
    bound3
    (Frac.ceil_log ~base:2 (Frac.of_int 4));

  Printf.printf "\n-- Exact round complexity (direct solver) --\n";
  List.iter
    (fun (n, m, k) ->
      let eps = Frac.make k m in
      let task = Approx_agreement.task ~n ~m ~eps in
      match Speedup_theory.min_rounds ~binary_inputs:true task with
      | Speedup_theory.Exact t ->
          Printf.printf "  n=%d eps=%s : exactly %d rounds\n" n
            (Frac.to_string eps) t
      | Speedup_theory.At_least t ->
          Printf.printf "  n=%d eps=%s : at least %d rounds\n" n
            (Frac.to_string eps) t)
    [ (2, 9, 1); (3, 4, 1) ];

  Printf.printf "\n-- Matching upper bounds in the simulator --\n";
  let run_halving () =
    let m = 8 in
    let eps = Frac.make 1 8 in
    let spec = Aa_halving.spec ~m ~rounds:(Aa_halving.rounds_needed ~eps) in
    let protocol = State_protocol.protocol spec in
    let inputs = [ (1, Value.frac 0 1); (2, Value.frac 3 8); (3, Value.frac 1 1) ] in
    let schedules =
      Adversary.exhaustive_is ~boxed:false ~participants:[ 1; 2; 3 ]
        ~rounds:spec.State_protocol.rounds
    in
    let task = Approx_agreement.task ~n:3 ~m ~eps in
    let failures = Adversary.check_task protocol task ~inputs ~schedules in
    Printf.printf
      "  halving, n=3, eps=1/8: %d exhaustive IS schedules, %d violations\n"
      (List.length schedules) (List.length failures);
    (* Show one run round by round. *)
    let schedule =
      [ Schedule.Is_round [ [ 1 ]; [ 2; 3 ] ];
        Schedule.Is_round [ [ 2 ]; [ 1; 3 ] ];
        Schedule.Is_round [ [ 3 ]; [ 1; 2 ] ] ]
    in
    let result = Executor.run protocol ~inputs ~schedule in
    List.iteri
      (fun idx profile ->
        let r = idx + 1 in
        let states =
          List.map
            (fun (i, view) ->
              Frac.to_string
                (Value.as_frac (State_protocol.state_of_view spec ~round:r i view)))
            profile
        in
        Printf.printf "    after round %d: values = %s\n" r
          (String.concat " " states))
      result.Executor.round_views
  in
  run_halving ()
