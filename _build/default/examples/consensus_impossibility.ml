(* Consensus impossibility, the long way around.

   Run with:  dune exec examples/consensus_impossibility.exe

   This example retraces Section 3.3 in full: it builds the protocol
   complexes, walks the 3-edge path of the Corollary 1 proof inside
   P^(1)(τ), computes the closure in all three iterated models, and
   finishes with Corollary 2 (test&set does not help for n >= 3). *)

let section title = Printf.printf "\n== %s ==\n" title

let () =
  section "Protocol complexes (Figure 8)";
  let sigma =
    Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1); (3, Value.Int 1) ]
  in
  List.iter
    (fun model ->
      let c = Complex.of_facets (Model.one_round_facets model sigma) in
      Format.printf "  one round of %-9s: %a@." (Model.name model)
        Complex.pp_stats c)
    [ Model.Immediate; Model.Snapshot; Model.Collect ];

  section "The path argument of Corollary 1";
  (* Take a hypothetical disagreeing output pair τ = {(1,0),(2,1)} and
     exhibit the path of the proof inside P^(1)(τ): its existence is
     what forces any 1-round local-task solution to collapse the two
     values. *)
  let tau = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ] in
  let p1 = Complex.of_facets (Model.one_round_facets Model.Immediate tau) in
  let v_start = Model.solo_vertex tau 1 and v_end = Model.solo_vertex tau 2 in
  (match Connectivity.path p1 v_start v_end with
  | Some path ->
      Printf.printf "  path from solo(1) to solo(2) in P^1(τ), %d vertices:\n"
        (List.length path);
      List.iter (fun v -> Printf.printf "    %s\n" (Vertex.to_string v)) path
  | None -> Printf.printf "  unexpected: P^1(τ) disconnected!\n");

  section "Closure fixed point in all three models (Corollary 1)";
  let consensus = Consensus.binary ~n:3 in
  let inputs = Task.input_simplices consensus in
  List.iter
    (fun model ->
      let fp =
        Closure.fixed_point_on ~op:(Round_op.plain model) consensus inputs
      in
      Printf.printf "  CL_%-9s(consensus) = consensus: %b\n" (Model.name model) fp)
    [ Model.Immediate; Model.Snapshot; Model.Collect ];

  section "Direct solver cross-check";
  List.iter
    (fun t ->
      let v = Solvability.task_in_model Model.Immediate consensus ~rounds:t in
      Printf.printf "  3-process consensus, %d round(s): %s\n" t
        (match v with
        | Solvability.Solvable _ -> "solvable (?!)"
        | Solvability.Unsolvable -> "unsolvable"
        | Solvability.Undecided -> "undecided"))
    [ 0; 1; 2 ];

  section "Corollary 2: test&set does not rescue n = 3";
  let relaxed = Consensus.relaxed ~n:3 ~values:[ Value.Int 0; Value.Int 1 ] in
  Printf.printf "  relaxed consensus fixed point of CL_{IIS+T&S}: %b\n"
    (Closure.fixed_point_on ~op:Round_op.test_and_set relaxed
       (Task.input_simplices relaxed));
  Printf.printf "  ... while 2-process consensus with test&set takes one round: %b\n"
    (Solvability.is_solvable
       (Solvability.task_in_augmented ~box:Black_box.test_and_set
          ~alpha:(Augmented.alpha_const Value.Unit)
          (Consensus.binary ~n:2) ~rounds:1))
