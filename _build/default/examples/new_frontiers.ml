(* Past the paper's edge: the open questions of its conclusion, run as
   experiments.

   Run with:  dune exec examples/new_frontiers.exe

   1. What happens to the closure when binary-consensus proposals may
      depend on values, not just IDs (the hypothesis Theorem 4 needs)?
   2. Does the speedup machinery survive on the affine and d-solo
      models the introduction mentions?
   3. What changes in non-iterated memory? *)

let section title = Printf.printf "\n== %s ==\n" title

let () =
  section "1. Unrestricted binary consensus: why Theorem 4 restricts inputs";
  let m = 4 in
  let laa = Approx_agreement.liberal ~n:3 ~m ~eps:(Frac.make 1 m) in
  let sigma =
    Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ]
  in
  let id_only = Closure.delta ~op:(Round_op.bin_consensus_beta (fun _ -> false)) laa sigma in
  let unrestricted =
    Closure.delta_any
      ~ops:(Closure.bin_consensus_ops [ 1; 2; 3 ])
      ~name:"frontier-any" laa sigma
  in
  Printf.printf
    "  closure of liberal (1/4)-AA at (0,1/2,1):\n\
    \    ID-only proposals   : %d facets  (= the 2eps task, Claim 6)\n\
    \    unrestricted proposals: %d facets  (= everything in range!)\n"
    (Complex.facet_count id_only)
    (Complex.facet_count unrestricted);
  Printf.printf
    "  -> one unrestricted closure step erases the precision constraint;\n\
    \     the closure technique cannot bound value-dependent algorithms,\n\
    \     which is exactly why Theorem 4 assumes ID-only inputs.\n";

  section "2. Affine and d-solo models (paper §1.2)";
  let consensus = Consensus.binary ~n:3 in
  Printf.printf "  consensus still a fixed point under 2-concurrency: %b\n"
    (Closure.fixed_point_on ~op:(Round_op.k_concurrency 2) consensus
       (Task.input_simplices consensus));
  let aa = Approx_agreement.task ~n:2 ~m:3 ~eps:(Frac.make 1 3) in
  let inputs = Complex.all_simplices (Approx_agreement.binary_input_complex ~n:2) in
  Printf.printf "  (1/3)-AA under 2-solo: fixed point (hence unsolvable): %b\n"
    (Closure.fixed_point_on ~op:(Round_op.d_solo 2) aa inputs);
  Printf.printf "  ... while one round of plain IIS solves it: %b\n"
    (Solvability.is_solvable
       (Solvability.task_in_model ~inputs Model.Immediate aa ~rounds:1));

  section "3. Non-iterated memory: breakage and repair";
  let spec = Aa_halving.spec ~m:4 ~rounds:2 in
  let run_inputs = [ (1, Value.frac 0 1); (2, Value.frac 1 1) ] in
  let task = Approx_agreement.task ~n:2 ~m:4 ~eps:(Frac.make 1 4) in
  let sigma2 = Simplex.of_list run_inputs in
  let violations runner =
    List.length
      (List.filter
         (fun s ->
           match runner spec ~inputs:run_inputs ~schedule:s with
           | [] -> false
           | outs -> not (Complex.mem (Simplex.of_list outs) (Task.delta task sigma2)))
         (Non_iterated.exhaustive ~participants:[ 1; 2 ] ~rounds:2))
  in
  Printf.printf "  halving over all 70 interleavings of reused registers:\n";
  Printf.printf "    raw port          : %d violations\n" (violations Non_iterated.run);
  Printf.printf "    round-tagged port : %d violations\n"
    (violations Non_iterated.run_emulated);
  let profiles =
    Non_iterated.one_round_profiles ~participants:[ 1; 2; 3 ]
      ~inputs:[ (1, Value.Int 1); (2, Value.Int 2); (3, Value.Int 3) ]
  in
  Printf.printf
    "  one emulated round realizes %d view profiles = the snapshot complex\n"
    (List.length profiles);

  section "4. A solvable companion: adaptive renaming";
  List.iter
    (fun n ->
      let t = Renaming.task ~n in
      let min_rounds =
        let rec scan r =
          if r > 3 then "?"
          else if
            Solvability.is_solvable
              (Solvability.task_in_model Model.Immediate t ~rounds:r)
          then string_of_int r
          else scan (r + 1)
        in
        scan 0
      in
      Printf.printf "  adaptive (2p-1)-renaming, n=%d: %s round(s)\n" n min_rounds)
    [ 2; 3 ]
