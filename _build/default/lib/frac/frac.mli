(** Exact rational arithmetic on machine integers.

    All values manipulated by the approximate-agreement tasks (inputs,
    outputs, the precision parameter [epsilon], the grid step [1/m]) are
    rationals of small magnitude, so a normalized [int * int]
    representation is exact and fast.  Overflow is not a concern for the
    instance sizes used in this repository (denominators stay far below
    [2^31]); a defensive check guards construction anyway. *)

type t
(** A rational number in lowest terms with positive denominator. *)

exception Division_by_zero

val make : int -> int -> t
(** [make num den] is the rational [num/den] in lowest terms.
    @raise Division_by_zero if [den = 0]. *)

val of_int : int -> t

val zero : t
val one : t
val half : t

val num : t -> int
(** Numerator (sign-carrying). *)

val den : t -> int
(** Denominator, always [> 0]. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** @raise Division_by_zero when dividing by [zero]. *)

val neg : t -> t
val abs : t -> t
val inv : t -> t
(** @raise Division_by_zero on [zero]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val min : t -> t -> t
val max : t -> t -> t

val sign : t -> int
(** [-1], [0] or [1]. *)

val is_integer : t -> bool

val is_multiple_of : t -> step:t -> bool
(** [is_multiple_of x ~step] holds when [x / step] is an integer.
    Used to check that values sit on the [1/m] grid of Definition 3. *)

val to_float : t -> float

val floor_div : t -> t -> int
(** [floor_div x y] is [⌊x / y⌋] as an integer, for [y > 0]. *)

val ceil_log : base:int -> t -> int
(** [ceil_log ~base x] is [⌈log_base (x)⌉] for a rational [x >= 1],
    computed exactly by repeated multiplication.  Used for the paper's
    bounds [⌈log₂ 1/ε⌉] and [⌈log₃ 1/ε⌉].
    @raise Invalid_argument if [x < 1] or [base < 2]. *)

val pp : Format.formatter -> t -> unit
(** Prints ["p/q"], or just ["p"] when the denominator is 1. *)

val to_string : t -> string
