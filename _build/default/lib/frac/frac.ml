type t = { n : int; d : int }

exception Division_by_zero

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

(* Denominators in this repository stay tiny (grids up to a few hundred
   steps); this bound catches accidental blow-ups long before overflow. *)
let max_den = 1 lsl 30

let make n d =
  if d = 0 then raise Division_by_zero;
  let s = if d < 0 then -1 else 1 in
  let n = s * n and d = s * d in
  let g = gcd (Stdlib.abs n) d in
  let g = if g = 0 then 1 else g in
  let r = { n = n / g; d = d / g } in
  assert (r.d > 0 && r.d < max_den);
  r

let of_int n = { n; d = 1 }
let zero = of_int 0
let one = of_int 1
let half = make 1 2
let num t = t.n
let den t = t.d
let add a b = make ((a.n * b.d) + (b.n * a.d)) (a.d * b.d)
let sub a b = make ((a.n * b.d) - (b.n * a.d)) (a.d * b.d)
let mul a b = make (a.n * b.n) (a.d * b.d)

let div a b =
  if b.n = 0 then raise Division_by_zero;
  make (a.n * b.d) (a.d * b.n)

let neg a = { a with n = -a.n }
let abs a = { a with n = Stdlib.abs a.n }

let inv a =
  if a.n = 0 then raise Division_by_zero;
  make a.d a.n

let compare a b = Stdlib.compare (a.n * b.d) (b.n * a.d)
let equal a b = a.n = b.n && a.d = b.d
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let min a b = if Stdlib.( <= ) (compare a b) 0 then a else b
let max a b = if Stdlib.( >= ) (compare a b) 0 then a else b
let sign a = Stdlib.compare a.n 0
let is_integer a = a.d = 1
let is_multiple_of x ~step = is_integer (div x step)
let to_float a = float_of_int a.n /. float_of_int a.d

let floor_div x y =
  assert (Stdlib.( > ) y.n 0);
  let q = div x y in
  if Stdlib.( >= ) q.n 0 then q.n / q.d else -(((-q.n) + q.d - 1) / q.d)

let ceil_log ~base x =
  if Stdlib.( < ) base 2 then invalid_arg "Frac.ceil_log: base < 2";
  if x < one then invalid_arg "Frac.ceil_log: argument < 1";
  let b = of_int base in
  let rec loop acc k = if acc >= x then k else loop (mul acc b) (k + 1) in
  loop one 0

let pp ppf a =
  if a.d = 1 then Format.fprintf ppf "%d" a.n
  else Format.fprintf ppf "%d/%d" a.n a.d

let to_string a = Format.asprintf "%a" pp a
