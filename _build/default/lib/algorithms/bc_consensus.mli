(** Multi-valued consensus from binary consensus in [⌈log₂ n⌉] rounds
    (Section 5.3, first technique; cf. [34, 36]).

    The processes agree bit by bit on the identity of a participating
    process and decide its input.  Every process carries a candidate
    [(id, input)]; at round [r] it proposes the [r]-th bit (MSB first)
    of [candidate id − 1] — {e a value that depends only on its state,
    and in round 1 only on its own ID} — and then adopts any collected
    candidate whose [r]-th bit matches the box decision.  The box
    winner's candidate is always visible (it wrote before invoking), so
    adoption never fails; after [⌈log₂ n⌉] rounds all candidates
    coincide. *)

val rounds_needed : n:int -> int
(** [⌈log₂ n⌉] (and 0 for [n = 1]). *)

val protocol : n:int -> Protocol.t
(** Run with [Sim_object.consensus]. *)
