(** ε-approximate agreement from binary consensus in [⌈log₂ 1/ε⌉]
    rounds (Section 5.3, second technique).

    Values live on the grid [k/m] with [m = 2^K].  At round [r] every
    process proposes the [r]-th binary digit (MSB first) of its current
    value — clamped to [m − 1] so that the value 1 shares the digits of
    [1 − 1/m] — and adopts any collected value whose [r]-th digit
    matches the box decision.  After [t] rounds all current values
    share their first [t] digits, hence are within [2^{-t}]; outputs
    are always some participant's original-range value, so validity
    holds.  Note the box input depends on the {e value}, not the ID —
    this is the algorithm family to which the Theorem 4 lower bound
    deliberately does {b not} apply. *)

val rounds_needed : eps:Frac.t -> int

val spec : k:int -> rounds:int -> State_protocol.spec
(** Grid [m = 2^k]; requires [rounds <= k]. *)

val protocol : k:int -> eps:Frac.t -> Protocol.t
(** @raise Invalid_argument if [ε < 2^{-k}]. *)
