let rounds_needed ~eps = Frac.ceil_log ~base:3 (Frac.inv eps)

let pow b e =
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  go 1 e

let spec ~m ~rounds =
  if rounds < 0 then invalid_arg "Aa_thirds.spec: negative rounds";
  if m mod pow 3 rounds <> 0 then
    invalid_arg "Aa_thirds.spec: 3^rounds must divide m";
  {
    State_protocol.name = Printf.sprintf "aa-thirds(m=%d,t=%d)" m rounds;
    rounds;
    init = (fun _i input -> input);
    step =
      (fun ~round i ~box:_ states ->
        let eps_r = Frac.make 1 (pow 3 round) in
        match states with
        | [ (_, v) ] -> v (* solo: keep the current value *)
        | [ (i1, v1); (i2, v2) ] ->
            let y1 = Value.as_frac v1 and y2 = Value.as_frac v2 in
            (* Identify the owners of the low and high values; ties are
               broken by id so both processes pick consistently. *)
            let lo_owner, lo, hi =
              if Frac.(y1 < y2) || (Frac.equal y1 y2 && i1 < i2) then (i1, y1, y2)
              else (i2, y2, y1)
            in
            let z = Frac.min hi (Frac.add lo eps_r) in
            let w = Frac.min hi (Frac.add z eps_r) in
            Value.Frac (if i = lo_owner then w else z)
        | [] | _ :: _ -> invalid_arg "Aa_thirds: more than two processes")
    ;
    box_input = (fun ~round:_ _i _state -> Value.Unit);
    output = (fun _i state -> state);
  }

let protocol ~m ~eps =
  let rounds = rounds_needed ~eps in
  State_protocol.protocol (spec ~m ~rounds)
