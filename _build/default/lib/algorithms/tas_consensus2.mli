(** One-round 2-process (multi-valued) consensus with test&set
    (Section 4.3, Figure 4).

    Write the input, invoke test&set, collect.  The winner outputs its
    own input; a loser outputs the other process's input, which is
    guaranteed to be visible: the winner wrote before invoking, and the
    loser's collect follows its own (later) invocation. *)

val protocol : Protocol.t
(** A 1-round protocol; run it with [Sim_object.test_and_set]. *)

val decide : int -> Value.t -> Value.t
(** The decision map, exposed for direct inspection against the
    simplicial map of Figure 4. *)
