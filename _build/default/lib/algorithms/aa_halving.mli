(** The halving approximate-agreement algorithm (Equation (3)).

    At round [r] every process replaces its value by
    [min(max seen, min seen + 2^{-r})].  Under immediate snapshot the
    spread halves each round, so [⌈log₂ 1/ε⌉] rounds solve
    ε-approximate agreement for any number of processes — the upper
    bound matching Corollary 3 (n ≥ 3) and Theorem 3.  Outputs stay on
    the 1/m grid provided [2^rounds] divides [m] (no averaging, as
    required by Definition 3). *)

val rounds_needed : eps:Frac.t -> int
(** [⌈log₂ 1/ε⌉]. *)

val spec : m:int -> rounds:int -> State_protocol.spec
(** @raise Invalid_argument unless [2^rounds] divides [m]. *)

val protocol : m:int -> eps:Frac.t -> Protocol.t
(** The full protocol with [rounds_needed eps] rounds.
    @raise Invalid_argument unless [ε] and all the per-round bounds
    are on the 1/m grid. *)
