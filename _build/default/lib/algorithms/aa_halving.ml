let rounds_needed ~eps = Frac.ceil_log ~base:2 (Frac.inv eps)

let pow b e =
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  go 1 e

let fracs states = List.map (fun (_, v) -> Value.as_frac v) states

let min_max values =
  match values with
  | [] -> invalid_arg "Aa_halving: empty view"
  | v :: _ ->
      ( List.fold_left Frac.min v values,
        List.fold_left Frac.max v values )

let spec ~m ~rounds =
  if rounds < 0 then invalid_arg "Aa_halving.spec: negative rounds";
  if m mod pow 2 rounds <> 0 then
    invalid_arg "Aa_halving.spec: 2^rounds must divide m";
  {
    State_protocol.name = Printf.sprintf "aa-halving(m=%d,t=%d)" m rounds;
    rounds;
    init = (fun _i input -> input);
    step =
      (fun ~round _i ~box:_ states ->
        let lo, hi = min_max (fracs states) in
        let eps_r = Frac.make 1 (pow 2 round) in
        Value.Frac (Frac.min hi (Frac.add lo eps_r)));
    box_input = (fun ~round:_ _i _state -> Value.Unit);
    output = (fun _i state -> state);
  }

let protocol ~m ~eps =
  let rounds = rounds_needed ~eps in
  State_protocol.protocol (spec ~m ~rounds)
