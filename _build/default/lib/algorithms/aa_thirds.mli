(** Two-process approximate agreement by thirds (Equation (2)).

    One round shrinks the spread from [3ε] to [ε]: with [lo ≤ hi] the
    current values, [z = min(hi, lo + ε)] and [w = min(hi, z + ε)], the
    owner of [hi] moves to [z] when it sees both values, the owner of
    [lo] moves to [w]; solo processes keep their values.  Iterating
    gives the tight [⌈log₃ 1/ε⌉]-round algorithm for [n = 2]
    (Corollary 3).  Grid preservation needs [3^rounds | m]. *)

val rounds_needed : eps:Frac.t -> int
(** [⌈log₃ 1/ε⌉]. *)

val spec : m:int -> rounds:int -> State_protocol.spec
(** @raise Invalid_argument unless [3^rounds] divides [m]. *)

val protocol : m:int -> eps:Frac.t -> Protocol.t
