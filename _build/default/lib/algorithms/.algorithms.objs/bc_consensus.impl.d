lib/algorithms/bc_consensus.ml: Frac List Printf State_protocol Value
