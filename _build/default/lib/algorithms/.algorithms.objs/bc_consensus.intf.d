lib/algorithms/bc_consensus.mli: Protocol
