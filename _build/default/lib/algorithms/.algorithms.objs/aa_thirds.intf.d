lib/algorithms/aa_thirds.mli: Frac Protocol State_protocol
