lib/algorithms/aa_halving.mli: Frac Protocol State_protocol
