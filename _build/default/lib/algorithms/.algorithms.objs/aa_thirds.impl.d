lib/algorithms/aa_thirds.ml: Frac Printf State_protocol Value
