lib/algorithms/tas_consensus2.mli: Protocol Value
