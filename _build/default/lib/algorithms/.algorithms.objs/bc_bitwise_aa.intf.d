lib/algorithms/bc_bitwise_aa.mli: Frac Protocol State_protocol
