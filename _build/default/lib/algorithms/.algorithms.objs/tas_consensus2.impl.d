lib/algorithms/tas_consensus2.ml: List Protocol Value
