lib/algorithms/bc_bitwise_aa.ml: Frac List Printf State_protocol Value
