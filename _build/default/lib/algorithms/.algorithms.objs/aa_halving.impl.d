lib/algorithms/aa_halving.ml: Frac List Printf State_protocol Value
