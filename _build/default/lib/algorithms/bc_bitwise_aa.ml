let rounds_needed ~eps = Frac.ceil_log ~base:2 (Frac.inv eps)

let pow2 e = 1 lsl e

(* Numerator of a grid value over m = 2^k, clamped to m - 1. *)
let clamped_num ~m state =
  let q = Value.as_frac state in
  let num = Frac.num q * (m / Frac.den q) in
  min num (m - 1)

let digit ~k ~r num = num lsr (k - r) land 1

let spec ~k ~rounds =
  if rounds > k then invalid_arg "Bc_bitwise_aa.spec: rounds > k";
  if rounds < 0 then invalid_arg "Bc_bitwise_aa.spec: negative rounds";
  let m = pow2 k in
  {
    State_protocol.name = Printf.sprintf "bc-bitwise-aa(m=%d,t=%d)" m rounds;
    rounds;
    init = (fun _i input -> input);
    step =
      (fun ~round _i ~box states ->
        let decided =
          match box with
          | Some (Value.Bool b) -> if b then 1 else 0
          | Some _ | None -> invalid_arg "Bc_bitwise_aa: missing box output"
        in
        let matching =
          List.filter
            (fun (_, st) -> digit ~k ~r:round (clamped_num ~m st) = decided)
            states
        in
        match matching with
        | (_, st) :: _ -> st
        | [] ->
            (* The box winner's value is always collected. *)
            invalid_arg "Bc_bitwise_aa: no adoptable value")
    ;
    box_input =
      (fun ~round _i state ->
        Value.Bool (digit ~k ~r:round (clamped_num ~m state) = 1));
    output = (fun _i state -> state);
  }

let protocol ~k ~eps =
  let rounds = rounds_needed ~eps in
  if rounds > k then invalid_arg "Bc_bitwise_aa.protocol: eps below grid resolution";
  State_protocol.protocol (spec ~k ~rounds)
