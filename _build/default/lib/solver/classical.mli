(** The classical topological impossibility arguments, mechanized.

    The paper's closure technique replaces two standard routes:
    valency/connectivity analysis for consensus (FLP [18],
    Herlihy–Shavit [27]) and the diameter analysis of the subdivided
    simplex for approximate agreement (Hoest–Shavit [28]).  This
    module machine-checks those classical arguments on the same
    protocol complexes, so the reproduction can compare techniques on
    identical objects (experiment E15). *)

type consensus_report = {
  rounds : int;
  protocol_connected : bool;
      (** the full protocol complex [P^(t)(I)] is path-connected *)
  outputs_monochromatic : bool;
      (** every edge of the consensus output complex carries one value *)
  solo_values_differ : bool;
      (** Δ forces the all-0 and all-1 solo corners to distinct values *)
}

val consensus_argument : n:int -> rounds:int -> consensus_report
(** Checks the three facts above for binary consensus under IIS; their
    conjunction is a proof that no decision map exists: a simplicial
    map into a monochromatic-edge complex is constant on connected
    components, contradicting the pinned solo corners. *)

val consensus_argument_valid : consensus_report -> bool

val solo_distance : Model.t -> n:int -> rounds:int -> int option
(** Graph distance in the 1-skeleton of [P^(t)(σ)] between the solo
    corners of processes 1 and 2 (σ = the standard simplex on [n]
    processes).  The Hoest–Shavit shape: [3^t] for [n = 2] and [2^t]
    for [n ≥ 3]. *)

val diameter_lower_bound : Model.t -> n:int -> rounds:int -> Frac.t
(** The ε below which [rounds] rounds are impossible by the diameter
    argument: any solution map sends each edge of [P^(t)] to an edge
    of the output complex (spread ≤ ε), so walking a shortest path
    between pinned solo corners gives [1 <= distance · ε], i.e.
    ε-agreement needs [ε >= 1/distance].  Returns [1/distance]. *)
