let gather ~inputs ~protocol ~delta =
  let vars = ref Vertex.Set.empty in
  let cands : (int, Vertex.Set.t) Hashtbl.t = Hashtbl.create 8 in
  let constraints =
    List.map
      (fun sigma ->
        let p = protocol sigma in
        let d = delta sigma in
        List.iter (fun v -> vars := Vertex.Set.add v !vars) (Complex.vertices p);
        List.iter
          (fun w ->
            let c = Vertex.color w in
            let prev =
              Option.value ~default:Vertex.Set.empty (Hashtbl.find_opt cands c)
            in
            Hashtbl.replace cands c (Vertex.Set.add w prev))
          (Complex.vertices d);
        (Complex.facets p, d))
      inputs
  in
  let var_list = Vertex.Set.elements !vars in
  let candidates v =
    Vertex.Set.elements
      (Option.value ~default:Vertex.Set.empty
         (Hashtbl.find_opt cands (Vertex.color v)))
  in
  (var_list, candidates, constraints)

let search_space ~inputs ~protocol ~delta =
  let var_list, candidates, _ = gather ~inputs ~protocol ~delta in
  List.fold_left
    (fun acc v -> acc *. float_of_int (List.length (candidates v)))
    1.0 var_list

let decide ?(max_maps = 2_000_000) ~inputs ~protocol ~delta () =
  let var_list, candidates, constraints = gather ~inputs ~protocol ~delta in
  if search_space ~inputs ~protocol ~delta > float_of_int max_maps then
    Solvability.Undecided
  else if List.exists (fun v -> candidates v = []) var_list then
    Solvability.Unsolvable
  else begin
    let assignment : Vertex.t Vertex.Tbl.t =
      Vertex.Tbl.create (List.length var_list)
    in
    let satisfies () =
      List.for_all
        (fun (facets, d) ->
          List.for_all
            (fun facet ->
              let image =
                Simplex.of_vertices
                  (List.map (fun v -> Vertex.Tbl.find assignment v)
                     (Simplex.vertices facet))
              in
              Complex.mem image d)
            facets)
        constraints
    in
    let rec go = function
      | [] ->
          if satisfies () then
            Some
              (Simplicial_map.of_assoc
                 (List.map (fun v -> (v, Vertex.Tbl.find assignment v)) var_list))
          else None
      | v :: rest ->
          List.fold_left
            (fun found w ->
              match found with
              | Some _ -> found
              | None ->
                  Vertex.Tbl.replace assignment v w;
                  let r = go rest in
                  Vertex.Tbl.remove assignment v;
                  r)
            None (candidates v)
    in
    match go var_list with
    | Some f -> Solvability.Solvable f
    | None -> Solvability.Unsolvable
  end
