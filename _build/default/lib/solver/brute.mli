(** Brute-force solvability by exhaustive map enumeration.

    A deliberately naive second backend: enumerate {e every} chromatic
    vertex map from the protocol complex to the candidate output
    vertices and test the Δ-agreement condition directly.  Exponential
    — usable only when [Π |candidates(v)|] is small — but independent
    of the CSP machinery, so agreement between the two backends on
    small instances guards the CSP's pruning and backtracking logic
    (see the cross-check property in [test_brute.ml]). *)

val decide :
  ?max_maps:int ->
  inputs:Simplex.t list ->
  protocol:(Simplex.t -> Complex.t) ->
  delta:(Simplex.t -> Complex.t) ->
  unit ->
  Solvability.verdict
(** Same contract as [Solvability.decide].  Returns [Undecided] if the
    search space exceeds [max_maps] (default [2_000_000]). *)

val search_space :
  inputs:Simplex.t list ->
  protocol:(Simplex.t -> Complex.t) ->
  delta:(Simplex.t -> Complex.t) ->
  float
(** The number of candidate maps (as a float, it overflows quickly). *)
