lib/solver/classical.ml: Complex Connectivity Consensus Frac List Model Simplex Task Value Vertex
