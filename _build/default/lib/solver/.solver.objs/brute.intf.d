lib/solver/brute.mli: Complex Simplex Solvability
