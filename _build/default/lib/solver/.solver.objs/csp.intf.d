lib/solver/csp.mli:
