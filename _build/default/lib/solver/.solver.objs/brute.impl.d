lib/solver/brute.ml: Complex Hashtbl List Option Simplex Simplicial_map Solvability Vertex
