lib/solver/solvability.ml: Array Augmented Complex Csp Hashtbl List Local_task Logs Model Simplex Simplicial_map Task Vertex
