lib/solver/csp.ml: Array Bytes List Queue Stack
