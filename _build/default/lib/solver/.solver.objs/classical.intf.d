lib/solver/classical.mli: Frac Model
