lib/solver/solvability.mli: Augmented Black_box Complex Model Simplex Simplicial_map Task
