type consensus_report = {
  rounds : int;
  protocol_connected : bool;
  outputs_monochromatic : bool;
  solo_values_differ : bool;
}

let rec solo_view_after rounds i value =
  if rounds = 0 then value
  else solo_view_after (rounds - 1) i (Model.solo_view i value)

let consensus_argument ~n ~rounds =
  let task = Consensus.binary ~n in
  (* Full protocol complex: union over all input facets. *)
  let protocol =
    List.fold_left
      (fun acc sigma ->
        Complex.union acc (Model.protocol_complex Model.Immediate sigma rounds))
      Complex.empty
      (Complex.facets (Task.inputs task))
  in
  let protocol_connected = Connectivity.connected protocol in
  let outputs_monochromatic =
    List.for_all
      (fun facet ->
        match List.sort_uniq Value.compare (Simplex.values facet) with
        | [ _ ] -> true
        | [] | _ :: _ -> false)
      (Complex.facets (Task.outputs task))
  in
  let forced v =
    (* Δ on the solo input (i, v) pins the output. *)
    let sigma = Simplex.of_list [ (1, Value.Int v) ] in
    match Complex.facets (Task.delta task sigma) with
    | [ f ] -> Simplex.value 1 f
    | _ -> Value.Unit
  in
  let solo_values_differ = not (Value.equal (forced 0) (forced 1)) in
  { rounds; protocol_connected; outputs_monochromatic; solo_values_differ }

let consensus_argument_valid r =
  r.protocol_connected && r.outputs_monochromatic && r.solo_values_differ

let standard_simplex n =
  Simplex.of_list (List.init n (fun i -> (i + 1, Value.Int (i + 1))))

let solo_distance model ~n ~rounds =
  let sigma = standard_simplex n in
  let p = Model.protocol_complex model sigma rounds in
  let corner i =
    Vertex.make i (solo_view_after rounds i (Simplex.value i sigma))
  in
  match Connectivity.path p (corner 1) (corner 2) with
  | Some path -> Some (List.length path - 1)
  | None -> None

let diameter_lower_bound model ~n ~rounds =
  match solo_distance model ~n ~rounds with
  | Some d when d > 0 -> Frac.make 1 d
  | Some _ | None -> Frac.one
