(** Adversarial schedules for the iterated models.

    A schedule fixes, for each round, the interleaving of the atomic
    steps of the participating processes.  Immediate-snapshot rounds
    are given by ordered partitions whose blocks additionally carry the
    black-box invocation order (only relevant in augmented runs);
    collect and snapshot rounds are given by explicit step sequences. *)

type step =
  | Write of int      (** process writes its register *)
  | Read of int * int (** [Read (i, j)]: [i] reads [j]'s register *)
  | Snapshot of int   (** atomic read of the whole array *)
  | Invoke of int     (** black-box invocation *)

type round =
  | Is_round of int list list
      (** Immediate snapshot: blocks in scheduling order; within a
          block, the list order is the box invocation order. *)
  | Step_round of step list

type t = round list

val validate_round : participants:int list -> boxed:bool -> round -> bool
(** Well-formedness: every participant appears exactly once (IS), or
    performs write-then-reads/snapshot in program order with the box
    invocation between write and first read when [boxed]. *)

val is_rounds : participants:int list -> rounds:int -> t list
(** All immediate-snapshot schedules (every combination of ordered
    partitions; within-block orders are left as listed, which is
    exhaustive up to box symmetry only for plain runs — use
    [is_rounds_boxed] when the box winner matters). *)

val is_rounds_boxed : participants:int list -> rounds:int -> t list
(** All IS schedules including all within-first-block invocation
    orders (the box-relevant part of the interleaving). *)

val solo_first : participants:int list -> rounds:int -> int -> t
(** The schedule where the given process runs solo-first at every
    round. *)

val collect_round_exhaustive : participants:int list -> round list
(** Every one-round write/read interleaving of the collect model (all
    read orders); exponential — intended for [n <= 3]. *)

val snapshot_round_exhaustive : participants:int list -> round list
(** Every one-round write/snapshot interleaving. *)

val round_of_matrix : Collect_matrix.t -> round
(** A step sequence realizing a given collect matrix (the constructive
    direction of the Appendix A.3.4 correspondence). *)

val random_is : ?boxed:bool -> participants:int list -> rounds:int ->
  Random.State.t -> t
val random_steps :
  model:Model.t -> participants:int list -> rounds:int -> Random.State.t -> t
(** Random collect or snapshot schedule (uniform over a natural
    generation process, not over facets). *)
