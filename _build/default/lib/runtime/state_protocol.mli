(** Round-by-round "current value" protocols on top of the
    full-information model.

    Most algorithms of the paper (halving approximate agreement,
    bit-by-bit agreement, …) are naturally described by a state carried
    across rounds.  In the full-information model the state of a
    process after round [r] is a function of its nested view, so we
    recover it by structural recursion on the view; the resulting
    protocol is literally of the generic Algorithm 1/2 form. *)

type spec = {
  name : string;
  rounds : int;
  init : int -> Value.t -> Value.t;
      (** state before round 1, from the input *)
  step :
    round:int -> int -> box:Value.t option -> (int * Value.t) list -> Value.t;
      (** new state from the box output (augmented runs) and the
          collected states [(j, state of j before this round)] *)
  box_input : round:int -> int -> Value.t -> Value.t;
      (** box proposal from the current state (augmented runs) *)
  output : int -> Value.t -> Value.t;  (** decision from the final state *)
}

val protocol : spec -> Protocol.t
(** The induced full-information protocol: its decision map unfolds
    the nested view to recover the final state, and its [α] recovers
    the current state before proposing. *)

val state_of_view : spec -> round:int -> int -> Value.t -> Value.t
(** State of process [i] after [round] rounds given its nested view
    (round 0 = input). *)
