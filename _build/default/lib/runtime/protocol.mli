(** Full-information round-based protocols (Algorithms 1 and 2).

    A protocol is determined by its round count, the decision function
    applied to the final view, and — in augmented runs — the function
    [α] computing black-box inputs.  All internal computation is
    deferred to the decision map, exactly as in the paper's generic
    algorithm form. *)

type t = {
  name : string;
  rounds : int;
  alpha : round:int -> int -> Value.t -> Value.t;
      (** Box input from the current view; ignored in plain runs. *)
  decide : int -> Value.t -> Value.t;
      (** [decide i V_i]: the simplicial decision map [f]. *)
}

val make :
  name:string -> rounds:int ->
  ?alpha:(round:int -> int -> Value.t -> Value.t) ->
  decide:(int -> Value.t -> Value.t) -> unit -> t
(** [alpha] defaults to the constant [Unit] input. *)

val full_information : rounds:int -> t
(** The identity protocol: outputs the final view itself.  Used for
    cross-checking the simulator against protocol complexes. *)
