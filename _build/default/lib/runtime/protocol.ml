type t = {
  name : string;
  rounds : int;
  alpha : round:int -> int -> Value.t -> Value.t;
  decide : int -> Value.t -> Value.t;
}

let default_alpha ~round:_ _i _view = Value.Unit

let make ~name ~rounds ?(alpha = default_alpha) ~decide () =
  if rounds < 0 then invalid_arg "Protocol.make: negative round count";
  { name; rounds; alpha; decide }

let full_information ~rounds =
  make ~name:(Printf.sprintf "full-information(%d)" rounds) ~rounds
    ~decide:(fun _i view -> view)
    ()
