let protocol_of_map ~name ~rounds f =
  Protocol.make ~name ~rounds
    ~decide:(fun i view ->
      match Simplicial_map.apply f (Vertex.make i view) with
      | v -> Vertex.value v
      | exception Not_found ->
          invalid_arg
            (Printf.sprintf "Synthesis: view of process %d outside the solved domain" i))
    ()

let synthesize ?node_limit ?inputs model task ~rounds =
  let inputs =
    match inputs with Some l -> l | None -> Task.input_simplices task
  in
  match
    Solvability.decide ?node_limit ~inputs
      ~protocol:(fun sigma -> Model.protocol_complex model sigma rounds)
      ~delta:(Task.delta task) ()
  with
  | Solvability.Solvable f ->
      Some
        (protocol_of_map
           ~name:(Printf.sprintf "synthesized(%s,t=%d)" task.Task.name rounds)
           ~rounds f)
  | Solvability.Unsolvable | Solvability.Undecided -> None

let validate protocol task ~inputs ~exhaustive =
  let participants = List.map fst inputs in
  let rounds = protocol.Protocol.rounds in
  let base =
    if exhaustive then
      Adversary.exhaustive_is ~boxed:false ~participants ~rounds
    else
      Adversary.random_suite ~model:Model.Immediate ~boxed:false ~participants
        ~rounds ~seed:41 ~count:500
  in
  let crashed =
    match (participants, base) with
    | _ :: victim :: _, s :: _ when rounds >= 1 ->
        [ Adversary.with_crash s ~proc:victim ~round:1 ]
    | _ -> []
  in
  Adversary.check_task protocol task ~inputs ~schedules:(base @ crashed) = []
