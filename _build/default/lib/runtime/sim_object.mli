(** Linearizable shared objects for the operational simulator.

    Invocations happen in schedule order; both objects are
    deterministic given that order, which realizes the consistency
    assumption of Section 4.1. *)

type t

val test_and_set : unit -> t
(** First invoker gets [Bool true], everyone else [Bool false]. *)

val consensus : unit -> t
(** First invoker's proposal wins; every invoker receives it. *)

val invoke : t -> int -> Value.t -> Value.t
(** [invoke obj i proposal]: one atomic invocation by process [i]. *)

val name : t -> string
