(** The operational simulator: runs a protocol under a schedule.

    Each round uses a fresh array of SWMR registers (the iterated
    model) and, in augmented runs, a fresh black-box object.  Processes
    absent from a round's schedule are considered crashed from that
    round on: their earlier writes remain visible but they take no
    further steps and produce no output (wait-freedom means the others
    terminate regardless). *)

type result = {
  outputs : (int * Value.t) list;
      (** decisions of the processes alive through every round *)
  round_views : (int * Value.t) list list;
      (** the view profile after each round (alive processes only) —
          directly comparable with protocol-complex simplices *)
}

val run :
  ?box:(unit -> Sim_object.t) ->
  Protocol.t ->
  inputs:(int * Value.t) list ->
  schedule:Schedule.t ->
  result
(** @raise Invalid_argument if the schedule has fewer rounds than the
    protocol, or a round schedules a process without input. *)

val outputs_simplex : result -> Simplex.t
(** The decision profile as a chromatic simplex (for checking against
    a task's Δ). @raise Invalid_argument when no process decided. *)

val final_view_simplex : result -> Simplex.t
(** The last round's view profile as a simplex of the protocol
    complex. *)
