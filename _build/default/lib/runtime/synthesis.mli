(** Protocol synthesis: turning a solver witness into executable code.

    A task solution in the topological sense is a chromatic simplicial
    map [f : P^(t) → O] (Section 2.2) — which is exactly the decision
    function of Algorithm 1.  This module closes the loop between the
    solver and the simulator: the map found by [Solvability] becomes a
    runnable [Protocol.t] whose decisions are table lookups, and can
    then be validated against adversarial schedules like any hand-
    written algorithm. *)

val protocol_of_map :
  name:string -> rounds:int -> Simplicial_map.t -> Protocol.t
(** [protocol_of_map ~name ~rounds f]: the protocol deciding
    [f(i, V_i)] on the final view.  Deciding on a view outside [f]'s
    domain (an input profile the solver was not asked about) raises
    [Invalid_argument]. *)

val synthesize :
  ?node_limit:int -> ?inputs:Simplex.t list -> Model.t -> Task.t ->
  rounds:int -> Protocol.t option
(** Solve the task and wrap the witness; [None] when unsolvable or
    undecided. *)

val validate :
  Protocol.t -> Task.t -> inputs:(int * Value.t) list -> exhaustive:bool ->
  bool
(** Run the synthesized protocol over exhaustive (or seeded random)
    immediate-snapshot schedules, including single-crash variants, and
    check every decision profile against Δ. *)
