lib/runtime/executor.mli: Protocol Schedule Sim_object Simplex Value
