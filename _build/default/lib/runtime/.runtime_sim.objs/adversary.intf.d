lib/runtime/adversary.mli: Model Protocol Schedule Sim_object Simplex Task Value
