lib/runtime/protocol.ml: Printf Value
