lib/runtime/executor.ml: Hashtbl List Option Protocol Schedule Sim_object Simplex Stdlib Value
