lib/runtime/cross_check.mli: Simplex
