lib/runtime/non_iterated.ml: Hashtbl List Random Simplex State_protocol Stdlib Value
