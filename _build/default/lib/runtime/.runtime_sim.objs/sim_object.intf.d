lib/runtime/sim_object.mli: Value
