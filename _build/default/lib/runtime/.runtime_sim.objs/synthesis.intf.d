lib/runtime/synthesis.mli: Model Protocol Simplex Simplicial_map Task Value
