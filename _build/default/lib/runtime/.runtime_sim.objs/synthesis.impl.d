lib/runtime/synthesis.ml: Adversary List Model Printf Protocol Simplicial_map Solvability Task Vertex
