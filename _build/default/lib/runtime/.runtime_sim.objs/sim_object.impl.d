lib/runtime/sim_object.ml: Value
