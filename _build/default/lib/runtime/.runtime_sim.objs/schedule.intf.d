lib/runtime/schedule.mli: Collect_matrix Model Random
