lib/runtime/non_iterated.mli: Ordered_partition Random Simplex State_protocol Value
