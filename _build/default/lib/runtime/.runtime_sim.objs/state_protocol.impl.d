lib/runtime/state_protocol.ml: List Protocol Value
