lib/runtime/schedule.ml: Array Collect_matrix Hashtbl List Model Ordered_partition Random Stdlib
