lib/runtime/adversary.ml: Complex Executor Format List Model Random Schedule Simplex Task
