lib/runtime/state_protocol.mli: Protocol Value
