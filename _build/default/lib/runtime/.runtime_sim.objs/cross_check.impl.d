lib/runtime/cross_check.ml: Augmented Black_box Complex Executor List Model Ordered_partition Printf Protocol Random Schedule Sim_object Simplex Value Vertex
