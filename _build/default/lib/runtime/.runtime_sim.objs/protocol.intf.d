lib/runtime/protocol.mli: Value
