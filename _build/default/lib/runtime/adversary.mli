(** Schedule suites and task-conformance checking.

    The harness used by the upper-bound experiments: run a protocol
    against exhaustive immediate-snapshot schedules (when small
    enough), random schedules, and crash-injecting variants, and check
    every decision profile against the task's Δ. *)

val exhaustive_is :
  boxed:bool -> participants:int list -> rounds:int -> Schedule.t list

val random_suite :
  model:Model.t -> boxed:bool -> participants:int list -> rounds:int ->
  seed:int -> count:int -> Schedule.t list

val with_crash : Schedule.t -> proc:int -> round:int -> Schedule.t
(** The process stops at the given round (1-based): in a step round it
    still writes (and invokes the box) but never collects; from later
    rounds it is absent.  In an immediate-snapshot round the
    write-snapshot is atomic, so the process is simply removed from
    that round on. *)

type failure = {
  schedule : Schedule.t;
  outputs : Simplex.t option;  (** [None] when no process decided *)
  reason : string;
}

val check_task :
  ?box:(unit -> Sim_object.t) ->
  Protocol.t -> Task.t -> inputs:(int * Value.t) list ->
  schedules:Schedule.t list -> failure list
(** Runs every schedule and returns the violations: a decision profile
    that is not a face of [Δ(σ)] for [σ] the full participant input
    simplex. *)
