(** Non-iterated shared memory (conclusion of the paper; [10, 11]).

    One persistent array of SWMR registers: each process alternates
    write and atomic snapshot on the {e same} registers for its [t]
    rounds, with no global round barrier — a slow process can read a
    fast process's round-3 state during its own round 1.  The paper
    notes that lower bounds for iterated models transfer to
    non-iterated ones (the adversary can synchronize rounds), while
    the converse relation for {e time} complexity is open; this module
    makes both sides executable.

    Protocols here are state protocols: the register of a process
    holds its current state, a round is "write state; snapshot;
    combine the collected states" (this is the natural non-iterated
    form of the paper's algorithms, e.g. halving approximate
    agreement). *)

type step = Write of int | Snapshot of int

type t = step list
(** A full execution: process [i]'s steps must follow its program
    [W; S; W; S; …] ([rounds] times).  Processes with incomplete
    programs are considered crashed and produce no output. *)

val program : rounds:int -> int -> step list
(** The program of one process. *)

val round_synchronized : participants:int list -> rounds:int ->
  Ordered_partition.t list -> t
(** The schedule where every process finishes its round [r] before
    anyone starts round [r+1], blocks writing-then-snapshotting in
    block order.  Note this does {e not} make raw register reuse
    behave like the iterated model (late blocks still read earlier
    processes' current-round values where the iterated model would
    show them fresh registers); only the fully concurrent one-block
    rounds coincide, and [run_emulated] is needed in general. *)

val lockstep : participants:int list -> rounds:int -> t
(** [round_synchronized] with a single block per round — on these
    schedules raw register reuse and the iterated model do agree. *)

val exhaustive : participants:int list -> rounds:int -> t list
(** All interleavings of the per-process programs (exponential; fine
    for [n·rounds <= ~12]). *)

val random : participants:int list -> rounds:int -> Random.State.t -> t

val run :
  State_protocol.spec -> inputs:(int * Value.t) list -> schedule:t ->
  (int * Value.t) list
(** Outputs of the processes that completed all their rounds.  The
    state passed to [spec.step] at a process's round [r] may originate
    from {e any} round of the other processes — the defining feature
    of the non-iterated model.  Black boxes are not supported here.
    Iterated-model algorithms ported verbatim can fail under this
    semantics (experiment E18 exhibits violations for the halving
    algorithm). *)

val run_emulated :
  State_protocol.spec -> inputs:(int * Value.t) list -> schedule:t ->
  (int * Value.t) list
(** The classical simulation of the iterated model inside non-iterated
    memory ([10, 11]): registers hold the full round-tagged history of
    their writer, and a process at round [r] only consumes the
    round-[r−1] entries it can see, ignoring staler and fresher ones.
    One emulated round realizes exactly the facets of the iterated
    {e snapshot} complex (checked by E18), so iterated lower bounds
    transfer and iterated algorithms run unchanged. *)

val one_round_profiles :
  participants:int list -> inputs:(int * Value.t) list -> Simplex.t list
(** The distinct view profiles of one emulated round over every
    interleaving — directly comparable with
    [Model.one_round_facets Model.Snapshot]. *)
