type state = Tas of bool ref | Cons of Value.t option ref

type t = { name : string; state : state }

let test_and_set () = { name = "test&set"; state = Tas (ref false) }
let consensus () = { name = "consensus"; state = Cons (ref None) }

let invoke obj _i proposal =
  match obj.state with
  | Tas taken ->
      if !taken then Value.Bool false
      else begin
        taken := true;
        Value.Bool true
      end
  | Cons decided -> (
      match !decided with
      | Some v -> v
      | None ->
          decided := Some proposal;
          proposal)

let name obj = obj.name
