(** Simulator ↔ topology cross-validation (experiment E13).

    The combinatorial one-round complexes of [Model] and [Augmented]
    are validated against the operational simulator: exhaustively
    scheduled executions must produce exactly the facets of [Ξ₁(σ)]
    (both inclusions), and every collect matrix must be realizable by
    an actual interleaving. *)

type report = {
  label : string;
  simulated : int;      (** distinct simulated view profiles *)
  combinatorial : int;  (** facets of the combinatorial complex *)
  matched : bool;       (** the two sets are equal *)
}

val immediate : Simplex.t -> report
(** Exhaustive ordered-partition schedules vs [Ξ₁] for IIS. *)

val immediate_iterated : rounds:int -> Simplex.t -> report
(** Exhaustive multi-round IS schedules vs the iterated protocol
    complex [P^(t)(σ)] — the view profiles of complete executions must
    be exactly the facets.  Exponential in rounds ([13^t] schedules for
    three processes). *)

val snapshot : Simplex.t -> report
(** Exhaustive write/snapshot interleavings vs [Ξ₁] for snapshot. *)

val collect_exhaustive : Simplex.t -> report
(** Exhaustive write/read interleavings (all read orders) vs [Ξ₁] for
    collect; exponential, use with at most 2–3 processes. *)

val collect_constructive : ?samples:int -> ?seed:int -> Simplex.t -> report
(** Completeness by realizing every collect matrix with
    [Schedule.round_of_matrix], soundness by random interleavings:
    [matched] means every realized matrix reproduced its facet and
    every sampled execution landed on a combinatorial facet. *)

val immediate_test_and_set : Simplex.t -> report
(** Exhaustive boxed IS schedules with an operational test&set object
    vs the decorated complex of Figure 5. *)

val immediate_bin_consensus : beta:(int -> bool) -> Simplex.t -> report
(** Same with an operational consensus object proposed [β(i)]
    vs the decorated complex of Figure 7. *)
