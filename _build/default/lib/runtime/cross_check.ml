type report = {
  label : string;
  simulated : int;
  combinatorial : int;
  matched : bool;
}

let inputs_of sigma =
  List.map (fun v -> (Vertex.color v, Vertex.value v)) (Simplex.vertices sigma)

let simulate_round ?box ?alpha sigma round =
  let protocol =
    match alpha with
    | None -> Protocol.full_information ~rounds:1
    | Some alpha ->
        Protocol.make ~name:"full-information-boxed" ~rounds:1 ~alpha
          ~decide:(fun _i v -> v)
          ()
  in
  let result =
    Executor.run ?box protocol ~inputs:(inputs_of sigma) ~schedule:[ round ]
  in
  Executor.final_view_simplex result

let compare_sets label simulated combinatorial =
  {
    label;
    simulated = Simplex.Set.cardinal simulated;
    combinatorial = Simplex.Set.cardinal combinatorial;
    matched = Simplex.Set.equal simulated combinatorial;
  }

let profile_set ?box ?alpha sigma rounds =
  List.fold_left
    (fun acc round -> Simplex.Set.add (simulate_round ?box ?alpha sigma round) acc)
    Simplex.Set.empty rounds

let facet_set_of model sigma =
  Simplex.Set.of_list (Model.one_round_facets model sigma)

let immediate sigma =
  let rounds =
    List.map (fun p -> Schedule.Is_round p)
      (Ordered_partition.enumerate (Simplex.ids sigma))
  in
  compare_sets "immediate" (profile_set sigma rounds)
    (facet_set_of Model.Immediate sigma)

let immediate_iterated ~rounds sigma =
  let protocol = Protocol.full_information ~rounds in
  let simulated =
    List.fold_left
      (fun acc schedule ->
        let result =
          Executor.run protocol ~inputs:(inputs_of sigma) ~schedule
        in
        Simplex.Set.add (Executor.final_view_simplex result) acc)
      Simplex.Set.empty
      (Schedule.is_rounds ~participants:(Simplex.ids sigma) ~rounds)
  in
  compare_sets
    (Printf.sprintf "immediate P^%d" rounds)
    simulated
    (Complex.facet_set (Model.protocol_complex Model.Immediate sigma rounds))

let snapshot sigma =
  let rounds = Schedule.snapshot_round_exhaustive ~participants:(Simplex.ids sigma) in
  compare_sets "snapshot" (profile_set sigma rounds)
    (facet_set_of Model.Snapshot sigma)

let collect_exhaustive sigma =
  let rounds = Schedule.collect_round_exhaustive ~participants:(Simplex.ids sigma) in
  compare_sets "collect" (profile_set sigma rounds)
    (facet_set_of Model.Collect sigma)

let collect_constructive ?(samples = 2000) ?(seed = 42) sigma =
  let ids = Simplex.ids sigma in
  let facets = facet_set_of Model.Collect sigma in
  (* Completeness: every matrix is realized by its constructed round. *)
  let realized =
    List.fold_left
      (fun acc matrix ->
        Simplex.Set.add
          (simulate_round sigma (Schedule.round_of_matrix matrix))
          acc)
      Simplex.Set.empty
      (Model.matrices Model.Collect ids)
  in
  let complete = Simplex.Set.equal realized facets in
  (* Soundness: random interleavings only ever produce facets. *)
  let rng = Random.State.make [| seed |] in
  let sound = ref true in
  for _ = 1 to samples do
    match
      Schedule.random_steps ~model:Model.Collect ~participants:ids ~rounds:1 rng
    with
    | [ round ] ->
        let profile = simulate_round sigma round in
        if not (Simplex.Set.mem profile facets) then sound := false
    | _ -> sound := false
  done;
  {
    label = "collect (constructive + sampled)";
    simulated = Simplex.Set.cardinal realized;
    combinatorial = Simplex.Set.cardinal facets;
    matched = complete && !sound;
  }

let boxed_report label box combinatorial_facets alpha sigma =
  let rounds =
    List.concat
      (Schedule.is_rounds_boxed ~participants:(Simplex.ids sigma) ~rounds:1)
  in
  let simulated = profile_set ~box ~alpha sigma rounds in
  compare_sets label simulated (Simplex.Set.of_list combinatorial_facets)

let immediate_test_and_set sigma =
  let alpha = Augmented.alpha_const Value.Unit in
  boxed_report "immediate+test&set" Sim_object.test_and_set
    (Augmented.one_round_facets ~box:Black_box.test_and_set ~alpha ~round:1 sigma)
    alpha sigma

let immediate_bin_consensus ~beta sigma =
  let alpha = Augmented.alpha_of_beta beta in
  boxed_report "immediate+bin-consensus" Sim_object.consensus
    (Augmented.one_round_facets ~box:Black_box.bin_consensus ~alpha ~round:1 sigma)
    alpha sigma
