(** High-level entry points to the reproduction — the "one import"
    API used by the examples and the quickstart in the README.

    The underlying machinery lives in the focused libraries
    ([Topology], [Model]/[Augmented], [Task] constructors, [Solvability],
    [Closure], [Speedup], the simulator, and the algorithms); this
    module bundles the most common questions:

    - is task Π solvable in [t] rounds of model M?
    - what is the closure [CL_M(Π)], and is Π a fixed point?
    - does the speedup theorem hold, constructively, on this instance?
    - what round lower bound follows from iterating the closure? *)

type rounds_verdict = Exact of int | At_least of int
(** Result of a round-complexity measurement: the minimal solvable
    round count, or a lower bound when the scan hit its cap. *)

val solvable :
  ?rounds:int -> ?model:Model.t -> ?test_and_set:bool -> Task.t -> bool
(** [solvable task] decides wait-free solvability of the task in
    [rounds] rounds (default 1) of [model] (default IIS), optionally
    augmented with a test&set object per round. *)

val min_rounds :
  ?model:Model.t -> ?max_rounds:int -> ?binary_inputs:bool -> Task.t ->
  rounds_verdict
(** Scans [t = 0, 1, …] with the direct solver.  [binary_inputs]
    restricts approximate-agreement-style tasks to inputs in {0,1}
    (enough for lower bounds and much faster). *)

val closure : ?test_and_set:bool -> ?model:Model.t -> Task.t -> Task.t
(** [CL_M(Π)] per Definition 2. *)

val is_fixed_point : ?test_and_set:bool -> ?model:Model.t -> Task.t -> bool
(** Whether [CL_M(Π) = Π] (Δ′ = Δ on every input simplex) — by
    Lemma 1 a fixed point that is not 0-round solvable is unsolvable. *)

val lower_bound_by_closure :
  ?model:Model.t -> Task.t -> reference:(int -> Task.t) -> max:int -> int
(** The paper's lower-bound recipe: given [reference k] = the expected
    [k]-fold closure (e.g. [fun k -> (2^k ε)-AA]), verify
    [CL(reference k) = reference (k+1)] on the inputs and count how
    many closures are needed before the task becomes 0-round solvable;
    the count is a round lower bound (Theorem 1 + induction).
    @raise Failure if a closure step does not match the reference. *)

val check_speedup :
  ?test_and_set:bool -> ?model:Model.t -> rounds:int -> Task.t -> bool
(** Mechanized Theorem 1/2 on this instance: if the task is solvable
    in [rounds] rounds, derive the proof's [f′] and confirm it solves
    the closure in [rounds − 1]; vacuously true when unsolvable. *)

val consensus : n:int -> Task.t
val approximate_agreement : n:int -> m:int -> eps:Frac.t -> Task.t
val liberal_approximate_agreement : n:int -> m:int -> eps:Frac.t -> Task.t
(** Re-exported task constructors for convenience. *)
