type rounds_verdict = Exact of int | At_least of int

let tas_alpha = Augmented.alpha_const Value.Unit

let solvable ?(rounds = 1) ?(model = Model.Immediate) ?(test_and_set = false) task =
  let verdict =
    if test_and_set then
      Solvability.task_in_augmented ~box:Black_box.test_and_set ~alpha:tas_alpha
        task ~rounds
    else Solvability.task_in_model model task ~rounds
  in
  Solvability.is_solvable verdict

let min_rounds ?(model = Model.Immediate) ?(max_rounds = 4) ?(binary_inputs = false)
    task =
  let inputs =
    if binary_inputs then
      Some
        (Complex.all_simplices
           (Approx_agreement.binary_input_complex ~n:task.Task.arity))
    else None
  in
  match Solvability.min_rounds ?inputs ~max_rounds model task with
  | Some t -> Exact t
  | None -> At_least (max_rounds + 1)

let op_of ~test_and_set ~model =
  if test_and_set then Round_op.test_and_set else Round_op.plain model

let closure ?(test_and_set = false) ?(model = Model.Immediate) task =
  Closure.task ~op:(op_of ~test_and_set ~model) task

let is_fixed_point ?(test_and_set = false) ?(model = Model.Immediate) task =
  Closure.fixed_point_on
    ~op:(op_of ~test_and_set ~model)
    task (Task.input_simplices task)

let lower_bound_by_closure ?(model = Model.Immediate) task ~reference ~max =
  let op = Round_op.plain model in
  let inputs = Task.input_simplices task in
  if not (Task.delta_equal_on task (reference 0) inputs) then
    failwith "lower_bound_by_closure: reference 0 differs from the task";
  let rec chase k current =
    if k >= max then k
    else if Solvability.is_solvable (Solvability.task_in_model model current ~rounds:0)
    then k
    else begin
      let next = reference (k + 1) in
      if not (Closure.equal_on ~op current ~reference:next inputs) then
        failwith
          (Printf.sprintf
             "lower_bound_by_closure: CL^%d does not match the reference" (k + 1));
      chase (k + 1) next
    end
  in
  chase 0 task

let check_speedup ?(test_and_set = false) ?(model = Model.Immediate) ~rounds task =
  let setting =
    if test_and_set then Speedup.of_test_and_set else Speedup.of_model model
  in
  Speedup.speedup_holds
    (Speedup.verify setting task ~rounds ~inputs:(Task.input_simplices task))

let consensus ~n = Consensus.binary ~n
let approximate_agreement ~n ~m ~eps = Approx_agreement.task ~n ~m ~eps

let liberal_approximate_agreement ~n ~m ~eps =
  Approx_agreement.liberal ~n ~m ~eps
