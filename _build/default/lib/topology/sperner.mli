(** Sperner labelings of subdivided simplices.

    The wait-free impossibility of k-set agreement — the task on which
    the closure technique has no grip (experiment E14) — rests on
    Sperner's lemma: every labeling of a subdivided simplex that
    respects carriers (each vertex labeled by a corner of its carrier
    face) has an odd number of rainbow facets.  This module
    machine-checks the lemma on the actual chromatic subdivisions
    [P^(t)(σ)]: exhaustively for one round, by sampling for deeper
    complexes. *)

val carrier_ids : Vertex.t -> int list
(** The corners of the original simplex spanning the carrier of a
    (possibly iterated) subdivision vertex: the colors reachable
    through its nested view.  A vertex of the input simplex itself is
    its own carrier corner. *)

val count_rainbow : Complex.t -> labeling:(Vertex.t -> int) -> int
(** Number of facets whose vertices receive pairwise distinct
    labels. *)

val exhaustive_check : Complex.t -> bool
(** Enumerates {e every} carrier-respecting labeling and checks the
    rainbow count is odd for each.  Exponential in the number of
    non-corner vertices: meant for one-round subdivisions ([P^(1)] of
    a triangle has 1728 labelings). *)

val sampled_check : ?seed:int -> ?samples:int -> Complex.t -> bool
(** Random carrier-respecting labelings, each checked for odd rainbow
    count (default 2000 samples). *)
