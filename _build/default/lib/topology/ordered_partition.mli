(** Ordered set partitions.

    The facets of the one-round immediate-snapshot complex on a simplex
    with color set [I] are in bijection with the ordered partitions of
    [I] (Section 2.2 / Appendix A.3.4): the blocks are the concurrency
    classes, scheduled in list order, and the view of a process is the
    union of its block and all earlier blocks. *)

type t = int list list
(** Blocks in scheduling order; each block sorted, blocks non-empty. *)

val enumerate : int list -> t list
(** All ordered partitions of the given set.  Their number is the
    ordered Bell number: 1, 3, 13, 75, 541 for 1..5 elements. *)

val count : int -> int
(** Ordered Bell number (number of ordered partitions of a k-set). *)

val views : t -> (int * int list) list
(** [(i, view of i)] for each element: the union of the blocks up to
    and including the block of [i], sorted. *)

val blocks : t -> int list list
val first_block : t -> int list
val is_solo_first : int -> t -> bool
(** Whether element [i] forms the first block alone — the solo
    execution witness for process [i]. *)

val solo : int list -> int -> t
(** The ordered partition scheduling [i] alone first and the rest as
    one later block (or just [[i]] when alone). *)

val pp : Format.formatter -> t -> unit
