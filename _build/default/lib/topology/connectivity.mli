(** Path connectivity in the 1-skeleton of a complex.

    The impossibility proof of Corollary 1 walks a 3-edge path inside
    [P^(1)(τ)]; this module provides the graph-theoretic substrate for
    mechanizing such arguments. *)

val neighbors : Complex.t -> Vertex.t -> Vertex.t list
(** Vertices sharing an edge (1-simplex) with the given vertex. *)

val path : Complex.t -> Vertex.t -> Vertex.t -> Vertex.t list option
(** A shortest vertex path along edges between two vertices, endpoints
    included, or [None] when disconnected. *)

val connected : Complex.t -> bool
(** Whether the 1-skeleton is connected (vacuously true when the
    complex has at most one vertex). *)

val components : Complex.t -> Vertex.t list list
(** Connected components of the 1-skeleton. *)
