(** Colored vertices of chromatic complexes.

    A vertex is a pair [(color, value)] where the color is a process
    identity in [1..n] (Appendix A.1). *)

type t = { color : int; value : Value.t }

val make : int -> Value.t -> t
(** @raise Invalid_argument if the color is not positive. *)

val color : t -> int
val value : t -> Value.t
val compare : t -> t -> int
(** Colors compare first, then values; a chromatic simplex sorted with
    this order is sorted by color. *)

val equal : t -> t -> bool
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
