type t =
  | Unit
  | Bool of bool
  | Int of int
  | Frac of Frac.t
  | Str of string
  | Pair of t * t
  | View of (int * t) list

let view assoc =
  let sorted = List.sort (fun (i, _) (j, _) -> Stdlib.compare i j) assoc in
  let rec check = function
    | (i, _) :: ((j, _) :: _ as rest) ->
        if i = j then invalid_arg "Value.view: repeated color";
        check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  View sorted

let view_ids = function
  | View assoc -> List.map fst assoc
  | Unit | Bool _ | Int _ | Frac _ | Str _ | Pair _ ->
      invalid_arg "Value.view_ids: not a view"

let view_find i = function
  | View assoc -> List.assoc_opt i assoc
  | Unit | Bool _ | Int _ | Frac _ | Str _ | Pair _ ->
      invalid_arg "Value.view_find: not a view"

(* Constructor rank for the cross-constructor order. *)
let rank = function
  | Unit -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Frac _ -> 3
  | Str _ -> 4
  | Pair _ -> 5
  | View _ -> 6

let rec compare a b =
  match (a, b) with
  | Unit, Unit -> 0
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Frac x, Frac y -> Frac.compare x y
  | Str x, Str y -> Stdlib.compare x y
  | Pair (x1, x2), Pair (y1, y2) ->
      let c = compare x1 y1 in
      if c <> 0 then c else compare x2 y2
  | View x, View y -> compare_assoc x y
  | (Unit | Bool _ | Int _ | Frac _ | Str _ | Pair _ | View _), _ ->
      Stdlib.compare (rank a) (rank b)

and compare_assoc x y =
  match (x, y) with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | (i, v) :: x', (j, w) :: y' ->
      let c = Stdlib.compare i j in
      if c <> 0 then c
      else
        let c = compare v w in
        if c <> 0 then c else compare_assoc x' y'

let equal a b = compare a b = 0

let rec hash = function
  | Unit -> 17
  | Bool b -> if b then 3 else 5
  | Int n -> Hashtbl.hash n
  | Frac q -> Hashtbl.hash (Frac.num q, Frac.den q)
  | Str s -> Hashtbl.hash s
  | Pair (a, b) -> (31 * hash a) + hash b + 7
  | View assoc ->
      List.fold_left (fun acc (i, v) -> (31 * acc) + (17 * i) + hash v) 11 assoc

let frac n d = Frac (Frac.make n d)

let as_frac = function
  | Frac q -> q
  | Unit | Bool _ | Int _ | Str _ | Pair _ | View _ ->
      invalid_arg "Value.as_frac"

let as_bool = function
  | Bool b -> b
  | Unit | Int _ | Frac _ | Str _ | Pair _ | View _ ->
      invalid_arg "Value.as_bool"

let rec pp ppf = function
  | Unit -> Format.pp_print_string ppf "()"
  | Bool b -> Format.pp_print_bool ppf b
  | Int n -> Format.pp_print_int ppf n
  | Frac q -> Frac.pp ppf q
  | Str s -> Format.pp_print_string ppf s
  | Pair (a, b) -> Format.fprintf ppf "(%a,%a)" pp a pp b
  | View assoc ->
      let pp_entry ppf (i, v) = Format.fprintf ppf "%d:%a" i pp v in
      Format.fprintf ppf "{%a}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           pp_entry)
        assoc

let to_string v = Format.asprintf "%a" pp v
