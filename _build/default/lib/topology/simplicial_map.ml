type t = Vertex.t Vertex.Map.t

let of_assoc pairs =
  List.fold_left
    (fun acc (v, w) ->
      match Vertex.Map.find_opt v acc with
      | Some w' when not (Vertex.equal w w') ->
          invalid_arg "Simplicial_map.of_assoc: conflicting images"
      | Some _ | None -> Vertex.Map.add v w acc)
    Vertex.Map.empty pairs

let of_fun dom f = of_assoc (List.map (fun v -> (v, f v)) dom)

let apply m v =
  match Vertex.Map.find_opt v m with Some w -> w | None -> raise Not_found

let apply_simplex m s = Simplex.of_vertices (List.map (apply m) (Simplex.vertices s))
let domain m = List.map fst (Vertex.Map.bindings m)
let graph m = Vertex.Map.bindings m

let is_chromatic m =
  Vertex.Map.for_all (fun v w -> Vertex.color v = Vertex.color w) m

let is_simplicial m ~domain ~codomain =
  List.for_all (fun v -> Vertex.Map.mem v m) (Complex.vertices domain)
  && List.for_all
       (fun f ->
         match apply_simplex m f with
         | image -> Complex.mem image codomain
         | exception Invalid_argument _ -> false)
       (Complex.facets domain)

let agrees_with m ~inputs ~protocol ~delta =
  List.for_all
    (fun sigma ->
      let p = protocol sigma in
      let d = delta sigma in
      List.for_all
        (fun facet ->
          match apply_simplex m facet with
          | image -> Complex.mem image d
          | exception (Not_found | Invalid_argument _) -> false)
        (Complex.facets p))
    inputs

let compose g f = Vertex.Map.map (fun w -> apply g w) f

let restrict dom m =
  Vertex.Map.filter (fun v _ -> List.exists (Vertex.equal v) dom) m

let equal = Vertex.Map.equal Vertex.equal

let pp ppf m =
  let pp_pair ppf (v, w) = Format.fprintf ppf "%a -> %a" Vertex.pp v Vertex.pp w in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_pair)
    (graph m)
