let simplices_of_dim c k =
  List.filter (fun s -> Simplex.dim s = k) (Complex.all_simplices c)

let boundary_matrix c k =
  if k < 1 then invalid_arg "Homology.boundary_matrix: k must be >= 1";
  let rows = simplices_of_dim c (k - 1) in
  let cols = simplices_of_dim c k in
  let row_index = Hashtbl.create 64 in
  List.iteri (fun idx s -> Hashtbl.replace row_index (Simplex.to_string s) idx) rows;
  let matrix = Array.make_matrix (List.length rows) (List.length cols) false in
  List.iteri
    (fun j col ->
      List.iter
        (fun face ->
          match Hashtbl.find_opt row_index (Simplex.to_string face) with
          | Some i -> matrix.(i).(j) <- true
          | None -> assert false)
        (Simplex.boundary col))
    cols;
  matrix

let rank_gf2 matrix =
  let rows = Array.length matrix in
  if rows = 0 then 0
  else
    let cols = Array.length matrix.(0) in
    (* Work on a copy: Gaussian elimination is destructive. *)
    let m = Array.map Array.copy matrix in
    let rank = ref 0 in
    let pivot_row = ref 0 in
    for col = 0 to cols - 1 do
      if !pivot_row < rows then begin
        let pivot = ref (-1) in
        for r = !pivot_row to rows - 1 do
          if !pivot < 0 && m.(r).(col) then pivot := r
        done;
        if !pivot >= 0 then begin
          let tmp = m.(!pivot) in
          m.(!pivot) <- m.(!pivot_row);
          m.(!pivot_row) <- tmp;
          for r = 0 to rows - 1 do
            if r <> !pivot_row && m.(r).(col) then
              for c = col to cols - 1 do
                m.(r).(c) <- m.(r).(c) <> m.(!pivot_row).(c)
              done
          done;
          incr pivot_row;
          incr rank
        end
      end
    done;
    !rank

let betti c =
  if Complex.is_empty c then []
  else
    let d = Complex.dim c in
    let counts = Array.init (d + 1) (fun k -> List.length (simplices_of_dim c k)) in
    let ranks = Array.make (d + 2) 0 in
    (* ranks.(k) = rank ∂_k for 1 <= k <= d; ∂_0 and ∂_{d+1} are zero. *)
    for k = 1 to d do
      ranks.(k) <- rank_gf2 (boundary_matrix c k)
    done;
    List.init (d + 1) (fun k ->
        (* b_k = dim ker ∂_k - rank ∂_{k+1} = (c_k - rank ∂_k) - rank ∂_{k+1} *)
        counts.(k) - ranks.(k) - ranks.(k + 1))

let euler_characteristic c =
  if Complex.is_empty c then 0
  else
    List.fold_left
      (fun acc s -> if Simplex.dim s mod 2 = 0 then acc + 1 else acc - 1)
      0 (Complex.all_simplices c)

let is_homology_ball c =
  match betti c with
  | [] -> false
  | b0 :: rest -> b0 = 1 && List.for_all (fun b -> b = 0) rest
