lib/topology/complex.ml: Format List Simplex Stdlib Vertex
