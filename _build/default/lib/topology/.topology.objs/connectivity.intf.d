lib/topology/connectivity.mli: Complex Vertex
