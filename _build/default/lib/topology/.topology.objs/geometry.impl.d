lib/topology/geometry.ml: Array Buffer Complex Fun Hashtbl List Printf Simplex Stdlib Value Vertex
