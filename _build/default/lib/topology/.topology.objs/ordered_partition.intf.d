lib/topology/ordered_partition.mli: Format
