lib/topology/simplicial_map.ml: Complex Format List Simplex Vertex
