lib/topology/homology.ml: Array Complex Hashtbl List Simplex
