lib/topology/connectivity.ml: Complex List Queue Simplex Vertex
