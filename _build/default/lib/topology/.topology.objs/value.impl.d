lib/topology/value.ml: Format Frac Hashtbl List Stdlib
