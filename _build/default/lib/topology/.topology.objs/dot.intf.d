lib/topology/dot.mli: Complex
