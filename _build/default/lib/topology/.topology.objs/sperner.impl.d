lib/topology/sperner.ml: Complex List Random Simplex Stdlib Value Vertex
