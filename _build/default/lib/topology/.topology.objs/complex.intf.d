lib/topology/complex.mli: Format Simplex Vertex
