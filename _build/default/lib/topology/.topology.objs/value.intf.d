lib/topology/value.mli: Format Frac
