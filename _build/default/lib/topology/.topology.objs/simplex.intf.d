lib/topology/simplex.mli: Format Map Set Value Vertex
