lib/topology/vertex.ml: Format Hashtbl Map Set Stdlib Value
