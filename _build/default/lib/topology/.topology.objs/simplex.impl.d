lib/topology/simplex.ml: Format List Map Set Stdlib Value Vertex
