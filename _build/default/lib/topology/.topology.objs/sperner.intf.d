lib/topology/sperner.mli: Complex Vertex
