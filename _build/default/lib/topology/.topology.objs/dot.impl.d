lib/topology/dot.ml: Array Buffer Complex Fun Hashtbl List Printf Simplex String Vertex
