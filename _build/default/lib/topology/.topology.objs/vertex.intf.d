lib/topology/vertex.mli: Format Hashtbl Map Set Value
