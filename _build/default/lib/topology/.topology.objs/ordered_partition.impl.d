lib/topology/ordered_partition.ml: Array Format List Stdlib
