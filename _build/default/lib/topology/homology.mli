(** Simplicial homology over GF(2).

    The classical route to asynchronous impossibility results goes
    through topological invariants of the protocol complex
    (Herlihy–Shavit [27], Hoest–Shavit [28]); the paper's closure
    technique is an alternative.  This module computes the mod-2 Betti
    numbers and the Euler characteristic of the (small) complexes in
    this repository, so both routes can be compared on the same
    objects: one-round complexes of subdivisions are homology balls,
    consensus output complexes are disconnected, etc. *)

val boundary_matrix : Complex.t -> int -> bool array array
(** [boundary_matrix c k] is the matrix of the boundary map
    [∂_k : C_k → C_{k-1}] over GF(2), with rows indexed by
    (k-1)-simplices and columns by k-simplices (in the order of
    [Complex.all_simplices] filtered by dimension). *)

val rank_gf2 : bool array array -> int
(** Rank of a GF(2) matrix by Gaussian elimination. *)

val betti : Complex.t -> int list
(** [betti c] is [[b_0; b_1; …; b_dim]], the mod-2 Betti numbers.
    [b_0] is the number of connected components.  Empty complex: []. *)

val euler_characteristic : Complex.t -> int
(** Alternating sum of simplex counts; equals the alternating sum of
    the Betti numbers (checked by tests). *)

val is_homology_ball : Complex.t -> bool
(** [b_0 = 1] and all higher Betti numbers zero — the signature of the
    (collapsible) protocol complexes of the wait-free models. *)
