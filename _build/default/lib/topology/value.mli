(** Values carried by the vertices of chromatic complexes.

    A single recursive type covers everything the paper attaches to a
    process: task inputs and outputs (booleans, integers, rationals),
    full-information views accumulated by Algorithm 1 (a [View] is the
    set of pairs [(j, v_j)] collected from the other processes), and the
    pair [(b_i, C_i)] formed in Algorithm 2 when a black-box object is
    invoked ([Pair]). *)

type t =
  | Unit
  | Bool of bool
  | Int of int
  | Frac of Frac.t
  | Str of string
  | Pair of t * t
  | View of (int * t) list
      (** Association list sorted by strictly increasing color; use
          [view] to build one safely. *)

val view : (int * t) list -> t
(** [view assoc] sorts [assoc] by color and checks colors are distinct.
    @raise Invalid_argument on a repeated color. *)

val view_ids : t -> int list
(** Colors present in a [View].
    @raise Invalid_argument on non-views. *)

val view_find : int -> t -> t option
(** [view_find i v] is the value associated to color [i] in view [v]. *)

val compare : t -> t -> int
(** Total structural order ([Frac] compared numerically, which
    coincides with structural equality since fractions are normalized). *)

val equal : t -> t -> bool
val hash : t -> int

val frac : int -> int -> t
(** [frac n d] is [Frac (Frac.make n d)]. *)

val as_frac : t -> Frac.t
(** @raise Invalid_argument if the value is not a [Frac]. *)

val as_bool : t -> bool
(** @raise Invalid_argument if the value is not a [Bool]. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
