(** Chromatic simplicial complexes, represented by their facets.

    A complex is the downward closure of a finite set of simplices; we
    store only the maximal ones.  All operations respect the chromatic
    structure (Appendix A.1). *)

type t

val empty : t
val of_facets : Simplex.t list -> t
(** Downward closure of the given simplices; redundant (non-maximal)
    simplices are dropped. *)

val of_simplex : Simplex.t -> t
(** The complex of all faces of one simplex. *)

val facets : t -> Simplex.t list
val facet_set : t -> Simplex.Set.t
val is_empty : t -> bool
val mem : Simplex.t -> t -> bool
(** Membership in the downward closure. *)

val mem_vertex : Vertex.t -> t -> bool
val vertices : t -> Vertex.t list
(** [V(K)], without duplicates, sorted. *)

val vertices_of_color : int -> t -> Vertex.t list
val colors : t -> int list
(** All colors appearing in the complex, sorted. *)

val all_simplices : t -> Simplex.t list
(** Every simplex of the complex (exponential in the facet dimensions;
    meant for the small complexes of this repository). *)

val simplices_with_ids : int list -> t -> Simplex.t list
(** All simplices whose color set is exactly the given set. *)

val dim : t -> int
(** Maximal facet dimension. @raise Invalid_argument on [empty]. *)

val is_pure : t -> bool
val facet_count : t -> int
val vertex_count : t -> int
val simplex_count : t -> int

val union : t -> t -> t
val proj : int list -> t -> t
(** Induced subcomplex on the vertices whose colors lie in the list
    ([proj_I] of the paper).  Empty if no vertex qualifies. *)

val skeleton : int -> t -> t
(** [skeleton k c]: all simplices of dimension [<= k]. *)

val map : (Vertex.t -> Vertex.t) -> t -> t
(** Image complex under a chromatic vertex map (the map is applied to
    every facet; images must be simplices, i.e. keep colors distinct). *)

val equal : t -> t -> bool
val subcomplex : t -> t -> bool
(** [subcomplex a b]: every simplex of [a] is a simplex of [b]. *)

val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val pp_stats : Format.formatter -> t -> unit
(** One-line [vertices/facets/dim] summary. *)
