let edges c =
  List.concat_map
    (fun f ->
      let vs = Simplex.vertices f in
      List.concat_map
        (fun v -> List.filter_map (fun w -> if Vertex.compare v w < 0 then Some (v, w) else None) vs)
        vs)
    (Complex.facets c)

let neighbors c v =
  List.filter_map
    (fun (a, b) ->
      if Vertex.equal a v then Some b else if Vertex.equal b v then Some a else None)
    (edges c)
  |> List.sort_uniq Vertex.compare

let path c src dst =
  if Vertex.equal src dst then Some [ src ]
  else
    let visited = Vertex.Tbl.create 64 in
    Vertex.Tbl.add visited src src;
    let queue = Queue.create () in
    Queue.add src queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun w ->
          if not (Vertex.Tbl.mem visited w) then begin
            Vertex.Tbl.add visited w v;
            if Vertex.equal w dst then found := true else Queue.add w queue
          end)
        (neighbors c v)
    done;
    if not !found then None
    else
      let rec back v acc =
        if Vertex.equal v src then src :: acc
        else back (Vertex.Tbl.find visited v) (v :: acc)
      in
      Some (back dst [])

let components c =
  let remaining = ref (Vertex.Set.of_list (Complex.vertices c)) in
  let comps = ref [] in
  while not (Vertex.Set.is_empty !remaining) do
    let seed = Vertex.Set.min_elt !remaining in
    let comp = ref Vertex.Set.empty in
    let queue = Queue.create () in
    Queue.add seed queue;
    comp := Vertex.Set.add seed !comp;
    while not (Queue.is_empty queue) do
      let v = Queue.pop queue in
      List.iter
        (fun w ->
          if Vertex.Set.mem w !remaining && not (Vertex.Set.mem w !comp) then begin
            comp := Vertex.Set.add w !comp;
            Queue.add w queue
          end)
        (neighbors c v)
    done;
    remaining := Vertex.Set.diff !remaining !comp;
    comps := Vertex.Set.elements !comp :: !comps
  done;
  List.rev !comps

let connected c = List.length (components c) <= 1
