(** Graphviz export of the 1-skeleton of small complexes.

    Used by the CLI to draw the protocol complexes of Figures 4–8.
    Colors 1..8 get distinct Graphviz fill colors. *)

val of_complex : ?name:string -> Complex.t -> string
(** DOT source for the 1-skeleton; triangles (2-simplices) are rendered
    as their three edges. *)

val write_file : string -> Complex.t -> unit
