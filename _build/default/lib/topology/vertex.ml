type t = { color : int; value : Value.t }

let make color value =
  if color <= 0 then invalid_arg "Vertex.make: color must be positive";
  { color; value }

let color v = v.color
let value v = v.value

let compare a b =
  let c = Stdlib.compare a.color b.color in
  if c <> 0 then c else Value.compare a.value b.value

let equal a b = compare a b = 0
let hash v = (31 * v.color) + Value.hash v.value
let pp ppf v = Format.fprintf ppf "(%d,%a)" v.color Value.pp v.value
let to_string v = Format.asprintf "%a" pp v

module Ordered = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ordered)
module Map = Map.Make (Ordered)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
