(** Chromatic simplicial maps, given by their action on vertices.

    A map [f : K → K'] is simplicial when the image of every simplex of
    [K] is a simplex of [K'], and chromatic when it preserves colors
    (Appendix A.1).  Decision maps of protocols (the [f] of Algorithm 1)
    are such maps. *)

type t

val of_assoc : (Vertex.t * Vertex.t) list -> t
(** @raise Invalid_argument if a domain vertex is repeated with two
    distinct images. *)

val of_fun : Vertex.t list -> (Vertex.t -> Vertex.t) -> t
(** Tabulates the function on the given domain vertices. *)

val apply : t -> Vertex.t -> Vertex.t
(** @raise Not_found if the vertex is outside the recorded domain. *)

val apply_simplex : t -> Simplex.t -> Simplex.t
(** Image of a simplex (chromaticity makes it a simplex again).
    @raise Not_found on vertices outside the domain. *)

val domain : t -> Vertex.t list
val graph : t -> (Vertex.t * Vertex.t) list

val is_chromatic : t -> bool
(** Every vertex is sent to a vertex of the same color. *)

val is_simplicial : t -> domain:Complex.t -> codomain:Complex.t -> bool
(** All domain vertices are mapped, images of facets are simplices of
    the codomain. *)

val agrees_with :
  t -> inputs:Simplex.t list -> protocol:(Simplex.t -> Complex.t) ->
  delta:(Simplex.t -> Complex.t) -> bool
(** [agrees_with f ~inputs ~protocol ~delta]: for every input simplex
    [σ], [f(protocol σ) ⊆ delta σ] — the "f agrees with Δ" condition of
    Section 2.2. *)

val compose : t -> t -> t
(** [compose g f] is [g ∘ f], defined on the domain of [f].
    @raise Not_found if some image of [f] is outside [g]'s domain. *)

val restrict : Vertex.t list -> t -> t
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
