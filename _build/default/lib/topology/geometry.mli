(** Geometric realization of iterated subdivisions of a triangle, and
    SVG rendering.

    The vertices of the chromatic subdivision admit the standard
    embedding: vertex [(i, J)] sits at the weighted barycenter of the
    corners in [J], with its own corner weighted slightly more so that
    the [|J|] vertices sharing a view set stay distinct.  Iterating
    the rule on nested views realizes [P^(t)] geometrically — this is
    how pictures like Figure 8(b) are drawn. *)

type point = { x : float; y : float }

val corner : int list -> int -> point
(** Position of a color's corner in the reference triangle/segment
    spanned by the given (sorted) color list.
    @raise Invalid_argument if the color is not listed or more than
    three colors are given. *)

val vertex_position : corners:(int -> point) -> Vertex.t -> point
(** Recursive embedding of a (possibly nested) view vertex: the value
    must be a [View] whose entries are inputs or views themselves;
    box-augmented vertices [(b, view)] are positioned by their view
    component. *)

val layout : Simplex.t -> Complex.t -> (Vertex.t * point) list
(** Positions for every vertex of a protocol complex over the input
    simplex [σ] (at most 3 colors). *)

val svg : ?size:int -> Simplex.t -> Complex.t -> string
(** An SVG drawing of the complex: 2-simplices as translucent faces,
    1-simplices as edges, vertices as dots colored by process
    (process 1 black, 2 white, 3 red, matching the paper's figures). *)

val write_svg : ?size:int -> string -> Simplex.t -> Complex.t -> unit
