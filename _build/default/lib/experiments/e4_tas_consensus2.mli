(** E4 — Figure 4: 2-process consensus is solvable in one round of
    IIS + test&set.

    Three independent confirmations: the solver finds a simplicial map
    on the decorated complex; the explicit winner-adopts decision map
    of Section 4.3 is itself simplicial and agrees with Δ; and the
    operational simulator runs the algorithm over every boxed schedule
    (including crash-injecting ones) without a violation. *)

val run : unit -> Report.table list
