(** E10 — Theorem 3 / Claim 4: test&set does not accelerate
    approximate agreement for n ≥ 3.

    Machine-checks Claim 4 (the closure of liberal ε-AA w.r.t.
    IIS + test&set is still liberal (2ε)-AA), and contrasts direct
    solver measurements: for n = 3 the minimal round count with
    test&set equals the plain-IIS one, while for n = 2 test&set
    collapses it to a single round. *)

val run : unit -> Report.table list
