let spread_of_states states =
  match List.map (fun (_, v) -> Value.as_frac v) states with
  | [] -> Frac.zero
  | v :: rest ->
      let lo = List.fold_left Frac.min v rest
      and hi = List.fold_left Frac.max v rest in
      Frac.sub hi lo

(* Worst spread of the processes' current values after each round,
   over all schedules. *)
let max_spreads spec inputs schedules =
  let rounds = spec.State_protocol.rounds in
  let protocol = State_protocol.protocol spec in
  let worst = Array.make (rounds + 1) Frac.zero in
  let input_states =
    List.map (fun (i, x) -> (i, spec.State_protocol.init i x)) inputs
  in
  worst.(0) <- spread_of_states input_states;
  List.iter
    (fun schedule ->
      let result = Executor.run protocol ~inputs ~schedule in
      List.iteri
        (fun idx profile ->
          let r = idx + 1 in
          let states =
            List.map
              (fun (i, view) ->
                (i, State_protocol.state_of_view spec ~round:r i view))
              profile
          in
          worst.(r) <- Frac.max worst.(r) (spread_of_states states))
        result.Executor.round_views)
    schedules;
  Array.to_list worst

let frac_inputs m numerators =
  List.mapi (fun idx k -> (idx + 1, Value.frac k m)) numerators

let schedules_for ~participants ~rounds ~exhaustive =
  let base =
    if exhaustive then
      Adversary.exhaustive_is ~boxed:false ~participants ~rounds
    else
      Adversary.random_suite ~model:Model.Immediate ~boxed:false ~participants
        ~rounds ~seed:11 ~count:1500
  in
  let crashed =
    List.concat_map
      (fun s ->
        List.concat_map
          (fun proc ->
            List.init rounds (fun r ->
                Adversary.with_crash s ~proc ~round:(r + 1)))
          (match participants with _ :: rest -> rest | [] -> []))
      (match base with a :: b :: _ -> [ a; b ] | l -> l)
  in
  base @ crashed

let pow b e =
  let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
  go 1 e

let run_case ~n ~m ~k ~exhaustive =
  let eps = Frac.make k m in
  let task = Approx_agreement.task ~n ~m ~eps in
  let spec, rounds =
    if n = 2 then
      let t = Aa_thirds.rounds_needed ~eps in
      (Aa_thirds.spec ~m ~rounds:t, t)
    else
      let t = Aa_halving.rounds_needed ~eps in
      (Aa_halving.spec ~m ~rounds:t, t)
  in
  let participants = List.init n (fun i -> i + 1) in
  let inputs =
    (* Extremes plus a spread of interior grid points. *)
    frac_inputs m (List.init n (fun i -> if i = 0 then 0 else if i = n - 1 then m else i * m / n))
  in
  let schedules = schedules_for ~participants ~rounds ~exhaustive in
  let failures =
    Adversary.check_task (State_protocol.protocol spec) task ~inputs ~schedules
  in
  let spreads = max_spreads spec inputs schedules in
  let decay_ok =
    (* spread after round r is at most base^-r *)
    let base = if n = 2 then 3 else 2 in
    List.for_all2
      (fun r s -> Frac.(s <= Frac.make 1 (pow base r)))
      (List.init (rounds + 1) (fun r -> r))
      spreads
  in
  let row =
    [
      string_of_int n;
      Frac.to_string eps;
      string_of_int rounds;
      (if exhaustive then "exhaustive+crash" else "random+crash");
      string_of_int (List.length schedules);
      string_of_int (List.length failures);
      String.concat " " (List.map Frac.to_string spreads);
      Report.verdict decay_ok;
    ]
  in
  (row, failures = [] && decay_ok)

let run () =
  let cases =
    (* (n, m, eps numerator, exhaustive?) *)
    [
      (2, 3, 1, true); (2, 9, 1, true); (2, 27, 1, true);
      (3, 2, 1, true); (3, 4, 1, true); (3, 8, 1, true);
      (4, 4, 1, false); (5, 4, 1, false);
    ]
  in
  let rows, ok =
    List.fold_left
      (fun (rows, ok) (n, m, k, exhaustive) ->
        let row, good = run_case ~n ~m ~k ~exhaustive in
        (row :: rows, ok && good))
      ([], true) cases
  in
  [
    Report.table ~id:"e9"
      ~title:
        "Upper bounds matching Corollary 3: halving (Eq 3) and thirds (Eq 2) in the simulator"
      ~headers:
        [ "n"; "eps"; "rounds"; "schedules"; "#sched"; "violations";
          "max spread per round"; "geometric decay" ]
      ~rows:(List.rev rows) ~ok;
  ]
