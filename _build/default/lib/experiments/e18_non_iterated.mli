(** E18 — iterated vs non-iterated memory (conclusion of the paper;
    [10, 11]).

    The paper's lower bounds are proved in iterated models and
    transfer to non-iterated ones; the executable side of that
    relation:

    - porting the halving algorithm verbatim to reused registers
      {e breaks} it (stale round values mix into the rule) — measured
      violation counts over exhaustive interleavings;
    - the classical round-tagged emulation repairs it: zero violations
      over the same schedules;
    - on lockstep schedules raw reuse and the iterated executor agree;
    - one emulated round realizes {e exactly} the facets of the
      iterated snapshot complex — the structural content of the
      lower-bound transfer. *)

val run : unit -> Report.table list
