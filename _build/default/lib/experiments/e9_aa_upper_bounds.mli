(** E9 — tightness of Corollary 3 (Equations (2) and (3), [1, 28]):
    the matching upper-bound algorithms run in the operational
    simulator.

    For each (n, ε): run the halving (n ≥ 3) or thirds (n = 2)
    algorithm for the prescribed number of rounds over exhaustive
    immediate-snapshot schedules (when feasible), plus random and
    crash-injecting schedules; check every decision profile against
    Δ, and measure the worst observed spread after each round — the
    paper's geometric decay (×1/2 per round for halving, ×1/3 for
    thirds). *)

val run : unit -> Report.table list
