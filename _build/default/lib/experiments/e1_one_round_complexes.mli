(** E1 — Figure 8: the one-round protocol complexes of the three
    models.

    Reproduces the facet/vertex counts of the collect, snapshot, and
    immediate-snapshot complexes and checks the strict containments
    IS ⊂ snapshot ⊂ collect, plus the ordered-Bell facet count of the
    chromatic subdivision. *)

val run : unit -> Report.table list
