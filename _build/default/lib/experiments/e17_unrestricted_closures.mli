(** E17 — new data around the paper's conclusion: closures the paper
    does not compute.

    (a) {b Unrestricted binary consensus.}  Theorem 4 restricts box
    inputs to depend only on IDs and round numbers.  Definition 2's
    closure for the unrestricted model lets the one-round local
    algorithm pick any per-process constant proposals (that is what the
    Theorem 2 construction produces), i.e. the union of the β-closures
    over all β.  Measured: this closure of liberal ε-AA is the full
    validity-only task — a single closure step erases the precision
    constraint entirely.  The closure technique therefore cannot give
    any round lower bound beyond 1 for value-dependent proposals,
    which is consistent with (and explains the need for) the paper's
    ID-only hypothesis.

    (b) {b Adaptive renaming} ([2]): a solvable companion task.  Its
    closure is strictly easier than the task (no fixed point), and the
    measured round complexity is 1 for n = 2 and 2 for n = 3. *)

val run : unit -> Report.table list
