let consensus_case n =
  let values = List.init n (fun i -> Value.Int (100 + i)) in
  let task = Consensus.multi ~n ~values in
  let inputs = List.mapi (fun idx v -> (idx + 1, v)) values in
  let participants = List.init n (fun i -> i + 1) in
  let rounds = Bc_consensus.rounds_needed ~n in
  let schedules =
    if n <= 3 then
      Adversary.exhaustive_is ~boxed:true ~participants ~rounds
    else
      Adversary.random_suite ~model:Model.Immediate ~boxed:true ~participants
        ~rounds ~seed:23 ~count:800
  in
  let with_crashes =
    schedules
    @ List.concat_map
        (fun s -> [ Adversary.with_crash s ~proc:n ~round:1 ])
        (match schedules with a :: b :: _ -> [ a; b ] | l -> l)
  in
  let failures =
    Adversary.check_task ~box:Sim_object.consensus (Bc_consensus.protocol ~n)
      task ~inputs ~schedules:with_crashes
  in
  ( [
      string_of_int n;
      string_of_int rounds;
      string_of_int (List.length with_crashes);
      string_of_int (List.length failures);
    ],
    failures = [] )

let bitwise_case k_bits =
  let n = 3 in
  let m = 1 lsl k_bits in
  let eps = Frac.make 1 m in
  let task = Approx_agreement.task ~n ~m ~eps in
  let rounds = Bc_bitwise_aa.rounds_needed ~eps in
  let participants = [ 1; 2; 3 ] in
  let inputs =
    [ (1, Value.frac 0 1); (2, Value.frac (m / 2 + 1) m); (3, Value.frac 1 1) ]
  in
  let schedules =
    if rounds <= 2 then
      Adversary.exhaustive_is ~boxed:true ~participants ~rounds
    else
      Adversary.random_suite ~model:Model.Immediate ~boxed:true ~participants
        ~rounds ~seed:29 ~count:1200
  in
  let failures =
    Adversary.check_task ~box:Sim_object.consensus
      (Bc_bitwise_aa.protocol ~k:k_bits ~eps)
      task ~inputs ~schedules
  in
  ( [
      Frac.to_string eps;
      string_of_int rounds;
      string_of_int (List.length schedules);
      string_of_int (List.length failures);
    ],
    failures = [] )

let run () =
  let cons = List.map consensus_case [ 2; 3; 4; 5; 8 ] in
  let bits = List.map bitwise_case [ 1; 2; 3; 4 ] in
  [
    Report.table ~id:"e12"
      ~title:
        "§5.3(a): multi-valued consensus via binary consensus in ceil(log2 n) rounds"
      ~headers:[ "n"; "rounds"; "#schedules"; "violations" ]
      ~rows:(List.map fst cons)
      ~ok:(List.for_all snd cons);
    Report.table ~id:"e12"
      ~title:
        "§5.3(b): eps-AA via bitwise binary consensus in ceil(log2 1/eps) rounds (value-dependent inputs)"
      ~headers:[ "eps"; "rounds"; "#schedules"; "violations" ]
      ~rows:(List.map fst bits)
      ~ok:(List.for_all snd bits);
  ]
