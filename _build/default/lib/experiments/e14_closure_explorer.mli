(** E14 — beyond the paper: the closure operator as an exploration
    tool (the conclusion's "other problems" direction), plus protocol
    complex growth.

    (a) Iterated closures: CL²(ε-AA) is (9ε)-AA for n = 2 and liberal
    (4ε)-AA for n = 3, chaining Claims 2–3 mechanically.
    (b) k-set agreement: 2-set agreement among 3 processes is {b not}
    a fixed point of the closure — on the rainbow input the closure
    admits every output combination, so the Lemma 1 route cannot
    reprove the k-set impossibility (new data: a genuine limit of the
    technique, consistent with the paper applying it only to consensus
    and approximate agreement).
    (c) Growth of |P^(t)| facets for the three models. *)

val run : unit -> Report.table list
