lib/experiments/e5_tas_consensus_impossible.mli: Report
