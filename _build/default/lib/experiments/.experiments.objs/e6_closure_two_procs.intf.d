lib/experiments/e6_closure_two_procs.mli: Report
