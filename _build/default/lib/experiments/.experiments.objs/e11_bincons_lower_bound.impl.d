lib/experiments/e11_bincons_lower_bound.ml: Approx_agreement Augmented Black_box Closure Complex Frac List Model Printf Report Round_op Simplex Solvability String Value Vertex
