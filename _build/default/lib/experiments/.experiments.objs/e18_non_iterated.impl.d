lib/experiments/e18_non_iterated.ml: Aa_halving Approx_agreement Complex Executor Frac List Model Non_iterated Printf Report Schedule Simplex State_protocol Task Value
