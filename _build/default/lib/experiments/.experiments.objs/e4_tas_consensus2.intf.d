lib/experiments/e4_tas_consensus2.mli: Report
