lib/experiments/e9_aa_upper_bounds.ml: Aa_halving Aa_thirds Adversary Approx_agreement Array Executor Frac List Model Report State_protocol String Value
