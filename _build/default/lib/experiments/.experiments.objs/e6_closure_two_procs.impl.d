lib/experiments/e6_closure_two_procs.ml: Approx_agreement Closure Combinatorics Complex Frac List Model Report Round_op Simplex Value
