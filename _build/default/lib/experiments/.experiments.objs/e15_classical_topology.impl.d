lib/experiments/e15_classical_topology.ml: Approx_agreement Classical Complex Consensus Frac Homology List Model Report Simplex String Synthesis Task Value
