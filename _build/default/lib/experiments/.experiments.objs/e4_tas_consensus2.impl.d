lib/experiments/e4_tas_consensus2.ml: Adversary Augmented Black_box Complex Consensus List Model Report Sim_object Simplex Solvability Tas_consensus2 Task Value
