lib/experiments/e12_bincons_upper_bounds.ml: Adversary Approx_agreement Bc_bitwise_aa Bc_consensus Consensus Frac List Model Report Sim_object Value
