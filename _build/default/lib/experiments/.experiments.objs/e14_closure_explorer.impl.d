lib/experiments/e14_closure_explorer.ml: Approx_agreement Closure Complex Frac List Model Report Round_op Set_agreement Simplex Solvability Sperner Task Value
