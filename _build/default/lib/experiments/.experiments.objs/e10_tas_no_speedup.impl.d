lib/experiments/e10_tas_no_speedup.ml: Approx_agreement Augmented Black_box Closure Combinatorics Complex Frac List Model Report Round_op Simplex Solvability Value
