lib/experiments/e15_classical_topology.mli: Report
