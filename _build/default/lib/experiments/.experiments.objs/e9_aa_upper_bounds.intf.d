lib/experiments/e9_aa_upper_bounds.mli: Report
