lib/experiments/e17_unrestricted_closures.mli: Report
