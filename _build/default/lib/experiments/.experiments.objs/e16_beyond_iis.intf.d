lib/experiments/e16_beyond_iis.mli: Report
