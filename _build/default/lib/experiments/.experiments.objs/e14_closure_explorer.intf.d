lib/experiments/e14_closure_explorer.mli: Report
