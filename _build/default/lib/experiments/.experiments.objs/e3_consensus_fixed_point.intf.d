lib/experiments/e3_consensus_fixed_point.mli: Report
