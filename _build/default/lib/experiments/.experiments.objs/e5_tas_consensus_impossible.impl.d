lib/experiments/e5_tas_consensus_impossible.ml: Augmented Black_box Closure Complex Consensus List Printf Report Round_op Simplex Solvability Task Value Vertex
