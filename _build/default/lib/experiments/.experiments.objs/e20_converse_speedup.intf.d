lib/experiments/e20_converse_speedup.mli: Report
