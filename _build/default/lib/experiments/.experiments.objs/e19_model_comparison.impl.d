lib/experiments/e19_model_comparison.ml: Affine Approx_agreement Complex Frac List Model Report Solvability Task
