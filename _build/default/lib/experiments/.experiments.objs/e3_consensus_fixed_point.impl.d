lib/experiments/e3_consensus_fixed_point.ml: Closure Consensus List Model Report Round_op Solvability Task
