lib/experiments/e2_speedup.mli: Report
