lib/experiments/e18_non_iterated.mli: Report
