lib/experiments/e17_unrestricted_closures.ml: Approx_agreement Closure Complex Frac List Model Printf Renaming Report Round_op Simplex Solvability Task Value
