lib/experiments/e13_simulator_vs_topology.ml: Cross_check List Report Simplex Value
