lib/experiments/e20_converse_speedup.ml: Closure Combinatorics Complex Hashtbl List Model Printf Random Report Round_op Simplex Solvability Task Value
