lib/experiments/e2_speedup.ml: Approx_agreement Complex Frac List Model Report Solvability Speedup Task
