lib/experiments/e11_bincons_lower_bound.mli: Report
