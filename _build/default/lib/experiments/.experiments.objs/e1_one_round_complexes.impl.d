lib/experiments/e1_one_round_complexes.ml: Complex List Model Ordered_partition Printf Report Simplex Value
