lib/experiments/report.ml: Array Format List String
