lib/experiments/e7_closure_three_procs.mli: Report
