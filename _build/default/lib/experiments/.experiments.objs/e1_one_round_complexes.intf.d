lib/experiments/e1_one_round_complexes.mli: Report
