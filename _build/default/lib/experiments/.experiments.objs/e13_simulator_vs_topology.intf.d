lib/experiments/e13_simulator_vs_topology.mli: Report
