lib/experiments/e8_aa_round_complexity.ml: Approx_agreement Complex Frac List Model Report Solvability
