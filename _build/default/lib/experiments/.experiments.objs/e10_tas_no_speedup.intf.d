lib/experiments/e10_tas_no_speedup.mli: Report
