lib/experiments/e7_closure_three_procs.ml: Approx_agreement Closure Combinatorics Complex Frac List Model Report Round_op Simplex Value
