lib/experiments/e19_model_comparison.mli: Report
