lib/experiments/e8_aa_round_complexity.mli: Report
