lib/experiments/e12_bincons_upper_bounds.mli: Report
