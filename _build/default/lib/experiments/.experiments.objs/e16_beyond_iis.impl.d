lib/experiments/e16_beyond_iis.ml: Affine Approx_agreement Closure Complex Consensus Frac List Model Report Round_op Simplex Solvability Task Value
