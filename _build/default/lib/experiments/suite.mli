(** The experiment registry (the per-experiment index of DESIGN.md). *)

type entry = {
  id : string;
  description : string;
  run : unit -> Report.table list;
}

val all : entry list
(** E1–E20 in order. *)

val find : string -> entry option
val run_one : string -> Report.table list
(** @raise Not_found on an unknown id. *)

val run_all : unit -> Report.table list
val print_tables : Report.table list -> unit
val all_ok : Report.table list -> bool
