let edge a b = Simplex.of_list [ (1, a); (2, b) ]

let sample_simplices m full =
  if full then
    Complex.all_simplices
      (Combinatorics.full_input_complex 2 (Approx_agreement.grid m))
  else
    let g k = Value.frac k m in
    List.concat_map Simplex.faces
      [
        edge (g 0) (g m);
        edge (g 0) (g (m / 2));
        edge (g (m / 3)) (g (2 * m / 3));
        edge (g 1) (g (m - 1));
        edge (g (m / 2)) (g (m / 2));
      ]

let cap_one q = Frac.min q Frac.one

let run () =
  let op = Round_op.plain Model.Immediate in
  let cases =
    (* (m, eps numerator over m, exhaustive over all inputs?) *)
    [ (3, 1, true); (6, 1, true); (6, 2, true); (9, 1, true); (9, 2, false); (27, 1, false) ]
  in
  let rows, ok =
    List.fold_left
      (fun (rows, ok) (m, k, full) ->
        let eps = Frac.make k m in
        let aa = Approx_agreement.task ~n:2 ~m ~eps in
        let three_eps = cap_one (Frac.mul (Frac.of_int 3) eps) in
        let reference = Approx_agreement.task ~n:2 ~m ~eps:three_eps in
        let simplices = sample_simplices m full in
        let equal = Closure.equal_on ~op aa ~reference simplices in
        let row =
          [
            string_of_int m;
            Frac.to_string eps;
            Frac.to_string three_eps;
            (if full then "all" else "sampled");
            string_of_int (List.length simplices);
            Report.verdict equal;
          ]
        in
        (row :: rows, ok && equal))
      ([], true) cases
  in
  [
    Report.table ~id:"e6"
      ~title:"Claim 2: CL_IIS(eps-AA, n=2) = (3eps)-AA"
      ~headers:[ "m"; "eps"; "3eps"; "inputs"; "#simplices"; "Δ' = Δ_3eps" ]
      ~rows:(List.rev rows) ~ok;
  ]
