(** E5 — Corollary 2 and Figures 5–6: for n > 2, consensus remains
    impossible with test&set.

    Checks the shape of the decorated one-round complex of Figure 5
    (seven vertices per color for n = 3), machine-checks that the
    relaxed consensus task of Corollary 2 is a fixed point of the
    closure w.r.t. IIS + test&set, exhibits the ρ_{i,j,k} simplices
    used in the proof, and confirms direct unsolvability of 3-process
    consensus with test&set at small round counts. *)

val run : unit -> Report.table list
