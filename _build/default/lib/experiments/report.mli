(** Result tables for the experiment suite.

    Every experiment produces one or more tables whose rows put a
    paper claim next to the machine-checked outcome; [ok] aggregates
    the row-level verdicts (the "reproduced?" bit). *)

type table = {
  id : string;      (** experiment id, e.g. "e3" *)
  title : string;   (** what paper artifact this reproduces *)
  headers : string list;
  rows : string list list;
  ok : bool;
}

val table :
  id:string -> title:string -> headers:string list ->
  rows:string list list -> ok:bool -> table

val pp : Format.formatter -> table -> unit
(** Plain-text aligned rendering with an OK/FAIL banner. *)

val print : table -> unit

val verdict : bool -> string
(** ["yes"] / ["NO"]. *)

val check_mark : bool -> string
(** ["ok"] / ["FAIL"]. *)
