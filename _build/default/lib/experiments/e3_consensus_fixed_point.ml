let verdict_cell = function
  | Solvability.Solvable _ -> "solvable"
  | Solvability.Unsolvable -> "unsolvable"
  | Solvability.Undecided -> "undecided"

let run () =
  let fixed_rows = ref [] and fixed_ok = ref true in
  List.iter
    (fun n ->
      let task = Consensus.binary ~n in
      let inputs = Task.input_simplices task in
      List.iter
        (fun model ->
          let fp =
            Closure.fixed_point_on ~op:(Round_op.plain model) task inputs
          in
          fixed_ok := !fixed_ok && fp;
          fixed_rows :=
            [ string_of_int n; Model.name model; Report.verdict fp ]
            :: !fixed_rows)
        [ Model.Immediate; Model.Snapshot; Model.Collect ])
    [ 2; 3 ];
  let fixed_table =
    Report.table ~id:"e3"
      ~title:"Corollary 1: CL_M(consensus) = consensus (fixed point)"
      ~headers:[ "n"; "model"; "Δ' = Δ on all inputs" ]
      ~rows:(List.rev !fixed_rows) ~ok:!fixed_ok
  in
  (* Independent ground truth: direct solver runs. *)
  let direct_rows = ref [] and direct_ok = ref true in
  List.iter
    (fun (n, t) ->
      let task = Consensus.binary ~n in
      let v = Solvability.task_in_model Model.Immediate task ~rounds:t in
      let expected_unsolvable =
        match v with Solvability.Unsolvable -> true | _ -> false
      in
      direct_ok := !direct_ok && expected_unsolvable;
      direct_rows :=
        [
          string_of_int n;
          string_of_int t;
          verdict_cell v;
          Report.check_mark expected_unsolvable;
        ]
        :: !direct_rows)
    [ (2, 0); (2, 1); (2, 2); (2, 3); (3, 0); (3, 1); (3, 2) ];
  let direct_table =
    Report.table ~id:"e3"
      ~title:"Corollary 1 (ground truth): consensus unsolvable in t rounds of IIS"
      ~headers:[ "n"; "t"; "solver verdict"; "check" ]
      ~rows:(List.rev !direct_rows) ~ok:!direct_ok
  in
  [ fixed_table; direct_table ]
