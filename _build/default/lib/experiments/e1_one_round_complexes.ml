let sigma_of_n n =
  Simplex.of_list (List.init n (fun i -> (i + 1, Value.Int (i + 1))))

let run () =
  let rows = ref [] in
  let all_ok = ref true in
  List.iter
    (fun n ->
      let sigma = sigma_of_n n in
      let complexes =
        List.map
          (fun m -> (m, Complex.of_facets (Model.one_round_facets m sigma)))
          [ Model.Immediate; Model.Snapshot; Model.Collect ]
      in
      let find m = List.assoc m complexes in
      let is_c = find Model.Immediate
      and sn_c = find Model.Snapshot
      and co_c = find Model.Collect in
      let contained =
        Complex.subcomplex is_c sn_c && Complex.subcomplex sn_c co_c
      in
      (* For two processes the three one-round complexes coincide; the
         containments only become strict from n = 3 on (Figure 8). *)
      let strict =
        if n <= 2 then
          Complex.facet_count is_c = Complex.facet_count co_c
        else
          Complex.facet_count is_c < Complex.facet_count sn_c
          && Complex.facet_count sn_c < Complex.facet_count co_c
      in
      let bell_ok = Complex.facet_count is_c = Ordered_partition.count n in
      let ok = contained && strict && bell_ok in
      all_ok := !all_ok && ok;
      List.iter
        (fun (m, c) ->
          rows :=
            [
              string_of_int n;
              Model.name m;
              string_of_int (Complex.facet_count c);
              string_of_int (Complex.vertex_count c);
              string_of_int (Complex.dim c);
              Report.verdict (Complex.is_pure c);
            ]
            :: !rows)
        complexes;
      rows :=
        [
          string_of_int n;
          "(checks)";
          Printf.sprintf "IS⊆snap⊆coll:%s" (Report.verdict contained);
          Printf.sprintf "strict:%s" (Report.verdict strict);
          Printf.sprintf "bell(%d):%s" (Ordered_partition.count n)
            (Report.verdict bell_ok);
          "";
        ]
        :: !rows)
    [ 2; 3; 4 ];
  [
    Report.table ~id:"e1"
      ~title:"Figure 8: one-round complexes of collect/snapshot/immediate"
      ~headers:[ "n"; "model"; "facets"; "vertices"; "dim"; "pure" ]
      ~rows:(List.rev !rows) ~ok:!all_ok;
  ]
