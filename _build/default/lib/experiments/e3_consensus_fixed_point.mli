(** E3 — Corollary 1 (and Figure 2's machinery): wait-free consensus
    impossibility via the closure.

    Machine-checks that the closure of binary consensus is consensus
    itself — [Δ'(σ) = Δ(σ)] on every input simplex — in all three
    iterated models, for n = 2 and 3; plus zero-round unsolvability
    and independent direct unsolvability at small round counts. *)

val run : unit -> Report.table list
