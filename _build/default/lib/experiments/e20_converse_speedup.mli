(** E20 — the converse of the speedup theorem (conclusion, §6).

    The paper remarks that unlike the LOCAL model, the wait-free
    setting does not seem to admit a generic "if and only if" speedup
    theorem; for two processes an iff {e is} known ([7]).  A converse
    counterexample would be a task whose closure is 0-round solvable
    while the task itself is not 1-round solvable.  We search random
    task families (all of which turn out to be 1-round unsolvable —
    random specifications are hard) and find {b no} counterexample at
    n = 2 or n = 3: on every sampled task, a 0-round-solvable closure
    never coexists with 1-round unsolvability.  Consistent with [7]
    for n = 2; the general question remains open, and this experiment
    gives the question a reusable search harness. *)

val run : unit -> Report.table list
