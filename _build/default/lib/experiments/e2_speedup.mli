(** E2 — Theorems 1 and 2: the asynchronous speedup theorem on
    concrete instances.

    For several (task, model, t) triples with a [t]-round solution, we
    (a) extract the solution [f] with the solver, (b) build the proof's
    explicit [f'(i,V) = f(i,{(i,V)})] and check it is simplicial and
    agrees with the closure's Δ', and (c) independently re-solve the
    closure in [t−1] rounds. *)

val run : unit -> Report.table list
