(** E8 — Corollary 3 (ground truth): the round complexity of
    ε-approximate agreement in wait-free IIS, measured by the direct
    solver with no closure shortcuts.

    For each (n, ε) the solver scans t = 0, 1, … over the binary-input
    restriction and reports the smallest solvable t, which must equal
    [⌈log₃ 1/ε⌉] for n = 2 and [⌈log₂ 1/ε⌉] for n = 3. *)

val run : unit -> Report.table list
