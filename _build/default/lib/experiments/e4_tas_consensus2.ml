let alpha = Augmented.alpha_const Value.Unit
let box = Black_box.test_and_set

(* The decision map of Section 4.3 as a function on decorated vertices. *)
let explicit_map_agrees task =
  let inputs = Task.input_simplices task in
  List.for_all
    (fun sigma ->
      let p = Augmented.protocol_complex ~box ~alpha sigma 1 in
      let d = Task.delta task sigma in
      List.for_all
        (fun facet ->
          let image =
            Simplex.map_values
              (fun i view -> Tas_consensus2.decide i view)
              facet
          in
          Complex.mem image d)
        (Complex.facets p))
    inputs

let simulator_clean task values =
  let inputs = List.mapi (fun idx v -> (idx + 1, v)) values in
  let schedules =
    Adversary.exhaustive_is ~boxed:true ~participants:[ 1; 2 ] ~rounds:1
  in
  let crash_schedules =
    List.concat_map
      (fun s ->
        [ Adversary.with_crash s ~proc:1 ~round:1;
          Adversary.with_crash s ~proc:2 ~round:1 ])
      schedules
  in
  Adversary.check_task ~box:Sim_object.test_and_set Tas_consensus2.protocol task
    ~inputs ~schedules:(schedules @ crash_schedules)
  = []

let run () =
  let binary = Consensus.binary ~n:2 in
  let multi =
    Consensus.multi ~n:2 ~values:[ Value.Int 3; Value.Int 5; Value.Int 8 ]
  in
  let solver_binary =
    Solvability.is_solvable
      (Solvability.task_in_augmented ~box ~alpha binary ~rounds:1)
  in
  let solver_multi =
    Solvability.is_solvable
      (Solvability.task_in_augmented ~box ~alpha multi ~rounds:1)
  in
  let plain_unsolvable =
    not
      (Solvability.is_solvable
         (Solvability.task_in_model Model.Immediate binary ~rounds:1))
  in
  let explicit_binary = explicit_map_agrees binary in
  let explicit_multi = explicit_map_agrees multi in
  let sim_binary = simulator_clean binary [ Value.Int 0; Value.Int 1 ] in
  let sim_multi = simulator_clean multi [ Value.Int 3; Value.Int 8 ] in
  let rows =
    [
      [ "solver finds 1-round map (binary)"; Report.verdict solver_binary ];
      [ "solver finds 1-round map (multi-valued)"; Report.verdict solver_multi ];
      [ "explicit Fig-4 map simplicial+agrees (binary)"; Report.verdict explicit_binary ];
      [ "explicit Fig-4 map simplicial+agrees (multi)"; Report.verdict explicit_multi ];
      [ "simulator: all boxed schedules + crashes (binary)"; Report.verdict sim_binary ];
      [ "simulator: all boxed schedules + crashes (multi)"; Report.verdict sim_multi ];
      [ "contrast: 1 round plain IIS unsolvable"; Report.verdict plain_unsolvable ];
    ]
  in
  let ok =
    solver_binary && solver_multi && explicit_binary && explicit_multi
    && sim_binary && sim_multi && plain_unsolvable
  in
  [
    Report.table ~id:"e4"
      ~title:"Figure 4: 2-process consensus in one round with test&set"
      ~headers:[ "check"; "result" ] ~rows ~ok;
  ]
