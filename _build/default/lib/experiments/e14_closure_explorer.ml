let op = Round_op.plain Model.Immediate

let iterated_rows () =
  (* n = 2: CL^2 of (1/9)-AA should be 1-AA (= 9 * 1/9). *)
  let aa = Approx_agreement.task ~n:2 ~m:9 ~eps:(Frac.make 1 9) in
  let cl2 = Closure.iterate ~op 2 aa in
  let reference = Approx_agreement.task ~n:2 ~m:9 ~eps:Frac.one in
  let sigma = Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 1) ] in
  let two_ok = Task.delta_equal_on cl2 reference (Simplex.faces sigma) in
  (* n = 3 liberal: CL^2 of (1/4)-AA should be liberal 1-AA. *)
  let laa = Approx_agreement.liberal ~n:3 ~m:4 ~eps:(Frac.make 1 4) in
  let lcl2 = Closure.iterate ~op 2 laa in
  let lreference = Approx_agreement.liberal ~n:3 ~m:4 ~eps:Frac.one in
  let sigma3 =
    Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ]
  in
  let three_ok = Task.delta_equal_on lcl2 lreference (Simplex.faces sigma3) in
  ( [
      [ "CL^2((1/9)-AA), n=2 = 1-AA"; Report.verdict two_ok ];
      [ "CL^2(liberal (1/4)-AA), n=3 = liberal 1-AA"; Report.verdict three_ok ];
    ],
    two_ok && three_ok )

let set_agreement_rows () =
  (* Observed (and here asserted as regression data): unlike consensus
     and approximate agreement, 2-set agreement is NOT a fixed point of
     the closure.  On the rainbow input {0,1,2} the closure admits all
     27 output combinations — including the six 3-valued "rainbow"
     outputs — because any chromatic set of legal vertices can be
     collapsed to two values in one more round.  The fixed-point route
     of Lemma 1 therefore cannot reprove the k-set agreement
     impossibility; consistent with the paper applying the technique
     only to consensus and approximate agreement. *)
  let task = Set_agreement.task ~n:3 ~k:2 ~values:[ Value.Int 0; Value.Int 1; Value.Int 2 ] in
  let rainbow_in =
    Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1); (3, Value.Int 2) ]
  in
  let d = Task.delta task rainbow_in in
  let d' = Closure.delta ~op task rainbow_in in
  let counts_ok =
    Complex.facet_count d = 21 && Complex.facet_count d' = 27
  in
  let rainbow_out_added =
    Complex.mem rainbow_in d' && not (Complex.mem rainbow_in d)
  in
  let zero_round =
    Solvability.is_solvable
      (Solvability.task_in_model Model.Immediate task ~rounds:0)
  in
  ( [
      [ "CL_IIS(2-set agreement, n=3) = itself"; "NO (not a fixed point)" ];
      [ "Δ({0,1,2}) facets = 21, Δ'({0,1,2}) facets = 27"; Report.verdict counts_ok ];
      [ "rainbow output added by the closure"; Report.verdict rainbow_out_added ];
      [ "2-set agreement (n=3) unsolvable in 0 rounds"; Report.verdict (not zero_round) ];
    ],
    counts_ok && rainbow_out_added && not zero_round )

let sperner_rows () =
  (* While the closure cannot see the k-set obstruction (previous
     table), Sperner's lemma — machine-checked on the very same
     subdivisions — and the direct solver both can. *)
  let sigma =
    Simplex.of_list [ (1, Value.Int 1); (2, Value.Int 2); (3, Value.Int 3) ]
  in
  let p1 = Model.protocol_complex Model.Immediate sigma 1 in
  let p2 = Model.protocol_complex Model.Immediate sigma 2 in
  let exh = Sperner.exhaustive_check p1 in
  let smp = Sperner.sampled_check ~samples:800 p2 in
  let edge = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ] in
  let edge_exh =
    Sperner.exhaustive_check (Model.protocol_complex Model.Immediate edge 2)
  in
  let task =
    Set_agreement.task ~n:3 ~k:2 ~values:[ Value.Int 0; Value.Int 1; Value.Int 2 ]
  in
  let rainbow =
    Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1); (3, Value.Int 2) ]
  in
  let direct1 =
    match
      Solvability.task_in_model ~inputs:(Simplex.faces rainbow) Model.Immediate
        task ~rounds:1
    with
    | Solvability.Unsolvable -> true
    | Solvability.Solvable _ | Solvability.Undecided -> false
  in
  ( [
      [ "Sperner's lemma, exhaustive on P^1 (1728 labelings)"; Report.verdict exh ];
      [ "Sperner's lemma, exhaustive on subdivided edge (P^2)"; Report.verdict edge_exh ];
      [ "Sperner's lemma, sampled on P^2 (800 labelings)"; Report.verdict smp ];
      [ "direct solver: 2-set agreement (n=3) unsolvable at t=1"; Report.verdict direct1 ];
    ],
    exh && smp && edge_exh && direct1 )

let growth_rows () =
  let sigma n = Simplex.of_list (List.init n (fun i -> (i + 1, Value.Int i))) in
  List.concat_map
    (fun n ->
      List.map
        (fun t ->
          let facets m = Complex.facet_count (Model.protocol_complex m (sigma n) t) in
          [
            string_of_int n;
            string_of_int t;
            string_of_int (facets Model.Immediate);
            string_of_int (facets Model.Snapshot);
            string_of_int (facets Model.Collect);
          ])
        (if n = 2 then [ 0; 1; 2; 3; 4 ] else [ 0; 1; 2 ]))
    [ 2; 3 ]

let run () =
  let it_rows, it_ok = iterated_rows () in
  let sa_rows, sa_ok = set_agreement_rows () in
  let sp_rows, sp_ok = sperner_rows () in
  [
    Report.table ~id:"e14"
      ~title:"Iterated closures chain Claims 2-3 mechanically"
      ~headers:[ "check"; "result" ] ~rows:it_rows ~ok:it_ok;
    Report.table ~id:"e14"
      ~title:
        "Extension (new data): 2-set agreement is NOT a closure fixed point — the technique has limits"
      ~headers:[ "check"; "result" ] ~rows:sa_rows ~ok:sa_ok;
    Report.table ~id:"e14"
      ~title:
        "...but Sperner's lemma (the classical k-set obstruction) holds on the same complexes"
      ~headers:[ "check"; "result" ] ~rows:sp_rows ~ok:sp_ok;
    Report.table ~id:"e14"
      ~title:"Protocol complex growth |facets(P^t)|"
      ~headers:[ "n"; "t"; "immediate"; "snapshot"; "collect" ]
      ~rows:(growth_rows ()) ~ok:true;
  ]
