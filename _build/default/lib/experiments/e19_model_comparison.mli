(** E19 — the same question across models: how many rounds does
    ε-approximate agreement need in each wait-free model?

    The paper proves its bounds for IIS and remarks that lower bounds
    transfer to the weaker (more executions) models.  The solver can
    simply measure each model directly: for n = 3 and binary inputs,
    immediate snapshot, snapshot, collect, and 2-concurrency all have
    the same ε-AA round complexity (1 round for ε = 1/2, 2 rounds for
    ε = 1/4), while the 2-solo model solves it at no round count — a
    machine-made complexity table the paper never had to compute. *)

val run : unit -> Report.table list
