(** E11 — Theorem 4 / Claims 5–6: binary consensus with ID-only inputs
    barely accelerates approximate agreement.

    (a) Claim 6 at n = 5: for every β : [5] → {0,1}, on the majority
    side S′ the box degenerates (we check that the β-decorated complex
    strips to plain IIS with a constant box output) and the closure of
    liberal ε-AA restricted to S′ is liberal (2ε)-AA.
    (b) The resulting bound table min{⌈log₂ 1/ε⌉, ⌈log₂ n⌉ − 1},
    sandwiched by the two §5.3 upper bounds min{⌈log₂ 1/ε⌉, ⌈log₂ n⌉}.
    (c) Ground truth at n = 3, ε = 1/4: for every β, one round is not
    enough. *)

val run : unit -> Report.table list
