let sigma n =
  Simplex.of_list (List.init n (fun i -> (i + 1, Value.Int (i + 1))))

let betti_string c =
  String.concat "," (List.map string_of_int (Homology.betti c))

let homology_rows () =
  let rows = ref [] and ok = ref true in
  List.iter
    (fun (label, c, expect_ball) ->
      let ball = Homology.is_homology_ball c in
      ok := !ok && ball = expect_ball;
      rows :=
        [
          label;
          betti_string c;
          string_of_int (Homology.euler_characteristic c);
          Report.verdict (ball = expect_ball);
        ]
        :: !rows)
    [
      ("P^1 immediate, n=3",
       Complex.of_facets (Model.one_round_facets Model.Immediate (sigma 3)), true);
      ("P^1 snapshot, n=3",
       Complex.of_facets (Model.one_round_facets Model.Snapshot (sigma 3)), true);
      ("P^1 collect, n=3",
       Complex.of_facets (Model.one_round_facets Model.Collect (sigma 3)), true);
      ("P^2 immediate, n=3", Model.protocol_complex Model.Immediate (sigma 3) 2, true);
      ("P^1 immediate, n=4",
       Complex.of_facets (Model.one_round_facets Model.Immediate (sigma 4)), true);
      ("consensus outputs, n=3", Task.outputs (Consensus.binary ~n:3), false);
      ("hollow triangle (control)",
       Complex.of_facets (Simplex.boundary (sigma 3)), false);
    ];
  (List.rev !rows, !ok)

let connectivity_rows () =
  let rows = ref [] and ok = ref true in
  List.iter
    (fun (n, t) ->
      let r = Classical.consensus_argument ~n ~rounds:t in
      let valid = Classical.consensus_argument_valid r in
      ok := !ok && valid;
      rows :=
        [
          string_of_int n;
          string_of_int t;
          Report.verdict r.Classical.protocol_connected;
          Report.verdict r.Classical.outputs_monochromatic;
          Report.verdict r.Classical.solo_values_differ;
          Report.check_mark valid;
        ]
        :: !rows)
    [ (2, 1); (2, 2); (2, 3); (3, 1); (3, 2) ];
  (List.rev !rows, !ok)

let diameter_rows () =
  let pow b e =
    let rec go acc e = if e = 0 then acc else go (acc * b) (e - 1) in
    go 1 e
  in
  let rows = ref [] and ok = ref true in
  List.iter
    (fun (n, t) ->
      let expected = if n = 2 then pow 3 t else pow 2 t in
      let measured = Classical.solo_distance Model.Immediate ~n ~rounds:t in
      let bound = Classical.diameter_lower_bound Model.Immediate ~n ~rounds:t in
      let good = measured = Some expected in
      ok := !ok && good;
      rows :=
        [
          string_of_int n;
          string_of_int t;
          string_of_int expected;
          (match measured with Some d -> string_of_int d | None -> "∞");
          Frac.to_string bound;
          Report.check_mark good;
        ]
        :: !rows)
    [ (2, 1); (2, 2); (2, 3); (3, 1); (3, 2); (3, 3); (4, 1); (4, 2) ];
  (List.rev !rows, !ok)

let synthesis_rows () =
  let rows = ref [] and ok = ref true in
  let case name task rounds run_inputs exhaustive =
    let inputs =
      Complex.all_simplices
        (Approx_agreement.binary_input_complex ~n:task.Task.arity)
    in
    let good =
      match Synthesis.synthesize ~inputs Model.Immediate task ~rounds with
      | Some protocol ->
          Synthesis.validate protocol task ~inputs:run_inputs ~exhaustive
      | None -> false
    in
    ok := !ok && good;
    rows := [ name; string_of_int rounds; Report.verdict good ] :: !rows
  in
  case "(1/3)-AA, n=2"
    (Approx_agreement.task ~n:2 ~m:3 ~eps:(Frac.make 1 3))
    1
    [ (1, Value.frac 0 1); (2, Value.frac 1 1) ]
    true;
  case "(1/9)-AA, n=2"
    (Approx_agreement.task ~n:2 ~m:9 ~eps:(Frac.make 1 9))
    2
    [ (1, Value.frac 0 1); (2, Value.frac 1 1) ]
    true;
  case "(1/2)-AA, n=3"
    (Approx_agreement.task ~n:3 ~m:2 ~eps:Frac.half)
    1
    [ (1, Value.frac 0 1); (2, Value.frac 1 1); (3, Value.frac 1 1) ]
    true;
  case "liberal (1/4)-AA, n=3"
    (Approx_agreement.liberal ~n:3 ~m:4 ~eps:(Frac.make 1 4))
    2
    [ (1, Value.frac 0 1); (2, Value.frac 1 1); (3, Value.frac 0 1) ]
    true;
  (List.rev !rows, !ok)

let run () =
  let h_rows, h_ok = homology_rows () in
  let c_rows, c_ok = connectivity_rows () in
  let d_rows, d_ok = diameter_rows () in
  let s_rows, s_ok = synthesis_rows () in
  [
    Report.table ~id:"e15"
      ~title:"Mod-2 homology of the protocol and output complexes"
      ~headers:[ "complex"; "betti"; "euler"; "as expected" ]
      ~rows:h_rows ~ok:h_ok;
    Report.table ~id:"e15"
      ~title:"Classical connectivity argument for consensus (FLP/Herlihy-Shavit route)"
      ~headers:[ "n"; "t"; "P^t connected"; "O edges mono"; "solo pins differ"; "argument" ]
      ~rows:c_rows ~ok:c_ok;
    Report.table ~id:"e15"
      ~title:"Hoest-Shavit diameters: dist(solo_1, solo_2) in P^t is 3^t (n=2) / 2^t (n>=3)"
      ~headers:[ "n"; "t"; "expected"; "measured"; "eps lower bound"; "check" ]
      ~rows:d_rows ~ok:d_ok;
    Report.table ~id:"e15"
      ~title:"Synthesis: solver witnesses run as protocols in the simulator"
      ~headers:[ "task"; "rounds"; "valid under schedules+crash" ]
      ~rows:s_rows ~ok:s_ok;
  ]
