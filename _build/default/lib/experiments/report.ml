type table = {
  id : string;
  title : string;
  headers : string list;
  rows : string list list;
  ok : bool;
}

let table ~id ~title ~headers ~rows ~ok = { id; title; headers; rows; ok }

let verdict b = if b then "yes" else "NO"
let check_mark b = if b then "ok" else "FAIL"

let pp ppf t =
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (fun row ->
      List.iteri
        (fun k cell ->
          if k < Array.length widths then
            widths.(k) <- max widths.(k) (String.length cell))
        row)
    t.rows;
  let pp_row ppf row =
    List.iteri
      (fun k cell ->
        let pad =
          if k < Array.length widths then widths.(k) - String.length cell else 0
        in
        Format.fprintf ppf "%s%s  " cell (String.make (max 0 pad) ' '))
      row
  in
  Format.fprintf ppf "=== [%s] %s — %s ===@." (String.uppercase_ascii t.id)
    t.title
    (if t.ok then "OK" else "FAILED");
  Format.fprintf ppf "%a@." pp_row t.headers;
  Format.fprintf ppf "%s@."
    (String.make (Array.fold_left (fun a w -> a + w + 2) 0 widths) '-');
  List.iter (fun row -> Format.fprintf ppf "%a@." pp_row row) t.rows

let print t = Format.printf "%a@." pp t
