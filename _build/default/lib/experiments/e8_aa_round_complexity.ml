let expected ~n ~eps =
  if n = 2 then Frac.ceil_log ~base:3 (Frac.inv eps)
  else Frac.ceil_log ~base:2 (Frac.inv eps)

let unsat_at ~n ~m ~k ~t =
  let eps = Frac.make k m in
  let task = Approx_agreement.task ~n ~m ~eps in
  let inputs = Complex.all_simplices (Approx_agreement.binary_input_complex ~n) in
  match Solvability.task_in_model ~inputs Model.Immediate task ~rounds:t with
  | Solvability.Unsolvable -> true
  | Solvability.Solvable _ | Solvability.Undecided -> false

let run () =
  let cases =
    (* (n, m, eps numerator over m) *)
    [
      (2, 2, 1); (2, 3, 1); (2, 4, 1); (2, 9, 1); (2, 9, 2); (2, 27, 3);
      (3, 2, 1); (3, 4, 1); (3, 4, 3); (3, 8, 3);
    ]
  in
  let rows, ok =
    List.fold_left
      (fun (rows, ok) (n, m, k) ->
        let eps = Frac.make k m in
        let task = Approx_agreement.task ~n ~m ~eps in
        let inputs =
          Complex.all_simplices (Approx_agreement.binary_input_complex ~n)
        in
        let measured = Solvability.min_rounds ~inputs Model.Immediate task in
        let exp = expected ~n ~eps in
        let good = measured = Some exp in
        let row =
          [
            string_of_int n;
            Frac.to_string eps;
            string_of_int exp;
            (match measured with Some t -> string_of_int t | None -> "?");
            Report.check_mark good;
          ]
        in
        (row :: rows, ok && good))
      ([], true) cases
  in
  (* Four processes: the UNSAT side at the bound - 1 stays tractable
     even though the full minimal-round scan does not (the E9
     algorithms cover the SAT side for n = 4). *)
  let n4_unsat = unsat_at ~n:4 ~m:4 ~k:1 ~t:1 in
  let rows =
    List.rev rows
    @ [ [ "4"; "1/4"; "2"; ">=2 (UNSAT at 1)"; Report.check_mark n4_unsat ] ]
  in
  [
    Report.table ~id:"e8"
      ~title:
        "Corollary 3: min rounds for eps-AA in IIS (paper: ceil(log3 1/eps) for n=2, ceil(log2 1/eps) for n>=3)"
      ~headers:[ "n"; "eps"; "paper bound"; "measured"; "check" ]
      ~rows ~ok:(ok && n4_unsat);
  ]
