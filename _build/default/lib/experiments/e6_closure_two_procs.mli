(** E6 — Claim 2: for two processes, the closure of ε-approximate
    agreement w.r.t. wait-free IIS is (3ε)-approximate agreement.

    For several (m, ε) pairs we compute Δ'(σ) by exhaustive
    τ-enumeration + local-task solving and compare it, as a complex,
    with Δ_{3ε}(σ).  Fine grids check all faces of the extreme input
    edge plus sampled interior edges; the coarse grids check every
    input simplex. *)

val run : unit -> Report.table list
