let sigma n =
  Simplex.of_list (List.init n (fun i -> (i + 1, Value.Int (i + 1))))

let k_concurrency_rows () =
  let rows = ref [] and ok = ref true in
  let record label good =
    ok := !ok && good;
    rows := [ label; Report.verdict good ] :: !rows
  in
  (* Facet counts: 2-concurrency on 3 processes drops exactly the
     fully concurrent execution. *)
  record "2-concurrency n=3 has 12 of 13 IS facets"
    (List.length (Affine.k_concurrency 2 (sigma 3)) = 12);
  record "1-concurrency n=3 = the 6 fully sequential executions"
    (List.length (Affine.k_concurrency 1 (sigma 3)) = 6);
  record "solo executions allowed (speedup hypothesis)"
    (Affine.allows_solo (Affine.k_concurrency 2) (sigma 3));
  (* Consensus stays a fixed point. *)
  let consensus = Consensus.binary ~n:3 in
  record "CL_{2-conc}(consensus) = consensus"
    (Closure.fixed_point_on ~op:(Round_op.k_concurrency 2) consensus
       (Task.input_simplices consensus));
  (* Closure of liberal AA is still 2eps. *)
  let laa = Approx_agreement.liberal ~n:3 ~m:4 ~eps:(Frac.make 1 4) in
  let laa2 = Approx_agreement.liberal ~n:3 ~m:4 ~eps:Frac.half in
  let facet =
    Simplex.of_list
      [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ]
  in
  record "CL_{2-conc}(liberal eps-AA) = liberal 2eps-AA (sampled)"
    (Closure.equal_on ~op:(Round_op.k_concurrency 2) laa ~reference:laa2
       (Simplex.faces facet));
  (List.rev !rows, !ok)

let d_solo_rows () =
  let rows = ref [] and ok = ref true in
  let record label good =
    ok := !ok && good;
    rows := [ label; Report.verdict good ] :: !rows
  in
  record "1-solo = plain IIS (n=3)"
    (List.length (Affine.d_solo 1 (sigma 3)) = 13);
  record "2-solo n=2 adds the both-solo facet (4 facets)"
    (List.length (Affine.d_solo 2 (sigma 2)) = 4);
  record "2-solo n=3 adds concurrent-solo executions (16 facets)"
    (List.length (Affine.d_solo 2 (sigma 3)) = 16);
  (* The killer fact: eps-AA is a closure fixed point under 2-solo. *)
  let aa = Approx_agreement.task ~n:2 ~m:3 ~eps:(Frac.make 1 3) in
  let inputs =
    Complex.all_simplices (Approx_agreement.binary_input_complex ~n:2)
  in
  record "CL_{2-solo}(eps-AA, n=2) = eps-AA (fixed point => unsolvable)"
    (Closure.fixed_point_on ~op:(Round_op.d_solo 2) aa inputs);
  (* Direct cross-check: unsolvable at t = 0, 1, 2 in the 2-solo model
     (solvable in 1 round of plain IIS). *)
  let protocol t s =
    let rec go r acc =
      if r > t then acc
      else
        go (r + 1)
          (Complex.of_facets
             (List.concat_map (Affine.d_solo 2) (Complex.facets acc)))
    in
    go 1 (Complex.of_simplex s)
  in
  let unsolvable_at t =
    match
      Solvability.decide ~inputs
        ~protocol:(fun s -> protocol t s)
        ~delta:(Task.delta aa) ()
    with
    | Solvability.Unsolvable -> true
    | Solvability.Solvable _ | Solvability.Undecided -> false
  in
  record "direct: (1/3)-AA unsolvable under 2-solo, t=0" (unsolvable_at 0);
  record "direct: (1/3)-AA unsolvable under 2-solo, t=1" (unsolvable_at 1);
  record "direct: (1/3)-AA unsolvable under 2-solo, t=2" (unsolvable_at 2);
  record "contrast: solvable in 1 round of plain IIS"
    (Solvability.is_solvable
       (Solvability.task_in_model ~inputs Model.Immediate aa ~rounds:1));
  (List.rev !rows, !ok)

let run () =
  let k_rows, k_ok = k_concurrency_rows () in
  let d_rows, d_ok = d_solo_rows () in
  [
    Report.table ~id:"e16"
      ~title:"Affine models: k-concurrency behaves like IIS for the paper's targets"
      ~headers:[ "check"; "result" ] ~rows:k_rows ~ok:k_ok;
    Report.table ~id:"e16"
      ~title:"d-solo models: concurrent solos make eps-AA a fixed point (unsolvable)"
      ~headers:[ "check"; "result" ] ~rows:d_rows ~ok:d_ok;
  ]
