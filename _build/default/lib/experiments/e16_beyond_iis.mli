(** E16 — beyond plain IIS: the affine and d-solo models named in
    Section 1.2, put through the same machinery.

    (a) k-concurrency (an affine restriction of IIS): it still allows
    solo executions, the speedup theorem holds on it, consensus stays
    a closure fixed point, and the closure of liberal ε-AA is still
    (2ε)-AA — concurrency limits do not help the lower bounds' targets.
    (b) d-solo models (adding concurrent solo executions): for d ≥ 2,
    ε-approximate agreement becomes a closure {e fixed point}, hence
    unsolvable in any number of rounds (cross-checked directly) —
    matching the known weakness of d-solo models [26]. *)

val run : unit -> Report.table list
