(** E12 — the two §5.3 upper-bound algorithms with a binary consensus
    object, run in the operational simulator.

    (a) Multi-valued consensus in ⌈log₂ n⌉ rounds by agreeing on a
    participant ID bit by bit (box inputs depend only on IDs/round in
    round 1, and on the carried candidate afterwards).
    (b) ε-approximate agreement in ⌈log₂ 1/ε⌉ rounds by agreeing on
    the output bits (box inputs depend on values — the family escaping
    Theorem 4's hypothesis). *)

val run : unit -> Report.table list
