(** E15 — the classical topological arguments on the same objects
    (Related Work, [18, 27, 28]): connectivity/valency for consensus
    and the diameter of the subdivided simplex for approximate
    agreement, mechanized next to the paper's closure technique.

    (a) mod-2 homology: one-round complexes of all three models are
    homology balls, while the consensus output complex has two
    components.
    (b) The connectivity argument re-proves consensus impossibility.
    (c) Solo-corner distances in P^(t) are exactly 3^t (n = 2) and
    2^t (n ≥ 3), and the induced diameter lower bounds coincide with
    Corollary 3.
    (d) Protocols synthesized from solver witnesses run correctly in
    the simulator (maps ↔ algorithms). *)

val run : unit -> Report.table list
