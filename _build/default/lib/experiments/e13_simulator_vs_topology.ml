let sigma_of_n n =
  Simplex.of_list (List.init n (fun i -> (i + 1, Value.Int (10 * (i + 1)))))

let row_of (r : Cross_check.report) n =
  ( [
      r.Cross_check.label;
      string_of_int n;
      string_of_int r.Cross_check.simulated;
      string_of_int r.Cross_check.combinatorial;
      Report.verdict r.Cross_check.matched;
    ],
    r.Cross_check.matched )

let run () =
  let s2 = sigma_of_n 2 and s3 = sigma_of_n 3 in
  let checks =
    [
      (Cross_check.immediate s2, 2);
      (Cross_check.immediate s3, 3);
      (Cross_check.immediate_iterated ~rounds:2 s2, 2);
      (Cross_check.immediate_iterated ~rounds:3 s2, 2);
      (Cross_check.immediate_iterated ~rounds:2 s3, 3);
      (Cross_check.snapshot s2, 2);
      (Cross_check.snapshot s3, 3);
      (Cross_check.collect_exhaustive s2, 2);
      (Cross_check.collect_constructive s3, 3);
      (Cross_check.immediate_test_and_set s2, 2);
      (Cross_check.immediate_test_and_set s3, 3);
      (Cross_check.immediate_bin_consensus ~beta:(fun i -> i > 1) s3, 3);
      (Cross_check.immediate_bin_consensus ~beta:(fun _ -> false) s3, 3);
    ]
  in
  let rows = List.map (fun (r, n) -> fst (row_of r n)) checks in
  let ok = List.for_all (fun (r, n) -> snd (row_of r n)) checks in
  [
    Report.table ~id:"e13"
      ~title:"Simulator vs protocol complexes: exhaustive executions = facets"
      ~headers:[ "model"; "n"; "simulated profiles"; "facets"; "match" ]
      ~rows ~ok;
  ]
