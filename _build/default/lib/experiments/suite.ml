type entry = {
  id : string;
  description : string;
  run : unit -> Report.table list;
}

let all =
  [
    { id = "e1"; description = "Figure 8: one-round complexes of the three models";
      run = E1_one_round_complexes.run };
    { id = "e2"; description = "Theorems 1-2: the asynchronous speedup theorem";
      run = E2_speedup.run };
    { id = "e3"; description = "Corollary 1: consensus is a closure fixed point";
      run = E3_consensus_fixed_point.run };
    { id = "e4"; description = "Figure 4: 2-process consensus with test&set";
      run = E4_tas_consensus2.run };
    { id = "e5"; description = "Corollary 2 / Figures 5-6: no consensus with test&set, n=3";
      run = E5_tas_consensus_impossible.run };
    { id = "e6"; description = "Claim 2: closure of eps-AA (n=2) is 3eps-AA";
      run = E6_closure_two_procs.run };
    { id = "e7"; description = "Claim 3: closure of liberal eps-AA (n>=3) is 2eps-AA";
      run = E7_closure_three_procs.run };
    { id = "e8"; description = "Corollary 3: measured round complexity of eps-AA";
      run = E8_aa_round_complexity.run };
    { id = "e9"; description = "Upper bounds: halving and thirds algorithms";
      run = E9_aa_upper_bounds.run };
    { id = "e10"; description = "Theorem 3 / Claim 4: test&set does not speed up AA (n>=3)";
      run = E10_tas_no_speedup.run };
    { id = "e11"; description = "Theorem 4 / Claims 5-6: binary consensus lower bound";
      run = E11_bincons_lower_bound.run };
    { id = "e12"; description = "§5.3 upper bounds with a binary consensus object";
      run = E12_bincons_upper_bounds.run };
    { id = "e13"; description = "Simulator vs topology cross-validation";
      run = E13_simulator_vs_topology.run };
    { id = "e14"; description = "Closure explorer: iterated closures, k-set agreement, growth";
      run = E14_closure_explorer.run };
    { id = "e15"; description = "Classical topology cross-checks: homology, connectivity, diameters, synthesis";
      run = E15_classical_topology.run };
    { id = "e16"; description = "Beyond IIS: k-concurrency and d-solo models";
      run = E16_beyond_iis.run };
    { id = "e17"; description = "New data: unrestricted binary-consensus closure; adaptive renaming";
      run = E17_unrestricted_closures.run };
    { id = "e18"; description = "Iterated vs non-iterated memory: breakage, emulation, transfer";
      run = E18_non_iterated.run };
    { id = "e19"; description = "eps-AA round complexity measured across all the models";
      run = E19_model_comparison.run };
    { id = "e20"; description = "Converse speedup search (the conclusion's iff question)";
      run = E20_converse_speedup.run };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_one id =
  match find id with Some e -> e.run () | None -> raise Not_found

let run_all () = List.concat_map (fun e -> e.run ()) all
let print_tables tables = List.iter Report.print tables
let all_ok tables = List.for_all (fun t -> t.Report.ok) tables
