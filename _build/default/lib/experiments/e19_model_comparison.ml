let iterate one_round s t =
  let rec go r acc =
    if r > t then acc
    else
      go (r + 1)
        (Complex.of_facets (List.concat_map one_round (Complex.facets acc)))
  in
  go 1 (Complex.of_simplex s)

let models =
  [
    ("immediate", Model.one_round_facets Model.Immediate);
    ("snapshot", Model.one_round_facets Model.Snapshot);
    ("collect", Model.one_round_facets Model.Collect);
    ("2-concurrency", Affine.k_concurrency 2);
    ("2-solo", Affine.d_solo 2);
  ]

let min_rounds one_round task ~inputs ~max_rounds =
  let rec scan t =
    if t > max_rounds then None
    else
      match
        Solvability.decide ~inputs
          ~protocol:(fun s -> iterate one_round s t)
          ~delta:(Task.delta task) ()
      with
      | Solvability.Solvable _ -> Some t
      | Solvability.Unsolvable -> scan (t + 1)
      | Solvability.Undecided -> None
  in
  scan 0

let run () =
  let inputs =
    Complex.all_simplices (Approx_agreement.binary_input_complex ~n:3)
  in
  let tasks =
    [
      ("1/2", Approx_agreement.task ~n:3 ~m:2 ~eps:Frac.half, Some 1);
      ("1/4", Approx_agreement.task ~n:3 ~m:4 ~eps:(Frac.make 1 4), Some 2);
    ]
  in
  let rows = ref [] and ok = ref true in
  List.iter
    (fun (name, one_round) ->
      List.iter
        (fun (eps, task, iis_expect) ->
          let measured = min_rounds one_round task ~inputs ~max_rounds:2 in
          (* All solo-execution models must match IIS on these
             instances; the 2-solo model must fail entirely. *)
          let expected = if name = "2-solo" then None else iis_expect in
          let good = measured = expected in
          ok := !ok && good;
          rows :=
            [
              name;
              eps;
              (match measured with
              | Some t -> string_of_int t
              | None -> "unsolvable (≤2)");
              (match expected with
              | Some t -> string_of_int t
              | None -> "unsolvable (≤2)");
              Report.check_mark good;
            ]
            :: !rows)
        tasks)
    models;
  [
    Report.table ~id:"e19"
      ~title:
        "eps-AA round complexity across models (n=3, binary inputs): the three wait-free models and 2-concurrency coincide"
      ~headers:[ "model"; "eps"; "measured rounds"; "expected"; "check" ]
      ~rows:(List.rev !rows) ~ok:!ok;
  ]
