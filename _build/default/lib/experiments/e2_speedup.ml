let binary_inputs n =
  Complex.all_simplices (Approx_agreement.binary_input_complex ~n)

let instances () =
  let aa_2_19 = Approx_agreement.task ~n:2 ~m:9 ~eps:(Frac.make 1 9) in
  let aa_2_13 = Approx_agreement.task ~n:2 ~m:3 ~eps:(Frac.make 1 3) in
  let laa_3_14 = Approx_agreement.liberal ~n:3 ~m:4 ~eps:(Frac.make 1 4) in
  let laa_3_12 = Approx_agreement.liberal ~n:3 ~m:2 ~eps:(Frac.make 1 2) in
  [
    (Speedup.of_model Model.Immediate, aa_2_19, 2, binary_inputs 2);
    (Speedup.of_model Model.Immediate, aa_2_13, 1, binary_inputs 2);
    (Speedup.of_model Model.Snapshot, aa_2_13, 1, binary_inputs 2);
    (Speedup.of_model Model.Collect, aa_2_13, 1, binary_inputs 2);
    (Speedup.of_model Model.Immediate, laa_3_14, 2, binary_inputs 3);
    (Speedup.of_model Model.Immediate, laa_3_12, 1, binary_inputs 3);
    (Speedup.of_test_and_set, aa_2_19, 1, binary_inputs 2);
    (Speedup.of_test_and_set, laa_3_12, 1, binary_inputs 3);
    ( Speedup.of_bin_consensus_beta (fun ~round:_ i -> i mod 2 = 0),
      laa_3_12, 1, binary_inputs 3 );
  ]

let run () =
  let rows, ok =
    List.fold_left
      (fun (rows, ok) (setting, task, rounds, inputs) ->
        let r = Speedup.verify setting task ~rounds ~inputs in
        let holds = Speedup.speedup_holds r in
        let row =
          [
            Speedup.setting_name setting;
            task.Task.name;
            string_of_int rounds;
            Report.verdict (Solvability.is_solvable r.Speedup.base);
            Report.verdict r.Speedup.construction_valid;
            Report.verdict (Solvability.is_solvable r.Speedup.closure_direct);
            Report.check_mark holds;
          ]
        in
        (row :: rows, ok && holds))
      ([], true) (instances ())
  in
  [
    Report.table ~id:"e2"
      ~title:
        "Theorems 1-2: t-round solution => closure solvable in t-1 (constructive)"
      ~headers:
        [ "model"; "task"; "t"; "solvable(t)"; "f' valid"; "CL solvable(t-1)"; "check" ]
      ~rows:(List.rev rows) ~ok;
  ]
