(** E7 — Claim 3: for n ≥ 3, the closure of the liberal ε-approximate
    agreement w.r.t. wait-free IIS is the liberal (2ε)-approximate
    agreement.

    Exhaustive over all input simplices for coarse grids (m = 2, 4),
    sampled for finer ones; also spot-checks n = 4. *)

val run : unit -> Report.table list
