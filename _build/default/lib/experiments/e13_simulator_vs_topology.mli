(** E13 — cross-validation of the combinatorial model (Section 2 /
    Appendix A.3.4) against the operational simulator.

    Exhaustively scheduled one-round executions must produce exactly
    the facets of Ξ₁(σ) for each model, including the augmented ones
    (Figures 5 and 7); collect matrices are additionally realized
    constructively. *)

val run : unit -> Report.table list
