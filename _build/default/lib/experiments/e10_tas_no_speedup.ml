let alpha = Augmented.alpha_const Value.Unit
let box = Black_box.test_and_set

let min_rounds_augmented ?(max_rounds = 3) task ~inputs =
  let rec scan t =
    if t > max_rounds then None
    else
      match
        Solvability.task_in_augmented ~inputs ~box ~alpha task ~rounds:t
      with
      | Solvability.Solvable _ -> Some t
      | Solvability.Unsolvable -> scan (t + 1)
      | Solvability.Undecided -> None
  in
  scan 0

let cell = function Some t -> string_of_int t | None -> "?"

let claim4_rows () =
  let op = Round_op.test_and_set in
  let cases = [ (2, 1, true); (4, 1, true); (4, 2, true); (8, 1, false) ] in
  List.map
    (fun (m, k, full) ->
      let eps = Frac.make k m in
      let aa = Approx_agreement.liberal ~n:3 ~m ~eps in
      let two_eps = Frac.min (Frac.mul (Frac.of_int 2) eps) Frac.one in
      let reference = Approx_agreement.liberal ~n:3 ~m ~eps:two_eps in
      let simplices =
        if full then
          Complex.all_simplices
            (Combinatorics.full_input_complex 3 (Approx_agreement.grid m))
        else
          Simplex.faces
            (Simplex.of_list
               [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ])
      in
      let equal = Closure.equal_on ~op aa ~reference simplices in
      ( [
          string_of_int m;
          Frac.to_string eps;
          Frac.to_string two_eps;
          (if full then "all" else "sampled");
          Report.verdict equal;
        ],
        equal ))
    cases

let contrast_rows () =
  let binary n = Complex.all_simplices (Approx_agreement.binary_input_complex ~n) in
  let case ~n ~m ~k =
    let eps = Frac.make k m in
    let task = Approx_agreement.task ~n ~m ~eps in
    let inputs = binary n in
    let plain = Solvability.min_rounds ~inputs ~max_rounds:3 Model.Immediate task in
    let tas = min_rounds_augmented task ~inputs in
    (eps, n, plain, tas)
  in
  let expectations =
    [
      (case ~n:2 ~m:9 ~k:1, (Some 2, Some 1)); (* T&S helps for n = 2 *)
      (case ~n:3 ~m:2 ~k:1, (Some 1, Some 1));
      (case ~n:3 ~m:4 ~k:1, (Some 2, Some 2)); (* but not for n = 3 *)
    ]
  in
  List.map
    (fun ((eps, n, plain, tas), (exp_plain, exp_tas)) ->
      let good = plain = exp_plain && tas = exp_tas in
      ( [
          string_of_int n;
          Frac.to_string eps;
          cell plain;
          cell tas;
          Report.check_mark good;
        ],
        good ))
    expectations

let run () =
  let c4 = claim4_rows () in
  let ct = contrast_rows () in
  [
    Report.table ~id:"e10"
      ~title:"Claim 4: CL_{IIS+T&S}(liberal eps-AA, n=3) = liberal (2eps)-AA"
      ~headers:[ "m"; "eps"; "2eps"; "inputs"; "Δ' = Δ_2eps" ]
      ~rows:(List.map fst c4)
      ~ok:(List.for_all snd c4);
    Report.table ~id:"e10"
      ~title:
        "Theorem 3: min rounds for eps-AA, plain IIS vs IIS+test&set (T&S only helps n=2)"
      ~headers:[ "n"; "eps"; "plain IIS"; "IIS+T&S"; "check" ]
      ~rows:(List.map fst ct)
      ~ok:(List.for_all snd ct);
  ]
