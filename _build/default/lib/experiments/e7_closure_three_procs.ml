let facet3 m (a, b, c) =
  Simplex.of_list
    [ (1, Value.frac a m); (2, Value.frac b m); (3, Value.frac c m) ]

let sample_simplices m full =
  if full then
    Complex.all_simplices
      (Combinatorics.full_input_complex 3 (Approx_agreement.grid m))
  else
    List.concat_map Simplex.faces
      [
        facet3 m (0, m / 2, m);
        facet3 m (0, 0, m);
        facet3 m (1, m / 2, m - 1);
        facet3 m (0, m, m);
        facet3 m (m / 2, m / 2, m / 2);
      ]

let cap_one q = Frac.min q Frac.one

let run () =
  let op = Round_op.plain Model.Immediate in
  let cases = [ (2, 1, true); (4, 1, true); (4, 2, true); (6, 1, false); (8, 1, false); (8, 2, false) ] in
  let rows, ok =
    List.fold_left
      (fun (rows, ok) (m, k, full) ->
        let eps = Frac.make k m in
        let aa = Approx_agreement.liberal ~n:3 ~m ~eps in
        let two_eps = cap_one (Frac.mul (Frac.of_int 2) eps) in
        let reference = Approx_agreement.liberal ~n:3 ~m ~eps:two_eps in
        let simplices = sample_simplices m full in
        let equal = Closure.equal_on ~op aa ~reference simplices in
        let row =
          [
            "3";
            string_of_int m;
            Frac.to_string eps;
            Frac.to_string two_eps;
            (if full then "all" else "sampled");
            string_of_int (List.length simplices);
            Report.verdict equal;
          ]
        in
        (row :: rows, ok && equal))
      ([], true) cases
  in
  (* Spot-check n = 4 on the extreme facet. *)
  let n4_ok =
    let m = 4 and k = 1 in
    let eps = Frac.make k m in
    let aa = Approx_agreement.liberal ~n:4 ~m ~eps in
    let reference = Approx_agreement.liberal ~n:4 ~m ~eps:(Frac.make 2 m) in
    let sigma =
      Simplex.of_list
        [ (1, Value.frac 0 1); (2, Value.frac 1 4); (3, Value.frac 3 4); (4, Value.frac 1 1) ]
    in
    Closure.equal_on ~op aa ~reference (Simplex.faces sigma)
  in
  let rows =
    List.rev rows
    @ [ [ "4"; "4"; "1/4"; "1/2"; "one facet + faces"; "15"; Report.verdict n4_ok ] ]
  in
  (* Model robustness (beyond the paper, which states Claim 3 for
     IIS): the same identity holds in the snapshot and collect models,
     sampled on the extreme facet. *)
  let model_rows =
    List.map
      (fun model ->
        let m = 4 in
        let aa = Approx_agreement.liberal ~n:3 ~m ~eps:(Frac.make 1 m) in
        let reference = Approx_agreement.liberal ~n:3 ~m ~eps:Frac.half in
        let facet =
          Simplex.of_list
            [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ]
        in
        let equal =
          Closure.equal_on ~op:(Round_op.plain model) aa ~reference
            (Simplex.faces facet)
        in
        ([ Model.name model; "1/4"; "1/2"; Report.verdict equal ], equal))
      [ Model.Immediate; Model.Snapshot; Model.Collect ]
  in
  [
    Report.table ~id:"e7"
      ~title:"Claim 3: CL_IIS(liberal eps-AA, n>=3) = liberal (2eps)-AA"
      ~headers:[ "n"; "m"; "eps"; "2eps"; "inputs"; "#simplices"; "Δ' = Δ_2eps" ]
      ~rows ~ok:(ok && n4_ok);
    Report.table ~id:"e7"
      ~title:"Claim 3 is model-robust: the same closure in snapshot and collect (n=3, sampled)"
      ~headers:[ "model"; "eps"; "2eps"; "Δ' = Δ_2eps" ]
      ~rows:(List.map fst model_rows)
      ~ok:(List.for_all snd model_rows);
  ]
