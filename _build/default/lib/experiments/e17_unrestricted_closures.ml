let unrestricted_rows () =
  let m = 4 in
  let eps = Frac.make 1 m in
  let laa = Approx_agreement.liberal ~n:3 ~m ~eps in
  let sigma =
    Simplex.of_list
      [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ]
  in
  let ops = Closure.bin_consensus_ops [ 1; 2; 3 ] in
  let d_any = Closure.delta_any ~ops ~name:"bincons-any-beta" laa sigma in
  let delta_of e =
    Task.delta (Approx_agreement.liberal ~n:3 ~m ~eps:e) sigma
  in
  let counts =
    List.map
      (fun (label, e) ->
        let d = delta_of e in
        ( [
            label;
            string_of_int (Complex.facet_count d);
            Report.verdict (Complex.equal d_any d);
          ],
          Complex.equal d_any d ))
      [
        ("liberal 2eps-AA (= ID-only closure)", Frac.make 2 m);
        ("liberal 3eps-AA", Frac.make 3 m);
        ("liberal 1-AA (validity only)", Frac.one);
      ]
  in
  let header_row =
    [
      Printf.sprintf "Δ'_anyβ(σ) has %d facets (all %d in-range combinations)"
        (Complex.facet_count d_any)
        (Complex.facet_count (delta_of Frac.one));
      "";
      Report.verdict (Complex.facet_count d_any = Complex.facet_count (delta_of Frac.one));
    ]
  in
  (* Sanity: each individual β-closure is still only 2eps (Claim 6's
     degenerate side covers the constant βs; mixed βs are no stronger
     alone on this σ than together? they are weaker: check subset). *)
  let each_beta_smaller =
    List.for_all
      (fun op ->
        Complex.subcomplex (Closure.delta ~op laa sigma) d_any)
      ops
  in
  (* Landscape of single-β closures: constant β degenerates to the
     2eps task, a mixed β sits strictly in between. *)
  let const_count =
    Complex.facet_count
      (Closure.delta ~op:(Round_op.bin_consensus_beta (fun _ -> false)) laa sigma)
  in
  let mixed_count =
    Complex.facet_count
      (Closure.delta ~op:(Round_op.bin_consensus_beta (fun i -> i = 1)) laa sigma)
  in
  let landscape_ok = const_count = 65 && mixed_count = 95 in
  let expected =
    (* The headline finding: equal to validity-only, strictly above 2eps. *)
    Complex.equal d_any (delta_of Frac.one)
    && (not (Complex.equal d_any (delta_of (Frac.make 2 m))))
    && each_beta_smaller
  in
  ( header_row :: List.map fst counts
    @ [
        [ "every single-β closure ⊆ Δ'_anyβ"; ""; Report.verdict each_beta_smaller ];
        [ "single constant β closure"; string_of_int const_count;
          Report.verdict (const_count = 65) ];
        [ "single mixed β closure (strictly between)"; string_of_int mixed_count;
          Report.verdict (mixed_count = 95) ];
      ],
    expected && landscape_ok )

let renaming_rows () =
  let rows = ref [] and ok = ref true in
  let record label good =
    ok := !ok && good;
    rows := [ label; Report.verdict good ] :: !rows
  in
  let solvable_at t task =
    Solvability.is_solvable (Solvability.task_in_model Model.Immediate task ~rounds:t)
  in
  let rn2 = Renaming.task ~n:2 in
  record "adaptive renaming n=2: not 0-round solvable" (not (solvable_at 0 rn2));
  record "adaptive renaming n=2: 1-round solvable" (solvable_at 1 rn2);
  record "adaptive renaming n=2: closure strictly easier (no fixed point)"
    (not
       (Closure.fixed_point_on ~op:(Round_op.plain Model.Immediate) rn2
          (Task.input_simplices rn2)));
  let rn3 = Renaming.task ~n:3 in
  record "adaptive renaming n=3: not 1-round solvable" (not (solvable_at 1 rn3));
  record "adaptive renaming n=3: 2-round solvable" (solvable_at 2 rn3);
  (* A tighter name space is harder: (2p-2) names are not enough in
     two rounds for n = 3 (cf. the renaming literature). *)
  let tight = Renaming.with_names ~n:3 ~names:(fun p -> max p ((2 * p) - 2)) in
  record "(2p-2)-renaming n=3: not 1-round solvable" (not (solvable_at 1 tight));
  (List.rev !rows, !ok)

let run () =
  let u_rows, u_ok = unrestricted_rows () in
  let r_rows, r_ok = renaming_rows () in
  [
    Report.table ~id:"e17"
      ~title:
        "NEW DATA: unrestricted binary-consensus closure of liberal (1/4)-AA, n=3 (σ = (0,1/2,1))"
      ~headers:[ "reference task"; "facets"; "Δ'_anyβ equals it" ]
      ~rows:u_rows ~ok:u_ok;
    Report.table ~id:"e17"
      ~title:"Companion task: adaptive renaming under the same machinery"
      ~headers:[ "check"; "result" ] ~rows:r_rows ~ok:r_ok;
  ]
