type t = {
  name : string;
  outcomes :
    part:Ordered_partition.t -> inputs:(int * Value.t) list ->
    (int * Value.t) list list;
}

let participants part = List.sort Stdlib.compare (List.concat part)

let test_and_set =
  let outcomes ~part ~inputs =
    ignore inputs;
    let ids = participants part in
    List.map
      (fun winner -> List.map (fun i -> (i, Value.Bool (i = winner))) ids)
      (Ordered_partition.first_block part)
  in
  { name = "test&set"; outcomes }

let bin_consensus =
  let outcomes ~part ~inputs =
    let ids = participants part in
    let proposals =
      List.map
        (fun w ->
          match List.assoc_opt w inputs with
          | Some a -> a
          | None -> invalid_arg "bin_consensus: missing input")
        (Ordered_partition.first_block part)
    in
    let decisions = List.sort_uniq Value.compare proposals in
    List.map (fun d -> List.map (fun i -> (i, d)) ids) decisions
  in
  { name = "bin-consensus"; outcomes }

let solo_output box i a =
  match box.outcomes ~part:[ [ i ] ] ~inputs:[ (i, a) ] with
  | [ assignment ] -> (
      match List.assoc_opt i assignment with
      | Some b -> b
      | None -> invalid_arg "Black_box.solo_output: process missing")
  | [] | _ :: _ ->
      invalid_arg "Black_box.solo_output: box not deterministic on solo runs"
