let k_concurrency k sigma =
  if k < 1 then invalid_arg "Affine.k_concurrency: k < 1";
  let ids = Simplex.ids sigma in
  let facet_of part =
    Simplex.of_vertices
      (List.map
         (fun (i, seen) ->
           Vertex.make i
             (Value.view (List.map (fun j -> (j, Simplex.value j sigma)) seen)))
         (Ordered_partition.views part))
  in
  Ordered_partition.enumerate ids
  |> List.filter (fun part -> List.for_all (fun b -> List.length b <= k) part)
  |> List.map facet_of
  |> List.sort_uniq Simplex.compare

let rec subsets_of_size k = function
  | _ when k = 0 -> [ [] ]
  | [] -> []
  | x :: rest ->
      List.map (fun s -> x :: s) (subsets_of_size (k - 1) rest)
      @ subsets_of_size k rest

let d_solo d sigma =
  if d < 1 then invalid_arg "Affine.d_solo: d < 1";
  let ids = Simplex.ids sigma in
  let value j = Simplex.value j sigma in
  let base = Model.one_round_facets Model.Immediate sigma in
  let extra =
    List.concat_map
      (fun size ->
        List.concat_map
          (fun solos ->
            let rest = List.filter (fun i -> not (List.mem i solos)) ids in
            let solo_vertices =
              List.map (fun i -> Vertex.make i (Model.solo_view i (value i))) solos
            in
            if rest = [] then
              [ Simplex.of_vertices solo_vertices ]
            else
              List.map
                (fun part ->
                  let followers =
                    List.map
                      (fun (i, seen) ->
                        let seen = List.sort_uniq Stdlib.compare (solos @ seen) in
                        Vertex.make i
                          (Value.view (List.map (fun j -> (j, value j)) seen)))
                      (Ordered_partition.views part)
                  in
                  Simplex.of_vertices (solo_vertices @ followers))
                (Ordered_partition.enumerate rest))
          (subsets_of_size size ids))
      (List.init (max 0 (d - 1)) (fun i -> i + 2))
  in
  List.sort_uniq Simplex.compare (base @ extra)

let allows_solo one_round sigma =
  List.for_all
    (fun i ->
      let solo = Model.solo_vertex sigma i in
      List.exists (fun f -> Simplex.mem solo f) (one_round sigma))
    (Simplex.ids sigma)
