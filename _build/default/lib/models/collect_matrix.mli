(** Matrix representation of one-round executions (Appendix A.3.4).

    A matrix over a color set [I] is a sequence of pairs
    [(P_s, I_s)], s = 0..r, such that
    (1) [0 <= r <= |I| - 1],
    (2) [P_s ⊆ I],
    (3) [P_0 = I],
    (4) the [I_s] partition [I], and
    (5) [∪_{j>=s} I_j ⊆ P_s].
    Its semantics: every process in [I_s] reads exactly the values of
    the processes in [P_s].  The three models of the paper are carved
    out of the same matrix set:
    - {b write-collect}: all matrices;
    - {b write-snapshot}: the [P_s] are pairwise comparable (chain);
    - {b immediate snapshot}: if a process of [I_s] sees a process of
      [I_j], then [P_j ⊆ P_s] (equivalently, facets correspond to
      ordered set partitions). *)

type row = { sees : int list; group : int list }
(** One [(P_s, I_s)] pair; both sorted. *)

type t = row list

val enumerate : int list -> t list
(** All write-collect matrices over the given color set. *)

val is_snapshot : t -> bool
val is_immediate : t -> bool

val views : t -> (int * int list) list
(** [(i, P_s(i))] for every process [i], sorted by [i]. *)

val of_ordered_partition : Ordered_partition.t -> t
(** The immediate-snapshot matrix of an ordered partition: blocks in
    reverse scheduling order (the last-scheduled block reads everyone,
    hence is [I_0]). *)

val pp : Format.formatter -> t -> unit
