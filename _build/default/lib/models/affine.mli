(** Affine and d-solo variants of the iterated immediate snapshot
    model (Section 1.2 of the paper; [31], [26]).

    An affine model is obtained from IIS by {e removing} executions: we
    implement the [k]-concurrency model, where at most [k] processes
    take steps simultaneously (immediate-snapshot blocks of size at
    most [k]).  Singleton blocks are always allowed, so these models
    admit solo executions and Theorem 1 applies to them.

    The d-solo models {e add} executions instead: up to [d] processes
    may each run solo in the same execution (all seeing only
    themselves), the rest running immediate snapshot after them.
    [d = 1] is plain IIS. *)

val k_concurrency : int -> Simplex.t -> Simplex.t list
(** Facets of the one-round [k]-concurrency complex: the IS facets
    whose blocks all have size [<= k].
    @raise Invalid_argument if [k < 1]. *)

val d_solo : int -> Simplex.t -> Simplex.t list
(** Facets of the one-round [d]-solo complex: the IS facets, plus, for
    every set [S] of [2..d] processes, the executions where all of [S]
    run solo concurrently and the remaining processes then run
    immediate snapshot seeing [S] and each other.
    @raise Invalid_argument if [d < 1]. *)

val allows_solo : (Simplex.t -> Simplex.t list) -> Simplex.t -> bool
(** Whether every process has a facet in which it appears with its solo
    view — the hypothesis of the speedup theorem. *)
