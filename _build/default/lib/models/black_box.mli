(** Consistent black-box objects (Section 4.1).

    A black box is invoked once per round by every participating
    process, between its write and its collect (Algorithm 2).  The
    paper's consistency assumption — identical inputs and identical
    interleaving yield identical outputs — lets the one-round complex
    of the augmented model be described by {e decorations}: for each
    immediate-snapshot execution (an ordered partition of the
    participants) the box admits a set of possible output assignments.

    Both concrete boxes pin the outcome of solo executions (a process
    running ahead of everyone wins test&set, and its proposal is the
    only one a consensus box can return), which is what makes the
    augmented models satisfy the solo-execution hypothesis of
    Theorem 2. *)

type t = {
  name : string;
  outcomes :
    part:Ordered_partition.t -> inputs:(int * Value.t) list ->
    (int * Value.t) list list;
      (** All consistent per-process output assignments for the given
          scheduling (blocks in scheduling order) and box inputs.
          Every returned assignment covers exactly the participants. *)
}

val test_and_set : t
(** No meaningful input; outputs are booleans.  The winner (output
    [true]) is any member of the first scheduled block; everyone else
    gets [false].  Reconstructs the complex of Figure 5. *)

val bin_consensus : t
(** Consensus on the box inputs: all processes receive the same
    decision, which is the input of some member of the first scheduled
    block (validity + the consistency Remark of §4.1).  Reconstructs
    the complex of Figure 7.  Despite the name, the construction works
    for arbitrary input values; the paper uses it with inputs in
    [{0,1}]. *)

val solo_output : t -> int -> Value.t -> Value.t
(** Output received by process [i] with box input [a_i] when it runs
    solo (first block [{i}]); unique by consistency.
    @raise Invalid_argument if the box is not deterministic on solo
    executions. *)
