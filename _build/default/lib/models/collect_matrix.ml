type row = { sees : int list; group : int list }
type t = row list

let subsets l =
  List.fold_left
    (fun acc x -> List.concat_map (fun s -> [ s; x :: s ]) acc)
    [ [] ] l
  |> List.map (List.sort Stdlib.compare)

let subset_int a b = List.for_all (fun x -> List.mem x b) a
let union_int a b = List.sort_uniq Stdlib.compare (a @ b)

let enumerate ids =
  let ids = List.sort_uniq Stdlib.compare ids in
  let partitions = Ordered_partition.enumerate ids in
  List.concat_map
    (fun part ->
      (* Tail unions: tail.(s) = union of blocks s..r. *)
      let blocks = Array.of_list part in
      let r = Array.length blocks - 1 in
      let tails = Array.make (r + 1) [] in
      for s = r downto 0 do
        tails.(s) <- union_int blocks.(s) (if s = r then [] else tails.(s + 1))
      done;
      (* Choose every P_s = tail_s ∪ extra, with P_0 = I forced. *)
      let rec choose s =
        if s > r then [ [] ]
        else
          let options =
            if s = 0 then [ ids ]
            else
              let free = List.filter (fun i -> not (List.mem i tails.(s))) ids in
              List.map (fun extra -> union_int tails.(s) extra) (subsets free)
          in
          let rest = choose (s + 1) in
          List.concat_map
            (fun p -> List.map (fun tail -> { sees = p; group = blocks.(s) } :: tail) rest)
            options
      in
      choose 0)
    partitions

let is_snapshot m =
  List.for_all
    (fun a ->
      List.for_all
        (fun b -> subset_int a.sees b.sees || subset_int b.sees a.sees)
        m)
    m

let is_immediate m =
  List.for_all
    (fun a ->
      List.for_all
        (fun b ->
          (* If some process of a's group sees some process of b's
             group, then b's view must be contained in a's view. *)
          if List.exists (fun q -> List.mem q a.sees) b.group then
            subset_int b.sees a.sees
          else true)
        m)
    m

let views m =
  List.concat_map (fun row -> List.map (fun i -> (i, row.sees)) row.group) m
  |> List.sort (fun (i, _) (j, _) -> Stdlib.compare i j)

let of_ordered_partition part =
  let rec go seen = function
    | [] -> []
    | blk :: rest ->
        let seen = union_int seen blk in
        { sees = seen; group = blk } :: go seen rest
  in
  List.rev (go [] part)

let pp ppf m =
  let pp_row ppf row =
    Format.fprintf ppf "P={%a} I={%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      row.sees
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      row.group
  in
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_row)
    m
