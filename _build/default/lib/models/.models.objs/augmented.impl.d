lib/models/augmented.ml: Black_box Complex List Model Ordered_partition Simplex Value Vertex
