lib/models/model.ml: Collect_matrix Complex Hashtbl List Simplex Stdlib Value Vertex
