lib/models/collect_matrix.ml: Array Format List Ordered_partition Stdlib
