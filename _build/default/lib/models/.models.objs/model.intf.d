lib/models/model.mli: Collect_matrix Complex Simplex Value Vertex
