lib/models/black_box.mli: Ordered_partition Value
