lib/models/affine.mli: Simplex
