lib/models/augmented.mli: Black_box Complex Simplex Value Vertex
