lib/models/affine.ml: List Model Ordered_partition Simplex Stdlib Value Vertex
