lib/models/black_box.ml: List Ordered_partition Stdlib Value
