lib/models/collect_matrix.mli: Format Ordered_partition
