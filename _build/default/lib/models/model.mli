(** The three iterated wait-free models of Section 2.1 and the
    one-round topological operator Ξ₁ (Appendix A.3.4).

    All three allow solo executions, the hypothesis of Theorem 1. *)

type t = Collect | Snapshot | Immediate

val name : t -> string
val of_string : string -> t option

val matrices : t -> int list -> Collect_matrix.t list
(** All one-round execution matrices of the model over a color set
    (memoized per color set). *)

val one_round_facets : t -> Simplex.t -> Simplex.t list
(** Facets of [Ξ₁(σ)] (duplicates removed): one per distinct view
    profile.  A vertex of a facet is [(i, View [(j, x_j) : j seen])]. *)

val one_round : t -> Complex.t -> Complex.t
(** [Ξ₁] on a complex: the union over facets (faces are automatically
    subcomplexes, see DESIGN.md §3). *)

val protocol_complex : t -> Simplex.t -> int -> Complex.t
(** [protocol_complex m σ t] is [P^(t)(σ)]; [t = 0] gives [σ] itself. *)

val solo_vertex : Simplex.t -> int -> Vertex.t
(** The vertex of [P^(1)(σ)] where process [i] runs solo:
    [(i, View [(i, x_i)])].  Model-independent. *)

val solo_view : int -> Value.t -> Value.t
(** [solo_view i x = View [(i, x)]]. *)

val chi : from_:Simplex.t -> to_:Simplex.t -> Vertex.t -> Vertex.t
(** The canonical isomorphism χ of Eq. (1): relabels a one-round view
    over [σ]'s values into the same view over [σ']'s values.  The two
    simplices must have the same color set. *)
