(** Iterated immediate snapshot augmented with a black box
    (Algorithm 2, Section 4).

    One round of the augmented model, starting from a simplex [σ],
    produces vertices [(i, (b_i, C_i))] where [b_i] is the box output
    and [C_i] the immediate-snapshot view.  The box input of process
    [i] is [α(i, V_i, r)]; the paper's Theorem 4 restricts [α] to
    depend only on [i] and [r] (a function [β : [n] → {0,1}]). *)

type alpha = round:int -> int -> Value.t -> Value.t
(** [α ~round i view] is the box input of process [i] at the given
    round when its current view is [view]. *)

val alpha_const : Value.t -> alpha
(** Box input independent of everything (used for test&set, which
    ignores inputs). *)

val alpha_of_beta : (int -> bool) -> alpha
(** ID-only inputs [β(i)] as booleans — the restriction of Theorem 4. *)

val one_round_facets :
  box:Black_box.t -> alpha:alpha -> round:int -> Simplex.t -> Simplex.t list
(** Facets of the one-round augmented complex [P^(1)(σ)]: one facet per
    (ordered partition, consistent box outcome) pair, duplicates
    removed. *)

val one_round :
  box:Black_box.t -> alpha:alpha -> round:int -> Complex.t -> Complex.t

val protocol_complex :
  box:Black_box.t -> alpha:alpha -> Simplex.t -> int -> Complex.t
(** [t]-round protocol complex; round [r] uses box copy [B_r] and box
    inputs [α(·, ·, r)]. *)

val solo_vertex :
  box:Black_box.t -> alpha:alpha -> round:int -> Simplex.t -> int -> Vertex.t
(** The vertex of process [i] running solo at the given round:
    [(i, (solo box output, View [(i, x_i)]))]. *)

val strip_box : Vertex.t -> Vertex.t
(** Forgets the box component of an augmented vertex:
    [(i, (b, C)) ↦ (i, C)].  Used to compare augmented complexes with
    plain IIS ones. *)
