let src = Logs.Src.create "speedup.closure" ~doc:"Closure computation"

module Log = (val Logs.src_log src : Logs.LOG)

let memo : (string * string, Complex.t Simplex.Map.t ref) Hashtbl.t =
  Hashtbl.create 32

let tau_member ?node_limit ~op task ~sigma ~tau =
  (* Zero-round shortcut: simplices of Δ(σ) are always in Δ'(σ)
     (Remark after Definition 2). *)
  Complex.mem tau (Task.delta task sigma)
  ||
  match
    Solvability.local_task_solvable ?node_limit ~one_round:(Round_op.facets op)
      task ~sigma ~tau
  with
  | Solvability.Solvable _ -> true
  | Solvability.Unsolvable -> false
  | Solvability.Undecided ->
      failwith "Closure: local task solvability undecided (node limit)"

let witness ?node_limit ~op task ~sigma ~tau =
  match
    Solvability.local_task_solvable ?node_limit ~one_round:(Round_op.facets op)
      task ~sigma ~tau
  with
  | Solvability.Solvable f -> Some f
  | Solvability.Undecided -> None
  | Solvability.Unsolvable ->
      (* The search may be vacuously unsolvable only because τ was not
         a legal chromatic set; tau_member's zero-round shortcut case
         (τ ∈ Δ(σ)) is always solvable, so reaching here with a Δ(σ)
         member cannot happen: the CSP covers that map too. *)
      None

let delta ?node_limit ~op task sigma =
  let key = (Round_op.name op, task.Task.name) in
  let slot =
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
        let r = ref Simplex.Map.empty in
        Hashtbl.add memo key r;
        r
  in
  match Simplex.Map.find_opt sigma !slot with
  | Some c -> c
  | None ->
      let taus = Task.chromatic_output_sets task sigma in
      let members =
        List.filter (fun tau -> tau_member ?node_limit ~op task ~sigma ~tau) taus
      in
      let c = Complex.of_facets members in
      Log.debug (fun m ->
          m "Δ'[%s](%a): %d of %d candidate sets admitted"
            (Round_op.name op) Simplex.pp sigma (List.length members)
            (List.length taus));
      slot := Simplex.Map.add sigma c !slot;
      c

let delta_any ?node_limit ~ops ~name task sigma =
  let key = (name, task.Task.name) in
  let slot =
    match Hashtbl.find_opt memo key with
    | Some r -> r
    | None ->
        let r = ref Simplex.Map.empty in
        Hashtbl.add memo key r;
        r
  in
  match Simplex.Map.find_opt sigma !slot with
  | Some c -> c
  | None ->
      let members =
        List.filter
          (fun tau ->
            List.exists (fun op -> tau_member ?node_limit ~op task ~sigma ~tau) ops)
          (Task.chromatic_output_sets task sigma)
      in
      let c = Complex.of_facets members in
      slot := Simplex.Map.add sigma c !slot;
      c

let bin_consensus_ops ids =
  let rec betas = function
    | [] -> [ [] ]
    | i :: rest ->
        let tails = betas rest in
        List.concat_map
          (fun b -> List.map (fun tl -> (i, b) :: tl) tails)
          [ false; true ]
  in
  List.map
    (fun beta ->
      Round_op.bin_consensus_beta (fun i ->
          match List.assoc_opt i beta with Some b -> b | None -> false))
    (betas ids)

let task ?node_limit ~op t =
  let name = Printf.sprintf "CL[%s](%s)" (Round_op.name op) t.Task.name in
  let delta' = delta ?node_limit ~op t in
  Task.make ~name ~arity:t.Task.arity ~inputs:t.Task.inputs
    ~outputs:
      (lazy
        (List.fold_left
           (fun acc sigma -> Complex.union acc (delta' sigma))
           Complex.empty (Task.input_simplices t)))
    ~delta:delta'

let fixed_point_on ?node_limit ~op t simplices =
  List.for_all
    (fun sigma -> Complex.equal (delta ?node_limit ~op t sigma) (Task.delta t sigma))
    simplices

let iterate ?node_limit ~op k t =
  let rec go k acc = if k <= 0 then acc else go (k - 1) (task ?node_limit ~op acc) in
  go k t

let equal_on ?node_limit ~op t ~reference simplices =
  List.for_all
    (fun sigma ->
      Complex.equal (delta ?node_limit ~op t sigma) (Task.delta reference sigma))
    simplices
