lib/closure/round_op.mli: Augmented Black_box Complex Model Simplex Vertex
