lib/closure/round_op.ml: Affine Augmented Black_box Complex Model Printf Simplex Value
