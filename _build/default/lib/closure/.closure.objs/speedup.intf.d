lib/closure/speedup.mli: Complex Model Round_op Simplex Simplicial_map Solvability Task
