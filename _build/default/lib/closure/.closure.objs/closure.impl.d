lib/closure/closure.ml: Complex Hashtbl List Logs Printf Round_op Simplex Solvability Task
