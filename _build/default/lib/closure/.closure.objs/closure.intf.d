lib/closure/closure.mli: Complex Round_op Simplex Simplicial_map Task
