lib/closure/speedup.ml: Augmented Black_box Closure Complex List Model Round_op Simplex Simplicial_map Solvability Task Value Vertex
