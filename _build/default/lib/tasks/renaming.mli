(** The adaptive renaming task ([2] in the paper's bibliography).

    Participants must choose pairwise distinct names in [1 .. 2p − 1],
    where [p] is the number of {e participating} processes — so a solo
    process must take name 1, and the name space grows with actual
    contention.  (Non-adaptive renaming is trivial here because
    processes know their identities; adaptivity is what makes the task
    non-trivial, and wait-free solvable but not in zero rounds.)

    Not studied in the paper; included as companion data for the
    closure explorer (E17): unlike consensus, adaptive renaming is
    wait-free solvable, and its closure is strictly easier than the
    task itself. *)

val task : n:int -> Task.t
(** Adaptive (2p−1)-renaming for [n] processes; every participant
    starts with [Unit]. *)

val with_names : n:int -> names:(int -> int) -> Task.t
(** Generalized variant: participants of a [p]-sized execution must
    pick distinct names in [1 .. names p].  [task] is
    [with_names ~names:(fun p -> 2 * p - 1)].
    @raise Invalid_argument if [names p < p] for some [p <= n]. *)
