(** Consensus tasks (Section 3.3 and Corollary 2).

    Values are arbitrary [Value.t]s; the paper's binary consensus uses
    [{Int 0, Int 1}]. *)

val binary : n:int -> Task.t
(** The binary consensus task of Section 3.3: mixed-input simplices may
    decide either value; unanimous inputs must decide that value. *)

val multi : n:int -> values:Value.t list -> Task.t
(** Multi-valued consensus: all participants output the same value,
    which must be the input of a participant. *)

val relaxed : n:int -> values:Value.t list -> Task.t
(** The relaxed task [Π] of Corollary 2: every output value is the
    input of a participant, and agreement is required only when at
    least three processes participate.  For one or two participants
    any combination of participant input values is legal.  Its output
    complex contains the monochromatic facets plus every chromatic
    simplex of dimension [≤ 1] (cf. the liberal tasks of Def. 4). *)

val is_agreement_output : Simplex.t -> bool
(** All values of the simplex equal. *)
