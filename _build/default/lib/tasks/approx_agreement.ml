let grid m = List.init (m + 1) (fun k -> Value.frac k m)

let fracs sigma = List.map Value.as_frac (Simplex.values sigma)

let spread sigma =
  let vs = fracs sigma in
  let lo = List.fold_left Frac.min (List.hd vs) vs in
  let hi = List.fold_left Frac.max (List.hd vs) vs in
  Frac.sub hi lo

let in_range ~lo ~hi sigma =
  List.for_all (fun v -> Frac.(lo <= v) && Frac.(v <= hi)) (fracs sigma)

let check_params m eps =
  if m < 1 then invalid_arg "Approx_agreement: m < 1";
  if not (Frac.is_multiple_of eps ~step:(Frac.make 1 m)) then
    invalid_arg "Approx_agreement: eps is not a multiple of 1/m";
  if Frac.(eps <= Frac.zero) || Frac.(eps > Frac.one) then
    invalid_arg "Approx_agreement: eps outside (0,1]"

let within values bound =
  List.for_all
    (fun a -> List.for_all (fun b -> Frac.(Frac.abs (Frac.sub (Value.as_frac a) (Value.as_frac b)) <= bound)) values)
    values

let range_of sigma =
  let vs = fracs sigma in
  let lo = List.fold_left Frac.min (List.hd vs) vs in
  let hi = List.fold_left Frac.max (List.hd vs) vs in
  (lo, hi)

let range n = List.init n (fun i -> i + 1)

(* Outputs complex of Definition 3: all chromatic assignments of grid
   values pairwise within eps. *)
let window_outputs n m eps =
  Combinatorics.assignments_filtered (range n) (grid m) (fun vs -> within vs eps)

let delta_generic ~liberal m eps sigma =
  let lo, hi = range_of sigma in
  let candidates =
    List.filter
      (fun v -> Frac.(lo <= Value.as_frac v) && Frac.(Value.as_frac v <= hi))
      (grid m)
  in
  let ids = Simplex.ids sigma in
  let need_eps = (not liberal) || List.length ids >= 3 in
  let ok vs = (not need_eps) || within vs eps in
  Complex.of_facets (Combinatorics.assignments_filtered ids candidates ok)

let task ~n ~m ~eps =
  check_params m eps;
  Task.make
    ~name:(Printf.sprintf "%s-AA(n=%d,m=%d)" (Frac.to_string eps) n m)
    ~arity:n
    ~inputs:(lazy (Combinatorics.full_input_complex n (grid m)))
    ~outputs:(lazy (Complex.of_facets (window_outputs n m eps)))
    ~delta:(delta_generic ~liberal:false m eps)

let liberal ~n ~m ~eps =
  check_params m eps;
  let outputs =
    lazy
      (let windows = window_outputs n m eps in
       let edges =
         List.concat_map
           (fun i ->
             List.concat_map
               (fun j ->
                 if i < j then Combinatorics.assignments [ i; j ] (grid m) else [])
               (range n))
           (range n)
       in
       Complex.of_facets (windows @ edges))
  in
  Task.make
    ~name:(Printf.sprintf "liberal-%s-AA(n=%d,m=%d)" (Frac.to_string eps) n m)
    ~arity:n
    ~inputs:(lazy (Combinatorics.full_input_complex n (grid m)))
    ~outputs
    ~delta:(delta_generic ~liberal:true m eps)

let binary_input_complex ~n =
  Combinatorics.full_input_complex n [ Value.frac 0 1; Value.frac 1 1 ]
