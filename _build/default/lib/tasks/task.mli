(** Distributed tasks [Π = (I, O, Δ)] (Section 2.2).

    Input and output complexes are kept lazy because some tasks
    (approximate agreement over a fine grid) have large complexes that
    most computations never materialize: the solver and the closure
    operator only query [delta] on specific simplices. *)

type t = {
  name : string;
  arity : int;  (** number of processes [n] *)
  inputs : Complex.t Lazy.t;
  outputs : Complex.t Lazy.t;
  delta : Simplex.t -> Complex.t;
      (** [Δ(σ)]: the output simplices legal for input [σ], as a
          complex whose facets carry exactly the colors of [σ]. *)
}

val make :
  name:string -> arity:int -> inputs:Complex.t Lazy.t ->
  outputs:Complex.t Lazy.t -> delta:(Simplex.t -> Complex.t) -> t

val inputs : t -> Complex.t
val outputs : t -> Complex.t
val delta : t -> Simplex.t -> Complex.t

val input_simplices : t -> Simplex.t list
(** Every simplex of the input complex (facets and faces); the
    constraint generators for solvability. *)

val restrict_inputs : t -> Complex.t -> t
(** Same specification on a subcomplex of inputs.  Unsolvability of
    the restriction implies unsolvability of the task. *)

val with_name : string -> t -> t

val delta_candidates : t -> Simplex.t -> int -> Vertex.t list
(** Vertices of [Δ(σ)] with the given color — the per-process output
    candidates used by closure enumeration. *)

val delta_equal_on : t -> t -> Simplex.t list -> bool
(** Whether the two tasks' [Δ] agree (as complexes) on each given
    input simplex. *)

val delta_subset_on : t -> t -> Simplex.t list -> bool
(** Whether [Δ₁(σ) ⊆ Δ₂(σ)] on each given input simplex. *)

val carrier_map_on : t -> Simplex.t list -> bool
(** Checks the carrier-map property [σ' ⊆ σ ⇒ Δ(σ') ⊆ Δ(σ)] over the
    given simplices and their faces. *)

val chromatic_output_sets : t -> Simplex.t -> Simplex.t list
(** All chromatic sets [τ ⊆ V(Δ(σ))] with [ID(τ) = ID(σ)], each
    packaged as an (abstract) simplex — the candidate outputs of the
    closure task (Definition 2).  These sets need not be simplices of
    [Δ(σ)]. *)
