(** Small enumeration helpers shared by the task constructors. *)

val assignments : int list -> Value.t list -> Simplex.t list
(** All chromatic simplices assigning one of the given values to each
    of the given colors ([|values|^|colors|] simplices). *)

val assignments_filtered :
  int list -> Value.t list -> (Value.t list -> bool) -> Simplex.t list
(** Same, keeping only the simplices whose value tuple (in color
    order) satisfies the predicate. *)

val nonempty_subsets : int list -> int list list
(** All non-empty subsets, each sorted. *)

val full_input_complex : int -> Value.t list -> Complex.t
(** The pure complex of all assignments of the given values to colors
    [1..n] — the usual input complex of consensus-like tasks. *)
