(** Local tasks [Π_{τ,σ}] (Definition 1).

    Given a task [Π], an input simplex [σ], and a chromatic set
    [τ ⊆ V(Δ(σ))] with [ID(τ) = ID(σ)], the local task has input
    complex [τ] (all faces of the abstract simplex on τ's vertices),
    output complex [Δ(σ)], and specification
    - [Δ_{τ,σ}(v) = {v}] on vertices (solo processes are pinned to
      their τ-value),
    - [Δ_{τ,σ}(τ') = proj_{ID(τ')}(Δ(σ))] on larger faces.

    [CL_M(Π)] membership of τ (Definition 2) is exactly one-round
    solvability of this task in M. *)

val make : Task.t -> sigma:Simplex.t -> tau:Simplex.t -> Task.t
(** @raise Invalid_argument if [ID(τ) ≠ ID(σ)] or some vertex of [τ]
    is not a vertex of [Δ(σ)]. *)

val is_valid_tau : Task.t -> sigma:Simplex.t -> tau:Simplex.t -> bool
(** The side conditions of Definition 2: [τ] chromatic (guaranteed by
    the [Simplex.t] type), [ID(τ) = ID(σ)], [τ ⊆ V(Δ(σ))]. *)
