type t = {
  name : string;
  arity : int;
  inputs : Complex.t Lazy.t;
  outputs : Complex.t Lazy.t;
  delta : Simplex.t -> Complex.t;
}

let make ~name ~arity ~inputs ~outputs ~delta =
  { name; arity; inputs; outputs; delta }

let inputs t = Lazy.force t.inputs
let outputs t = Lazy.force t.outputs
let delta t sigma = t.delta sigma
let input_simplices t = Complex.all_simplices (inputs t)
let restrict_inputs t c = { t with inputs = lazy c }
let with_name name t = { t with name }

let delta_candidates t sigma color =
  Complex.vertices_of_color color (t.delta sigma)

let delta_equal_on a b simplices =
  List.for_all (fun s -> Complex.equal (a.delta s) (b.delta s)) simplices

let delta_subset_on a b simplices =
  List.for_all (fun s -> Complex.subcomplex (a.delta s) (b.delta s)) simplices

let carrier_map_on t simplices =
  let all =
    List.sort_uniq Simplex.compare (List.concat_map Simplex.faces simplices)
  in
  List.for_all
    (fun sigma ->
      List.for_all
        (fun sigma' -> Complex.subcomplex (t.delta sigma') (t.delta sigma))
        (Simplex.faces sigma))
    all

let chromatic_output_sets t sigma =
  let rec combos = function
    | [] -> [ [] ]
    | i :: rest ->
        let tails = combos rest in
        List.concat_map
          (fun v -> List.map (fun tl -> v :: tl) tails)
          (delta_candidates t sigma i)
  in
  List.map Simplex.of_vertices (combos (Simplex.ids sigma))
