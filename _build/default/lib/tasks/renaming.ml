let distinct values =
  List.length (List.sort_uniq Value.compare values) = List.length values

let with_names ~n ~names =
  for p = 1 to n do
    if names p < p then invalid_arg "Renaming: fewer names than participants"
  done;
  let range = List.init n (fun i -> i + 1) in
  let name_values p = List.init (names p) (fun k -> Value.Int (k + 1)) in
  let delta sigma =
    let p = Simplex.card sigma in
    Complex.of_facets
      (Combinatorics.assignments_filtered (Simplex.ids sigma) (name_values p)
         distinct)
  in
  Task.make
    ~name:(Printf.sprintf "adaptive-renaming(n=%d)" n)
    ~arity:n
    ~inputs:(lazy (Combinatorics.full_input_complex n [ Value.Unit ]))
    ~outputs:
      (lazy
        (Complex.of_facets
           (Combinatorics.assignments_filtered range (name_values n) distinct)))
    ~delta

let task ~n = with_names ~n ~names:(fun p -> (2 * p) - 1)
