(** ε-approximate agreement on the 1/m grid (Definitions 3 and 4).

    All inputs and outputs are rationals in [{0, 1/m, …, 1}], and [ε]
    must be an integral multiple of [1/m] in [(0, 1]] — exactly the
    discretization the paper uses to keep every complex finite. *)

val grid : int -> Value.t list
(** [{0, 1/m, ..., 1}] as fractions. *)

val task : n:int -> m:int -> eps:Frac.t -> Task.t
(** Definition 3.  @raise Invalid_argument if [ε] is not a multiple of
    [1/m] in [(0, 1]]. *)

val liberal : n:int -> m:int -> eps:Frac.t -> Task.t
(** Definition 4: one- and two-participant outputs need only be in the
    input range; three or more must in addition be pairwise within
    [ε]. *)

val binary_input_complex : n:int -> Complex.t
(** Inputs restricted to the extreme values 0 and 1 — sufficient for
    the lower bounds (Claim 1 uses inputs 0 and 1 only). *)

val spread : Simplex.t -> Frac.t
(** [max - min] of the values of a simplex of fractions. *)

val in_range : lo:Frac.t -> hi:Frac.t -> Simplex.t -> bool
