lib/tasks/approx_agreement.ml: Combinatorics Complex Frac List Printf Simplex Task Value
