lib/tasks/consensus.ml: Combinatorics Complex List Printf Simplex Task Value
