lib/tasks/renaming.mli: Task
