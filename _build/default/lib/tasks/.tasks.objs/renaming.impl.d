lib/tasks/renaming.ml: Combinatorics Complex List Printf Simplex Task Value
