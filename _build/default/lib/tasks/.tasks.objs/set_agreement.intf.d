lib/tasks/set_agreement.mli: Task Value
