lib/tasks/combinatorics.ml: Complex List Simplex Stdlib
