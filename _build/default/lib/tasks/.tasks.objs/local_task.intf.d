lib/tasks/local_task.mli: Simplex Task
