lib/tasks/task.mli: Complex Lazy Simplex Vertex
