lib/tasks/task_algebra.ml: Complex List Printf Simplex Task Value
