lib/tasks/task_algebra.mli: Complex Simplex Task
