lib/tasks/consensus.mli: Simplex Task Value
