lib/tasks/carrier_map.ml: Complex List Simplex Simplicial_map Task
