lib/tasks/approx_agreement.mli: Complex Frac Simplex Task Value
