lib/tasks/combinatorics.mli: Complex Simplex Value
