lib/tasks/set_agreement.ml: Combinatorics Complex List Printf Simplex Task Value
