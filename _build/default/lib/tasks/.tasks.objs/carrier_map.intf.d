lib/tasks/carrier_map.mli: Complex Simplex Simplicial_map Task
