lib/tasks/local_task.ml: Complex List Printf Simplex Task
