lib/tasks/task.ml: Complex Lazy List Simplex
