let distinct_count values = List.length (List.sort_uniq Value.compare values)

let task ~n ~k ~values =
  if k < 1 then invalid_arg "Set_agreement: k < 1";
  let range = List.init n (fun i -> i + 1) in
  let delta sigma =
    let inputs = List.sort_uniq Value.compare (Simplex.values sigma) in
    Complex.of_facets
      (Combinatorics.assignments_filtered (Simplex.ids sigma) inputs (fun vs ->
           distinct_count vs <= k))
  in
  Task.make
    ~name:(Printf.sprintf "%d-set-agreement(n=%d)" k n)
    ~arity:n
    ~inputs:(lazy (Combinatorics.full_input_complex n values))
    ~outputs:
      (lazy
        (Complex.of_facets
           (Combinatorics.assignments_filtered range values (fun vs ->
                distinct_count vs <= k))))
    ~delta
