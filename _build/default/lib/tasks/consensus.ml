let range n = List.init n (fun i -> i + 1)

let distinct_values sigma =
  List.sort_uniq Value.compare (Simplex.values sigma)

let constant_simplex ids v =
  Simplex.of_list (List.map (fun i -> (i, v)) ids)

let is_agreement_output sigma =
  match distinct_values sigma with [ _ ] -> true | [] | _ :: _ -> false

let monochromatic_outputs n values =
  Complex.of_facets (List.map (constant_simplex (range n)) values)

let multi ~n ~values =
  let delta sigma =
    Complex.of_facets
      (List.map (constant_simplex (Simplex.ids sigma)) (distinct_values sigma))
  in
  Task.make
    ~name:(Printf.sprintf "consensus(n=%d)" n)
    ~arity:n
    ~inputs:(lazy (Combinatorics.full_input_complex n values))
    ~outputs:(lazy (monochromatic_outputs n values))
    ~delta

let binary ~n =
  Task.with_name
    (Printf.sprintf "binary-consensus(n=%d)" n)
    (multi ~n ~values:[ Value.Int 0; Value.Int 1 ])

let relaxed ~n ~values =
  let delta sigma =
    let ids = Simplex.ids sigma in
    let inputs = distinct_values sigma in
    if List.length ids >= 3 then
      Complex.of_facets (List.map (constant_simplex ids) inputs)
    else
      (* Any combination of participant input values. *)
      Complex.of_facets (Combinatorics.assignments ids inputs)
  in
  let outputs =
    lazy
      (let mono = monochromatic_outputs n values in
       let edges =
         List.concat_map
           (fun i ->
             List.concat_map
               (fun j ->
                 if i < j then Combinatorics.assignments [ i; j ] values else [])
               (range n))
           (range n)
       in
       Complex.union mono (Complex.of_facets edges))
  in
  Task.make
    ~name:(Printf.sprintf "relaxed-consensus(n=%d)" n)
    ~arity:n
    ~inputs:(lazy (Combinatorics.full_input_complex n values))
    ~outputs ~delta
