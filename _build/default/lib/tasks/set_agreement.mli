(** k-set agreement — not studied in the paper, but the natural first
    target for the "problems other than consensus and approximate
    agreement" direction raised in its conclusion.  Used by the
    closure-explorer experiment (E14). *)

val task : n:int -> k:int -> values:Value.t list -> Task.t
(** Participants output input values of participants, with at most [k]
    distinct values overall.  [k = 1] coincides with consensus. *)
