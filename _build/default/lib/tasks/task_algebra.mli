(** Combinators on tasks.

    Not used by the paper's proofs, but natural companions for the
    closure explorer: the product of two tasks solves both at once,
    and its closure is contained in the product of the closures (a
    one-round map for the product projects to one-round maps of the
    components) — a property the tests machine-check. *)

val product : Task.t -> Task.t -> Task.t
(** [product a b]: every process receives a pair of inputs
    [Pair (x_a, x_b)] and must output a pair [Pair (y_a, y_b)] such
    that each component profile is legal for its task.  Arities must
    agree. @raise Invalid_argument otherwise. *)

val project : int -> Simplex.t -> Simplex.t
(** [project k σ] keeps component [k ∈ {1, 2}] of every pair-valued
    vertex. @raise Invalid_argument on non-pair values. *)

val pair_simplices : Simplex.t -> Simplex.t -> Simplex.t
(** Zip two simplices with the same color set into a pair-valued one. *)

val relax : Task.t -> with_delta:(Simplex.t -> Complex.t) -> name:string -> Task.t
(** Same complexes, new (typically weaker) specification — the pattern
    used by the paper's own liberal tasks (Def. 4) and relaxed
    consensus (Cor. 2). *)
