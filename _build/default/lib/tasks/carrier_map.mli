(** Carrier maps (Appendix A.1).

    A carrier map [Δ : K → 2^{K'}] sends every simplex of [K] to a
    subcomplex of [K'] monotonically: [σ' ⊆ σ ⇒ Δ(σ') ⊆ Δ(σ)].  Task
    specifications are usually carrier maps (though the paper does not
    require it); this module packages the notion with the checks and
    compositions used in the tests. *)

type t
(** A carrier map with an explicit (finite) domain. *)

val make : domain:Simplex.t list -> (Simplex.t -> Complex.t) -> t
(** Tabulates the map on the domain simplices and all their faces. *)

val of_task : Task.t -> t
(** The task's Δ on its input complex. *)

val apply : t -> Simplex.t -> Complex.t
(** @raise Not_found outside the domain. *)

val domain : t -> Simplex.t list

val is_monotone : t -> bool
(** The carrier-map condition [σ' ⊆ σ ⇒ Δ(σ') ⊆ Δ(σ)]. *)

val is_chromatic : t -> bool
(** Every facet of [Δ(σ)] carries exactly the colors of [σ] (the
    "same dimension and same colors" requirement). *)

val is_strict : t -> bool
(** [Δ(σ ∩ σ') = Δ(σ) ∩ Δ(σ')] on intersecting domain pairs —
    strict carrier maps, a standard strengthening. *)

val compose_simplicial : t -> Simplicial_map.t -> t
(** [Δ ∘ f]: precompose with a simplicial map defined on the domain's
    vertices ([apply (compose_simplicial d f) σ = apply d (f σ)]). *)

val union : t -> t -> t
(** Pointwise union on the shared domain (used to merge specifications);
    domains must agree. @raise Invalid_argument otherwise. *)
