let rec tuples colors values =
  match colors with
  | [] -> [ [] ]
  | i :: rest ->
      let tails = tuples rest values in
      List.concat_map (fun v -> List.map (fun tl -> (i, v) :: tl) tails) values

let assignments colors values = List.map Simplex.of_list (tuples colors values)

let assignments_filtered colors values pred =
  List.filter_map
    (fun tuple -> if pred (List.map snd tuple) then Some (Simplex.of_list tuple) else None)
    (tuples colors values)

let nonempty_subsets ids =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        let subs = go rest in
        List.map (fun s -> x :: s) subs @ subs
  in
  List.filter (fun s -> s <> []) (go (List.sort_uniq Stdlib.compare ids))

let range n = List.init n (fun i -> i + 1)
let full_input_complex n values = Complex.of_facets (assignments (range n) values)
