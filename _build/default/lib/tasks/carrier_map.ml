type t = { table : Complex.t Simplex.Map.t }

let close_domain simplices =
  List.sort_uniq Simplex.compare (List.concat_map Simplex.faces simplices)

let make ~domain f =
  let table =
    List.fold_left
      (fun acc sigma -> Simplex.Map.add sigma (f sigma) acc)
      Simplex.Map.empty (close_domain domain)
  in
  { table }

let apply t sigma =
  match Simplex.Map.find_opt sigma t.table with
  | Some c -> c
  | None -> raise Not_found

let domain t = List.map fst (Simplex.Map.bindings t.table)

let is_monotone t =
  Simplex.Map.for_all
    (fun sigma image ->
      List.for_all
        (fun sigma' ->
          match Simplex.Map.find_opt sigma' t.table with
          | Some image' -> Complex.subcomplex image' image
          | None -> false)
        (Simplex.faces sigma))
    t.table

let is_chromatic t =
  Simplex.Map.for_all
    (fun sigma image ->
      Complex.is_empty image
      || List.for_all
           (fun facet -> Simplex.ids facet = Simplex.ids sigma)
           (Complex.facets image))
    t.table

let intersection a b =
  Complex.of_facets
    (List.filter (fun f -> Complex.mem f b)
       (List.concat_map Simplex.faces (Complex.facets a)))

let is_strict t =
  Simplex.Map.for_all
    (fun sigma image ->
      Simplex.Map.for_all
        (fun sigma' image' ->
          let shared =
            List.filter
              (fun v -> Simplex.mem v sigma')
              (Simplex.vertices sigma)
          in
          match shared with
          | [] -> true
          | vs -> (
              let meet = Simplex.of_vertices vs in
              match Simplex.Map.find_opt meet t.table with
              | None -> false
              | Some image_meet ->
                  Complex.equal image_meet (intersection image image')))
        t.table)
    t.table

let compose_simplicial t f =
  {
    table =
      Simplex.Map.fold
        (fun sigma _ acc ->
          match Simplicial_map.apply_simplex f sigma with
          | image_simplex -> (
              match Simplex.Map.find_opt image_simplex t.table with
              | Some c -> Simplex.Map.add sigma c acc
              | None -> acc)
          | exception Not_found -> acc)
        t.table Simplex.Map.empty;
  }

let union a b =
  if not (Simplex.Map.equal (fun _ _ -> true) a.table b.table) then
    invalid_arg "Carrier_map.union: domains differ";
  {
    table =
      Simplex.Map.mapi
        (fun sigma ca -> Complex.union ca (Simplex.Map.find sigma b.table))
        a.table;
  }

let of_task task =
  make
    ~domain:(Complex.facets (Task.inputs task))
    (fun sigma -> Task.delta task sigma)
