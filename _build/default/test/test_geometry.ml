(* Tests for the geometric realization and SVG rendering. *)

let sigma3 =
  Simplex.of_list [ (1, Value.Int 1); (2, Value.Int 2); (3, Value.Int 3) ]

let sigma2 = Simplex.proj [ 1; 2 ] sigma3

let all_distinct positions =
  let quantize (_, p) =
    (Float.round (p.Geometry.x *. 1e9), Float.round (p.Geometry.y *. 1e9))
  in
  let qs = List.map quantize positions in
  List.length (List.sort_uniq Stdlib.compare qs) = List.length qs

let in_unit_box positions =
  List.for_all
    (fun (_, p) ->
      p.Geometry.x >= 0.0 && p.Geometry.x <= 1.0 && p.Geometry.y >= 0.0
      && p.Geometry.y <= 1.0)
    positions

let test_corners () =
  let c = Geometry.corner [ 1; 2; 3 ] in
  Alcotest.(check bool) "three distinct corners" true
    (c 1 <> c 2 && c 2 <> c 3 && c 1 <> c 3);
  Alcotest.check_raises "unknown color"
    (Invalid_argument "Geometry.corner: color not listed") (fun () ->
      ignore (Geometry.corner [ 1; 2 ] 9))

let test_layout_distinct () =
  List.iter
    (fun t ->
      let c = Model.protocol_complex Model.Immediate sigma3 t in
      let lay = Geometry.layout sigma3 c in
      Alcotest.(check int)
        (Printf.sprintf "all vertices placed (t=%d)" t)
        (Complex.vertex_count c) (List.length lay);
      Alcotest.(check bool) "positions distinct" true (all_distinct lay);
      Alcotest.(check bool) "positions inside the box" true (in_unit_box lay))
    [ 0; 1; 2 ]

let test_layout_two_processes () =
  let c = Model.protocol_complex Model.Immediate sigma2 3 in
  let lay = Geometry.layout sigma2 c in
  Alcotest.(check bool) "27-facet segment subdivision distinct" true
    (all_distinct lay)

let test_solo_vertices_near_corners () =
  (* A solo vertex sits strictly closer to its own corner than any
     other vertex of the same color. *)
  let c = Model.protocol_complex Model.Immediate sigma3 1 in
  let lay = Geometry.layout sigma3 c in
  let corner1 = Geometry.corner [ 1; 2; 3 ] 1 in
  let dist p =
    let dx = p.Geometry.x -. corner1.Geometry.x
    and dy = p.Geometry.y -. corner1.Geometry.y in
    Float.sqrt ((dx *. dx) +. (dy *. dy))
  in
  let solo = Model.solo_vertex sigma3 1 in
  let solo_d =
    dist (snd (List.find (fun (v, _) -> Vertex.equal v solo) lay))
  in
  List.iter
    (fun (v, p) ->
      if Vertex.color v = 1 && not (Vertex.equal v solo) then
        Alcotest.(check bool) "solo closest to its corner" true
          (solo_d < dist p))
    lay

let test_svg_structure () =
  let c = Model.protocol_complex Model.Immediate sigma3 1 in
  let svg = Geometry.svg sigma3 c in
  Alcotest.(check bool) "svg header" true
    (Astring_like.contains svg "<svg xmlns=\"http://www.w3.org/2000/svg\"");
  Alcotest.(check bool) "has faces" true (Astring_like.contains svg "<polygon");
  Alcotest.(check bool) "has edges" true (Astring_like.contains svg "<line");
  Alcotest.(check bool) "has vertices" true (Astring_like.contains svg "<circle");
  Alcotest.(check bool) "closed" true (Astring_like.contains svg "</svg>")

let test_augmented_positions () =
  (* Box-decorated vertices are positioned by their view component. *)
  let facets =
    Augmented.one_round_facets ~box:Black_box.test_and_set
      ~alpha:(Augmented.alpha_const Value.Unit) ~round:1 sigma2
  in
  let c = Complex.of_facets facets in
  let lay = Geometry.layout sigma2 c in
  Alcotest.(check int) "all placed" (Complex.vertex_count c) (List.length lay);
  Alcotest.(check bool) "inside box" true (in_unit_box lay)

let suite =
  ( "geometry",
    [
      Alcotest.test_case "corners" `Quick test_corners;
      Alcotest.test_case "layouts distinct" `Quick test_layout_distinct;
      Alcotest.test_case "two-process layouts" `Quick test_layout_two_processes;
      Alcotest.test_case "solo near corner" `Quick test_solo_vertices_near_corners;
      Alcotest.test_case "svg structure" `Quick test_svg_structure;
      Alcotest.test_case "augmented vertices placed" `Quick test_augmented_positions;
    ] )
