(* Tests for the simplicial-map solvability layer. *)

let is_solvable = Solvability.is_solvable

let test_identity_task_zero_rounds () =
  (* "Output your input" is solvable in zero rounds. *)
  let values = [ Value.Int 0; Value.Int 1 ] in
  let inputs = Combinatorics.full_input_complex 2 values in
  let t =
    Task.make ~name:"identity" ~arity:2 ~inputs:(lazy inputs)
      ~outputs:(lazy inputs)
      ~delta:(fun sigma -> Complex.of_simplex sigma)
  in
  Alcotest.(check bool) "0 rounds" true
    (is_solvable (Solvability.task_in_model Model.Immediate t ~rounds:0));
  Alcotest.(check bool) "1 round too" true
    (is_solvable (Solvability.task_in_model Model.Immediate t ~rounds:1))

let test_consensus_basics () =
  let t = Consensus.binary ~n:2 in
  List.iter
    (fun rounds ->
      Alcotest.(check bool)
        (Printf.sprintf "consensus unsolvable t=%d" rounds)
        false
        (is_solvable (Solvability.task_in_model Model.Immediate t ~rounds)))
    [ 0; 1; 2 ]

let test_aa_thresholds () =
  let t = Approx_agreement.task ~n:2 ~m:3 ~eps:(Frac.make 1 3) in
  let inputs = Complex.all_simplices (Approx_agreement.binary_input_complex ~n:2) in
  Alcotest.(check bool) "unsolvable at 0" false
    (is_solvable (Solvability.task_in_model ~inputs Model.Immediate t ~rounds:0));
  Alcotest.(check bool) "solvable at 1" true
    (is_solvable (Solvability.task_in_model ~inputs Model.Immediate t ~rounds:1))

let test_solution_map_is_valid () =
  (* Extract the witness and re-validate it independently. *)
  let t = Approx_agreement.task ~n:2 ~m:3 ~eps:(Frac.make 1 3) in
  let inputs = Task.input_simplices t in
  match Solvability.task_in_model ~inputs Model.Immediate t ~rounds:1 with
  | Solvability.Solvable f ->
      Alcotest.(check bool) "chromatic" true (Simplicial_map.is_chromatic f);
      Alcotest.(check bool) "agrees with Δ" true
        (Simplicial_map.agrees_with f ~inputs
           ~protocol:(fun s -> Model.protocol_complex Model.Immediate s 1)
           ~delta:(Task.delta t))
  | _ -> Alcotest.fail "expected a solution"

let test_min_rounds () =
  let t = Approx_agreement.task ~n:2 ~m:9 ~eps:(Frac.make 1 9) in
  let inputs = Complex.all_simplices (Approx_agreement.binary_input_complex ~n:2) in
  Alcotest.(check (option int)) "min rounds = 2" (Some 2)
    (Solvability.min_rounds ~inputs Model.Immediate t);
  let cons = Consensus.binary ~n:2 in
  Alcotest.(check (option int)) "consensus: none within cap" None
    (Solvability.min_rounds ~max_rounds:2 Model.Immediate cons)

let test_local_task_solvable () =
  (* Claim 2's forward map: τ at distance 3ε is 1-round solvable. *)
  let eps = Frac.make 1 3 in
  let t = Approx_agreement.task ~n:2 ~m:3 ~eps in
  let sigma = Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 1) ] in
  let near = Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 1) ] in
  Alcotest.(check bool) "spread 3eps solvable" true
    (is_solvable
       (Solvability.local_task_solvable
          ~one_round:(Model.one_round_facets Model.Immediate)
          t ~sigma ~tau:near));
  (* With test&set even this is solvable; without, a spread-1 pair at
     eps=1/9 is too far (1 > 3/9). *)
  let t9 = Approx_agreement.task ~n:2 ~m:9 ~eps:(Frac.make 1 9) in
  let far = Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 1) ] in
  Alcotest.(check bool) "spread 9eps unsolvable" false
    (is_solvable
       (Solvability.local_task_solvable
          ~one_round:(Model.one_round_facets Model.Immediate)
          t9 ~sigma ~tau:far))

let test_augmented_solvability () =
  let cons2 = Consensus.binary ~n:2 in
  Alcotest.(check bool) "2-proc consensus with T&S" true
    (is_solvable
       (Solvability.task_in_augmented ~box:Black_box.test_and_set
          ~alpha:(Augmented.alpha_const Value.Unit) cons2 ~rounds:1));
  let cons3 = Consensus.binary ~n:3 in
  Alcotest.(check bool) "3-proc consensus with T&S fails" false
    (is_solvable
       (Solvability.task_in_augmented ~box:Black_box.test_and_set
          ~alpha:(Augmented.alpha_const Value.Unit) cons3 ~rounds:1))

let test_model_comparison () =
  (* Lower bounds transfer: what IIS cannot do, collect cannot either;
     and the snapshot model sits in between. *)
  let t = Approx_agreement.task ~n:3 ~m:4 ~eps:(Frac.make 1 4) in
  let inputs = Complex.all_simplices (Approx_agreement.binary_input_complex ~n:3) in
  List.iter
    (fun model ->
      Alcotest.(check bool)
        (Printf.sprintf "one round of %s insufficient" (Model.name model))
        false
        (is_solvable (Solvability.task_in_model ~inputs model t ~rounds:1)))
    [ Model.Immediate; Model.Snapshot; Model.Collect ]

let test_undecided () =
  let t = Consensus.binary ~n:3 in
  match Solvability.task_in_model ~node_limit:1 Model.Immediate t ~rounds:2 with
  | Solvability.Undecided | Solvability.Unsolvable -> ()
  | Solvability.Solvable _ -> Alcotest.fail "consensus cannot be solvable"

let suite =
  ( "solvability",
    [
      Alcotest.test_case "identity task" `Quick test_identity_task_zero_rounds;
      Alcotest.test_case "consensus basics" `Quick test_consensus_basics;
      Alcotest.test_case "AA thresholds" `Quick test_aa_thresholds;
      Alcotest.test_case "witness validity" `Quick test_solution_map_is_valid;
      Alcotest.test_case "min_rounds" `Quick test_min_rounds;
      Alcotest.test_case "local tasks" `Quick test_local_task_solvable;
      Alcotest.test_case "augmented models" `Quick test_augmented_solvability;
      Alcotest.test_case "across models" `Quick test_model_comparison;
      Alcotest.test_case "node limit surfaces Undecided" `Quick test_undecided;
    ] )
