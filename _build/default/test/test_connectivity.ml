(* Tests for 1-skeleton connectivity. *)

let tri =
  Simplex.of_list [ (1, Value.Int 1); (2, Value.Int 2); (3, Value.Int 3) ]

let test_neighbors () =
  let c = Complex.of_simplex tri in
  let v1 = Vertex.make 1 (Value.Int 1) in
  Alcotest.(check int) "two neighbours in a triangle" 2
    (List.length (Connectivity.neighbors c v1))

let test_path_in_subdivision () =
  (* The 3-edge path used in the proof of Corollary 1. *)
  let edge = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ] in
  let p1 = Complex.of_facets (Model.one_round_facets Model.Immediate edge) in
  match Connectivity.path p1 (Model.solo_vertex edge 1) (Model.solo_vertex edge 2) with
  | Some path -> Alcotest.(check int) "4 vertices / 3 edges" 4 (List.length path)
  | None -> Alcotest.fail "subdivided edge should be connected"

let test_disconnected () =
  let a = Simplex.of_list [ (1, Value.Int 0) ] in
  let b = Simplex.of_list [ (2, Value.Int 1) ] in
  let c = Complex.of_facets [ a; b ] in
  Alcotest.(check bool) "disconnected" false (Connectivity.connected c);
  Alcotest.(check int) "two components" 2 (List.length (Connectivity.components c));
  Alcotest.(check bool) "no path" true
    (Connectivity.path c (Vertex.make 1 (Value.Int 0)) (Vertex.make 2 (Value.Int 1))
    = None)

let test_trivial_paths () =
  let c = Complex.of_simplex tri in
  let v = Vertex.make 1 (Value.Int 1) in
  Alcotest.(check bool) "self path" true (Connectivity.path c v v = Some [ v ]);
  Alcotest.(check bool) "connected" true (Connectivity.connected c);
  Alcotest.(check bool) "empty connected" true (Connectivity.connected Complex.empty)

let prop_subdivision_connected =
  (* One round of any of the three models keeps a simplex connected. *)
  QCheck2.Test.make ~name:"one-round complexes are connected" ~count:30
    (QCheck2.Gen.oneofl [ Model.Immediate; Model.Snapshot; Model.Collect ])
    (fun m ->
      let sigma =
        Simplex.of_list [ (1, Value.Int 1); (2, Value.Int 2); (3, Value.Int 3) ]
      in
      Connectivity.connected (Complex.of_facets (Model.one_round_facets m sigma)))

let suite =
  ( "connectivity",
    [
      Alcotest.test_case "neighbors" `Quick test_neighbors;
      Alcotest.test_case "path in subdivision (Cor 1)" `Quick test_path_in_subdivision;
      Alcotest.test_case "disconnected complexes" `Quick test_disconnected;
      Alcotest.test_case "trivial paths" `Quick test_trivial_paths;
      QCheck_alcotest.to_alcotest prop_subdivision_connected;
    ] )
