(* Tests for the Graphviz export. *)

let tri =
  Simplex.of_list [ (1, Value.Int 1); (2, Value.Int 2); (3, Value.Int 3) ]

let count_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i acc =
    if i + m > n then acc
    else if String.sub s i m = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_triangle_dot () =
  let dot = Dot.of_complex (Complex.of_simplex tri) in
  Alcotest.(check bool) "graph header" true (Astring_like.contains dot "graph complex {");
  Alcotest.(check int) "three edges" 3 (count_substring dot " -- ");
  Alcotest.(check int) "three filled nodes" 3 (count_substring dot "fillcolor");
  Alcotest.(check bool) "black color used" true (Astring_like.contains dot "black")

let test_no_duplicate_edges () =
  (* Two facets sharing an edge must not emit it twice. *)
  let a = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 0); (3, Value.Int 0) ] in
  let b = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 0); (3, Value.Int 9) ] in
  let dot = Dot.of_complex (Complex.of_facets [ a; b ]) in
  (* Edges: 3 + 3 − 1 shared = 5. *)
  Alcotest.(check int) "five distinct edges" 5 (count_substring dot " -- ")

let test_named_graph () =
  let dot = Dot.of_complex ~name:"fig8" (Complex.of_simplex tri) in
  Alcotest.(check bool) "custom name" true (Astring_like.contains dot "graph fig8 {")

let test_write_file () =
  let path = Filename.temp_file "speedup_dot" ".dot" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Dot.write_file path (Complex.of_simplex tri);
      let ic = open_in path in
      let len = in_channel_length ic in
      close_in ic;
      Alcotest.(check bool) "non-empty file" true (len > 0))

let suite =
  ( "dot",
    [
      Alcotest.test_case "triangle export" `Quick test_triangle_dot;
      Alcotest.test_case "edge deduplication" `Quick test_no_duplicate_edges;
      Alcotest.test_case "named graph" `Quick test_named_graph;
      Alcotest.test_case "write to file" `Quick test_write_file;
    ] )
