(* Tests for the protocol record itself. *)

let test_make_validation () =
  Alcotest.check_raises "negative rounds"
    (Invalid_argument "Protocol.make: negative round count") (fun () ->
      ignore (Protocol.make ~name:"bad" ~rounds:(-1) ~decide:(fun _ v -> v) ()))

let test_full_information () =
  let p = Protocol.full_information ~rounds:2 in
  Alcotest.(check int) "rounds" 2 p.Protocol.rounds;
  Alcotest.(check bool) "decide is the identity on views" true
    (Value.equal
       (p.Protocol.decide 1 (Value.Int 42))
       (Value.Int 42));
  Alcotest.(check bool) "default alpha is Unit" true
    (Value.equal (p.Protocol.alpha ~round:1 1 Value.Unit) Value.Unit)

let test_custom_alpha () =
  let p =
    Protocol.make ~name:"alpha-test" ~rounds:1
      ~alpha:(fun ~round i _ -> Value.Int (round + i))
      ~decide:(fun _ v -> v)
      ()
  in
  Alcotest.(check bool) "alpha threaded" true
    (Value.equal (p.Protocol.alpha ~round:2 3 Value.Unit) (Value.Int 5))

let test_zero_rounds_allowed () =
  let p = Protocol.make ~name:"zero" ~rounds:0 ~decide:(fun _ v -> v) () in
  Alcotest.(check int) "zero rounds" 0 p.Protocol.rounds

let suite =
  ( "protocol",
    [
      Alcotest.test_case "validation" `Quick test_make_validation;
      Alcotest.test_case "full information" `Quick test_full_information;
      Alcotest.test_case "custom alpha" `Quick test_custom_alpha;
      Alcotest.test_case "zero rounds" `Quick test_zero_rounds_allowed;
    ] )
