(* Tests for the mechanized speedup theorem (Theorems 1-2). *)

let binary_inputs n =
  Complex.all_simplices (Approx_agreement.binary_input_complex ~n)

let test_plain_instance () =
  let task = Approx_agreement.task ~n:2 ~m:3 ~eps:(Frac.make 1 3) in
  let r =
    Speedup.verify (Speedup.of_model Model.Immediate) task ~rounds:1
      ~inputs:(binary_inputs 2)
  in
  Alcotest.(check bool) "base solvable" true (Solvability.is_solvable r.Speedup.base);
  Alcotest.(check bool) "construction valid" true r.Speedup.construction_valid;
  Alcotest.(check bool) "closure direct" true
    (Solvability.is_solvable r.Speedup.closure_direct);
  Alcotest.(check bool) "holds" true (Speedup.speedup_holds r)

let test_unsolvable_base_vacuous () =
  let task = Consensus.binary ~n:2 in
  let r =
    Speedup.verify (Speedup.of_model Model.Immediate) task ~rounds:1
      ~inputs:(Task.input_simplices task)
  in
  Alcotest.(check bool) "base unsolvable" false (Solvability.is_solvable r.Speedup.base);
  Alcotest.(check bool) "theorem vacuously holds" true (Speedup.speedup_holds r)

let test_derive_map_explicit () =
  (* The derived f' maps each (t-1)-round vertex like the solo
     extension: check on a solved 1-round instance that f' at round 0
     maps input vertices to the value f gives their solo view. *)
  let task = Approx_agreement.task ~n:2 ~m:3 ~eps:(Frac.make 1 3) in
  let setting = Speedup.of_model Model.Immediate in
  let inputs = binary_inputs 2 in
  (match
     Solvability.decide ~inputs
       ~protocol:(fun s -> Speedup.protocol setting s 1)
       ~delta:(Task.delta task) ()
   with
  | Solvability.Solvable f ->
      let f' = Speedup.derive_map setting ~task ~rounds:1 ~inputs ~f in
      let v = Vertex.make 1 (Value.frac 0 1) in
      let solo = Vertex.make 1 (Model.solo_view 1 (Value.frac 0 1)) in
      Alcotest.(check bool) "f'(v) = f(solo(v))" true
        (Vertex.equal (Simplicial_map.apply f' v) (Simplicial_map.apply f solo))
  | _ -> Alcotest.fail "base should be solvable");
  ()

let test_rounds_validation () =
  let task = Consensus.binary ~n:2 in
  Alcotest.check_raises "rounds >= 1 required"
    (Invalid_argument "Speedup.verify: rounds must be >= 1") (fun () ->
      ignore
        (Speedup.verify (Speedup.of_model Model.Immediate) task ~rounds:0
           ~inputs:(Task.input_simplices task)))

let test_tas_setting () =
  let task = Approx_agreement.task ~n:2 ~m:3 ~eps:(Frac.make 1 3) in
  let r =
    Speedup.verify Speedup.of_test_and_set task ~rounds:1 ~inputs:(binary_inputs 2)
  in
  Alcotest.(check bool) "holds with test&set" true (Speedup.speedup_holds r);
  Alcotest.(check string) "setting name" "immediate+test&set"
    (Speedup.setting_name Speedup.of_test_and_set)

let test_beta_setting () =
  let task = Approx_agreement.liberal ~n:3 ~m:2 ~eps:Frac.half in
  let setting = Speedup.of_bin_consensus_beta (fun ~round:_ i -> i = 1) in
  let r = Speedup.verify setting task ~rounds:1 ~inputs:(binary_inputs 3) in
  Alcotest.(check bool) "holds with β-consensus" true (Speedup.speedup_holds r)

let test_two_round_chain () =
  (* Chaining the theorem twice: 2-round solvable task, closure of
     closure solvable in 0 rounds. *)
  let op = Round_op.plain Model.Immediate in
  let task = Approx_agreement.task ~n:2 ~m:9 ~eps:(Frac.make 1 9) in
  let cl2 = Closure.iterate ~op 2 task in
  let inputs = binary_inputs 2 in
  Alcotest.(check bool) "CL^2 solvable in 0 rounds" true
    (Solvability.is_solvable
       (Solvability.task_in_model ~inputs Model.Immediate cl2 ~rounds:0));
  (* But one closure is not enough. *)
  let cl1 = Closure.iterate ~op 1 task in
  Alcotest.(check bool) "CL^1 not 0-round solvable" false
    (Solvability.is_solvable
       (Solvability.task_in_model ~inputs Model.Immediate cl1 ~rounds:0))

let suite =
  ( "speedup",
    [
      Alcotest.test_case "plain instance" `Quick test_plain_instance;
      Alcotest.test_case "vacuous when unsolvable" `Quick test_unsolvable_base_vacuous;
      Alcotest.test_case "derived map shape" `Quick test_derive_map_explicit;
      Alcotest.test_case "rounds validation" `Quick test_rounds_validation;
      Alcotest.test_case "test&set setting" `Quick test_tas_setting;
      Alcotest.test_case "β-consensus setting" `Quick test_beta_setting;
      Alcotest.test_case "two-round chain" `Quick test_two_round_chain;
    ] )
