(* Tests for the linearizable shared objects. *)

let value = Alcotest.testable Value.pp Value.equal

let test_test_and_set () =
  let o = Sim_object.test_and_set () in
  Alcotest.(check value) "first wins" (Value.Bool true)
    (Sim_object.invoke o 1 Value.Unit);
  Alcotest.(check value) "second loses" (Value.Bool false)
    (Sim_object.invoke o 2 Value.Unit);
  Alcotest.(check value) "third loses" (Value.Bool false)
    (Sim_object.invoke o 3 Value.Unit);
  (* A fresh object is independent. *)
  let o2 = Sim_object.test_and_set () in
  Alcotest.(check value) "fresh object" (Value.Bool true)
    (Sim_object.invoke o2 3 Value.Unit)

let test_consensus () =
  let o = Sim_object.consensus () in
  Alcotest.(check value) "first proposal decides" (Value.Int 7)
    (Sim_object.invoke o 1 (Value.Int 7));
  Alcotest.(check value) "later proposals adopt" (Value.Int 7)
    (Sim_object.invoke o 2 (Value.Int 9));
  Alcotest.(check value) "and again" (Value.Int 7)
    (Sim_object.invoke o 3 (Value.Int 0))

let test_names () =
  Alcotest.(check string) "tas name" "test&set"
    (Sim_object.name (Sim_object.test_and_set ()));
  Alcotest.(check string) "consensus name" "consensus"
    (Sim_object.name (Sim_object.consensus ()))

let prop_exactly_one_winner =
  QCheck2.Test.make ~name:"exactly one test&set winner" ~count:100
    QCheck2.Gen.(int_range 1 8)
    (fun n ->
      let o = Sim_object.test_and_set () in
      let results = List.init n (fun i -> Sim_object.invoke o (i + 1) Value.Unit) in
      List.length (List.filter (Value.equal (Value.Bool true)) results) = 1)

let prop_consensus_agreement_validity =
  QCheck2.Test.make ~name:"consensus: agreement + validity" ~count:100
    QCheck2.Gen.(list_size (int_range 1 8) (int_range 0 5))
    (fun proposals ->
      let o = Sim_object.consensus () in
      let results =
        List.mapi (fun i p -> Sim_object.invoke o (i + 1) (Value.Int p)) proposals
      in
      match results with
      | [] -> true
      | first :: _ ->
          List.for_all (Value.equal first) results
          && List.exists (fun p -> Value.equal first (Value.Int p)) proposals)

let suite =
  ( "sim_object",
    [
      Alcotest.test_case "test&set" `Quick test_test_and_set;
      Alcotest.test_case "consensus" `Quick test_consensus;
      Alcotest.test_case "names" `Quick test_names;
      QCheck_alcotest.to_alcotest prop_exactly_one_winner;
      QCheck_alcotest.to_alcotest prop_consensus_agreement_validity;
    ] )
