(* Tests for carrier maps (Appendix A.1). *)

let consensus2 = Consensus.binary ~n:2

let test_of_task_monotone () =
  let cm = Carrier_map.of_task consensus2 in
  Alcotest.(check bool) "consensus Δ is a carrier map" true
    (Carrier_map.is_monotone cm);
  Alcotest.(check bool) "chromatic" true (Carrier_map.is_chromatic cm)

let test_aa_carrier () =
  let aa = Approx_agreement.task ~n:2 ~m:4 ~eps:(Frac.make 1 4) in
  let cm = Carrier_map.of_task aa in
  Alcotest.(check bool) "AA Δ is a carrier map" true (Carrier_map.is_monotone cm)

let test_non_monotone_detected () =
  (* A map that shrinks on a face: Δ(edge) smaller than Δ(vertex). *)
  let edge = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ] in
  let weird sigma =
    if Simplex.card sigma = 1 then
      Complex.of_simplex (Simplex.of_list [ (List.hd (Simplex.ids sigma), Value.Int 9) ])
    else Complex.of_simplex sigma
  in
  let cm = Carrier_map.make ~domain:[ edge ] weird in
  Alcotest.(check bool) "violation detected" false (Carrier_map.is_monotone cm)

let test_apply_and_domain () =
  let cm = Carrier_map.of_task consensus2 in
  let solo = Simplex.of_list [ (1, Value.Int 0) ] in
  Alcotest.(check bool) "apply on a face" true
    (Complex.equal (Carrier_map.apply cm solo) (Task.delta consensus2 solo));
  (* Domain is face-closed: 4 edges + 4 vertices. *)
  Alcotest.(check int) "domain size" 8 (List.length (Carrier_map.domain cm));
  Alcotest.check_raises "outside domain" Not_found (fun () ->
      ignore (Carrier_map.apply cm (Simplex.of_list [ (7, Value.Int 0) ])))

let test_strictness () =
  (* Consensus Δ is monotone but NOT strict: two mixed-input edges
     intersect in a solo vertex whose image is a single vertex, while
     their image complexes share a whole agreement edge. *)
  let cm = Carrier_map.of_task consensus2 in
  Alcotest.(check bool) "consensus not strict" false (Carrier_map.is_strict cm);
  (* The identity task is strict. *)
  let inputs = Combinatorics.full_input_complex 2 [ Value.Int 0; Value.Int 1 ] in
  let identity =
    Carrier_map.make ~domain:(Complex.facets inputs) Complex.of_simplex
  in
  Alcotest.(check bool) "identity strict" true (Carrier_map.is_strict identity)

let test_union () =
  let cm = Carrier_map.of_task consensus2 in
  let u = Carrier_map.union cm cm in
  Alcotest.(check bool) "idempotent union" true
    (List.for_all
       (fun sigma ->
         Complex.equal (Carrier_map.apply u sigma) (Carrier_map.apply cm sigma))
       (Carrier_map.domain cm))

let test_compose_simplicial () =
  let cm = Carrier_map.of_task consensus2 in
  (* The color-preserving flip 0 <-> 1 on inputs. *)
  let flip =
    Simplicial_map.of_fun
      (Complex.vertices (Task.inputs consensus2))
      (fun v ->
        match Vertex.value v with
        | Value.Int b -> Vertex.make (Vertex.color v) (Value.Int (1 - b))
        | other -> Vertex.make (Vertex.color v) other)
  in
  let composed = Carrier_map.compose_simplicial cm flip in
  let zero = Simplex.of_list [ (1, Value.Int 0) ] in
  let one = Simplex.of_list [ (1, Value.Int 1) ] in
  Alcotest.(check bool) "composed applies the flip first" true
    (Complex.equal (Carrier_map.apply composed zero) (Carrier_map.apply cm one))

let suite =
  ( "carrier_map",
    [
      Alcotest.test_case "task Δ monotone" `Quick test_of_task_monotone;
      Alcotest.test_case "AA Δ monotone" `Quick test_aa_carrier;
      Alcotest.test_case "non-monotone detected" `Quick test_non_monotone_detected;
      Alcotest.test_case "apply/domain" `Quick test_apply_and_domain;
      Alcotest.test_case "strictness" `Quick test_strictness;
      Alcotest.test_case "union" `Quick test_union;
      Alcotest.test_case "compose with simplicial map" `Quick test_compose_simplicial;
    ] )
