(* Tests for schedule generation and validation. *)

let test_validate_is () =
  Alcotest.(check bool) "partition valid" true
    (Schedule.validate_round ~participants:[ 1; 2; 3 ] ~boxed:false
       (Schedule.Is_round [ [ 2 ]; [ 1; 3 ] ]));
  Alcotest.(check bool) "missing process" false
    (Schedule.validate_round ~participants:[ 1; 2; 3 ] ~boxed:false
       (Schedule.Is_round [ [ 2 ]; [ 1 ] ]));
  Alcotest.(check bool) "duplicate process" false
    (Schedule.validate_round ~participants:[ 1; 2 ] ~boxed:false
       (Schedule.Is_round [ [ 1 ]; [ 1; 2 ] ]))

let test_validate_steps () =
  let ok =
    Schedule.Step_round
      [ Schedule.Write 1; Schedule.Write 2; Schedule.Read (1, 1);
        Schedule.Read (1, 2); Schedule.Read (2, 1); Schedule.Read (2, 2) ]
  in
  Alcotest.(check bool) "collect round valid" true
    (Schedule.validate_round ~participants:[ 1; 2 ] ~boxed:false ok);
  let missing_read =
    Schedule.Step_round
      [ Schedule.Write 1; Schedule.Write 2; Schedule.Read (1, 1);
        Schedule.Read (2, 1); Schedule.Read (2, 2) ]
  in
  Alcotest.(check bool) "missing read invalid" false
    (Schedule.validate_round ~participants:[ 1; 2 ] ~boxed:false missing_read);
  let snap =
    Schedule.Step_round
      [ Schedule.Write 1; Schedule.Snapshot 1; Schedule.Write 2; Schedule.Snapshot 2 ]
  in
  Alcotest.(check bool) "snapshot round valid" true
    (Schedule.validate_round ~participants:[ 1; 2 ] ~boxed:false snap);
  let boxed =
    Schedule.Step_round
      [ Schedule.Write 1; Schedule.Invoke 1; Schedule.Snapshot 1;
        Schedule.Write 2; Schedule.Invoke 2; Schedule.Snapshot 2 ]
  in
  Alcotest.(check bool) "boxed round valid" true
    (Schedule.validate_round ~participants:[ 1; 2 ] ~boxed:true boxed);
  Alcotest.(check bool) "boxed flag required" false
    (Schedule.validate_round ~participants:[ 1; 2 ] ~boxed:false boxed)

let test_exhaustive_counts () =
  Alcotest.(check int) "IS 2 procs, 2 rounds: 3^2" 9
    (List.length (Schedule.is_rounds ~participants:[ 1; 2 ] ~rounds:2));
  Alcotest.(check int) "IS 3 procs, 1 round: 13" 13
    (List.length (Schedule.is_rounds ~participants:[ 1; 2; 3 ] ~rounds:1));
  (* Boxed: first-block permutations multiply the counts. *)
  Alcotest.(check int) "boxed IS 2 procs: 3 + 1 extra for the 2-block" 4
    (List.length (Schedule.is_rounds_boxed ~participants:[ 1; 2 ] ~rounds:1));
  Alcotest.(check int) "snapshot interleavings: 4!/2!2! = 6" 6
    (List.length (Schedule.snapshot_round_exhaustive ~participants:[ 1; 2 ]));
  (* Collect: C(6,3) interleavings x 2 read orders per process, with
     duplicates removed. *)
  Alcotest.(check int) "collect interleavings n=2" 80
    (List.length (Schedule.collect_round_exhaustive ~participants:[ 1; 2 ]))

let test_solo_first () =
  match Schedule.solo_first ~participants:[ 1; 2; 3 ] ~rounds:2 2 with
  | [ Schedule.Is_round p1; Schedule.Is_round p2 ] ->
      Alcotest.(check bool) "solo blocks" true
        (p1 = [ [ 2 ]; [ 1; 3 ] ] && p2 = [ [ 2 ]; [ 1; 3 ] ])
  | _ -> Alcotest.fail "expected two IS rounds"

let test_round_of_matrix () =
  (* Every collect matrix yields a valid round realizing its views. *)
  let ids = [ 1; 2; 3 ] in
  List.iter
    (fun matrix ->
      match Schedule.round_of_matrix matrix with
      | Schedule.Step_round _ as round ->
          Alcotest.(check bool) "valid round" true
            (Schedule.validate_round ~participants:ids ~boxed:false round)
      | Schedule.Is_round _ -> Alcotest.fail "expected a step round")
    (Model.matrices Model.Collect ids)

let prop_random_is_valid =
  QCheck2.Test.make ~name:"random IS schedules validate" ~count:200
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let s = Schedule.random_is ~participants:[ 1; 2; 3; 4 ] ~rounds:3 rng in
      List.for_all
        (Schedule.validate_round ~participants:[ 1; 2; 3; 4 ] ~boxed:false)
        s)

let prop_random_collect_valid =
  QCheck2.Test.make ~name:"random collect schedules validate" ~count:200
    QCheck2.Gen.(int_range 0 10000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let s =
        Schedule.random_steps ~model:Model.Collect ~participants:[ 1; 2; 3 ]
          ~rounds:2 rng
      in
      List.for_all
        (Schedule.validate_round ~participants:[ 1; 2; 3 ] ~boxed:false)
        s)

let suite =
  ( "schedule",
    [
      Alcotest.test_case "validate IS rounds" `Quick test_validate_is;
      Alcotest.test_case "validate step rounds" `Quick test_validate_steps;
      Alcotest.test_case "exhaustive counts" `Quick test_exhaustive_counts;
      Alcotest.test_case "solo-first schedule" `Quick test_solo_first;
      Alcotest.test_case "rounds from matrices" `Quick test_round_of_matrix;
      QCheck_alcotest.to_alcotest prop_random_is_valid;
      QCheck_alcotest.to_alcotest prop_random_collect_valid;
    ] )
