(* Tests for the matrix representation of one-round executions
   (Appendix A.3.4). *)

let subset a b = List.for_all (fun x -> List.mem x b) a

(* The five defining conditions of a collect matrix. *)
let well_formed ids m =
  let groups = List.concat_map (fun r -> r.Collect_matrix.group) m in
  let r = List.length m - 1 in
  r <= List.length ids - 1
  && List.sort Stdlib.compare groups = ids
  && (match m with
     | first :: _ -> first.Collect_matrix.sees = ids
     | [] -> false)
  && List.for_all (fun row -> subset row.Collect_matrix.sees ids) m
  && fst
       (List.fold_left
          (fun (ok, rest) row ->
            match rest with
            | [] -> (false, [])
            | _ :: tl ->
                let tail_union = List.concat_map (fun r -> r.Collect_matrix.group) rest in
                (ok && subset tail_union row.Collect_matrix.sees, tl))
          (true, m) m)

let test_all_matrices_well_formed () =
  let ids = [ 1; 2; 3 ] in
  let all = Collect_matrix.enumerate ids in
  Alcotest.(check bool) "every enumerated matrix satisfies (1)-(5)" true
    (List.for_all (well_formed ids) all)

let test_filters_nested () =
  let all = Collect_matrix.enumerate [ 1; 2; 3 ] in
  let snap = List.filter Collect_matrix.is_snapshot all in
  let imm = List.filter Collect_matrix.is_immediate all in
  Alcotest.(check bool) "immediate implies snapshot" true
    (List.for_all Collect_matrix.is_snapshot imm);
  Alcotest.(check bool) "containment strict" true
    (List.length imm < List.length snap && List.length snap < List.length all)

let test_views () =
  let m =
    [ { Collect_matrix.sees = [ 1; 2; 3 ]; group = [ 2 ] };
      { Collect_matrix.sees = [ 1; 3 ]; group = [ 1; 3 ] } ]
  in
  Alcotest.(check (list (pair int (list int))))
    "views by process"
    [ (1, [ 1; 3 ]); (2, [ 1; 2; 3 ]); (3, [ 1; 3 ]) ]
    (Collect_matrix.views m)

let test_of_ordered_partition () =
  let m = Collect_matrix.of_ordered_partition [ [ 2 ]; [ 1; 3 ] ] in
  Alcotest.(check bool) "immediate" true (Collect_matrix.is_immediate m);
  Alcotest.(check bool) "snapshot" true (Collect_matrix.is_snapshot m);
  Alcotest.(check bool) "well-formed" true (well_formed [ 1; 2; 3 ] m);
  Alcotest.(check (list (pair int (list int))))
    "views match the partition semantics"
    (Ordered_partition.views [ [ 2 ]; [ 1; 3 ] ])
    (Collect_matrix.views m)

let test_example_from_appendix () =
  (* The collect-only execution used in DESIGN.md: I_0={1}, I_1={2}
     with P_1={2,3}, I_2={3} with P_2={1,3} is a valid collect matrix
     that is neither snapshot nor immediate. *)
  let m =
    [ { Collect_matrix.sees = [ 1; 2; 3 ]; group = [ 1 ] };
      { Collect_matrix.sees = [ 2; 3 ]; group = [ 2 ] };
      { Collect_matrix.sees = [ 1; 3 ]; group = [ 3 ] } ]
  in
  Alcotest.(check bool) "well-formed" true (well_formed [ 1; 2; 3 ] m);
  Alcotest.(check bool) "not snapshot" false (Collect_matrix.is_snapshot m);
  Alcotest.(check bool) "not immediate" false (Collect_matrix.is_immediate m)

let prop_partition_matrices_immediate =
  QCheck2.Test.make ~name:"of_ordered_partition always immediate" ~count:200
    (Gen.ordered_partition ~ids:[ 1; 2; 3; 4 ])
    (fun part ->
      Collect_matrix.is_immediate (Collect_matrix.of_ordered_partition part))

let suite =
  ( "collect_matrix",
    [
      Alcotest.test_case "conditions (1)-(5)" `Quick test_all_matrices_well_formed;
      Alcotest.test_case "model filters nested" `Quick test_filters_nested;
      Alcotest.test_case "views" `Quick test_views;
      Alcotest.test_case "from ordered partition" `Quick test_of_ordered_partition;
      Alcotest.test_case "appendix example" `Quick test_example_from_appendix;
      QCheck_alcotest.to_alcotest prop_partition_matrices_immediate;
    ] )
