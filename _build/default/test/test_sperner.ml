(* Tests for the Sperner-labeling machinery. *)

let sigma3 =
  Simplex.of_list [ (1, Value.Int 1); (2, Value.Int 2); (3, Value.Int 3) ]

let test_carrier_ids () =
  let p1 = Model.protocol_complex Model.Immediate sigma3 1 in
  (* One-round vertices: the carrier is the view's id set. *)
  List.iter
    (fun v ->
      Alcotest.(check (list int)) "carrier = view ids"
        (Value.view_ids (Vertex.value v))
        (Sperner.carrier_ids v))
    (Complex.vertices p1);
  (* Input vertices are their own carrier. *)
  Alcotest.(check (list int)) "corner carrier" [ 2 ]
    (Sperner.carrier_ids (Vertex.make 2 (Value.Int 0)))

let test_carrier_ids_nested () =
  let p2 = Model.protocol_complex Model.Immediate sigma3 2 in
  (* Solo-of-solo vertices have singleton carriers; everyone's carrier
     is a subset of {1,2,3} containing its own color. *)
  List.iter
    (fun v ->
      let c = Sperner.carrier_ids v in
      Alcotest.(check bool) "own color in carrier" true
        (List.mem (Vertex.color v) c);
      Alcotest.(check bool) "carrier within corners" true
        (List.for_all (fun i -> List.mem i [ 1; 2; 3 ]) c))
    (Complex.vertices p2)

let test_count_rainbow () =
  let p1 = Model.protocol_complex Model.Immediate sigma3 1 in
  (* Labeling by own color: every facet is rainbow (13). *)
  Alcotest.(check int) "chromatic labeling: all rainbow" 13
    (Sperner.count_rainbow p1 ~labeling:Vertex.color);
  (* Constant labeling: none. *)
  Alcotest.(check int) "constant labeling: none" 0
    (Sperner.count_rainbow p1 ~labeling:(fun _ -> 1))

let test_exhaustive_one_round () =
  let p1 = Model.protocol_complex Model.Immediate sigma3 1 in
  Alcotest.(check bool) "Sperner on the chromatic subdivision" true
    (Sperner.exhaustive_check p1)

let test_exhaustive_edge () =
  let edge = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ] in
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "1-dimensional Sperner, t=%d" t)
        true
        (Sperner.exhaustive_check (Model.protocol_complex Model.Immediate edge t)))
    [ 1; 2 ]

let test_sampled_two_rounds () =
  let p2 = Model.protocol_complex Model.Immediate sigma3 2 in
  Alcotest.(check bool) "sampled Sperner on P^2" true
    (Sperner.sampled_check ~samples:300 p2)

let suite =
  ( "sperner",
    [
      Alcotest.test_case "carrier ids (one round)" `Quick test_carrier_ids;
      Alcotest.test_case "carrier ids (nested)" `Quick test_carrier_ids_nested;
      Alcotest.test_case "rainbow counting" `Quick test_count_rainbow;
      Alcotest.test_case "exhaustive, triangle" `Quick test_exhaustive_one_round;
      Alcotest.test_case "exhaustive, edge" `Quick test_exhaustive_edge;
      Alcotest.test_case "sampled, two rounds" `Quick test_sampled_two_rounds;
    ] )
