(* Tests for chromatic simplicial maps. *)

let tri =
  Simplex.of_list [ (1, Value.Int 1); (2, Value.Int 2); (3, Value.Int 3) ]

let constant_map =
  Simplicial_map.of_fun (Simplex.vertices tri) (fun v ->
      Vertex.make (Vertex.color v) (Value.Int 0))

let test_apply () =
  let v = Vertex.make 2 (Value.Int 2) in
  Alcotest.(check bool) "apply" true
    (Vertex.equal (Simplicial_map.apply constant_map v)
       (Vertex.make 2 (Value.Int 0)));
  Alcotest.check_raises "outside domain" Not_found (fun () ->
      ignore (Simplicial_map.apply constant_map (Vertex.make 9 Value.Unit)))

let test_apply_simplex () =
  let image = Simplicial_map.apply_simplex constant_map tri in
  Alcotest.(check (list int)) "chromatic image" [ 1; 2; 3 ] (Simplex.ids image)

let test_conflicting_assoc () =
  Alcotest.check_raises "conflicting images"
    (Invalid_argument "Simplicial_map.of_assoc: conflicting images") (fun () ->
      let v = Vertex.make 1 Value.Unit in
      ignore
        (Simplicial_map.of_assoc
           [ (v, Vertex.make 1 (Value.Int 0)); (v, Vertex.make 1 (Value.Int 1)) ]))

let test_is_simplicial () =
  let dom = Complex.of_simplex tri in
  let cod =
    Complex.of_simplex
      (Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 0); (3, Value.Int 0) ])
  in
  Alcotest.(check bool) "constant map simplicial" true
    (Simplicial_map.is_simplicial constant_map ~domain:dom ~codomain:cod);
  Alcotest.(check bool) "chromatic" true (Simplicial_map.is_chromatic constant_map);
  (* A map missing vertices is not simplicial on this domain. *)
  let partial = Simplicial_map.of_assoc [] in
  Alcotest.(check bool) "partial map rejected" false
    (Simplicial_map.is_simplicial partial ~domain:dom ~codomain:cod);
  (* A non-chromatic target complex membership failure. *)
  let wrong_cod = Complex.of_simplex (Simplex.of_list [ (1, Value.Int 9) ]) in
  Alcotest.(check bool) "image outside codomain" false
    (Simplicial_map.is_simplicial constant_map ~domain:dom ~codomain:wrong_cod)

let test_compose_restrict () =
  let bump =
    Simplicial_map.of_fun
      (List.map
         (fun v -> Vertex.make (Vertex.color v) (Value.Int 0))
         (Simplex.vertices tri))
      (fun v -> Vertex.make (Vertex.color v) (Value.Int 1))
  in
  let composed = Simplicial_map.compose bump constant_map in
  Alcotest.(check bool) "compose" true
    (Vertex.equal
       (Simplicial_map.apply composed (Vertex.make 1 (Value.Int 1)))
       (Vertex.make 1 (Value.Int 1)));
  let restricted =
    Simplicial_map.restrict [ Vertex.make 1 (Value.Int 1) ] constant_map
  in
  Alcotest.(check int) "restricted domain" 1
    (List.length (Simplicial_map.domain restricted))

let test_agrees_with () =
  (* The decision map of 1-round (1/3)-AA agrees with Δ; a constant-0
     map does not (it violates solo inputs 1). *)
  let t = Approx_agreement.task ~n:2 ~m:3 ~eps:(Frac.make 1 3) in
  let inputs = Task.input_simplices t in
  let protocol s = Model.protocol_complex Model.Immediate s 1 in
  let all_vertices =
    List.concat_map (fun s -> Complex.vertices (protocol s)) inputs
    |> List.sort_uniq Vertex.compare
  in
  let zero_map =
    Simplicial_map.of_fun all_vertices (fun v ->
        Vertex.make (Vertex.color v) (Value.frac 0 1))
  in
  Alcotest.(check bool) "constant 0 disagrees" false
    (Simplicial_map.agrees_with zero_map ~inputs ~protocol ~delta:(Task.delta t))

let suite =
  ( "simplicial_map",
    [
      Alcotest.test_case "apply" `Quick test_apply;
      Alcotest.test_case "apply_simplex" `Quick test_apply_simplex;
      Alcotest.test_case "conflicting assoc" `Quick test_conflicting_assoc;
      Alcotest.test_case "is_simplicial" `Quick test_is_simplicial;
      Alcotest.test_case "compose/restrict" `Quick test_compose_restrict;
      Alcotest.test_case "agrees_with" `Quick test_agrees_with;
    ] )
