(* The brute-force backend, and its agreement with the CSP solver. *)

let verdict_tag = function
  | Solvability.Solvable _ -> `Sat
  | Solvability.Unsolvable -> `Unsat
  | Solvability.Undecided -> `Unknown

let consensus2 = Consensus.binary ~n:2

let args_of task rounds =
  let inputs = Task.input_simplices task in
  let protocol s = Model.protocol_complex Model.Immediate s rounds in
  (inputs, protocol, Task.delta task)

let test_consensus_unsat_both_backends () =
  let inputs, protocol, delta = args_of consensus2 1 in
  Alcotest.(check bool) "brute agrees on consensus t=1" true
    (verdict_tag (Brute.decide ~inputs ~protocol ~delta ())
    = verdict_tag (Solvability.decide ~inputs ~protocol ~delta ()))

let test_aa_sat_both_backends () =
  let aa = Approx_agreement.task ~n:2 ~m:2 ~eps:Frac.half in
  let inputs = Complex.all_simplices (Approx_agreement.binary_input_complex ~n:2) in
  let protocol s = Model.protocol_complex Model.Immediate s 1 in
  let delta = Task.delta aa in
  let brute = Brute.decide ~inputs ~protocol ~delta () in
  Alcotest.(check bool) "brute finds the map" true (verdict_tag brute = `Sat);
  (* The brute-force witness is itself valid. *)
  (match brute with
  | Solvability.Solvable f ->
      Alcotest.(check bool) "witness agrees with Δ" true
        (Simplicial_map.agrees_with f ~inputs ~protocol ~delta)
  | _ -> Alcotest.fail "expected Sat");
  ()

let test_search_space_guard () =
  let aa = Approx_agreement.task ~n:2 ~m:9 ~eps:(Frac.make 1 9) in
  let inputs, protocol, delta = args_of aa 2 in
  Alcotest.(check bool) "big instance reported Undecided" true
    (verdict_tag (Brute.decide ~max_maps:1000 ~inputs ~protocol ~delta ())
    = `Unknown);
  Alcotest.(check bool) "search space grows" true
    (Brute.search_space ~inputs ~protocol ~delta > 1000.0)

(* The headline property: on random small tasks the naive enumerator
   and the CSP solver return the same verdict. *)
let random_task seed =
  let rng = Random.State.make [| seed |] in
  let inputs = Combinatorics.full_input_complex 2 [ Value.Int 0; Value.Int 1 ] in
  let table = Hashtbl.create 16 in
  List.iter
    (fun sigma ->
      let candidates =
        Combinatorics.assignments (Simplex.ids sigma) [ Value.Int 0; Value.Int 1 ]
      in
      let chosen = List.filter (fun _ -> Random.State.bool rng) candidates in
      let chosen = if chosen = [] then [ List.hd candidates ] else chosen in
      Hashtbl.replace table (Simplex.to_string sigma) (Complex.of_facets chosen))
    (Complex.all_simplices inputs);
  Task.make
    ~name:(Printf.sprintf "brute-random-%d" seed)
    ~arity:2 ~inputs:(lazy inputs) ~outputs:(lazy inputs)
    ~delta:(fun sigma -> Hashtbl.find table (Simplex.to_string sigma))

let prop_backends_agree =
  QCheck2.Test.make ~name:"CSP and brute force agree (t=1, random tasks)"
    ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let t = random_task seed in
      let inputs, protocol, delta = args_of t 1 in
      verdict_tag (Brute.decide ~inputs ~protocol ~delta ())
      = verdict_tag (Solvability.decide ~inputs ~protocol ~delta ()))

let prop_backends_agree_zero_rounds =
  QCheck2.Test.make ~name:"CSP and brute force agree (t=0)" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let t = random_task seed in
      let inputs, protocol, delta = args_of t 0 in
      verdict_tag (Brute.decide ~inputs ~protocol ~delta ())
      = verdict_tag (Solvability.decide ~inputs ~protocol ~delta ()))

let suite =
  ( "brute",
    [
      Alcotest.test_case "consensus unsat" `Quick test_consensus_unsat_both_backends;
      Alcotest.test_case "AA sat with valid witness" `Quick test_aa_sat_both_backends;
      Alcotest.test_case "search-space guard" `Quick test_search_space_guard;
      QCheck_alcotest.to_alcotest prop_backends_agree;
      QCheck_alcotest.to_alcotest prop_backends_agree_zero_rounds;
    ] )
