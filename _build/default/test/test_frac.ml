(* Unit and property tests for the exact rational arithmetic. *)

let frac = Alcotest.testable Frac.pp Frac.equal

let test_normalization () =
  Alcotest.(check frac) "6/4 = 3/2" (Frac.make 3 2) (Frac.make 6 4);
  Alcotest.(check frac) "-6/-4 = 3/2" (Frac.make 3 2) (Frac.make (-6) (-4));
  Alcotest.(check frac) "6/-4 = -3/2" (Frac.make (-3) 2) (Frac.make 6 (-4));
  Alcotest.(check frac) "0/7 = 0" Frac.zero (Frac.make 0 7);
  Alcotest.(check int) "den of 0 is 1" 1 (Frac.den (Frac.make 0 7))

let test_arithmetic () =
  Alcotest.(check frac) "1/3 + 1/6 = 1/2" Frac.half
    (Frac.add (Frac.make 1 3) (Frac.make 1 6));
  Alcotest.(check frac) "1/2 - 1/3 = 1/6" (Frac.make 1 6)
    (Frac.sub Frac.half (Frac.make 1 3));
  Alcotest.(check frac) "2/3 * 3/4 = 1/2" Frac.half
    (Frac.mul (Frac.make 2 3) (Frac.make 3 4));
  Alcotest.(check frac) "(1/2) / (1/4) = 2" (Frac.of_int 2)
    (Frac.div Frac.half (Frac.make 1 4));
  Alcotest.(check frac) "neg neg = id" (Frac.make 5 7)
    (Frac.neg (Frac.neg (Frac.make 5 7)));
  Alcotest.(check frac) "abs(-5/7)" (Frac.make 5 7) (Frac.abs (Frac.make (-5) 7));
  Alcotest.(check frac) "inv 3/4 = 4/3" (Frac.make 4 3) (Frac.inv (Frac.make 3 4))

let test_division_by_zero () =
  Alcotest.check_raises "make _ 0" Frac.Division_by_zero (fun () ->
      ignore (Frac.make 1 0));
  Alcotest.check_raises "div by zero" Frac.Division_by_zero (fun () ->
      ignore (Frac.div Frac.one Frac.zero));
  Alcotest.check_raises "inv zero" Frac.Division_by_zero (fun () ->
      ignore (Frac.inv Frac.zero))

let test_compare () =
  Alcotest.(check bool) "1/3 < 1/2" true Frac.(Frac.make 1 3 < Frac.half);
  Alcotest.(check bool) "1/2 <= 1/2" true Frac.(Frac.half <= Frac.half);
  Alcotest.(check bool) "2/4 = 1/2" true (Frac.equal (Frac.make 2 4) Frac.half);
  Alcotest.(check frac) "min" (Frac.make 1 3) (Frac.min (Frac.make 1 3) Frac.half);
  Alcotest.(check frac) "max" Frac.half (Frac.max (Frac.make 1 3) Frac.half);
  Alcotest.(check int) "sign -3/4" (-1) (Frac.sign (Frac.make (-3) 4));
  Alcotest.(check int) "sign 0" 0 (Frac.sign Frac.zero)

let test_grid_predicates () =
  Alcotest.(check bool) "3/9 multiple of 1/9" true
    (Frac.is_multiple_of (Frac.make 3 9) ~step:(Frac.make 1 9));
  Alcotest.(check bool) "1/2 not multiple of 1/3" false
    (Frac.is_multiple_of Frac.half ~step:(Frac.make 1 3));
  Alcotest.(check bool) "integers" true (Frac.is_integer (Frac.make 8 4));
  Alcotest.(check bool) "non-integer" false (Frac.is_integer (Frac.make 7 4))

let test_ceil_log () =
  let cases =
    [ (2, 1, 0); (2, 2, 1); (2, 3, 2); (2, 4, 2); (2, 8, 3); (2, 9, 4);
      (3, 1, 0); (3, 3, 1); (3, 4, 2); (3, 9, 2); (3, 10, 3) ]
  in
  List.iter
    (fun (base, x, expect) ->
      Alcotest.(check int)
        (Printf.sprintf "ceil(log%d %d)" base x)
        expect
        (Frac.ceil_log ~base (Frac.of_int x)))
    cases;
  (* The bounds of Corollary 3 on rational 1/eps. *)
  Alcotest.(check int) "ceil(log2 9/2) = 3" 3
    (Frac.ceil_log ~base:2 (Frac.make 9 2));
  Alcotest.check_raises "base 1 rejected" (Invalid_argument "Frac.ceil_log: base < 2")
    (fun () -> ignore (Frac.ceil_log ~base:1 Frac.one))

let test_floor_div () =
  Alcotest.(check int) "floor (7/2) / 1" 3 (Frac.floor_div (Frac.make 7 2) Frac.one);
  Alcotest.(check int) "floor (-1/2) / 1" (-1)
    (Frac.floor_div (Frac.make (-1) 2) Frac.one);
  Alcotest.(check int) "floor (3/4) / (1/4)" 3
    (Frac.floor_div (Frac.make 3 4) (Frac.make 1 4))

let test_pp () =
  Alcotest.(check string) "pp integer" "3" (Frac.to_string (Frac.of_int 3));
  Alcotest.(check string) "pp fraction" "-3/2" (Frac.to_string (Frac.make 3 (-2)))

let prop_add_commutative =
  QCheck2.Test.make ~name:"add commutative" ~count:500
    QCheck2.Gen.(pair Gen.small_frac Gen.small_frac)
    (fun (a, b) -> Frac.equal (Frac.add a b) (Frac.add b a))

let prop_mul_distributes =
  QCheck2.Test.make ~name:"mul distributes over add" ~count:500
    QCheck2.Gen.(triple Gen.small_frac Gen.small_frac Gen.small_frac)
    (fun (a, b, c) ->
      Frac.equal
        (Frac.mul a (Frac.add b c))
        (Frac.add (Frac.mul a b) (Frac.mul a c)))

let prop_compare_total_order =
  QCheck2.Test.make ~name:"compare antisymmetric + float-consistent" ~count:500
    QCheck2.Gen.(pair Gen.small_frac Gen.small_frac)
    (fun (a, b) ->
      let c = Frac.compare a b in
      c = -Frac.compare b a
      && (c = 0) = (Float.abs (Frac.to_float a -. Frac.to_float b) < 1e-9))

let prop_sub_add_roundtrip =
  QCheck2.Test.make ~name:"(a - b) + b = a" ~count:500
    QCheck2.Gen.(pair Gen.small_frac Gen.small_frac)
    (fun (a, b) -> Frac.equal (Frac.add (Frac.sub a b) b) a)

let prop_ceil_log_correct =
  QCheck2.Test.make ~name:"ceil_log: base^(k-1) < x <= base^k" ~count:200
    QCheck2.Gen.(pair (int_range 2 4) (int_range 1 500))
    (fun (base, x) ->
      let k = Frac.ceil_log ~base (Frac.of_int x) in
      let pow e =
        let rec go acc e = if e = 0 then acc else go (acc * base) (e - 1) in
        go 1 e
      in
      pow k >= x && (k = 0 || pow (k - 1) < x))

let suite =
  ( "frac",
    [
      Alcotest.test_case "normalization" `Quick test_normalization;
      Alcotest.test_case "arithmetic" `Quick test_arithmetic;
      Alcotest.test_case "division by zero" `Quick test_division_by_zero;
      Alcotest.test_case "compare" `Quick test_compare;
      Alcotest.test_case "grid predicates" `Quick test_grid_predicates;
      Alcotest.test_case "ceil_log" `Quick test_ceil_log;
      Alcotest.test_case "floor_div" `Quick test_floor_div;
      Alcotest.test_case "pretty-printing" `Quick test_pp;
      QCheck_alcotest.to_alcotest prop_add_commutative;
      QCheck_alcotest.to_alcotest prop_mul_distributes;
      QCheck_alcotest.to_alcotest prop_compare_total_order;
      QCheck_alcotest.to_alcotest prop_sub_add_roundtrip;
      QCheck_alcotest.to_alcotest prop_ceil_log_correct;
    ] )
