(* Tests for the non-iterated memory executor and the round-tagged
   emulation. *)

let spec2 = Aa_halving.spec ~m:4 ~rounds:2

let inputs2 = [ (1, Value.frac 0 1); (2, Value.frac 1 1) ]

let test_program_shape () =
  Alcotest.(check int) "2 rounds = 4 steps" 4
    (List.length (Non_iterated.program ~rounds:2 1));
  match Non_iterated.program ~rounds:1 7 with
  | [ Non_iterated.Write 7; Non_iterated.Snapshot 7 ] -> ()
  | _ -> Alcotest.fail "program must alternate write/snapshot"

let test_exhaustive_counts () =
  (* Interleavings of two 4-step programs: C(8,4) = 70. *)
  Alcotest.(check int) "n=2 t=2 interleavings" 70
    (List.length (Non_iterated.exhaustive ~participants:[ 1; 2 ] ~rounds:2));
  Alcotest.(check int) "n=2 t=1 interleavings" 6
    (List.length (Non_iterated.exhaustive ~participants:[ 1; 2 ] ~rounds:1))

let test_lockstep_agrees_with_iterated () =
  let ni =
    Non_iterated.run spec2 ~inputs:inputs2
      ~schedule:(Non_iterated.lockstep ~participants:[ 1; 2 ] ~rounds:2)
  in
  let it =
    Executor.run (State_protocol.protocol spec2) ~inputs:inputs2
      ~schedule:[ Schedule.Is_round [ [ 1; 2 ] ]; Schedule.Is_round [ [ 1; 2 ] ] ]
  in
  Alcotest.(check bool) "outputs equal" true (ni = it.Executor.outputs)

let test_raw_breaks_emulation_fixes () =
  let task = Approx_agreement.task ~n:2 ~m:4 ~eps:(Frac.make 1 4) in
  let sigma = Simplex.of_list inputs2 in
  let ok runner s =
    match runner spec2 ~inputs:inputs2 ~schedule:s with
    | [] -> true
    | outs -> Complex.mem (Simplex.of_list outs) (Task.delta task sigma)
  in
  let schedules = Non_iterated.exhaustive ~participants:[ 1; 2 ] ~rounds:2 in
  Alcotest.(check bool) "raw reuse violates somewhere" true
    (List.exists (fun s -> not (ok Non_iterated.run s)) schedules);
  Alcotest.(check bool) "emulation never violates" true
    (List.for_all (ok Non_iterated.run_emulated) schedules)

let test_emulated_profiles_are_snapshot () =
  let inputs = [ (1, Value.Int 5); (2, Value.Int 6); (3, Value.Int 7) ] in
  let profiles =
    Non_iterated.one_round_profiles ~participants:[ 1; 2; 3 ] ~inputs
  in
  let snap =
    Model.one_round_facets Model.Snapshot (Simplex.of_list inputs)
  in
  Alcotest.(check int) "19 snapshot facets" 19 (List.length profiles);
  Alcotest.(check bool) "set equality" true
    (Simplex.Set.equal (Simplex.Set.of_list profiles) (Simplex.Set.of_list snap))

let test_incomplete_process_no_output () =
  (* Process 2 never snapshots its second round. *)
  let schedule =
    [ Non_iterated.Write 1; Non_iterated.Write 2; Non_iterated.Snapshot 1;
      Non_iterated.Snapshot 2; Non_iterated.Write 1; Non_iterated.Snapshot 1;
      Non_iterated.Write 2 ]
  in
  let outs = Non_iterated.run spec2 ~inputs:inputs2 ~schedule in
  Alcotest.(check (list int)) "only process 1 decides" [ 1 ] (List.map fst outs)

let test_round_synchronized_validation () =
  Alcotest.check_raises "not enough partitions"
    (Invalid_argument "Non_iterated.round_synchronized: not enough partitions")
    (fun () ->
      ignore
        (Non_iterated.round_synchronized ~participants:[ 1; 2 ] ~rounds:2
           [ [ [ 1; 2 ] ] ]))

let prop_random_schedules_run =
  QCheck2.Test.make ~name:"random non-iterated runs stay in range" ~count:200
    QCheck2.Gen.(int_range 0 100000)
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let schedule = Non_iterated.random ~participants:[ 1; 2; 3 ] ~rounds:2 rng in
      let inputs =
        [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ]
      in
      let outs = Non_iterated.run spec2 ~inputs ~schedule in
      List.for_all
        (fun (_, v) ->
          let q = Value.as_frac v in
          Frac.(Frac.zero <= q) && Frac.(q <= Frac.one))
        outs)

let suite =
  ( "non_iterated",
    [
      Alcotest.test_case "program shape" `Quick test_program_shape;
      Alcotest.test_case "exhaustive counts" `Quick test_exhaustive_counts;
      Alcotest.test_case "lockstep = iterated" `Quick test_lockstep_agrees_with_iterated;
      Alcotest.test_case "raw breaks, emulation fixes" `Quick test_raw_breaks_emulation_fixes;
      Alcotest.test_case "emulated round = snapshot" `Quick test_emulated_profiles_are_snapshot;
      Alcotest.test_case "incomplete process" `Quick test_incomplete_process_no_output;
      Alcotest.test_case "schedule validation" `Quick test_round_synchronized_validation;
      QCheck_alcotest.to_alcotest prop_random_schedules_run;
    ] )
