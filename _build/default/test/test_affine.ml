(* Tests for the k-concurrency and d-solo model variants. *)

let sigma n =
  Simplex.of_list (List.init n (fun i -> (i + 1, Value.Int (i + 1))))

let test_k_concurrency_counts () =
  Alcotest.(check int) "3-concurrency = full IS" 13
    (List.length (Affine.k_concurrency 3 (sigma 3)));
  Alcotest.(check int) "2-concurrency drops the 3-block" 12
    (List.length (Affine.k_concurrency 2 (sigma 3)));
  (* 1-concurrency = sequential executions = permutations. *)
  Alcotest.(check int) "1-concurrency = 3! orders" 6
    (List.length (Affine.k_concurrency 1 (sigma 3)));
  Alcotest.check_raises "k < 1 rejected"
    (Invalid_argument "Affine.k_concurrency: k < 1") (fun () ->
      ignore (Affine.k_concurrency 0 (sigma 2)))

let test_k_concurrency_subcomplex () =
  let is_c = Complex.of_facets (Model.one_round_facets Model.Immediate (sigma 3)) in
  List.iter
    (fun k ->
      let c = Complex.of_facets (Affine.k_concurrency k (sigma 3)) in
      Alcotest.(check bool)
        (Printf.sprintf "%d-concurrency ⊆ IS" k)
        true (Complex.subcomplex c is_c))
    [ 1; 2; 3 ]

let test_d_solo_counts () =
  Alcotest.(check int) "1-solo n=2 = IS" 3 (List.length (Affine.d_solo 1 (sigma 2)));
  Alcotest.(check int) "2-solo n=2" 4 (List.length (Affine.d_solo 2 (sigma 2)));
  Alcotest.(check int) "1-solo n=3 = IS" 13 (List.length (Affine.d_solo 1 (sigma 3)));
  (* 2-solo n=3: 13 IS facets + 3 choices of a solo pair, each with
     1 following process (1 partition each) = 16. *)
  Alcotest.(check int) "2-solo n=3" 16 (List.length (Affine.d_solo 2 (sigma 3)));
  (* 3-solo n=3 adds the all-solo facet. *)
  Alcotest.(check int) "3-solo n=3" 17 (List.length (Affine.d_solo 3 (sigma 3)));
  Alcotest.check_raises "d < 1 rejected" (Invalid_argument "Affine.d_solo: d < 1")
    (fun () -> ignore (Affine.d_solo 0 (sigma 2)))

let test_d_solo_supercomplex () =
  let is_c = Complex.of_facets (Model.one_round_facets Model.Immediate (sigma 3)) in
  let c2 = Complex.of_facets (Affine.d_solo 2 (sigma 3)) in
  Alcotest.(check bool) "IS ⊆ 2-solo" true (Complex.subcomplex is_c c2)

let test_both_solo_facet () =
  let facets = Affine.d_solo 2 (sigma 2) in
  let both_solo =
    Simplex.of_vertices
      [ Model.solo_vertex (sigma 2) 1; Model.solo_vertex (sigma 2) 2 ]
  in
  Alcotest.(check bool) "both-solo facet present" true
    (List.exists (Simplex.equal both_solo) facets);
  (* ... and absent from plain IS. *)
  Alcotest.(check bool) "absent in IS" false
    (Complex.mem both_solo
       (Complex.of_facets (Model.one_round_facets Model.Immediate (sigma 2))))

let test_allows_solo () =
  Alcotest.(check bool) "k-concurrency allows solo" true
    (Affine.allows_solo (Affine.k_concurrency 1) (sigma 3));
  Alcotest.(check bool) "d-solo allows solo" true
    (Affine.allows_solo (Affine.d_solo 3) (sigma 3));
  Alcotest.(check bool) "plain IS allows solo" true
    (Affine.allows_solo (Model.one_round_facets Model.Immediate) (sigma 4));
  (* A model with only the fully concurrent execution does not. *)
  let lockstep s = [ List.hd (Affine.k_concurrency (Simplex.card s) s) ] in
  let only_concurrent s =
    List.filter
      (fun f ->
        List.for_all
          (fun v -> List.length (Value.view_ids (Vertex.value v)) = Simplex.card s)
          (Simplex.vertices f))
      (lockstep s @ Model.one_round_facets Model.Immediate s)
  in
  Alcotest.(check bool) "lockstep model has no solos" false
    (Affine.allows_solo only_concurrent (sigma 3))

let test_speedup_on_affine () =
  (* Theorem 1 on the 2-concurrency model: a 1-round solvable AA task
     has a 0-round solvable closure. *)
  let op = Round_op.k_concurrency 2 in
  let task = Approx_agreement.task ~n:2 ~m:3 ~eps:(Frac.make 1 3) in
  let inputs = Complex.all_simplices (Approx_agreement.binary_input_complex ~n:2) in
  let solvable_1 =
    Solvability.decide ~inputs
      ~protocol:(fun s -> Complex.of_facets (Affine.k_concurrency 2 s))
      ~delta:(Task.delta task) ()
  in
  Alcotest.(check bool) "base solvable" true (Solvability.is_solvable solvable_1);
  let closure_0 =
    Solvability.decide ~inputs
      ~protocol:Complex.of_simplex
      ~delta:(Closure.delta ~op task) ()
  in
  Alcotest.(check bool) "closure 0-round solvable" true
    (Solvability.is_solvable closure_0)

let suite =
  ( "affine",
    [
      Alcotest.test_case "k-concurrency counts" `Quick test_k_concurrency_counts;
      Alcotest.test_case "k-concurrency subcomplexes" `Quick test_k_concurrency_subcomplex;
      Alcotest.test_case "d-solo counts" `Quick test_d_solo_counts;
      Alcotest.test_case "d-solo supercomplex" `Quick test_d_solo_supercomplex;
      Alcotest.test_case "both-solo facet" `Quick test_both_solo_facet;
      Alcotest.test_case "allows_solo" `Quick test_allows_solo;
      Alcotest.test_case "speedup on affine model" `Quick test_speedup_on_affine;
    ] )
