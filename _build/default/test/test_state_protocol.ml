(* Tests for the state-carrying protocol combinator. *)

let max_spec rounds =
  (* Each round: adopt the maximum collected state. *)
  {
    State_protocol.name = "running-max";
    rounds;
    init = (fun _i input -> input);
    step =
      (fun ~round:_ _i ~box:_ states ->
        List.fold_left
          (fun acc (_, v) -> if Value.compare v acc > 0 then v else acc)
          (snd (List.hd states))
          states);
    box_input = (fun ~round:_ _i _ -> Value.Unit);
    output = (fun _i state -> state);
  }

let inputs = [ (1, Value.Int 1); (2, Value.Int 5); (3, Value.Int 3) ]

let test_state_recovery () =
  let spec = max_spec 2 in
  let protocol = State_protocol.protocol spec in
  let schedule =
    [ Schedule.Is_round [ [ 1; 2; 3 ] ]; Schedule.Is_round [ [ 1; 2; 3 ] ] ]
  in
  let result = Executor.run protocol ~inputs ~schedule in
  (* Everybody saw everybody: the max propagates to all. *)
  List.iter
    (fun (_, out) ->
      Alcotest.(check bool) "max reached" true (Value.equal out (Value.Int 5)))
    result.Executor.outputs

let test_partial_visibility () =
  let spec = max_spec 1 in
  let protocol = State_protocol.protocol spec in
  (* Process 1 runs solo: it keeps its own value. *)
  let schedule = [ Schedule.Is_round [ [ 1 ]; [ 2; 3 ] ] ] in
  let result = Executor.run protocol ~inputs ~schedule in
  Alcotest.(check bool) "solo keeps own" true
    (Value.equal (List.assoc 1 result.Executor.outputs) (Value.Int 1));
  Alcotest.(check bool) "others get the max" true
    (Value.equal (List.assoc 2 result.Executor.outputs) (Value.Int 5))

let test_state_of_view_round0 () =
  let spec = max_spec 0 in
  Alcotest.(check bool) "round 0 = init" true
    (Value.equal
       (State_protocol.state_of_view spec ~round:0 1 (Value.Int 42))
       (Value.Int 42))

let test_intermediate_states () =
  (* state_of_view recovers the state after each round from the nested
     view, consistently with the executor's round_views. *)
  let spec = max_spec 2 in
  let protocol = State_protocol.protocol spec in
  let schedule =
    [ Schedule.Is_round [ [ 2 ]; [ 1; 3 ] ]; Schedule.Is_round [ [ 1; 2; 3 ] ] ]
  in
  let result = Executor.run protocol ~inputs ~schedule in
  (match result.Executor.round_views with
  | [ r1; _ ] ->
      (* After round 1: 2 ran solo (keeps 5), 1 and 3 saw everyone. *)
      let state_of i =
        State_protocol.state_of_view spec ~round:1 i (List.assoc i r1)
      in
      Alcotest.(check bool) "p2 solo" true (Value.equal (state_of 2) (Value.Int 5));
      Alcotest.(check bool) "p1 max" true (Value.equal (state_of 1) (Value.Int 5))
  | _ -> Alcotest.fail "expected two rounds");
  ()

let test_malformed_view () =
  let spec = max_spec 1 in
  Alcotest.check_raises "malformed view rejected"
    (Invalid_argument "State_protocol: malformed view") (fun () ->
      ignore (State_protocol.state_of_view spec ~round:1 1 (Value.Int 3)))

let suite =
  ( "state_protocol",
    [
      Alcotest.test_case "state recovery" `Quick test_state_recovery;
      Alcotest.test_case "partial visibility" `Quick test_partial_visibility;
      Alcotest.test_case "round 0" `Quick test_state_of_view_round0;
      Alcotest.test_case "intermediate states" `Quick test_intermediate_states;
      Alcotest.test_case "malformed views" `Quick test_malformed_view;
    ] )
