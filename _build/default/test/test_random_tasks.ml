(* Property-based tests of the theory itself on randomly generated
   2-process tasks: the speedup theorem and the closure containment
   hold for *every* task, so random tasks are fair game. *)

let input_values = [ Value.Int 0; Value.Int 1 ]
let output_values = [ Value.Int 0; Value.Int 1; Value.Int 2 ]

(* A random task: for each input simplex, a random non-empty set of
   chromatic output assignments over its colors.  Solo inputs keep at
   least one output; nothing else is assumed (Δ need not be a carrier
   map — the paper's Definition 2 does not require it). *)
let random_task seed =
  let rng = Random.State.make [| seed |] in
  let inputs = Combinatorics.full_input_complex 2 input_values in
  let all_inputs = Complex.all_simplices inputs in
  let table = Hashtbl.create 16 in
  List.iter
    (fun sigma ->
      let candidates = Combinatorics.assignments (Simplex.ids sigma) output_values in
      let chosen = List.filter (fun _ -> Random.State.bool rng) candidates in
      let chosen = if chosen = [] then [ List.hd candidates ] else chosen in
      Hashtbl.replace table (Simplex.to_string sigma) (Complex.of_facets chosen))
    all_inputs;
  Task.make
    ~name:(Printf.sprintf "random-task-%d" seed)
    ~arity:2 ~inputs:(lazy inputs)
    ~outputs:(lazy (Combinatorics.full_input_complex 2 output_values))
    ~delta:(fun sigma ->
      match Hashtbl.find_opt table (Simplex.to_string sigma) with
      | Some c -> c
      | None -> invalid_arg "random task: unknown input")

let op = Round_op.plain Model.Immediate

let prop_closure_contains_delta =
  QCheck2.Test.make ~name:"Δ ⊆ Δ' for random tasks" ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let t = random_task seed in
      List.for_all
        (fun sigma ->
          Complex.subcomplex (Task.delta t sigma) (Closure.delta ~op t sigma))
        (Task.input_simplices t))

let prop_speedup_theorem =
  QCheck2.Test.make ~name:"speedup theorem on random tasks (t=1)" ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let t = random_task seed in
      Speedup.speedup_holds
        (Speedup.verify (Speedup.of_model Model.Immediate) t ~rounds:1
           ~inputs:(Task.input_simplices t)))

let prop_speedup_theorem_tas =
  QCheck2.Test.make ~name:"speedup theorem on random tasks (test&set)" ~count:25
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let t = random_task seed in
      Speedup.speedup_holds
        (Speedup.verify Speedup.of_test_and_set t ~rounds:1
           ~inputs:(Task.input_simplices t)))

let prop_closure_monotone_in_model =
  (* More executions make local tasks harder: the collect closure is
     contained in the snapshot closure, which is contained in the IS
     closure. *)
  QCheck2.Test.make ~name:"Δ'_collect ⊆ Δ'_snapshot ⊆ Δ'_IS" ~count:25
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let t = random_task seed in
      List.for_all
        (fun sigma ->
          let d m = Closure.delta ~op:(Round_op.plain m) t sigma in
          Complex.subcomplex (d Model.Collect) (d Model.Snapshot)
          && Complex.subcomplex (d Model.Snapshot) (d Model.Immediate))
        (Task.input_simplices t))

let prop_zero_round_implies_closure_zero_round =
  (* Degenerate speedup: a 0-round solvable task has a 0-round
     solvable closure (since Δ ⊆ Δ'). *)
  QCheck2.Test.make ~name:"0-round solvable ⇒ closure 0-round solvable" ~count:40
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let t = random_task seed in
      let solvable0 task =
        Solvability.is_solvable
          (Solvability.task_in_model Model.Immediate task ~rounds:0)
      in
      (not (solvable0 t)) || solvable0 (Closure.task ~op t))

let suite =
  ( "random_tasks",
    [
      QCheck_alcotest.to_alcotest prop_closure_contains_delta;
      QCheck_alcotest.to_alcotest prop_speedup_theorem;
      QCheck_alcotest.to_alcotest prop_speedup_theorem_tas;
      QCheck_alcotest.to_alcotest prop_closure_monotone_in_model;
      QCheck_alcotest.to_alcotest prop_zero_round_implies_closure_zero_round;
    ] )
