(* Tests for adaptive renaming. *)

let test_delta_shapes () =
  let t = Renaming.task ~n:3 in
  let solo = Simplex.of_list [ (2, Value.Unit) ] in
  (* A solo process must take name 1 (2·1 − 1 = 1). *)
  Alcotest.(check int) "solo: single legal output" 1
    (Complex.facet_count (Task.delta t solo));
  let pair = Simplex.of_list [ (1, Value.Unit); (3, Value.Unit) ] in
  (* Two participants: distinct names in {1,2,3}: 3·2 = 6. *)
  Alcotest.(check int) "pair outputs" 6 (Complex.facet_count (Task.delta t pair));
  let all = Simplex.of_list [ (1, Value.Unit); (2, Value.Unit); (3, Value.Unit) ] in
  (* Three participants: injections [3] -> [5]: 5·4·3 = 60. *)
  Alcotest.(check int) "triple outputs" 60 (Complex.facet_count (Task.delta t all))

let test_distinctness () =
  let t = Renaming.task ~n:3 in
  let all = Simplex.of_list [ (1, Value.Unit); (2, Value.Unit); (3, Value.Unit) ] in
  List.iter
    (fun f ->
      let names = Simplex.values f in
      Alcotest.(check int) "names distinct" (List.length names)
        (List.length (List.sort_uniq Value.compare names)))
    (Complex.facets (Task.delta t all))

let test_solvability_profile () =
  let solvable t rounds task =
    ignore t;
    Solvability.is_solvable
      (Solvability.task_in_model Model.Immediate task ~rounds)
  in
  let rn2 = Renaming.task ~n:2 in
  Alcotest.(check bool) "n=2 not in 0 rounds" false (solvable 0 0 rn2);
  Alcotest.(check bool) "n=2 in 1 round" true (solvable 0 1 rn2)

let test_validation () =
  Alcotest.check_raises "too few names"
    (Invalid_argument "Renaming: fewer names than participants") (fun () ->
      ignore (Renaming.with_names ~n:3 ~names:(fun p -> p - 1)))

let test_not_fixed_point () =
  let t = Renaming.task ~n:2 in
  Alcotest.(check bool) "closure strictly easier" false
    (Closure.fixed_point_on
       ~op:(Round_op.plain Model.Immediate)
       t (Task.input_simplices t))

let suite =
  ( "renaming",
    [
      Alcotest.test_case "delta shapes" `Quick test_delta_shapes;
      Alcotest.test_case "distinct names" `Quick test_distinctness;
      Alcotest.test_case "solvability profile" `Quick test_solvability_profile;
      Alcotest.test_case "parameter validation" `Quick test_validation;
      Alcotest.test_case "not a fixed point" `Quick test_not_fixed_point;
    ] )
