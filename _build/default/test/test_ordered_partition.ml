(* Tests for ordered set partitions (the IS facet parameterization). *)

let test_enumeration_counts () =
  List.iter
    (fun (k, expect) ->
      let ids = List.init k (fun i -> i + 1) in
      Alcotest.(check int)
        (Printf.sprintf "ordered Bell %d" k)
        expect
        (List.length (Ordered_partition.enumerate ids));
      Alcotest.(check int) "count fn agrees" expect (Ordered_partition.count k))
    [ (1, 1); (2, 3); (3, 13); (4, 75); (5, 541) ]

let test_no_duplicates () =
  let parts = Ordered_partition.enumerate [ 1; 2; 3; 4 ] in
  let canon = List.sort_uniq Stdlib.compare parts in
  Alcotest.(check int) "all distinct" (List.length parts) (List.length canon)

let test_partition_property () =
  List.iter
    (fun part ->
      let flat = List.sort Stdlib.compare (List.concat part) in
      Alcotest.(check (list int)) "blocks partition the set" [ 1; 2; 3 ] flat;
      List.iter
        (fun b -> Alcotest.(check bool) "non-empty block" true (b <> []))
        part)
    (Ordered_partition.enumerate [ 1; 2; 3 ])

let test_views () =
  let part = [ [ 2 ]; [ 1; 3 ] ] in
  Alcotest.(check (list (pair int (list int))))
    "views accumulate blocks"
    [ (1, [ 1; 2; 3 ]); (2, [ 2 ]); (3, [ 1; 2; 3 ]) ]
    (Ordered_partition.views part)

let test_solo () =
  Alcotest.(check (list (list int))) "solo first" [ [ 2 ]; [ 1; 3 ] ]
    (Ordered_partition.solo [ 1; 2; 3 ] 2);
  Alcotest.(check (list (list int))) "solo alone" [ [ 1 ] ]
    (Ordered_partition.solo [ 1 ] 1);
  Alcotest.(check bool) "is_solo_first" true
    (Ordered_partition.is_solo_first 2 [ [ 2 ]; [ 1; 3 ] ]);
  Alcotest.(check bool) "not solo" false
    (Ordered_partition.is_solo_first 1 [ [ 1; 2 ] ])

let test_first_block () =
  Alcotest.(check (list int)) "first block" [ 2 ]
    (Ordered_partition.first_block [ [ 2 ]; [ 1; 3 ] ])

let prop_views_form_chain =
  (* Views of an ordered partition are totally ordered by inclusion:
     the snapshot chain property. *)
  QCheck2.Test.make ~name:"views form an inclusion chain" ~count:300
    (Gen.ordered_partition ~ids:[ 1; 2; 3; 4 ])
    (fun part ->
      let views = List.map snd (Ordered_partition.views part) in
      let subset a b = List.for_all (fun x -> List.mem x b) a in
      List.for_all
        (fun a -> List.for_all (fun b -> subset a b || subset b a) views)
        views)

let prop_views_contain_self =
  QCheck2.Test.make ~name:"every process sees itself" ~count:300
    (Gen.ordered_partition ~ids:[ 1; 2; 3; 4 ])
    (fun part ->
      List.for_all (fun (i, view) -> List.mem i view)
        (Ordered_partition.views part))

let suite =
  ( "ordered_partition",
    [
      Alcotest.test_case "enumeration counts" `Quick test_enumeration_counts;
      Alcotest.test_case "no duplicates" `Quick test_no_duplicates;
      Alcotest.test_case "partition property" `Quick test_partition_property;
      Alcotest.test_case "views" `Quick test_views;
      Alcotest.test_case "solo" `Quick test_solo;
      Alcotest.test_case "first block" `Quick test_first_block;
      QCheck_alcotest.to_alcotest prop_views_form_chain;
      QCheck_alcotest.to_alcotest prop_views_contain_self;
    ] )
