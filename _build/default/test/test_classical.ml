(* Tests for the mechanized classical arguments. *)

let test_consensus_argument () =
  List.iter
    (fun (n, t) ->
      let r = Classical.consensus_argument ~n ~rounds:t in
      Alcotest.(check bool)
        (Printf.sprintf "argument applies (n=%d, t=%d)" n t)
        true
        (Classical.consensus_argument_valid r);
      Alcotest.(check int) "rounds recorded" t r.Classical.rounds)
    [ (2, 1); (2, 2); (3, 1) ]

let test_solo_distance_values () =
  List.iter
    (fun (n, t, expect) ->
      Alcotest.(check (option int))
        (Printf.sprintf "distance n=%d t=%d" n t)
        (Some expect)
        (Classical.solo_distance Model.Immediate ~n ~rounds:t))
    [ (2, 0, 1); (2, 1, 3); (2, 2, 9); (3, 1, 2); (3, 2, 4); (4, 1, 2) ]

let test_snapshot_collect_distances () =
  (* Weaker models have more facets, hence no larger distances; for
     n = 2 they coincide with IS. *)
  List.iter
    (fun model ->
      Alcotest.(check (option int))
        (Printf.sprintf "n=2 t=1 in %s" (Model.name model))
        (Some 3)
        (Classical.solo_distance model ~n:2 ~rounds:1))
    [ Model.Snapshot; Model.Collect ]

let test_diameter_bound () =
  Alcotest.(check bool) "bound 1/9 for n=2 t=2" true
    (Frac.equal
       (Classical.diameter_lower_bound Model.Immediate ~n:2 ~rounds:2)
       (Frac.make 1 9));
  Alcotest.(check bool) "bound 1/4 for n=3 t=2" true
    (Frac.equal
       (Classical.diameter_lower_bound Model.Immediate ~n:3 ~rounds:2)
       (Frac.make 1 4));
  (* Consistency with the direct solver: at eps exactly the bound the
     task is solvable, just below it is not. *)
  let inputs = Complex.all_simplices (Approx_agreement.binary_input_complex ~n:2) in
  let solvable eps_n eps_d m t =
    Solvability.is_solvable
      (Solvability.task_in_model ~inputs Model.Immediate
         (Approx_agreement.task ~n:2 ~m ~eps:(Frac.make eps_n eps_d))
         ~rounds:t)
  in
  Alcotest.(check bool) "eps = 1/9 solvable in 2" true (solvable 1 9 9 2);
  Alcotest.(check bool) "eps = 1/27 not solvable in 2" false (solvable 1 27 27 2)

let suite =
  ( "classical",
    [
      Alcotest.test_case "connectivity argument" `Quick test_consensus_argument;
      Alcotest.test_case "solo distances" `Quick test_solo_distance_values;
      Alcotest.test_case "distances in weaker models" `Quick test_snapshot_collect_distances;
      Alcotest.test_case "diameter bound vs solver" `Quick test_diameter_bound;
    ] )
