(* Integration tests: every experiment table must come out OK.  The
   heavyweight experiments (full-grid closures, large simulator
   sweeps) are tagged `Slow; `Quick covers the rest in seconds. *)

let run_and_check id () =
  let tables = Suite.run_one id in
  Alcotest.(check bool) "at least one table" true (tables <> []);
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Printf.sprintf "[%s] %s" t.Report.id t.Report.title)
        true t.Report.ok)
    tables

let test_registry () =
  Alcotest.(check int) "20 experiments" 20 (List.length Suite.all);
  Alcotest.(check bool) "find e3" true (Suite.find "e3" <> None);
  Alcotest.(check bool) "find junk" true (Suite.find "zzz" = None);
  Alcotest.check_raises "run_one unknown" Not_found (fun () ->
      ignore (Suite.run_one "zzz"))

let test_report_rendering () =
  let t =
    Report.table ~id:"x" ~title:"demo" ~headers:[ "a"; "b" ]
      ~rows:[ [ "1"; "22" ]; [ "333"; "4" ] ]
      ~ok:true
  in
  let s = Format.asprintf "%a" Report.pp t in
  Alcotest.(check bool) "renders header" true
    (Astring_like.contains s "[X] demo");
  Alcotest.(check bool) "renders rows" true (Astring_like.contains s "333")

let speed id = if List.mem id [ "e6"; "e7"; "e9"; "e10"; "e11"; "e12" ] then `Slow else `Quick

let suite =
  ( "experiments",
    Alcotest.test_case "registry" `Quick test_registry
    :: Alcotest.test_case "report rendering" `Quick test_report_rendering
    :: List.map
         (fun e ->
           Alcotest.test_case
             (Printf.sprintf "%s: %s" e.Suite.id e.Suite.description)
             (speed e.Suite.id) (run_and_check e.Suite.id))
         Suite.all )
