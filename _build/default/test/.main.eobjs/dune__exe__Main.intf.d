test/main.mli:
