test/test_homology.ml: Alcotest Complex Connectivity Gen Homology List Model Printf QCheck2 QCheck_alcotest Simplex Value
