test/test_state_protocol.ml: Alcotest Executor List Schedule State_protocol Value
