test/test_simplicial_map.ml: Alcotest Approx_agreement Complex Frac List Model Simplex Simplicial_map Task Value Vertex
