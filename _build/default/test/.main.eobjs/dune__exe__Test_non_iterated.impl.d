test/test_non_iterated.ml: Aa_halving Alcotest Approx_agreement Complex Executor Frac List Model Non_iterated QCheck2 QCheck_alcotest Random Schedule Simplex State_protocol Task Value
