test/test_classical.ml: Alcotest Approx_agreement Classical Complex Frac List Model Printf Solvability
