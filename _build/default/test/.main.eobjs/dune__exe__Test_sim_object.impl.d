test/test_sim_object.ml: Alcotest List QCheck2 QCheck_alcotest Sim_object Value
