test/test_simplex.ml: Alcotest Gen List QCheck2 QCheck_alcotest Simplex Value Vertex
