test/test_augmented.ml: Alcotest Augmented Black_box Complex List Model Printf Simplex Value Vertex
