test/test_collect_matrix.ml: Alcotest Collect_matrix Gen List Ordered_partition QCheck2 QCheck_alcotest Stdlib
