test/test_connectivity.ml: Alcotest Complex Connectivity List Model QCheck2 QCheck_alcotest Simplex Value Vertex
