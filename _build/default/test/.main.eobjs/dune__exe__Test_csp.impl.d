test/test_csp.ml: Alcotest Array Csp Fun List Stdlib
