test/test_solvability.ml: Alcotest Approx_agreement Augmented Black_box Combinatorics Complex Consensus Frac List Model Printf Simplex Simplicial_map Solvability Task Value
