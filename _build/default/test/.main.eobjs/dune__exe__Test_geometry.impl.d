test/test_geometry.ml: Alcotest Astring_like Augmented Black_box Complex Float Geometry List Model Printf Simplex Stdlib Value Vertex
