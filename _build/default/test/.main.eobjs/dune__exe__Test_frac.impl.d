test/test_frac.ml: Alcotest Float Frac Gen List Printf QCheck2 QCheck_alcotest
