test/test_random_tasks.ml: Closure Combinatorics Complex Hashtbl List Model Printf QCheck2 QCheck_alcotest Random Round_op Simplex Solvability Speedup Task Value
