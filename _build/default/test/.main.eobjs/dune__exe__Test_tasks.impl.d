test/test_tasks.ml: Alcotest Approx_agreement Complex Consensus Frac List Local_task Set_agreement Simplex Task Value
