test/test_dot.ml: Alcotest Astring_like Complex Dot Filename Fun Simplex String Sys Value
