test/test_sperner.ml: Alcotest Complex List Model Printf Simplex Sperner Value Vertex
