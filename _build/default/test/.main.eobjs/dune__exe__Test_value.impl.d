test/test_value.ml: Alcotest Frac Gen List QCheck2 QCheck_alcotest Value
