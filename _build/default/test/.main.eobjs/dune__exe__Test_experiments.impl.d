test/test_experiments.ml: Alcotest Astring_like Format List Printf Report Suite
