test/test_renaming.ml: Alcotest Closure Complex List Model Renaming Round_op Simplex Solvability Task Value
