test/test_speedup.ml: Alcotest Approx_agreement Closure Complex Consensus Frac Model Round_op Simplicial_map Solvability Speedup Task Value Vertex
