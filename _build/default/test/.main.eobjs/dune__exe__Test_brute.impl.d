test/test_brute.ml: Alcotest Approx_agreement Brute Combinatorics Complex Consensus Frac Hashtbl List Model Printf QCheck2 QCheck_alcotest Random Simplex Simplicial_map Solvability Task Value
