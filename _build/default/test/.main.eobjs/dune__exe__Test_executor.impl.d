test/test_executor.ml: Alcotest Executor List Protocol Schedule Sim_object Simplex Value
