test/test_task_algebra.ml: Alcotest Approx_agreement Closure Combinatorics Complex Consensus Frac List Model Round_op Simplex Solvability Task Task_algebra Value
