test/test_model.ml: Alcotest Complex List Model Printf Simplex Value Vertex
