test/test_schedule.ml: Alcotest List Model QCheck2 QCheck_alcotest Random Schedule
