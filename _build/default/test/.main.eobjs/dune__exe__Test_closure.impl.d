test/test_closure.ml: Alcotest Approx_agreement Closure Complex Consensus Frac List Model Printf Round_op Set_agreement Simplex Simplicial_map Task Value Vertex
