test/test_core.ml: Alcotest Approx_agreement Frac Speedup_theory Task
