test/test_protocol.ml: Alcotest Protocol Value
