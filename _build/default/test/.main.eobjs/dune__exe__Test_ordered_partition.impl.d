test/test_ordered_partition.ml: Alcotest Gen List Ordered_partition Printf QCheck2 QCheck_alcotest Stdlib
