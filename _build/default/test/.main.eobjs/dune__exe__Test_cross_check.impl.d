test/test_cross_check.ml: Alcotest Cross_check List Simplex Value
