test/test_affine.ml: Affine Alcotest Approx_agreement Closure Complex Frac List Model Printf Round_op Simplex Solvability Task Value Vertex
