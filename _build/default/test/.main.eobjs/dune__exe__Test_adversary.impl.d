test/test_adversary.ml: Aa_halving Adversary Alcotest Approx_agreement Frac List Model Protocol Schedule Value
