test/test_carrier_map.ml: Alcotest Approx_agreement Carrier_map Combinatorics Complex Consensus Frac List Simplex Simplicial_map Task Value Vertex
