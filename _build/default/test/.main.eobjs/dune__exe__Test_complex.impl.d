test/test_complex.ml: Alcotest Complex Gen List QCheck2 QCheck_alcotest Simplex Value Vertex
