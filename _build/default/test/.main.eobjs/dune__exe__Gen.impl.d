test/gen.ml: Complex Frac Gen List Ordered_partition QCheck2 Simplex Value
