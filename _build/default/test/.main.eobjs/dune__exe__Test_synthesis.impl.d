test/test_synthesis.ml: Adversary Alcotest Approx_agreement Complex Consensus Executor Frac List Model Protocol Schedule Synthesis Value
