(* Tests for the task combinators. *)

let aa = Approx_agreement.task ~n:2 ~m:2 ~eps:Frac.half
let cons = Consensus.binary ~n:2

let test_pairing () =
  let a = Simplex.of_list [ (1, Value.Int 1); (2, Value.Int 2) ] in
  let b = Simplex.of_list [ (1, Value.Int 3); (2, Value.Int 4) ] in
  let p = Task_algebra.pair_simplices a b in
  Alcotest.(check bool) "components recovered" true
    (Simplex.equal (Task_algebra.project 1 p) a
    && Simplex.equal (Task_algebra.project 2 p) b);
  let c = Simplex.of_list [ (3, Value.Int 0) ] in
  Alcotest.check_raises "mismatched colors"
    (Invalid_argument "Task_algebra.pair_simplices: color sets differ")
    (fun () -> ignore (Task_algebra.pair_simplices a c))

let test_product_delta () =
  let p = Task_algebra.product aa cons in
  let sigma =
    Task_algebra.pair_simplices
      (Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 1) ])
      (Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ])
  in
  let d = Task.delta p sigma in
  (* Component-wise legality of every facet. *)
  List.iter
    (fun f ->
      Alcotest.(check bool) "AA component legal" true
        (Complex.mem (Task_algebra.project 1 f)
           (Task.delta aa (Task_algebra.project 1 sigma)));
      Alcotest.(check bool) "consensus component legal" true
        (Complex.mem (Task_algebra.project 2 f)
           (Task.delta cons (Task_algebra.project 2 sigma))))
    (Complex.facets d);
  (* |Δ_product| = |Δ_1| · |Δ_2| on facets. *)
  Alcotest.(check int) "product facet count"
    (Complex.facet_count (Task.delta aa (Task_algebra.project 1 sigma))
    * Complex.facet_count (Task.delta cons (Task_algebra.project 2 sigma)))
    (Complex.facet_count d)

let test_product_inherits_hardness () =
  (* AA x consensus is unsolvable (the consensus component). *)
  let p = Task_algebra.product aa cons in
  Alcotest.(check bool) "product with consensus unsolvable" false
    (Solvability.is_solvable
       (Solvability.task_in_model Model.Immediate p ~rounds:1));
  (* AA x AA is solvable in one round. *)
  let p2 = Task_algebra.product aa aa in
  Alcotest.(check bool) "AA x AA solvable" true
    (Solvability.is_solvable
       (Solvability.task_in_model Model.Immediate p2 ~rounds:1))

let test_closure_of_product_contained () =
  (* CL(Π1 × Π2) ⊆ CL(Π1) × CL(Π2): projections of closure members
     are closure members. *)
  let op = Round_op.plain Model.Immediate in
  let p = Task_algebra.product aa cons in
  let sigma =
    Task_algebra.pair_simplices
      (Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 1) ])
      (Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ])
  in
  let d' = Closure.delta ~op p sigma in
  List.iter
    (fun tau ->
      Alcotest.(check bool) "AA projection in CL(AA)" true
        (Closure.tau_member ~op aa
           ~sigma:(Task_algebra.project 1 sigma)
           ~tau:(Task_algebra.project 1 tau));
      Alcotest.(check bool) "consensus projection in CL(consensus)" true
        (Closure.tau_member ~op cons
           ~sigma:(Task_algebra.project 2 sigma)
           ~tau:(Task_algebra.project 2 tau)))
    (Complex.facets d')

let test_relax () =
  let anything sigma =
    Complex.of_facets
      (Combinatorics.assignments (Simplex.ids sigma) [ Value.Int 0; Value.Int 1 ])
  in
  let r = Task_algebra.relax cons ~with_delta:anything ~name:"chaos" in
  Alcotest.(check string) "renamed" "chaos" r.Task.name;
  Alcotest.(check bool) "weaker spec is 0-round solvable" true
    (Solvability.is_solvable
       (Solvability.task_in_model Model.Immediate r ~rounds:0))

let suite =
  ( "task_algebra",
    [
      Alcotest.test_case "pairing/projection" `Quick test_pairing;
      Alcotest.test_case "product Δ" `Quick test_product_delta;
      Alcotest.test_case "product hardness" `Quick test_product_inherits_hardness;
      Alcotest.test_case "closure of product" `Quick test_closure_of_product_contained;
      Alcotest.test_case "relax" `Quick test_relax;
    ] )
