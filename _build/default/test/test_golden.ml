(* Golden regression numbers: the headline measurements of the
   reproduction, asserted in one place.  If any of these moves, either
   a model changed semantics or an experiment's scientific content
   regressed — both should be loud. *)

let sigma n =
  Simplex.of_list (List.init n (fun i -> (i + 1, Value.Int (i + 1))))

let facets model n = List.length (Model.one_round_facets model (sigma n))

let test_figure8_counts () =
  Alcotest.(check int) "IS n=3" 13 (facets Model.Immediate 3);
  Alcotest.(check int) "snapshot n=3" 19 (facets Model.Snapshot 3);
  Alcotest.(check int) "collect n=3" 25 (facets Model.Collect 3);
  Alcotest.(check int) "IS n=4" 75 (facets Model.Immediate 4);
  Alcotest.(check int) "snapshot n=4" 207 (facets Model.Snapshot 4);
  Alcotest.(check int) "collect n=4" 543 (facets Model.Collect 4)

let test_augmented_counts () =
  let unit_alpha = Augmented.alpha_const Value.Unit in
  Alcotest.(check int) "IS+T&S n=3 facets (Fig 5)" 18
    (List.length
       (Augmented.one_round_facets ~box:Black_box.test_and_set ~alpha:unit_alpha
          ~round:1 (sigma 3)));
  Alcotest.(check int) "IS+bincons n=3 facets (Fig 7)" 16
    (List.length
       (Augmented.one_round_facets ~box:Black_box.bin_consensus
          ~alpha:(Augmented.alpha_of_beta (fun i -> i > 1))
          ~round:1 (sigma 3)))

let test_solo_distances () =
  List.iter
    (fun (n, t, d) ->
      Alcotest.(check (option int))
        (Printf.sprintf "dist n=%d t=%d" n t)
        (Some d)
        (Classical.solo_distance Model.Immediate ~n ~rounds:t))
    [ (2, 1, 3); (2, 2, 9); (2, 3, 27); (3, 1, 2); (3, 2, 4); (3, 3, 8) ]

let test_closure_facet_counts () =
  (* The E17 headline: 65 / 101 / 125 facets. *)
  let m = 4 in
  let laa = Approx_agreement.liberal ~n:3 ~m ~eps:(Frac.make 1 m) in
  let sigma =
    Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ]
  in
  let count e =
    Complex.facet_count
      (Task.delta (Approx_agreement.liberal ~n:3 ~m ~eps:e) sigma)
  in
  Alcotest.(check int) "liberal 2eps facets" 65 (count Frac.half);
  Alcotest.(check int) "liberal 3eps facets" 101 (count (Frac.make 3 4));
  Alcotest.(check int) "liberal 1 facets" 125 (count Frac.one);
  Alcotest.(check int) "ID-only closure = 2eps" 65
    (Complex.facet_count
       (Closure.delta ~op:(Round_op.bin_consensus_beta (fun _ -> false)) laa sigma));
  Alcotest.(check int) "unrestricted closure = validity-only" 125
    (Complex.facet_count
       (Closure.delta_any
          ~ops:(Closure.bin_consensus_ops [ 1; 2; 3 ])
          ~name:"golden-any" laa sigma))

let test_set_agreement_closure_counts () =
  let t = Set_agreement.task ~n:3 ~k:2 ~values:[ Value.Int 0; Value.Int 1; Value.Int 2 ] in
  let rainbow = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1); (3, Value.Int 2) ] in
  Alcotest.(check int) "Δ facets" 21 (Complex.facet_count (Task.delta t rainbow));
  Alcotest.(check int) "Δ' facets" 27
    (Complex.facet_count (Closure.delta ~op:(Round_op.plain Model.Immediate) t rainbow))

let test_affine_counts () =
  Alcotest.(check int) "2-concurrency n=3" 12
    (List.length (Affine.k_concurrency 2 (sigma 3)));
  Alcotest.(check int) "2-solo n=3" 16 (List.length (Affine.d_solo 2 (sigma 3)))

let test_non_iterated_violations () =
  (* E18 headline at n=2: 5 of 70 raw interleavings violate. *)
  let spec = Aa_halving.spec ~m:4 ~rounds:2 in
  let inputs = [ (1, Value.frac 0 1); (2, Value.frac 1 1) ] in
  let task = Approx_agreement.task ~n:2 ~m:4 ~eps:(Frac.make 1 4) in
  let sg = Simplex.of_list inputs in
  let schedules = Non_iterated.exhaustive ~participants:[ 1; 2 ] ~rounds:2 in
  let bad =
    List.filter
      (fun s ->
        match Non_iterated.run spec ~inputs ~schedule:s with
        | [] -> false
        | outs -> not (Complex.mem (Simplex.of_list outs) (Task.delta task sg)))
      schedules
  in
  Alcotest.(check int) "70 interleavings" 70 (List.length schedules);
  Alcotest.(check int) "5 raw violations" 5 (List.length bad)

let test_homology_signatures () =
  Alcotest.(check (list int)) "P^1 IS n=3 ball" [ 1; 0; 0 ]
    (Homology.betti (Complex.of_facets (Model.one_round_facets Model.Immediate (sigma 3))));
  Alcotest.(check (list int)) "consensus outputs two components" [ 2; 0; 0 ]
    (Homology.betti (Task.outputs (Consensus.binary ~n:3)))

let suite =
  ( "golden",
    [
      Alcotest.test_case "Figure 8 facet counts" `Quick test_figure8_counts;
      Alcotest.test_case "augmented facet counts" `Quick test_augmented_counts;
      Alcotest.test_case "solo distances 3^t / 2^t" `Quick test_solo_distances;
      Alcotest.test_case "closure facet counts (E17)" `Quick test_closure_facet_counts;
      Alcotest.test_case "2-set closure counts (E14)" `Quick test_set_agreement_closure_counts;
      Alcotest.test_case "affine counts (E16)" `Quick test_affine_counts;
      Alcotest.test_case "non-iterated violations (E18)" `Quick test_non_iterated_violations;
      Alcotest.test_case "homology signatures (E15)" `Quick test_homology_signatures;
    ] )
