(* Tests for protocol synthesis from solver witnesses. *)

let aa13 = Approx_agreement.task ~n:2 ~m:3 ~eps:(Frac.make 1 3)

let inputs_all =
  Complex.all_simplices (Approx_agreement.binary_input_complex ~n:2)

let test_synthesize_and_validate () =
  match Synthesis.synthesize ~inputs:inputs_all Model.Immediate aa13 ~rounds:1 with
  | None -> Alcotest.fail "1-round (1/3)-AA must synthesize"
  | Some protocol ->
      Alcotest.(check int) "rounds carried" 1 protocol.Protocol.rounds;
      Alcotest.(check bool) "validates exhaustively" true
        (Synthesis.validate protocol aa13
           ~inputs:[ (1, Value.frac 0 1); (2, Value.frac 1 1) ]
           ~exhaustive:true)

let test_unsolvable_returns_none () =
  let cons = Consensus.binary ~n:2 in
  Alcotest.(check bool) "consensus does not synthesize" true
    (Synthesis.synthesize Model.Immediate cons ~rounds:1 = None)

let test_outside_domain_raises () =
  match Synthesis.synthesize ~inputs:inputs_all Model.Immediate aa13 ~rounds:1 with
  | None -> Alcotest.fail "should synthesize"
  | Some protocol ->
      (* Run it on inputs the solver never saw: decide must raise. *)
      Alcotest.(check bool) "foreign input rejected" true
        (match
           Executor.run protocol
             ~inputs:[ (1, Value.frac 1 3); (2, Value.frac 2 3) ]
             ~schedule:[ Schedule.Is_round [ [ 1; 2 ] ] ]
         with
        | exception Invalid_argument _ -> true
        | _ -> false)

let test_synthesized_matches_task_semantics () =
  (* Outputs of the synthesized protocol on a specific schedule satisfy
     both range and precision. *)
  match Synthesis.synthesize ~inputs:inputs_all Model.Immediate aa13 ~rounds:1 with
  | None -> Alcotest.fail "should synthesize"
  | Some protocol ->
      List.iter
        (fun schedule ->
          let result =
            Executor.run protocol
              ~inputs:[ (1, Value.frac 0 1); (2, Value.frac 1 1) ]
              ~schedule
          in
          let out = Executor.outputs_simplex result in
          Alcotest.(check bool) "within eps" true
            Frac.(Approx_agreement.spread out <= Frac.make 1 3);
          Alcotest.(check bool) "in range" true
            (Approx_agreement.in_range ~lo:Frac.zero ~hi:Frac.one out))
        (Adversary.exhaustive_is ~boxed:false ~participants:[ 1; 2 ] ~rounds:1)

let test_two_round_synthesis () =
  let aa19 = Approx_agreement.task ~n:2 ~m:9 ~eps:(Frac.make 1 9) in
  match Synthesis.synthesize ~inputs:inputs_all Model.Immediate aa19 ~rounds:2 with
  | None -> Alcotest.fail "2-round (1/9)-AA must synthesize"
  | Some protocol ->
      Alcotest.(check bool) "validates" true
        (Synthesis.validate protocol aa19
           ~inputs:[ (1, Value.frac 0 1); (2, Value.frac 1 1) ]
           ~exhaustive:true)

let suite =
  ( "synthesis",
    [
      Alcotest.test_case "synthesize + validate" `Quick test_synthesize_and_validate;
      Alcotest.test_case "unsolvable gives None" `Quick test_unsolvable_returns_none;
      Alcotest.test_case "foreign inputs raise" `Quick test_outside_domain_raises;
      Alcotest.test_case "task semantics" `Quick test_synthesized_matches_task_semantics;
      Alcotest.test_case "two-round synthesis" `Quick test_two_round_synthesis;
    ] )
