(* Tests for the Speedup_theory facade. *)

let test_consensus_story () =
  let t = Speedup_theory.consensus ~n:2 in
  Alcotest.(check bool) "fixed point" true (Speedup_theory.is_fixed_point t);
  Alcotest.(check bool) "not 0-round solvable" false
    (Speedup_theory.solvable ~rounds:0 t);
  Alcotest.(check bool) "not 2-round solvable" false
    (Speedup_theory.solvable ~rounds:2 t);
  Alcotest.(check bool) "2-proc solvable with test&set" true
    (Speedup_theory.solvable ~rounds:1 ~test_and_set:true t)

let test_min_rounds () =
  let aa = Speedup_theory.approximate_agreement ~n:2 ~m:9 ~eps:(Frac.make 1 9) in
  Alcotest.(check bool) "exact 2" true
    (Speedup_theory.min_rounds ~binary_inputs:true aa = Speedup_theory.Exact 2);
  let cons = Speedup_theory.consensus ~n:2 in
  Alcotest.(check bool) "consensus hits the cap" true
    (Speedup_theory.min_rounds ~max_rounds:1 cons = Speedup_theory.At_least 2)

let test_closure_facade () =
  let t = Speedup_theory.consensus ~n:2 in
  let cl = Speedup_theory.closure t in
  Alcotest.(check bool) "closure of a fixed point has the same Δ" true
    (Task.delta_equal_on cl t (Task.input_simplices t))

let test_check_speedup () =
  let aa = Speedup_theory.approximate_agreement ~n:2 ~m:3 ~eps:(Frac.make 1 3) in
  Alcotest.(check bool) "holds" true (Speedup_theory.check_speedup ~rounds:1 aa)

let test_lower_bound_by_closure () =
  let pow3 k = int_of_float (3. ** float_of_int k) in
  let reference k =
    Approx_agreement.task ~n:2 ~m:9 ~eps:(Frac.make (min 9 (pow3 k)) 9)
  in
  let aa = reference 0 in
  Alcotest.(check int) "chain length 2" 2
    (Speedup_theory.lower_bound_by_closure aa ~reference ~max:5);
  (* A wrong reference chain is rejected. *)
  let bad k = Approx_agreement.task ~n:2 ~m:9 ~eps:(Frac.make (min 9 (k + 1)) 9) in
  Alcotest.(check bool) "mismatch detected" true
    (match Speedup_theory.lower_bound_by_closure aa ~reference:bad ~max:5 with
    | exception Failure _ -> true
    | _ -> false)

let suite =
  ( "speedup_theory",
    [
      Alcotest.test_case "consensus story" `Quick test_consensus_story;
      Alcotest.test_case "min_rounds" `Quick test_min_rounds;
      Alcotest.test_case "closure facade" `Quick test_closure_facade;
      Alcotest.test_case "check_speedup" `Quick test_check_speedup;
      Alcotest.test_case "lower bound by closure" `Quick test_lower_bound_by_closure;
    ] )
