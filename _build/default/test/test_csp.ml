(* Tests for the table-constraint CSP engine. *)

let solve ?node_limit p =
  match Csp.solve ?node_limit p with
  | Csp.Sat a -> `Sat (Array.to_list a)
  | Csp.Unsat -> `Unsat
  | Csp.Unknown -> `Unknown

let test_trivial_sat () =
  let p = Csp.create ~num_vars:2 ~candidate_counts:[| 2; 2 |] in
  (match solve p with
  | `Sat [ _; _ ] -> ()
  | _ -> Alcotest.fail "unconstrained problem should be Sat");
  ()

let test_equality_chain () =
  (* x0 = x1 = x2, all binary, x0 pinned to 1. *)
  let p = Csp.create ~num_vars:3 ~candidate_counts:[| 2; 2; 2 |] in
  let eq = [| [| 0; 0 |]; [| 1; 1 |] |] in
  Csp.add_table_constraint p ~scope:[| 0; 1 |] ~tuples:eq;
  Csp.add_table_constraint p ~scope:[| 1; 2 |] ~tuples:eq;
  Csp.pin p ~var:0 ~value:1;
  Alcotest.(check bool) "propagates to all ones" true
    (solve p = `Sat [ 1; 1; 1 ])

let test_unsat_by_conflict () =
  (* x0 = x1 and x0 ≠ x1 simultaneously. *)
  let p = Csp.create ~num_vars:2 ~candidate_counts:[| 2; 2 |] in
  Csp.add_table_constraint p ~scope:[| 0; 1 |]
    ~tuples:[| [| 0; 0 |]; [| 1; 1 |] |];
  Csp.add_table_constraint p ~scope:[| 0; 1 |]
    ~tuples:[| [| 0; 1 |]; [| 1; 0 |] |];
  Alcotest.(check bool) "unsat" true (solve p = `Unsat)

let test_empty_table () =
  let p = Csp.create ~num_vars:1 ~candidate_counts:[| 3 |] in
  Csp.add_table_constraint p ~scope:[| 0 |] ~tuples:[||];
  Alcotest.(check bool) "empty table is unsat" true (solve p = `Unsat)

let test_empty_domain () =
  let p = Csp.create ~num_vars:2 ~candidate_counts:[| 0; 2 |] in
  Alcotest.(check bool) "empty domain unsat" true (solve p = `Unsat)

let test_conflicting_pins () =
  let p = Csp.create ~num_vars:1 ~candidate_counts:[| 2 |] in
  Csp.pin p ~var:0 ~value:0;
  Csp.pin p ~var:0 ~value:1;
  Alcotest.(check bool) "conflicting pins unsat" true (solve p = `Unsat)

let test_graph_coloring () =
  (* 2-coloring: a triangle is unsat, a path is sat. *)
  let neq = [| [| 0; 1 |]; [| 1; 0 |] |] in
  let triangle = Csp.create ~num_vars:3 ~candidate_counts:[| 2; 2; 2 |] in
  Csp.add_table_constraint triangle ~scope:[| 0; 1 |] ~tuples:neq;
  Csp.add_table_constraint triangle ~scope:[| 1; 2 |] ~tuples:neq;
  Csp.add_table_constraint triangle ~scope:[| 0; 2 |] ~tuples:neq;
  Alcotest.(check bool) "odd cycle not 2-colorable" true (solve triangle = `Unsat);
  let path = Csp.create ~num_vars:3 ~candidate_counts:[| 2; 2; 2 |] in
  Csp.add_table_constraint path ~scope:[| 0; 1 |] ~tuples:neq;
  Csp.add_table_constraint path ~scope:[| 1; 2 |] ~tuples:neq;
  (match solve path with
  | `Sat [ a; b; c ] ->
      Alcotest.(check bool) "proper coloring" true (a <> b && b <> c)
  | _ -> Alcotest.fail "path should be 2-colorable")

let test_ternary_constraint () =
  (* x0 + x1 + x2 = 1 over binaries, via its table. *)
  let p = Csp.create ~num_vars:3 ~candidate_counts:[| 2; 2; 2 |] in
  Csp.add_table_constraint p ~scope:[| 0; 1; 2 |]
    ~tuples:[| [| 1; 0; 0 |]; [| 0; 1; 0 |]; [| 0; 0; 1 |] |];
  Csp.pin p ~var:2 ~value:1;
  Alcotest.(check bool) "forced assignment" true (solve p = `Sat [ 0; 0; 1 ])

let test_node_limit () =
  (* A pigeonhole-flavoured instance that requires search; with a
     1-node budget the solver must give up cleanly. *)
  let n = 6 in
  let p = Csp.create ~num_vars:n ~candidate_counts:(Array.make n n) in
  let neq =
    Array.of_list
      (List.concat_map
         (fun a ->
           List.filter_map
             (fun b -> if a <> b then Some [| a; b |] else None)
             (List.init n Fun.id))
         (List.init n Fun.id))
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      Csp.add_table_constraint p ~scope:[| i; j |] ~tuples:neq
    done
  done;
  (match solve ~node_limit:1 p with
  | `Unknown -> ()
  | `Sat _ -> ()  (* propagation alone may already solve it *)
  | `Unsat -> Alcotest.fail "all-different over n values is satisfiable");
  (* With a real budget it is satisfiable. *)
  match solve p with
  | `Sat assignment ->
      let distinct = List.sort_uniq Stdlib.compare assignment in
      Alcotest.(check int) "all different" n (List.length distinct)
  | _ -> Alcotest.fail "should be satisfiable"

let test_reusable_solver () =
  (* Solving twice returns the same verdict: domains are restored. *)
  let p = Csp.create ~num_vars:2 ~candidate_counts:[| 2; 2 |] in
  Csp.add_table_constraint p ~scope:[| 0; 1 |]
    ~tuples:[| [| 0; 1 |]; [| 1; 0 |] |];
  let first = solve p in
  let second = solve p in
  Alcotest.(check bool) "idempotent" true (first = second)

let test_stats () =
  let p = Csp.create ~num_vars:2 ~candidate_counts:[| 2; 2 |] in
  Alcotest.(check int) "no nodes before solve" 0 (Csp.last_stats p).Csp.nodes;
  Csp.add_table_constraint p ~scope:[| 0; 1 |]
    ~tuples:[| [| 0; 1 |]; [| 1; 0 |] |];
  ignore (Csp.solve p);
  let s = Csp.last_stats p in
  Alcotest.(check bool) "nodes counted" true (s.Csp.nodes >= 1);
  Alcotest.(check bool) "revisions counted" true (s.Csp.revisions >= 1)

let test_arity_mismatch () =
  let p = Csp.create ~num_vars:2 ~candidate_counts:[| 2; 2 |] in
  Alcotest.check_raises "tuple arity checked"
    (Invalid_argument "Csp.add_table_constraint: tuple arity mismatch")
    (fun () -> Csp.add_table_constraint p ~scope:[| 0; 1 |] ~tuples:[| [| 0 |] |])

let suite =
  ( "csp",
    [
      Alcotest.test_case "trivial sat" `Quick test_trivial_sat;
      Alcotest.test_case "equality chain propagation" `Quick test_equality_chain;
      Alcotest.test_case "unsat by conflict" `Quick test_unsat_by_conflict;
      Alcotest.test_case "empty table" `Quick test_empty_table;
      Alcotest.test_case "empty domain" `Quick test_empty_domain;
      Alcotest.test_case "conflicting pins" `Quick test_conflicting_pins;
      Alcotest.test_case "graph coloring" `Quick test_graph_coloring;
      Alcotest.test_case "ternary table" `Quick test_ternary_constraint;
      Alcotest.test_case "node limit" `Quick test_node_limit;
      Alcotest.test_case "solver reuse" `Quick test_reusable_solver;
      Alcotest.test_case "statistics" `Quick test_stats;
      Alcotest.test_case "arity checking" `Quick test_arity_mismatch;
    ] )
