(* Tests for schedule suites, crash injection, and the conformance
   checker. *)

let test_exhaustive_is () =
  Alcotest.(check int) "3 procs, 1 round" 13
    (List.length (Adversary.exhaustive_is ~boxed:false ~participants:[ 1; 2; 3 ] ~rounds:1));
  Alcotest.(check int) "2 procs, 2 rounds boxed" 16
    (List.length (Adversary.exhaustive_is ~boxed:true ~participants:[ 1; 2 ] ~rounds:2))

let test_random_suite_deterministic () =
  let mk () =
    Adversary.random_suite ~model:Model.Immediate ~boxed:false
      ~participants:[ 1; 2; 3 ] ~rounds:2 ~seed:5 ~count:20
  in
  Alcotest.(check bool) "same seed, same schedules" true (mk () = mk ());
  let other =
    Adversary.random_suite ~model:Model.Immediate ~boxed:false
      ~participants:[ 1; 2; 3 ] ~rounds:2 ~seed:6 ~count:20
  in
  Alcotest.(check bool) "different seed differs" true (mk () <> other)

let test_with_crash_is () =
  let s = [ Schedule.Is_round [ [ 1; 2 ]; [ 3 ] ]; Schedule.Is_round [ [ 1; 2; 3 ] ] ] in
  match Adversary.with_crash s ~proc:2 ~round:2 with
  | [ Schedule.Is_round r1; Schedule.Is_round r2 ] ->
      Alcotest.(check bool) "round 1 intact" true (r1 = [ [ 1; 2 ]; [ 3 ] ]);
      Alcotest.(check bool) "round 2 without 2" true (r2 = [ [ 1; 3 ] ])
  | _ -> Alcotest.fail "unexpected schedule shape"

let test_with_crash_steps () =
  let s =
    [ Schedule.Step_round
        [ Schedule.Write 1; Schedule.Write 2; Schedule.Read (1, 1);
          Schedule.Read (1, 2); Schedule.Read (2, 1); Schedule.Read (2, 2) ] ]
  in
  match Adversary.with_crash s ~proc:1 ~round:1 with
  | [ Schedule.Step_round steps ] ->
      (* 1 still writes but no longer reads. *)
      Alcotest.(check bool) "write kept" true (List.mem (Schedule.Write 1) steps);
      Alcotest.(check bool) "reads dropped" false
        (List.exists (function Schedule.Read (1, _) -> true | _ -> false) steps)
  | _ -> Alcotest.fail "unexpected schedule shape"

let test_check_task_catches_bugs () =
  (* A deliberately wrong AA protocol: always output your own input.
     The checker must flag it. *)
  let bad =
    Protocol.make ~name:"broken-aa" ~rounds:1
      ~decide:(fun i view ->
        match Value.view_find i view with Some x -> x | None -> Value.Unit)
      ()
  in
  let task = Approx_agreement.task ~n:2 ~m:2 ~eps:Frac.half in
  let failures =
    Adversary.check_task bad task
      ~inputs:[ (1, Value.frac 0 1); (2, Value.frac 1 1) ]
      ~schedules:(Adversary.exhaustive_is ~boxed:false ~participants:[ 1; 2 ] ~rounds:1)
  in
  Alcotest.(check bool) "violations reported" true (failures <> []);
  (* And a correct protocol passes. *)
  let good = Aa_halving.protocol ~m:2 ~eps:Frac.half in
  let ok =
    Adversary.check_task good task
      ~inputs:[ (1, Value.frac 0 1); (2, Value.frac 1 1) ]
      ~schedules:(Adversary.exhaustive_is ~boxed:false ~participants:[ 1; 2 ] ~rounds:1)
  in
  Alcotest.(check int) "no violations" 0 (List.length ok)

let test_check_task_with_crashes () =
  let good = Aa_halving.protocol ~m:2 ~eps:Frac.half in
  let task = Approx_agreement.task ~n:2 ~m:2 ~eps:Frac.half in
  let schedules =
    List.map
      (fun s -> Adversary.with_crash s ~proc:1 ~round:1)
      (Adversary.exhaustive_is ~boxed:false ~participants:[ 1; 2 ] ~rounds:1)
  in
  Alcotest.(check int) "wait-free under crashes" 0
    (List.length
       (Adversary.check_task good task
          ~inputs:[ (1, Value.frac 0 1); (2, Value.frac 1 1) ]
          ~schedules))

let suite =
  ( "adversary",
    [
      Alcotest.test_case "exhaustive IS counts" `Quick test_exhaustive_is;
      Alcotest.test_case "random suites deterministic" `Quick test_random_suite_deterministic;
      Alcotest.test_case "crash in IS rounds" `Quick test_with_crash_is;
      Alcotest.test_case "crash in step rounds" `Quick test_with_crash_steps;
      Alcotest.test_case "checker catches bugs" `Quick test_check_task_catches_bugs;
      Alcotest.test_case "checker under crashes" `Quick test_check_task_with_crashes;
    ] )
