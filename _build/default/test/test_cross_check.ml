(* Tests for the simulator-vs-topology cross-validation. *)

let sigma n =
  Simplex.of_list (List.init n (fun i -> (i + 1, Value.Int (i + 1))))

let check_matched name (r : Cross_check.report) =
  Alcotest.(check bool) name true r.Cross_check.matched;
  Alcotest.(check int)
    (name ^ " sizes agree")
    r.Cross_check.combinatorial r.Cross_check.simulated

let test_immediate () =
  check_matched "IS n=2" (Cross_check.immediate (sigma 2));
  check_matched "IS n=3" (Cross_check.immediate (sigma 3))

let test_immediate_iterated () =
  check_matched "IS P^2 n=2" (Cross_check.immediate_iterated ~rounds:2 (sigma 2));
  check_matched "IS P^2 n=3" (Cross_check.immediate_iterated ~rounds:2 (sigma 3))

let test_snapshot () =
  check_matched "snapshot n=2" (Cross_check.snapshot (sigma 2));
  check_matched "snapshot n=3" (Cross_check.snapshot (sigma 3))

let test_collect () =
  check_matched "collect n=2 exhaustive" (Cross_check.collect_exhaustive (sigma 2));
  check_matched "collect n=3 constructive"
    (Cross_check.collect_constructive ~samples:300 (sigma 3))

let test_augmented () =
  check_matched "tas n=3" (Cross_check.immediate_test_and_set (sigma 3));
  check_matched "bin-consensus mixed β"
    (Cross_check.immediate_bin_consensus ~beta:(fun i -> i = 2) (sigma 3));
  check_matched "bin-consensus constant β"
    (Cross_check.immediate_bin_consensus ~beta:(fun _ -> true) (sigma 3))

let suite =
  ( "cross_check",
    [
      Alcotest.test_case "immediate snapshot" `Quick test_immediate;
      Alcotest.test_case "iterated immediate snapshot" `Quick test_immediate_iterated;
      Alcotest.test_case "snapshot" `Quick test_snapshot;
      Alcotest.test_case "collect" `Quick test_collect;
      Alcotest.test_case "augmented models" `Quick test_augmented;
    ] )
