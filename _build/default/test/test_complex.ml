(* Tests for facet-based chromatic complexes. *)

let complex = Alcotest.testable Complex.pp Complex.equal

let tri =
  Simplex.of_list [ (1, Value.Int 1); (2, Value.Int 2); (3, Value.Int 3) ]

let edge12 = Simplex.proj [ 1; 2 ] tri
let edge23 = Simplex.proj [ 2; 3 ] tri
let v1 = Simplex.proj [ 1 ] tri

let test_maximalize () =
  (* Non-maximal simplices are absorbed by their cofaces. *)
  let c = Complex.of_facets [ edge12; tri; v1 ] in
  Alcotest.(check int) "single facet" 1 (Complex.facet_count c);
  Alcotest.(check complex) "same as of_simplex" (Complex.of_simplex tri) c

let test_membership () =
  let c = Complex.of_simplex tri in
  Alcotest.(check bool) "facet in" true (Complex.mem tri c);
  Alcotest.(check bool) "face in" true (Complex.mem edge23 c);
  Alcotest.(check bool) "vertex in" true (Complex.mem v1 c);
  let foreign = Simplex.of_list [ (1, Value.Int 99) ] in
  Alcotest.(check bool) "foreign out" false (Complex.mem foreign c);
  Alcotest.(check bool) "mem_vertex" true
    (Complex.mem_vertex (Vertex.make 2 (Value.Int 2)) c)

let test_counts () =
  let c = Complex.of_simplex tri in
  Alcotest.(check int) "vertices" 3 (Complex.vertex_count c);
  Alcotest.(check int) "simplices 2^3-1" 7 (Complex.simplex_count c);
  Alcotest.(check int) "dim" 2 (Complex.dim c);
  Alcotest.(check bool) "pure" true (Complex.is_pure c);
  let mixed = Complex.of_facets [ edge12; Simplex.of_list [ (4, Value.Int 4) ] ] in
  Alcotest.(check bool) "not pure" false (Complex.is_pure mixed);
  Alcotest.(check bool) "empty" true (Complex.is_empty Complex.empty);
  Alcotest.check_raises "dim of empty" (Invalid_argument "Complex.dim: empty complex")
    (fun () -> ignore (Complex.dim Complex.empty))

let test_union_proj_skeleton () =
  let c = Complex.union (Complex.of_simplex edge12) (Complex.of_simplex edge23) in
  Alcotest.(check int) "union facets" 2 (Complex.facet_count c);
  let p = Complex.proj [ 1; 2 ] (Complex.of_simplex tri) in
  Alcotest.(check complex) "proj induces face" (Complex.of_simplex edge12) p;
  let sk = Complex.skeleton 1 (Complex.of_simplex tri) in
  Alcotest.(check int) "1-skeleton facets = 3 edges" 3 (Complex.facet_count sk);
  Alcotest.(check int) "1-skeleton dim" 1 (Complex.dim sk);
  Alcotest.(check complex) "skeleton above dim = id"
    (Complex.of_simplex tri)
    (Complex.skeleton 5 (Complex.of_simplex tri))

let test_simplices_with_ids () =
  let c = Complex.union (Complex.of_simplex tri)
      (Complex.of_simplex (Simplex.of_list [ (1, Value.Int 7); (2, Value.Int 8) ]))
  in
  let pairs = Complex.simplices_with_ids [ 1; 2 ] c in
  Alcotest.(check int) "two 12-colored simplices" 2 (List.length pairs);
  let all3 = Complex.simplices_with_ids [ 1; 2; 3 ] c in
  Alcotest.(check int) "one 123-colored simplex" 1 (List.length all3)

let test_colors_and_vertices_of_color () =
  let c = Complex.of_simplex tri in
  Alcotest.(check (list int)) "colors" [ 1; 2; 3 ] (Complex.colors c);
  Alcotest.(check int) "one vertex of color 2" 1
    (List.length (Complex.vertices_of_color 2 c))

let test_map () =
  let f v = Vertex.make (Vertex.color v) (Value.Int 0) in
  let image = Complex.map f (Complex.of_simplex tri) in
  Alcotest.(check int) "image single facet" 1 (Complex.facet_count image);
  Alcotest.(check int) "image vertices collapse per color" 3
    (Complex.vertex_count image)

let test_subcomplex () =
  let c = Complex.of_simplex tri in
  Alcotest.(check bool) "face complex included" true
    (Complex.subcomplex (Complex.of_simplex edge12) c);
  Alcotest.(check bool) "not reverse" false
    (Complex.subcomplex c (Complex.of_simplex edge12));
  Alcotest.(check bool) "empty included" true (Complex.subcomplex Complex.empty c)

let prop_mem_downward_closed =
  QCheck2.Test.make ~name:"membership downward closed" ~count:150
    (Gen.complex ()) (fun c ->
      List.for_all
        (fun facet ->
          List.for_all (fun f -> Complex.mem f c) (Simplex.faces facet))
        (Complex.facets c))

let prop_facets_maximal =
  QCheck2.Test.make ~name:"no facet contains another" ~count:150
    (Gen.complex ()) (fun c ->
      let fs = Complex.facets c in
      List.for_all
        (fun a ->
          List.for_all
            (fun b -> Simplex.equal a b || not (Simplex.subset a b))
            fs)
        fs)

let prop_union_monotone =
  QCheck2.Test.make ~name:"union contains both" ~count:150
    QCheck2.Gen.(pair (Gen.complex ()) (Gen.complex ()))
    (fun (a, b) ->
      let u = Complex.union a b in
      Complex.subcomplex a u && Complex.subcomplex b u)

let prop_proj_subcomplex =
  QCheck2.Test.make ~name:"projection is a subcomplex" ~count:150
    (Gen.complex ()) (fun c ->
      Complex.subcomplex (Complex.proj [ 1; 2 ] c) c)

let suite =
  ( "complex",
    [
      Alcotest.test_case "maximalization" `Quick test_maximalize;
      Alcotest.test_case "membership" `Quick test_membership;
      Alcotest.test_case "counts" `Quick test_counts;
      Alcotest.test_case "union/proj/skeleton" `Quick test_union_proj_skeleton;
      Alcotest.test_case "simplices_with_ids" `Quick test_simplices_with_ids;
      Alcotest.test_case "colors" `Quick test_colors_and_vertices_of_color;
      Alcotest.test_case "simplicial image" `Quick test_map;
      Alcotest.test_case "subcomplex" `Quick test_subcomplex;
      QCheck_alcotest.to_alcotest prop_mem_downward_closed;
      QCheck_alcotest.to_alcotest prop_facets_maximal;
      QCheck_alcotest.to_alcotest prop_union_monotone;
      QCheck_alcotest.to_alcotest prop_proj_subcomplex;
    ] )
