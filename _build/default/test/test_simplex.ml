(* Tests for chromatic simplices. *)

let simplex = Alcotest.testable Simplex.pp Simplex.equal
let vertex = Alcotest.testable Vertex.pp Vertex.equal

let s123 =
  Simplex.of_list [ (1, Value.Int 10); (2, Value.Int 20); (3, Value.Int 30) ]

let test_construction () =
  let unordered =
    Simplex.of_vertices
      [ Vertex.make 3 (Value.Int 30); Vertex.make 1 (Value.Int 10);
        Vertex.make 2 (Value.Int 20) ]
  in
  Alcotest.(check simplex) "sorted by color" s123 unordered;
  Alcotest.(check (list int)) "ids" [ 1; 2; 3 ] (Simplex.ids s123);
  Alcotest.(check int) "dim" 2 (Simplex.dim s123);
  Alcotest.(check int) "card" 3 (Simplex.card s123);
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Simplex.of_vertices: empty") (fun () ->
      ignore (Simplex.of_vertices []));
  Alcotest.check_raises "repeated color rejected"
    (Invalid_argument "Simplex.of_vertices: repeated color") (fun () ->
      ignore (Simplex.of_list [ (1, Value.Int 0); (1, Value.Int 1) ]))

let test_lookup () =
  Alcotest.(check vertex) "find" (Vertex.make 2 (Value.Int 20)) (Simplex.find 2 s123);
  Alcotest.(check bool) "mem_color" true (Simplex.mem_color 3 s123);
  Alcotest.(check bool) "not mem_color" false (Simplex.mem_color 4 s123);
  Alcotest.check_raises "find absent" Not_found (fun () ->
      ignore (Simplex.find 9 s123))

let test_proj () =
  let p = Simplex.proj [ 1; 3 ] s123 in
  Alcotest.(check (list int)) "projected ids" [ 1; 3 ] (Simplex.ids p);
  Alcotest.(check simplex) "proj to all = id" s123 (Simplex.proj [ 1; 2; 3 ] s123);
  Alcotest.check_raises "empty projection"
    (Invalid_argument "Simplex.proj: empty projection") (fun () ->
      ignore (Simplex.proj [ 7 ] s123))

let test_faces () =
  Alcotest.(check int) "2^3 - 1 faces" 7 (List.length (Simplex.faces s123));
  Alcotest.(check int) "proper faces" 6 (List.length (Simplex.proper_faces s123));
  Alcotest.(check int) "boundary" 3 (List.length (Simplex.boundary s123));
  Alcotest.(check (list (list int))) "boundary ids"
    [ [ 2; 3 ]; [ 1; 3 ]; [ 1; 2 ] ]
    (List.map Simplex.ids (Simplex.boundary s123));
  let v = Simplex.of_list [ (1, Value.Int 1) ] in
  Alcotest.(check int) "vertex has no boundary" 0 (List.length (Simplex.boundary v))

let test_subset_union () =
  let face = Simplex.proj [ 1; 2 ] s123 in
  Alcotest.(check bool) "face subset" true (Simplex.subset face s123);
  Alcotest.(check bool) "not superset" false (Simplex.subset s123 face);
  let other = Simplex.of_list [ (3, Value.Int 30) ] in
  Alcotest.(check simplex) "union rebuilds" s123 (Simplex.union face other);
  let clash = Simplex.of_list [ (1, Value.Int 99) ] in
  Alcotest.check_raises "conflicting union"
    (Invalid_argument "Simplex.union: conflicting colors") (fun () ->
      ignore (Simplex.union face clash))

let test_map_values_and_view () =
  let doubled = Simplex.map_values (fun _ v ->
      match v with Value.Int n -> Value.Int (2 * n) | other -> other) s123 in
  Alcotest.(check simplex) "map_values"
    (Simplex.of_list [ (1, Value.Int 20); (2, Value.Int 40); (3, Value.Int 60) ])
    doubled;
  Alcotest.(check (list int)) "as_view ids" [ 1; 2; 3 ]
    (Value.view_ids (Simplex.as_view s123))

let test_chromatic_set () =
  Alcotest.(check bool) "distinct colors" true
    (Simplex.is_chromatic_set
       [ Vertex.make 1 Value.Unit; Vertex.make 2 Value.Unit ]);
  Alcotest.(check bool) "repeated colors" false
    (Simplex.is_chromatic_set
       [ Vertex.make 1 Value.Unit; Vertex.make 1 (Value.Int 3) ])

let prop_faces_are_subsets =
  QCheck2.Test.make ~name:"every face is a subset" ~count:200
    (Gen.simplex ()) (fun s ->
      List.for_all (fun f -> Simplex.subset f s) (Simplex.faces s))

let prop_faces_count =
  QCheck2.Test.make ~name:"|faces| = 2^card - 1" ~count:200 (Gen.simplex ())
    (fun s -> List.length (Simplex.faces s) = (1 lsl Simplex.card s) - 1)

let prop_subset_transitive =
  QCheck2.Test.make ~name:"subset transitive via faces" ~count:100
    (Gen.simplex ()) (fun s ->
      List.for_all
        (fun f -> List.for_all (fun g -> Simplex.subset g s) (Simplex.faces f))
        (Simplex.faces s))

let suite =
  ( "simplex",
    [
      Alcotest.test_case "construction" `Quick test_construction;
      Alcotest.test_case "lookup" `Quick test_lookup;
      Alcotest.test_case "projection" `Quick test_proj;
      Alcotest.test_case "faces" `Quick test_faces;
      Alcotest.test_case "subset and union" `Quick test_subset_union;
      Alcotest.test_case "map_values / as_view" `Quick test_map_values_and_view;
      Alcotest.test_case "chromatic sets" `Quick test_chromatic_set;
      QCheck_alcotest.to_alcotest prop_faces_are_subsets;
      QCheck_alcotest.to_alcotest prop_faces_count;
      QCheck_alcotest.to_alcotest prop_subset_transitive;
    ] )
