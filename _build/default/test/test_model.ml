(* Tests for the one-round operators Ξ₁ and iterated protocol
   complexes (Section 2, Appendix A.3.4). *)

let sigma3 =
  Simplex.of_list [ (1, Value.Int 1); (2, Value.Int 2); (3, Value.Int 3) ]

let sigma2 = Simplex.proj [ 1; 2 ] sigma3

let test_facet_counts () =
  let count m s = List.length (Model.one_round_facets m s) in
  Alcotest.(check int) "IS n=2" 3 (count Model.Immediate sigma2);
  Alcotest.(check int) "snapshot n=2" 3 (count Model.Snapshot sigma2);
  Alcotest.(check int) "collect n=2" 3 (count Model.Collect sigma2);
  Alcotest.(check int) "IS n=3 (Fig 8b)" 13 (count Model.Immediate sigma3);
  Alcotest.(check int) "snapshot n=3 (Fig 8b+c)" 19 (count Model.Snapshot sigma3);
  Alcotest.(check int) "collect n=3 (Fig 8b+c+d)" 25 (count Model.Collect sigma3)

let test_subdivision_vertex_count () =
  (* The chromatic subdivision of an (n-1)-simplex has one vertex per
     (process, view) pair: n * 2^(n-1). *)
  let c = Complex.of_facets (Model.one_round_facets Model.Immediate sigma3) in
  Alcotest.(check int) "12 vertices" 12 (Complex.vertex_count c);
  Alcotest.(check bool) "pure of dim 2" true
    (Complex.is_pure c && Complex.dim c = 2)

(* The defining property of immediate snapshot views (Section 2.2):
   for all i, j: j ∈ V_i or i ∈ V_j; and j ∈ V_i implies V_j ⊆ V_i. *)
let is_view_property facet =
  let views =
    List.map
      (fun v -> (Vertex.color v, Value.view_ids (Vertex.value v)))
      (Simplex.vertices facet)
  in
  List.for_all
    (fun (i, vi) ->
      List.for_all
        (fun (j, vj) ->
          (List.mem j vi || List.mem i vj)
          && ((not (List.mem j vi))
             || List.for_all (fun x -> List.mem x vi) vj))
        views)
    views

let test_is_view_property () =
  Alcotest.(check bool) "IS facets satisfy the containment property" true
    (List.for_all is_view_property (Model.one_round_facets Model.Immediate sigma3));
  (* Some collect facet must violate it (the models differ). *)
  Alcotest.(check bool) "some collect facet violates it" true
    (List.exists
       (fun f -> not (is_view_property f))
       (Model.one_round_facets Model.Collect sigma3))

let test_containments () =
  let complex_of m = Complex.of_facets (Model.one_round_facets m sigma3) in
  Alcotest.(check bool) "IS ⊆ snapshot" true
    (Complex.subcomplex (complex_of Model.Immediate) (complex_of Model.Snapshot));
  Alcotest.(check bool) "snapshot ⊆ collect" true
    (Complex.subcomplex (complex_of Model.Snapshot) (complex_of Model.Collect))

let test_protocol_iteration () =
  Alcotest.(check int) "P^0 = sigma" 1
    (Complex.facet_count (Model.protocol_complex Model.Immediate sigma3 0));
  Alcotest.(check int) "P^2 facets = 13^2" 169
    (Complex.facet_count (Model.protocol_complex Model.Immediate sigma3 2));
  Alcotest.(check int) "P^3 facets = 27 (n=2)" 27
    (Complex.facet_count (Model.protocol_complex Model.Immediate sigma2 3));
  Alcotest.check_raises "negative rounds"
    (Invalid_argument "Model.protocol_complex: negative round count") (fun () ->
      ignore (Model.protocol_complex Model.Immediate sigma3 (-1)))

let test_faces_are_subcomplexes () =
  (* P^(1)(σ') ⊆ P^(1)(σ) for faces σ' ⊆ σ: the reason one_round on a
     complex only needs its facets. *)
  let big = Complex.of_facets (Model.one_round_facets Model.Immediate sigma3) in
  List.iter
    (fun face ->
      let small = Complex.of_facets (Model.one_round_facets Model.Immediate face) in
      Alcotest.(check bool)
        (Printf.sprintf "P^1(%s) included" (Simplex.to_string face))
        true
        (Complex.subcomplex small big))
    (Simplex.proper_faces sigma3)

let test_solo_vertices () =
  let solo1 = Model.solo_vertex sigma3 1 in
  Alcotest.(check bool) "solo vertex in every model's complex" true
    (List.for_all
       (fun m ->
         Complex.mem_vertex solo1
           (Complex.of_facets (Model.one_round_facets m sigma3)))
       [ Model.Immediate; Model.Snapshot; Model.Collect ])

let test_chi () =
  let sigma' =
    Simplex.of_list [ (1, Value.Int 10); (2, Value.Int 20); (3, Value.Int 30) ]
  in
  let facets = Model.one_round_facets Model.Immediate sigma3 in
  let image =
    List.map
      (fun f ->
        Simplex.of_vertices
          (List.map (Model.chi ~from_:sigma3 ~to_:sigma') (Simplex.vertices f)))
      facets
  in
  let expected = Model.one_round_facets Model.Immediate sigma' in
  Alcotest.(check bool) "χ maps P^1(σ) onto P^1(σ')" true
    (Simplex.Set.equal (Simplex.Set.of_list image) (Simplex.Set.of_list expected))

let test_of_string () =
  Alcotest.(check bool) "iis alias" true
    (Model.of_string "iis" = Some Model.Immediate);
  Alcotest.(check bool) "unknown" true (Model.of_string "zzz" = None)

let suite =
  ( "model",
    [
      Alcotest.test_case "facet counts (Figure 8)" `Quick test_facet_counts;
      Alcotest.test_case "subdivision vertices" `Quick test_subdivision_vertex_count;
      Alcotest.test_case "IS view property" `Quick test_is_view_property;
      Alcotest.test_case "model containments" `Quick test_containments;
      Alcotest.test_case "protocol iteration" `Quick test_protocol_iteration;
      Alcotest.test_case "faces are subcomplexes" `Quick test_faces_are_subcomplexes;
      Alcotest.test_case "solo vertices" `Quick test_solo_vertices;
      Alcotest.test_case "canonical isomorphism χ" `Quick test_chi;
      Alcotest.test_case "of_string" `Quick test_of_string;
    ] )
