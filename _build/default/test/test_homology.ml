(* Tests for mod-2 simplicial homology. *)

let tri =
  Simplex.of_list [ (1, Value.Int 1); (2, Value.Int 2); (3, Value.Int 3) ]

let test_point () =
  let c = Complex.of_simplex (Simplex.of_list [ (1, Value.Int 0) ]) in
  Alcotest.(check (list int)) "betti of a point" [ 1 ] (Homology.betti c);
  Alcotest.(check int) "euler" 1 (Homology.euler_characteristic c);
  Alcotest.(check bool) "ball" true (Homology.is_homology_ball c)

let test_edge () =
  let c = Complex.of_simplex (Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ]) in
  Alcotest.(check (list int)) "betti of an edge" [ 1; 0 ] (Homology.betti c);
  Alcotest.(check int) "euler" 1 (Homology.euler_characteristic c)

let test_full_triangle () =
  let c = Complex.of_simplex tri in
  Alcotest.(check (list int)) "betti" [ 1; 0; 0 ] (Homology.betti c);
  Alcotest.(check int) "euler" 1 (Homology.euler_characteristic c);
  Alcotest.(check bool) "ball" true (Homology.is_homology_ball c)

let test_hollow_triangle () =
  (* A circle: b0 = 1, b1 = 1, euler 0. *)
  let c = Complex.of_facets (Simplex.boundary tri) in
  Alcotest.(check (list int)) "betti of a circle" [ 1; 1 ] (Homology.betti c);
  Alcotest.(check int) "euler" 0 (Homology.euler_characteristic c);
  Alcotest.(check bool) "not a ball" false (Homology.is_homology_ball c)

let test_hollow_tetrahedron () =
  (* A 2-sphere: b = [1; 0; 1]. *)
  let tetra =
    Simplex.of_list
      [ (1, Value.Int 1); (2, Value.Int 2); (3, Value.Int 3); (4, Value.Int 4) ]
  in
  let c = Complex.of_facets (Simplex.boundary tetra) in
  Alcotest.(check (list int)) "betti of a 2-sphere" [ 1; 0; 1 ] (Homology.betti c);
  Alcotest.(check int) "euler of a 2-sphere" 2 (Homology.euler_characteristic c)

let test_two_components () =
  let c =
    Complex.of_facets
      [ Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 0) ];
        Simplex.of_list [ (1, Value.Int 9); (2, Value.Int 9) ] ]
  in
  Alcotest.(check (list int)) "two contractible components" [ 2; 0 ]
    (Homology.betti c)

let test_empty () =
  Alcotest.(check (list int)) "empty" [] (Homology.betti Complex.empty);
  Alcotest.(check int) "euler empty" 0 (Homology.euler_characteristic Complex.empty);
  Alcotest.(check bool) "empty not a ball" false
    (Homology.is_homology_ball Complex.empty)

let test_subdivision_is_ball () =
  (* Chromatic subdivisions preserve the homotopy type of the simplex. *)
  List.iter
    (fun model ->
      let c = Complex.of_facets (Model.one_round_facets model tri) in
      Alcotest.(check bool)
        (Printf.sprintf "one round of %s is a ball" (Model.name model))
        true (Homology.is_homology_ball c))
    [ Model.Immediate; Model.Snapshot; Model.Collect ]

let test_rank_gf2 () =
  Alcotest.(check int) "identity rank" 2
    (Homology.rank_gf2 [| [| true; false |]; [| false; true |] |]);
  Alcotest.(check int) "dependent rows" 1
    (Homology.rank_gf2 [| [| true; true |]; [| true; true |] |]);
  Alcotest.(check int) "zero matrix" 0
    (Homology.rank_gf2 [| [| false; false |] |]);
  Alcotest.(check int) "empty matrix" 0 (Homology.rank_gf2 [||])

let prop_euler_equals_alternating_betti =
  QCheck2.Test.make ~name:"euler = alternating sum of betti" ~count:60
    (Gen.complex ~max_color:4 ~max_facets:4 ())
    (fun c ->
      let betti = Homology.betti c in
      let alt =
        List.fold_left
          (fun (acc, sign) b -> (acc + (sign * b), -sign))
          (0, 1) betti
        |> fst
      in
      Homology.euler_characteristic c = alt)

let prop_b0_is_component_count =
  QCheck2.Test.make ~name:"b0 = number of connected components" ~count:60
    (Gen.complex ~max_color:4 ~max_facets:4 ())
    (fun c ->
      match Homology.betti c with
      | [] -> Complex.is_empty c
      | b0 :: _ -> b0 = List.length (Connectivity.components c))

let suite =
  ( "homology",
    [
      Alcotest.test_case "point" `Quick test_point;
      Alcotest.test_case "edge" `Quick test_edge;
      Alcotest.test_case "full triangle" `Quick test_full_triangle;
      Alcotest.test_case "hollow triangle" `Quick test_hollow_triangle;
      Alcotest.test_case "hollow tetrahedron" `Quick test_hollow_tetrahedron;
      Alcotest.test_case "two components" `Quick test_two_components;
      Alcotest.test_case "empty complex" `Quick test_empty;
      Alcotest.test_case "subdivisions are balls" `Quick test_subdivision_is_ball;
      Alcotest.test_case "GF(2) rank" `Quick test_rank_gf2;
      QCheck_alcotest.to_alcotest prop_euler_equals_alternating_betti;
      QCheck_alcotest.to_alcotest prop_b0_is_component_count;
    ] )
