(* Tests for the task zoo: consensus, approximate agreement, set
   agreement, and local tasks. *)

let complex = Alcotest.testable Complex.pp Complex.equal

(* ---- consensus ---- *)

let test_binary_consensus_delta () =
  let t = Consensus.binary ~n:3 in
  let mixed =
    Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1); (3, Value.Int 0) ]
  in
  let d = Task.delta t mixed in
  Alcotest.(check int) "mixed: two legal facets" 2 (Complex.facet_count d);
  let unanimous =
    Simplex.of_list [ (1, Value.Int 1); (2, Value.Int 1); (3, Value.Int 1) ]
  in
  Alcotest.(check complex) "unanimous: only itself"
    (Complex.of_simplex unanimous)
    (Task.delta t unanimous);
  let solo = Simplex.of_list [ (2, Value.Int 0) ] in
  Alcotest.(check complex) "solo pinned" (Complex.of_simplex solo)
    (Task.delta t solo)

let test_consensus_complex_sizes () =
  let t = Consensus.binary ~n:3 in
  Alcotest.(check int) "8 input facets" 8 (Complex.facet_count (Task.inputs t));
  Alcotest.(check int) "2 output facets" 2 (Complex.facet_count (Task.outputs t))

let test_consensus_carrier () =
  let t = Consensus.binary ~n:3 in
  Alcotest.(check bool) "Δ is a carrier map" true
    (Task.carrier_map_on t (Complex.facets (Task.inputs t)))

let test_relaxed_consensus () =
  let t = Consensus.relaxed ~n:3 ~values:[ Value.Int 0; Value.Int 1 ] in
  let pair = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ] in
  let d = Task.delta t pair in
  (* Two participants may disagree: all 4 combinations legal. *)
  Alcotest.(check int) "4 legal pair outputs" 4 (Complex.facet_count d);
  let triple =
    Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1); (3, Value.Int 1) ]
  in
  Alcotest.(check int) "3 participants must agree" 2
    (Complex.facet_count (Task.delta t triple));
  (* Validity: unanimous inputs leave no choice even for pairs. *)
  let pair_same = Simplex.of_list [ (1, Value.Int 1); (2, Value.Int 1) ] in
  Alcotest.(check complex) "unanimous pair pinned"
    (Complex.of_simplex pair_same)
    (Task.delta t pair_same)

(* ---- approximate agreement ---- *)

let test_aa_params_validated () =
  Alcotest.check_raises "eps not on grid"
    (Invalid_argument "Approx_agreement: eps is not a multiple of 1/m") (fun () ->
      ignore (Approx_agreement.task ~n:2 ~m:4 ~eps:(Frac.make 1 3)));
  Alcotest.check_raises "eps out of range"
    (Invalid_argument "Approx_agreement: eps outside (0,1]") (fun () ->
      ignore (Approx_agreement.task ~n:2 ~m:4 ~eps:(Frac.of_int 2)))

let test_aa_delta () =
  let t = Approx_agreement.task ~n:2 ~m:4 ~eps:(Frac.make 1 4) in
  let sigma = Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 2) ] in
  let d = Task.delta t sigma in
  (* Values in [0, 1/2] within 1/4 of each other: pairs (a,b) from
     {0,1/4,1/2} with |a-b| <= 1/4: (0,0),(0,1/4),(1/4,0),(1/4,1/4),
     (1/4,1/2),(1/2,1/4),(1/2,1/2) = 7. *)
  Alcotest.(check int) "7 legal outputs" 7 (Complex.facet_count d);
  Alcotest.(check bool) "range respected" true
    (List.for_all
       (Approx_agreement.in_range ~lo:Frac.zero ~hi:Frac.half)
       (Complex.facets d));
  Alcotest.(check bool) "eps respected" true
    (List.for_all
       (fun f -> Frac.(Approx_agreement.spread f <= Frac.make 1 4))
       (Complex.facets d))

let test_aa_solo_delta () =
  let t = Approx_agreement.task ~n:2 ~m:4 ~eps:(Frac.make 1 4) in
  let solo = Simplex.of_list [ (1, Value.frac 3 4) ] in
  Alcotest.(check complex) "solo keeps its value" (Complex.of_simplex solo)
    (Task.delta t solo)

let test_liberal_vs_standard () =
  let eps = Frac.make 1 4 in
  let std = Approx_agreement.task ~n:3 ~m:4 ~eps in
  let lib = Approx_agreement.liberal ~n:3 ~m:4 ~eps in
  let pair = Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 1) ] in
  (* Liberal drops the eps constraint for 2 participants... *)
  Alcotest.(check bool) "liberal pair wider" true
    (Complex.facet_count (Task.delta lib pair)
    > Complex.facet_count (Task.delta std pair));
  let triple =
    Simplex.of_list
      [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ]
  in
  (* ... but keeps it for 3. *)
  Alcotest.(check complex) "liberal = standard on facets"
    (Task.delta std triple) (Task.delta lib triple)

let test_aa_carrier () =
  let t = Approx_agreement.task ~n:3 ~m:2 ~eps:Frac.half in
  Alcotest.(check bool) "Δ is a carrier map" true
    (Task.carrier_map_on t (Complex.facets (Task.inputs t)))

let test_grid () =
  Alcotest.(check int) "grid size" 5 (List.length (Approx_agreement.grid 4));
  Alcotest.(check int) "binary inputs n=3" 8
    (Complex.facet_count (Approx_agreement.binary_input_complex ~n:3))

(* ---- set agreement ---- *)

let test_set_agreement () =
  let t = Set_agreement.task ~n:3 ~k:2 ~values:[ Value.Int 0; Value.Int 1; Value.Int 2 ] in
  let rainbow =
    Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1); (3, Value.Int 2) ]
  in
  let d = Task.delta t rainbow in
  (* 27 assignments minus the 6 with three distinct values. *)
  Alcotest.(check int) "21 legal outputs" 21 (Complex.facet_count d);
  Alcotest.(check bool) "rainbow output illegal" false (Complex.mem rainbow d);
  (* k=1 coincides with consensus. *)
  let c1 = Set_agreement.task ~n:2 ~k:1 ~values:[ Value.Int 0; Value.Int 1 ] in
  let cons = Consensus.binary ~n:2 in
  Alcotest.(check bool) "1-set = consensus" true
    (Task.delta_equal_on c1 cons (Task.input_simplices cons))

(* ---- local tasks ---- *)

let test_local_task () =
  let t = Consensus.binary ~n:2 in
  let sigma = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ] in
  let tau = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ] in
  Alcotest.(check bool) "valid tau" true (Local_task.is_valid_tau t ~sigma ~tau);
  let local = Local_task.make t ~sigma ~tau in
  (* Vertices are pinned... *)
  let v = Simplex.of_list [ (1, Value.Int 0) ] in
  Alcotest.(check complex) "vertex pinned" (Complex.of_simplex v)
    (Task.delta local v);
  (* ... and the full face may map anywhere in Δ(σ). *)
  Alcotest.(check complex) "full face free" (Task.delta t sigma)
    (Task.delta local tau);
  (* Mismatched ids rejected. *)
  let bad = Simplex.of_list [ (1, Value.Int 0) ] in
  Alcotest.(check bool) "bad tau detected" false
    (Local_task.is_valid_tau t ~sigma ~tau:bad);
  Alcotest.check_raises "make rejects bad tau"
    (Invalid_argument
       "Local_task.make: tau is not a chromatic set of V(Delta(sigma))")
    (fun () -> ignore (Local_task.make t ~sigma ~tau:bad))

let test_chromatic_output_sets () =
  let t = Consensus.binary ~n:2 in
  let sigma = Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1) ] in
  (* Candidates per color: 0 and 1 → 4 chromatic sets. *)
  Alcotest.(check int) "4 candidate taus" 4
    (List.length (Task.chromatic_output_sets t sigma))

let test_restrict_and_name () =
  let t = Consensus.binary ~n:2 in
  let sub = Approx_agreement.binary_input_complex ~n:2 in
  let r = Task.restrict_inputs t sub in
  Alcotest.(check int) "restricted inputs" 4 (Complex.facet_count (Task.inputs r));
  Alcotest.(check string) "renamed" "x" (Task.with_name "x" t).Task.name

let suite =
  ( "tasks",
    [
      Alcotest.test_case "binary consensus Δ" `Quick test_binary_consensus_delta;
      Alcotest.test_case "consensus complexes" `Quick test_consensus_complex_sizes;
      Alcotest.test_case "consensus carrier" `Quick test_consensus_carrier;
      Alcotest.test_case "relaxed consensus (Cor 2)" `Quick test_relaxed_consensus;
      Alcotest.test_case "AA parameter validation" `Quick test_aa_params_validated;
      Alcotest.test_case "AA Δ" `Quick test_aa_delta;
      Alcotest.test_case "AA solo Δ" `Quick test_aa_solo_delta;
      Alcotest.test_case "liberal vs standard AA" `Quick test_liberal_vs_standard;
      Alcotest.test_case "AA carrier" `Quick test_aa_carrier;
      Alcotest.test_case "grids" `Quick test_grid;
      Alcotest.test_case "k-set agreement" `Quick test_set_agreement;
      Alcotest.test_case "local tasks (Def 1)" `Quick test_local_task;
      Alcotest.test_case "chromatic output sets" `Quick test_chromatic_output_sets;
      Alcotest.test_case "restrict/rename" `Quick test_restrict_and_name;
    ] )
