(* Benchmark harness.

   Three jobs, per DESIGN.md:
   1. regenerate every experiment table — the paper-shaped results —
      at SPEEDUP_JOBS=1 *and* at the parallel job count, fail loudly
      if any check regressed, and assert the renderings are
      byte-identical (the domain pool's determinism guarantee);
   2. time one representative kernel per experiment with Bechamel, so
      the cost of each reproduction step is visible;
   3. emit machine-readable BENCH_kernels.json (kernel -> ns/run, r²,
      plus the table wall-clocks) so the perf trajectory is tracked
      across PRs. *)

(* [open Bechamel] shadows the raw clock library; alias it first. *)
module Clock = Monotonic_clock

open Bechamel
open Toolkit

(* The parallel leg: honor SPEEDUP_JOBS when it asks for real
   parallelism, else exercise 4 domains (the CI setting) even on
   boxes whose recommended count is 1. *)
let jobs_n = max 4 (Pool.jobs ())

let with_pool_jobs n f =
  Pool.set_jobs (Some n);
  Fun.protect ~finally:(fun () -> Pool.set_jobs None) f

(* ---- kernels, one per experiment ---- *)

let sigma3 =
  Simplex.of_list [ (1, Value.Int 1); (2, Value.Int 2); (3, Value.Int 3) ]

let edge01 = Simplex.of_list [ (1, Value.frac 0 1); (2, Value.frac 1 1) ]

let binary_inputs n =
  Complex.all_simplices (Approx_agreement.binary_input_complex ~n)

let consensus3 = Consensus.binary ~n:3
let aa_2_9 = Approx_agreement.task ~n:2 ~m:9 ~eps:(Frac.make 1 9)
let laa_3_4 = Approx_agreement.liberal ~n:3 ~m:4 ~eps:(Frac.make 1 4)
let relaxed3 = Consensus.relaxed ~n:3 ~values:[ Value.Int 0; Value.Int 1 ]

(* Closure kernels pass [~memo:false] so Bechamel measures real work
   instead of a table lookup; the certificate store is disabled
   globally (see [main]) except in the dedicated cert/* kernels. *)

(* e14 bypasses the protocol-complex cache with fresh input values. *)
let counter = ref 0

(* Scratch certificate store for the cold/warm cert kernels. *)
let bench_store_root =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "speedup-bench-certs-%d" (Unix.getpid ()))

let rec remove_tree path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter
        (fun entry -> remove_tree (Filename.concat path entry))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let closure_sigma =
  Simplex.of_list [ (1, Value.Int 0); (2, Value.Int 1); (3, Value.Int 0) ]

let laa_facet =
  Simplex.of_list
    [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ]

(* The ≥50ms closure/adversary workloads, shared between the Bechamel
   kernel list and the parallel-scaling gate so both measure the same
   computation. *)
let run_closure_aa () =
  ignore
    (Closure.delta ~memo:false ~op:(Round_op.plain Model.Immediate) laa_3_4
       laa_facet)

let run_e9 () =
  let eps = Frac.make 1 8 in
  let protocol = Aa_halving.protocol ~m:8 ~eps in
  let task = Approx_agreement.task ~n:3 ~m:8 ~eps in
  ignore
    (Adversary.check_task protocol task
       ~inputs:[ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ]
       ~schedules:
         (Adversary.exhaustive_is ~boxed:false ~participants:[ 1; 2; 3 ]
            ~rounds:3))

let run_e10 () =
  ignore (Closure.delta ~memo:false ~op:Round_op.test_and_set laa_3_4 laa_facet)

let run_e11 () =
  ignore
    (Closure.delta ~memo:false
       ~op:(Round_op.bin_consensus_beta (fun i -> i mod 2 = 0))
       laa_3_4 laa_facet)

(* A depth-18 doubling view tower: ~2^18 structural nodes but only 19
   interned ones.  The seed-era engine walked the whole virtual tree on
   every compare (bench/structural_baseline.json records that cost);
   the hash-consed compare short-circuits on physical equality. *)
let view_tower =
  let rec go k v =
    if k = 0 then v else go (k - 1) (Value.view [ (1, v); (2, v) ])
  in
  go 18 (Value.view [ (1, Value.Int 0) ])

let view_tower' =
  let rec go k v =
    if k = 0 then v else go (k - 1) (Value.view [ (1, v); (2, v) ])
  in
  go 18 (Value.view [ (1, Value.Int 0) ])

let with_bench_store f =
  Cert_store.set_dir (Some bench_store_root);
  Fun.protect ~finally:(fun () -> Cert_store.set_dir None) f

let kernels =
  [
    ( "e1/collect-matrices-n3",
      fun () -> ignore (Collect_matrix.enumerate [ 1; 2; 3 ]) );
    ( "e1/one-round-immediate-n4",
      fun () ->
        ignore
          (Model.one_round_facets Model.Immediate
             (Simplex.of_list (List.init 4 (fun i -> (i + 1, Value.Int i))))) );
    ( "e2/speedup-verify-aa-n2",
      fun () ->
        ignore
          (Speedup.verify ~memo:false
             (Speedup.of_model Model.Immediate)
             (Approx_agreement.task ~n:2 ~m:3 ~eps:(Frac.make 1 3))
             ~rounds:1 ~inputs:(binary_inputs 2)) );
    ( "e3/closure-consensus-n3",
      fun () ->
        ignore
          (Closure.delta ~memo:false ~op:(Round_op.plain Model.Immediate)
             consensus3 closure_sigma) );
    ( "e4/solve-tas-consensus2",
      fun () ->
        ignore
          (Solvability.task_in_augmented ~box:Black_box.test_and_set
             ~alpha:(Augmented.alpha_const Value.Unit)
             (Consensus.binary ~n:2) ~rounds:1) );
    ( "e5/augmented-complex-tas-n3",
      fun () ->
        ignore
          (Augmented.one_round_facets ~box:Black_box.test_and_set
             ~alpha:(Augmented.alpha_const Value.Unit) ~round:1 sigma3) );
    ( "e5/relaxed-consensus-closure-tas",
      fun () ->
        ignore
          (Closure.delta ~memo:false ~op:Round_op.test_and_set relaxed3
             (Simplex.of_list
                [ (1, Value.Int 0); (2, Value.Int 1); (3, Value.Int 1) ])) );
    ( "e6/closure-aa-edge-n2",
      fun () ->
        ignore
          (Closure.delta ~memo:false ~op:(Round_op.plain Model.Immediate)
             aa_2_9 edge01) );
    ("e7/closure-liberal-aa-facet-n3", run_closure_aa);
    ( "e8/min-rounds-aa-n2",
      fun () ->
        ignore
          (Solvability.min_rounds ~inputs:(binary_inputs 2) ~max_rounds:3
             Model.Immediate aa_2_9) );
    ("e9/halving-2197-schedules", run_e9);
    ("e10/closure-tas-liberal-aa", run_e10);
    ("e11/closure-beta-bincons", run_e11);
    ( "e12/bc-consensus-n5-100-runs",
      fun () ->
        let n = 5 in
        let participants = List.init n (fun i -> i + 1) in
        let protocol = Bc_consensus.protocol ~n in
        let task =
          Consensus.multi ~n ~values:(List.map (fun i -> Value.Int i) participants)
        in
        ignore
          (Adversary.check_task ~box:Sim_object.consensus protocol task
             ~inputs:(List.map (fun i -> (i, Value.Int i)) participants)
             ~schedules:
               (Adversary.random_suite ~model:Model.Immediate ~boxed:true
                  ~participants ~rounds:3 ~seed:17 ~count:100)) );
    ( "e13/cross-check-immediate-n3",
      fun () -> ignore (Cross_check.immediate sigma3) );
    ( "e14/protocol-complex-t2-n3",
      fun () ->
        (* Bypass the protocol cache via fresh input values. *)
        incr counter;
        let sigma =
          Simplex.of_list
            [ (1, Value.Int !counter); (2, Value.Int (!counter + 1));
              (3, Value.Int (!counter + 2)) ]
        in
        ignore (Model.protocol_complex Model.Immediate sigma 2) );
    ( "e15/homology-betti-p1-n3",
      fun () ->
        ignore (Homology.betti (Complex.of_facets (Model.one_round_facets Model.Immediate sigma3))) );
    ( "e16/d-solo-complex-n4",
      fun () ->
        ignore
          (Affine.d_solo 2
             (Simplex.of_list (List.init 4 (fun i -> (i + 1, Value.Int i))))) );
    ( "e17/closure-any-beta",
      fun () ->
        ignore
          (Closure.delta_any ~memo:false
             ~ops:(Closure.bin_consensus_ops [ 1; 2; 3 ])
             ~name:"bench-any"
             (Approx_agreement.liberal ~n:3 ~m:2 ~eps:Frac.half)
             (Simplex.of_list
                [ (1, Value.frac 0 1); (2, Value.frac 1 2); (3, Value.frac 1 1) ])) );
    ( "e19/collect-solvability-t1",
      fun () ->
        ignore
          (Solvability.task_in_model ~inputs:(binary_inputs 3) Model.Collect
             (Approx_agreement.task ~n:3 ~m:2 ~eps:Frac.half)
             ~rounds:1) );
    ( "e18/non-iterated-emulated-sweep",
      fun () ->
        let spec = Aa_halving.spec ~m:4 ~rounds:2 in
        let inputs = [ (1, Value.frac 0 1); (2, Value.frac 1 1) ] in
        List.iter
          (fun s -> ignore (Non_iterated.run_emulated spec ~inputs ~schedule:s))
          (Non_iterated.exhaustive ~participants:[ 1; 2 ] ~rounds:2) );
    (* The facet-level liberal-AA closure (the e7 instance) at one job
       and at the pool's job count: the headline speedup kernel. *)
    ( "parallel/closure-aa-n3-jobs1",
      fun () -> with_pool_jobs 1 run_closure_aa );
    ( "parallel/closure-aa-n3-jobsN",
      fun () -> with_pool_jobs jobs_n run_closure_aa );
    (* Model-algebra kernels: the full equivalence battery at n = 3,
       and the e3 closure instance driven through a compiled algebra
       term instead of the hard-coded model (check_algebra_parity
       gates the latter against its twin). *)
    ( "algebra/equiv-iis-vs-snapshot-n3",
      fun () ->
        ignore (Equiv.decide ~memo:false ~n:3 Algebra.iis Algebra.snapshot) );
    ( "algebra/compiled-vs-builtin-closure",
      fun () ->
        ignore
          (Closure.delta ~memo:false ~op:(Round_op.algebra Algebra.iis)
             consensus3 closure_sigma) );
    (* Hash-consing kernels, gated against the pre-interning numbers in
       structural_baseline.json (see check_structural_baseline). *)
    ( "intern/deep-view-compare",
      fun () -> ignore (Value.compare view_tower view_tower') );
    ("closure-aa-n3-interned", run_closure_aa);
    (* The same closure enumeration through the certificate store: cold
       (empty store: full search plus certificate writes) and warm
       (populated store: witness verification replaces the search). *)
    ( "cert/closure-consensus-n3-cold-store",
      fun () ->
        remove_tree bench_store_root;
        with_bench_store (fun () ->
            ignore
              (Closure.delta ~memo:false ~op:(Round_op.plain Model.Immediate)
                 consensus3 closure_sigma)) );
    ( "cert/closure-consensus-n3-warm-store",
      fun () ->
        with_bench_store (fun () ->
            ignore
              (Closure.delta ~memo:false ~op:(Round_op.plain Model.Immediate)
                 consensus3 closure_sigma)) );
  ]

let tests = List.map (fun (name, f) -> Test.make ~name (Staged.stage f)) kernels

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.6) ~kde:(Some 500) () in
  let grouped = Test.make_grouped ~name:"speedup" ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances grouped in
  Analyze.all ols Instance.monotonic_clock raw

(* Extract (kernel, ns/run, r²) rows from the OLS results.  The
   grouped-test prefix ("speedup ") is stripped so the JSON keys match
   the kernel names above. *)
let timing_rows results =
  let strip name =
    match String.index_opt name ' ' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  Hashtbl.fold
    (fun name ols acc ->
      let est =
        match Analyze.OLS.estimates ols with
        | Some (e :: _) -> Some e
        | Some [] | None -> None
      in
      (strip name, est, Analyze.OLS.r_square ols) :: acc)
    results []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let print_timings rows =
  Printf.printf "\n=== Kernel timings (monotonic clock, ns/run) ===\n";
  Printf.printf "%-45s %15s %10s\n" "kernel" "ns/run" "r^2";
  Printf.printf "%s\n" (String.make 72 '-');
  List.iter
    (fun (name, est, r2) ->
      let est =
        match est with
        | Some e -> Printf.sprintf "%15.0f" e
        | None -> Printf.sprintf "%15s" "n/a"
      in
      let r2 =
        match r2 with
        | Some r when Float.is_finite r -> Printf.sprintf "%10.4f" r
        | Some _ | None -> Printf.sprintf "%10s" "n/a"
      in
      Printf.printf "%-45s %s %s\n" name est r2)
    rows

(* ---- machine-readable output ---- *)

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float = function
  | Some f when Float.is_finite f -> Printf.sprintf "%.6g" f
  | Some _ | None -> "null"

(* The commit the numbers belong to, so BENCH_kernels.json files are
   comparable across PRs.  Best-effort: outside a git checkout (or
   without git on PATH) the field reads "unknown".  The dirty flag is
   computed by hand instead of `--dirty`: the bench's own output
   (BENCH_kernels.json, rewritten every run) and untracked scratch
   files must not stamp a clean checkout as dirty — that made every
   CI-produced file read "<sha>-dirty" and ruined cross-PR
   comparability. *)
let git_lines cmd =
  match Unix.open_process_in cmd with
  | ic -> (
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 -> Some (List.rev !lines)
      | _ -> None)
  | exception _ -> None

let git_stamp =
  match git_lines "git describe --always 2>/dev/null" with
  | Some (line :: _) when String.trim line <> "" ->
      let base = String.trim line in
      let dirties line =
        (* Porcelain v1: "XY path" ("?? path" = untracked). *)
        String.length line > 3
        && (not (String.sub line 0 2 = "??"))
        && String.trim (String.sub line 3 (String.length line - 3))
           <> "BENCH_kernels.json"
      in
      let dirty =
        match git_lines "git status --porcelain 2>/dev/null" with
        | Some lines -> List.exists dirties lines
        | None -> false
      in
      if dirty then base ^ "-dirty" else base
  | Some _ | None -> "unknown"

type scaling_row = { sc_name : string; jobs1_ns : float; jobsn_ns : float }

let write_json ~rows ~jobs1_wall ~jobsn_wall ~identical ~all_ok ~scaling
    ~scaling_gate ~scaling_pass path =
  let oc = open_out path in
  let kernel (name, est, r2) =
    Printf.sprintf "    {\"name\": \"%s\", \"ns_per_run\": %s, \"r_squared\": %s}"
      (json_escape name) (json_float est) (json_float r2)
  in
  let scaling_kernel r =
    Printf.sprintf
      "      {\"name\": \"%s\", \"jobs1_ns\": %s, \"jobsN_ns\": %s, \
       \"speedup_jobsN\": %s}"
      (json_escape r.sc_name)
      (json_float (Some r.jobs1_ns))
      (json_float (Some r.jobsn_ns))
      (json_float (Some (r.jobs1_ns /. r.jobsn_ns)))
  in
  Printf.fprintf oc
    {|{
  "schema": "speedup-bench/v1",
  "meta": {
    "git": "%s",
    "cores": %d
  },
  "jobs": {
    "parallel": %d,
    "recommended": %d,
    "env": %s
  },
  "tables": {
    "jobs1_wall_s": %s,
    "jobsN_wall_s": %s,
    "identical": %b,
    "all_ok": %b
  },
  "parallel_scaling": {
    "gate": "%s",
    "pass": %b,
    "kernels": [
%s
    ]
  },
  "kernels": [
%s
  ]
}
|}
    (json_escape git_stamp)
    (Domain.recommended_domain_count ())
    jobs_n
    (Domain.recommended_domain_count ())
    (match Sys.getenv_opt "SPEEDUP_JOBS" with
    | Some v -> Printf.sprintf "\"%s\"" (json_escape v)
    | None -> "null")
    (json_float (Some jobs1_wall))
    (json_float (Some jobsn_wall))
    identical all_ok scaling_gate scaling_pass
    (String.concat ",\n" (List.map scaling_kernel scaling))
    (String.concat ",\n" (List.map kernel rows));
  close_out oc

let find_ns rows name =
  List.find_map
    (fun (n, est, _) -> if String.equal n name then est else None)
    rows

(* ---- structural baseline gate ----

   bench/structural_baseline.json records what the two hash-consing
   kernels cost on the seed-era (structural, pre-interning) engine,
   captured on the commit before lib/topology/intern.ml landed.  The
   interned engine must beat both strictly or the bench run fails. *)

let baseline_path =
  let exe_dir = Filename.dirname Sys.executable_name in
  let candidates =
    [
      "bench/structural_baseline.json";
      Filename.concat exe_dir "structural_baseline.json";
      Filename.concat exe_dir "../../../bench/structural_baseline.json";
    ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> List.hd candidates

let find_substring hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i =
    if i + nl > hl then None
    else if String.sub hay i nl = needle then Some i
    else go (i + 1)
  in
  go 0

(* Pulls '"field": <digits>' out of the baseline JSON — the file is
   ours and flat, so a scan beats pulling in a JSON dependency. *)
let baseline_field json field =
  match find_substring json (Printf.sprintf "\"%s\"" field) with
  | None -> None
  | Some i ->
      let n = String.length json in
      let j = ref (i + String.length field + 2) in
      while !j < n && (json.[!j] = ':' || json.[!j] = ' ') do
        incr j
      done;
      let k = ref !j in
      while !k < n && json.[!k] >= '0' && json.[!k] <= '9' do
        incr k
      done;
      if !k > !j then float_of_string_opt (String.sub json !j (!k - !j))
      else None

(* The gate replicates how the baseline was captured: one warmup call,
   then the mean wall clock of [reps] back-to-back runs — not the OLS
   estimate, whose quota-based sampling is noisier for ~100 ms
   kernels. *)
let time_ns reps f =
  ignore (f ());
  let t0 = Clock.now () in
  for _ = 1 to reps do
    ignore (f ())
  done;
  let t1 = Clock.now () in
  Int64.to_float (Int64.sub t1 t0) /. float_of_int reps

let check_structural_baseline () =
  match In_channel.with_open_text baseline_path In_channel.input_all with
  | exception Sys_error msg ->
      Printf.eprintf "BENCH ERROR: cannot read structural baseline: %s\n" msg;
      false
  | json ->
      let gate kernel field ns =
        match baseline_field json field with
        | Some base ->
            let ok = ns < base in
            Printf.printf
              "%s: %.0f ns/run vs structural baseline %.0f ns (%.1fx) — %s\n"
              kernel ns base (base /. ns)
              (if ok then "ok" else "SLOWER");
            if not ok then
              Printf.eprintf
                "BENCH ERROR: %s is not strictly faster than the structural \
                 baseline (%s)\n"
                kernel field;
            ok
        | None ->
            Printf.eprintf "BENCH ERROR: field %s missing from %s\n" field
              baseline_path;
            false
      in
      let closure_ns =
        time_ns 20 (fun () ->
            Closure.delta ~memo:false ~op:(Round_op.plain Model.Immediate)
              laa_3_4
              (Simplex.of_list
                 [ (1, Value.frac 0 1); (2, Value.frac 1 2);
                   (3, Value.frac 1 1) ]))
      in
      let compare_ns =
        time_ns 1000 (fun () -> Value.compare view_tower view_tower')
      in
      (* && would short-circuit past the second report. *)
      let closure_ok = gate "closure-aa-n3-interned" "closure_aa_n3_ns" closure_ns in
      let compare_ok =
        gate "intern/deep-view-compare" "deep_view_compare_ns" compare_ns
      in
      closure_ok && compare_ok

(* ---- algebra parity gate ----

   The compiled "iis" algebra term must stay within 10% of the
   hard-coded model on the e3 closure instance.  Both paths serve
   facets from a per-(model, σ) cache, so any larger gap means the
   algebra compilation layer added per-call overhead to the closure
   inner loop. *)
let check_algebra_parity () =
  let run op () =
    ignore (Closure.delta ~memo:false ~op consensus3 closure_sigma)
  in
  let builtin_ns = time_ns 20 (run (Round_op.plain Model.Immediate)) in
  let compiled_ns = time_ns 20 (run (Round_op.algebra Algebra.iis)) in
  let ratio = compiled_ns /. builtin_ns in
  let ok = ratio <= 1.10 in
  Printf.printf
    "algebra parity: compiled %.0f ns/run vs builtin %.0f ns (%.2fx) — %s\n"
    compiled_ns builtin_ns ratio
    (if ok then "ok" else "TOO SLOW");
  if not ok then
    prerr_endline
      "BENCH ERROR: the compiled algebra term is more than 10% slower than \
       its hard-coded twin on the closure kernel";
  ok

(* ---- parallel-scaling gate ----

   The ≥50ms kernels must be *strictly faster* at jobs=N than at
   jobs=1 — "the pool doesn't slow us down" is not enough.  Same
   mean-wall methodology as the structural gate (OLS quota sampling is
   too noisy for 100ms kernels).  The assertion only holds where
   parallel speedup is physically possible, so on a single-core host
   the ratios are recorded but the gate reports "skipped-single-core";
   CI runs on multi-core hardware and enforces it. *)

let scaling_kernels =
  [
    ("closure-aa-n3", run_closure_aa, 5);
    ("e7/closure-liberal-aa-facet-n3", run_closure_aa, 5);
    ("e9/halving-2197-schedules", run_e9, 5);
    ("e10/closure-tas-liberal-aa", run_e10, 5);
    ("e11/closure-beta-bincons", run_e11, 5);
  ]

let check_parallel_scaling () =
  let rows =
    List.map
      (fun (name, f, reps) ->
        let jobs1_ns = with_pool_jobs 1 (fun () -> time_ns reps f) in
        let jobsn_ns = with_pool_jobs jobs_n (fun () -> time_ns reps f) in
        Printf.printf
          "parallel scaling %-34s jobs=1 %7.1f ms  jobs=%d %7.1f ms  %.2fx\n"
          name (jobs1_ns /. 1e6) jobs_n (jobsn_ns /. 1e6)
          (jobs1_ns /. jobsn_ns);
        { sc_name = name; jobs1_ns; jobsn_ns })
      scaling_kernels
  in
  let cores = Domain.recommended_domain_count () in
  let enforced = cores >= 2 in
  let gate = if enforced then "enforced" else "skipped-single-core" in
  let pass =
    (not enforced)
    || List.for_all
         (fun r ->
           let ok = r.jobs1_ns /. r.jobsn_ns > 1.0 in
           if not ok then
             Printf.eprintf
               "BENCH ERROR: %s is not strictly faster at jobs=%d than at \
                jobs=1\n"
               r.sc_name jobs_n;
           ok)
         rows
  in
  if not enforced then
    Printf.printf
      "parallel scaling gate skipped: single-core host (cores=%d)\n" cores;
  (rows, gate, pass)

let print_cache_stats () =
  let m = Closure.memo_stats () in
  let s = Cert_store.stats () in
  Printf.printf
    "closure-stats: memo_hits=%d memo_misses=%d enumerations=%d entries=%d \
     store_hits=%d store_misses=%d store_writes=%d store_corrupt=%d\n"
    m.Closure.hits m.Closure.misses m.Closure.enumerations m.Closure.entries
    s.Cert_store.hits s.Cert_store.misses s.Cert_store.writes
    s.Cert_store.corrupt

(* Regenerate every experiment table under a fixed job count and
   return (tables, wall-clock seconds, rendered text).  The closure
   memo is reset first so both legs do comparable work; the Model
   caches stay warm on the second leg, so treat the wall-clocks as
   indicative and use the parallel/* kernels for speedup claims. *)
let run_tables jobs =
  with_pool_jobs jobs (fun () ->
      Closure.reset_memo ();
      let t0 = Unix.gettimeofday () in
      let tables = Suite.run_all () in
      let wall = Unix.gettimeofday () -. t0 in
      let rendered =
        String.concat "\n"
          (List.map (fun t -> Format.asprintf "%a" Report.pp t) tables)
      in
      (tables, wall, rendered))

let () =
  (* Keep timings deterministic: no ambient store for the e* kernels
     (the cert/* kernels opt in to the scratch store explicitly). *)
  Cert_store.set_dir None;
  (* Part 1: the reproduction tables, at jobs=1 and at the parallel
     job count.  The renderings must be byte-identical — this is the
     determinism guarantee of the domain pool, checked end to end. *)
  let tables, jobs1_wall, rendered1 = run_tables 1 in
  let _, jobsn_wall, renderedn = run_tables jobs_n in
  Suite.print_tables tables;
  let all_ok = Suite.all_ok tables in
  let identical = String.equal rendered1 renderedn in
  Printf.printf "\n=== Reproduction summary: %d tables, %s ===\n"
    (List.length tables)
    (if all_ok then "ALL OK" else "FAILURES PRESENT");
  Printf.printf
    "table regeneration: jobs=1 %.1fs, jobs=%d %.1fs, renderings %s\n"
    jobs1_wall jobs_n jobsn_wall
    (if identical then "byte-identical" else "DIFFER");
  if not identical then
    prerr_endline
      "BENCH ERROR: table output differs between job counts — the \
       parallel runtime broke determinism";
  print_cache_stats ();
  (* Part 2: kernel timings.  Pre-populate the scratch store so the
     warm kernel hits it regardless of execution order. *)
  remove_tree bench_store_root;
  with_bench_store (fun () ->
      ignore
        (Closure.delta ~memo:false ~op:(Round_op.plain Model.Immediate)
           consensus3 closure_sigma));
  let rows = timing_rows (benchmark ()) in
  print_timings rows;
  (match
     ( find_ns rows "parallel/closure-aa-n3-jobs1",
       find_ns rows "parallel/closure-aa-n3-jobsN" )
   with
  | Some seq, Some par when par > 0. ->
      Printf.printf "parallel closure kernel: jobs=%d speedup %.2fx over jobs=1\n"
        jobs_n (seq /. par)
  | _ -> ());
  let baseline_ok = check_structural_baseline () in
  let algebra_ok = check_algebra_parity () in
  let scaling, scaling_gate, scaling_kernels_pass = check_parallel_scaling () in
  (* The full-table leg joins the gate: at jobs=N the reproduction
     suite must beat its sequential run, not just match it. *)
  let scaling_pass =
    scaling_kernels_pass
    && (String.equal scaling_gate "skipped-single-core"
       || jobsn_wall < jobs1_wall)
  in
  if scaling_kernels_pass && not scaling_pass then
    Printf.eprintf
      "BENCH ERROR: table regeneration at jobs=%d (%.1fs) is not faster than \
       jobs=1 (%.1fs)\n"
      jobs_n jobsn_wall jobs1_wall;
  print_cache_stats ();
  remove_tree bench_store_root;
  (* Part 3: machine-readable summary for trend tracking. *)
  write_json ~rows ~jobs1_wall ~jobsn_wall ~identical ~all_ok ~scaling
    ~scaling_gate ~scaling_pass "BENCH_kernels.json";
  Printf.printf "wrote BENCH_kernels.json\n";
  if not (all_ok && identical && baseline_ok && algebra_ok && scaling_pass)
  then exit 1
