(* Load generator for the query daemon: N concurrent clients firing M
   queries each (fixed seed, deterministic mix) at an in-process
   server, run twice against the same certificate store — a cold pass
   (empty store, full enumerations) and a warm pass (populated store,
   in-process memo reset in between so the speedup measured is the
   store's).  Throughput and latency percentiles for both passes are
   merged into BENCH_kernels.json under a "load" key, and the exit
   status asserts the warm pass is strictly faster — the acceptance
   check CI relies on. *)

let clients = ref 4
let queries = ref 25
let seed = ref 42
let json_path = ref "BENCH_kernels.json"
let socket_path = ref ""
let workers = ref 2

let spec =
  [
    ("-clients", Arg.Set_int clients, "N concurrent client domains (default 4)");
    ("-queries", Arg.Set_int queries, "M queries per client (default 25)");
    ("-seed", Arg.Set_int seed, "mix seed (default 42)");
    ( "-json",
      Arg.Set_string json_path,
      "FILE merge results into FILE (default BENCH_kernels.json)" );
    ( "-socket",
      Arg.Set_string socket_path,
      "PATH Unix socket path (default: under the temp dir)" );
    ("-workers", Arg.Set_int workers, "server worker domains (default 2)");
  ]

(* A 48-bit LCG (the drand48 constants) keeps the mix deterministic
   without touching [Random] (whose ambient state the lint bans in
   engine code). *)
let lcg s = ((s * 25214903917) + 11) land 0xFFFFFFFFFFFF

(* The query mix: cheap liveness probes plus closure/solvability calls
   whose enumerations the certificate store absorbs on the warm pass. *)
let mix =
  [|
    ("ping", []);
    ("closure", [ ("task", Jsonl.String "consensus"); ("n", Jsonl.Int 2) ]);
    ( "closure",
      [
        ("task", Jsonl.String "aa");
        ("n", Jsonl.Int 2);
        ("m", Jsonl.Int 3);
        ("eps", Jsonl.String "1/3");
      ] );
    ( "solvable",
      [
        ("task", Jsonl.String "consensus");
        ("n", Jsonl.Int 2);
        ("rounds", Jsonl.Int 1);
      ] );
    ("closure", [ ("task", Jsonl.String "consensus"); ("n", Jsonl.Int 3) ]);
    ( "complex-stats",
      [ ("task", Jsonl.String "aa"); ("n", Jsonl.Int 2); ("m", Jsonl.Int 4) ] );
  |]

type pass = {
  label : string;
  wall_s : float;
  total : int;
  qps : float;
  p50_ms : float;
  p95_ms : float;
}

let percentile sorted q =
  match Array.length sorted with
  | 0 -> 0.
  | n ->
      let idx = int_of_float (Float.of_int (n - 1) *. q +. 0.5) in
      sorted.(Int.max 0 (Int.min (n - 1) idx))

(* One client: its own connection, [queries] requests drawn from the
   mix by a per-client deterministic stream.  Returns the latencies;
   any error is fatal — a load run with failed queries is meaningless. *)
let run_client addr ~client_id =
  match Client.connect_retry addr with
  | Error e -> failwith (Printf.sprintf "client %d: connect: %s" client_id e)
  | Ok c ->
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let state = ref (lcg (!seed + (client_id * 7919))) in
      List.init !queries (fun i ->
          state := lcg !state;
          let meth, params =
            mix.(abs (!state mod Array.length mix) mod Array.length mix)
          in
          let t0 = Unix.gettimeofday () in
          match Client.rpc c ~id:(Jsonl.Int i) ~meth ~params with
          | Ok _ -> (Unix.gettimeofday () -. t0) *. 1000.
          | Error e ->
              failwith
                (Printf.sprintf "client %d query %d (%s): %s" client_id i meth e))

let run_pass addr ~label =
  let t0 = Unix.gettimeofday () in
  let latencies =
    List.init !clients (fun cid ->
        Domain.spawn (fun () -> run_client addr ~client_id:cid))
    |> List.map Domain.join |> List.concat |> Array.of_list
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  Array.sort Float.compare latencies;
  let total = Array.length latencies in
  {
    label;
    wall_s;
    total;
    qps = (if wall_s > 0. then Float.of_int total /. wall_s else 0.);
    p50_ms = percentile latencies 0.5;
    p95_ms = percentile latencies 0.95;
  }

let pass_json p =
  Jsonl.Obj
    [
      ("wall_s", Jsonl.Float p.wall_s);
      ("queries", Jsonl.Int p.total);
      ("throughput_qps", Jsonl.Float p.qps);
      ("latency_p50_ms", Jsonl.Float p.p50_ms);
      ("latency_p95_ms", Jsonl.Float p.p95_ms);
    ]

(* Merge the load section into BENCH_kernels.json, preserving whatever
   bench/main.ml wrote.  Top-level keys are re-rendered one per line so
   the file stays diffable. *)
let merge_json cold warm =
  let load =
    Jsonl.Obj
      [
        ("clients", Jsonl.Int !clients);
        ("queries_per_client", Jsonl.Int !queries);
        ("seed", Jsonl.Int !seed);
        ("cold", pass_json cold);
        ("warm", pass_json warm);
        ( "warm_speedup",
          if cold.qps > 0. then Jsonl.Float (warm.qps /. cold.qps)
          else Jsonl.Null );
      ]
  in
  let existing =
    match In_channel.with_open_text !json_path In_channel.input_all with
    | s -> (
        match Jsonl.of_string s with Ok (Jsonl.Obj fs) -> fs | _ -> [])
    | exception Sys_error _ -> []
  in
  let fields =
    (if List.mem_assoc "schema" existing then []
     else [ ("schema", Jsonl.String "speedup-bench/v1") ])
    @ List.remove_assoc "load" existing
    @ [ ("load", load) ]
  in
  let oc = open_out !json_path in
  output_string oc "{\n";
  output_string oc
    (String.concat ",\n"
       (List.map
          (fun (k, v) ->
            Printf.sprintf "  \"%s\": %s" (Jsonl.escape k) (Jsonl.to_string v))
          fields));
  output_string oc "\n}\n";
  close_out oc

let rec remove_tree path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter
        (fun entry -> remove_tree (Filename.concat path entry))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let () =
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "load [-clients N] [-queries M] [-seed S] [-json FILE]";
  let tmp = Filename.get_temp_dir_name () in
  let store_dir =
    Filename.concat tmp (Printf.sprintf "speedup-load-certs-%d" (Unix.getpid ()))
  in
  let sock =
    if !socket_path <> "" then !socket_path
    else
      Filename.concat tmp (Printf.sprintf "speedup-load-%d.sock" (Unix.getpid ()))
  in
  remove_tree store_dir;
  Cert_store.set_dir (Some store_dir);
  Closure.reset_memo ();
  let addr = Server.Unix_path sock in
  let cfg =
    { (Server.default_config addr) with workers = !workers; queue_limit = 256 }
  in
  let server = Domain.spawn (fun () -> Server.run cfg) in
  let finish () =
    (match Client.connect_retry addr with
    | Ok c ->
        ignore (Client.rpc c ~id:(Jsonl.String "drain") ~meth:"shutdown" ~params:[]);
        Client.close c
    | Error _ -> ());
    ignore (Domain.join server)
  in
  match
    let cold = run_pass addr ~label:"cold" in
    (* Reset the in-process memo so the warm pass measures the store,
       not the memo table the cold pass just filled. *)
    Closure.reset_memo ();
    let warm = run_pass addr ~label:"warm" in
    (cold, warm)
  with
  | exception e ->
      finish ();
      remove_tree store_dir;
      prerr_endline ("load: " ^ Printexc.to_string e);
      exit 2
  | cold, warm ->
      finish ();
      remove_tree store_dir;
      List.iter
        (fun p ->
          Printf.printf
            "load %-4s: %d queries in %6.2fs  %8.1f q/s  p50 %6.2fms  p95 %6.2fms\n"
            p.label p.total p.wall_s p.qps p.p50_ms p.p95_ms)
        [ cold; warm ];
      merge_json cold warm;
      Printf.printf "load: warm/cold throughput %.2fx; merged into %s\n"
        (if cold.qps > 0. then warm.qps /. cold.qps else 0.)
        !json_path;
      if warm.qps <= cold.qps then (
        prerr_endline
          "load: FAIL — warm-store throughput not above cold-store throughput";
        exit 1)
