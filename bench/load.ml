(* Load generator for the query daemon: N concurrent clients firing M
   queries each (fixed seed, deterministic mix) at a server.

   Standalone mode boots an in-process server and runs the mix twice
   against the same certificate store — a cold pass (empty store, full
   enumerations) and a warm pass (populated store, in-process memo
   reset in between so the speedup measured is the store's) — and
   merges both under the "load" key of BENCH_kernels.json, exiting
   nonzero unless the warm pass is strictly faster.

   With [-attach SPEC] it instead drives an already-running daemon or
   fleet front (unix:PATH or HOST:PORT) with a single pass merged
   under the "fleet" key — the fleet-smoke CI job runs it against a
   router over three daemons and gates the recorded p95.

   Every query class reports its own latency percentiles and error
   count, and any transport or protocol error fails the run: a
   percentile pool with silently dropped samples measures nothing. *)

let clients = ref 4
let queries = ref 25
let seed = ref 42
let json_path = ref "BENCH_kernels.json"
let socket_path = ref ""
let workers = ref 2
let attach = ref ""

let spec =
  [
    ("-clients", Arg.Set_int clients, "N concurrent client domains (default 4)");
    ("-queries", Arg.Set_int queries, "M queries per client (default 25)");
    ("-seed", Arg.Set_int seed, "mix seed (default 42)");
    ( "-json",
      Arg.Set_string json_path,
      "FILE merge results into FILE (default BENCH_kernels.json)" );
    ( "-socket",
      Arg.Set_string socket_path,
      "PATH Unix socket path (default: under the temp dir)" );
    ("-workers", Arg.Set_int workers, "server worker domains (default 2)");
    ( "-attach",
      Arg.Set_string attach,
      "SPEC drive a running daemon/fleet front (unix:PATH or HOST:PORT) \
       instead of booting one; one pass, merged under the \"fleet\" key" );
  ]

(* A 48-bit LCG (the drand48 constants) keeps the mix deterministic
   without touching [Random] (whose ambient state the lint bans in
   engine code). *)
let lcg s = ((s * 25214903917) + 11) land 0xFFFFFFFFFFFF

(* The query mix, by named class: cheap liveness probes plus
   closure/solvability calls whose enumerations the certificate store
   (or, through a fleet front, a peer's replicated store) absorbs. *)
let mix =
  [|
    ("ping", "ping", []);
    ( "closure-consensus-n2",
      "closure",
      [ ("task", Jsonl.String "consensus"); ("n", Jsonl.Int 2) ] );
    ( "closure-aa",
      "closure",
      [
        ("task", Jsonl.String "aa");
        ("n", Jsonl.Int 2);
        ("m", Jsonl.Int 3);
        ("eps", Jsonl.String "1/3");
      ] );
    ( "solvable",
      "solvable",
      [
        ("task", Jsonl.String "consensus");
        ("n", Jsonl.Int 2);
        ("rounds", Jsonl.Int 1);
      ] );
    ( "closure-consensus-n3",
      "closure",
      [ ("task", Jsonl.String "consensus"); ("n", Jsonl.Int 3) ] );
    ( "complex-stats",
      "complex-stats",
      [ ("task", Jsonl.String "aa"); ("n", Jsonl.Int 2); ("m", Jsonl.Int 4) ] );
  |]

type class_stats = {
  cls : string;
  count : int;
  errors : int;
  p50_ms : float;
  p95_ms : float;
}

type pass = {
  label : string;
  wall_s : float;
  total : int;
  error_total : int;
  qps : float;
  p50_ms : float;
  p95_ms : float;
  classes : class_stats list;
}

let percentile sorted q =
  match Array.length sorted with
  | 0 -> 0.
  | n ->
      let idx = int_of_float (Float.of_int (n - 1) *. q +. 0.5) in
      sorted.(Int.max 0 (Int.min (n - 1) idx))

(* One client: its own connection, [queries] requests drawn from the
   mix by a per-client deterministic stream.  Errors are recorded and
   the client keeps going — the run accounts for every error instead
   of dying on the first or, worse, dropping the sample. *)
let run_client addr ~client_id =
  match Client.connect_retry addr with
  | Error e ->
      ( [],
        [ ("connect", Printf.sprintf "client %d: connect: %s" client_id e) ] )
  | Ok c ->
      Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
      let state = ref (lcg (!seed + (client_id * 7919))) in
      let samples = ref [] in
      let errors = ref [] in
      for i = 0 to !queries - 1 do
        state := lcg !state;
        let cls, meth, params =
          mix.(abs (!state mod Array.length mix) mod Array.length mix)
        in
        let t0 = Unix.gettimeofday () in
        match Client.rpc c ~id:(Jsonl.Int i) ~meth ~params with
        | Ok _ ->
            samples := (cls, (Unix.gettimeofday () -. t0) *. 1000.) :: !samples
        | Error e ->
            errors :=
              ( cls,
                Printf.sprintf "client %d query %d (%s): %s" client_id i meth e
              )
              :: !errors
      done;
      (List.rev !samples, List.rev !errors)

let class_names = Array.to_list mix |> List.map (fun (cls, _, _) -> cls)

let run_pass addr ~label =
  let t0 = Unix.gettimeofday () in
  let per_client =
    List.init !clients (fun cid ->
        Domain.spawn (fun () -> run_client addr ~client_id:cid))
    |> List.map Domain.join
  in
  let wall_s = Unix.gettimeofday () -. t0 in
  let samples = List.concat_map fst per_client in
  let errors = List.concat_map snd per_client in
  List.iter
    (fun (cls, msg) -> Printf.eprintf "load %s: ERROR [%s] %s\n%!" label cls msg)
    errors;
  let sorted_of cls =
    let a =
      samples
      |> List.filter_map (fun (c, ms) ->
             if String.equal c cls then Some ms else None)
      |> Array.of_list
    in
    Array.sort Float.compare a;
    a
  in
  let classes =
    (* "connect" failures belong to no mix class; surface them under a
       pseudo-class so the totals still add up. *)
    class_names @ [ "connect" ]
    |> List.filter_map (fun cls ->
           let lat = sorted_of cls in
           let errs =
             List.length
               (List.filter (fun (c, _) -> String.equal c cls) errors)
           in
           if Array.length lat = 0 && errs = 0 then None
           else
             Some
               {
                 cls;
                 count = Array.length lat;
                 errors = errs;
                 p50_ms = percentile lat 0.5;
                 p95_ms = percentile lat 0.95;
               })
  in
  let all = Array.of_list (List.map snd samples) in
  Array.sort Float.compare all;
  let total = Array.length all in
  {
    label;
    wall_s;
    total;
    error_total = List.length errors;
    qps = (if wall_s > 0. then Float.of_int total /. wall_s else 0.);
    p50_ms = percentile all 0.5;
    p95_ms = percentile all 0.95;
    classes;
  }

let pass_json p =
  Jsonl.Obj
    [
      ("wall_s", Jsonl.Float p.wall_s);
      ("queries", Jsonl.Int p.total);
      ("errors", Jsonl.Int p.error_total);
      ("throughput_qps", Jsonl.Float p.qps);
      ("latency_p50_ms", Jsonl.Float p.p50_ms);
      ("latency_p95_ms", Jsonl.Float p.p95_ms);
      ( "classes",
        Jsonl.List
          (List.map
             (fun c ->
               Jsonl.Obj
                 [
                   ("class", Jsonl.String c.cls);
                   ("queries", Jsonl.Int c.count);
                   ("errors", Jsonl.Int c.errors);
                   ("latency_p50_ms", Jsonl.Float c.p50_ms);
                   ("latency_p95_ms", Jsonl.Float c.p95_ms);
                 ])
             p.classes) );
    ]

(* Merge a section into BENCH_kernels.json, preserving whatever
   bench/main.ml wrote.  Top-level keys are re-rendered one per line so
   the file stays diffable. *)
let merge_json key section =
  let existing =
    match In_channel.with_open_text !json_path In_channel.input_all with
    | s -> (
        match Jsonl.of_string s with Ok (Jsonl.Obj fs) -> fs | _ -> [])
    | exception Sys_error _ -> []
  in
  let fields =
    (if List.mem_assoc "schema" existing then []
     else [ ("schema", Jsonl.String "speedup-bench/v1") ])
    @ List.remove_assoc key existing
    @ [ (key, section) ]
  in
  let oc = open_out !json_path in
  output_string oc "{\n";
  output_string oc
    (String.concat ",\n"
       (List.map
          (fun (k, v) ->
            Printf.sprintf "  \"%s\": %s" (Jsonl.escape k) (Jsonl.to_string v))
          fields));
  output_string oc "\n}\n";
  close_out oc

let print_pass p =
  Printf.printf
    "load %-5s: %d queries (%d errors) in %6.2fs  %8.1f q/s  p50 %6.2fms  \
     p95 %6.2fms\n"
    p.label p.total p.error_total p.wall_s p.qps p.p50_ms p.p95_ms;
  List.iter
    (fun c ->
      Printf.printf
        "  %-22s %4d queries  %2d errors  p50 %6.2fms  p95 %6.2fms\n" c.cls
        c.count c.errors c.p50_ms c.p95_ms)
    p.classes

let fail_on_errors passes =
  let errors = List.fold_left (fun acc p -> acc + p.error_total) 0 passes in
  if errors > 0 then begin
    Printf.eprintf "load: FAIL — %d failed quer%s (see above)\n" errors
      (if errors = 1 then "y" else "ies");
    exit 1
  end

let rec remove_tree path =
  match (Unix.lstat path).Unix.st_kind with
  | Unix.S_DIR ->
      Array.iter
        (fun entry -> remove_tree (Filename.concat path entry))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

(* Fleet mode: one pass against an already-running front. *)
let run_attached spec =
  match Peer.parse spec with
  | Error msg ->
      Printf.eprintf "load: %s\n" msg;
      exit 2
  | Ok peer ->
      let fleet = run_pass peer.Peer.addr ~label:"fleet" in
      print_pass fleet;
      merge_json "fleet"
        (Jsonl.Obj
           [
             ("target", Jsonl.String spec);
             ("clients", Jsonl.Int !clients);
             ("queries_per_client", Jsonl.Int !queries);
             ("seed", Jsonl.Int !seed);
             ("pass", pass_json fleet);
           ]);
      Printf.printf "load: fleet pass merged into %s\n" !json_path;
      fail_on_errors [ fleet ]

let run_standalone () =
  let tmp = Filename.get_temp_dir_name () in
  let store_dir =
    Filename.concat tmp (Printf.sprintf "speedup-load-certs-%d" (Unix.getpid ()))
  in
  let sock =
    if !socket_path <> "" then !socket_path
    else
      Filename.concat tmp (Printf.sprintf "speedup-load-%d.sock" (Unix.getpid ()))
  in
  remove_tree store_dir;
  Cert_store.set_dir (Some store_dir);
  Closure.reset_memo ();
  let addr = Server.Unix_path sock in
  let cfg =
    { (Server.default_config addr) with workers = !workers; queue_limit = 256 }
  in
  let server = Domain.spawn (fun () -> Server.run cfg) in
  let finish () =
    (match Client.connect_retry addr with
    | Ok c ->
        ignore
          (Client.rpc c ~id:(Jsonl.String "drain") ~meth:"shutdown" ~params:[]);
        Client.close c
    | Error _ -> ());
    ignore (Domain.join server)
  in
  match
    let cold = run_pass addr ~label:"cold" in
    (* Reset the in-process memo so the warm pass measures the store,
       not the memo table the cold pass just filled. *)
    Closure.reset_memo ();
    let warm = run_pass addr ~label:"warm" in
    (cold, warm)
  with
  | exception e ->
      finish ();
      remove_tree store_dir;
      prerr_endline ("load: " ^ Printexc.to_string e);
      exit 2
  | cold, warm ->
      finish ();
      remove_tree store_dir;
      print_pass cold;
      print_pass warm;
      merge_json "load"
        (Jsonl.Obj
           [
             ("clients", Jsonl.Int !clients);
             ("queries_per_client", Jsonl.Int !queries);
             ("seed", Jsonl.Int !seed);
             ("cold", pass_json cold);
             ("warm", pass_json warm);
             ( "warm_speedup",
               if cold.qps > 0. then Jsonl.Float (warm.qps /. cold.qps)
               else Jsonl.Null );
           ]);
      Printf.printf "load: warm/cold throughput %.2fx; merged into %s\n"
        (if cold.qps > 0. then warm.qps /. cold.qps else 0.)
        !json_path;
      fail_on_errors [ cold; warm ];
      if warm.qps <= cold.qps then (
        prerr_endline
          "load: FAIL — warm-store throughput not above cold-store throughput";
        exit 1)

let () =
  Arg.parse spec
    (fun a -> raise (Arg.Bad (Printf.sprintf "unexpected argument %S" a)))
    "load [-clients N] [-queries M] [-seed S] [-json FILE] [-attach SPEC]";
  if !attach <> "" then run_attached !attach else run_standalone ()
