(* Diagnostics for speedup-lint: location-tagged findings with stable
   ordering so output is reproducible across runs and job counts. *)

type t = {
  rule : string;  (* "R1".."R5", or "lint" for tool-level problems *)
  file : string;
  line : int;
  col : int;
  message : string;
}

let make ~rule ~file ~line ~col message = { rule; file; line; col; message }

let of_location ~rule ~file (loc : Location.t) message =
  let p = loc.loc_start in
  make ~rule ~file ~line:p.pos_lnum ~col:(p.pos_cnum - p.pos_bol) message

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let to_human d =
  Printf.sprintf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message

let json_escape = Jsonl.escape

(* Jsonl's compact printer renders exactly the historical
   {"rule": "…", "file": "…", …} format (": " / ", " separators). *)
let to_json d =
  Jsonl.to_string
    (Jsonl.Obj
       [
         ("rule", Jsonl.String d.rule);
         ("file", Jsonl.String d.file);
         ("line", Jsonl.Int d.line);
         ("col", Jsonl.Int d.col);
         ("message", Jsonl.String d.message);
       ])

let list_to_json ds =
  match ds with
  | [] -> "[]"
  | ds -> "[\n  " ^ String.concat ",\n  " (List.map to_json ds) ^ "\n]"
