(* Diagnostics for speedup-lint: location-tagged findings with stable
   ordering so output is reproducible across runs and job counts. *)

type t = {
  rule : string;  (* "R1".."R5", or "lint" for tool-level problems *)
  file : string;
  line : int;
  col : int;
  message : string;
}

let make ~rule ~file ~line ~col message = { rule; file; line; col; message }

let of_location ~rule ~file (loc : Location.t) message =
  let p = loc.loc_start in
  make ~rule ~file ~line:p.pos_lnum ~col:(p.pos_cnum - p.pos_bol) message

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message

let to_human d =
  Printf.sprintf "%s:%d:%d: [%s] %s" d.file d.line d.col d.rule d.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json d =
  Printf.sprintf
    {|{"rule": "%s", "file": "%s", "line": %d, "col": %d, "message": "%s"}|}
    (json_escape d.rule) (json_escape d.file) d.line d.col
    (json_escape d.message)

let list_to_json ds =
  match ds with
  | [] -> "[]"
  | ds -> "[\n  " ^ String.concat ",\n  " (List.map to_json ds) ^ "\n]"
