(* Cross-module call graph over the typed trees, and pool-reachability
   inference.

   A definition is *pool-reachable* when its code can run inside a
   parallel region: on a pool worker (a callback given to
   Pool.map/filter_map/filter/for_all/register_flush) or on a spawned
   domain (Domain.spawn).  Rather than trusting the hand-maintained
   [Lint_config.parallel_reachable] list, the inference computes the
   set from the program:

     seed    the receiver functions themselves (Pool.*, Domain.spawn —
             matched on resolved paths, see Lint_cmt.is_receiver);
     rule 1  if a definition is reachable, every global it mentions is
             reachable (its body may execute in the region);
     rule 2  at any call site of a reachable callee (or a receiver),
             every global mentioned in the argument expressions is
             reachable — this carries higher-order flows, e.g. a
             protocol function passed through [Solvability.decide]
             into a Pool callback;
     rule 3  a call site of a *receiver* whose arguments mention local
             (function-scoped) values marks the enclosing definition
             reachable: the locals' bodies are lexically inside it, so
             its mention set over-approximates theirs (this covers
             [Domain.spawn worker_loop] where [worker_loop] is a local
             function).

   The result is deliberately an over-approximation — it scopes safety
   rules (R1/R7), so erring toward inclusion is the safe direction.
   [config_drift] diffs the directory projection of the set against
   [Lint_config.parallel_reachable] and reports both stale and missing
   entries as SCOPE findings, so the checked-in list can never rot. *)

open Typedtree

type def = {
  id : string;  (* "Module[.Sub].name", or "Module.<def:N>" for anonymous *)
  src : string;
  loc : Location.t;
  stack : string list;  (* enclosing module path, outermost first *)
  body : expression;
  alias_of : Path.t option;  (* body is a bare identifier *)
  attrs : Parsetree.attributes;  (* binding attributes, for suppressions *)
}

(* ---- definition collection ---- *)

let collect (mods : Lint_cmt.modl list) =
  let defs = ref [] in
  let walk_module (m : Lint_cmt.modl) =
    let anon = ref 0 in
    let add stack name loc body alias attrs =
      defs :=
        { id = String.concat "." (stack @ [ name ]); src = m.src; loc; stack;
          body; alias_of = alias; attrs }
        :: !defs
    in
    let fresh_anon () =
      incr anon;
      Printf.sprintf "<def:%d>" !anon
    in
    let rec walk_items stack items =
      List.iter
        (fun item ->
          match item.str_desc with
          | Tstr_value (_, vbs) ->
              List.iter
                (fun vb ->
                  match vb.vb_pat.pat_desc with
                  | Tpat_var (_, name) ->
                      let alias =
                        match vb.vb_expr.exp_desc with
                        | Texp_ident (p, _, _) -> Some p
                        | _ -> None
                      in
                      add stack name.txt vb.vb_loc vb.vb_expr alias
                        vb.vb_attributes
                  | _ ->
                      (* unit/tuple patterns: side-effecting top-level
                         code such as [let () = Pool.register_flush …] *)
                      add stack (fresh_anon ()) vb.vb_loc vb.vb_expr None
                        vb.vb_attributes)
                vbs
          | Tstr_eval (e, attrs) ->
              add stack (fresh_anon ()) e.exp_loc e None attrs
          | Tstr_module mb -> walk_mb stack mb
          | Tstr_recmodule mbs -> List.iter (walk_mb stack) mbs
          | _ -> ())
        items
    and walk_mb stack mb =
      let name =
        match mb.mb_name.txt with Some n -> n | None -> fresh_anon ()
      in
      walk_me (stack @ [ name ]) mb.mb_expr
    and walk_me stack me =
      match me.mod_desc with
      | Tmod_structure s -> walk_items stack s.str_items
      | Tmod_constraint (me, _, _, _) -> walk_me stack me
      | Tmod_functor (_, me) -> walk_me stack me
      | _ -> ()
    in
    walk_items [ m.modname ] m.str.str_items
  in
  List.iter walk_module mods;
  List.rev !defs

let table defs =
  let tbl = Hashtbl.create 256 in
  List.iter (fun d -> if not (Hashtbl.mem tbl d.id) then Hashtbl.add tbl d.id d) defs;
  tbl

(* Canonical name through top-level alias chains: [let l = lock] makes
   "M.l" answer as "M.lock" (satellite: lock-under-alias). *)
let canonical tbl id =
  let rec go fuel id =
    match Hashtbl.find_opt tbl id with
    | Some d when fuel > 0 -> (
        match d.alias_of with
        | Some p ->
            let target =
              Lint_cmt.resolve_in ~mem:(Hashtbl.mem tbl) ~stack:d.stack
                (Lint_cmt.norm_components p)
            in
            if target = id then id else go (fuel - 1) target
        | None -> id)
    | _ -> id
  in
  go 8 id

(* ---- mention / call-site extraction ---- *)

(* A mention is a resolved identifier: [`Global id] for definitions
   and dotted externals, [`Local] for function-scoped values. *)
let resolve_ident tbl stack p =
  let raw = Path.name p in
  if String.contains raw '.' then
    `Global
      (Lint_cmt.resolve_in ~mem:(Hashtbl.mem tbl) ~stack
         (Lint_cmt.norm_components p))
  else
    let cand = Lint_cmt.resolve_in ~mem:(Hashtbl.mem tbl) ~stack [ raw ] in
    if Hashtbl.mem tbl cand then `Global cand else `Local

(* All mentions in [e]; [has_local] reports whether any local value is
   referenced (rule 3). *)
let scan_mentions resolve e0 =
  let mentions = ref [] and has_local = ref false in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_ident (p, _, _) -> (
              match resolve p with
              | `Global id -> mentions := id :: !mentions
              | `Local -> has_local := true)
          | _ -> ());
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e0;
  (List.rev !mentions, !has_local)

type call = { callee : string; arg_mentions : string list; arg_local : bool }

let scan_calls resolve e0 =
  let calls = ref [] in
  let it =
    {
      Tast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.exp_desc with
          | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
              match resolve p with
              | `Global callee ->
                  let arg_mentions, arg_local =
                    List.fold_left
                      (fun (ms, l) (_, a) ->
                        match a with
                        | None -> (ms, l)
                        | Some a ->
                            let m, hl = scan_mentions resolve a in
                            (ms @ m, l || hl))
                      ([], false) args
                  in
                  calls := { callee; arg_mentions; arg_local } :: !calls
              | `Local -> ())
          | _ -> ());
          Tast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e0;
  List.rev !calls

(* ---- reachability fixpoint ---- *)

module SS = Set.Make (String)

let reachable defs tbl =
  let infos =
    List.map
      (fun d ->
        let resolve = resolve_ident tbl d.stack in
        let mentions, _ = scan_mentions resolve d.body in
        (d, mentions, scan_calls resolve d.body))
      defs
  in
  let reach = Hashtbl.create 256 in
  let changed = ref true in
  let is_r id =
    Hashtbl.mem reach id || Lint_cmt.is_receiver (canonical tbl id)
  in
  let add id =
    if Hashtbl.mem tbl id && not (Hashtbl.mem reach id) then (
      Hashtbl.add reach id ();
      changed := true)
  in
  while !changed do
    changed := false;
    List.iter
      (fun (d, mentions, calls) ->
        if is_r d.id then List.iter add mentions;
        List.iter
          (fun c ->
            if is_r c.callee then (
              List.iter add c.arg_mentions;
              if c.arg_local && Lint_cmt.is_receiver (canonical tbl c.callee)
              then add d.id))
          calls)
      infos
  done;
  (Hashtbl.fold (fun id () acc -> SS.add id acc) reach SS.empty
   [@lint.allow "R2: folds into a set; insensitive to iteration order"])

(* ---- directory projection and config drift ---- *)

let lib_dir_of_src src =
  if String.length src > 4 && String.sub src 0 4 = "lib/" then
    match Filename.dirname src with
    | "." | "lib" -> None
    | d -> Some (String.sub d 4 (String.length d - 4))
  else None

let inferred_dirs defs reach =
  List.filter_map
    (fun d -> if SS.mem d.id reach then lib_dir_of_src d.src else None)
    defs
  |> List.sort_uniq String.compare

let config_drift defs reach =
  let inferred = inferred_dirs defs reach in
  let config = List.sort_uniq String.compare Lint_config.parallel_reachable in
  let missing = List.filter (fun d -> not (List.mem d config)) inferred in
  let stale = List.filter (fun d -> not (List.mem d inferred)) config in
  let witness dir =
    (* first reachable definition in that directory, by source order *)
    List.filter
      (fun d -> SS.mem d.id reach && lib_dir_of_src d.src = Some dir)
      defs
    |> List.sort (fun a b ->
           let c = String.compare a.src b.src in
           if c <> 0 then c
           else Int.compare a.loc.loc_start.pos_lnum b.loc.loc_start.pos_lnum)
    |> function
    | [] -> None
    | d :: _ -> Some d
  in
  List.filter_map
    (fun dir ->
      match witness dir with
      | None -> None
      | Some d ->
          Some
            (Lint_diag.of_location ~rule:"SCOPE" ~file:d.src d.loc
               (Printf.sprintf
                  "pool-reachability inference marks lib/%s as reachable from \
                   Pool callbacks (via %s), but \
                   Lint_config.parallel_reachable does not list \"%s\"; add \
                   it so R1/R7 cover this directory"
                  dir d.id dir)))
    missing
  @ List.map
      (fun dir ->
        Lint_diag.make ~rule:"SCOPE" ~file:"tools/lint/lint_config.ml" ~line:1
          ~col:0
          (Printf.sprintf
             "parallel_reachable lists \"%s\" but no definition under lib/%s \
              is inferred pool-reachable; remove the stale entry"
             dir dir))
      stale

(* ---- JSON dump (--reachability) ---- *)

let reachability_json defs reach =
  let functions =
    SS.elements reach
    |> List.filter (fun id ->
           (* surface named definitions only; <def:N> ids are noise *)
           not (String.contains id '<'))
    |> List.map (fun id -> Jsonl.String id)
  in
  let dirs =
    inferred_dirs defs reach |> List.map (fun d -> Jsonl.String d)
  in
  Jsonl.to_string
    (Jsonl.Obj
       [ ("dirs", Jsonl.List dirs); ("functions", Jsonl.List functions) ])
