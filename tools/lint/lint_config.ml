(* Rule scoping and the repo-specific vocabulary of speedup-lint.

   Classification is by path (as seen from the repository root): which
   libraries are reachable from Pool callbacks and therefore subject to
   the shared-mutable-state rule, which layer owns the dedicated
   comparator types, and which trees are exempt from the
   nondeterminism ban. *)

(* Libraries whose code runs inside lib/parallel Pool callbacks
   (closure enumeration, solver fan-out, adversary checks, certificate
   store, the query daemon's worker domains): top-level mutable state
   there must be Atomic, mutex-guarded, or explicitly allowlisted
   (R1), and every such cell's locksets must be consistent (R7).

   This list is no longer trusted: the typed backend *infers* the
   pool-reachable set from the whole-program call graph
   (lint_callgraph) and `dune build @lint` fails on drift in either
   direction, so the list here is exactly the inferred directory
   projection.  `frac`, `tasks`, `algorithms`, `core` and
   `experiments` entered when inference traced protocol/Δ closures
   flowing through Solvability.decide / Adversary.check_task /
   Round_op into Pool callbacks — paths the hand-maintained list had
   missed.  Regenerate the set with:
   main.exe --cmt --reachability lib bin bench tools  (from
   _build/default). *)
let parallel_reachable =
  [
    "algorithms"; "cert"; "closure"; "core"; "experiments"; "fleet"; "frac";
    "models"; "models/algebra"; "parallel"; "runtime"; "server"; "solver";
    "tasks"; "topology";
  ]

(* Libraries defining the dedicated comparator types: inside them the
   stricter R4 comparator-hygiene checks apply. *)
let dedicated_layer = [ "topology"; "frac" ]

(* Config-level R5 exemptions: identifiers from [banned_idents] that a
   specific library may use without per-site [@lint.allow]
   attributes.  lib/server needs wall-clock reads for per-request
   deadlines, queue/wall latency accounting, and client retry
   back-off; lib/fleet needs them for peer-health backoff windows and
   remaining-deadline propagation through the router.  Everything the
   clock feeds stays outside reproduced results (replies carry no
   timestamps), so determinism of the engine's answers is unaffected.
   Documented in docs/LINT.md. *)
let r5_allowlist =
  [
    ("server", [ [ "Unix"; "gettimeofday" ] ]);
    ("fleet", [ [ "Unix"; "gettimeofday" ] ]);
  ]

type scope = {
  label : string;
  r1 : bool;  (* shared-mutable-state applies *)
  r4_dedicated : bool;  (* dedicated-comparator layer: strict R4 *)
  r5 : bool;  (* banned-nondeterminism applies (lib/ only) *)
  r5_allowed : string list list;  (* banned idents exempted here *)
  r6 : bool;  (* structural ops on interned types forbidden *)
}

(* Every scoping table keyed by library name.  The nested-sub-library
   adjustment in [classify] consults all of them, so a nested directory
   listed in *any* table (not just [parallel_reachable]) gets its own
   scope label; an unlisted nested directory inherits its parent's. *)
let scoped_names () =
  parallel_reachable @ dedicated_layer @ List.map fst r5_allowlist

let classify path =
  match String.split_on_char '/' path with
  | "lib" :: name :: rest ->
      (* Nested sub-libraries (lib/models/algebra/…) are scoped under
         their full directory name so any scoping table can list
         them independently of the parent tree. *)
      let name =
        match rest with
        | sub :: _ :: _ when List.mem (name ^ "/" ^ sub) (scoped_names ()) ->
            name ^ "/" ^ sub
        | _ -> name
      in
      {
        label = "lib/" ^ name;
        r1 = List.mem name parallel_reachable;
        r4_dedicated = List.mem name dedicated_layer;
        r5 = true;
        r5_allowed =
          (match List.assoc_opt name r5_allowlist with
          | Some idents -> idents
          | None -> []);
        (* Inside lib/topology the interned representation is the
           point: Value defines its own structural walk.  Everywhere
           else, structural ops on interned values are R6 errors. *)
        r6 = name <> "topology";
      }
  | "bench" :: _ ->
      { label = "bench"; r1 = false; r4_dedicated = false; r5 = false;
        r5_allowed = []; r6 = true }
  | "bin" :: _ ->
      { label = "bin"; r1 = false; r4_dedicated = false; r5 = false;
        r5_allowed = []; r6 = true }
  | "tools" :: _ ->
      { label = "tools"; r1 = false; r4_dedicated = false; r5 = false;
        r5_allowed = []; r6 = true }
  | _ ->
      { label = "other"; r1 = false; r4_dedicated = false; r5 = false;
        r5_allowed = []; r6 = false }

(* Modules whose main type has a dedicated comparator (R4). *)
let dedicated_modules = [ "Simplex"; "Vertex"; "Complex"; "Frac" ]

(* Functions of a dedicated module returning scalars (or being the
   dedicated comparator itself): applying a polymorphic operation to
   their result is not a polymorphic comparison of the abstract type. *)
let scalar_projections =
  [
    ( "Simplex",
      [
        "card"; "dim"; "ids"; "mem"; "mem_color"; "is_chromatic_set";
        "to_string"; "compare"; "equal"; "pp";
      ] );
    ("Vertex", [ "color"; "to_string"; "compare"; "equal"; "pp" ]);
    ( "Complex",
      [
        "dim"; "facet_count"; "vertex_count"; "simplex_count"; "is_empty";
        "is_pure"; "mem"; "mem_vertex"; "subcomplex"; "colors"; "compare";
        "equal"; "pp"; "pp_stats";
      ] );
    ( "Frac",
      [ "num"; "den"; "sign"; "to_string"; "to_float"; "compare"; "equal"; "pp" ]
    );
  ]

(* Modules whose main type is hash-consed (R6): interned nodes carry
   process-local ids, so [Stdlib.compare] orders them
   nondeterministically and [Hashtbl.hash] folds the ids.  Vertex and
   Simplex are interned too, but they are already [dedicated_modules],
   so R4 flags the same operations there; R6 covers the types R4 does
   not.  Applies outside lib/topology (scope field [r6]). *)
let interned_modules = [ "Value"; "Algebra" ]

(* Functions of an interned module returning plain scalars: applying a
   structural operation to their result is fine (mirrors
   [scalar_projections] for R4). *)
let interned_scalar_projections =
  [
    ( "Value",
      [
        "view_ids"; "compare"; "structural_compare"; "equal"; "hash";
        "to_string"; "as_frac"; "as_bool"; "pp"; "interned_nodes";
      ] );
    ( "Algebra",
      [
        "to_string"; "compare"; "equal"; "pp"; "interned_nodes";
        "allows_solo";
      ] );
  ]

(* Scalar-returning operations of the Set/Map/Tbl submodules. *)
let container_scalars =
  [
    "cardinal"; "is_empty"; "mem"; "for_all"; "exists"; "equal"; "compare";
    "subset"; "disjoint"; "length";
  ]

(* R1: constructors of shared mutable state banned at top level.
   [Domain.DLS.new_key] is listed because a DLS key at top level is a
   per-domain cache by construction: harmless for races, but a silent
   coherence hazard (stale reads across domains) unless the cache is
   deliberately designed for it — so each one must carry a reasoned
   [@lint.allow] like any other top-level mutable binding. *)
let mutable_creators =
  [
    [ "ref" ];
    [ "Hashtbl"; "create" ];
    [ "Queue"; "create" ];
    [ "Stack"; "create" ];
    [ "Buffer"; "create" ];
    [ "Array"; "make" ];
    [ "Array"; "init" ];
    [ "Array"; "create_float" ];
    [ "Bytes"; "create" ];
    [ "Bytes"; "make" ];
    [ "Domain"; "DLS"; "new_key" ];
  ]

(* R5: ambient nondeterminism. [Random.State] with a caller-supplied
   seed is deterministic and allowed; everything else in [Random] reads
   or mutates the ambient generator. *)
let banned_idents =
  [
    [ "Sys"; "time" ];
    [ "Unix"; "gettimeofday" ];
    [ "Unix"; "time" ];
    [ "Printexc"; "get_callstack" ];
    [ "Random"; "State"; "make_self_init" ];
  ]

(* Polymorphic operations whose application to dedicated types is an
   error (R4). *)
let poly_compare_ops =
  [
    [ "compare" ]; [ "Stdlib"; "compare" ]; [ "Hashtbl"; "hash" ];
    [ "Hashtbl"; "seeded_hash" ]; [ "=" ]; [ "<>" ]; [ "<" ]; [ ">" ];
    [ "<=" ]; [ ">=" ]; [ "min" ]; [ "max" ]; [ "Stdlib"; "min" ];
    [ "Stdlib"; "max" ]; [ "Stdlib"; "=" ]; [ "Stdlib"; "<>" ];
    [ "Stdlib"; "<" ]; [ "Stdlib"; ">" ]; [ "Stdlib"; "<=" ];
    [ "Stdlib"; ">=" ];
  ]

(* Bare polymorphic comparators: passing one of these as a function
   argument inside the dedicated layer is an error (R4). *)
let poly_comparator_idents =
  [
    [ "compare" ]; [ "Stdlib"; "compare" ]; [ "Poly"; "compare" ];
    [ "Hashtbl"; "hash" ]; [ "=" ]; [ "Stdlib"; "=" ];
  ]

(* Sort functions recognized as R2 sanitizers. *)
let sorters =
  [
    [ "List"; "sort" ]; [ "List"; "sort_uniq" ]; [ "List"; "stable_sort" ];
    [ "List"; "fast_sort" ];
  ]

(* Commutative, associative binary operators: a [Hashtbl.fold] whose
   body only combines the accumulator through one of these is
   insensitive to iteration order. *)
let commutative_ops =
  [ "+"; "+."; "*"; "*."; "max"; "min"; "land"; "lor"; "lxor"; "&&"; "||" ]

(* ---- typed whole-program backend (lint_cmt / lint_callgraph /
   lint_lockset) ---- *)

(* Functions whose callback arguments execute on other domains.  The
   [Pool.*] entries match on a dot-boundary suffix of the resolved
   path, so the real [lib/parallel] Pool and a fixture-local
   [module Pool = struct … end] are both recognized; [Domain.spawn]
   matches the normalized stdlib path exactly.  These seed the
   pool-reachability inference (lint_callgraph) and mark detachment
   points for the R7 lockset analysis (code inside their callback
   arguments runs without the caller's locks). *)
let pool_callback_receivers =
  [
    "Pool.map"; "Pool.filter_map"; "Pool.filter"; "Pool.for_all";
    "Pool.register_flush";
  ]

let spawn_receivers = [ "Domain.spawn" ]

(* Type constructors (resolved, normalized paths) that the typed R4/R6
   checks protect: polymorphic operations whose argument *type*
   mentions one of these fire regardless of how the value was reached
   syntactically.  Derived from the module lists above so the
   syntactic and typed backends cannot drift. *)
let dedicated_type_names = List.map (fun m -> m ^ ".t") dedicated_modules
let interned_type_names = List.map (fun m -> m ^ ".t") interned_modules
